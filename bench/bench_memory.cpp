// Experiment E2 (DESIGN.md §4): Tree-Reduce-1 "can initiate multiple
// computations on the same processor simultaneously. This is potentially
// problematic ... as each invocation of the node evaluation function can
// create large intermediate data structures"; Tree-Reduce-2 "reduces
// memory consumption" (Section 3.5).
//
// Model: every *initiated* node evaluation owns a 256 KiB working set
// (DP-matrix-sized, like the profile aligner) from initiation to
// completion (rt::EvalScope + eval_working_bytes knob). Tree-Reduce-1
// initiates an evaluation the moment both subtree values exist — queued
// or not — exactly as a Strand server starts a computation per received
// reduce message; Tree-Reduce-2 evaluates at most one node at a time per
// processor.
//
// Reported: peak concurrently-initiated evaluations and the resulting
// peak working-set MiB, TR1 vs TR2, over tree size x processor count.
//
// Expected shape: TR1 peaks grow with the tree and shrink with more
// processors; TR2 stays at <= processors regardless of tree size.
//
// Tracing: set MOTIF_TRACE_DIR=<dir> to record every case and write a
// Chrome-trace JSON per case into <dir>; on a TR2 timeline each node
// track shows at most one concurrent eval span (the Section 3.5 bound),
// while TR1 tracks pile evals up. The trace path and the trace-derived
// max-concurrent-evals ride along in the bench's JSONL report line.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_report.hpp"
#include "motifs/tree.hpp"
#include "motifs/tree_reduce.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

constexpr std::size_t kWorkingSet = 256 * 1024;

long slow_add(const char&, const long& a, const long& b) {
  for (int i = 0; i < 5000; ++i) asm volatile("");
  return a + b;
}

using LTree = m::Tree<long, char>;

template <class F>
void run_case(benchmark::State& state, const char* case_name, F reduce) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const auto procs = static_cast<std::uint32_t>(state.range(1));
  auto tree = m::balanced_tree<long, char>(
      leaves, [](std::size_t) { return 1L; }, '+');
  const char* trace_dir = std::getenv("MOTIF_TRACE_DIR");
  rt::eval_working_bytes().store(kWorkingSet);
  std::int64_t peak_bytes = 0, peak_evals = 0;
  std::string trace_path;
  std::uint64_t trace_max_evals = 0;
  for (auto _ : state) {
    rt::live_bytes().reset();
    rt::active_evals().reset();
    rt::Machine mach({.nodes = procs, .workers = 2, .seed = 99,
                      .trace_capacity = 1u << 16});
    if (trace_dir != nullptr) mach.start_trace();
    long v = reduce(mach, tree);
    benchmark::DoNotOptimize(v);
    if (v != static_cast<long>(leaves)) state.SkipWithError("wrong sum");
    peak_bytes = rt::live_bytes().peak();
    peak_evals = rt::active_evals().peak();
    if (trace_dir != nullptr) {
      auto log = mach.drain_trace();
      trace_max_evals = 0;
      for (const auto& track : log.tracks) {
        trace_max_evals = std::max(
            trace_max_evals,
            rt::max_concurrent(track, rt::TraceEventKind::EvalBegin,
                               rt::TraceEventKind::EvalEnd));
      }
      trace_path = std::string(trace_dir) + "/bench_memory_" + case_name +
                   "_" + std::to_string(leaves) + "x" +
                   std::to_string(procs) + ".json";
      std::ofstream f(trace_path);
      rt::write_chrome_trace(log, f);
    }
  }
  rt::eval_working_bytes().store(0);
  state.counters["peak_MiB"] =
      static_cast<double>(peak_bytes) / (1024.0 * 1024.0);
  state.counters["peak_initiated_evals"] = static_cast<double>(peak_evals);
  state.counters["procs"] = static_cast<double>(procs);
  state.counters["leaves"] = static_cast<double>(leaves);
  if (trace_dir != nullptr) {
    state.counters["trace_max_concurrent_evals"] =
        static_cast<double>(trace_max_evals);
  }
  motif::bench::report_case(state, "bench_memory", case_name, trace_path);
}

void BM_TR1_Memory(benchmark::State& state) {
  run_case(state, "TR1", [](rt::Machine& mach, const LTree::Ptr& t) {
    return m::tree_reduce1<long, char>(mach, t, slow_add);
  });
}

void BM_TR2_Memory(benchmark::State& state) {
  run_case(state, "TR2", [](rt::Machine& mach, const LTree::Ptr& t) {
    return m::tree_reduce2<long, char>(mach, t, slow_add);
  });
}

void args(benchmark::internal::Benchmark* b) {
  for (int leaves : {64, 256, 1024, 4096}) {
    for (int procs : {2, 4, 8}) {
      b->Args({leaves, procs});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_TR1_Memory)->Apply(args);
BENCHMARK(BM_TR2_Memory)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
