#include "transform/tree.hpp"

#include "transform/rand.hpp"
#include "transform/server.hpp"

namespace motif::transform {

using term::ProcKey;
using term::Program;

Motif tree1_motif() {
  // Section 3.4: "a simple motif Tree1 comprising the identity
  // transformation and the following library program."
  static const char* kLib = R"(
    reduce(tree(V,L,R),Value) :-
        reduce(R,RV)@random,
        reduce(L,LV),
        eval(V,LV,RV,Value).
    reduce(leaf(L),Value) :- Value := L.
  )";
  return Motif("Tree1", identity_transform(), Program::parse(kLib));
}

Motif tree1_both_motif() {
  // One edited line relative to tree1_motif(): reduce(L,LV) gains
  // @random. This is the paper's "reuse through modification" in action:
  // the motif library is readable source, so the variant is a one-line
  // change that flows through the same Rand/Server pipeline.
  static const char* kLib = R"(
    reduce(tree(V,L,R),Value) :-
        reduce(R,RV)@random,
        reduce(L,LV)@random,
        eval(V,LV,RV,Value).
    reduce(leaf(L),Value) :- Value := L.
  )";
  return Motif("Tree1Both", identity_transform(), Program::parse(kLib));
}

Motif tree_reduce1_both_motif() {
  static const char* kDriver = R"(
    run(T,V) :- reduce(T,V), finish_run(V).
    finish_run(V) :- data(V) | halt.
  )";
  Motif driver("Tree1Driver", identity_transform(), Program::parse(kDriver));
  return compose_all({server_motif(),
                      rand_motif({ProcKey{"run", 2}}),
                      driver,
                      tree1_both_motif()});
}

Motif tree_reduce1_motif() {
  // run/2 is the optional terminating entry point (Section 3.3 sketches
  // extending Rand with termination detection; this is the simple
  // data-driven version: when the result is known, halt).
  static const char* kDriver = R"(
    run(T,V) :- reduce(T,V), finish_run(V).
    finish_run(V) :- data(V) | halt.
  )";
  Motif driver("Tree1Driver", identity_transform(), Program::parse(kDriver));
  return compose_all({server_motif(),
                      rand_motif({ProcKey{"run", 2}}),
                      driver,
                      tree1_motif()});
}

Motif tree_reduce2_motif() {
  // Section 3.5, in full. State at each server: the node table (the
  // "tree" of Figure 7), a pending-value list, and the solution variable.
  // Labels: parent = left child's label; sibling leaves share a label, so
  // at most one of each node's offspring values needs an inter-processor
  // message. Each leaf's value is sent to its parent's processor; values
  // meet in the pending list; the computed value is forwarded to the
  // parent's processor in turn; the root binds the solution. Termination:
  // when the solution is known, halt is broadcast.
  static const char* kLib = R"(
    server(In) :- serve(In, none, [], none).

    serve([start(Tree,Result)|In], none, Pending, none) :-
        tr2_drive(Tree,Result),
        serve(In, none, Pending, none).
    serve([init(NT,Soln)|In], none, Pending, none) :-
        serve(In, NT, Pending, Soln).
    serve([value(Id,Side,V)|In], NT, Pending, Soln) :- tuple(NT) |
        take(Id, Pending, Found, Pending1),
        handle(Found, Id, Side, V, NT, Pending1, Pending2, Soln),
        serve(In, NT, Pending2, Soln).
    serve([halt|_], _, _, _).

    tr2_drive(leaf(V), Result) :- Result := V, tr2_finish(Result).
    tr2_drive(tree(Op,L,R), Result) :-
        nodes(P),
        rand_num(P, RootLab),
        walk(tree(Op,L,R), RootLab, P, -1, 0, left, 1, _, NTL, [], Ms, []),
        make_tuple(NTL, NT),
        bcast(1, P, NT, Result, Done),
        release(Ms, Done),
        tr2_finish(Result).

    tr2_finish(R) :- data(R) | halt.

    bcast(J, P, NT, Soln, Done) :- J =< P |
        send(J, init(NT,Soln)),
        J1 is J + 1,
        bcast(J1, P, NT, Soln, Done).
    bcast(J, P, _, _, Done) :- J > P | Done := done.

    release([], _).
    release([m(Lab,Msg)|Ms], Done) :- data(Done) |
        send(Lab, Msg),
        release(Ms, Done).

    walk(leaf(V), _, _, ParentId, ParentLab, Side, Id, IdOut,
         NT, NTt, Ms, Mt) :-
        IdOut := Id,
        NT := NTt,
        Ms := [m(ParentLab, value(ParentId,Side,V))|Mt].
    walk(tree(Op,L,R), MyLab, P, ParentId, ParentLab, Side, Id, IdOut,
         NT, NTt, Ms, Mt) :-
        NT := [entry(Op,ParentId,ParentLab,Side)|NT1],
        Id1 is Id + 1,
        pick(L, R, MyLab, P, RLab),
        walk(L, MyLab, P, Id, MyLab, left, Id1, Id2, NT1, NT2, Ms, Ms1),
        walk(R, RLab, P, Id, MyLab, right, Id2, IdOut, NT2, NTt, Ms1, Mt).

    pick(leaf(_), leaf(_), MyLab, _, RLab) :- RLab := MyLab.
    pick(leaf(_), tree(_,_,_), _, P, RLab) :- rand_num(P, RLab).
    pick(tree(_,_,_), _, _, P, RLab) :- rand_num(P, RLab).

    take(_, [], Found, P1) :- Found := none, P1 := [].
    take(Id, [pend(Id,S,V)|Rest], Found, P1) :-
        Found := found(S,V), P1 := Rest.
    take(Id, [pend(Id2,S,V)|Rest], Found, P1) :- Id2 =\= Id |
        take(Id, Rest, Found, P2),
        P1 := [pend(Id2,S,V)|P2].

    handle(none, Id, Side, V, _, Pending1, Pending2, _) :-
        Pending2 := [pend(Id,Side,V)|Pending1].
    handle(found(_,V0), Id, Side, V, NT, Pending1, Pending2, Soln) :-
        Pending2 := Pending1,
        order(Side, V, V0, LV, RV),
        arg(Id, NT, entry(Op,ParentId,ParentLab,MySide)),
        eval(Op, LV, RV, PV),
        forward(PV, ParentId, ParentLab, MySide, Soln).

    order(left, V, V0, LV, RV) :- LV := V, RV := V0.
    order(right, V, V0, LV, RV) :- LV := V0, RV := V.

    forward(PV, -1, _, _, Soln) :- Soln := PV.
    forward(PV, ParentId, ParentLab, Side, _) :- ParentId >= 1 |
        send(ParentLab, value(ParentId,Side,PV)).
  )";
  return Motif("TreeReduce2", identity_transform(), Program::parse(kLib));
}

Motif tree_reduce2_full_motif() {
  return compose(server_motif(), tree_reduce2_motif());
}

}  // namespace motif::transform
