#include "interp/interp.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <unordered_map>

#include "interp/arith.hpp"
#include "interp/builtins.hpp"
#include "term/subst.hpp"
#include "term/writer.hpp"

namespace motif::interp {

using term::Clause;
using term::ProcKey;
using term::Term;

namespace {

/// Outcome of trying one rule against a goal.
enum class RuleOutcome { Commit, Fail, Suspend };

/// Input-only head matching: pattern variables bind (into `b`); a
/// non-variable pattern against an unbound goal variable suspends.
RuleOutcome head_match(const Term& pattern, const Term& value,
                       term::Bindings& b, Term& suspend_var) {
  Term p = pattern.deref();
  Term v = value.deref();
  if (p.is_var()) {
    auto it = b.find(p);
    if (it == b.end()) {
      b.emplace(p, v);
      return RuleOutcome::Commit;
    }
    // Repeated head variable: requires equality of the two goal subterms.
    Term prev = it->second.deref();
    Term now = v;
    if (prev.same_node(now)) return RuleOutcome::Commit;
    if (prev.is_var()) {
      suspend_var = prev;
      return RuleOutcome::Suspend;
    }
    if (now.is_var()) {
      suspend_var = now;
      return RuleOutcome::Suspend;
    }
    return prev.equals(now) ? RuleOutcome::Commit : RuleOutcome::Fail;
  }
  if (v.is_var()) {
    suspend_var = v;
    return RuleOutcome::Suspend;
  }
  if (p.tag() != v.tag()) return RuleOutcome::Fail;
  switch (p.tag()) {
    case term::Tag::Atom:
      return p.functor() == v.functor() ? RuleOutcome::Commit
                                        : RuleOutcome::Fail;
    case term::Tag::Int:
      return p.int_value() == v.int_value() ? RuleOutcome::Commit
                                            : RuleOutcome::Fail;
    case term::Tag::Float:
      return p.float_value() == v.float_value() ? RuleOutcome::Commit
                                                : RuleOutcome::Fail;
    case term::Tag::Str:
      return p.str_value() == v.str_value() ? RuleOutcome::Commit
                                            : RuleOutcome::Fail;
    case term::Tag::Compound: {
      if (p.functor() != v.functor() || p.arity() != v.arity()) {
        return RuleOutcome::Fail;
      }
      for (std::size_t i = 0; i < p.arity(); ++i) {
        auto r = head_match(p.arg(i), v.arg(i), b, suspend_var);
        if (r != RuleOutcome::Commit) return r;
      }
      return RuleOutcome::Commit;
    }
    case term::Tag::Var:
      return RuleOutcome::Fail;  // unreachable
  }
  return RuleOutcome::Fail;
}

}  // namespace

struct Interp::Impl {
  Interp* self = nullptr;
  rt::Machine* machine = nullptr;
  const term::Program* program = nullptr;
  InterpOptions options;

  // Definition index built once at construction. The per-definition
  // counter lives next to the rules (stable address; relaxed atomic).
  struct DefEntry {
    std::vector<Clause> rules;
    std::atomic<std::uint64_t> commits{0};
  };
  std::map<ProcKey, DefEntry> defs;

  std::atomic<std::uint64_t> reductions{0};
  std::atomic<std::uint64_t> suspensions{0};

  // Registry of currently suspended processes, for deadlock diagnostics:
  // the goal text plus the variable it is waiting on, so runtime reports
  // cross-reference motiflint's producer diagnostics.
  struct SuspendedEntry {
    std::string goal;
    std::string var;
  };
  std::mutex susp_m;
  std::uint64_t next_susp_id = 0;
  std::map<std::uint64_t, SuspendedEntry> suspended;

  // Ports: multi-producer appenders onto term-level message streams (the
  // `merge` primitive of the Server motif). A port term is '$port'(Id).
  std::mutex ports_m;
  std::vector<Term> port_tails;  // current unbound tail var per port

  std::mutex out_m;
  std::function<void(const std::string&)> output;

  // Foreign (low-level) procedures: name/arity -> (required inputs, fn).
  struct ForeignEntry {
    std::size_t inputs;
    ForeignFn fn;
  };
  std::map<ProcKey, ForeignEntry> foreign;

  // ---- process scheduling -------------------------------------------------

  void spawn_here(Term goal) {
    machine->post_local([this, goal] { step(goal); });
  }

  void spawn_on(rt::NodeId node, Term goal) {
    machine->post(node, [this, goal] { step(goal); });
  }

  /// Suspends `goal` on `var`: re-posts it (to the current node) when the
  /// variable is bound. A one-shot flag guards against double wake-up.
  void suspend(Term goal, Term var) {
    suspensions.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t id;
    {
      std::lock_guard lock(susp_m);
      id = next_susp_id++;
      Term v = var.deref();
      suspended.emplace(
          id, SuspendedEntry{term::format_term(goal),
                             v.is_var() ? v.var_name() : std::string()});
    }
    const rt::NodeId node = rt::Machine::current_node() == rt::kNoNode
                                ? 0
                                : rt::Machine::current_node();
    auto fired = std::make_shared<std::atomic<bool>>(false);
    var.when_bound([this, goal, node, id, fired] {
      if (fired->exchange(true)) return;
      {
        std::lock_guard lock(susp_m);
        suspended.erase(id);
      }
      spawn_on(node, goal);
    });
  }

  // ---- reduction ----------------------------------------------------------

  /// Runs one process, tail-looping up to options.tail_budget reductions.
  void step(Term goal) {
    Term current = goal;
    for (std::uint32_t iter = 0; iter < options.tail_budget; ++iter) {
      Term next;
      if (!reduce_once(current, next)) return;  // done/suspended/spawned
      current = next;
    }
    // Budget exhausted: yield the node by re-posting the continuation.
    spawn_here(current);
  }

  /// Reduces `goal` by one step. Returns true and sets `tail` when the
  /// reduction produced a tail goal to continue with in this task.
  bool reduce_once(Term goal, Term& tail) {
    Term g = goal.deref();

    if (g.is_var()) {  // metacall on an unbound variable: wait for it
      suspend(g, g);
      return false;
    }

    // Placement annotation handled at the process level too (a spawned
    // goal may itself be annotated, e.g. via metacall).
    if (g.is_compound() && g.functor() == "@" && g.arity() == 2) {
      return dispatch_placed(g.arg(0), g.arg(1)), false;
    }

    if (!g.is_atom() && !g.is_compound()) {
      throw InterpError("cannot reduce non-process term: " + g.to_string());
    }
    if (g.is_cons() || g.is_tuple()) {
      throw InterpError("cannot reduce data term: " + term::format_term(g));
    }

    if (try_builtin(g)) return false;
    if (try_foreign(g)) return false;

    const ProcKey key{g.functor(), g.arity()};
    auto it = defs.find(key);
    if (it == defs.end()) {
      throw InterpError("undefined process: " + key.to_string());
    }

    bool saw_suspend = false;
    Term first_suspend_var;
    for (const Clause& rule : it->second.rules) {
      // `otherwise` guard: commits only if no earlier rule could still
      // apply (any earlier suspension blocks it).
      const bool has_otherwise =
          !rule.guard.empty() && rule.guard.front().deref().is_atom() &&
          rule.guard.front().deref().functor() == "otherwise";
      if (has_otherwise && saw_suspend) break;

      term::Bindings fresh;
      Term head = term::rename_fresh(rule.head, fresh);
      term::Bindings env;
      Term suspend_var;
      RuleOutcome m = RuleOutcome::Commit;
      for (std::size_t i = 0; i < head.arity() && m == RuleOutcome::Commit;
           ++i) {
        m = head_match(head.arg(i), g.arg(i), env, suspend_var);
      }
      if (m == RuleOutcome::Fail) continue;
      if (m == RuleOutcome::Suspend) {
        if (!saw_suspend) {
          saw_suspend = true;
          first_suspend_var = suspend_var;
        }
        continue;
      }

      // Guards.
      bool guard_ok = true;
      bool guard_suspend = false;
      Term guard_var;
      for (const Term& gt : rule.guard) {
        Term inst = term::substitute(term::rename_fresh(gt, fresh), env);
        auto r = eval_guard(inst);
        if (r.truth == Truth::Yes) continue;
        if (r.truth == Truth::No) {
          guard_ok = false;
          break;
        }
        guard_suspend = true;
        guard_var = r.suspend_var;
        break;
      }
      if (guard_suspend) {
        if (!saw_suspend) {
          saw_suspend = true;
          first_suspend_var = guard_var;
        }
        continue;
      }
      if (!guard_ok) continue;

      // Commit: instantiate body, spawn all but the last goal, tail the
      // last.
      reductions.fetch_add(1, std::memory_order_relaxed);
      it->second.commits.fetch_add(1, std::memory_order_relaxed);
      if (rule.body.empty()) return false;
      std::vector<Term> body;
      body.reserve(rule.body.size());
      for (const Term& bt : rule.body) {
        body.push_back(term::substitute(term::rename_fresh(bt, fresh), env));
      }
      for (std::size_t i = 0; i + 1 < body.size(); ++i) {
        dispatch(body[i]);
      }
      tail = body.back();
      return continue_with(tail);
    }

    if (saw_suspend) {
      suspend(g, first_suspend_var);
      return false;
    }
    throw InterpError("process failed (no rule applies): " +
                      term::format_term(g));
  }

  /// Decides whether `tail` can be tail-looped in this task: placed goals
  /// and builtins are dispatched immediately instead.
  bool continue_with(Term& tail) {
    Term d = tail.deref();
    if (d.is_compound() && d.functor() == "@" && d.arity() == 2) {
      dispatch_placed(d.arg(0), d.arg(1));
      return false;
    }
    return true;  // user process or builtin; reduce_once handles both
  }

  /// Spawns one body goal (current node unless annotated). Builtins run
  /// inline so that their effects (sends in particular) happen in
  /// program order within the clause body — a message-protocol program
  /// may rely on `send(J,init(..)), start_work(..)` meaning the init
  /// message is en route before the work begins.
  void dispatch(const Term& goal) {
    Term d = goal.deref();
    if (d.is_compound() && d.functor() == "@" && d.arity() == 2) {
      dispatch_placed(d.arg(0), d.arg(1));
      return;
    }
    if ((d.is_atom() || d.is_compound()) && !d.is_cons() && !d.is_tuple() &&
        try_builtin(d)) {
      return;
    }
    spawn_here(d);
  }

  /// Goal@Where: `random` or a 1-based integer expression.
  void dispatch_placed(Term goal, Term where) {
    Term w = where.deref();
    if (w.is_atom() && w.functor() == "random") {
      spawn_on(machine->random_node(), goal);
      return;
    }
    auto r = eval_arith(w);
    if (std::holds_alternative<Suspended>(r)) {
      // Wait for the placement to become known, then re-dispatch.
      suspend(Term::compound("@", {goal, w}), std::get<Suspended>(r).var);
      return;
    }
    const Number& n = std::get<Number>(r);
    if (!std::holds_alternative<std::int64_t>(n)) {
      throw InterpError("placement must be an integer: " +
                        term::format_term(w));
    }
    const std::int64_t j = std::get<std::int64_t>(n);
    const auto count = static_cast<std::int64_t>(machine->node_count());
    if (j < 1 || j > count) {
      throw InterpError("placement " + std::to_string(j) +
                        " outside 1.." + std::to_string(count));
    }
    spawn_on(static_cast<rt::NodeId>(j - 1), goal);
  }

  /// Executes `g` if it names a registered foreign procedure; suspends on
  /// unbound dataflow inputs first.
  bool try_foreign(const Term& g) {
    auto it = foreign.find(ProcKey{g.functor(), g.arity()});
    if (it == foreign.end()) return false;
    const auto& args = g.args();
    for (std::size_t i = 0; i < it->second.inputs && i < args.size(); ++i) {
      Term d = args[i].deref();
      if (d.is_var()) {
        suspend(g, d);
        return true;
      }
      // Inputs must also be fully ground for a low-level routine.
      auto vars = d.variables();
      if (!vars.empty()) {
        suspend(g, vars.front());
        return true;
      }
    }
    std::function<bool(const Term&, const Term&)> u =
        [this](const Term& a, const Term& b) { return unify(a, b); };
    ForeignCall call{args, u};
    if (!it->second.fn(call)) {
      throw InterpError("foreign procedure failed: " + term::format_term(g));
    }
    return true;
  }

  // ---- unification for builtin outputs ------------------------------------

  /// Full two-way unification (no occurs check), used to deliver builtin
  /// results into caller-supplied patterns (e.g. make_ports(2,Ps,[I1,I2])).
  /// User-level rule heads still use input-only matching.
  bool unify(const Term& a, const Term& b) {
    Term x = a.deref(), y = b.deref();
    if (x.same_node(y)) return true;
    if (x.is_var() || y.is_var()) {
      Term var = x.is_var() ? x : y;
      Term val = x.is_var() ? y : x;
      try {
        var.bind(val);
        return true;
      } catch (const term::BindError&) {
        // Lost a race with a concurrent binder; recheck structurally.
        return unify(var, val);
      }
    }
    if (x.tag() != y.tag()) return false;
    switch (x.tag()) {
      case term::Tag::Atom:
        return x.functor() == y.functor();
      case term::Tag::Int:
        return x.int_value() == y.int_value();
      case term::Tag::Float:
        return x.float_value() == y.float_value();
      case term::Tag::Str:
        return x.str_value() == y.str_value();
      case term::Tag::Compound: {
        if (x.functor() != y.functor() || x.arity() != y.arity()) return false;
        for (std::size_t i = 0; i < x.arity(); ++i) {
          if (!unify(x.arg(i), y.arg(i))) return false;
        }
        return true;
      }
      default:
        return false;
    }
  }

  void unify_output(const Term& pattern, const Term& value, const Term& ctx) {
    if (!unify(pattern, value)) {
      throw InterpError("builtin output mismatch in " +
                        term::format_term(ctx));
    }
  }

  // ---- guards -------------------------------------------------------------

  GuardResult eval_guard(const Term& g) {
    Term d = g.deref();
    if (d.is_var()) return {Truth::Suspend, d};
    if (d.is_atom() && d.functor() == "true") return {Truth::Yes, {}};
    if (d.is_atom() && d.functor() == "otherwise") return {Truth::Yes, {}};
    if (d.is_compound() && is_comparison(d.functor(), d.arity())) {
      return eval_comparison(d.functor(), d.arg(0), d.arg(1));
    }
    if ((d.is_compound() && d.arity() == 1)) {
      if (auto r = eval_type_test(d.functor(), d.arg(0))) return *r;
    }
    throw InterpError("unknown guard: " + term::format_term(d));
  }

  // ---- builtins -----------------------------------------------------------

  /// Executes `g` if it is a builtin; returns false if it is a user goal.
  bool try_builtin(const Term& g) {
    const std::string& f = g.functor();
    const std::size_t n = g.arity();

    // The shared signature table (builtins.hpp) is authoritative: a goal
    // not listed there is a user process.
    if (find_builtin(f, n) == nullptr) return false;

    if ((f == ":=" || f == "=") && n == 2) {
      builtin_assign(g.arg(0), g.arg(1), /*strict_arith=*/false, g);
      return true;
    }
    if (f == "is" && n == 2) {
      builtin_assign(g.arg(0), g.arg(1), /*strict_arith=*/true, g);
      return true;
    }
    if (is_comparison(f, n)) {
      // Comparisons in a body act as assertions (used by tests).
      auto r = eval_comparison(f, g.arg(0), g.arg(1));
      if (r.truth == Truth::Suspend) {
        suspend(g, r.suspend_var);
      } else if (r.truth == Truth::No) {
        throw InterpError("body test failed: " + term::format_term(g));
      }
      return true;
    }
    if (f == "length" && n == 2) {
      builtin_length(g);
      return true;
    }
    if (f == "rand_num" && n == 2) {
      auto r = eval_arith(g.arg(0));
      if (std::holds_alternative<Suspended>(r)) {
        suspend(g, std::get<Suspended>(r).var);
        return true;
      }
      const Number& num = std::get<Number>(r);
      if (!std::holds_alternative<std::int64_t>(num)) {
        throw InterpError("rand_num bound must be an integer");
      }
      const std::int64_t hi = std::get<std::int64_t>(num);
      if (hi < 1) throw InterpError("rand_num bound must be >= 1");
      const rt::NodeId cur = rt::Machine::current_node();
      auto& rng = machine->rng(cur == rt::kNoNode ? 0 : cur);
      unify_output(g.arg(1),
                   Term::integer(1 + static_cast<std::int64_t>(rng.below(
                       static_cast<std::uint64_t>(hi)))),
                   g);
      return true;
    }
    if (f == "make_ports" && n == 3) {
      builtin_make_ports(g);
      return true;
    }
    if (f == "distribute" && n == 3) {
      builtin_distribute(g);
      return true;
    }
    if (f == "send_all" && n == 2) {
      builtin_send_all(g);
      return true;
    }
    if (f == "make_tuple" && n == 2) {
      builtin_make_tuple(g);
      return true;
    }
    if (f == "arg" && n == 3) {
      builtin_arg(g);
      return true;
    }
    if (f == "nodes_total" && n == 1) {
      unify_output(g.arg(0), Term::integer(machine->node_count()), g);
      return true;
    }
    if (f == "current_node" && n == 1) {
      const rt::NodeId cur = rt::Machine::current_node();
      unify_output(g.arg(0),
                   Term::integer(cur == rt::kNoNode ? 0 : cur + 1), g);
      return true;
    }
    if ((f == "write" || f == "writeln") && n == 1) {
      std::string s = term::format_term(g.arg(0));
      if (f == "writeln") s += '\n';
      std::function<void(const std::string&)> sink;
      {
        std::lock_guard lock(out_m);
        sink = output;
      }
      if (sink) {
        sink(s);
      } else {
        std::lock_guard lock(out_m);
        std::cout << s << std::flush;
      }
      return true;
    }
    if (f == "work" && n == 1) {
      // Synthetic low-level computation: burns a deterministic amount of
      // CPU and records virtual cost units (used by the overhead and
      // load-balance experiments).
      auto r = eval_arith(g.arg(0));
      if (std::holds_alternative<Suspended>(r)) {
        suspend(g, std::get<Suspended>(r).var);
        return true;
      }
      const std::int64_t units =
          std::get<std::int64_t>(std::get<Number>(r));
      volatile std::uint64_t h = 0xcbf29ce484222325ull;
      for (std::int64_t i = 0; i < units; ++i) {
        h = (h ^ static_cast<std::uint64_t>(i)) * 0x100000001b3ull;
      }
      machine->add_work(static_cast<std::uint64_t>(units < 0 ? 0 : units));
      return true;
    }
    if (f == "true" && n == 0) return true;
    return false;
  }

  void builtin_assign(const Term& lhs, const Term& rhs, bool strict_arith,
                      const Term& whole) {
    Term l = lhs.deref();
    Term r = rhs.deref();
    if (strict_arith || looks_arithmetic(r)) {
      auto res = eval_arith(r);
      if (std::holds_alternative<Suspended>(res)) {
        suspend(whole, std::get<Suspended>(res).var);
        return;
      }
      Term value = number_to_term(std::get<Number>(res));
      if (!l.is_var()) {
        // Assigning to a bound cell succeeds only if it already equals the
        // value (useful for checks); otherwise it is the Strand run-time
        // error.
        if (l.equals(value)) return;
        throw InterpError("assignment to bound variable: " +
                          term::format_term(whole));
      }
      l.bind(value);
      return;
    }
    if (!l.is_var()) {
      if (l.equals(r)) return;
      throw InterpError("assignment to bound variable: " +
                        term::format_term(whole));
    }
    l.bind(r);
  }

  void builtin_length(const Term& g) {
    Term x = g.arg(0).deref();
    if (x.is_var()) {
      suspend(g, x);
      return;
    }
    if (x.is_tuple()) {
      unify_output(g.arg(1),
                   Term::integer(static_cast<std::int64_t>(x.arity())), g);
      return;
    }
    // List length; suspends on an unbound spine.
    std::int64_t count = 0;
    Term cur = x;
    while (cur.is_cons()) {
      ++count;
      cur = cur.arg(1).deref();
    }
    if (cur.is_var()) {
      suspend(g, cur);
      return;
    }
    if (!cur.is_nil()) {
      throw InterpError("length/2 on improper list: " + term::format_term(x));
    }
    unify_output(g.arg(1), Term::integer(count), g);
  }

  // ---- ports --------------------------------------------------------------

  Term new_port() {
    std::lock_guard lock(ports_m);
    const auto id = static_cast<std::int64_t>(port_tails.size());
    port_tails.push_back(Term::var("PortTail"));
    return Term::compound("$port", {Term::integer(id)});
  }

  Term port_head(const Term& port) {
    std::lock_guard lock(ports_m);
    return port_tails[static_cast<std::size_t>(
        port.arg(0).int_value())];
  }

  void port_send(const Term& port, Term msg) {
    Term p = port.deref();
    if (!(p.is_compound() && p.functor() == "$port" && p.arity() == 1)) {
      throw InterpError("not a port: " + term::format_term(p));
    }
    Term cell, fresh = Term::var("PortTail");
    {
      std::lock_guard lock(ports_m);
      auto& slot =
          port_tails[static_cast<std::size_t>(p.arg(0).int_value())];
      cell = slot;
      slot = fresh;
    }
    // Bind outside the registry lock: waking a consumer may send again.
    cell.bind(Term::cons(std::move(msg), fresh));
  }

  void builtin_make_ports(const Term& g) {
    auto r = eval_arith(g.arg(0));
    if (std::holds_alternative<Suspended>(r)) {
      suspend(g, std::get<Suspended>(r).var);
      return;
    }
    const std::int64_t n = std::get<std::int64_t>(std::get<Number>(r));
    if (n < 0) throw InterpError("make_ports count must be >= 0");
    std::vector<Term> ports, heads;
    ports.reserve(static_cast<std::size_t>(n));
    heads.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      Term p = new_port();
      heads.push_back(port_head(p));
      ports.push_back(std::move(p));
    }
    unify_output(g.arg(1), Term::list(std::move(ports)), g);
    unify_output(g.arg(2), Term::list(std::move(heads)), g);
  }

  void builtin_distribute(const Term& g) {
    // distribute(Index, Msg, DT): appends Msg to the Index-th (1-based)
    // port of tuple DT.
    Term dt = g.arg(2).deref();
    if (dt.is_var()) {
      suspend(g, dt);
      return;
    }
    if (!dt.is_tuple()) {
      throw InterpError("distribute/3 needs a tuple of ports, got: " +
                        term::format_term(dt));
    }
    auto r = eval_arith(g.arg(0));
    if (std::holds_alternative<Suspended>(r)) {
      suspend(g, std::get<Suspended>(r).var);
      return;
    }
    const std::int64_t ix = std::get<std::int64_t>(std::get<Number>(r));
    if (ix < 1 || ix > static_cast<std::int64_t>(dt.arity())) {
      throw InterpError("distribute index " + std::to_string(ix) +
                        " outside 1.." + std::to_string(dt.arity()));
    }
    port_send(dt.arg(static_cast<std::size_t>(ix - 1)), g.arg(1).deref());
  }

  void builtin_send_all(const Term& g) {
    Term dt = g.arg(1).deref();
    if (dt.is_var()) {
      suspend(g, dt);
      return;
    }
    if (!dt.is_tuple()) {
      throw InterpError("send_all/2 needs a tuple of ports");
    }
    for (std::size_t i = 0; i < dt.arity(); ++i) {
      port_send(dt.arg(i), g.arg(0).deref());
    }
  }

  void builtin_make_tuple(const Term& g) {
    // make_tuple(ListOrCount, Tuple)
    Term x = g.arg(0).deref();
    if (x.is_var()) {
      suspend(g, x);
      return;
    }
    if (x.is_int()) {
      std::vector<Term> slots;
      for (std::int64_t i = 0; i < x.int_value(); ++i) {
        slots.push_back(Term::var("_"));
      }
      unify_output(g.arg(1), Term::tuple(std::move(slots)), g);
      return;
    }
    auto xs = x.proper_list();
    if (!xs) {
      // An unbound spine suspends; an improper list is an error.
      Term cur = x;
      while (cur.is_cons()) cur = cur.arg(1).deref();
      if (cur.is_var()) {
        suspend(g, cur);
        return;
      }
      throw InterpError("make_tuple/2 on improper list");
    }
    unify_output(g.arg(1), Term::tuple(std::move(*xs)), g);
  }

  void builtin_arg(const Term& g) {
    auto r = eval_arith(g.arg(0));
    if (std::holds_alternative<Suspended>(r)) {
      suspend(g, std::get<Suspended>(r).var);
      return;
    }
    const std::int64_t ix = std::get<std::int64_t>(std::get<Number>(r));
    Term t = g.arg(1).deref();
    if (t.is_var()) {
      suspend(g, t);
      return;
    }
    if (!t.is_compound() || ix < 1 ||
        ix > static_cast<std::int64_t>(t.arity())) {
      throw InterpError("arg/3 out of range: " + term::format_term(g));
    }
    unify_output(g.arg(2), t.arg(static_cast<std::size_t>(ix - 1)), g);
  }
};

Interp::Interp(term::Program program, InterpOptions options)
    : impl_(std::make_unique<Impl>()), program_(std::move(program)) {
  machine_ = std::make_unique<rt::Machine>(rt::MachineConfig{
      .nodes = options.nodes,
      .workers = options.workers,
      .batch = 64,
      .seed = options.seed,
      .faults = options.faults,
  });
  impl_->self = this;
  impl_->machine = machine_.get();
  impl_->program = &program_;
  impl_->options = options;
  for (const auto& key : program_.defined()) {
    impl_->defs[key].rules = program_.rules_for(key);
  }
}

Interp::~Interp() = default;

void Interp::register_foreign(const std::string& name, std::size_t arity,
                              std::size_t inputs, ForeignFn fn) {
  const ProcKey key{name, arity};
  if (impl_->defs.count(key) > 0) {
    throw InterpError("foreign name collides with program definition: " +
                      key.to_string());
  }
  if (!impl_->foreign.emplace(key, Impl::ForeignEntry{inputs, std::move(fn)})
           .second) {
    throw InterpError("foreign procedure already registered: " +
                      key.to_string());
  }
}

void Interp::set_output(std::function<void(const std::string&)> sink) {
  std::lock_guard lock(impl_->out_m);
  impl_->output = std::move(sink);
}

RunResult Interp::run(const Term& goal) {
  impl_->spawn_on(0, goal);
  machine_->wait_idle();
  RunResult r;
  r.reductions = impl_->reductions.load(std::memory_order_relaxed);
  r.suspensions = impl_->suspensions.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(impl_->susp_m);
    r.still_suspended = impl_->suspended.size();
    for (const auto& [id, desc] : impl_->suspended) {
      if (r.stuck_goals.size() >= 16) break;
      std::string line = desc.goal;
      if (!desc.var.empty()) line += "  (waiting on " + desc.var + ")";
      r.stuck_goals.push_back(std::move(line));
    }
  }
  for (const auto& [key, entry] : impl_->defs) {
    const std::uint64_t n = entry.commits.load(std::memory_order_relaxed);
    if (n > 0) r.by_definition.emplace_back(key.to_string(), n);
  }
  std::sort(r.by_definition.begin(), r.by_definition.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  r.load = machine_->load_summary();
  return r;
}

std::pair<Term, RunResult> Interp::run_query(const std::string& goal_src) {
  Term goal = term::parse_term(goal_src);
  RunResult r = run(goal);
  return {goal, r};
}

}  // namespace motif::interp
