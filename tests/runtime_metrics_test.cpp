#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rt = motif::rt;

TEST(Gauge, TracksCurrentAndPeak) {
  rt::Gauge g;
  g.add(10);
  g.add(5);
  EXPECT_EQ(g.current(), 15);
  EXPECT_EQ(g.peak(), 15);
  g.add(-12);
  EXPECT_EQ(g.current(), 3);
  EXPECT_EQ(g.peak(), 15);
  g.reset();
  EXPECT_EQ(g.current(), 0);
  EXPECT_EQ(g.peak(), 0);
}

TEST(Gauge, PeakUnderConcurrency) {
  rt::Gauge g;
  std::vector<std::thread> ts;
  for (int i = 0; i < 8; ++i) {
    ts.emplace_back([&] {
      for (int j = 0; j < 10000; ++j) {
        g.add(1);
        g.add(-1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(g.current(), 0);
  EXPECT_GE(g.peak(), 1);
  EXPECT_LE(g.peak(), 8);
}

TEST(TrackedBytes, RegistersAndReleases) {
  rt::live_bytes().reset();
  {
    rt::TrackedBytes t(1000);
    EXPECT_EQ(rt::live_bytes().current(), 1000);
    {
      rt::TrackedBytes u(500);
      EXPECT_EQ(rt::live_bytes().current(), 1500);
    }
    EXPECT_EQ(rt::live_bytes().current(), 1000);
  }
  EXPECT_EQ(rt::live_bytes().current(), 0);
  EXPECT_EQ(rt::live_bytes().peak(), 1500);
}

TEST(TrackedBytes, CopySharesNothingMoveTransfers) {
  rt::live_bytes().reset();
  rt::TrackedBytes a(100);
  rt::TrackedBytes b = a;  // copy registers its own 100
  EXPECT_EQ(rt::live_bytes().current(), 200);
  rt::TrackedBytes c = std::move(a);
  EXPECT_EQ(rt::live_bytes().current(), 200);
  EXPECT_EQ(a.bytes(), 0u);
  EXPECT_EQ(c.bytes(), 100u);
  (void)b;
}

TEST(TrackedBytes, ResizeAdjustsGauge) {
  rt::live_bytes().reset();
  rt::TrackedBytes t(100);
  t.resize(400);
  EXPECT_EQ(rt::live_bytes().current(), 400);
  t.resize(50);
  EXPECT_EQ(rt::live_bytes().current(), 50);
}

TEST(EvalScope, CountsActiveEvaluations) {
  rt::active_evals().reset();
  {
    rt::EvalScope a;
    EXPECT_EQ(rt::active_evals().current(), 1);
    {
      rt::EvalScope b;
      EXPECT_EQ(rt::active_evals().current(), 2);
    }
  }
  EXPECT_EQ(rt::active_evals().current(), 0);
  EXPECT_EQ(rt::active_evals().peak(), 2);
}

TEST(Summarize, EmptyIsZero) {
  auto s = rt::summarize({});
  EXPECT_EQ(s.total_tasks, 0u);
  EXPECT_EQ(s.imbalance, 0.0);
}

TEST(Summarize, EmptyCountersProduceNoNanOrSentinel) {
  // An empty machine must not divide by counters.size() or leave the
  // min-tracking sentinel behind: every field is a plain zero.
  auto s = rt::summarize(std::vector<rt::NodeCounters>{});
  EXPECT_EQ(s.min_tasks, 0u);
  EXPECT_EQ(s.max_tasks, 0u);
  EXPECT_EQ(s.mean_tasks, 0.0);
  EXPECT_EQ(s.work_imbalance, 0.0);
  EXPECT_EQ(s.virtual_speedup, 0.0);
  EXPECT_EQ(s.hops_per_remote, 0.0);
  EXPECT_EQ(s.makespan, 0u);
}

TEST(Summarize, ZeroMakespanGuardsVirtualSpeedup) {
  // Tasks ran but reported no virtual work: makespan is 0 and the
  // speedup/imbalance ratios must stay 0 instead of dividing by it.
  std::vector<rt::NodeCounters> cs(3);
  cs[0].tasks = 4;
  cs[1].tasks = 4;
  cs[2].tasks = 4;
  auto s = rt::summarize(cs);
  EXPECT_EQ(s.total_work, 0u);
  EXPECT_EQ(s.makespan, 0u);
  EXPECT_EQ(s.virtual_speedup, 0.0);
  EXPECT_EQ(s.work_imbalance, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_tasks, 4.0);
}

TEST(Summarize, ComputesAggregates) {
  std::vector<rt::NodeCounters> cs(4);
  cs[0].tasks = 10;
  cs[1].tasks = 20;
  cs[2].tasks = 30;
  cs[3].tasks = 40;
  cs[0].posts_remote = 5;
  cs[1].posts_local = 7;
  auto s = rt::summarize(cs);
  EXPECT_EQ(s.total_tasks, 100u);
  EXPECT_EQ(s.max_tasks, 40u);
  EXPECT_EQ(s.min_tasks, 10u);
  EXPECT_DOUBLE_EQ(s.mean_tasks, 25.0);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.6);
  EXPECT_EQ(s.remote_msgs, 5u);
  EXPECT_EQ(s.local_msgs, 7u);
}
