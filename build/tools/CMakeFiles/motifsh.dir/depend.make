# Empty dependencies file for motifsh.
# This may be replaced when dependencies are built.
