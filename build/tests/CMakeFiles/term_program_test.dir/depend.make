# Empty dependencies file for term_program_test.
# This may be replaced when dependencies are built.
