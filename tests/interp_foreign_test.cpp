// The multilingual approach end-to-end (Section 2.1): low-level C++
// kernels registered as foreign procedures, driven by high-level motif
// programs — culminating in the paper's actual application: multiple
// sequence alignment run through the Strand-level Tree-Reduce-2 motif
// with a C++ align-node.
#include <gtest/gtest.h>

#include <functional>
#include <mutex>

#include "align/align.hpp"
#include "interp/interp.hpp"
#include "term/parser.hpp"
#include "transform/tree.hpp"

namespace in = motif::interp;
namespace al = motif::align;
namespace tf = motif::transform;
using in::Interp;
using in::InterpOptions;
using motif::term::parse_term;
using motif::term::Program;
using motif::term::Term;

namespace {
InterpOptions nodes(std::uint32_t n) {
  InterpOptions o;
  o.nodes = n;
  o.workers = 2;
  return o;
}
}  // namespace

TEST(Foreign, SimpleKernelComputes) {
  Interp i(Program::parse("go(X,Y) :- cube(X,Y)."), nodes(2));
  i.register_foreign("cube", 2, 1, [](const in::ForeignCall& c) {
    const auto v = c.args[0].int_value();
    return c.unify(c.args[1], Term::integer(v * v * v));
  });
  EXPECT_EQ(i.run_query("go(5,Y)").first.arg(1).int_value(), 125);
}

TEST(Foreign, SuspendsUntilInputBound) {
  Interp i(Program::parse(
      "go(Y) :- cube(X,Y), supply(X).\n"
      "supply(X) :- X := 3."),
      nodes(2));
  i.register_foreign("cube", 2, 1, [](const in::ForeignCall& c) {
    const auto v = c.args[0].int_value();
    return c.unify(c.args[1], Term::integer(v * v * v));
  });
  auto [g, r] = i.run_query("go(Y)");
  EXPECT_EQ(g.arg(0).int_value(), 27);
}

TEST(Foreign, SuspendsOnPartiallyGroundInput) {
  // Input is a structure containing an unbound variable: the foreign
  // call waits until it is fully ground.
  Interp i(Program::parse(
      "go(Y) :- pairsum(p(1,X),Y), supply(X).\n"
      "supply(X) :- X := 9."),
      nodes(2));
  i.register_foreign("pairsum", 2, 1, [](const in::ForeignCall& c) {
    const Term p = c.args[0].deref();
    return c.unify(c.args[1], Term::integer(p.arg(0).int_value() +
                                            p.arg(1).int_value()));
  });
  EXPECT_EQ(i.run_query("go(Y)").first.arg(0).int_value(), 10);
}

TEST(Foreign, FailureRaisesError) {
  Interp i(Program::parse("go :- nope(1)."), nodes(2));
  i.register_foreign("nope", 1, 1,
                     [](const in::ForeignCall&) { return false; });
  EXPECT_THROW(i.run(parse_term("go")), in::InterpError);
}

TEST(Foreign, CollisionsRejected) {
  Interp i(Program::parse("p(1)."), nodes(2));
  EXPECT_THROW(
      i.register_foreign("p", 1, 1,
                         [](const in::ForeignCall&) { return true; }),
      in::InterpError);
  i.register_foreign("q", 1, 1,
                     [](const in::ForeignCall&) { return true; });
  EXPECT_THROW(
      i.register_foreign("q", 1, 1,
                         [](const in::ForeignCall&) { return true; }),
      in::InterpError);
}

TEST(Foreign, MsaThroughStrandTreeReduce2) {
  // The full paper stack: synthetic RNA family, the Tree-Reduce-2 motif
  // produced by Server ∘ TreeReduce2, the user's eval delegating to a
  // foreign C++ align-node over opaque profile handles.
  auto fam = al::synthetic_family(12, 120, 4242);

  // Opaque profile registry shared with the foreign kernel.
  std::mutex reg_m;
  std::vector<al::ProfilePtr> registry;
  auto put = [&](al::ProfilePtr p) {
    std::lock_guard l(reg_m);
    registry.push_back(std::move(p));
    return static_cast<std::int64_t>(registry.size() - 1);
  };
  auto get = [&](const Term& handle) {
    std::lock_guard l(reg_m);
    return registry[static_cast<std::size_t>(handle.arg(0).int_value())];
  };

  // The guide tree as a term with $prof handles at the leaves.
  std::function<std::string(const motif::Tree<int, char>::Ptr&)> emit =
      [&](const motif::Tree<int, char>::Ptr& t) -> std::string {
    if (t->is_leaf()) {
      auto id = put(std::make_shared<const al::Profile>(
          fam.sequences[static_cast<std::size_t>(t->value())]));
      return "leaf('$prof'(" + std::to_string(id) + "))";
    }
    return "tree(align," + emit(t->left()) + "," + emit(t->right()) + ")";
  };
  const std::string tree_src = emit(fam.guide);

  Program user = Program::parse(
      "eval(align, L, R, V) :- align_node(L, R, V).");
  Program full = tf::tree_reduce2_full_motif().apply(user);

  Interp interp(full, nodes(4));
  interp.register_foreign(
      "align_node", 3, 2, [&](const in::ForeignCall& c) {
        auto merged = std::make_shared<const al::Profile>(
            al::align_profiles(*get(c.args[0].deref()),
                               *get(c.args[1].deref())));
        auto id = put(std::move(merged));
        return c.unify(c.args[2],
                       Term::compound("$prof", {Term::integer(id)}));
      });

  auto [goal, r] =
      interp.run_query("create(4, start(" + tree_src + ",Result))");
  EXPECT_FALSE(r.deadlocked())
      << (r.stuck_goals.empty() ? "-" : r.stuck_goals[0]);

  const Term result = goal.arg(1).arg(1).deref();
  ASSERT_TRUE(result.is_compound());
  ASSERT_EQ(result.functor(), "$prof");
  auto final_profile = get(result);
  EXPECT_EQ(final_profile->depth(), 12u);

  // Must equal the native pipeline's alignment exactly.
  motif::rt::Machine mach({.nodes = 4, .workers = 2});
  auto native = al::progressive_msa(mach, fam.sequences, fam.guide,
                                    al::MsaSchedule::Sequential);
  EXPECT_EQ(final_profile->length(), native.profile.length());
  EXPECT_EQ(final_profile->consensus(), native.profile.consensus());
}
