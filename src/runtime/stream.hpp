// Streams: Strand's list-based communication structure (paper Section 2.1).
//
// A Stream<T> is a handle to a single-assignment list cell. A producer
// "incrementally instantiates a shared variable to a list structure",
// binding each cell to either Cons(value, tail) — push() — or Nil —
// close(). Consumers walk the cells, suspending (via continuation) on the
// first unbound one. This gives exactly the producer/consumer coupling of
// the paper's Figure 1.
//
// StreamWriter<T> is the multi-producer append handle used to implement the
// `merge` primitive of the Server motif: N servers' output streams are
// interleaved into one input stream per server (Figure 3).
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/taskfn.hpp"

namespace motif::rt {

/// Thrown when a stream cell is instantiated twice (push/close on a cell
/// that already has a value), mirroring Strand's single-assignment errors.
class StreamReuse : public std::logic_error {
 public:
  StreamReuse() : std::logic_error("stream cell instantiated twice") {}
};

template <class T>
class Stream {
 public:
  /// A fresh, unbound cell.
  Stream() : c_(std::make_shared<Cell>()) {}

  /// Binds this cell to Cons(value, fresh-tail) and returns the tail.
  Stream push(T value) {
    Stream tail;
    bind_cons(std::move(value), tail);
    return tail;
  }

  /// Binds this cell to Cons(value, tail) with a caller-supplied tail.
  void bind_cons(T value, Stream tail) {
    std::vector<TaskFn> waiters;
    {
      std::lock_guard lock(c_->m);
      if (c_->resolved) throw StreamReuse();
      c_->resolved = true;
      c_->value.emplace(std::move(value));
      c_->next = tail.c_;
      waiters.swap(c_->waiters);
    }
    c_->cv.notify_all();
    for (auto& w : waiters) w();
  }

  /// Binds this cell to Nil (end of stream).
  void close() {
    std::vector<TaskFn> waiters;
    {
      std::lock_guard lock(c_->m);
      if (c_->resolved) throw StreamReuse();
      c_->resolved = true;
      waiters.swap(c_->waiters);
    }
    c_->cv.notify_all();
    for (auto& w : waiters) w();
  }

  /// True once this cell is Cons or Nil.
  bool resolved() const {
    std::lock_guard lock(c_->m);
    return c_->resolved;
  }

  /// Non-blocking inspection: nullopt if unresolved; otherwise a pair
  /// (value, tail) or, for Nil, an engaged optional holding nullopt.
  /// Prefer when_ready / next_blocking; this exists for tests.
  bool is_nil() const {
    std::lock_guard lock(c_->m);
    return c_->resolved && !c_->value.has_value();
  }

  /// Registers `f()` to run when this cell resolves (inline if already
  /// resolved). `f` should then re-inspect the cell via try_next().
  template <class F>
  void when_ready(F f) {
    {
      std::unique_lock lock(c_->m);
      if (!c_->resolved) {
        c_->waiters.emplace_back(std::move(f));
        return;
      }
    }
    f();
  }

  /// If resolved to Cons, returns (value-copy, tail); if Nil, returns
  /// nullopt and sets `nil` true; if unresolved, returns nullopt with
  /// `nil` false.
  std::optional<std::pair<T, Stream>> try_next(bool& nil) const {
    std::lock_guard lock(c_->m);
    nil = c_->resolved && !c_->value.has_value();
    if (!c_->resolved || !c_->value.has_value()) return std::nullopt;
    return std::make_pair(*c_->value, Stream(c_->next));
  }

  /// Blocking consume for threads outside the Machine. nullopt = Nil.
  std::optional<std::pair<T, Stream>> next_blocking() const {
    std::unique_lock lock(c_->m);
    c_->cv.wait(lock, [&] { return c_->resolved; });
    if (!c_->value.has_value()) return std::nullopt;
    return std::make_pair(*c_->value, Stream(c_->next));
  }

  /// Drains the whole stream into a vector (blocking; test helper).
  std::vector<T> collect_blocking() const {
    std::vector<T> out;
    Stream cur = *this;
    while (auto nx = cur.next_blocking()) {
      out.push_back(std::move(nx->first));
      cur = nx->second;
    }
    return out;
  }

  bool same_cell(const Stream& o) const { return c_ == o.c_; }

 private:
  struct Cell {
    mutable std::mutex m;
    bool resolved = false;
    std::optional<T> value;        // engaged => Cons, empty+resolved => Nil
    std::shared_ptr<Cell> next;    // tail cell when Cons
    std::condition_variable cv;
    /// Move-only one-shot continuations (see taskfn.hpp).
    std::vector<TaskFn> waiters;
  };
  explicit Stream(std::shared_ptr<Cell> c) : c_(std::move(c)) {}
  std::shared_ptr<Cell> c_;
};

/// Multi-producer append handle. Several producers may send() concurrently;
/// the result is some interleaving, exactly like Strand's merge. The stream
/// is closed when close() has been called `expected_closes` times (one per
/// producer), supporting the merge-of-N-streams pattern.
template <class T>
class StreamWriter {
 public:
  explicit StreamWriter(Stream<T> head, std::size_t expected_closes = 1)
      : s_(std::make_shared<State>(std::move(head), expected_closes)) {}

  /// Creates the head itself; read it back with head().
  explicit StreamWriter(std::size_t expected_closes = 1)
      : StreamWriter(Stream<T>(), expected_closes) {}

  Stream<T> head() const { return s_->head; }

  void send(T value) {
    // Reserve the cell under the lock, bind it outside: binding runs
    // consumer continuations, which may call back into this writer
    // (e.g. a server sending a message to itself).
    Stream<T> cell, fresh;
    {
      std::lock_guard lock(s_->m);
      cell = s_->tail;
      s_->tail = fresh;
    }
    cell.bind_cons(std::move(value), fresh);
  }

  /// One producer is done; the stream ends when all are.
  void close() {
    Stream<T> cell;
    bool last = false;
    {
      std::lock_guard lock(s_->m);
      if (s_->remaining == 0) throw StreamReuse();
      last = (--s_->remaining == 0);
      cell = s_->tail;
    }
    if (last) cell.close();
  }

 private:
  struct State {
    State(Stream<T> h, std::size_t n) : head(h), tail(h), remaining(n) {}
    std::mutex m;
    Stream<T> head;
    Stream<T> tail;
    std::size_t remaining;
  };
  std::shared_ptr<State> s_;
};

/// The `merge` primitive ([8] and Figure 3): interleaves `inputs` into one
/// output stream, closing it when every input has closed. Fairness is
/// event-driven: items are forwarded in the order their cells resolve.
template <class T>
Stream<T> merge(std::vector<Stream<T>> inputs) {
  StreamWriter<T> out(inputs.empty() ? 1 : inputs.size());
  if (inputs.empty()) {
    out.close();
    return out.head();
  }
  // pump() walks one input, forwarding resolved cells without recursion
  // (a fully materialised input must not overflow the stack) and
  // re-registering on the first unresolved cell.
  struct Pump {
    StreamWriter<T> out;
    static void run(Stream<T> cur, StreamWriter<T> out) {
      for (;;) {
        bool nil = false;
        auto nx = cur.try_next(nil);
        if (nx) {
          out.send(std::move(nx->first));
          cur = nx->second;
          continue;
        }
        if (nil) {
          out.close();
          return;
        }
        Stream<T> pending = cur;
        pending.when_ready([cur, out] { Pump::run(cur, out); });
        return;
      }
    }
  };
  for (auto& in : inputs) Pump::run(in, out);
  return out.head();
}

}  // namespace motif::rt
