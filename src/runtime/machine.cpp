#include "runtime/machine.hpp"

#include <algorithm>

namespace motif::rt {

namespace {
thread_local NodeId tl_current_node = kNoNode;
}  // namespace

Machine::Machine(MachineConfig cfg)
    : batch_(std::max<std::uint32_t>(1, cfg.batch)),
      ext_rng_(cfg.seed ^ 0xE27ull),
      topology_(cfg.topology) {
  const std::uint32_t n = std::max<std::uint32_t>(1, cfg.nodes);
  // Mesh: the most-square factorisation r x c with r*c >= n.
  mesh_cols_ = 1;
  while (mesh_cols_ * mesh_cols_ < n) ++mesh_cols_;
  nodes_.reserve(n);
  std::uint64_t s = cfg.seed;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(splitmix64(s)));
  }
#if MOTIF_TRACING
  tracer_ = std::make_unique<Tracer>(
      TracerOptions{std::max<std::size_t>(2, cfg.trace_capacity)});
  for (std::uint32_t i = 0; i < n; ++i) {
    tracer_->add_track("node " + std::to_string(i));
  }
#endif
  std::uint32_t w = cfg.workers;
  if (w == 0) {
    const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    w = std::min(n, hw);
  }
  workers_.reserve(w);
  for (std::uint32_t i = 0; i < w; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Machine::~Machine() {
  // Drain outstanding work first so no posted task is silently dropped.
  try {
    wait_idle();
  } catch (...) {
    // A failing task's exception was already delivered to a prior
    // wait_idle or is being abandoned with the machine itself.
  }
  {
    std::lock_guard lock(ready_m_);
    stopping_ = true;
  }
  ready_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

NodeId Machine::current_node() { return tl_current_node; }

void Machine::start_trace() {
#if MOTIF_TRACING
  if (!tracer_->active()) tracer_->start();
#endif
}

void Machine::stop_trace() {
#if MOTIF_TRACING
  tracer_->stop();
#endif
}

bool Machine::tracing() const {
#if MOTIF_TRACING
  return tracer_->active();
#else
  return false;
#endif
}

TraceLog Machine::drain_trace() {
#if MOTIF_TRACING
  return tracer_->drain();
#else
  return {};
#endif
}

void Machine::post(NodeId n, Task t) {
  const NodeId from = tl_current_node;
  QueuedTask qt{std::move(t)};
  if (from == kNoNode) {
    // external producer; not an inter-processor message
  } else if (from == n) {
    nodes_[from]->counters.posts_local.fetch_add(1, std::memory_order_relaxed);
  } else {
    const std::uint32_t hops = hop_distance(from, n);
    nodes_[from]->counters.posts_remote.fetch_add(1, std::memory_order_relaxed);
    nodes_[from]->counters.hops.fetch_add(hops, std::memory_order_relaxed);
    nodes_[n]->counters.recv_remote.fetch_add(1, std::memory_order_relaxed);
#if MOTIF_TRACING
    if (tracer_->active()) {
      // The calling thread is running node `from`, i.e. it is that
      // track's (single) writer right now.
      qt.trace_msg = tracer_->next_msg_id();
      qt.from = from;
      qt.hops = hops;
      tracer_->emit(from, TraceEventKind::MsgSend, nullptr, qt.trace_msg, n,
                    hops);
    }
#endif
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  bool need_schedule = false;
  {
    std::lock_guard lock(nodes_[n]->m);
    nodes_[n]->q.push_back(std::move(qt));
    const auto depth = static_cast<std::uint64_t>(nodes_[n]->q.size());
    std::uint64_t peak = peak_queue_.load(std::memory_order_relaxed);
    while (depth > peak && !peak_queue_.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
    if (!nodes_[n]->scheduled) {
      nodes_[n]->scheduled = true;
      need_schedule = true;
    }
  }
  if (need_schedule) enqueue_ready(n);
}

void Machine::post_local(Task t) {
  const NodeId n = tl_current_node == kNoNode ? 0 : tl_current_node;
  post(n, std::move(t));
}

NodeId Machine::random_node() {
  const NodeId cur = tl_current_node;
  if (cur != kNoNode) {
    return static_cast<NodeId>(nodes_[cur]->rng.below(nodes_.size()));
  }
  std::lock_guard lock(ext_rng_m_);
  return static_cast<NodeId>(ext_rng_.below(nodes_.size()));
}

void Machine::enqueue_ready(NodeId n) {
  {
    std::lock_guard lock(ready_m_);
    ready_.push_back(n);
  }
  ready_cv_.notify_one();
}

void Machine::worker_loop() {
  for (;;) {
    NodeId n;
    {
      std::unique_lock lock(ready_m_);
      ready_cv_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping and drained
      n = ready_.front();
      ready_.pop_front();
    }
    run_node(n);
  }
}

void Machine::run_node(NodeId n) {
  Node& node = *nodes_[n];
  tl_current_node = n;
#if MOTIF_TRACING
  // Bind this thread to the node's trace track so EvalScope and
  // TRACE_SPAN emissions inside tasks land on the right timeline. The
  // ready-list handoff serialises successive writers of one track.
  ThreadTrackGuard trace_guard(tracer_.get(), n);
#endif
  std::uint32_t executed = 0;
  for (;;) {
    QueuedTask t;
    {
      std::lock_guard lock(node.m);
      if (node.q.empty()) {
        node.scheduled = false;
        break;
      }
      if (executed >= batch_) {
        // Yield the worker but keep the node scheduled; requeue it so
        // other ready nodes get a turn (fairness across virtual nodes).
        break;
      }
      t = std::move(node.q.front());
      node.q.pop_front();
    }
    ++executed;
    node.counters.tasks.fetch_add(1, std::memory_order_relaxed);
#if MOTIF_TRACING
    const bool traced = tracer_->active();
    std::uint64_t work_before = 0;
    if (traced) {
      tracer_->emit(n, TraceEventKind::TaskBegin);
      if (t.trace_msg != 0) {
        tracer_->emit(n, TraceEventKind::MsgRecv, nullptr, t.trace_msg,
                      t.from, t.hops);
      }
      work_before = node.counters.work.load(std::memory_order_relaxed);
    }
#endif
    try {
      t.fn();
    } catch (...) {
      std::lock_guard lock(error_m_);
      if (!first_error_) first_error_ = std::current_exception();
    }
#if MOTIF_TRACING
    if (traced) {
      const std::uint64_t work_after =
          node.counters.work.load(std::memory_order_relaxed);
      tracer_->emit(n, TraceEventKind::TaskEnd, nullptr,
                    work_after - work_before);
    }
#endif
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(idle_m_);
      idle_cv_.notify_all();
    }
  }
  tl_current_node = kNoNode;
  if (executed >= batch_) {
    // Re-arm: the node still holds work (or raced with a post; the
    // scheduled flag stays true so it is in the ready list exactly once).
    bool requeue = false;
    {
      std::lock_guard lock(node.m);
      if (!node.q.empty()) {
        requeue = true;
      } else {
        node.scheduled = false;
      }
    }
    if (requeue) enqueue_ready(n);
  }
}

void Machine::wait_idle() {
  std::unique_lock lock(idle_m_);
  idle_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
  lock.unlock();
  std::lock_guard el(error_m_);
  if (first_error_) {
    auto e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

LoadSummary Machine::load_summary() const {
  // NodeCounters are not copyable (atomics); summarise in place.
  std::vector<NodeCounters> view(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    view[i].tasks = nodes_[i]->counters.tasks.load(std::memory_order_relaxed);
    view[i].posts_local =
        nodes_[i]->counters.posts_local.load(std::memory_order_relaxed);
    view[i].posts_remote =
        nodes_[i]->counters.posts_remote.load(std::memory_order_relaxed);
    view[i].recv_remote =
        nodes_[i]->counters.recv_remote.load(std::memory_order_relaxed);
    view[i].work = nodes_[i]->counters.work.load(std::memory_order_relaxed);
    view[i].hops = nodes_[i]->counters.hops.load(std::memory_order_relaxed);
  }
  return summarize(view);
}

std::uint32_t Machine::hop_distance(NodeId a, NodeId b) const {
  if (a == b) return 0;
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  switch (topology_) {
    case Topology::Complete:
      return 1;
    case Topology::Ring: {
      const std::uint32_t d = a > b ? a - b : b - a;
      return std::min(d, n - d);
    }
    case Topology::Mesh2D: {
      const std::uint32_t ar = a / mesh_cols_, ac = a % mesh_cols_;
      const std::uint32_t br = b / mesh_cols_, bc = b % mesh_cols_;
      return (ar > br ? ar - br : br - ar) + (ac > bc ? ac - bc : bc - ac);
    }
    case Topology::Hypercube:
      return static_cast<std::uint32_t>(__builtin_popcount(a ^ b));
  }
  return 1;
}

void Machine::reset_counters() {
  for (auto& n : nodes_) n->counters.reset();
  peak_queue_.store(0, std::memory_order_relaxed);
}

}  // namespace motif::rt
