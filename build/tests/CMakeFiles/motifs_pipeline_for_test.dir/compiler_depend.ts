# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for motifs_pipeline_for_test.
