file(REMOVE_RECURSE
  "CMakeFiles/motif_term.dir/ops.cpp.o"
  "CMakeFiles/motif_term.dir/ops.cpp.o.d"
  "CMakeFiles/motif_term.dir/parser.cpp.o"
  "CMakeFiles/motif_term.dir/parser.cpp.o.d"
  "CMakeFiles/motif_term.dir/program.cpp.o"
  "CMakeFiles/motif_term.dir/program.cpp.o.d"
  "CMakeFiles/motif_term.dir/subst.cpp.o"
  "CMakeFiles/motif_term.dir/subst.cpp.o.d"
  "CMakeFiles/motif_term.dir/term.cpp.o"
  "CMakeFiles/motif_term.dir/term.cpp.o.d"
  "CMakeFiles/motif_term.dir/writer.cpp.o"
  "CMakeFiles/motif_term.dir/writer.cpp.o.d"
  "libmotif_term.a"
  "libmotif_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
