file(REMOVE_RECURSE
  "CMakeFiles/msa_pipeline.dir/msa_pipeline.cpp.o"
  "CMakeFiles/msa_pipeline.dir/msa_pipeline.cpp.o.d"
  "msa_pipeline"
  "msa_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msa_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
