#include "runtime/metrics.hpp"

#include <algorithm>
#include <limits>

namespace motif::rt {

Gauge& live_bytes() {
  static Gauge g;
  return g;
}

Gauge& active_evals() {
  static Gauge g;
  return g;
}

std::atomic<std::uint64_t>& dropped_task_errors() {
  static std::atomic<std::uint64_t> n{0};
  return n;
}

std::atomic<std::size_t>& eval_working_bytes() {
  static std::atomic<std::size_t> b{0};
  return b;
}

LoadSummary summarize(const std::vector<NodeCounters>& counters) {
  LoadSummary s;
  if (counters.empty()) return s;
  s.min_tasks = std::numeric_limits<std::uint64_t>::max();
  for (const auto& c : counters) {
    const std::uint64_t t = c.tasks.load(std::memory_order_relaxed);
    s.total_tasks += t;
    s.max_tasks = std::max(s.max_tasks, t);
    s.min_tasks = std::min(s.min_tasks, t);
    s.remote_msgs += c.posts_remote.load(std::memory_order_relaxed);
    s.local_msgs += c.posts_local.load(std::memory_order_relaxed);
    const std::uint64_t w = c.work.load(std::memory_order_relaxed);
    s.total_work += w;
    s.makespan = std::max(s.makespan, w);
    s.total_hops += c.hops.load(std::memory_order_relaxed);
  }
  s.hops_per_remote = s.remote_msgs > 0
                          ? static_cast<double>(s.total_hops) /
                                static_cast<double>(s.remote_msgs)
                          : 0.0;
  s.mean_tasks = static_cast<double>(s.total_tasks) /
                 static_cast<double>(counters.size());
  s.imbalance = s.mean_tasks > 0.0
                    ? static_cast<double>(s.max_tasks) / s.mean_tasks
                    : 0.0;
  const double mean_work = static_cast<double>(s.total_work) /
                           static_cast<double>(counters.size());
  s.work_imbalance =
      mean_work > 0.0 ? static_cast<double>(s.makespan) / mean_work : 0.0;
  s.virtual_speedup = s.makespan > 0
                          ? static_cast<double>(s.total_work) /
                                static_cast<double>(s.makespan)
                          : 0.0;
  return s;
}

}  // namespace motif::rt
