// Deterministic fault injection and classified run outcomes.
//
// The paper sells motifs as "archives of expertise" a user can adopt
// without re-deriving the parallel logic — which is only credible if the
// expertise includes behaviour under partial failure. A FaultPlan is a
// seed-driven schedule of injected faults that a Machine executes while
// running any motif: kill node i after its k-th task, drop / duplicate /
// delay cross-node posts with configured probabilities, and throw a
// synthetic exception inside a chosen task. Every decision is a pure
// function of (plan seed, sender node, per-node event ordinal), so a run
// whose task order is deterministic (fixed seed, one worker, or any
// workload whose per-node task order does not depend on cross-node
// timing) replays the exact same faults — and the tracer records each
// injection as a `fault` event for inspection.
//
// RunOutcome is the classification side: Machine::wait_idle_for() returns
// one instead of hanging (a lost node starves a dataflow variable
// forever) or rethrowing blindly, so supervisors (motifs/supervise.hpp)
// and the chaos test tier can react to *why* a run stopped.
#pragma once

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

namespace motif::rt {

using NodeId = std::uint32_t;  // mirrors machine.hpp (kept header-light)

/// The synthetic exception a FaultPlan throw spec raises inside a task.
/// Distinguishable from user-code failures so supervisors can treat
/// injected chaos as retryable.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// What a plan decided to do with one cross-node post.
enum class PostFault : std::uint8_t { None, Drop, Duplicate, Delay };

/// A deterministic, seed-driven fault schedule. Empty plan = no faults
/// (the default MachineConfig). All probabilities apply per cross-node
/// post; decisions are drawn from splitmix64(seed, sender, ordinal), so
/// they are independent of wall-clock time and worker count.
struct FaultPlan {
  std::uint64_t seed = 0x5EEDFA17ull;

  /// Per-cross-node-post probabilities, evaluated in this order (one
  /// fault at most per post): drop, duplicate, delay.
  double drop = 0.0;       ///< message silently lost
  double duplicate = 0.0;  ///< message delivered twice
  double delay = 0.0;      ///< message re-queued behind later arrivals

  /// Kill node `node` immediately after it executes its `after_tasks`-th
  /// task (1-based, cumulative since Machine construction). A dead node
  /// discards its queue and every later post addressed to it.
  struct Kill {
    NodeId node = 0;
    std::uint64_t after_tasks = 1;
  };
  std::vector<Kill> kills;

  /// Throw InjectedFault in place of node `node`'s `on_task`-th task
  /// (1-based, cumulative): the task's body never runs, exactly as if it
  /// died mid-flight before producing its outputs.
  struct Throw {
    NodeId node = 0;
    std::uint64_t on_task = 1;
  };
  std::vector<Throw> throws;

  bool enabled() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || !kills.empty() ||
           !throws.empty();
  }

  /// Decision for the `nth` (1-based) cross-node post sent by `from`.
  /// Pure: same (seed, from, nth) ⇒ same answer.
  PostFault post_fault(NodeId from, std::uint64_t nth) const;

  /// Same shape, different randomness: the per-attempt reseeding used by
  /// supervised retry, so a probabilistic fault need not recur on the
  /// next attempt.
  FaultPlan reseeded(std::uint64_t attempt) const;

  /// A ready-made chaos plan (mild drop/dup/delay) for sweeps and the
  /// motifsh --fault-seed flag.
  static FaultPlan chaos(std::uint64_t seed);
};

/// Monotonic counts of injected faults, by kind (snapshot view).
struct FaultTotals {
  std::uint64_t drops = 0;       ///< posts dropped (probabilistic)
  std::uint64_t dead_drops = 0;  ///< posts dropped because the target died
  std::uint64_t duplicates = 0;
  std::uint64_t delays = 0;
  std::uint64_t kills = 0;
  std::uint64_t throws = 0;

  std::uint64_t total() const {
    return drops + dead_drops + duplicates + delays + kills + throws;
  }
};

/// Why a deadline-bounded wait returned.
enum class RunStatus : std::uint8_t {
  Completed,         ///< quiesced; no task failed
  TaskFailed,        ///< quiesced after a task threw (error captured)
  Stalled,           ///< quiesced but the awaited result never arrived
  DeadlineExceeded,  ///< still busy (or blocked) when the deadline hit
  NodeLost,          ///< stalled or timed out with at least one dead node
};

const char* to_string(RunStatus s);

/// Structured result of Machine::wait_idle_for and the supervised
/// wrappers: a classification instead of a hang or a bare rethrow.
struct RunOutcome {
  RunStatus status = RunStatus::Completed;
  std::exception_ptr error;        ///< set when status == TaskFailed
  std::string error_message;       ///< what() of `error`, for reports
  std::vector<NodeId> lost_nodes;  ///< nodes dead at classification time
  FaultTotals faults;              ///< injections so far on this machine
  /// Names of still-unbound named SVars (see SVar::set_name) — the same
  /// "waiting on X" diagnostic the interpreter's deadlock reporter gives.
  std::string blocked_on;

  bool ok() const { return status == RunStatus::Completed; }

  /// "node-lost (lost: 2; faults: 5; waiting on tree_reduce1.result)"
  std::string to_string() const;
};

}  // namespace motif::rt
