#include <gtest/gtest.h>

#include "align/nw.hpp"
#include "align/sequence.hpp"

namespace al = motif::align;
namespace rt = motif::rt;

TEST(Sequence, SymbolIndex) {
  EXPECT_EQ(al::symbol_index('A'), 0);
  EXPECT_EQ(al::symbol_index('C'), 1);
  EXPECT_EQ(al::symbol_index('G'), 2);
  EXPECT_EQ(al::symbol_index('U'), 3);
  EXPECT_EQ(al::symbol_index('-'), 4);
  EXPECT_EQ(al::symbol_index('X'), -1);
}

TEST(Sequence, RandomSequenceValid) {
  rt::Rng rng(1);
  auto s = al::random_sequence(rng, 200);
  EXPECT_EQ(s.size(), 200u);
  EXPECT_TRUE(al::valid_rna(s));
}

TEST(Sequence, EvolveZeroTimeIsIdentity) {
  rt::Rng rng(2);
  auto s = al::random_sequence(rng, 100);
  EXPECT_EQ(al::evolve(s, 0.0, {}, rng), s);
}

TEST(Sequence, EvolveDivergesWithTime) {
  rt::Rng rng(3);
  auto s = al::random_sequence(rng, 500);
  auto near = al::evolve(s, 0.5, {}, rng);
  auto far = al::evolve(s, 20.0, {}, rng);
  EXPECT_GT(al::identity(s, near), al::identity(s, far));
  EXPECT_TRUE(al::valid_rna(near));
  EXPECT_TRUE(al::valid_rna(far));
}

TEST(Sequence, EvolveNeverEmpty) {
  rt::Rng rng(4);
  al::MutationModel aggressive;
  aggressive.deletion_rate = 0.9;
  auto s = al::evolve("AC", 10.0, aggressive, rng);
  EXPECT_FALSE(s.empty());
}

TEST(NW, IdenticalSequences) {
  auto r = al::needleman_wunsch("ACGU", "ACGU");
  EXPECT_EQ(r.score, 8);  // 4 matches * 2
  EXPECT_EQ(r.aligned_a, "ACGU");
  EXPECT_EQ(r.aligned_b, "ACGU");
}

TEST(NW, KnownGapPlacement) {
  auto r = al::needleman_wunsch("ACGU", "AGU");
  EXPECT_EQ(r.aligned_a, "ACGU");
  EXPECT_EQ(r.aligned_b, "A-GU");
  EXPECT_EQ(r.score, 3 * 2 - 2);
}

TEST(NW, EmptySequences) {
  auto r = al::needleman_wunsch("", "ACG");
  EXPECT_EQ(r.aligned_a, "---");
  EXPECT_EQ(r.aligned_b, "ACG");
  EXPECT_EQ(r.score, -6);
  auto e = al::needleman_wunsch("", "");
  EXPECT_EQ(e.score, 0);
}

TEST(NW, AlignedLengthsEqualAndReconstructInputs) {
  rt::Rng rng(5);
  for (int round = 0; round < 10; ++round) {
    auto a = al::random_sequence(rng, 30 + rng.below(40));
    auto b = al::evolve(a, 3.0, {}, rng);
    auto r = al::needleman_wunsch(a, b);
    ASSERT_EQ(r.aligned_a.size(), r.aligned_b.size());
    std::string sa, sb;
    for (char c : r.aligned_a) {
      if (c != al::kGap) sa.push_back(c);
    }
    for (char c : r.aligned_b) {
      if (c != al::kGap) sb.push_back(c);
    }
    EXPECT_EQ(sa, a);
    EXPECT_EQ(sb, b);
    // No column may be gap-gap.
    for (std::size_t i = 0; i < r.aligned_a.size(); ++i) {
      EXPECT_FALSE(r.aligned_a[i] == al::kGap && r.aligned_b[i] == al::kGap);
    }
  }
}

TEST(NW, ScoreOnlyMatchesFull) {
  rt::Rng rng(6);
  for (int round = 0; round < 10; ++round) {
    auto a = al::random_sequence(rng, 20 + rng.below(30));
    auto b = al::random_sequence(rng, 20 + rng.below(30));
    EXPECT_EQ(al::nw_score(a, b), al::needleman_wunsch(a, b).score);
  }
}

TEST(NW, ScoreSymmetric) {
  rt::Rng rng(7);
  auto a = al::random_sequence(rng, 50);
  auto b = al::random_sequence(rng, 60);
  EXPECT_EQ(al::nw_score(a, b), al::nw_score(b, a));
}

TEST(KmerDistance, IdenticalIsZeroDisjointIsOne) {
  EXPECT_DOUBLE_EQ(al::kmer_distance("ACGUACGU", "ACGUACGU"), 0.0);
  EXPECT_DOUBLE_EQ(al::kmer_distance("AAAAAAA", "CCCCCCC"), 1.0);
}

TEST(KmerDistance, RelatedCloserThanUnrelated) {
  rt::Rng rng(8);
  auto a = al::random_sequence(rng, 300);
  auto rel = al::evolve(a, 1.0, {}, rng);
  auto unrel = al::random_sequence(rng, 300);
  EXPECT_LT(al::kmer_distance(a, rel), al::kmer_distance(a, unrel));
}

TEST(KmerDistance, ShortSequencesFallBack) {
  EXPECT_DOUBLE_EQ(al::kmer_distance("AC", "AC"), 0.0);
  EXPECT_DOUBLE_EQ(al::kmer_distance("AC", "AG"), 1.0);
}
