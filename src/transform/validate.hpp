// transform::validate — the analyzer hook for transformation outputs.
//
// A motif application M(A) = T(A) ∪ L is only trustworthy if the composed
// program still respects the language's static discipline: every process
// resolvable, arities consistent, single-assignment not violated by the
// threading the transformations add, no rule made unreachable by a
// library rule. validate() runs motiflint (src/analysis) over a program;
// the transform test suites assert it on every output they produce.
#pragma once

#include "analysis/lint.hpp"
#include "term/program.hpp"

namespace motif::transform {

/// Lints `program` and returns the full report. A well-moded
/// transformation output is `clean()`: no errors and no warnings.
analysis::Report validate(const term::Program& program,
                          const analysis::Options& options = {});

/// Throws std::runtime_error listing the diagnostics if `program` has any
/// error-class findings (warnings pass).
void validate_or_throw(const term::Program& program,
                       const analysis::Options& options = {});

}  // namespace motif::transform
