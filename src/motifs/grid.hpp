// Grid-problem motif (paper Section 4; and Section 1's DIME example — a
// system maintaining a mesh and handling communication for node-local
// user code).
//
// Grid2D is a dense 2-D field; jacobi_solve runs level-synchronous Jacobi
// sweeps for the Laplace/heat equation: the grid is partitioned into row
// blocks (one per processor); each iteration every block computes the
// 5-point stencil from the read buffer into the write buffer, then a
// join barrier flips buffers and tests convergence. The user supplies
// only the per-cell update via the stencil functor — the motif owns
// decomposition, synchronisation and convergence, like DIME.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/svar.hpp"

namespace motif {

class Grid2D {
 public:
  Grid2D(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

struct JacobiOptions {
  std::size_t max_iters = 10000;
  double tolerance = 1e-6;  // max |delta| per sweep
};

struct JacobiResult {
  std::size_t iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Jacobi relaxation with fixed (Dirichlet) boundary: interior cells
/// become the mean of their four neighbours each sweep. `grid` is updated
/// in place. Blocks the calling thread.
JacobiResult jacobi_solve(rt::Machine& m, Grid2D& grid,
                          JacobiOptions opts = {});

/// One sequential sweep (reference implementation / oracle); returns the
/// max absolute change. Reads `src`, writes `dst`.
double jacobi_sweep_seq(const Grid2D& src, Grid2D& dst);

}  // namespace motif
