#include "motifs/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace m = motif;
namespace rt = motif::rt;

TEST(Scheduler, RunsIndependentTasks) {
  rt::Machine mach({.nodes = 5, .workers = 2});
  m::Scheduler s(mach);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    s.submit([&] { ran.fetch_add(1); });
  }
  s.run();
  EXPECT_EQ(ran.load(), 100);
}

TEST(Scheduler, EmptyRunIsNoop) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  m::Scheduler s(mach);
  EXPECT_EQ(s.run(), 0u);
}

TEST(Scheduler, RespectsDependencies) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  m::Scheduler s(mach);
  std::vector<int> order;
  std::mutex mu;
  auto rec = [&](int id) {
    std::lock_guard l(mu);
    order.push_back(id);
  };
  auto a = s.submit([&] { rec(0); });
  auto b = s.submit([&] { rec(1); }, {a});
  auto c = s.submit([&] { rec(2); }, {a});
  s.submit([&] { rec(3); }, {b, c});
  s.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

TEST(Scheduler, DiamondAndChainDependencies) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  m::Scheduler s(mach);
  std::atomic<long> value{1};
  auto t0 = s.submit([&] { value = value * 2; });
  auto t1 = s.submit([&] { value = value + 1; }, {t0});
  auto t2 = s.submit([&] { value = value * 10; }, {t1});
  s.submit([&] { value = value - 5; }, {t2});
  s.run();
  EXPECT_EQ(value.load(), (1 * 2 + 1) * 10 - 5);
}

TEST(Scheduler, ForwardDependencyRejected) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  m::Scheduler s(mach);
  EXPECT_THROW(s.submit([] {}, {0}), std::invalid_argument);
}

TEST(Scheduler, WorkSpreadsAcrossWorkers) {
  rt::Machine mach({.nodes = 5, .workers = 2});
  m::Scheduler s(mach);
  for (int i = 0; i < 400; ++i) {
    s.submit([&mach] { mach.add_work(1); });
  }
  s.run();
  auto load = mach.load_summary();
  // All 4 workers got some work under dynamic scheduling.
  std::uint32_t busy = 0;
  for (rt::NodeId n = 1; n < mach.node_count(); ++n) {
    busy += mach.counters(n).work.load() > 0 ? 1 : 0;
  }
  EXPECT_EQ(busy, 4u);
  EXPECT_EQ(load.total_work, 400u);
}

TEST(Scheduler, HierarchicalRunsAllTasks) {
  rt::Machine mach({.nodes = 9, .workers = 2});
  m::Scheduler s(mach, {.workers = 8, .levels = 2, .group = 4, .batch = 4});
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    s.submit([&] { ran.fetch_add(1); });
  }
  s.run();
  EXPECT_EQ(ran.load(), 200);
}

TEST(Scheduler, HierarchicalRespectsDependencies) {
  rt::Machine mach({.nodes = 9, .workers = 2});
  m::Scheduler s(mach, {.workers = 8, .levels = 2, .group = 4, .batch = 2});
  std::atomic<bool> first_done{false};
  std::atomic<bool> order_ok{true};
  auto a = s.submit([&] { first_done = true; });
  for (int i = 0; i < 50; ++i) {
    s.submit([&] { order_ok = order_ok && first_done.load(); }, {a});
  }
  s.run();
  EXPECT_TRUE(order_ok.load());
}

TEST(Scheduler, HierarchyReducesManagerTraffic) {
  // The paper's modification argument (Section 1): extra manager levels
  // relieve the top manager. Message counts at node 0 must drop.
  constexpr int kTasks = 512;
  auto run_with = [&](std::uint32_t levels) {
    rt::Machine mach({.nodes = 9, .workers = 2});
    m::Scheduler s(mach,
                   {.workers = 8, .levels = levels, .group = 4, .batch = 16});
    for (int i = 0; i < kTasks; ++i) s.submit([] {});
    return s.run();
  };
  const std::uint64_t flat = run_with(1);
  const std::uint64_t hier = run_with(2);
  EXPECT_LT(hier, flat);
}

TEST(Scheduler, RejectsBadConfigs) {
  rt::Machine one({.nodes = 1, .workers = 1});
  EXPECT_THROW(m::Scheduler s(one), std::invalid_argument);
  rt::Machine four({.nodes = 4, .workers = 1});
  EXPECT_THROW(m::Scheduler s(four, {.workers = 9}), std::invalid_argument);
  EXPECT_THROW(m::Scheduler s(four, {.levels = 3}), std::invalid_argument);
}

TEST(Scheduler, ReusableAfterRun) {
  rt::Machine mach({.nodes = 3, .workers = 2});
  m::Scheduler s(mach);
  std::atomic<int> ran{0};
  s.submit([&] { ran.fetch_add(1); });
  s.run();
  s.submit([&] { ran.fetch_add(10); });
  s.run();
  EXPECT_EQ(ran.load(), 11);
}

TEST(Scheduler, ManyTasksStress) {
  rt::Machine mach({.nodes = 5, .workers = 2});
  m::Scheduler s(mach);
  std::atomic<std::uint64_t> sum{0};
  constexpr int kN = 5000;
  std::vector<m::SchedTaskId> prev;
  for (int i = 0; i < kN; ++i) {
    // Sparse random-ish deps on earlier tasks (deterministic pattern).
    std::vector<m::SchedTaskId> deps;
    if (i > 10 && i % 7 == 0) deps.push_back(i - 10);
    sum.fetch_add(0);
    s.submit([&sum, i] { sum.fetch_add(i); }, std::move(deps));
  }
  s.run();
  EXPECT_EQ(sum.load(), std::uint64_t(kN) * (kN - 1) / 2);
}
