file(REMOVE_RECURSE
  "CMakeFiles/strand_motifs.dir/strand_motifs.cpp.o"
  "CMakeFiles/strand_motifs.dir/strand_motifs.cpp.o.d"
  "strand_motifs"
  "strand_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strand_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
