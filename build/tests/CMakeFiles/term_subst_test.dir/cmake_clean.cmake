file(REMOVE_RECURSE
  "CMakeFiles/term_subst_test.dir/term_subst_test.cpp.o"
  "CMakeFiles/term_subst_test.dir/term_subst_test.cpp.o.d"
  "term_subst_test"
  "term_subst_test.pdb"
  "term_subst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_subst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
