
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/term/ops.cpp" "src/term/CMakeFiles/motif_term.dir/ops.cpp.o" "gcc" "src/term/CMakeFiles/motif_term.dir/ops.cpp.o.d"
  "/root/repo/src/term/parser.cpp" "src/term/CMakeFiles/motif_term.dir/parser.cpp.o" "gcc" "src/term/CMakeFiles/motif_term.dir/parser.cpp.o.d"
  "/root/repo/src/term/program.cpp" "src/term/CMakeFiles/motif_term.dir/program.cpp.o" "gcc" "src/term/CMakeFiles/motif_term.dir/program.cpp.o.d"
  "/root/repo/src/term/subst.cpp" "src/term/CMakeFiles/motif_term.dir/subst.cpp.o" "gcc" "src/term/CMakeFiles/motif_term.dir/subst.cpp.o.d"
  "/root/repo/src/term/term.cpp" "src/term/CMakeFiles/motif_term.dir/term.cpp.o" "gcc" "src/term/CMakeFiles/motif_term.dir/term.cpp.o.d"
  "/root/repo/src/term/writer.cpp" "src/term/CMakeFiles/motif_term.dir/writer.cpp.o" "gcc" "src/term/CMakeFiles/motif_term.dir/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
