#include "term/writer.hpp"

#include <sstream>

#include "term/ops.hpp"

namespace motif::term {

namespace {

// Prints `t` in a context accepting operators of precedence <= max_prec;
// wraps in parentheses otherwise.
void emit(const Term& t, int max_prec, std::ostream& os) {
  Term d = t.deref();
  if (d.is_compound() && d.arity() == 2 && !d.is_cons()) {
    if (auto op = binary_op(d.functor())) {
      const bool parens = op->prec > max_prec;
      if (parens) os << '(';
      const int lp = op->type == OpType::yfx ? op->prec : op->prec - 1;
      emit(d.arg(0), lp, os);
      // Spaces around word-like and comparison ops; tight for @.
      if (d.functor() == "@") {
        os << '@';
      } else {
        os << ' ' << d.functor() << ' ';
      }
      emit(d.arg(1), op->prec - 1, os);
      if (parens) os << ')';
      return;
    }
  }
  if (d.is_cons()) {
    os << '[';
    emit(d.arg(0), kMaxPrec, os);
    Term cur = d.arg(1).deref();
    while (cur.is_cons()) {
      os << ',';
      emit(cur.arg(0), kMaxPrec, os);
      cur = cur.arg(1).deref();
    }
    if (!cur.is_nil()) {
      os << '|';
      emit(cur, kMaxPrec, os);
    }
    os << ']';
    return;
  }
  if (d.is_tuple()) {
    os << '{';
    for (std::size_t i = 0; i < d.arity(); ++i) {
      if (i) os << ',';
      emit(d.arg(i), kMaxPrec, os);
    }
    os << '}';
    return;
  }
  if (d.is_compound()) {
    os << Term::atom(d.functor()).to_string() << '(';
    for (std::size_t i = 0; i < d.arity(); ++i) {
      if (i) os << ',';
      emit(d.arg(i), kMaxPrec, os);
    }
    os << ')';
    return;
  }
  os << d.to_string();
}

}  // namespace

std::string format_term(const Term& t) {
  std::ostringstream os;
  emit(t, kMaxPrec, os);
  return os.str();
}

std::string format_clause(const Clause& c) {
  std::ostringstream os;
  emit(c.head, kMaxPrec, os);
  if (!c.guard.empty() || !c.body.empty()) {
    os << " :- ";
    for (std::size_t i = 0; i < c.guard.size(); ++i) {
      if (i) os << ", ";
      emit(c.guard[i], kMaxPrec, os);
    }
    if (!c.guard.empty()) os << " | ";
    for (std::size_t i = 0; i < c.body.size(); ++i) {
      if (i) os << ", ";
      emit(c.body[i], kMaxPrec, os);
    }
  }
  os << '.';
  return os.str();
}

namespace {
std::pair<std::string, std::size_t> head_key(const Clause& c) {
  return {c.head.functor(), c.head.arity()};
}
}  // namespace

std::string format_clauses(const std::vector<Clause>& cs) {
  std::ostringstream os;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (i > 0 && head_key(cs[i]) != head_key(cs[i - 1])) os << '\n';
    os << format_clause(cs[i]) << '\n';
  }
  return os.str();
}

}  // namespace motif::term
