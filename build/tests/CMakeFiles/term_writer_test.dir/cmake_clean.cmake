file(REMOVE_RECURSE
  "CMakeFiles/term_writer_test.dir/term_writer_test.cpp.o"
  "CMakeFiles/term_writer_test.dir/term_writer_test.cpp.o.d"
  "term_writer_test"
  "term_writer_test.pdb"
  "term_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
