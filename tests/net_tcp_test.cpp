// TCP transport tests, all in-process: two ranks on real localhost
// sockets (one thread per rank standing in for one OS process per rank —
// same code path the 2-process tools/net_launch.sh smoke exercises), a
// raw transport ping-pong below the cluster layer, and the
// backpressure/shutdown edges.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "motifs/dist_tree_reduce.hpp"
#include "net/cluster.hpp"
#include "net/transport.hpp"

namespace n = motif::net;
namespace rt = motif::rt;
using motif::term::Term;
using namespace std::chrono_literals;

namespace {

std::vector<std::string> localhost_peers(std::size_t ranks) {
  const auto ports = n::pick_free_ports(ranks);
  std::vector<std::string> peers;
  for (auto p : ports) peers.push_back("127.0.0.1:" + std::to_string(p));
  return peers;
}

}  // namespace

TEST(NetTcp, RawPingPong) {
  const auto peers = localhost_peers(2);

  auto t0 = n::make_tcp_transport(0, peers);
  auto t1 = n::make_tcp_transport(1, peers);

  std::mutex m;
  std::condition_variable cv;
  int pongs = 0;
  std::size_t pong_bytes = 0;

  t0->set_receiver([&](n::Frame&& f, std::size_t wire_bytes) {
    ASSERT_EQ(f.type, n::FrameType::Post);
    EXPECT_EQ(f.src_rank, 1u);
    EXPECT_EQ(f.payload.int_value(), 2 * 21);
    std::lock_guard<std::mutex> lk(m);
    ++pongs;
    pong_bytes = wire_bytes;
    cv.notify_all();
  });
  // Rank 1 echoes each ping back doubled.
  t1->set_receiver([&](n::Frame&& f, std::size_t) {
    n::Frame reply;
    reply.type = n::FrameType::Post;
    reply.src_rank = 1;
    reply.payload = Term::integer(2 * f.payload.int_value());
    t1->send(0, reply);
  });

  // Start order must not matter: dial retries cover the race.
  std::thread starter([&] { t1->start(); });
  t0->start();
  starter.join();

  n::Frame ping;
  ping.type = n::FrameType::Post;
  ping.src_rank = 0;
  ping.payload = Term::integer(21);
  const std::size_t sent = t0->send(1, ping);
  EXPECT_GT(sent, 0u);

  {
    std::unique_lock<std::mutex> lk(m);
    ASSERT_TRUE(cv.wait_for(lk, 10s, [&] { return pongs == 1; }));
    EXPECT_GT(pong_bytes, 0u);
  }

  t0->stop();
  t1->stop();
}

TEST(NetTcp, ManyFramesSurviveCoalescingAndBackpressure) {
  const auto peers = localhost_peers(2);
  auto t0 = n::make_tcp_transport(0, peers);
  auto t1 = n::make_tcp_transport(1, peers);

  constexpr int kFrames = 5000;
  std::mutex m;
  std::condition_variable cv;
  int got = 0;
  long long sum = 0;
  t0->set_receiver([](n::Frame&&, std::size_t) {});
  t1->set_receiver([&](n::Frame&& f, std::size_t) {
    std::lock_guard<std::mutex> lk(m);
    ++got;
    sum += f.payload.int_value();
    cv.notify_all();
  });

  std::thread starter([&] { t1->start(); });
  t0->start();
  starter.join();

  long long expect = 0;
  for (int i = 0; i < kFrames; ++i) {
    n::Frame f;
    f.type = n::FrameType::Post;
    f.src_rank = 0;
    f.payload = Term::integer(i);
    t0->send(1, f);  // blocks on the bounded queue rather than dropping
    expect += i;
  }
  {
    std::unique_lock<std::mutex> lk(m);
    ASSERT_TRUE(cv.wait_for(lk, 30s, [&] { return got == kFrames; }));
  }
  EXPECT_EQ(sum, expect);

  t0->stop();
  t1->stop();
}

TEST(NetTcp, SendAfterStopThrows) {
  const auto peers = localhost_peers(2);
  auto t0 = n::make_tcp_transport(0, peers);
  auto t1 = n::make_tcp_transport(1, peers);
  t0->set_receiver([](n::Frame&&, std::size_t) {});
  t1->set_receiver([](n::Frame&&, std::size_t) {});
  std::thread starter([&] { t1->start(); });
  t0->start();
  starter.join();
  t0->stop();
  t0->stop();  // idempotent

  n::Frame f;
  f.type = n::FrameType::Post;
  f.payload = Term::integer(1);
  EXPECT_THROW(t0->send(1, f), std::runtime_error);
  t1->stop();
}

TEST(NetTcp, StrayConnectionDoesNotAbortStartup) {
  const auto peers = localhost_peers(2);
  auto t0 = n::make_tcp_transport(0, peers);
  auto t1 = n::make_tcp_transport(1, peers);

  std::mutex m;
  std::condition_variable cv;
  int got = 0;
  t0->set_receiver([&](n::Frame&&, std::size_t) {
    std::lock_guard<std::mutex> lk(m);
    ++got;
    cv.notify_all();
  });
  t1->set_receiver([](n::Frame&&, std::size_t) {});

  // A port scanner / health checker hitting rank 0's listener during
  // bring-up: connects first, writes bytes that can never be a Hello
  // (length prefix far over kMaxFrameBytes), hangs up. The mesh must
  // still form around it.
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::stoi(peers[0].substr(peers[0].rfind(':') + 1)));
  std::atomic<bool> stray_done{false};
  std::thread stray([&] {
    for (int i = 0; i < 300; ++i) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(port);
      ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        const std::uint8_t junk[8] = {0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4};
        ::send(fd, junk, sizeof(junk), MSG_NOSIGNAL);
        ::close(fd);
        stray_done.store(true);
        return;
      }
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stray_done.store(true);  // listener never came up; start() will fail loudly
  });
  // Hold rank 1 back until the stray connection is already queued, so
  // accept_one() deterministically sees the garbage first.
  std::thread starter([&] {
    while (!stray_done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    t1->start();
  });
  t0->start();
  starter.join();
  stray.join();

  n::Frame f;
  f.type = n::FrameType::Post;
  f.src_rank = 1;
  f.payload = Term::integer(7);
  t1->send(0, f);
  {
    std::unique_lock<std::mutex> lk(m);
    ASSERT_TRUE(cv.wait_for(lk, 30s, [&] { return got == 1; }));
  }
  t0->stop();
  t1->stop();
}

TEST(NetTcp, DistTreeReduce2OverRealSockets) {
  const auto peers = localhost_peers(2);

  // Rank 1: the follower "process". Builds its own transport, cluster,
  // and motif, then sits in serve() until rank 0's Shutdown arrives.
  std::thread follower([&] {
    auto tp = n::make_tcp_transport(1, peers);
    n::ClusterConfig cfg;
    cfg.nodes_per_rank = 2;
    cfg.machine.seed = 0x5EED1ull;
    n::Cluster c(*tp, cfg);
    motif::DistTreeReduce2 tr(c);
    c.start();
    c.serve();
  });

  auto tp = n::make_tcp_transport(0, peers);
  rt::NetStats stats;
  {
    n::ClusterConfig cfg;
    cfg.nodes_per_rank = 2;
    cfg.machine.seed = 0x5EED0ull;
    n::Cluster c(*tp, cfg);
    motif::DistTreeReduce2 tr(c);
    c.start();

    const auto res = tr.run(6, 42, 60s);
    EXPECT_TRUE(res.ok) << res.outcome.to_string();
    EXPECT_EQ(res.value, res.expected);

    // Repeated generations over the same connections.
    const auto res2 = tr.run(5, 7, 60s);
    EXPECT_TRUE(res2.ok) << res2.outcome.to_string();
    EXPECT_EQ(res2.value, res2.expected);

    stats = c.net_stats();
    c.shutdown();
  }
  follower.join();

  EXPECT_GT(stats.tx_frames, 0u);
  EXPECT_GT(stats.rx_frames, 0u);
  EXPECT_GT(stats.tx_bytes, stats.tx_frames);  // every frame > 1 byte
  EXPECT_GT(stats.ctl_frames, 0u);
}
