file(REMOVE_RECURSE
  "libmotif_runtime.a"
)
