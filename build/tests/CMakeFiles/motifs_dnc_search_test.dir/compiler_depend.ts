# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for motifs_dnc_search_test.
