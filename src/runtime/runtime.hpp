// Umbrella header for the motif runtime (simulated multicomputer substrate).
#pragma once

#include "runtime/channel.hpp"
#include "runtime/fault.hpp"
#include "runtime/machine.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rng.hpp"
#include "runtime/stream.hpp"
#include "runtime/svar.hpp"
#include "runtime/termination.hpp"
