file(REMOVE_RECURSE
  "CMakeFiles/transform_motif_test.dir/transform_motif_test.cpp.o"
  "CMakeFiles/transform_motif_test.dir/transform_motif_test.cpp.o.d"
  "transform_motif_test"
  "transform_motif_test.pdb"
  "transform_motif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_motif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
