# Empty compiler generated dependencies file for motifs_scan_test.
# This may be replaced when dependencies are built.
