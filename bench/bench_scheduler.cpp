// Experiment E7 (DESIGN.md §4): the paper's reuse-through-modification
// example — "a scheduler motif might be adapted to the demands of a
// highly parallel computer by introducing additional levels in its
// manager/worker hierarchy" (Section 1).
//
// Series: workers {4,8,16,32,64} x task grain, flat vs 2-level hierarchy.
// Reported: messages handled by the TOP manager (its hotspot) and wall
// time.
//
// Expected shape: top-manager traffic drops by ~the batch factor with the
// hierarchy; the advantage grows with worker count.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "motifs/scheduler.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

constexpr int kTasks = 2000;

void run_case(benchmark::State& state, std::uint32_t levels) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  const auto grain = static_cast<std::uint64_t>(state.range(1));
  std::uint64_t manager_msgs = 0;
  for (auto _ : state) {
    rt::Machine mach({.nodes = workers + 1, .workers = 2, .seed = 17});
    m::Scheduler sched(mach, {.workers = workers,
                              .levels = levels,
                              .group = 4,
                              .batch = 16});
    for (int i = 0; i < kTasks; ++i) {
      sched.submit([grain] {
        volatile std::uint64_t h = 1469598103934665603ull;
        for (std::uint64_t k = 0; k < grain; ++k) {
          h = (h ^ k) * 1099511628211ull;
        }
      });
    }
    manager_msgs = sched.run();
  }
  state.counters["top_manager_msgs"] = static_cast<double>(manager_msgs);
  state.counters["msgs_per_task"] =
      static_cast<double>(manager_msgs) / kTasks;
}

void BM_FlatManagerWorker(benchmark::State& state) { run_case(state, 1); }
void BM_HierarchicalManagerWorker(benchmark::State& state) {
  run_case(state, 2);
  MOTIF_BENCH_REPORT(state);
}

void BM_DagDependencies(benchmark::State& state) {
  // A layered DAG: each layer depends on the previous; measures the
  // dependency-release path of the scheduler.
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    rt::Machine mach({.nodes = workers + 1, .workers = 2, .seed = 23});
    m::Scheduler sched(mach, {.workers = workers});
    std::vector<m::SchedTaskId> prev;
    for (int layer = 0; layer < 20; ++layer) {
      std::vector<m::SchedTaskId> cur;
      for (int i = 0; i < 16; ++i) {
        cur.push_back(sched.submit([] {}, prev));
      }
      prev = std::move(cur);
    }
    benchmark::DoNotOptimize(sched.run());
  }
  MOTIF_BENCH_REPORT(state);
}

void args(benchmark::internal::Benchmark* b) {
  for (int workers : {4, 8, 16, 32, 64}) {
    for (long grain : {0L, 2000L}) {
      b->Args({workers, grain});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_FlatManagerWorker)->Apply(args);
BENCHMARK(BM_HierarchicalManagerWorker)->Apply(args);
BENCHMARK(BM_DagDependencies)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
