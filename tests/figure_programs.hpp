// The paper's program figures, shared between the interpreter tests
// (interp_figures_test.cpp) and the motiflint sweep
// (analysis_sweep_test.cpp), which asserts each lints clean.
#pragma once

namespace motif_figures {

// Verbatim Figure 1 (rules R1-R5): the producer waits for each sync
// acknowledgement through the dataflow constraint `sync` in the rule head.
inline const char* kFigure1 = R"(
  go(N) :- producer(N,Xs,sync), consumer(Xs).
  producer(N,Xs,sync) :- N > 0 |
      Xs := [X|Xs1], N1 is N - 1, producer(N1,Xs1,X).
  producer(0,Xs,_) :- Xs := [].
  consumer([X|Xs]) :- X := sync, consumer(Xs).
  consumer([]).
)";

// Figure 2 part A: the node-evaluation function (also the whole "user
// program" of the Figure 5/6 pipeline and examples/strand_motifs).
inline const char* kEval = R"(
  eval('+',L,R,Value) :- Value is L + R.
  eval('*',L,R,Value) :- Value is L * R.
)";

// Section 3.1: the "more abstract" divide-and-conquer tree reduction
// with the @random pragma. Links with kEval.
inline const char* kAbstractReduce = R"(
  reduce(tree(V,L,R),Value) :-
      reduce(R,RV)@random, reduce(L,LV), eval(V,LV,RV,Value).
  reduce(leaf(L),Value) :- Value := L.
)";

// Figure 2 parts A-C shape, adapted to the port-based merge primitive: a
// server network where reduce ships one subtree to a random server via
// distribute/3, exactly like the transformed program of Figure 5.
inline const char* kFigure2Shape = R"(
  eval('+',L,R,Value) :- Value is L + R.
  eval('*',L,R,Value) :- Value is L * R.

  reduce(tree(V,L,R),Value,DT) :-
      length(DT,N), rand_num(N,O),
      distribute(O,reduce(R,RV),DT),
      reduce(L,LV,DT), eval(V,LV,RV,Value).
  reduce(leaf(L),Value,_) :- Value := L.

  server([reduce(T,V)|In],DT) :- reduce(T,V,DT), server(In,DT).
  server([halt|_],_).

  go(Tree,Value) :-
      make_ports(2,Ports,[I1,I2]), make_tuple(Ports,DT),
      server(I1,DT)@1, server(I2,DT)@2,
      reduce(Tree,Value,DT), finish(Value,DT).
  finish(V,DT) :- data(V) | send_all(halt,DT).
)";

}  // namespace motif_figures
