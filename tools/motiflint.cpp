// motiflint — static analysis for motif programs, from the command line.
//
//   $ motiflint prog.str                 lint one file
//   $ motiflint app.str lib.str          link several files, lint the union
//   $ motiflint --stdlib app.str         also link the interpreter stdlib
//   $ motiflint --entry main/2 app.str   + reachability from main/2
//   $ motiflint --assume eval/4 lib.str  treat eval/4 as defined elsewhere
//
// Diagnostics are structured, one per line:
//
//   prog.str:4:1: error: ML001 multiple-writers: variable X has multiple
//   potential writers (single-assignment violation) [p/1 rule 1]
//
// Exit status: 0 clean (or warnings only), 1 error-class findings
// (warnings too under --werror), 2 usage/file/parse problems.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "interp/stdlib.hpp"
#include "term/parser.hpp"
#include "term/program.hpp"

namespace an = motif::analysis;
using motif::term::ProcKey;
using motif::term::Program;

namespace {

int usage() {
  std::cerr
      << "usage: motiflint [options] FILE...\n"
         "  --entry NAME/ARITY   reachability root (repeatable)\n"
         "  --assume NAME/ARITY  treat as defined elsewhere (repeatable)\n"
         "  --stdlib             link the interpreter stdlib before linting\n"
         "  --no-singletons      suppress ML031 singleton warnings\n"
         "  --supervision        ML060: warn on remote posts outside a\n"
         "                       supervised/1 or timeout/2 wrapper\n"
         "  --werror             exit nonzero on warnings too\n"
         "  --quiet              print nothing, just set the exit status\n";
  return 2;
}

bool parse_key(const std::string& s, ProcKey& out) {
  const auto slash = s.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= s.size()) {
    return false;
  }
  try {
    out = ProcKey{s.substr(0, slash), std::stoul(s.substr(slash + 1))};
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  an::Options options;
  bool use_stdlib = false;
  bool werror = false;
  bool quiet = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--entry" || arg == "--assume") {
      if (i + 1 >= argc) return usage();
      ProcKey key;
      if (!parse_key(argv[++i], key)) {
        std::cerr << "motiflint: bad process key '" << argv[i]
                  << "' (expected name/arity)\n";
        return 2;
      }
      (arg == "--entry" ? options.entries : options.assume_defined)
          .push_back(std::move(key));
    } else if (arg == "--stdlib") {
      use_stdlib = true;
    } else if (arg == "--no-singletons") {
      options.singletons = false;
    } else if (arg == "--supervision") {
      options.supervision = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "motiflint: unknown option " << arg << "\n";
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return usage();

  // Link all files (then the stdlib) into one program, remembering which
  // clause-index range came from which file so diagnostics can name it.
  Program program;
  std::vector<std::pair<std::size_t, std::string>> origins;  // start, file
  for (const auto& file : files) {
    std::ifstream f(file);
    if (!f) {
      std::cerr << "motiflint: cannot open " << file << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    origins.emplace_back(program.clauses().size(), file);
    try {
      program = program.linked_with(Program::parse(buf.str()));
    } catch (const std::exception& e) {
      std::cerr << file << ": " << e.what() << "\n";
      return 2;
    }
  }
  const std::size_t user_clauses = program.clauses().size();
  if (use_stdlib) {
    origins.emplace_back(user_clauses, "<stdlib>");
    program = program.linked_with(motif::interp::stdlib());
  }

  // linked_with appends whole definitions in order, so clause order (and
  // with it the origin ranges) is preserved when definitions don't merge
  // across files; merged definitions attribute to the defining file.
  auto file_of = [&](std::size_t clause_index) {
    std::string name = origins.front().second;
    for (const auto& [start, file] : origins) {
      if (clause_index >= start) name = file;
    }
    return name;
  };

  const an::Report report = an::analyze(program, options);
  if (!quiet) {
    for (const auto& d : report.diagnostics) {
      std::cout << file_of(d.clause_index) << ":" << d.to_string() << "\n";
    }
    std::cout << "motiflint: " << report.errors() << " error(s), "
              << report.warnings() << " warning(s), "
              << program.clauses().size() << " clause(s)";
    if (report.clean()) std::cout << " — clean";
    std::cout << "\n";
  }
  const bool bad = report.errors() > 0 || (werror && !report.clean());
  return bad ? 1 : 0;
}
