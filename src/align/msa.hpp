// Multiple sequence alignment by guide-tree reduction — the paper's
// motivating application assembled end-to-end: leaves are single-sequence
// profiles, the align-node function (profile.hpp) is the eval operator,
// and any of the tree-reduction motifs produces the final alignment
// profile. "Defining eval to invoke the 'align-node' function provides a
// solution to the sequence alignment problem" (Section 3.1).
#pragma once

#include <string>
#include <vector>

#include "align/phylo.hpp"
#include "align/profile.hpp"
#include "motifs/tree.hpp"
#include "runtime/machine.hpp"

namespace motif::align {

enum class MsaSchedule {
  Sequential,   // reduce_sequential oracle
  TreeReduce1,  // random-mapped divide and conquer
  TreeReduce2,  // labelled, memory-bounded
};

struct MsaResult {
  Profile profile;
  double sum_of_pairs_score = 0.0;
};

/// Builds the reduction tree for `seqs` under `guide` (taxon-indexed
/// leaves) and reduces it with the chosen schedule. All schedules produce
/// the same alignment (the guide tree fixes the combination order).
MsaResult progressive_msa(rt::Machine& m,
                          const std::vector<std::string>& seqs,
                          const Tree<int, char>::Ptr& guide,
                          MsaSchedule schedule = MsaSchedule::TreeReduce2,
                          const ProfileAlignParams& params = {});

/// Convenience: UPGMA guide tree from k-mer distances, then align.
MsaResult progressive_msa_auto(rt::Machine& m,
                               const std::vector<std::string>& seqs,
                               MsaSchedule schedule = MsaSchedule::TreeReduce2,
                               const ProfileAlignParams& params = {});

/// A complete synthetic benchmark family: Yule phylogeny + evolved
/// sequences + the true guide tree.
struct SyntheticFamily {
  std::vector<std::string> sequences;
  Tree<int, char>::Ptr guide;
};
SyntheticFamily synthetic_family(std::size_t taxa, std::size_t root_length,
                                 std::uint64_t seed);

}  // namespace motif::align
