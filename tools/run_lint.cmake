# Runs motiflint on the seeded-violation demo file and checks that every
# violation class is flagged (with a clause span) and the exit status is 1.
execute_process(COMMAND ${LINT} ${BAD}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "motiflint should exit 1 on seeded violations, "
                      "got ${rc}\n${out}\n${err}")
endif()
foreach(code ML001 ML002 ML003 ML010 ML011 ML020 ML031 ML040)
  string(FIND "${out}" "${code}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "expected ${code} in motiflint output:\n${out}")
  endif()
endforeach()
# Clause-level spans: the ML001 line must carry file:line:col.
string(FIND "${out}" "lint_demo_bad.str:4:1: error: ML001" spos)
if(spos EQUAL -1)
  message(FATAL_ERROR "expected a file:line:col span on ML001:\n${out}")
endif()
