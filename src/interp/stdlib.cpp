#include "interp/stdlib.hpp"

namespace motif::interp {

term::Program stdlib() {
  static const char* kSrc = R"(
    % append(Xs, Ys, Zs): Zs is Xs ++ Ys. Works with unbound tails
    % (difference-list style), producing output incrementally.
    append([], Ys, Zs) :- Zs := Ys.
    append([X|Xs], Ys, Zs) :- Zs := [X|Zs1], append(Xs, Ys, Zs1).

    % reverse/2 via an accumulator.
    reverse(Xs, Ys) :- rev_acc(Xs, [], Ys).
    rev_acc([], Acc, Ys) :- Ys := Acc.
    rev_acc([X|Xs], Acc, Ys) :- rev_acc(Xs, [X|Acc], Ys).

    % len/2: list length (the length/2 builtin also accepts tuples; this
    % is the library version, usable as a template for modification).
    len([], N) :- N := 0.
    len([_|Xs], N) :- len(Xs, N1), N is N1 + 1.

    % sum_list/2 and max_list/2 over numbers.
    sum_list([], S) :- S := 0.
    sum_list([X|Xs], S) :- sum_list(Xs, S1), S is X + S1.

    max_list([X], M) :- M := X.
    max_list([X,Y|Xs], M) :- X >= Y | max_list([X|Xs], M).
    max_list([X,Y|Xs], M) :- X < Y | max_list([Y|Xs], M).

    % nth(N, Xs, Y): 1-based element access.
    nth(1, [X|_], Y) :- Y := X.
    nth(N, [_|Xs], Y) :- N > 1 | N1 is N - 1, nth(N1, Xs, Y).

    % last/2.
    last([X], Y) :- Y := X.
    last([_,X|Xs], Y) :- last([X|Xs], Y).

    % Concurrent quicksort: the two recursive sorts and the partition all
    % run as independent processes synchronised purely by dataflow.
    qsort([], S) :- S := [].
    qsort([X|Xs], S) :-
        part(X, Xs, Lo, Hi),
        qsort(Lo, SL),
        qsort(Hi, SH),
        append(SL, [X|SH], S).

    part(_, [], Lo, Hi) :- Lo := [], Hi := [].
    part(P, [X|Xs], Lo, Hi) :- X =< P |
        Lo := [X|Lo1], part(P, Xs, Lo1, Hi).
    part(P, [X|Xs], Lo, Hi) :- X > P |
        Hi := [X|Hi1], part(P, Xs, Lo, Hi1).
  )";
  static const term::Program kLib = term::Program::parse(kSrc);
  return kLib;
}

}  // namespace motif::interp
