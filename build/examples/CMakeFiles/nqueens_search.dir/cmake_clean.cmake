file(REMOVE_RECURSE
  "CMakeFiles/nqueens_search.dir/nqueens_search.cpp.o"
  "CMakeFiles/nqueens_search.dir/nqueens_search.cpp.o.d"
  "nqueens_search"
  "nqueens_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nqueens_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
