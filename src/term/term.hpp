// Terms: the data model of the paper's high-level language (Section 2.1).
//
// "Programs are represented as structured terms and transformations as
// programs that manipulate these terms" — this module provides that
// representation for both roles:
//   * syntax trees manipulated by the transformation engine (src/transform)
//   * run-time values manipulated by the concurrent interpreter (src/interp)
//
// A Term is an immutable handle except for variables, which are
// single-assignment cells (bind once; binding to another variable creates
// an alias chain followed by deref()). The supported shapes follow Strand:
//   variables      X, Xs1, _
//   atoms          foo, [], 'quoted atom', +, :=
//   integers       42          floats  3.14       strings  "text"
//   lists          [H|T] encoded as '.'(H,T), [] as the nil atom
//   tuples         {a,b,c} encoded as functor "{}"
//   compounds      f(A,B)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace motif::term {

enum class Tag : std::uint8_t { Var, Atom, Int, Float, Str, Compound };

class Term;

/// Thrown on a second assignment to a bound variable (Strand run-time error).
class BindError : public std::logic_error {
 public:
  explicit BindError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
struct Node;
using NodePtr = std::shared_ptr<Node>;
}  // namespace detail

class Term {
 public:
  /// Default-constructed Term is the atom [] (nil); keeps containers easy.
  Term();

  // --- constructors -------------------------------------------------------
  static Term var(std::string name = "_");
  static Term atom(std::string name);
  static Term integer(std::int64_t v);
  static Term real(double v);
  static Term str(std::string v);
  static Term compound(std::string functor, std::vector<Term> args);
  static Term tuple(std::vector<Term> args);
  static Term nil();
  static Term cons(Term head, Term tail);
  /// Proper list of `items`, or partial list ending in `tail`.
  static Term list(std::vector<Term> items, Term tail = nil());

  // --- inspection (all operate on the dereferenced term) ------------------
  /// Follows variable bindings to the representative term.
  Term deref() const;

  Tag tag() const;
  bool is_var() const { return tag() == Tag::Var; }
  bool is_atom() const { return tag() == Tag::Atom; }
  bool is_int() const { return tag() == Tag::Int; }
  bool is_float() const { return tag() == Tag::Float; }
  bool is_number() const { return is_int() || is_float(); }
  bool is_str() const { return tag() == Tag::Str; }
  bool is_compound() const { return tag() == Tag::Compound; }
  bool is_nil() const;
  bool is_cons() const;
  bool is_tuple() const;
  /// True for nil or cons (not necessarily a *proper* list).
  bool is_list_cell() const { return is_nil() || is_cons(); }

  /// Atom or compound functor name. Throws for other tags.
  const std::string& functor() const;
  /// Number of arguments (0 for atoms). Throws unless atom/compound.
  std::size_t arity() const;
  const std::vector<Term>& args() const;
  Term arg(std::size_t i) const;

  std::int64_t int_value() const;
  double float_value() const;
  double as_double() const;  // int or float
  const std::string& str_value() const;

  /// Variable name as written in the source ("_" for anonymous).
  const std::string& var_name() const;

  Term head() const { return arg(0); }  // of a cons cell
  Term tail() const { return arg(1); }

  /// Collects a proper list into a vector; returns nullopt if the spine
  /// ends in something other than nil (unbound tail or improper list).
  std::optional<std::vector<Term>> proper_list() const;

  // --- variables (single-assignment, thread-safe) --------------------------
  /// Binds this (dereferenced) variable to `value`. Throws BindError if the
  /// dereferenced term is not an unbound variable, or on self-alias.
  /// Registered waiters run on the caller's thread after the bind.
  void bind(Term value) const;

  /// True if deref() is no longer a variable.
  bool bound() const { return !deref().is_var(); }

  /// Runs `f` when this variable is bound (inline if already bound, or if
  /// this term is not a variable at all). Used by the interpreter to
  /// suspend processes on dataflow.
  void when_bound(std::function<void()> f) const;

  // --- structure -----------------------------------------------------------
  /// Structural equality on dereferenced terms; unbound variables are equal
  /// only to themselves (same cell).
  bool equals(const Term& other) const;

  /// Identity of the underlying node (post-deref for vars only if desired
  /// by caller; this compares raw handles).
  bool same_node(const Term& other) const { return n_ == other.n_; }

  /// True if the dereferenced term contains no unbound variables.
  bool ground() const;

  /// All distinct unbound variables in the term, in first-occurrence order.
  std::vector<Term> variables() const;

  /// Canonical source syntax; see also writer.hpp for program printing.
  std::string to_string() const;

 private:
  explicit Term(detail::NodePtr n) : n_(std::move(n)) {}
  detail::NodePtr n_;
  friend struct detail::Node;
  friend struct TermHash;
};

/// Hash of the *node identity* (not structure) — for var->replacement maps.
struct TermHash {
  std::size_t operator()(const Term& t) const {
    return std::hash<const void*>()(static_cast<const void*>(t.n_.get()));
  }
};
struct TermIdEq {
  bool operator()(const Term& a, const Term& b) const { return a.same_node(b); }
};

inline bool operator==(const Term& a, const Term& b) { return a.equals(b); }
inline bool operator!=(const Term& a, const Term& b) { return !a.equals(b); }

}  // namespace motif::term
