#include "runtime/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace rt = motif::rt;

TEST(Rng, DeterministicForSeed) {
  rt::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  rt::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsNotStuck) {
  rt::Rng r(0);
  EXPECT_NE(r.next(), r.next());
}

TEST(Rng, BelowIsInRange) {
  rt::Rng r(7);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(n), n);
  }
}

TEST(Rng, BelowOneIsZero) {
  rt::Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  rt::Rng r(123);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::array<int, kBuckets> hist{};
  for (int i = 0; i < kSamples; ++i) ++hist[r.below(kBuckets)];
  const double expected = double(kSamples) / kBuckets;
  for (int c : hist) {
    EXPECT_NEAR(c, expected, expected * 0.08);
  }
}

TEST(Rng, RangeInclusive) {
  rt::Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    auto v = r.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  rt::Rng r(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ExponentialMean) {
  rt::Rng r(13);
  double sum = 0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  rt::Rng r(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(3.0, 1.5), 3.0);
}

TEST(Rng, ParetoIsHeavyTailed) {
  // For alpha=1.1 the sample max over 50k draws should dwarf the median.
  rt::Rng r(19);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = r.pareto(1.0, 1.1);
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  const double median = xs[xs.size() / 2];
  const double mx = *std::max_element(xs.begin(), xs.end());
  EXPECT_GT(mx, 100 * median);
}

TEST(Rng, BernoulliProbability) {
  rt::Rng r(23);
  int hits = 0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Splitmix, KnownStable) {
  std::uint64_t x = 0;
  auto a = rt::splitmix64(x);
  auto b = rt::splitmix64(x);
  EXPECT_NE(a, b);
  std::uint64_t y = 0;
  EXPECT_EQ(rt::splitmix64(y), a);
}
