file(REMOVE_RECURSE
  "CMakeFiles/runtime_termination_test.dir/runtime_termination_test.cpp.o"
  "CMakeFiles/runtime_termination_test.dir/runtime_termination_test.cpp.o.d"
  "runtime_termination_test"
  "runtime_termination_test.pdb"
  "runtime_termination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_termination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
