// Divide-and-conquer and search motifs: fib/quadrature via D&C; n-queens,
// subset-sum and knapsack via the or-parallel search skeletons.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "motifs/dnc.hpp"
#include "motifs/search.hpp"

namespace m = motif;
namespace rt = motif::rt;

// ---- divide and conquer -----------------------------------------------------

TEST(DnC, FibonacciMatchesClosedLoop) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto fib = m::divide_and_conquer<int, long>(
      mach, 18,
      [](const int& n) { return n < 2; },
      [](int n) { return static_cast<long>(n); },
      [](const int& n) { return std::vector<int>{n - 1, n - 2}; },
      [](const int&, std::vector<long> rs) { return rs[0] + rs[1]; });
  long a = 0, b = 1;
  for (int i = 0; i < 18; ++i) {
    long t = a + b;
    a = b;
    b = t;
  }
  EXPECT_EQ(fib, a);
}

TEST(DnC, BaseCaseOnlyProblem) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  auto r = m::divide_and_conquer<int, int>(
      mach, 5, [](const int&) { return true; }, [](int n) { return n * n; },
      [](const int&) { return std::vector<int>{}; },
      [](const int&, std::vector<int>) { return -1; });
  EXPECT_EQ(r, 25);
}

TEST(DnC, ThreeWaySplit) {
  // Sum over [0, 3^5) via ternary splits.
  rt::Machine mach({.nodes = 4, .workers = 2});
  using Range = std::pair<long, long>;
  auto r = m::divide_and_conquer<Range, long>(
      mach, Range{0, 243},
      [](const Range& x) { return x.second - x.first <= 3; },
      [](Range x) {
        long s = 0;
        for (long i = x.first; i < x.second; ++i) s += i;
        return s;
      },
      [](const Range& x) {
        const long third = (x.second - x.first) / 3;
        return std::vector<Range>{{x.first, x.first + third},
                                  {x.first + third, x.first + 2 * third},
                                  {x.first + 2 * third, x.second}};
      },
      [](const Range&, std::vector<long> rs) {
        return std::accumulate(rs.begin(), rs.end(), 0L);
      });
  EXPECT_EQ(r, 242L * 243 / 2);
}

TEST(DnC, QuadratureConverges) {
  // Adaptive-ish trapezoid integral of x^2 over [0,1] = 1/3.
  rt::Machine mach({.nodes = 4, .workers = 2});
  using Seg = std::pair<double, double>;
  auto f = [](double x) { return x * x; };
  auto r = m::divide_and_conquer<Seg, double>(
      mach, Seg{0.0, 1.0},
      [](const Seg& s) { return s.second - s.first < 1e-3; },
      [f](Seg s) {
        return 0.5 * (f(s.first) + f(s.second)) * (s.second - s.first);
      },
      [](const Seg& s) {
        const double mid = 0.5 * (s.first + s.second);
        return std::vector<Seg>{{s.first, mid}, {mid, s.second}};
      },
      [](const Seg&, std::vector<double> rs) { return rs[0] + rs[1]; });
  EXPECT_NEAR(r, 1.0 / 3.0, 1e-6);
}

// ---- search -----------------------------------------------------------------

namespace {

/// N-queens state: one queen per row, columns of placed queens.
struct Queens {
  int n;
  std::vector<int> cols;
  bool ok(int c) const {
    const int r = static_cast<int>(cols.size());
    for (int i = 0; i < r; ++i) {
      if (cols[i] == c || std::abs(cols[i] - c) == r - i) return false;
    }
    return true;
  }
};

std::vector<Queens> expand_queens(const Queens& q) {
  std::vector<Queens> out;
  if (static_cast<int>(q.cols.size()) == q.n) return out;
  for (int c = 0; c < q.n; ++c) {
    if (q.ok(c)) {
      Queens next = q;
      next.cols.push_back(c);
      out.push_back(std::move(next));
    }
  }
  return out;
}

bool queens_solved(const Queens& q) {
  return static_cast<int>(q.cols.size()) == q.n;
}

}  // namespace

class QueensCounts : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QueensCounts, MatchesKnownSolutionCounts) {
  const auto [n, expected] = GetParam();
  rt::Machine mach({.nodes = 8, .workers = 2});
  const auto count = m::count_solutions<Queens>(
      mach, Queens{n, {}}, expand_queens, queens_solved, 2);
  EXPECT_EQ(count, static_cast<std::uint64_t>(expected));
}

INSTANTIATE_TEST_SUITE_P(
    KnownBoards, QueensCounts,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 0}, std::pair{3, 0},
                      std::pair{4, 2}, std::pair{5, 10}, std::pair{6, 4},
                      std::pair{7, 40}, std::pair{8, 92}),
    [](const auto& info) { return "n" + std::to_string(info.param.first); });

TEST(Search, FindFirstQueensSolutionIsValid) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto sol = m::find_first<Queens>(mach, Queens{6, {}}, expand_queens,
                                   queens_solved, 2);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->cols.size(), 6u);
  // Verify no attacks.
  for (std::size_t i = 0; i < sol->cols.size(); ++i) {
    for (std::size_t j = i + 1; j < sol->cols.size(); ++j) {
      EXPECT_NE(sol->cols[i], sol->cols[j]);
      EXPECT_NE(std::abs(sol->cols[i] - sol->cols[j]),
                static_cast<int>(j - i));
    }
  }
}

TEST(Search, FindFirstReturnsNulloptWhenNoSolution) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto sol = m::find_first<Queens>(mach, Queens{3, {}}, expand_queens,
                                   queens_solved, 1);
  EXPECT_FALSE(sol.has_value());
}

TEST(Search, CountOnDeepGrainStillCorrect) {
  rt::Machine mach({.nodes = 2, .workers = 2});
  // grain 0: everything sequential after root — still 92 for 8-queens.
  const auto count = m::count_solutions<Queens>(
      mach, Queens{8, {}}, expand_queens, queens_solved, 0);
  EXPECT_EQ(count, 92u);
}

namespace {

/// 0/1 knapsack state for branch&bound.
struct Knap {
  std::size_t idx = 0;
  std::int64_t weight = 0;
  std::int64_t value = 0;
};

struct KnapProblem {
  std::vector<std::int64_t> w, v;
  std::int64_t cap;
};

std::int64_t knap_best_seq(const KnapProblem& p) {
  std::vector<std::int64_t> dp(static_cast<std::size_t>(p.cap) + 1, 0);
  for (std::size_t i = 0; i < p.w.size(); ++i) {
    for (std::int64_t c = p.cap; c >= p.w[i]; --c) {
      dp[c] = std::max(dp[c], dp[c - p.w[i]] + p.v[i]);
    }
  }
  return dp[static_cast<std::size_t>(p.cap)];
}

}  // namespace

TEST(Search, BranchAndBoundKnapsackMatchesDP) {
  KnapProblem p;
  rt::Rng rng(99);
  for (int i = 0; i < 16; ++i) {
    p.w.push_back(1 + static_cast<std::int64_t>(rng.below(12)));
    p.v.push_back(1 + static_cast<std::int64_t>(rng.below(30)));
  }
  p.cap = 40;
  const std::int64_t expect = knap_best_seq(p);

  rt::Machine mach({.nodes = 4, .workers = 2});
  auto expand = [&p](const Knap& k) {
    std::vector<Knap> out;
    if (k.idx == p.w.size()) return out;
    out.push_back({k.idx + 1, k.weight, k.value});  // skip item
    if (k.weight + p.w[k.idx] <= p.cap) {
      out.push_back(
          {k.idx + 1, k.weight + p.w[k.idx], k.value + p.v[k.idx]});
    }
    return out;
  };
  auto value = [](const Knap& k) { return k.value; };
  auto bound = [&p](const Knap& k) {
    std::int64_t b = k.value;
    for (std::size_t i = k.idx; i < p.v.size(); ++i) b += p.v[i];
    return b;  // loose upper bound: take everything remaining
  };
  auto best = m::branch_and_bound<Knap>(mach, Knap{}, expand, value, bound, 3);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, expect);
}

TEST(Search, BranchAndBoundEmptySpace) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  // Root expands to nothing and IS a leaf -> its value is the answer.
  auto best = m::branch_and_bound<int>(
      mach, 7, [](const int&) { return std::vector<int>{}; },
      [](const int& v) { return static_cast<std::int64_t>(v); },
      [](const int&) { return std::int64_t{100}; });
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, 7);
}
