// The Terminate motif: Section 3.3's sketched extension, implemented —
// "the associated transformation can be extended to thread a short
// circuit [8] through the application program and to add code to invoke
// the Server motif's halt operation when the application terminates."
//
// Transformation:
//  * Every process definition of the application gains two circuit
//    arguments (Cl, Cr).
//  * In each clause body the circuit is split across the goals: the i-th
//    threaded goal receives segment (Mi-1, Mi); the last receives
//    (..., Cr); a clause with no threaded goals shorts its segment with
//    Cl := Cr.
//  * Calls to defined processes are threaded directly. The
//    value-producing builtins := and is are wrapped —
//        X := E  ->  tw_assign(X, E, Mi-1, Mi)
//        X is E  ->  tw_is(X, E, Mi-1, Mi)
//    — whose library shorts the segment only once the value exists
//    (data(X)), so the circuit cannot close while an assignment is still
//    suspended on dataflow. Other builtins are treated as instantaneous.
//  * Placement annotations are preserved: an @random goal carries its
//    circuit segment inside the eventual message, so the Rand/Server
//    dispatch keeps the circuit intact across processors.
//  * A terminating entry point is generated:
//        <entry>_tw(V1..Vn) :- <entry>(V1..Vn, closed, R), tw_watch(R).
//        tw_watch(R) :- data(R) | halt.
//    When every process has reduced and every wrapped assignment has
//    delivered, `closed` propagates along the aliased circuit to R and
//    halt is broadcast.
//
// Composition (the paper's Figure 6 pipeline with the extension):
//    Terminating-Tree-Reduce-1 = Server ∘ Rand ∘ Terminate ∘ Tree1.
#pragma once

#include "term/program.hpp"
#include "transform/motif.hpp"

namespace motif::transform {

/// Builds the Terminate motif; `entry` is the process whose completion
/// should trigger halt (it gains the _tw wrapper).
Motif terminate_motif(term::ProcKey entry);

/// The tw_assign/tw_is/tw_done/tw_watch library on its own.
term::Program terminate_library();

/// The full terminating tree-reduction pipeline of the paper:
/// Server ∘ Rand ∘ Terminate(reduce/2) ∘ Tree1. Entry message:
/// create(N, reduce_tw(Tree, Value)).
Motif tree_reduce1_terminating_motif();

}  // namespace motif::transform
