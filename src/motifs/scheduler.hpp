// The scheduler motif: dynamic allocation of tasks to idle processors
// (paper Section 2.2 and reference [6]; in the spirit of the Argonne
// Schedule package: "a user provides a set of procedures and defines data
// dependencies between them; the system schedules their execution").
//
// Two layouts:
//  * Flat manager/worker — one manager (node 0) holds the ready queue;
//    idle workers request work with messages; the manager replies with a
//    task or records the worker as idle.
//  * Hierarchical — the paper's "reuse through modification" example:
//    "a scheduler motif might be adapted to the demands of a highly
//    parallel computer by introducing additional levels in its
//    manager/worker hierarchy" (Section 1). Sub-managers own worker
//    groups; each steals batches from the top manager, so top-manager
//    traffic drops by the batch factor.
//
// Tasks may declare dependencies (a DAG); a task becomes ready when all
// its dependencies completed. Task bodies run on worker nodes and may
// report virtual cost via Machine::add_work.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/machine.hpp"
#include "runtime/svar.hpp"
#include "runtime/trace.hpp"

namespace motif {

using SchedTaskId = std::uint64_t;

struct SchedulerOptions {
  /// Worker nodes are 1..workers (node 0 is the manager). 0 = all
  /// remaining machine nodes.
  std::uint32_t workers = 0;
  /// 1 = flat manager/worker; 2 = one sub-manager per `group` workers.
  std::uint32_t levels = 1;
  /// Workers per sub-manager (levels == 2).
  std::uint32_t group = 4;
  /// Tasks handed to a sub-manager per request (levels == 2).
  std::uint32_t batch = 8;
};

/// Dynamic DAG scheduler. Usage:
///   Scheduler s(machine, opts);
///   auto a = s.submit([]{...});
///   auto b = s.submit([]{...}, {a});
///   s.run();            // blocks until every submitted task completed
/// submit() is only legal before run().
class Scheduler {
 public:
  using Body = std::function<void()>;

  Scheduler(rt::Machine& m, SchedulerOptions opts = {}) : m_(m), opts_(opts) {
    if (m.node_count() < 2) {
      throw std::invalid_argument("scheduler needs >= 2 nodes");
    }
    if (opts_.workers == 0) opts_.workers = m.node_count() - 1;
    if (opts_.workers > m.node_count() - 1) {
      throw std::invalid_argument("more workers than nodes");
    }
    if (opts_.levels < 1 || opts_.levels > 2) {
      throw std::invalid_argument("levels must be 1 or 2");
    }
  }

  /// Registers a task; `deps` must already be submitted ids.
  SchedTaskId submit(Body body, std::vector<SchedTaskId> deps = {}) {
    const SchedTaskId id = tasks_.size();
    for (SchedTaskId d : deps) {
      if (d >= id) throw std::invalid_argument("dependency not submitted");
    }
    tasks_.push_back(TaskRec{std::move(body), std::move(deps), 0});
    return id;
  }

  std::size_t task_count() const { return tasks_.size(); }

  /// Runs all tasks to completion. Returns the number of messages the
  /// top-level manager handled (the hotspot metric of experiment E7).
  std::uint64_t run() {
    if (tasks_.empty()) return 0;
    auto st = std::make_shared<Run>(m_, opts_, std::move(tasks_));
    tasks_.clear();
    st->start();
    // Quiesce first: a throwing task body surfaces here instead of
    // wedging the completion wait.
    m_.wait_idle();
    if (!st->done.bound()) {
      throw std::logic_error("scheduler stalled without completing");
    }
    return st->manager_msgs.load(std::memory_order_relaxed);
  }

  /// Deadline-bounded run for chaos conditions: never hangs and never
  /// throws on stall — returns the classified RunOutcome (a quiesced run
  /// whose completion variable went unbound is refined to Stalled, or
  /// NodeLost when servers died) plus the manager-message count so far.
  std::pair<rt::RunOutcome, std::uint64_t> run_for(
      std::chrono::nanoseconds deadline) {
    if (tasks_.empty()) return {rt::RunOutcome{}, 0};
    auto st = std::make_shared<Run>(m_, opts_, std::move(tasks_));
    tasks_.clear();
    st->done.set_name("scheduler.done");
    st->start();
    rt::RunOutcome o = m_.wait_idle_for(deadline);
    if (o.status == rt::RunStatus::Completed && !st->done.bound()) {
      o.status = o.lost_nodes.empty() ? rt::RunStatus::Stalled
                                      : rt::RunStatus::NodeLost;
      o.blocked_on = "scheduler.done";
    }
    return {std::move(o), st->manager_msgs.load(std::memory_order_relaxed)};
  }

 private:
  struct TaskRec {
    Body body;
    std::vector<SchedTaskId> deps;
    std::uint32_t pending_deps;
  };

  struct Run : std::enable_shared_from_this<Run> {
    rt::Machine& m;
    SchedulerOptions opts;
    std::vector<TaskRec> tasks;
    std::vector<std::vector<SchedTaskId>> dependents;
    std::deque<SchedTaskId> ready;          // manager-owned (node 0 only)
    std::deque<std::uint32_t> idle_targets; // workers or sub-managers
    std::size_t remaining;
    rt::SVar<bool> done;
    std::atomic<std::uint64_t> manager_msgs{0};

    // Sub-manager state (levels == 2); index = sub-manager ordinal.
    struct Sub {
      rt::NodeId node = 0;               // runs on its first worker's node
      std::deque<SchedTaskId> queue;
      std::deque<rt::NodeId> idle_workers;
      bool awaiting_batch = false;
      std::vector<rt::NodeId> workers;
    };
    std::vector<Sub> subs;

    Run(rt::Machine& mm, SchedulerOptions o, std::vector<TaskRec> ts)
        : m(mm), opts(o), tasks(std::move(ts)),
          dependents(tasks.size()), remaining(tasks.size()) {
      for (SchedTaskId i = 0; i < tasks.size(); ++i) {
        tasks[i].pending_deps =
            static_cast<std::uint32_t>(tasks[i].deps.size());
        for (SchedTaskId d : tasks[i].deps) dependents[d].push_back(i);
      }
    }

    // ---- common ----------------------------------------------------------

    void start() {
      auto self = this->shared_from_this();
      m.post(0, [self] {
        for (SchedTaskId i = 0; i < self->tasks.size(); ++i) {
          if (self->tasks[i].pending_deps == 0) self->ready.push_back(i);
        }
        if (self->opts.levels == 1) {
          for (std::uint32_t w = 1; w <= self->opts.workers; ++w) {
            self->flat_request(w);
          }
        } else {
          self->setup_subs();
        }
      });
    }

    void finish_task(SchedTaskId id) {
      // Runs on the manager (node 0): release dependents.
      for (SchedTaskId dep : dependents[id]) {
        if (--tasks[dep].pending_deps == 0) ready.push_back(dep);
      }
      if (--remaining == 0) done.bind(true);
    }

    // ---- flat manager/worker ----------------------------------------------

    void flat_request(std::uint32_t worker) {
      // Runs on node 0.
      TRACE_SPAN("scheduler.manager");
      manager_msgs.fetch_add(1, std::memory_order_relaxed);
      if (ready.empty()) {
        idle_targets.push_back(worker);
        return;
      }
      const SchedTaskId id = ready.front();
      ready.pop_front();
      dispatch_flat(worker, id);
    }

    void dispatch_flat(std::uint32_t worker, SchedTaskId id) {
      auto self = this->shared_from_this();
      m.post(worker, [self, id, worker] {
        {
          TRACE_SPAN("scheduler.task");
          self->tasks[id].body();
        }
        self->m.post(0, [self, id, worker] {
          self->manager_msgs.fetch_add(1, std::memory_order_relaxed);
          self->finish_task(id);
          // Newly released tasks may satisfy idle workers.
          self->drain_idle_flat();
          self->flat_request(worker);
        });
      });
    }

    void drain_idle_flat() {
      while (!ready.empty() && !idle_targets.empty()) {
        const std::uint32_t w = idle_targets.front();
        idle_targets.pop_front();
        const SchedTaskId id = ready.front();
        ready.pop_front();
        dispatch_flat(w, id);
      }
    }

    // ---- hierarchical ------------------------------------------------------

    void setup_subs() {
      const std::uint32_t n_subs =
          (opts.workers + opts.group - 1) / opts.group;
      subs.resize(n_subs);
      for (std::uint32_t s = 0; s < n_subs; ++s) {
        const std::uint32_t first = 1 + s * opts.group;
        const std::uint32_t last =
            std::min(opts.workers, first + opts.group - 1);
        subs[s].node = first;  // sub-manager shares its first worker's node
        for (std::uint32_t w = first; w <= last; ++w) {
          subs[s].workers.push_back(w);
        }
      }
      for (std::uint32_t s = 0; s < n_subs; ++s) sub_ask_top(s);
    }

    /// Sub-manager s asks the top manager for a batch (runs on node 0).
    void sub_ask_top(std::uint32_t s) {
      TRACE_SPAN("scheduler.manager");
      manager_msgs.fetch_add(1, std::memory_order_relaxed);
      if (ready.empty()) {
        idle_targets.push_back(s);
        return;
      }
      std::vector<SchedTaskId> batch;
      for (std::uint32_t k = 0; k < opts.batch && !ready.empty(); ++k) {
        batch.push_back(ready.front());
        ready.pop_front();
      }
      auto self = this->shared_from_this();
      m.post(subs[s].node, [self, s, batch = std::move(batch)] {
        self->sub_receive_batch(s, batch);
      });
    }

    /// Runs on sub-manager s's node.
    void sub_receive_batch(std::uint32_t s, const std::vector<SchedTaskId>& b) {
      Sub& sub = subs[s];
      sub.awaiting_batch = false;
      for (SchedTaskId id : b) sub.queue.push_back(id);
      if (sub.idle_workers.empty() && !b.empty()) {
        // First batch: all workers idle but not yet registered.
        for (rt::NodeId w : sub.workers) sub.idle_workers.push_back(w);
      }
      sub_drain(s);
    }

    void sub_drain(std::uint32_t s) {
      Sub& sub = subs[s];
      auto self = this->shared_from_this();
      while (!sub.queue.empty() && !sub.idle_workers.empty()) {
        const rt::NodeId w = sub.idle_workers.front();
        sub.idle_workers.pop_front();
        const SchedTaskId id = sub.queue.front();
        sub.queue.pop_front();
        m.post(w, [self, s, id, w] {
          {
            TRACE_SPAN("scheduler.task");
            self->tasks[id].body();
          }
          // Report completion to the top manager; rejoin the sub's pool.
          self->m.post(0, [self, id] {
            self->manager_msgs.fetch_add(1, std::memory_order_relaxed);
            self->finish_task(id);
            self->drain_idle_subs();
          });
          self->m.post(self->subs[s].node, [self, s, w] {
            self->subs[s].idle_workers.push_back(w);
            self->sub_drain(s);
            self->maybe_refill(s);
          });
        });
      }
      maybe_refill(s);
    }

    void maybe_refill(std::uint32_t s) {
      Sub& sub = subs[s];
      if (sub.queue.empty() && !sub.awaiting_batch) {
        sub.awaiting_batch = true;
        auto self = this->shared_from_this();
        m.post(0, [self, s] { self->sub_ask_top(s); });
      }
    }

    void drain_idle_subs() {
      while (!ready.empty() && !idle_targets.empty()) {
        const std::uint32_t s = idle_targets.front();
        idle_targets.pop_front();
        sub_ask_top(s);
      }
    }
  };

  rt::Machine& m_;
  SchedulerOptions opts_;
  std::vector<TaskRec> tasks_;
};

}  // namespace motif
