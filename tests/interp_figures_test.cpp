// Executable reproductions of the paper's program figures.
//
//  * Figure 1: the producer/consumer program with stream communication and
//    sync acknowledgements.
//  * Section 3.1: the "more abstract" four-line divide-and-conquer tree
//    reduction with the @random pragma (run directly: the interpreter
//    supports the pragma natively; the Rand/Server transformations are
//    exercised in the transform tests).
//  * Figure 2 parts A-C shape: reduce/eval/server with explicit streams.
#include <gtest/gtest.h>

#include "figure_programs.hpp"
#include "interp/interp.hpp"
#include "term/parser.hpp"
#include "term/writer.hpp"

namespace in = motif::interp;
using in::Interp;
using in::InterpOptions;
using motif::term::parse_term;
using motif::term::Program;
using motif::term::Term;
using motif_figures::kAbstractReduce;
using motif_figures::kEval;
using motif_figures::kFigure1;

namespace {

InterpOptions nodes(std::uint32_t n) {
  InterpOptions o;
  o.nodes = n;
  o.workers = 2;
  return o;
}

// The paper's example expression evaluating to 24: (3*2)*((2+(3+1))
// written as a binary tree — (3*2) * (2+2) = 24 with leaves 3,2,2,3,1?
// We use the unambiguous (3*2)*(2*2) = 24 shape: '*'('*'(3,2),'+'(3,1)).
std::string paper_tree() {
  // (3*2) * (3+1) = 6 * 4 = 24
  return "tree('*',tree('*',leaf(3),leaf(2)),tree('+',leaf(3),leaf(1)))";
}

}  // namespace

TEST(Figure1, RunsToCompletionSmall) {
  Interp i(Program::parse(kFigure1), nodes(2));
  auto [goal, r] = i.run_query("go(4)");
  EXPECT_FALSE(r.deadlocked());
  // 4 producer steps + final, 4 consumer steps + final, plus go itself.
  EXPECT_GE(r.reductions, 10u);
}

TEST(Figure1, SynchronousCouplingManyMessages) {
  Interp i(Program::parse(kFigure1), nodes(2));
  auto [goal, r] = i.run_query("go(2000)");
  EXPECT_FALSE(r.deadlocked());
  EXPECT_GE(r.reductions, 4000u);
}

TEST(Figure1, ZeroMessages) {
  Interp i(Program::parse(kFigure1), nodes(2));
  auto [goal, r] = i.run_query("go(0)");
  EXPECT_FALSE(r.deadlocked());
}

TEST(Figure1, ProducerActuallyWaitsForAcks) {
  // Without the consumer, the producer must stall after its first
  // message (the sync variable is never assigned).
  Interp i(Program::parse(
      "go(N) :- producer(N,Xs,sync).\n"
      "producer(N,Xs,sync) :- N > 0 | "
      "Xs := [X|Xs1], N1 is N - 1, producer(N1,Xs1,X).\n"
      "producer(0,Xs,_) :- Xs := []."),
      nodes(2));
  auto [goal, r] = i.run_query("go(5)");
  EXPECT_TRUE(r.deadlocked());
  EXPECT_EQ(r.still_suspended, 1u);
}

TEST(AbstractReduce, PaperTreeYields24) {
  Interp i(Program::parse(std::string(kEval) + kAbstractReduce), nodes(4));
  auto [goal, r] =
      i.run_query("reduce(" + paper_tree() + ",Value)");
  EXPECT_EQ(goal.arg(1).int_value(), 24);
  EXPECT_FALSE(r.deadlocked());
}

TEST(AbstractReduce, SingleLeaf) {
  Interp i(Program::parse(std::string(kEval) + kAbstractReduce), nodes(2));
  EXPECT_EQ(i.run_query("reduce(leaf(7),V)").first.arg(1).int_value(), 7);
}

TEST(AbstractReduce, DeepLeftSpine) {
  // sum 1..16 built as ((((1+1)+1)...+1): exercises nested dataflow.
  std::string tree = "leaf(1)";
  for (int k = 0; k < 15; ++k) {
    tree = "tree('+'," + tree + ",leaf(1))";
  }
  Interp i(Program::parse(std::string(kEval) + kAbstractReduce), nodes(4));
  auto [goal, r] = i.run_query("reduce(" + tree + ",V)");
  EXPECT_EQ(goal.arg(1).int_value(), 16);
}

TEST(AbstractReduce, BalancedTreeAcrossManyNodes) {
  // A balanced product tree of 64 ones times (1+0)... keep values small:
  // sum tree of 64 leaves of 1 -> 64.
  std::function<std::string(int)> build = [&](int n) -> std::string {
    if (n == 1) return "leaf(1)";
    return "tree('+'," + build(n / 2) + "," + build(n - n / 2) + ")";
  };
  Interp i(Program::parse(std::string(kEval) + kAbstractReduce), nodes(8));
  auto [goal, r] = i.run_query("reduce(" + build(64) + ",V)");
  EXPECT_EQ(goal.arg(1).int_value(), 64);
  // The @random pragma must actually ship work to other nodes.
  EXPECT_GT(r.load.remote_msgs, 0u);
}

TEST(Figure2Shape, ServerWithExplicitStreamsReducesTree) {
  // Parts A-C of Figure 2, adapted to the port-based merge primitive
  // (figure_programs.hpp): a server network where reduce ships one
  // subtree to a random server via distribute/3, exactly like the
  // transformed program of Figure 5.
  Interp i(Program::parse(motif_figures::kFigure2Shape), nodes(2));
  auto [goal, r] = i.run_query("go(" + paper_tree() + ",Value)");
  EXPECT_EQ(goal.arg(1).int_value(), 24);
  EXPECT_FALSE(r.deadlocked()) << (r.stuck_goals.empty()
                                       ? std::string("-")
                                       : r.stuck_goals[0]);
}
