# Empty compiler generated dependencies file for motifs_dnc_search_test.
# This may be replaced when dependencies are built.
