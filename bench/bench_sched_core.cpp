// Scheduler-core microbench (DESIGN.md §10): the per-message cost of the
// runtime substrate itself, independent of any motif.
//
// The paper's motifs only pay off if the machine's post()/dispatch path is
// cheap relative to the node evaluation it carries — Tree-Reduce-2's
// one-message-per-node discipline and the Scheduler motif's manager
// hotspot (E7) are pure post traffic. Cases:
//
//   LocalPostChain       — latency: a single node re-posting its own
//                          continuation (the SVar/when_bound pattern); the
//                          payload is sized past std::function's 16-byte
//                          SBO so the old Task type heap-allocates here.
//   CrossPostThroughput  — tokens hopping a ring of nodes, sweeping the
//                          worker count {2,4,8}; every hop is a remote
//                          post through a node mailbox. The acceptance
//                          metric for the lock-free core: posts_per_sec
//                          at 8 workers, before vs after.
//   FanOutFanIn          — a manager node scattering to every other node
//                          and gathering acks, repeated for R rounds: the
//                          E7 hotspot shape (one mailbox absorbing
//                          many concurrent producers).
//
// Each case reports posts_per_sec (and the scheduler substrate counters
// once the machine exposes them) as JSONL via bench_report.hpp; the
// before/after trajectory lives in bench/baselines/BENCH_sched_core.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>

#include "bench_report.hpp"

#include "runtime/machine.hpp"

namespace rt = motif::rt;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// True when the task type keeps a callable of type D out of the heap.
// Trivially true for the pre-rework std::function core (which has no
// stores_inline and heap-allocates these payloads by design — that cost
// is part of what the before/after comparison measures).
template <class D, class T = rt::Task>
constexpr bool posts_inline() {
  if constexpr (requires { T::template stores_inline<D>(); }) {
    return T::template stores_inline<D>();
  } else {
    return true;
  }
}

// Detection idiom so the binary also builds against the pre-rework core
// (no sched_stats) for before/after interleaved runs.
template <typename M>
void report_sched_stats(benchmark::State& state, M& m) {
  if constexpr (requires { m.sched_stats(); }) {
    const auto s = m.sched_stats();
    state.counters["steals"] += static_cast<double>(s.steals);
    state.counters["parks"] += static_cast<double>(s.parks);
    state.counters["mailbox_fast_hits"] +=
        static_cast<double>(s.mailbox_fast_hits);
    state.counters["injects"] += static_cast<double>(s.injects);
  }
}

// Payload pushing the closure past std::function's small-buffer limit
// (libstdc++: 16 bytes): the size class of a typical bound continuation
// (callable + value + machine pointer). rt::TaskFn's inline buffer must
// hold it without touching the heap — the static_asserts below each
// closure type keep that true (it silently regressed once: the closures
// are 56 bytes and the original inline buffer was 48).
struct Pad40 {
  char bytes[40] = {};
};

// --- LocalPostChain --------------------------------------------------------

struct ChainStep {
  rt::Machine* m;
  std::atomic<std::int64_t>* left;
  Pad40 pad;
  void operator()() const {
    if (left->fetch_sub(1, std::memory_order_relaxed) > 1) {
      m->post(0, ChainStep{m, left, pad});
    }
  }
};

void BM_LocalPostChain(benchmark::State& state) {
  const std::int64_t kPosts = 200000;
  double secs = 0.0;
  for (auto _ : state) {
    rt::Machine m({.nodes = 1, .workers = 1});
    std::atomic<std::int64_t> left{kPosts};
    const auto t0 = std::chrono::steady_clock::now();
    m.post(0, ChainStep{&m, &left, {}});
    m.wait_idle();
    secs += seconds_since(t0);
  }
  const double total =
      static_cast<double>(kPosts) * static_cast<double>(state.iterations());
  state.counters["posts_per_sec"] = total / secs;
  state.counters["ns_per_post"] = secs * 1e9 / total;
  MOTIF_BENCH_REPORT(state);
}

static_assert(posts_inline<ChainStep>(),
              "the reference continuation must fit TaskFn inline");

// --- CrossPostThroughput ---------------------------------------------------

// Each token carries its own remaining-hop budget: a shared countdown
// atomic would put one contended fetch_sub in every hop and measure
// that, not the post path. Termination rides on the machine's own
// pending-task accounting (wait_idle).
struct RingHop {
  rt::Machine* m;
  std::int64_t left;
  Pad40 pad;
  void operator()() const {
    if (left > 0) {
      const rt::NodeId cur = rt::Machine::current_node();
      // Branch, not `% node_count()`: an idiv in the payload would be
      // ~15% of the whole per-post budget this case exists to measure.
      rt::NodeId next = cur + 1;
      if (next == m->node_count()) next = 0;
      m->post(next, RingHop{m, left - 1, pad});
    }
  }
};

static_assert(posts_inline<RingHop>(),
              "the reference continuation must fit TaskFn inline");

void run_cross_post(benchmark::State& state, std::uint32_t workers) {
  const std::uint32_t kNodes = 16;
  const std::uint32_t kTokens = 64;  // concurrent ring walkers
  const std::int64_t kHops = 400000;
  double secs = 0.0;
  for (auto _ : state) {
    rt::Machine m({.nodes = kNodes, .workers = workers});
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint32_t t = 0; t < kTokens; ++t) {
      m.post(static_cast<rt::NodeId>(t % kNodes),
             RingHop{&m, kHops / kTokens - 1, {}});
    }
    m.wait_idle();
    secs += seconds_since(t0);
    report_sched_stats(state, m);
  }
  const double total =
      static_cast<double>(kHops) * static_cast<double>(state.iterations());
  state.counters["workers"] = workers;
  state.counters["posts_per_sec"] = total / secs;
  state.counters["ns_per_post"] = secs * 1e9 / total;
}

void BM_CrossPostThroughput_W2(benchmark::State& state) {
  run_cross_post(state, 2);
  MOTIF_BENCH_REPORT(state);
}

void BM_CrossPostThroughput_W4(benchmark::State& state) {
  run_cross_post(state, 4);
  MOTIF_BENCH_REPORT(state);
}

void BM_CrossPostThroughput_W8(benchmark::State& state) {
  run_cross_post(state, 8);
  MOTIF_BENCH_REPORT(state);
}

// --- FanOutFanIn -----------------------------------------------------------

struct FanState {
  rt::Machine* m;
  std::atomic<int>* acks;      // acks outstanding this round
  std::atomic<int>* rounds;    // rounds left
  std::atomic<bool>* done;
};

struct FanScatter;

struct FanAck {
  FanState s;
  Pad40 pad;
  void operator()() const;
};

struct FanEcho {
  FanState s;
  Pad40 pad;
  void operator()() const { s.m->post(0, FanAck{s, {}}); }
};

struct FanScatter {
  FanState s;
  void operator()() const {
    const rt::NodeId n = s.m->node_count();
    s.acks->store(static_cast<int>(n - 1), std::memory_order_relaxed);
    for (rt::NodeId i = 1; i < n; ++i) {
      s.m->post(i, FanEcho{s, {}});
    }
  }
};

void FanAck::operator()() const {
  if (s.acks->fetch_sub(1, std::memory_order_relaxed) == 1) {
    if (s.rounds->fetch_sub(1, std::memory_order_relaxed) > 1) {
      s.m->post(0, FanScatter{s});
    } else {
      s.done->store(true, std::memory_order_release);
    }
  }
}

void BM_FanOutFanIn(benchmark::State& state) {
  const std::uint32_t kNodes = 16;
  const int kRounds = 8000;
  double secs = 0.0;
  for (auto _ : state) {
    rt::Machine m({.nodes = kNodes, .workers = 4});
    std::atomic<int> acks{0};
    std::atomic<int> rounds{kRounds};
    std::atomic<bool> done{false};
    FanState s{&m, &acks, &rounds, &done};
    const auto t0 = std::chrono::steady_clock::now();
    m.post(0, FanScatter{s});
    m.wait_idle();
    secs += seconds_since(t0);
    report_sched_stats(state, m);
    if (!done.load(std::memory_order_acquire)) state.SkipWithError("lost acks");
  }
  // Each round: (nodes-1) scatter posts + (nodes-1) acks.
  const double total = 2.0 * (kNodes - 1) * kRounds *
                       static_cast<double>(state.iterations());
  state.counters["posts_per_sec"] = total / secs;
  state.counters["ns_per_post"] = secs * 1e9 / total;
  MOTIF_BENCH_REPORT(state);
}

void args(benchmark::internal::Benchmark* b) {
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_LocalPostChain)->Apply(args);
BENCHMARK(BM_CrossPostThroughput_W2)->Apply(args);
BENCHMARK(BM_CrossPostThroughput_W4)->Apply(args);
BENCHMARK(BM_CrossPostThroughput_W8)->Apply(args);
BENCHMARK(BM_FanOutFanIn)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
