// The simulated multicomputer that motifs run on.
//
// A Machine owns N virtual *nodes* — the "processors" of the paper — and W
// OS worker threads that execute them. Each node is a sequential executor:
// its tasks run in FIFO order, one at a time, while distinct nodes run
// concurrently. This is exactly Strand's model (one reduction engine per
// processor, many lightweight processes), and it is what Tree-Reduce-2
// relies on when it requires that "at each processor, computation is
// sequenced so that only a single node evaluation is active at any given
// time" (Section 3.5).
//
// N may exceed W: nodes are virtual processors multiplexed over the worker
// pool, so experiments can sweep |Nodes| on a laptop. A post from node a to
// node b != a is counted as a remote (inter-processor) message.
//
// Scheduling core (DESIGN.md §10): each node's mailbox is a lock-free
// Vyukov MPSC queue; node *activations* (ids of nodes with mail) live in
// per-worker Chase-Lev deques with randomized work stealing plus a small
// mutex-guarded inject queue for external posts, batch re-arms and
// fairness; idle workers spin, yield, then park on an eventcount. The
// observable contract — per-node FIFO, at-most-one-active-task-per-node,
// replayable fault ordinals, pending_/wait_idle/abandon_pending/shutdown
// semantics — is identical to the old mutex + global-ready-deque core.
//
// Tasks must not block on data: they synchronise through SVar / Stream
// continuations, re-posting work when values arrive (CP.4, CP.42).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"
#include "runtime/rng.hpp"
#include "runtime/sched_queue.hpp"
#include "runtime/svar.hpp"
#include "runtime/taskfn.hpp"
#include "runtime/trace.hpp"

namespace motif::rt {

using NodeId = std::uint32_t;

/// One-shot continuation with 48 bytes of inline storage (see taskfn.hpp).
/// Move-only: a posted task runs exactly once.
using Task = TaskFn;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Interconnect shape of the simulated multicomputer. The paper's Strand
/// ran "on shared-memory computers, hypercubes, mesh machines, transputer
/// surfaces"; the topology determines how many hops a remote message
/// travels (counted in the per-node metrics — messages are still
/// delivered directly; only the accounting differs).
enum class Topology {
  Complete,   ///< fully connected: every remote message is 1 hop
  Ring,       ///< nodes on a cycle; distance = ring distance
  Mesh2D,     ///< near-square grid; distance = Manhattan
  Hypercube,  ///< distance = Hamming distance of node ids
};

struct MachineConfig {
  std::uint32_t nodes = 4;    ///< number of virtual processors
  std::uint32_t workers = 0;  ///< OS threads; 0 = min(nodes, hw concurrency)
  std::uint32_t batch = 64;   ///< max tasks drained from a node per visit
  std::uint64_t seed = 0x5EEDF00Dull;
  Topology topology = Topology::Complete;
  std::size_t trace_capacity = 8192;  ///< trace events retained per node
  FaultPlan faults{};  ///< deterministic fault schedule; default: none
  /// Maintain peak_queue_depth(). Off by default: the depth probe costs
  /// two atomic RMWs per post on the hot path, and nothing reads it
  /// unless an experiment asks for scheduling-pressure data.
  bool probe_queue_depth = false;
  /// Add one trace track per worker and emit scheduler Counter events
  /// (steals / parks / mailbox fast-path hits) on it. Off by default so
  /// node-track layouts seen by existing consumers are unchanged.
  bool trace_sched_counters = false;
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg = {});

  /// Calls shutdown(): drains outstanding work (logging any uncollected
  /// task error instead of swallowing it), then stops and joins workers.
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  std::uint32_t node_count() const { return static_cast<std::uint32_t>(nodes_.size()); }
  std::uint32_t worker_count() const { return static_cast<std::uint32_t>(workers_.size()); }

  /// Schedules `t` on node `n` (FIFO, sequential per node).
  void post(NodeId n, Task t);

  /// Schedules on the calling task's node; falls back to node 0 when
  /// called from outside the machine.
  void post_local(Task t);

  /// Node executing the current task, or kNoNode outside the machine.
  static NodeId current_node();

  /// A uniformly random node id, drawn from the current node's RNG when on
  /// a machine thread (deterministic per node), else from a seeded
  /// external RNG guarded by a mutex.
  NodeId random_node();

  /// Per-node deterministic generator. Only the node's own tasks should
  /// draw from it.
  Rng& rng(NodeId n) { return nodes_[n]->rng; }

  /// Convenience: post `f(value)` to node `n` once `v` is bound.
  template <class T, class F>
  void post_when(SVar<T> v, NodeId n, F f) {
    v.when_bound([this, n, f = std::move(f)](const T& value) mutable {
      // Copy the value into the task: data moves between nodes by value
      // (CP.31), as on a real multicomputer. The init-capture matters:
      // a plain [value] capture of a `const T&` parameter produces a
      // *const* member, which silently turns every later move of the
      // closure (into the Task, into f) into another copy.
      post(n, [f = std::move(f), value = value]() mutable { f(value); });
    });
  }

  /// Move-path variant of post_when for heavy payloads (alignment
  /// profiles, tiles): the value is still copied once into the posted
  /// task — it crosses nodes by value, CP.31 — but is then *moved* into
  /// `f`, so a by-value consumer sees one copy + one move instead of two
  /// copies per continuation.
  template <class T, class F>
  void post_when_move(SVar<T> v, NodeId n, F f) {
    v.when_bound([this, n, f = std::move(f)](const T& value) mutable {
      post(n, [f = std::move(f), value = value]() mutable {
        f(std::move(value));
      });
    });
  }

  /// Blocks until no task is pending or running, then rethrows the first
  /// exception any task threw (if any).
  ///
  /// Concurrency: safe to call from any number of external threads at
  /// once — every caller returns once the machine quiesces, and a stored
  /// task error is delivered to exactly one of them (the others see a
  /// clean return).
  void wait_idle();

  /// Deadline-bounded wait_idle that *classifies* instead of hanging or
  /// rethrowing blindly:
  ///   - Completed:        quiesced with no task error. (A run that
  ///     quiesced because a fault swallowed a message also lands here —
  ///     the machine cannot know a result variable went unbound. Callers
  ///     holding the result refine Completed + unbound to Stalled /
  ///     NodeLost; motifs/supervise.hpp does exactly that.)
  ///   - TaskFailed:       quiesced after a task threw. The error is
  ///     captured in the outcome (and cleared here), not rethrown.
  ///   - DeadlineExceeded: still busy when the deadline expired.
  ///   - NodeLost:         deadline expired with at least one dead node.
  /// The outcome also carries fault totals, dead nodes, and — like the
  /// interpreter's deadlock reporter — the names of still-unbound named
  /// SVars (SVar::set_name) in `blocked_on`.
  RunOutcome wait_idle_for(std::chrono::nanoseconds deadline);

  /// Best-effort cancellation used between supervised retry attempts:
  /// discards every queued task and every post made while draining, then
  /// waits for in-flight tasks to finish and clears any stored task
  /// error. Already-executing tasks run to completion; their onward posts
  /// are discarded (counted in discarded_posts()).
  void abandon_pending();

  /// Drains outstanding work, then stops and joins the workers.
  /// Idempotent AND thread-safe: guarded by a once_flag, so a concurrent
  /// shutdown() + destructor (or two racing shutdowns) is a single
  /// shutdown, with every caller blocked until it completes. If a task
  /// error was never collected by wait_idle, it is NOT silently
  /// swallowed: it is counted in rt::dropped_task_errors() and reported
  /// on stderr. After shutdown the machine accepts no work — post()
  /// safely discards (counted in discarded_posts()) instead of touching
  /// stopped workers.
  void shutdown();

  // --- fault injection (see runtime/fault.hpp) ---------------------------

  /// Replaces the fault plan. Call while the machine is idle (between
  /// runs / retry attempts): posts racing a plan swap see either plan.
  /// When `revive_dead` (the default) all killed nodes come back empty —
  /// kill specs match an exact cumulative task count, so a fired kill
  /// does not re-fire on the revived node.
  void set_fault_plan(FaultPlan plan, bool revive_dead = true);
  const FaultPlan& fault_plan() const { return faults_; }

  /// Brings a killed node back (empty queue, counters intact).
  void revive(NodeId n);

  bool node_alive(NodeId n) const {
    return !nodes_[n]->dead.load(std::memory_order_acquire);
  }

  /// Nodes currently dead, ascending.
  std::vector<NodeId> lost_nodes() const;

  /// Injected-fault counts so far (monotonic snapshot).
  FaultTotals fault_totals() const;

  /// Posts discarded because the machine was shut down or draining in
  /// abandon_pending (dead-node drops are counted as faults instead).
  std::uint64_t discarded_posts() const {
    return discarded_posts_.load(std::memory_order_relaxed);
  }

  const NodeCounters& counters(NodeId n) const { return nodes_[n]->counters; }
  LoadSummary load_summary() const;
  void reset_counters();

  /// Scheduler-substrate counters (monotonic snapshot): how the lock-free
  /// core is behaving, not what the motif did. reset_counters() clears.
  /// Includes a NetStats snapshot when this machine is a cluster rank.
  SchedStats sched_stats() const;

  /// Conservative quiescence probe: true when no task is pending or
  /// running *right now*. Unlike wait_idle() this does not block and does
  /// not rethrow — the distributed termination detector polls it and
  /// combines it with message counts to rule out in-flight work.
  bool idle() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  /// Network counters for this machine's rank (written by the cluster
  /// layer in src/net; all-zero when the machine is standalone).
  NetCounters& net_counters() { return net_counters_; }
  const NetCounters& net_counters() const { return net_counters_; }

  /// Records `units` of virtual work against the current node (node 0 when
  /// called externally). Experiments use per-node work totals to compute a
  /// virtual makespan that is independent of host core count.
  void add_work(std::uint64_t units) {
    const NodeId n = current_node() == kNoNode ? 0 : current_node();
    nodes_[n]->counters.work.fetch_add(units, std::memory_order_relaxed);
  }

  /// Maximum queue depth observed across nodes (scheduling pressure
  /// probe). Always 0 unless MachineConfig::probe_queue_depth was set:
  /// the probe is opt-in because it costs two RMWs on the post hot path.
  std::uint64_t peak_queue_depth() const {
    return peak_queue_.load(std::memory_order_relaxed);
  }

  Topology topology() const { return topology_; }

  /// True when the runtime was built with MOTIF_TRACING=1; when false the
  /// trace methods below are no-ops and TRACE_SPAN compiles away.
  static constexpr bool trace_compiled = MOTIF_TRACING != 0;

  /// Begins recording trace events (one timeline per virtual node). Call
  /// while the machine is idle; clears any previously recorded events.
  /// No-op when tracing is compiled out or already started.
  void start_trace();

  /// Stops recording; already-recorded events remain until drain_trace().
  void stop_trace();

  /// True while events are being recorded.
  bool tracing() const;

  /// Stops the trace and returns every node's timeline (oldest event
  /// first, plus per-node dropped-event counts). Call while idle. The
  /// machine can be traced again afterwards with start_trace().
  TraceLog drain_trace();

  /// Message distance between two nodes under the configured topology
  /// (0 for a == b; 1 for any remote pair on Complete).
  std::uint32_t hop_distance(NodeId a, NodeId b) const;

 private:
  /// Mailbox entry: intrusive MPSC link + the task, plus fault/trace
  /// metadata. Allocated from per-worker free lists (machine.cpp).
  struct MailNode;
  /// Per-OS-thread scheduling state: Chase-Lev deque, victim RNG,
  /// MailNode free list, substrate counters (machine.cpp).
  struct Worker;

  /// Node activation states. A node is Scheduled from the moment a
  /// producer wins the Idle->Scheduled transition until its drainer's
  /// release protocol observes an empty mailbox — so at most one
  /// activation for a node exists anywhere (deque, inject queue, or
  /// in-drain) at any time, which is what serialises the node.
  static constexpr std::uint8_t kIdle = 0;
  static constexpr std::uint8_t kScheduled = 1;

  struct Node {
    MpscQueue mail;
    std::atomic<std::uint8_t> state{kIdle};
    std::atomic<bool> dead{false};
    /// Approximate queue depth; only maintained under probe_queue_depth.
    std::atomic<std::uint32_t> depth{0};
    Rng rng;
    NodeCounters counters;
    /// Cross-node posts sent by this node, 1-based ordinal feeding the
    /// fault lottery — counted only while a plan is enabled, so the
    /// (seed, sender, ordinal) stream replays exactly. Single-writer
    /// (the node's drainer), hence plain store(load+1) in post().
    std::atomic<std::uint64_t> xposts{0};
    explicit Node(std::uint64_t seed) : rng(seed) {}
  };

  /// Monotonic injected-fault counters (snapshot via fault_totals()).
  struct FaultCounters {
    std::atomic<std::uint64_t> drops{0};
    std::atomic<std::uint64_t> dead_drops{0};
    std::atomic<std::uint64_t> duplicates{0};
    std::atomic<std::uint64_t> delays{0};
    std::atomic<std::uint64_t> kills{0};
    std::atomic<std::uint64_t> throws{0};
  };

  void worker_loop(std::uint32_t index);
  void run_node(NodeId n, Worker* w);
  void idle_wait(Worker& w);
  bool work_available() const;
  NodeId try_steal(Worker& w);

  /// Routes a fresh activation: the posting worker's own deque (LIFO —
  /// the continuation it just produced) or the inject queue for external
  /// producers; wakes a parked worker if any.
  void activate(Worker* w, NodeId n);
  void inject_push(NodeId n);
  NodeId inject_pop();

  MailNode* alloc_mail(Worker* w);
  void free_mail(Worker* w, MailNode* m);

  /// Single-consumer drain of a node's mailbox (caller must hold the
  /// activation): frees every entry, charging it to dead_drops or
  /// discarded_posts. Returns the count (caller credits pending_).
  std::uint64_t shed_mailbox(Node& node, bool as_dead_drops);
  /// Shed + release loop for a dead or discarding node: sheds, releases
  /// the activation, and re-claims if mail raced in. On return the node
  /// is Idle (or another owner claimed it).
  std::uint64_t shed_and_release(Node& node, bool as_dead_drops);

  void note_pending_sub(std::uint64_t k);
  void emit_fault(NodeId track, const char* kind, std::uint64_t ordinal,
                  NodeId peer);
  void emit_sched_counters(Worker& w);
  bool kill_due(NodeId n, std::uint64_t task_no) const;
  bool throw_due(NodeId n, std::uint64_t task_no) const;
  void do_shutdown();

  /// The Worker owned by the current thread, when it belongs to *some*
  /// Machine (post() checks it is this one). Lets a worker's own posts
  /// push activations straight onto its deque and recycle MailNodes.
  static thread_local Worker* tl_worker_;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint32_t batch_;
  bool probe_queue_depth_ = false;

  std::vector<std::unique_ptr<Worker>> worker_data_;
  EventCount ec_;
  std::atomic<bool> stopping_{false};

  /// Global FIFO of activations from external producers, batch re-arms
  /// and abandoned drains; workers poll it every kInjectPollTicks
  /// dispatches (and whenever their own deque is empty) so starved nodes
  /// always progress even under deep local LIFO chains.
  static constexpr std::uint64_t kInjectPollTicks = 61;
  mutable std::mutex inject_m_;
  std::deque<NodeId> inject_;
  std::atomic<std::size_t> inject_size_{0};

  std::atomic<std::uint64_t> pending_{0};
  std::mutex idle_m_;
  std::condition_variable idle_cv_;

  std::mutex error_m_;
  std::exception_ptr first_error_;

  // Fault injection. faults_ is written only while the machine is idle
  // (constructor / set_fault_plan); workers read it only after observing
  // faults_enabled_ with acquire, published with release.
  FaultPlan faults_;
  std::atomic<bool> faults_enabled_{false};
  FaultCounters fault_counts_;
  std::atomic<bool> accepting_{true};   // false after shutdown()
  std::atomic<bool> discarding_{false}; // true while abandon_pending drains
  std::atomic<std::uint64_t> discarded_posts_{0};
  std::once_flag shutdown_once_;

  std::mutex ext_rng_m_;
  Rng ext_rng_;

  Topology topology_;
  std::uint32_t mesh_cols_ = 1;

  std::atomic<std::uint64_t> peak_queue_{0};
  /// Mailbox fast-path hits from external (non-worker) posters.
  std::atomic<std::uint64_t> ext_fast_hits_{0};
  std::atomic<std::uint64_t> injects_{0};
  NetCounters net_counters_;

#if MOTIF_TRACING
  // Created in the constructor (immutable pointer: workers may read it
  // without synchronisation); recording is toggled by start/stop_trace.
  std::unique_ptr<Tracer> tracer_;
  /// First worker track id when trace_sched_counters is on; 0 = off.
  std::uint32_t worker_track_base_ = 0;
#endif

  std::vector<std::thread> workers_;
};

}  // namespace motif::rt
