// Phylogenies and guide trees.
//
// The paper's application "first generates a binary 'phylogenetic tree',
// in which subtrees represent clusters of more closely related organisms.
// Reduction of this tree using an 'align-node' function produces the
// desired alignment." The tree and sequences were given in the paper; we
// synthesise them: a Yule (pure-birth) phylogeny with exponential branch
// lengths, a root sequence evolved down the branches (sequence.hpp), and
// — for the realistic pipeline — a UPGMA guide tree rebuilt from pairwise
// k-mer distances, as progressive aligners do.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "motifs/tree.hpp"
#include "runtime/rng.hpp"

namespace motif::align {

/// A phylogeny node: leaves carry taxon indices; edges carry lengths.
struct Phylo {
  using Ptr = std::shared_ptr<const Phylo>;
  int taxon = -1;        // >= 0 at leaves
  double left_len = 0.0;
  double right_len = 0.0;
  Ptr left, right;
  bool is_leaf() const { return taxon >= 0; }
  std::size_t leaf_count() const {
    return is_leaf() ? 1 : left->leaf_count() + right->leaf_count();
  }
};

/// Yule process: starts from one lineage, repeatedly splits a uniformly
/// random leaf until there are `taxa` leaves; branch lengths are
/// exponential with the given mean.
Phylo::Ptr yule_tree(std::size_t taxa, rt::Rng& rng,
                     double mean_branch = 1.0);

/// A synthetic family: evolves a random root sequence of length
/// `root_length` down `tree`, returning one sequence per taxon (indexed
/// by taxon id).
std::vector<std::string> evolve_family(const Phylo::Ptr& tree,
                                       std::size_t root_length, rt::Rng& rng);

/// UPGMA clustering over a distance matrix; returns a guide tree whose
/// leaves are item indices (a Tree<int,char> reduction tree with '+' tags,
/// ready for the tree-reduction motifs).
Tree<int, char>::Ptr upgma(std::vector<std::vector<double>> dist);

/// Pairwise k-mer distance matrix for a sequence family.
std::vector<std::vector<double>> distance_matrix(
    const std::vector<std::string>& seqs, int k = 3);

/// Converts a phylogeny into the same guide-tree form (taxon indices at
/// leaves) — the "true tree" pipeline.
Tree<int, char>::Ptr guide_from_phylo(const Phylo::Ptr& tree);

}  // namespace motif::align
