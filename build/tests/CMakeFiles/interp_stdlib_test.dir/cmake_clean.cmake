file(REMOVE_RECURSE
  "CMakeFiles/interp_stdlib_test.dir/interp_stdlib_test.cpp.o"
  "CMakeFiles/interp_stdlib_test.dir/interp_stdlib_test.cpp.o.d"
  "interp_stdlib_test"
  "interp_stdlib_test.pdb"
  "interp_stdlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_stdlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
