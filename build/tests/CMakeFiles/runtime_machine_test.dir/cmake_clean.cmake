file(REMOVE_RECURSE
  "CMakeFiles/runtime_machine_test.dir/runtime_machine_test.cpp.o"
  "CMakeFiles/runtime_machine_test.dir/runtime_machine_test.cpp.o.d"
  "runtime_machine_test"
  "runtime_machine_test.pdb"
  "runtime_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
