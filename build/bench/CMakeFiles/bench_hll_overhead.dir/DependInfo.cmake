
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_hll_overhead.cpp" "bench/CMakeFiles/bench_hll_overhead.dir/bench_hll_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_hll_overhead.dir/bench_hll_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/motifs/CMakeFiles/motif_motifs.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/motif_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/motif_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/motif_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
