#include "motifs/grid.hpp"

#include <algorithm>
#include <atomic>

namespace motif {

double jacobi_sweep_seq(const Grid2D& src, Grid2D& dst) {
  double max_delta = 0.0;
  for (std::size_t r = 1; r + 1 < src.rows(); ++r) {
    for (std::size_t c = 1; c + 1 < src.cols(); ++c) {
      const double v = 0.25 * (src.at(r - 1, c) + src.at(r + 1, c) +
                               src.at(r, c - 1) + src.at(r, c + 1));
      max_delta = std::max(max_delta, std::abs(v - src.at(r, c)));
      dst.at(r, c) = v;
    }
  }
  return max_delta;
}

JacobiResult jacobi_solve(rt::Machine& m, Grid2D& grid, JacobiOptions opts) {
  JacobiResult res;
  if (grid.rows() < 3 || grid.cols() < 3) {
    res.converged = true;
    return res;
  }
  Grid2D other = grid;  // write buffer starts as a copy (boundary kept)
  Grid2D* bufs[2] = {&grid, &other};
  int cur = 0;

  const std::uint32_t p = m.node_count();
  const std::size_t interior = grid.rows() - 2;
  const std::uint32_t blocks =
      static_cast<std::uint32_t>(std::min<std::size_t>(p, interior));

  for (res.iterations = 0; res.iterations < opts.max_iters;
       ++res.iterations) {
    const Grid2D& src = *bufs[cur];
    Grid2D& dst = *bufs[1 - cur];
    // Fan out one row-block task per processor; collect max deltas.
    auto deltas = std::make_shared<std::vector<double>>(blocks, 0.0);
    auto missing = std::make_shared<std::atomic<std::uint32_t>>(blocks);
    rt::SVar<double> sweep_done;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::size_t r0 = 1 + b * interior / blocks;
      const std::size_t r1 = 1 + (b + 1) * interior / blocks;
      m.post(static_cast<rt::NodeId>(b),
             [&src, &dst, r0, r1, b, deltas, missing, sweep_done]() mutable {
               double local = 0.0;
               for (std::size_t r = r0; r < r1; ++r) {
                 for (std::size_t c = 1; c + 1 < src.cols(); ++c) {
                   const double v =
                       0.25 * (src.at(r - 1, c) + src.at(r + 1, c) +
                               src.at(r, c - 1) + src.at(r, c + 1));
                   local = std::max(local, std::abs(v - src.at(r, c)));
                   dst.at(r, c) = v;
                 }
               }
               (*deltas)[b] = local;
               if (missing->fetch_sub(1, std::memory_order_acq_rel) == 1) {
                 double mx = 0.0;
                 for (double d : *deltas) mx = std::max(mx, d);
                 sweep_done.bind(mx);
               }
             });
    }
    m.wait_idle();  // barrier: every block wrote dst; rethrows task errors
    const double delta = sweep_done.get();
    cur = 1 - cur;
    res.residual = delta;
    if (delta <= opts.tolerance) {
      ++res.iterations;
      res.converged = true;
      break;
    }
  }
  if (cur != 0) grid = other;  // result must land in the caller's grid
  return res;
}

}  // namespace motif
