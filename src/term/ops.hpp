// Operator table shared by the reader (parser.hpp) and writer (writer.hpp).
//
// Precedences follow the usual logic-language conventions: lower binds
// tighter. xfx operators do not associate; yfx are left-associative.
#pragma once

#include <optional>
#include <string>

namespace motif::term {

enum class OpType { xfx, yfx };

struct OpInfo {
  int prec;
  OpType type;
};

/// Binary operator lookup (":=", "is", comparisons, arithmetic, "@").
std::optional<OpInfo> binary_op(const std::string& name);

/// Maximum operator precedence accepted for a goal/argument expression.
inline constexpr int kMaxPrec = 700;

}  // namespace motif::term
