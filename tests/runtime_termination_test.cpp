#include "runtime/termination.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rt = motif::rt;

TEST(ShortCircuit, RootCloseCompletes) {
  rt::ShortCircuit sc;
  auto link = sc.root();
  EXPECT_FALSE(sc.done());
  link.close();
  EXPECT_TRUE(sc.done());
}

TEST(ShortCircuit, ForkKeepsOpenUntilAllClose) {
  rt::ShortCircuit sc;
  auto a = sc.root();
  auto b = a.fork();
  auto c = b.fork();
  a.close();
  EXPECT_FALSE(sc.done());
  b.close();
  EXPECT_FALSE(sc.done());
  c.close();
  EXPECT_TRUE(sc.done());
}

TEST(ShortCircuit, DroppedLinkClosesItself) {
  rt::ShortCircuit sc;
  {
    auto a = sc.root();
    auto b = a.fork();
    a.close();
    // b destroyed open at scope exit
  }
  EXPECT_TRUE(sc.done());
}

TEST(ShortCircuit, CloseIsIdempotentViaEmptyLink) {
  rt::ShortCircuit sc;
  auto a = sc.root();
  a.close();
  a.close();  // already empty; no effect
  EXPECT_TRUE(sc.done());
}

TEST(ShortCircuit, MoveTransfersOwnership) {
  rt::ShortCircuit sc;
  auto a = sc.root();
  rt::ShortCircuit::Link b = std::move(a);
  EXPECT_FALSE(a.open());
  EXPECT_TRUE(b.open());
  b.close();
  EXPECT_TRUE(sc.done());
}

TEST(ShortCircuit, MoveAssignClosesPrevious) {
  rt::ShortCircuit s1, s2;
  auto a = s1.root();
  auto b = s2.root();
  a = std::move(b);  // closes s1's segment
  EXPECT_TRUE(s1.done());
  EXPECT_FALSE(s2.done());
  a.close();
  EXPECT_TRUE(s2.done());
}

TEST(ShortCircuit, WhenDoneInlineIfAlreadyDone) {
  rt::ShortCircuit sc;
  sc.root().close();
  int fired = 0;
  sc.when_done([&] { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(ShortCircuit, WhenDoneDeferred) {
  rt::ShortCircuit sc;
  auto a = sc.root();
  int fired = 0;
  sc.when_done([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  a.close();
  EXPECT_EQ(fired, 1);
}

TEST(ShortCircuit, WaitBlocksUntilDone) {
  rt::ShortCircuit sc;
  auto a = sc.root();
  std::thread t([link = std::move(a)]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    link.close();
  });
  sc.wait();
  EXPECT_TRUE(sc.done());
  t.join();
}

TEST(ShortCircuit, StressManyConcurrentForks) {
  // Models a divide-and-conquer tree threading the circuit through every
  // spawned process.
  rt::ShortCircuit sc;
  constexpr int kThreads = 8, kForksEach = 2000;
  std::vector<std::thread> ts;
  auto root = sc.root();
  std::vector<rt::ShortCircuit::Link> seeds;
  for (int i = 0; i < kThreads; ++i) seeds.push_back(root.fork());
  for (int i = 0; i < kThreads; ++i) {
    ts.emplace_back([seed = std::move(seeds[i])]() mutable {
      std::vector<rt::ShortCircuit::Link> mine;
      for (int j = 0; j < kForksEach; ++j) mine.push_back(seed.fork());
      seed.close();
      for (auto& l : mine) l.close();
    });
  }
  root.close();
  for (auto& t : ts) t.join();
  EXPECT_TRUE(sc.done());
}
