// Distributed Tree-Reduce-2: the Section 3.5 motif run across a Cluster,
// where "processor" means a *global* node that may live in another OS
// process — so the paper's guarantee ("at most one inter-processor
// communication per node's pair of offspring values") becomes measurable
// as net_tx frames instead of counted pointer moves (EXPERIMENTS.md).
//
// The run is fully message-driven because follower ranks never call run():
// they sit in Cluster::serve() and everything they need arrives in the
// messages themselves. Each arrive payload carries {gen, depth, seed,
// parent, is_right, value}; a rank that sees a new generation rebuilds the
// tree and the label plan locally from (depth, seed) — the plan is a pure
// function of those, so every rank derives identical labels without any
// plan-distribution protocol.
//
// Retry/chaos safety:
//   * gen — one generation per run() attempt. Stale-generation messages
//     (late deliveries from an abandoned attempt) are ignored; a node
//     seeing a newer generation drops its pending partials first.
//   * duplicates — a duplicated value message re-inserts a half-filled
//     partial *after* the combine consumed it; the orphan partial never
//     completes and is cleared by the next generation. The root result is
//     bound with try_bind, so a duplicated result frame is a no-op.
//   * drops — a lost value leaves the cluster idle with the result
//     unbound; run() refines that to Stalled (same rule as supervise.hpp)
//     so a supervisor can retry with a fresh generation.
//   * malformed frames — handlers validate payload shape (tuple arity,
//     integer tags, parent bounds) and drop anything else, the same way
//     Cluster::deliver_post drops unknown handler indices: a corrupt or
//     version-skewed peer costs a message, never a crash.
//
// Lifetime: the registered handlers capture the motif's state through a
// shared_ptr, never `this` — so a DistTreeReduce2 destroyed while its
// Cluster still holds queued handler tasks (any destruction order at the
// call site) cannot leave dangling references. The Cluster's own
// destructor abandons those queued tasks before its handler registry
// goes away.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "motifs/tree.hpp"
#include "motifs/tree_reduce.hpp"
#include "net/cluster.hpp"
#include "runtime/svar.hpp"

namespace motif {

/// The deterministic balanced test tree every rank can rebuild from
/// (depth, seed): 2^depth leaves, values splitmix64-derived mod 1000.
inline Tree<long long, char>::Ptr dist_tr2_tree(std::uint32_t depth,
                                                std::uint64_t seed) {
  const std::size_t leaves = std::size_t{1} << depth;
  return balanced_tree<long long, char>(
      leaves,
      [seed](std::size_t i) {
        std::uint64_t s = seed + 0x9E3779B97F4A7C15ull * (i + 1);
        return static_cast<long long>(rt::splitmix64(s) % 1000);
      },
      '+');
}

/// Sum-reduction of dist_tr2_tree over a cluster. Construct on every rank
/// (before Cluster::start(), so the handler registry matches), then call
/// run() on rank 0 only.
class DistTreeReduce2 {
 public:
  struct Result {
    bool ok = false;          ///< completed and value == expected
    long long value = 0;      ///< distributed result (when bound)
    long long expected = 0;   ///< reduce_sequential oracle
    rt::RunOutcome outcome;   ///< cluster-level classification
  };

  explicit DistTreeReduce2(net::Cluster& cluster)
      : state_(std::make_shared<State>(cluster)) {
    // Handlers share ownership of the state (see lifetime note above).
    auto s = state_;
    state_->h_arrive = cluster.register_handler(
        "tr2.arrive", [s](const term::Term& t) { s->on_arrive(t); });
    state_->h_result = cluster.register_handler(
        "tr2.result", [s](const term::Term& t) { s->on_result(t); });
  }

  /// Rank 0 only: runs one generation end to end and classifies it.
  Result run(std::uint32_t depth, std::uint64_t seed,
             std::chrono::nanoseconds deadline) {
    return state_->run(depth, seed, deadline);
  }

 private:
  using Plan = detail::TR2Plan<long long, char>;

  struct Partial {
    bool have_left = false, have_right = false;
    long long left = 0, right = 0;
  };

  /// Touched only by the owning local node's (sequential) tasks.
  struct NodeState {
    std::uint64_t gen = 0;
    std::unordered_map<std::int64_t, Partial> pending;
  };

  /// Depths beyond this are rejected at the wire: a legitimate arrive
  /// always carries the depth rank 0 ran with, so anything absurd is a
  /// corrupt frame — and rebuilding a 2^depth-leaf plan from it would
  /// turn one bad message into an allocation bomb.
  static constexpr std::uint32_t kMaxWireDepth = 30;

  struct State {
    explicit State(net::Cluster& cluster)
        : cluster_(cluster), node_state_(cluster.machine().node_count()) {}

    Result run(std::uint32_t depth, std::uint64_t seed,
               std::chrono::nanoseconds deadline) {
      if (cluster_.rank() != 0) {
        throw std::logic_error("DistTreeReduce2::run is rank-0 only");
      }
      Result res;
      const auto tree = dist_tr2_tree(depth, seed);
      res.expected = reduce_sequential<long long, char>(
          tree, [](char, long long a, long long b) { return a + b; });
      if (depth == 0) {  // single leaf: nothing to distribute
        res.value = tree->value();
        res.ok = res.value == res.expected;
        return res;
      }

      std::uint64_t gen;
      {
        // Allocate the generation under plan_m_: handler tasks on worker
        // threads read and write last_gen_ under the same lock, and a
        // late frame from an abandoned attempt can race a retry run().
        std::lock_guard<std::mutex> lk(plan_m_);
        gen = ++last_gen_;
      }
      auto plan = ensure_plan(gen, depth, seed);
      rt::SVar<long long> result;
      result.set_name("dist_tree_reduce2.result");
      {
        std::lock_guard<std::mutex> lk(run_m_);
        run_gen_ = gen;
        result_ = result;
      }
      for (const auto& leaf : plan->leaves) {
        cluster_.post(static_cast<net::GlobalNode>(leaf.parent_label),
                      h_arrive,
                      arrive_term(gen, depth, seed, leaf.parent, leaf.is_right,
                                  leaf.value));
      }
      res.outcome = cluster_.wait_idle_for(deadline);
      if (res.outcome.ok() && !result.bound()) {
        // Globally quiet but the root value never landed: a value message
        // was lost. Same refinement supervise.hpp applies to Completed.
        res.outcome.status = rt::RunStatus::Stalled;
        res.outcome.blocked_on = "dist_tree_reduce2.result";
      }
      if (auto v = result.peek()) res.value = *v;
      res.ok = res.outcome.ok() && result.bound() && res.value == res.expected;
      return res;
    }

    static term::Term arrive_term(std::uint64_t gen, std::uint32_t depth,
                                  std::uint64_t seed, std::int64_t parent,
                                  bool is_right, long long value) {
      return term::Term::tuple(
          {term::Term::integer(static_cast<std::int64_t>(gen)),
           term::Term::integer(depth),
           term::Term::integer(static_cast<std::int64_t>(seed)),
           term::Term::integer(parent), term::Term::integer(is_right ? 1 : 0),
           term::Term::integer(value)});
    }

    /// True when `t` is a tuple of exactly `arity` integers — the only
    /// payload shape the handlers accept.
    static bool int_tuple(const term::Term& t, std::size_t arity) {
      if (!t.is_tuple() || t.args().size() != arity) return false;
      for (const auto& a : t.args()) {
        if (!a.is_int()) return false;
      }
      return true;
    }

    static void drop_malformed(const char* what) {
      std::fprintf(stderr, "[net] %s: malformed payload dropped\n", what);
    }

    /// Plan for generation `gen`, rebuilt from (depth, seed) on first
    /// sight. Pure: every rank computes the identical labelling for the
    /// same (depth, seed, global node count). Returns nullptr when a
    /// frame claims an already-built generation with a *different*
    /// (depth, seed) — two frames disagreeing about a generation means
    /// one of them is corrupt, and silently labelling with the wrong
    /// plan would misroute values into a wrong (not just missing)
    /// result. Callers drop such frames; a poisoned generation then
    /// stalls and a supervisor retries with a fresh one.
    std::shared_ptr<const Plan> ensure_plan(std::uint64_t gen,
                                            std::uint32_t depth,
                                            std::uint64_t seed) {
      std::lock_guard<std::mutex> lk(plan_m_);
      if (plan_ == nullptr || plan_gen_ != gen) {
        const auto tree = dist_tr2_tree(depth, seed);
        rt::Rng rng(seed ^ 0xD157ull);
        plan_ = std::make_shared<const Plan>(
            detail::tr2_label<long long, char>(tree, cluster_.global_nodes(),
                                               rng, LabelPolicy::Paper));
        plan_gen_ = gen;
        plan_depth_ = depth;
        plan_seed_ = seed;
        if (gen > last_gen_) last_gen_ = gen;  // followers track rank 0
      } else if (plan_depth_ != depth || plan_seed_ != seed) {
        return nullptr;
      }
      return plan_;
    }

    void on_arrive(const term::Term& t) {
      if (!int_tuple(t, 6)) return drop_malformed("tr2.arrive");
      const auto& a = t.args();
      const auto gen = static_cast<std::uint64_t>(a[0].int_value());
      const auto depth = static_cast<std::uint32_t>(a[1].int_value());
      const auto seed = static_cast<std::uint64_t>(a[2].int_value());
      const std::int64_t parent = a[3].int_value();
      const bool is_right = a[4].int_value() != 0;
      long long value = a[5].int_value();
      if (a[1].int_value() <= 0 || depth > kMaxWireDepth) {
        return drop_malformed("tr2.arrive");
      }

      auto plan = ensure_plan(gen, depth, seed);
      if (plan == nullptr || parent < 0 ||
          static_cast<std::size_t>(parent) >= plan->entries.size()) {
        return drop_malformed("tr2.arrive");
      }
      const rt::NodeId here = rt::Machine::current_node();
      NodeState& ns = node_state_[here];
      if (gen < ns.gen) return;  // late message from an abandoned attempt
      if (gen > ns.gen) {
        ns.gen = gen;
        ns.pending.clear();
      }

      Partial& p = ns.pending[parent];
      (is_right ? p.right : p.left) = value;
      (is_right ? p.have_right : p.have_left) = true;
      if (!(p.have_left && p.have_right)) return;
      const Partial ready = p;
      ns.pending.erase(parent);
      const auto& e = plan->entries[static_cast<std::size_t>(parent)];
      long long combined;
      {
        rt::EvalScope scope;  // one evaluation active per processor (§3.5)
        TRACE_SPAN("dist_tree_reduce2.combine");
        combined = ready.left + ready.right;
      }
      if (e.parent < 0) {
        cluster_.post(0, h_result,
                      term::Term::tuple(
                          {term::Term::integer(static_cast<std::int64_t>(gen)),
                           term::Term::integer(combined)}));
        return;
      }
      // Onward to the parent's processor. cluster_.post keeps same-rank
      // hops off the wire, so net_tx counts exactly the inter-processor
      // value messages the paper's Section 3.5 bound is about.
      cluster_.post(static_cast<net::GlobalNode>(e.parent_label), h_arrive,
                    arrive_term(gen, depth, seed, e.parent, e.is_right,
                                combined));
    }

    void on_result(const term::Term& t) {
      if (!int_tuple(t, 2)) return drop_malformed("tr2.result");
      const auto& a = t.args();
      const auto gen = static_cast<std::uint64_t>(a[0].int_value());
      const long long value = a[1].int_value();
      std::lock_guard<std::mutex> lk(run_m_);
      if (gen == run_gen_ && result_.has_value()) {
        result_->try_bind(value);  // duplicate-safe
      }
    }

    net::Cluster& cluster_;
    std::uint16_t h_arrive = 0;
    std::uint16_t h_result = 0;

    std::mutex plan_m_;
    std::shared_ptr<const Plan> plan_;
    std::uint64_t plan_gen_ = 0;
    std::uint32_t plan_depth_ = 0;
    std::uint64_t plan_seed_ = 0;
    std::uint64_t last_gen_ = 0;  // guarded by plan_m_

    std::mutex run_m_;
    std::uint64_t run_gen_ = 0;
    std::optional<rt::SVar<long long>> result_;

    std::vector<NodeState> node_state_;
  };

  std::shared_ptr<State> state_;
};

}  // namespace motif
