// Robustness economics: what does supervision cost when nothing goes
// wrong, and what does recovery cost when a node dies?
//
// Cases:
//  * SupervisionOverheadNoFault — the same Tree-Reduce-1 workload run
//    unsupervised (blocking wait_idle) and supervised (wait_idle_for +
//    outcome classification + plan bookkeeping) on a fault-free machine.
//    The JSONL line reports overhead_pct; the supervision layer is
//    designed to stay within a few percent (acceptance bound: <= 5%).
//  * SupervisedRetryUnderKill — one injected node loss per run: the
//    supervisor's detect-abandon-revive-retry path, reported as attempts
//    and recovery wall time.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "bench_report.hpp"

#include "motifs/supervise.hpp"
#include "motifs/tree_reduce.hpp"
#include "runtime/fault.hpp"
#include "runtime/machine.hpp"

namespace m = motif;
namespace rt = motif::rt;
using Clock = std::chrono::steady_clock;

namespace {

using IntTree = m::Tree<int, int>;

IntTree::Ptr balanced(int depth, int& next) {
  if (depth == 0) return IntTree::leaf(next++);
  auto l = balanced(depth - 1, next);
  auto r = balanced(depth - 1, next);
  return IntTree::node(0, std::move(l), std::move(r));
}

struct SumEval {
  int operator()(const int&, const int& a, const int& b) const {
    return a + b;
  }
};

double ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

void BM_SupervisionOverheadNoFault(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  rt::Machine mach({.nodes = 8, .workers = 4, .seed = 17});
  int next = 1;
  const auto tree = balanced(depth, next);
  const int leaves = 1 << depth;
  const int want = leaves * (leaves + 1) / 2;
  m::SuperviseOptions opts;
  opts.deadline = std::chrono::seconds(30);
  double unsup_ns = 0, sup_ns = 0;
  std::uint64_t reps = 0;
  for (auto _ : state) {
    const auto t0 = Clock::now();
    const int plain =
        m::tree_reduce1<int, int>(mach, tree, SumEval{}, m::MapPolicy::Random);
    const auto t1 = Clock::now();
    const auto sup =
        m::supervised_tree_reduce1<int, int>(mach, tree, SumEval{}, opts);
    const auto t2 = Clock::now();
    if (plain != want || !sup.ok() || *sup.value != want) {
      state.SkipWithError("wrong reduction result");
      return;
    }
    unsup_ns += ns_between(t0, t1);
    sup_ns += ns_between(t1, t2);
    ++reps;
  }
  if (reps == 0) return;
  state.counters["unsupervised_ns"] = unsup_ns / static_cast<double>(reps);
  state.counters["supervised_ns"] = sup_ns / static_cast<double>(reps);
  state.counters["overhead_pct"] = (sup_ns - unsup_ns) / unsup_ns * 100.0;
  state.counters["leaves"] = leaves;
  MOTIF_BENCH_REPORT(state);
}
BENCHMARK(BM_SupervisionOverheadNoFault)->Arg(8)->Arg(10);

void BM_SupervisedRetryUnderKill(benchmark::State& state) {
  const auto depth = static_cast<int>(state.range(0));
  int next = 1;
  const auto tree = balanced(depth, next);
  const int leaves = 1 << depth;
  const int want = leaves * (leaves + 1) / 2;
  m::SuperviseOptions opts;
  opts.deadline = std::chrono::seconds(30);
  std::uint64_t attempts = 0, recovered = 0, runs = 0;
  for (auto _ : state) {
    // Fresh machine per run: the exact-count kill fires exactly once.
    rt::FaultPlan plan;
    plan.kills.push_back({2, 2});
    rt::Machine mach({.nodes = 8, .workers = 4, .seed = 17, .faults = plan});
    const auto res =
        m::supervised_tree_reduce1<int, int>(mach, tree, SumEval{}, opts);
    if (res.ok() && *res.value == want) ++recovered;
    attempts += res.attempts;
    ++runs;
  }
  if (runs == 0) return;
  state.counters["attempts_per_run"] =
      static_cast<double>(attempts) / static_cast<double>(runs);
  state.counters["recovered_pct"] =
      100.0 * static_cast<double>(recovered) / static_cast<double>(runs);
  state.counters["leaves"] = leaves;
  MOTIF_BENCH_REPORT(state);
}
BENCHMARK(BM_SupervisedRetryUnderKill)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
