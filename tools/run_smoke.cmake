# Drives motifsh with smoke_script.txt and checks the Figure 5 pipeline
# computes 24 without deadlock, that the tracing loop (:trace on ->
# :run -> :trace dump) produces a per-node summary and a Chrome JSON, and
# that a 2-rank loopback cluster answers :netrun with the sequential
# oracle's value and live net counters.
execute_process(COMMAND ${SHELL} --loopback 2
                INPUT_FILE ${SCRIPT}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "motifsh exited with ${rc}\n${out}\n${err}")
endif()
string(FIND "${out}" ",24))" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "expected Value=24 in output:\n${out}")
endif()
string(FIND "${out}" "DEADLOCK" dpos)
if(NOT dpos EQUAL -1)
  message(FATAL_ERROR "pipeline deadlocked:\n${out}")
endif()
string(FIND "${out}" "lint: clean" lpos)
if(lpos EQUAL -1)
  message(FATAL_ERROR "transformed pipeline should lint clean:\n${out}")
endif()
string(FIND "${out}" "reduce/3" rpos)
if(rpos EQUAL -1)
  message(FATAL_ERROR "profile should show reduce/3 commits:\n${out}")
endif()
# :stats surfaces the scheduler-substrate counters of the last run.
string(FIND "${out}" "mailbox_fast_hits=" spos)
if(spos EQUAL -1)
  message(FATAL_ERROR ":stats should print scheduler counters:\n${out}")
endif()
# :netrun across the 2-rank loopback cluster matches the oracle, and
# :stats adds the net: counter line while the cluster is up.
string(FIND "${out}" "result match: yes" mpos)
if(mpos EQUAL -1)
  message(FATAL_ERROR ":netrun should match the sequential oracle:\n${out}")
endif()
string(FIND "${out}" "net: tx_frames=" netpos)
if(netpos EQUAL -1)
  message(FATAL_ERROR ":stats should print net counters:\n${out}")
endif()
# Built with MOTIF_TRACING=OFF the :trace commands report unavailability
# (and write no file); that is the correct behaviour for that build.
string(FIND "${out}" "tracing unavailable" offpos)
if(NOT offpos EQUAL -1)
  return()
endif()
# :trace dump (no file) prints the per-node text summary.
string(FIND "${out}" "node 0: events=" tpos)
if(tpos EQUAL -1)
  message(FATAL_ERROR "trace dump should print per-node summaries:\n${out}")
endif()
# :trace dump FILE writes Chrome trace-event JSON (into the test cwd).
string(FIND "${out}" "events to smoke_trace.json" wpos)
if(wpos EQUAL -1)
  message(FATAL_ERROR "trace dump FILE should report the write:\n${out}")
endif()
file(READ smoke_trace.json trace_json)
string(FIND "${trace_json}" "\"traceEvents\"" jpos)
if(jpos EQUAL -1)
  message(FATAL_ERROR "smoke_trace.json is not a Chrome trace:\n${trace_json}")
endif()
string(FIND "${trace_json}" "\"thread_name\"" npos)
if(npos EQUAL -1)
  message(FATAL_ERROR "smoke_trace.json has no node tracks:\n${trace_json}")
endif()
file(REMOVE smoke_trace.json)
