// Pipeline (Figure 1 as a native motif) and parallel_for/reduce utilities.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "motifs/parallel_for.hpp"
#include "motifs/pipeline.hpp"

namespace m = motif;
namespace rt = motif::rt;

TEST(Pipeline, SourceToSink) {
  m::Pipeline<int> p;
  int next = 0;
  std::vector<int> got;
  p.source([&]() -> std::optional<int> {
     if (next >= 10) return std::nullopt;
     return next++;
   }).sink([&](int v) { got.push_back(v); });
  EXPECT_EQ(p.run(), 10u);
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

TEST(Pipeline, StagesTransformInOrder) {
  m::Pipeline<long> p(4);
  long next = 1;
  std::vector<long> got;
  p.source([&]() -> std::optional<long> {
     if (next > 5) return std::nullopt;
     return next++;
   })
      .stage([](long v) { return v * 10; })
      .stage([](long v) { return v + 1; })
      .sink([&](long v) { got.push_back(v); });
  p.run();
  EXPECT_EQ(got, (std::vector<long>{11, 21, 31, 41, 51}));
}

TEST(Pipeline, Capacity1IsSynchronousCoupling) {
  // With capacity 1, the producer can be at most 2 items ahead of the
  // consumer (one in the channel, one in flight) — Figure 1's sync.
  m::Pipeline<int> p(1);
  std::atomic<int> produced{0}, consumed{0};
  std::atomic<int> max_lead{0};
  int next = 0;
  p.source([&]() -> std::optional<int> {
     if (next >= 500) return std::nullopt;
     produced.fetch_add(1);
     int lead = produced.load() - consumed.load();
     int cur = max_lead.load();
     while (lead > cur && !max_lead.compare_exchange_weak(cur, lead)) {
     }
     return next++;
   }).sink([&](int) {
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    consumed.fetch_add(1);
  });
  EXPECT_EQ(p.run(), 500u);
  EXPECT_LE(max_lead.load(), 3);
}

TEST(Pipeline, EmptySource) {
  m::Pipeline<int> p;
  p.source([]() -> std::optional<int> { return std::nullopt; })
      .sink([](int) { FAIL() << "sink must not run"; });
  EXPECT_EQ(p.run(), 0u);
}

TEST(Pipeline, MissingSourceThrows) {
  m::Pipeline<int> p;
  p.sink([](int) {});
  EXPECT_THROW(p.run(), std::logic_error);
}

TEST(Pipeline, LargeVolumeThroughThreeStages) {
  m::Pipeline<std::uint64_t> p(64);
  std::uint64_t next = 0;
  std::uint64_t sum = 0;
  p.source([&]() -> std::optional<std::uint64_t> {
     if (next >= 20000) return std::nullopt;
     return next++;
   })
      .stage([](std::uint64_t v) { return v + 1; })
      .stage([](std::uint64_t v) { return v * 2; })
      .sink([&](std::uint64_t v) { sum += v; });
  EXPECT_EQ(p.run(), 20000u);
  // sum over (i+1)*2 for i in [0,20000)
  EXPECT_EQ(sum, 2 * (20000ull * 19999 / 2 + 20000));
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  rt::Machine mach({.nodes = 8, .workers = 2});
  std::vector<std::atomic<int>> hits(1000);
  m::parallel_for(mach, 0, 1000,
                  [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRange) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  m::parallel_for(mach, 5, 5, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, SubRange) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  std::atomic<std::size_t> sum{0};
  m::parallel_for(mach, 10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t(10 + 11 + 12 + 13 + 14 + 15 + 16 + 17 +
                                    18 + 19));
}

TEST(ParallelFor, MoreNodesThanItems) {
  rt::Machine mach({.nodes = 16, .workers = 2});
  std::atomic<int> count{0};
  m::parallel_for(mach, 0, 3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelReduce, SumMatchesFormula) {
  rt::Machine mach({.nodes = 8, .workers = 2});
  auto sum = m::parallel_reduce<std::uint64_t>(
      mach, 0, 100000, 0ull,
      [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 100000ull * 99999 / 2);
}

TEST(ParallelReduce, EmptyRangeGivesIdentity) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  auto r = m::parallel_reduce<int>(
      mach, 3, 3, -1, [](std::size_t) { return 100; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, -1);
}

TEST(ParallelReduce, MaxReduction) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  rt::Rng rng(3);
  std::vector<int> v(5000);
  for (auto& x : v) x = static_cast<int>(rng.below(1 << 20));
  auto mx = m::parallel_reduce<int>(
      mach, 0, v.size(), 0, [&](std::size_t i) { return v[i]; },
      [](int a, int b) { return std::max(a, b); });
  EXPECT_EQ(mx, *std::max_element(v.begin(), v.end()));
}
