// TCP transport: one process per rank, full mesh over localhost or a LAN.
//
// Connection setup is deterministic regardless of start order: every rank
// listens on its own peers[rank] port, *dials* every lower rank (retrying
// while the peer's listener comes up) and *accepts* from every higher
// rank; the first frame on each connection is a Hello carrying the
// dialer's rank, so accepted sockets are attributed without trusting
// addresses. After the mesh is up each socket goes nonblocking and gets a
// dedicated I/O thread:
//
//   * writes — send() appends the encoded frame to a bounded outbound
//     queue (backpressure: producers block on a condvar when the queue is
//     full) and pokes the I/O thread through a self-pipe; the I/O thread
//     coalesces everything queued into one buffer per wakeup so a burst of
//     small posts becomes a single write() (we set TCP_NODELAY and batch
//     ourselves instead of letting Nagle guess).
//   * reads — a reassembly buffer accumulates socket bytes; complete
//     length-prefixed frames are peeled off and handed to the receiver on
//     the I/O thread. decode_frame distinguishes "incomplete, read more"
//     from corruption, so short reads are handled by construction.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <thread>

#include "net/transport.hpp"

namespace motif::net {

namespace {

constexpr std::size_t kMaxOutboundFrames = 1024;
constexpr std::size_t kMaxOutboundBytes = 4u << 20;
constexpr std::size_t kCoalesceBytes = 256u << 10;
constexpr int kDialAttempts = 300;  // x 50ms = 15s to wait for a peer

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

struct HostPort {
  std::string host;
  std::uint16_t port;
};

HostPort parse_host_port(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon + 1 == s.size()) {
    throw std::runtime_error("bad peer address (want host:port): " + s);
  }
  const int port = std::stoi(s.substr(colon + 1));
  if (port <= 0 || port > 0xFFFF) {
    throw std::runtime_error("bad peer port: " + s);
  }
  return {s.substr(0, colon), static_cast<std::uint16_t>(port)};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    sys_fail("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      sys_fail("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void read_exact(int fd, std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      sys_fail("read");
    }
    if (r == 0) throw std::runtime_error("peer closed during handshake");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

/// Reads exactly one frame from a (still-blocking) handshake socket.
Frame read_frame_blocking(int fd) {
  std::uint8_t lenb[4];
  read_exact(fd, lenb, 4);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(lenb[i]) << (8 * i);
  if (len > kMaxFrameBytes) throw WireError("handshake frame too large");
  std::vector<std::uint8_t> buf(4u + len);
  std::memcpy(buf.data(), lenb, 4);
  read_exact(fd, buf.data() + 4, len);
  std::size_t consumed = 0;
  std::optional<Frame> f = decode_frame(buf.data(), buf.size(), &consumed);
  if (!f) throw WireError("short handshake frame");
  return std::move(*f);
}

class TcpTransport final : public Transport {
 public:
  TcpTransport(std::uint32_t rank, std::vector<std::string> peers)
      : rank_(rank), peers_(std::move(peers)) {
    if (rank_ >= peers_.size()) {
      throw std::runtime_error("tcp transport: rank outside peer list");
    }
    conns_.resize(peers_.size());
  }

  ~TcpTransport() override { stop(); }

  std::uint32_t rank() const override { return rank_; }
  std::uint32_t ranks() const override {
    return static_cast<std::uint32_t>(peers_.size());
  }

  void set_receiver(RecvFn fn) override { recv_ = std::move(fn); }

  void start() override {
    if (peers_.size() == 1) return;  // nothing to connect
    const std::uint32_t higher = ranks() - rank_ - 1;
    if (higher > 0) open_listener();
    for (std::uint32_t r = 0; r < rank_; ++r) dial(r);
    for (std::uint32_t i = 0; i < higher; ++i) accept_one();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Mesh complete: go nonblocking and start the I/O threads.
    for (auto& c : conns_) {
      if (!c) continue;
      set_nonblocking(c->fd);
      if (::pipe(c->wake) < 0) sys_fail("pipe");
      set_nonblocking(c->wake[0]);
      set_nonblocking(c->wake[1]);
      Conn* conn = c.get();
      c->io = std::thread([this, conn] { io_loop(*conn); });
    }
  }

  std::size_t send(std::uint32_t to, const Frame& f) override {
    if (to == rank_ || to >= conns_.size() || !conns_[to]) {
      throw std::runtime_error("tcp transport: no connection to rank " +
                               std::to_string(to));
    }
    std::vector<std::uint8_t> bytes = encode_frame(f);
    const std::size_t wire = bytes.size();
    Conn& c = *conns_[to];
    {
      std::unique_lock<std::mutex> lk(c.mu);
      c.can_send.wait(lk, [&] {
        return stopping_.load(std::memory_order_acquire) ||
               c.dead.load(std::memory_order_acquire) ||
               (c.outq.size() < kMaxOutboundFrames &&
                c.outq_bytes < kMaxOutboundBytes);
      });
      if (stopping_.load(std::memory_order_acquire)) {
        throw std::runtime_error("tcp transport stopped");
      }
      if (c.dead.load(std::memory_order_acquire)) {
        throw std::runtime_error("tcp transport: connection to rank " +
                                 std::to_string(to) + " lost");
      }
      c.outq_bytes += bytes.size();
      c.enq_bytes += bytes.size();
      c.outq.push_back(std::move(bytes));
    }
    poke(c);
    return wire;
  }

  void stop() override {
    bool expected = false;
    if (!stop_entered_.compare_exchange_strong(expected, true)) return;
    // Give queued frames — typically a final Shutdown broadcast — a
    // bounded chance to reach the wire while the I/O threads still run.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    for (auto& c : conns_) {
      if (!c || c->dead.load(std::memory_order_acquire)) continue;
      for (;;) {
        std::uint64_t enq = 0;
        {
          std::lock_guard<std::mutex> lk(c->mu);
          enq = c->enq_bytes;
        }
        if (c->sent_bytes.load(std::memory_order_acquire) >= enq) break;
        if (std::chrono::steady_clock::now() >= deadline) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    stopping_.store(true, std::memory_order_release);
    for (auto& c : conns_) {
      if (!c) continue;
      c->can_send.notify_all();
      poke(*c);
    }
    for (auto& c : conns_) {
      if (c && c->io.joinable()) c->io.join();
    }
    for (auto& c : conns_) {
      if (!c) continue;
      if (c->fd >= 0) ::close(c->fd);
      if (c->wake[0] >= 0) ::close(c->wake[0]);
      if (c->wake[1] >= 0) ::close(c->wake[1]);
      c->fd = c->wake[0] = c->wake[1] = -1;
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

 private:
  struct Conn {
    int fd = -1;
    int wake[2] = {-1, -1};
    std::uint32_t peer = 0;
    std::thread io;
    std::mutex mu;
    std::condition_variable can_send;
    std::deque<std::vector<std::uint8_t>> outq;
    std::size_t outq_bytes = 0;
    std::uint64_t enq_bytes = 0;  // under mu: total bytes ever enqueued
    std::atomic<std::uint64_t> sent_bytes{0};  // written to the socket
    std::atomic<bool> dead{false};  // peer lost; senders must not block
  };

  static void poke(Conn& c) {
    if (c.wake[1] < 0) return;
    const char b = 1;
    [[maybe_unused]] ssize_t w = ::write(c.wake[1], &b, 1);  // EAGAIN fine:
    // a full pipe already guarantees a pending wakeup.
  }

  void open_listener() {
    const HostPort hp = parse_host_port(peers_[rank_]);
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) sys_fail("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    // Bind the configured interface, not INADDR_ANY: a localhost mesh
    // should not be reachable (or disturbable) from the LAN at all.
    // Fall back to any-interface only if the host doesn't resolve here.
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(hp.host.c_str(), nullptr, &hints, &res) == 0 &&
        res != nullptr) {
      addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
      ::freeaddrinfo(res);
    }
    addr.sin_port = htons(hp.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      sys_fail("bind " + peers_[rank_]);
    }
    if (::listen(listen_fd_, static_cast<int>(ranks())) < 0) sys_fail("listen");
  }

  void dial(std::uint32_t r) {
    const HostPort hp = parse_host_port(peers_[r]);
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port_str = std::to_string(hp.port);
    if (::getaddrinfo(hp.host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
        res == nullptr) {
      throw std::runtime_error("cannot resolve peer " + peers_[r]);
    }
    int fd = -1;
    for (int attempt = 0; attempt < kDialAttempts; ++attempt) {
      fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
      if (fd < 0) {
        ::freeaddrinfo(res);
        sys_fail("socket");
      }
      if (::connect(fd, res->ai_addr, res->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
      throw std::runtime_error("cannot connect to rank " + std::to_string(r) +
                               " at " + peers_[r]);
    }
    set_nodelay(fd);
    Frame hello;
    hello.type = FrameType::Hello;
    hello.src_rank = rank_;
    const std::vector<std::uint8_t> bytes = encode_frame(hello);
    write_all(fd, bytes.data(), bytes.size());
    auto c = std::make_unique<Conn>();
    c->fd = fd;
    c->peer = r;
    conns_[r] = std::move(c);
  }

  /// Accepts connections until one presents a valid Hello from a
  /// not-yet-connected higher rank. A stray connection (port scanner,
  /// health checker, LAN noise) is closed and ignored rather than
  /// aborting cluster bring-up, and a receive timeout on the handshake
  /// socket keeps a silent one from wedging start() forever.
  void accept_one() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        sys_fail("accept");
      }
      timeval tv{};
      tv.tv_sec = 5;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      Frame hello;
      try {
        hello = read_frame_blocking(fd);
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "[net] rank %u: dropping stray connection (%s)\n", rank_,
                     e.what());
        ::close(fd);
        continue;
      }
      if (hello.type != FrameType::Hello || hello.src_rank <= rank_ ||
          hello.src_rank >= ranks() || conns_[hello.src_rank]) {
        std::fprintf(stderr,
                     "[net] rank %u: dropping connection with bad Hello\n",
                     rank_);
        ::close(fd);
        continue;
      }
      // Clear the handshake timeout; the socket goes nonblocking next.
      timeval zero{};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &zero, sizeof(zero));
      set_nodelay(fd);
      auto c = std::make_unique<Conn>();
      c->fd = fd;
      c->peer = hello.src_rank;
      conns_[hello.src_rank] = std::move(c);
      return;
    }
  }

  void io_loop(Conn& c) {
    std::vector<std::uint8_t> inbuf;
    std::size_t inpos = 0;  // decoded-up-to offset into inbuf
    std::vector<std::uint8_t> wbuf;
    std::size_t wpos = 0;

    while (!stopping_.load(std::memory_order_acquire)) {
      // Refill the write buffer by coalescing queued frames.
      if (wpos == wbuf.size()) {
        wbuf.clear();
        wpos = 0;
        std::lock_guard<std::mutex> lk(c.mu);
        while (!c.outq.empty() && wbuf.size() < kCoalesceBytes) {
          std::vector<std::uint8_t>& f = c.outq.front();
          wbuf.insert(wbuf.end(), f.begin(), f.end());
          c.outq_bytes -= f.size();
          c.outq.pop_front();
        }
        if (!c.outq.empty() || !wbuf.empty()) c.can_send.notify_all();
      }

      pollfd fds[2];
      fds[0] = {c.fd, POLLIN, 0};
      if (wpos < wbuf.size()) fds[0].events |= POLLOUT;
      fds[1] = {c.wake[0], POLLIN, 0};
      if (::poll(fds, 2, -1) < 0) {
        if (errno == EINTR) continue;
        break;
      }

      if (fds[1].revents & POLLIN) {  // drain the wake pipe
        char sink[64];
        while (::read(c.wake[0], sink, sizeof(sink)) > 0) {
        }
      }

      if (fds[0].revents & (POLLIN | POLLERR | POLLHUP)) {
        if (!drain_reads(c, inbuf, inpos)) return;
      }

      if ((fds[0].revents & POLLOUT) && wpos < wbuf.size()) {
        const ssize_t w = ::send(c.fd, wbuf.data() + wpos, wbuf.size() - wpos,
                                 MSG_NOSIGNAL);
        if (w > 0) {
          wpos += static_cast<std::size_t>(w);
          c.sent_bytes.fetch_add(static_cast<std::uint64_t>(w),
                                 std::memory_order_release);
        } else if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR) {
          io_error(c, "send");
          return;
        }
      }
    }
  }

  /// Reads everything currently available, peels off complete frames.
  /// Returns false when the connection is finished (closed or corrupt).
  bool drain_reads(Conn& c, std::vector<std::uint8_t>& inbuf,
                   std::size_t& inpos) {
    char tmp[64 * 1024];
    for (;;) {
      const ssize_t r = ::read(c.fd, tmp, sizeof(tmp));
      if (r > 0) {
        inbuf.insert(inbuf.end(), tmp, tmp + r);
        continue;
      }
      if (r == 0) {
        if (!stopping_.load(std::memory_order_acquire)) {
          io_error(c, "peer closed connection");
        }
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      io_error(c, "read");
      return false;
    }

    try {
      for (;;) {
        std::size_t consumed = 0;
        std::optional<Frame> f =
            decode_frame(inbuf.data() + inpos, inbuf.size() - inpos, &consumed);
        if (!f) break;
        inpos += consumed;
        if (recv_) recv_(std::move(*f), consumed);
      }
    } catch (const WireError& e) {
      io_error(c, std::string("corrupt frame: ") + e.what());
      return false;
    } catch (const std::exception& e) {
      // The receiver threw (e.g. Cluster::on_frame forwarding to a third
      // rank whose connection died). Letting it escape would terminate
      // the process from this I/O thread; frames past inpos would also
      // go unprocessed, so fail the link and let the cluster layer
      // surface it as a lost node.
      io_error(c, std::string("receiver failed: ") + e.what());
      return false;
    }
    // Compact once the decoded prefix dominates the buffer.
    if (inpos > (64u << 10) && inpos * 2 > inbuf.size()) {
      inbuf.erase(inbuf.begin(),
                  inbuf.begin() + static_cast<std::ptrdiff_t>(inpos));
      inpos = 0;
    }
    return true;
  }

  void io_error(Conn& c, const std::string& what) {
    if (!stopping_.load(std::memory_order_acquire)) {
      std::fprintf(stderr, "[net] rank %u <-> rank %u: %s\n", rank_, c.peer,
                   what.c_str());
    }
    // Mark the peer lost and unblock senders: further send() calls to it
    // throw instead of waiting on a queue nothing will ever drain.
    c.dead.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lk(c.mu);
    c.can_send.notify_all();
  }

  std::uint32_t rank_;
  std::vector<std::string> peers_;
  RecvFn recv_;
  int listen_fd_ = -1;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<bool> stop_entered_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace

std::unique_ptr<Transport> make_tcp_transport(std::uint32_t rank,
                                              std::vector<std::string> peers) {
  return std::make_unique<TcpTransport>(rank, std::move(peers));
}

std::vector<std::uint16_t> pick_free_ports(std::size_t n) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) sys_fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      sys_fail("bind ephemeral");
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
      ::close(fd);
      sys_fail("getsockname");
    }
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);  // hold open so later picks can't collide
  }
  for (int fd : fds) ::close(fd);
  return ports;
}

}  // namespace motif::net
