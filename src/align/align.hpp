// Umbrella header for the alignment application substrate (paper
// Section 3's computational-biology case study, synthesised).
#pragma once

#include "align/msa.hpp"
#include "align/nw.hpp"
#include "align/phylo.hpp"
#include "align/profile.hpp"
#include "align/sequence.hpp"
