
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/arith.cpp" "src/interp/CMakeFiles/motif_interp.dir/arith.cpp.o" "gcc" "src/interp/CMakeFiles/motif_interp.dir/arith.cpp.o.d"
  "/root/repo/src/interp/interp.cpp" "src/interp/CMakeFiles/motif_interp.dir/interp.cpp.o" "gcc" "src/interp/CMakeFiles/motif_interp.dir/interp.cpp.o.d"
  "/root/repo/src/interp/stdlib.cpp" "src/interp/CMakeFiles/motif_interp.dir/stdlib.cpp.o" "gcc" "src/interp/CMakeFiles/motif_interp.dir/stdlib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/motif_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/motif_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
