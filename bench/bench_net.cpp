// Net-layer throughput: what does spanning processes actually cost?
//
// Cases, all 2-rank clusters pumping Post frames from rank 0 to rank 1:
//   LoopbackPosts — deterministic in-process transport (codec cost only)
//   TcpPosts      — real localhost sockets (codec + syscalls + coalescing)
//   LoopbackDistTreeReduce2 / TcpDistTreeReduce2 — the whole motif,
//     end-to-end, so the per-frame numbers have an application anchor.
//
// Reported per case: posts_per_s, bytes_per_s (wire bytes, length prefix
// included) from the receiving side's counters. The loopback/TCP gap is
// the transport tax; the codec is identical in both.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.hpp"

#include "motifs/dist_tree_reduce.hpp"
#include "net/cluster.hpp"
#include "net/transport.hpp"

namespace n = motif::net;
namespace rt = motif::rt;
using namespace std::chrono_literals;

namespace {

constexpr int kPostsPerIter = 20000;

/// A 2-rank cluster over either transport; rank 1 counts arrivals.
struct Pair {
  n::LoopbackHub hub{2};
  std::unique_ptr<n::Transport> tcp0, tcp1;
  std::vector<std::unique_ptr<n::Cluster>> cs;
  std::uint16_t h_sink = 0;
  std::atomic<std::uint64_t> received{0};

  /// `extra` runs per cluster after the sink handler is registered and
  /// before start() — registration order must match on every rank.
  explicit Pair(bool over_tcp,
                const std::function<void(n::Cluster&)>& extra = {}) {
    if (over_tcp) {
      const auto ports = n::pick_free_ports(2);
      std::vector<std::string> peers;
      for (auto p : ports) peers.push_back("127.0.0.1:" + std::to_string(p));
      tcp0 = n::make_tcp_transport(0, peers);
      tcp1 = n::make_tcp_transport(1, peers);
    }
    for (std::uint32_t r = 0; r < 2; ++r) {
      n::ClusterConfig cfg;
      cfg.nodes_per_rank = 2;
      n::Transport& t =
          over_tcp ? (r == 0 ? *tcp0 : *tcp1) : hub.endpoint(r);
      cs.push_back(std::make_unique<n::Cluster>(t, cfg));
    }
    for (auto& c : cs) {
      h_sink = c->register_handler("bench.sink", [this](const auto&) {
        received.fetch_add(1, std::memory_order_relaxed);
      });
      if (extra) extra(*c);
    }
    if (over_tcp) {
      // TCP start() blocks on the connect handshake: bring rank 1 up
      // concurrently. (Loopback start is non-blocking for followers.)
      std::thread t([this] { cs[1]->start(); });
      cs[0]->start();
      t.join();
    } else {
      cs[1]->start();
      cs[0]->start();
    }
  }

  ~Pair() {
    for (auto& c : cs) c->shutdown();
  }
};

void run_posts(benchmark::State& state, bool over_tcp) {
  Pair pair(over_tcp);
  const auto payload = motif::term::Term::tuple(
      {motif::term::Term::integer(7), motif::term::Term::atom("bench"),
       motif::term::Term::str("sixteen byte pad")});
  std::uint64_t posts = 0;
  for (auto _ : state) {
    const std::uint64_t before = pair.received.load();
    for (int i = 0; i < kPostsPerIter; ++i) {
      pair.cs[0]->post(/*dst=*/2, pair.h_sink, payload);  // rank 1's node
    }
    // Settle: every post delivered before the iteration closes.
    while (pair.received.load(std::memory_order_relaxed) <
           before + kPostsPerIter) {
      std::this_thread::yield();
    }
    posts += kPostsPerIter;
  }
  const auto rx = pair.cs[1]->net_stats();
  state.counters["posts_per_s"] = benchmark::Counter(
      static_cast<double>(posts), benchmark::Counter::kIsRate);
  state.counters["bytes_per_s"] = benchmark::Counter(
      static_cast<double>(rx.rx_bytes), benchmark::Counter::kIsRate);
  state.counters["frame_bytes"] =
      posts > 0 ? static_cast<double>(rx.rx_bytes) /
                      static_cast<double>(rx.rx_frames)
                : 0.0;
}

void run_dist_tr2(benchmark::State& state, bool over_tcp) {
  std::vector<std::unique_ptr<motif::DistTreeReduce2>> trs;
  Pair pair(over_tcp, [&trs](n::Cluster& c) {
    trs.push_back(std::make_unique<motif::DistTreeReduce2>(c));
  });
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto r = trs[0]->run(/*depth=*/8, seed++, 60s);
    if (!r.ok) state.SkipWithError(r.outcome.to_string().c_str());
    benchmark::DoNotOptimize(r.value);
  }
  const auto s0 = pair.cs[0]->net_stats();
  const auto s1 = pair.cs[1]->net_stats();
  state.counters["posts_per_s"] = benchmark::Counter(
      static_cast<double>(s0.tx_frames + s1.tx_frames),
      benchmark::Counter::kIsRate);
  state.counters["bytes_per_s"] = benchmark::Counter(
      static_cast<double>(s0.tx_bytes + s1.tx_bytes),
      benchmark::Counter::kIsRate);
}

void BM_LoopbackPosts(benchmark::State& state) {
  run_posts(state, /*over_tcp=*/false);
  MOTIF_BENCH_REPORT(state);
}

void BM_TcpPosts(benchmark::State& state) {
  run_posts(state, /*over_tcp=*/true);
  MOTIF_BENCH_REPORT(state);
}

void BM_LoopbackDistTreeReduce2(benchmark::State& state) {
  run_dist_tr2(state, /*over_tcp=*/false);
  MOTIF_BENCH_REPORT(state);
}

void BM_TcpDistTreeReduce2(benchmark::State& state) {
  run_dist_tr2(state, /*over_tcp=*/true);
  MOTIF_BENCH_REPORT(state);
}

BENCHMARK(BM_LoopbackPosts)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcpPosts)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LoopbackDistTreeReduce2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcpDistTreeReduce2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
