// Sorting motif (paper Section 4 lists sorting among motif areas).
//
// parallel_merge_sort is deliberately built BY COMPOSITION from the
// divide-and-conquer motif — the paper's central claim is that new motifs
// come from combining existing ones — with a sequential std::sort base
// case (the "multilingual approach": low-level leaf work in low-level
// code, Section 2.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "motifs/dnc.hpp"
#include "runtime/machine.hpp"

namespace motif {

/// Stable contract: returns a sorted copy. `grain` is the base-case size.
template <class T, class Cmp = std::less<T>>
std::vector<T> parallel_merge_sort(rt::Machine& m, std::vector<T> data,
                                   std::size_t grain = 2048, Cmp cmp = {}) {
  if (data.size() <= grain) {
    std::sort(data.begin(), data.end(), cmp);
    return data;
  }
  using Vec = std::vector<T>;
  return divide_and_conquer<Vec, Vec>(
      m, std::move(data),
      /*is_base=*/[grain](const Vec& v) { return v.size() <= grain; },
      /*base=*/
      [cmp](Vec v) {
        std::sort(v.begin(), v.end(), cmp);
        return v;
      },
      /*divide=*/
      [](const Vec& v) {
        const std::size_t mid = v.size() / 2;
        Vec lo(v.begin(), v.begin() + mid);
        Vec hi(v.begin() + mid, v.end());
        std::vector<Vec> parts;
        parts.push_back(std::move(lo));
        parts.push_back(std::move(hi));
        return parts;
      },
      /*combine=*/
      [cmp](const Vec&, std::vector<Vec> rs) {
        Vec out;
        out.reserve(rs[0].size() + rs[1].size());
        std::merge(rs[0].begin(), rs[0].end(), rs[1].begin(), rs[1].end(),
                   std::back_inserter(out), cmp);
        return out;
      });
}

/// Sample sort: splitters from a sample partition the input into one
/// bucket per processor; buckets sort in parallel (one task per node) and
/// concatenate. Better bucket locality than mergesort for large inputs.
template <class T, class Cmp = std::less<T>>
std::vector<T> parallel_sample_sort(rt::Machine& m, std::vector<T> data,
                                    Cmp cmp = {}) {
  const std::size_t p = m.node_count();
  if (data.size() < 4 * p || p == 1) {
    std::sort(data.begin(), data.end(), cmp);
    return data;
  }
  // Splitters: sort an 8p-point sample, take every 8th.
  std::vector<T> sample;
  const std::size_t step = std::max<std::size_t>(1, data.size() / (8 * p));
  for (std::size_t i = 0; i < data.size(); i += step) sample.push_back(data[i]);
  std::sort(sample.begin(), sample.end(), cmp);
  std::vector<T> splitters;
  for (std::size_t k = 1; k < p; ++k) {
    splitters.push_back(sample[k * sample.size() / p]);
  }
  // Scatter into buckets.
  std::vector<std::vector<T>> buckets(p);
  for (auto& x : data) {
    const std::size_t b = static_cast<std::size_t>(
        std::upper_bound(splitters.begin(), splitters.end(), x, cmp) -
        splitters.begin());
    buckets[b].push_back(std::move(x));
  }
  // Sort buckets in parallel, one per node.
  std::vector<rt::SVar<bool>> done(p);
  for (std::size_t b = 0; b < p; ++b) {
    m.post(static_cast<rt::NodeId>(b), [&buckets, b, cmp, d = done[b]] {
      std::sort(buckets[b].begin(), buckets[b].end(), cmp);
      rt::SVar<bool> dd = d;
      dd.bind(true);
    });
  }
  m.wait_idle();  // rethrows task errors; all buckets sorted after this
  for (auto& d : done) d.get();
  std::vector<T> out;
  out.reserve(data.size());
  for (auto& b : buckets) {
    out.insert(out.end(), std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()));
  }
  return out;
}

}  // namespace motif
