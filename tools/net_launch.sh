#!/usr/bin/env bash
# Two-process TCP cluster smoke: launches rank 1 as a background server,
# drives rank 0's shell through `:netrun treereduce2 DEPTH SEED`, and
# checks the distributed value matched the in-process sequential oracle
# (the same number a single-process run computes) and that real frames
# crossed the socket.
#
# usage: net_launch.sh path/to/motifsh [DEPTH] [SEED]
set -u

shell=${1:?usage: net_launch.sh MOTIFSH [DEPTH] [SEED]}
depth=${2:-6}
seed=${3:-42}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

out=""
rc=1
for attempt in 1 2 3; do
  # Random ephemeral port pair so parallel CI jobs don't collide; on a
  # bind clash both processes fail fast and we redraw.
  base=$(( (RANDOM % 20000) + 20000 ))
  peers="127.0.0.1:${base},127.0.0.1:$((base + 1))"

  "$shell" --rank 1 --peers "$peers" < /dev/null \
      > "$workdir/rank1.log" 2>&1 &
  follower=$!

  out=$(printf ':netrun treereduce2 %s %s\n:stats\n:quit\n' \
               "$depth" "$seed" \
        | "$shell" --rank 0 --peers "$peers" 2>&1)
  rc=$?
  wait "$follower"
  frc=$?
  if [ "$rc" -eq 0 ] && [ "$frc" -eq 0 ]; then
    break
  fi
  echo "attempt $attempt failed (rank0 rc=$rc, rank1 rc=$frc); retrying" >&2
  sed 's/^/  rank1: /' "$workdir/rank1.log" >&2 || true
  rc=1
done

echo "$out"
if [ "$rc" -ne 0 ]; then
  echo "net_launch: cluster never came up" >&2
  exit 1
fi
case "$out" in
  *"result match: yes"*) ;;
  *) echo "net_launch: distributed result did not match the oracle" >&2
     exit 1 ;;
esac
case "$out" in
  *"net: tx_frames="*) ;;
  *) echo "net_launch: no net counters in :stats output" >&2
     exit 1 ;;
esac
echo "net_launch: OK (depth=$depth seed=$seed)"
