# Empty dependencies file for term_fuzz_test.
# This may be replaced when dependencies are built.
