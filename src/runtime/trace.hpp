// Runtime tracing: per-node (per-*track*) event timelines for the
// simulated multicomputer.
//
// The paper's argument for motifs rests on *observable parallel shape* —
// Tree-Reduce-2 is preferred over Tree-Reduce-1 because it bounds
// concurrent node evaluations and inter-processor messages (Section 3.5).
// Aggregate counters (LoadSummary) verify the totals; this tracer records
// the *timeline*: task-execution spans, message send/receive edges with
// matched ids (so cross-node arrows render), eval-scope begin/end (making
// "at most one active evaluation per processor" visible on a track), and
// user-named motif spans (TRACE_SPAN("tree_reduce2.combine")).
//
// Design:
//  * One bounded ring buffer of fixed-size TraceEvent records per track.
//    A track has a single writer at any moment (a Machine node's tasks
//    run sequentially; a pipeline stage is one thread), so emission is
//    lock-free: plain stores plus one release store of the head index.
//    On overflow the oldest record is dropped and a dropped-event counter
//    ticks; exports report it.
//  * Readers (drain) run only while writers are quiescent (machine idle,
//    trace stopped); the head's release/acquire pair publishes records.
//  * Compile-time zero cost: with MOTIF_TRACING=0 every hook —
//    TRACE_SPAN, the eval hooks, the Machine instrumentation — compiles
//    to nothing. With MOTIF_TRACING=1 an inactive tracer costs one
//    relaxed atomic load per hook.
//
// Exporters: Chrome trace-event JSON (chrome://tracing, Perfetto; one
// thread track per virtual node, flow events for remote messages) and a
// plain-text per-track histogram summary.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#ifndef MOTIF_TRACING
#define MOTIF_TRACING 1
#endif

namespace motif::rt {

enum class TraceEventKind : std::uint8_t {
  TaskBegin,   ///< a Machine task starts on this track
  TaskEnd,     ///< ...ends; `id` holds the virtual-work units it executed
  EvalBegin,   ///< an EvalScope (node evaluation) opens on this thread
  EvalEnd,     ///< ...closes
  SpanBegin,   ///< TRACE_SPAN opens; `name` holds the label
  SpanEnd,     ///< ...closes
  MsgSend,     ///< remote post: `id` message id, `peer` dst track, `hops`
  MsgRecv,     ///< matching delivery: same `id`, `peer` src track
  Fault,       ///< injected fault: `name` kind (drop/dup/delay/kill/throw),
               ///< `peer` the other node involved, `id` the fault ordinal
  Counter,     ///< monotonic counter sample: `name` the counter (e.g.
               ///< "steals"), `id` its value at ts_ns
};

/// Fixed-size trace record. Span labels are stored inline (truncated to
/// kNameBytes-1) so rings need no allocation and drop-oldest is O(1).
struct TraceEvent {
  static constexpr std::size_t kNameBytes = 31;

  std::uint64_t ts_ns = 0;  ///< nanoseconds since the tracer's epoch
  std::uint64_t id = 0;     ///< message id / work units (kind-dependent)
  std::uint32_t peer = 0;   ///< peer track for message events
  std::uint32_t hops = 0;   ///< topology hops for message events
  TraceEventKind kind = TraceEventKind::TaskBegin;
  char name[kNameBytes] = {};

  void set_name(const char* s) {
    if (s == nullptr) {
      name[0] = '\0';
      return;
    }
    std::strncpy(name, s, kNameBytes - 1);
    name[kNameBytes - 1] = '\0';
  }
};
static_assert(sizeof(TraceEvent) == 56, "keep records cache-friendly");

/// Bounded single-writer ring. The writer owns head and tail; when full
/// it advances the tail (drop-oldest) and counts the drop. drain() may
/// only run while the writer is quiescent.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : buf_(capacity < 2 ? 2 : capacity) {}

  void emit(const TraceEvent& e) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (h - t == buf_.size()) {
      tail_.store(t + 1, std::memory_order_relaxed);
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    buf_[h % buf_.size()] = e;
    head_.store(h + 1, std::memory_order_release);
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return buf_.size(); }

  /// Oldest-first snapshot; clears the ring and the dropped counter.
  std::vector<TraceEvent> drain() {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(h - t));
    for (std::uint64_t i = t; i < h; ++i) out.push_back(buf_[i % buf_.size()]);
    tail_.store(h, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    return out;
  }

 private:
  std::vector<TraceEvent> buf_;
  std::atomic<std::uint64_t> head_{0};  // next write slot (monotonic)
  std::atomic<std::uint64_t> tail_{0};  // oldest retained (monotonic)
  std::atomic<std::uint64_t> dropped_{0};
};

/// One exported timeline plus its overflow count.
struct TraceTrack {
  std::string name;
  std::vector<TraceEvent> events;  // oldest first
  std::uint64_t dropped = 0;
};

struct TraceLog {
  std::vector<TraceTrack> tracks;

  bool empty() const {
    for (const auto& t : tracks) {
      if (!t.events.empty()) return false;
    }
    return true;
  }
  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& t : tracks) n += t.events.size();
    return n;
  }
};

struct TracerOptions {
  std::size_t track_capacity = 8192;  ///< events retained per track
};

/// A set of single-writer timelines with a shared epoch, activity flag
/// and message-id source. A Machine owns one (one track per virtual
/// node); a Pipeline can own its own (one track per stage thread).
///
/// Thread contract: emit() is safe from one writer per track at a time;
/// add_track(), start(), stop() and drain() must not race with emitters
/// (call them while the machine / pipeline is quiescent).
class Tracer {
 public:
  explicit Tracer(TracerOptions opts = {}) : opts_(opts) {}

  std::uint32_t add_track(std::string name) {
    tracks_.push_back(std::make_unique<Track>(
        std::move(name), opts_.track_capacity));
    return static_cast<std::uint32_t>(tracks_.size() - 1);
  }

  std::uint32_t track_count() const {
    return static_cast<std::uint32_t>(tracks_.size());
  }

  /// Clears all rings, resets the epoch, and begins recording.
  void start() {
    for (auto& t : tracks_) t->ring.drain();
    epoch_ = std::chrono::steady_clock::now();
    msg_ids_.store(0, std::memory_order_relaxed);
    active_.store(true, std::memory_order_release);
  }

  void stop() { active_.store(false, std::memory_order_release); }

  bool active() const { return active_.load(std::memory_order_relaxed); }

  /// Fresh nonzero id for one send/receive pair.
  std::uint64_t next_msg_id() {
    return msg_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Stamps and records one event; no-op while inactive.
  void emit(std::uint32_t track, TraceEventKind kind,
            const char* name = nullptr, std::uint64_t id = 0,
            std::uint32_t peer = 0, std::uint32_t hops = 0) {
    if (!active()) return;
    TraceEvent e;
    e.ts_ns = now_ns();
    e.id = id;
    e.peer = peer;
    e.hops = hops;
    e.kind = kind;
    e.set_name(name);
    tracks_[track]->ring.emit(e);
  }

  /// Stops recording and snapshots every track (rings are cleared; track
  /// registrations persist, so a later start() records a fresh run).
  TraceLog drain() {
    stop();
    TraceLog log;
    log.tracks.reserve(tracks_.size());
    for (auto& t : tracks_) {
      TraceTrack out;
      out.name = t->name;
      out.dropped = t->ring.dropped();  // read before drain() clears it
      out.events = t->ring.drain();
      log.tracks.push_back(std::move(out));
    }
    return log;
  }

 private:
  struct Track {
    std::string name;
    TraceRing ring;
    Track(std::string n, std::size_t cap) : name(std::move(n)), ring(cap) {}
  };

  TracerOptions opts_;
  std::vector<std::unique_ptr<Track>> tracks_;
  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> msg_ids_{0};
  std::chrono::steady_clock::time_point epoch_{};
};

// ---- thread-track binding -------------------------------------------------
//
// Emission sites inside motif code (TRACE_SPAN, EvalScope) don't know
// which Machine or track they run on; the executor binds the calling
// thread to (tracer, track) for the duration of a node drain / stage
// loop, and the hooks emit through the binding. Unbound threads no-op.

namespace trace_detail {
struct ThreadBinding {
  Tracer* tracer = nullptr;
  std::uint32_t track = 0;
};
ThreadBinding& tl_binding();
}  // namespace trace_detail

/// RAII: binds the calling thread to one tracer track, restoring the
/// previous binding on destruction (bindings nest).
class ThreadTrackGuard {
 public:
  ThreadTrackGuard(Tracer* tracer, std::uint32_t track)
      : prev_(trace_detail::tl_binding()) {
    trace_detail::tl_binding() = {tracer, track};
  }
  ~ThreadTrackGuard() { trace_detail::tl_binding() = prev_; }
  ThreadTrackGuard(const ThreadTrackGuard&) = delete;
  ThreadTrackGuard& operator=(const ThreadTrackGuard&) = delete;

 private:
  trace_detail::ThreadBinding prev_;
};

/// Emits through the calling thread's binding (no-op when unbound or the
/// bound tracer is inactive).
inline void trace_emit_here(TraceEventKind kind, const char* name = nullptr,
                            std::uint64_t id = 0, std::uint32_t peer = 0,
                            std::uint32_t hops = 0) {
  const auto& b = trace_detail::tl_binding();
  if (b.tracer != nullptr) b.tracer->emit(b.track, kind, name, id, peer, hops);
}

#if MOTIF_TRACING
inline void trace_eval_begin() {
  trace_emit_here(TraceEventKind::EvalBegin);
}
inline void trace_eval_end() { trace_emit_here(TraceEventKind::EvalEnd); }
#else
inline void trace_eval_begin() {}
inline void trace_eval_end() {}
#endif

/// Named span over a scope; emits SpanBegin/SpanEnd on the bound track.
/// `name` must outlive the span (string literals in practice).
class ScopedTraceSpan {
 public:
  explicit ScopedTraceSpan(const char* name) : name_(name) {
    trace_emit_here(TraceEventKind::SpanBegin, name_);
  }
  ~ScopedTraceSpan() { trace_emit_here(TraceEventKind::SpanEnd, name_); }
  ScopedTraceSpan(const ScopedTraceSpan&) = delete;
  ScopedTraceSpan& operator=(const ScopedTraceSpan&) = delete;

 private:
  const char* name_;
};

// ---- exporters -------------------------------------------------------------

/// Chrome trace-event JSON (load in chrome://tracing or Perfetto). One
/// thread per track (pid 0), B/E slices for tasks/evals/spans, s/f flow
/// events for matched remote messages, and a metadata record per track
/// carrying the dropped-event count.
void write_chrome_trace(const TraceLog& log, std::ostream& os);

/// Plain-text per-track histogram: event totals, max concurrent evals,
/// message counts, span counts by name, dropped events.
void write_text_summary(const TraceLog& log, std::ostream& os);

/// Maximum nesting depth of begin/end pairs of the given kinds on one
/// track (e.g. EvalBegin/EvalEnd: the paper's "one active evaluation per
/// processor" bound is max_concurrent(...) <= 1). Tolerates truncated
/// logs (unmatched ends after drop-oldest are ignored).
std::uint64_t max_concurrent(const TraceTrack& track, TraceEventKind begin,
                             TraceEventKind end);

}  // namespace motif::rt

// TRACE_SPAN("tree_reduce2.combine"): names the enclosing scope on the
// current track. Compiles away entirely under MOTIF_TRACING=0.
#if MOTIF_TRACING
#define MOTIF_TRACE_CAT2(a, b) a##b
#define MOTIF_TRACE_CAT(a, b) MOTIF_TRACE_CAT2(a, b)
#define TRACE_SPAN(name) \
  ::motif::rt::ScopedTraceSpan MOTIF_TRACE_CAT(motif_trace_span_, \
                                               __LINE__)(name)
#else
#define TRACE_SPAN(name) \
  do {                   \
  } while (false)
#endif
