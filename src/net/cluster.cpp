#include "net/cluster.hpp"

#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

namespace motif::net {

namespace {
/// Flow ids for cross-rank MsgSend/MsgRecv pairs: rank in the high bits,
/// a per-rank sequence in the low bits, so ids from different ranks can
/// never collide in a merged trace.
std::uint64_t flow_id(std::uint32_t rank, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(rank + 1) << 40) | (seq & ((1ull << 40) - 1));
}
}  // namespace

Cluster::Cluster(Transport& transport, ClusterConfig cfg)
    : transport_(transport), cfg_(std::move(cfg)), per_(cfg_.nodes_per_rank) {
  if (per_ == 0) throw std::invalid_argument("nodes_per_rank must be > 0");
  rt::MachineConfig mc = cfg_.machine;
  mc.nodes = per_;
  machine_ = std::make_unique<rt::Machine>(mc);
  transport_.set_receiver(
      [this](Frame&& f, std::size_t wire) { on_frame(std::move(f), wire); });
}

Cluster::~Cluster() {
  // Order matters: silence the wire first so no new frames can post
  // tasks; then discard queued handler tasks instead of running them —
  // they hold references into handlers_ (and whatever the handlers
  // capture, e.g. a motif destroyed before this cluster); then stop the
  // workers. Only after that may the members destruct.
  transport_.stop();
  machine_->abandon_pending();
  machine_->shutdown();
}

std::uint16_t Cluster::register_handler(std::string name, Handler h) {
  if (started_) throw std::logic_error("register_handler after start()");
  handlers_.emplace_back(std::move(name), std::move(h));
  return static_cast<std::uint16_t>(handlers_.size() - 1);
}

void Cluster::start() {
  started_ = true;
  transport_.start();
  if (ranks() == 1) return;
  if (rank() == 0) {
    std::unique_lock<std::mutex> lk(state_m_);
    const bool ok = state_cv_.wait_for(lk, cfg_.join_timeout, [&] {
      return joined_.size() == ranks() - 1;
    });
    if (!ok) {
      throw std::runtime_error("cluster: not all ranks joined within timeout");
    }
    lk.unlock();
    Frame f;
    f.type = FrameType::Start;
    f.src_rank = 0;
    for (std::uint32_t r = 1; r < ranks(); ++r) send_ctl(r, f);
  } else {
    Frame f;
    f.type = FrameType::Join;
    f.src_rank = rank();
    send_ctl(0, f);
    // Deliberately no wait for Start: a single-thread loopback cluster
    // starts followers before rank 0, and nothing may post before rank 0
    // finishes start() anyway.
  }
}

void Cluster::post(GlobalNode dst, std::uint16_t handler, term::Term payload) {
  if (dst >= global_nodes()) {
    throw std::out_of_range("cluster post: node " + std::to_string(dst) +
                            " outside global space");
  }
  if (handler >= handlers_.size()) {
    throw std::out_of_range("cluster post: unregistered handler");
  }
  const std::uint32_t to = owner(dst);
  if (to == rank()) {
    Handler& h = handlers_[handler].second;
    machine_->post(local_of(dst),
                   [&h, payload = std::move(payload)] { h(payload); });
    return;
  }

  Frame f;
  f.type = FrameType::Post;
  f.src_rank = rank();
  f.dst_node = dst;
  f.handler = handler;
  f.trace_id = flow_id(rank(), trace_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  f.payload = std::move(payload);

  rt::NetCounters& net = machine_->net_counters();
  if (cfg_.net_faults.enabled()) {
    const std::uint64_t nth =
        send_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1;
    switch (cfg_.net_faults.post_fault(rank(), nth)) {
      case rt::PostFault::Drop:
        // Never reaches the wire, never counted as sent — so the
        // termination detector's sent==received comparison stays exact.
        net.drops.fetch_add(1, std::memory_order_relaxed);
        rt::trace_emit_here(rt::TraceEventKind::Fault, "net.drop", nth, to);
        return;
      case rt::PostFault::Duplicate:
        net.dups.fetch_add(1, std::memory_order_relaxed);
        rt::trace_emit_here(rt::TraceEventKind::Fault, "net.dup", nth, to);
        send_data(to, f);
        send_data(to, f);
        return;
      case rt::PostFault::Delay: {
        net.delays.fetch_add(1, std::memory_order_relaxed);
        rt::trace_emit_here(rt::TraceEventKind::Fault, "net.delay", nth, to);
        std::lock_guard<std::mutex> lk(delayed_m_);
        delayed_.emplace_back(to, std::move(f));
        return;
      }
      case rt::PostFault::None:
        break;
    }
  }
  send_data(to, f);
}

void Cluster::send_data(std::uint32_t to, Frame& f) {
  rt::trace_emit_here(rt::TraceEventKind::MsgSend,
                      handlers_[f.handler].first.c_str(), f.trace_id, to);
  const std::size_t bytes = transport_.send(to, f);
  rt::NetCounters& net = machine_->net_counters();
  net.tx_bytes.fetch_add(bytes, std::memory_order_relaxed);
  net.tx_frames.fetch_add(1, std::memory_order_relaxed);
  // A delayed frame is "re-queued behind later arrivals": ship anything
  // parked for this rank now that a later frame has passed it.
  flush_delayed(to);
}

void Cluster::send_ctl(std::uint32_t to, const Frame& f) {
  const std::size_t bytes = transport_.send(to, f);
  rt::NetCounters& net = machine_->net_counters();
  net.tx_bytes.fetch_add(bytes, std::memory_order_relaxed);
  net.ctl_frames.fetch_add(1, std::memory_order_relaxed);
}

void Cluster::flush_delayed(std::uint32_t to) {
  std::vector<Frame> due;
  {
    std::lock_guard<std::mutex> lk(delayed_m_);
    for (std::size_t i = 0; i < delayed_.size();) {
      if (to == kAllRanks || delayed_[i].first == to) {
        due.push_back(std::move(delayed_[i].second));
        delayed_.erase(delayed_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  rt::NetCounters& net = machine_->net_counters();
  for (Frame& f : due) {
    const std::uint32_t dst_rank = owner(static_cast<GlobalNode>(f.dst_node));
    try {
      const std::size_t bytes = transport_.send(dst_rank, f);
      net.tx_bytes.fetch_add(bytes, std::memory_order_relaxed);
      net.tx_frames.fetch_add(1, std::memory_order_relaxed);
    } catch (const std::exception&) {
      // Peer lost: the frame never reached the wire, so it must not be
      // counted as sent (termination detection stays exact) — record it
      // as a drop and keep flushing the rest.
      net.drops.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool Cluster::delayed_empty() const {
  std::lock_guard<std::mutex> lk(delayed_m_);
  return delayed_.empty();
}

void Cluster::on_frame(Frame&& f, std::size_t wire_bytes) {
  rt::NetCounters& net = machine_->net_counters();
  net.rx_bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
  switch (f.type) {
    case FrameType::Post:
      net.rx_frames.fetch_add(1, std::memory_order_relaxed);
      deliver_post(std::move(f));
      return;
    case FrameType::Join: {
      std::lock_guard<std::mutex> lk(state_m_);
      joined_.insert(f.src_rank);
      state_cv_.notify_all();
      return;
    }
    case FrameType::Start: {
      std::lock_guard<std::mutex> lk(state_m_);
      start_seen_ = true;
      state_cv_.notify_all();
      return;
    }
    case FrameType::Probe: {
      // Flush delays first so a parked frame cannot look like global
      // quiescence; then report. Per-peer FIFO means every Post this
      // probe's sender shipped before it is already counted in rx.
      // Runs on the transport's receiver thread, so outbound failures
      // (a lost peer, a stopping transport) must not escape — a dropped
      // reply surfaces on rank 0 as a probe timeout, not as a crash of
      // this rank's I/O thread.
      try {
        flush_delayed(kAllRanks);
        Frame r;
        r.type = FrameType::ProbeReply;
        r.src_rank = rank();
        r.round = f.round;
        r.tx = net.tx_frames.load(std::memory_order_acquire);
        r.rx = net.rx_frames.load(std::memory_order_acquire);
        r.idle = machine_->idle() && delayed_empty();
        send_ctl(f.src_rank, r);
      } catch (const std::exception&) {
      }
      return;
    }
    case FrameType::ProbeReply: {
      std::lock_guard<std::mutex> lk(state_m_);
      if (f.round == reply_round_) {
        const std::uint32_t src = f.src_rank;
        replies_[src] = std::move(f);
        state_cv_.notify_all();
      }
      return;
    }
    case FrameType::Release: {
      std::lock_guard<std::mutex> lk(state_m_);
      release_round_ = f.round;
      state_cv_.notify_all();
      return;
    }
    case FrameType::Shutdown: {
      std::lock_guard<std::mutex> lk(state_m_);
      shutdown_seen_ = true;
      state_cv_.notify_all();
      return;
    }
    case FrameType::Hello:
      return;  // transport-level; nothing to do here
  }
}

void Cluster::deliver_post(Frame&& f) {
  if (f.handler >= handlers_.size()) {
    std::fprintf(stderr, "[net] rank %u: post for unknown handler %u dropped\n",
                 rank(), f.handler);
    return;
  }
  const rt::NodeId local = local_of(static_cast<GlobalNode>(f.dst_node));
  Handler& h = handlers_[f.handler].second;
  const char* name = handlers_[f.handler].first.c_str();
  machine_->post(local, [&h, name, id = f.trace_id, src = f.src_rank,
                         payload = std::move(f.payload)] {
    rt::trace_emit_here(rt::TraceEventKind::MsgRecv, name, id, src);
    h(payload);
  });
}

rt::RunOutcome Cluster::wait_idle_for(std::chrono::nanoseconds deadline) {
  if (ranks() == 1) return machine_->wait_idle_for(deadline);
  return rank() == 0 ? wait_idle_rank0(deadline) : wait_idle_follower(deadline);
}

rt::RunOutcome Cluster::deadline_outcome() {
  rt::RunOutcome o = machine_->wait_idle_for(std::chrono::milliseconds(1));
  if (o.status == rt::RunStatus::Completed) {
    // Locally quiet but the cluster never converged.
    o.status = o.lost_nodes.empty() ? rt::RunStatus::DeadlineExceeded
                                    : rt::RunStatus::NodeLost;
    for (const auto& name : rt::unbound_svar_names()) {
      if (!o.blocked_on.empty()) o.blocked_on += ", ";
      o.blocked_on += name;
    }
  }
  return o;
}

rt::RunOutcome Cluster::wait_idle_rank0(std::chrono::nanoseconds deadline) {
  const auto deadline_tp = std::chrono::steady_clock::now() + deadline;
  bool have_prev = false;
  bool prev_idle = false;
  std::uint64_t prev_tx = 0, prev_rx = 0;
  std::uint64_t round = 0;

  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline_tp) {
      return deadline_outcome();
    }
    flush_delayed(kAllRanks);
    rt::NetCounters& net = machine_->net_counters();
    const bool local_idle = machine_->idle() && delayed_empty();
    const std::uint64_t local_tx = net.tx_frames.load(std::memory_order_acquire);
    const std::uint64_t local_rx = net.rx_frames.load(std::memory_order_acquire);

    ++round;
    {
      std::lock_guard<std::mutex> lk(state_m_);
      reply_round_ = round;
      replies_.clear();
    }
    Frame probe;
    probe.type = FrameType::Probe;
    probe.src_rank = 0;
    probe.round = round;
    bool send_failed = false;
    for (std::uint32_t r = 1; r < ranks(); ++r) {
      try {
        send_ctl(r, probe);
      } catch (const std::exception&) {
        send_failed = true;  // peer lost; keep probing the rest
      }
    }
    if (send_failed) {
      rt::RunOutcome o = deadline_outcome();
      o.status = rt::RunStatus::NodeLost;
      return o;
    }

    bool complete = false;
    {
      std::unique_lock<std::mutex> lk(state_m_);
      complete = state_cv_.wait_until(lk, deadline_tp, [&] {
        return replies_.size() == ranks() - 1;
      });
      if (complete) {
        bool all_idle = local_idle;
        std::uint64_t tx = local_tx, rx = local_rx;
        for (const auto& [r, reply] : replies_) {
          all_idle = all_idle && reply.idle;
          tx += reply.tx;
          rx += reply.rx;
        }
        const bool stable = have_prev && prev_idle && all_idle &&
                            tx == rx && prev_tx == tx && prev_rx == rx;
        have_prev = true;
        prev_idle = all_idle;
        prev_tx = tx;
        prev_rx = rx;
        if (stable) {
          lk.unlock();
          Frame rel;
          rel.type = FrameType::Release;
          rel.src_rank = 0;
          rel.round = round;
          for (std::uint32_t r = 1; r < ranks(); ++r) send_ctl(r, rel);
          const auto left = deadline_tp - std::chrono::steady_clock::now();
          return machine_->wait_idle_for(
              left > std::chrono::nanoseconds(1)
                  ? std::chrono::duration_cast<std::chrono::nanoseconds>(left)
                  : std::chrono::nanoseconds(1));
        }
      }
    }
    std::this_thread::sleep_for(cfg_.probe_interval);
  }
}

rt::RunOutcome Cluster::wait_idle_follower(std::chrono::nanoseconds deadline) {
  const auto deadline_tp = std::chrono::steady_clock::now() + deadline;
  std::unique_lock<std::mutex> lk(state_m_);
  const std::uint64_t seen = release_round_;
  const bool ok = state_cv_.wait_until(lk, deadline_tp, [&] {
    return release_round_ > seen || shutdown_seen_;
  });
  lk.unlock();
  if (!ok) return deadline_outcome();
  const auto left = deadline_tp - std::chrono::steady_clock::now();
  return machine_->wait_idle_for(
      left > std::chrono::nanoseconds(1)
          ? std::chrono::duration_cast<std::chrono::nanoseconds>(left)
          : std::chrono::nanoseconds(1));
}

void Cluster::serve() {
  if (rank() == 0) return;
  {
    std::unique_lock<std::mutex> lk(state_m_);
    state_cv_.wait(lk, [&] { return shutdown_seen_; });
  }
  // Stopped from this thread, never from the transport's receiver thread
  // (a TCP I/O thread cannot join itself).
  transport_.stop();
}

void Cluster::shutdown() {
  {
    std::lock_guard<std::mutex> lk(state_m_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  if (rank() == 0) {
    Frame f;
    f.type = FrameType::Shutdown;
    f.src_rank = 0;
    for (std::uint32_t r = 1; r < ranks(); ++r) {
      try {
        send_ctl(r, f);
      } catch (const std::exception&) {
        // peer already gone; shutdown is best-effort
      }
    }
  }
  transport_.stop();
}

}  // namespace motif::net
