// Short-circuit termination detection.
//
// The paper (Section 3.3) notes that a motif transformation "can be
// extended to thread a short circuit [8] through the application program"
// to detect global termination. The classic Strand technique threads a
// (Left, Right) variable pair through every process; a process shorts its
// segment when it terminates, and forks the segment when it spawns
// children. When every segment is shorted the circuit closes end to end.
//
// This implementation preserves the fork/close algebra of the technique
// (each live Link is one open segment) with a counter at the core. A
// dropped (destroyed) open Link closes itself, so exceptional unwinding
// cannot wedge the circuit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "runtime/taskfn.hpp"

namespace motif::rt {

class ShortCircuit {
  struct State {
    std::atomic<std::uint64_t> open{0};
    std::mutex m;
    bool done = false;
    std::condition_variable cv;
    std::vector<TaskFn> waiters;  // move-only one-shots (taskfn.hpp)

    void close_one() {
      if (open.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
      std::vector<TaskFn> ws;
      {
        std::lock_guard lock(m);
        done = true;
        ws.swap(waiters);
      }
      cv.notify_all();
      for (auto& w : ws) w();
    }
  };

 public:
  /// One open segment of the circuit. Move-only; destroying an open link
  /// closes it.
  class Link {
   public:
    Link() = default;
    Link(Link&& o) noexcept : s_(std::move(o.s_)) { o.s_.reset(); }
    Link& operator=(Link&& o) noexcept {
      if (this != &o) {
        close_if_open();
        s_ = std::move(o.s_);
        o.s_.reset();
      }
      return *this;
    }
    Link(const Link&) = delete;
    Link& operator=(const Link&) = delete;
    ~Link() { close_if_open(); }

    /// Splits this segment in two: this link stays open and a new open
    /// link is returned (use when spawning a child process).
    Link fork() {
      s_->open.fetch_add(1, std::memory_order_relaxed);
      return Link(s_);
    }

    /// Shorts this segment. The link becomes empty.
    void close() { close_if_open(); }

    bool open() const { return static_cast<bool>(s_); }

   private:
    friend class ShortCircuit;
    explicit Link(std::shared_ptr<State> s) : s_(std::move(s)) {}
    void close_if_open() {
      if (s_) {
        auto s = std::move(s_);
        s_.reset();
        s->close_one();
      }
    }
    std::shared_ptr<State> s_;
  };

  ShortCircuit() : s_(std::make_shared<State>()) {}

  /// The initial segment. Call exactly once per circuit.
  Link root() {
    s_->open.fetch_add(1, std::memory_order_relaxed);
    return Link(s_);
  }

  bool done() const {
    std::lock_guard lock(s_->m);
    return s_->done;
  }

  /// Blocking wait (external threads).
  void wait() const {
    std::unique_lock lock(s_->m);
    s_->cv.wait(lock, [&] { return s_->done; });
  }

  /// Continuation when the circuit closes (inline if already closed).
  template <class F>
  void when_done(F f) {
    {
      std::unique_lock lock(s_->m);
      if (!s_->done) {
        s_->waiters.emplace_back(std::move(f));
        return;
      }
    }
    f();
  }

 private:
  std::shared_ptr<State> s_;
};

}  // namespace motif::rt
