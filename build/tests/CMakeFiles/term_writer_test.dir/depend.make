# Empty dependencies file for term_writer_test.
# This may be replaced when dependencies are built.
