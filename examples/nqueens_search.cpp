// The search motif (paper Sections 1 and 4): or-parallel exploration of
// the n-queens tree — count all solutions, find one, and show the
// branch-and-bound variant on a knapsack.
//
// Build & run:   ./build/examples/nqueens_search [n]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "motifs/search.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

struct Queens {
  int n;
  std::vector<int> cols;
  bool ok(int c) const {
    const int r = static_cast<int>(cols.size());
    for (int i = 0; i < r; ++i) {
      if (cols[i] == c || std::abs(cols[i] - c) == r - i) return false;
    }
    return true;
  }
};

std::vector<Queens> expand(const Queens& q) {
  std::vector<Queens> out;
  if (static_cast<int>(q.cols.size()) == q.n) return out;
  for (int c = 0; c < q.n; ++c) {
    if (q.ok(c)) {
      Queens next = q;
      next.cols.push_back(c);
      out.push_back(std::move(next));
    }
  }
  return out;
}

bool solved(const Queens& q) {
  return static_cast<int>(q.cols.size()) == q.n;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 9;
  rt::Machine machine({.nodes = 8, .workers = 2});

  const auto count =
      m::count_solutions<Queens>(machine, Queens{n, {}}, expand, solved, 3);
  std::printf("%d-queens: %llu solutions\n", n,
              static_cast<unsigned long long>(count));

  auto one = m::find_first<Queens>(machine, Queens{n, {}}, expand, solved, 3);
  if (one) {
    std::printf("one solution: ");
    for (int c : one->cols) std::printf("%d ", c);
    std::printf("\n");
  }

  // Branch & bound: 0/1 knapsack.
  struct Item {
    std::int64_t w, v;
  };
  std::vector<Item> items = {{5, 10}, {4, 40}, {6, 30}, {3, 50},
                             {2, 12}, {7, 20}, {1, 8},  {4, 18}};
  const std::int64_t cap = 12;
  struct Knap {
    std::size_t idx = 0;
    std::int64_t w = 0, v = 0;
  };
  auto kexpand = [&](const Knap& k) {
    std::vector<Knap> out;
    if (k.idx == items.size()) return out;
    out.push_back({k.idx + 1, k.w, k.v});
    if (k.w + items[k.idx].w <= cap) {
      out.push_back({k.idx + 1, k.w + items[k.idx].w, k.v + items[k.idx].v});
    }
    return out;
  };
  auto best = m::branch_and_bound<Knap>(
      machine, Knap{}, kexpand, [](const Knap& k) { return k.v; },
      [&](const Knap& k) {
        std::int64_t b = k.v;
        for (std::size_t i = k.idx; i < items.size(); ++i) b += items[i].v;
        return b;
      },
      3);
  std::printf("knapsack(cap=%lld): best value %lld\n",
              static_cast<long long>(cap),
              static_cast<long long>(best.value_or(-1)));
  return 0;
}
