#include "transform/sched.hpp"

#include <algorithm>

namespace motif::transform {

using term::Clause;
using term::GoalView;
using term::ProcKey;
using term::Program;
using term::Term;

namespace {

bool is_task_annotated(const Term& goal) {
  GoalView v = term::strip_placement(goal);
  return v.annotated && v.placement.deref().is_atom() &&
         v.placement.deref().functor() == "task";
}

Clause rewrite_clause(const Clause& c) {
  Clause out;
  out.head = c.head;
  out.guard = c.guard;
  for (const Term& goal : c.body) {
    if (!is_task_annotated(goal)) {
      out.body.push_back(goal);
      continue;
    }
    Term p = term::strip_placement(goal).goal;
    out.body.push_back(Term::compound(
        "send", {Term::integer(1), Term::compound("task", {p})}));
  }
  return out;
}

Clause dispatcher_rule_for(const ProcKey& k) {
  // run_task(p(V1,...,Vn)) :- p(V1,...,Vn).
  std::vector<Term> vars;
  vars.reserve(k.arity);
  for (std::size_t i = 0; i < k.arity; ++i) {
    vars.push_back(Term::var("V" + std::to_string(i + 1)));
  }
  Term call = Term::compound(k.name, vars);
  Clause c;
  c.head = Term::compound("run_task", {call});
  c.body = {call};
  return c;
}

}  // namespace

std::vector<ProcKey> annotated_task_types(const Program& a) {
  std::vector<ProcKey> keys;
  for (const Clause& c : a.clauses()) {
    for (const Term& goal : c.body) {
      if (!is_task_annotated(goal)) continue;
      ProcKey k = term::goal_key(goal);
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
  }
  return keys;
}

term::Program sched_library() {
  static const char* kSrc = R"(
    server(In) :- current_node(Me), boot_role(Me, In).
    boot_role(1, In) :- manager(In, [], []).
    boot_role(Me, In) :- Me > 1 | send(1, ready(Me)), worker(In).

    manager([task(P)|In], Tasks, Idle) :-
        assign(P, Tasks, Idle, Tasks1, Idle1),
        manager(In, Tasks1, Idle1).
    manager([ready(W)|In], Tasks, Idle) :-
        feed(W, Tasks, Idle, Tasks1, Idle1),
        manager(In, Tasks1, Idle1).
    manager([halt|_], _, _).

    assign(P, Tasks, [], Tasks1, Idle1) :-
        Tasks1 := [P|Tasks], Idle1 := [].
    assign(P, Tasks, [W|Ws], Tasks1, Idle1) :-
        send(W, run(P)), Tasks1 := Tasks, Idle1 := Ws.

    feed(W, [], Idle, Tasks1, Idle1) :-
        Tasks1 := [], Idle1 := [W|Idle].
    feed(W, [P|Ps], Idle, Tasks1, Idle1) :-
        send(W, run(P)), Tasks1 := Ps, Idle1 := Idle.

    worker([run(P)|In]) :-
        run_task(P),
        current_node(Me),
        send(1, ready(Me)),
        worker(In).
    worker([halt|_]).
  )";
  return Program::parse(kSrc);
}

Motif sched_motif(std::vector<ProcKey> entry_task_types) {
  Transform t = [entries =
                     std::move(entry_task_types)](const Program& a) {
    Program out;
    for (const Clause& c : a.clauses()) out.add(rewrite_clause(c));
    std::vector<ProcKey> keys = annotated_task_types(a);
    for (const ProcKey& e : entries) {
      if (std::find(keys.begin(), keys.end(), e) == keys.end()) {
        keys.push_back(e);
      }
    }
    for (const ProcKey& k : keys) out.add(dispatcher_rule_for(k));
    return out;
  };
  return Motif("Sched", std::move(t), sched_library());
}

}  // namespace motif::transform
