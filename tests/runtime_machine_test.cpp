#include "runtime/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "runtime/stream.hpp"
#include "runtime/svar.hpp"

namespace rt = motif::rt;

TEST(Machine, RunsAPostedTask) {
  rt::Machine m({.nodes = 2, .workers = 2});
  std::atomic<int> x{0};
  m.post(0, [&] { x = 42; });
  m.wait_idle();
  EXPECT_EQ(x.load(), 42);
}

TEST(Machine, DefaultsAreSane) {
  rt::Machine m;
  EXPECT_GE(m.node_count(), 1u);
  EXPECT_GE(m.worker_count(), 1u);
  EXPECT_LE(m.worker_count(), m.node_count());
}

TEST(Machine, CurrentNodeInsideTask) {
  rt::Machine m({.nodes = 3, .workers = 2});
  EXPECT_EQ(rt::Machine::current_node(), rt::kNoNode);
  rt::SVar<rt::NodeId> seen;
  m.post(2, [&] { seen.bind(rt::Machine::current_node()); });
  m.wait_idle();
  EXPECT_EQ(seen.get(), 2u);
}

TEST(Machine, PerNodeFifoOrder) {
  rt::Machine m({.nodes = 1, .workers = 4});
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    m.post(0, [&order, i] { order.push_back(i); });  // safe: node 0 is sequential
  }
  m.wait_idle();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[i], i);
}

TEST(Machine, NodesAreSequentialNoOverlap) {
  // Two tasks on the same node must never run concurrently even with many
  // workers. Tasks on different nodes may.
  rt::Machine m({.nodes = 4, .workers = 4});
  std::atomic<int> in_node0{0};
  std::atomic<bool> overlap{false};
  for (int i = 0; i < 500; ++i) {
    m.post(0, [&] {
      if (in_node0.fetch_add(1) != 0) overlap = true;
      for (int k = 0; k < 50; ++k) asm volatile("");
      in_node0.fetch_sub(1);
    });
  }
  m.wait_idle();
  EXPECT_FALSE(overlap.load());
}

TEST(Machine, MoreNodesThanWorkersAllRun) {
  rt::Machine m({.nodes = 64, .workers = 2});
  std::atomic<int> ran{0};
  for (rt::NodeId n = 0; n < 64; ++n) {
    m.post(n, [&] { ran.fetch_add(1); });
  }
  m.wait_idle();
  EXPECT_EQ(ran.load(), 64);
}

TEST(Machine, TasksCanPostMoreTasks) {
  rt::Machine m({.nodes = 4, .workers = 4});
  std::atomic<int> count{0};
  // A task tree of depth 10, fanout 2 -> 2^11 - 1 tasks.
  std::function<void(int)> spawn = [&](int depth) {
    count.fetch_add(1);
    if (depth == 0) return;
    m.post(m.random_node(), [&, depth] { spawn(depth - 1); });
    m.post(m.random_node(), [&, depth] { spawn(depth - 1); });
  };
  m.post(0, [&] { spawn(10); });
  m.wait_idle();
  EXPECT_EQ(count.load(), (1 << 11) - 1);
}

TEST(Machine, WaitIdleRethrowsTaskException) {
  rt::Machine m({.nodes = 2, .workers = 2});
  m.post(0, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(m.wait_idle(), std::runtime_error);
  // The error is delivered once; the machine remains usable.
  std::atomic<int> x{0};
  m.post(1, [&] { x = 1; });
  m.wait_idle();
  EXPECT_EQ(x.load(), 1);
}

TEST(Machine, RemoteAndLocalMessageCounting) {
  rt::Machine m({.nodes = 2, .workers = 1});
  rt::SVar<bool> done;
  m.post(0, [&] {
    m.post(0, [] {});     // local
    m.post(1, [] {});     // remote
    m.post(1, [] {});     // remote
    done.bind(true);
  });
  m.wait_idle();
  EXPECT_EQ(m.counters(0).posts_local.load(), 1u);
  EXPECT_EQ(m.counters(0).posts_remote.load(), 2u);
  EXPECT_EQ(m.counters(1).recv_remote.load(), 2u);
}

TEST(Machine, ExternalPostsAreNotMessages) {
  rt::Machine m({.nodes = 2, .workers = 1});
  m.post(0, [] {});
  m.post(1, [] {});
  m.wait_idle();
  EXPECT_EQ(m.counters(0).posts_local.load(), 0u);
  EXPECT_EQ(m.counters(0).posts_remote.load(), 0u);
  EXPECT_EQ(m.counters(1).posts_remote.load(), 0u);
}

TEST(Machine, RandomNodeIsDeterministicPerSeed) {
  auto draw = [](std::uint64_t seed) {
    rt::Machine m({.nodes = 8, .workers = 1, .batch = 64, .seed = seed});
    std::vector<rt::NodeId> picks;
    rt::SVar<bool> done;
    m.post(0, [&] {
      for (int i = 0; i < 32; ++i) picks.push_back(m.random_node());
      done.bind(true);
    });
    m.wait_idle();
    return picks;
  };
  EXPECT_EQ(draw(1), draw(1));
  EXPECT_NE(draw(1), draw(2));
}

TEST(Machine, RandomNodeCoversAllNodes) {
  rt::Machine m({.nodes = 8, .workers = 1});
  std::set<rt::NodeId> seen;
  rt::SVar<bool> done;
  m.post(0, [&] {
    for (int i = 0; i < 1000; ++i) seen.insert(m.random_node());
    done.bind(true);
  });
  m.wait_idle();
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Machine, PostWhenDeliversValueToNode) {
  rt::Machine m({.nodes = 4, .workers = 2});
  rt::SVar<int> v;
  rt::SVar<std::pair<rt::NodeId, int>> result;
  m.post_when(v, 3, [&](const int& x) {
    result.bind({rt::Machine::current_node(), x});
  });
  m.post(1, [&] { v.bind(55); });
  m.wait_idle();
  EXPECT_EQ(result.get().first, 3u);
  EXPECT_EQ(result.get().second, 55);
}

TEST(Machine, PostLocalFromOutsideGoesToNodeZero) {
  rt::Machine m({.nodes = 4, .workers = 2});
  rt::SVar<rt::NodeId> where;
  m.post_local([&] { where.bind(rt::Machine::current_node()); });
  m.wait_idle();
  EXPECT_EQ(where.get(), 0u);
}

TEST(Machine, BatchLimitPreservesFairnessAcrossNodes) {
  // With batch=1 and one worker, two busy nodes must interleave.
  rt::Machine m({.nodes = 2, .workers = 1, .batch = 1});
  std::vector<int> trace;  // single worker -> no data race
  for (int i = 0; i < 10; ++i) {
    m.post(0, [&trace] { trace.push_back(0); });
    m.post(1, [&trace] { trace.push_back(1); });
  }
  m.wait_idle();
  ASSERT_EQ(trace.size(), 20u);
  // Node 0 cannot complete all 10 of its tasks before node 1 starts.
  int first_one = -1, last_zero = -1;
  for (int i = 0; i < 20; ++i) {
    if (trace[i] == 1 && first_one < 0) first_one = i;
    if (trace[i] == 0) last_zero = i;
  }
  EXPECT_LT(first_one, last_zero);
}

TEST(Machine, WaitIdleWithNoWorkReturnsImmediately) {
  rt::Machine m({.nodes = 2, .workers = 2});
  m.wait_idle();
  SUCCEED();
}

TEST(Machine, ManyTasksStress) {
  rt::Machine m({.nodes = 16, .workers = 4});
  std::atomic<std::uint64_t> sum{0};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    m.post(static_cast<rt::NodeId>(i % 16), [&sum, i] { sum.fetch_add(i); });
  }
  m.wait_idle();
  EXPECT_EQ(sum.load(), std::uint64_t(kN) * (kN - 1) / 2);
  EXPECT_EQ(m.load_summary().total_tasks, std::uint64_t(kN));
}

TEST(Machine, DestructorDrainsOutstandingWork) {
  std::atomic<int> ran{0};
  {
    rt::Machine m({.nodes = 4, .workers = 2});
    for (int i = 0; i < 1000; ++i) {
      m.post(i % 4, [&] { ran.fetch_add(1); });
    }
    // no wait_idle: destructor must drain
  }
  EXPECT_EQ(ran.load(), 1000);
}

TEST(Machine, VirtualWorkMakespan) {
  rt::Machine m({.nodes = 2, .workers = 1});
  m.post(0, [&] { m.add_work(30); });
  m.post(1, [&] { m.add_work(10); });
  m.wait_idle();
  auto s = m.load_summary();
  EXPECT_EQ(s.total_work, 40u);
  EXPECT_EQ(s.makespan, 30u);
  EXPECT_DOUBLE_EQ(s.work_imbalance, 1.5);
  EXPECT_NEAR(s.virtual_speedup, 40.0 / 30.0, 1e-12);
}

TEST(Machine, LoadSummaryImbalance) {
  rt::Machine m({.nodes = 4, .workers = 1});
  for (int i = 0; i < 100; ++i) m.post(0, [] {});
  m.wait_idle();
  auto s = m.load_summary();
  EXPECT_EQ(s.total_tasks, 100u);
  EXPECT_EQ(s.max_tasks, 100u);
  EXPECT_EQ(s.min_tasks, 0u);
  EXPECT_DOUBLE_EQ(s.imbalance, 4.0);
  m.reset_counters();
  EXPECT_EQ(m.load_summary().total_tasks, 0u);
}
