// Tracer tests: per-node event ordering, send/receive matching across
// nodes, ring-buffer overflow (drop-oldest + dropped counter surfaced in
// the exports), Chrome-trace JSON well-formedness (one track per node),
// and the paper's headline observable — Tree-Reduce-2 shows at most one
// concurrent evaluation span per node track.
#include "runtime/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "motifs/tree.hpp"
#include "motifs/tree_reduce.hpp"
#include "runtime/machine.hpp"

namespace rt = motif::rt;
using rt::TraceEventKind;

namespace {

std::vector<rt::TraceEvent> of_kind(const rt::TraceTrack& t,
                                    TraceEventKind k) {
  std::vector<rt::TraceEvent> out;
  for (const auto& e : t.events) {
    if (e.kind == k) out.push_back(e);
  }
  return out;
}

// ---- TraceRing -------------------------------------------------------------

TEST(TraceRing, DropsOldestAndCounts) {
  rt::TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rt::TraceEvent e;
    e.id = i;
    ring.emit(e);
  }
  EXPECT_EQ(ring.dropped(), 6u);
  auto events = ring.drain();
  ASSERT_EQ(events.size(), 4u);
  // The survivors are the newest four, oldest first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].id, 6 + i);
  // drain() clears.
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.drain().empty());
}

TEST(TraceEventRecord, NameTruncatesSafely) {
  rt::TraceEvent e;
  e.set_name("a.very.long.span.name.that.exceeds.the.inline.budget");
  EXPECT_EQ(std::string(e.name).size(), rt::TraceEvent::kNameBytes - 1);
  e.set_name(nullptr);
  EXPECT_EQ(std::string(e.name), "");
}

// ---- Tracer / Machine integration -----------------------------------------

TEST(MachineTrace, InactiveByDefaultAndToggleable) {
  rt::Machine m({.nodes = 2, .workers = 2});
  EXPECT_FALSE(m.tracing());
  m.post(0, [] {});
  m.wait_idle();
  EXPECT_TRUE(m.drain_trace().empty());

  m.start_trace();
  EXPECT_EQ(m.tracing(), rt::Machine::trace_compiled);
  m.post(0, [] {});
  m.wait_idle();
  m.stop_trace();
  // Events recorded while active survive until drained...
  auto log = m.drain_trace();
  if (rt::Machine::trace_compiled) {
    EXPECT_EQ(log.tracks.size(), 2u);
    EXPECT_FALSE(log.empty());
  }
  // ...and nothing is recorded while stopped.
  m.post(0, [] {});
  m.wait_idle();
  EXPECT_TRUE(m.drain_trace().empty());
}

#if MOTIF_TRACING

TEST(MachineTrace, PerNodeOrderingAndTaskPairs) {
  rt::Machine m({.nodes = 1, .workers = 1});
  m.start_trace();
  for (int i = 0; i < 5; ++i) {
    m.post(0, [&m] { m.add_work(3); });
  }
  m.wait_idle();
  auto log = m.drain_trace();
  ASSERT_EQ(log.tracks.size(), 1u);
  const auto& t = log.tracks[0];
  EXPECT_EQ(t.name, "node 0");
  EXPECT_EQ(t.dropped, 0u);

  // Timestamps never go backwards within a track.
  for (std::size_t i = 1; i < t.events.size(); ++i) {
    EXPECT_GE(t.events[i].ts_ns, t.events[i - 1].ts_ns);
  }
  // Tasks are strictly alternating begin/end on a sequential node.
  int depth = 0;
  for (const auto& e : t.events) {
    if (e.kind == TraceEventKind::TaskBegin) {
      EXPECT_EQ(depth, 0);
      ++depth;
    } else if (e.kind == TraceEventKind::TaskEnd) {
      EXPECT_EQ(depth, 1);
      --depth;
      EXPECT_EQ(e.id, 3u);  // virtual-work units recorded on the span end
    }
  }
  EXPECT_EQ(of_kind(t, TraceEventKind::TaskBegin).size(), 5u);
  EXPECT_EQ(of_kind(t, TraceEventKind::TaskEnd).size(), 5u);
}

TEST(MachineTrace, SendReceiveIdsMatchAcrossNodes) {
  rt::Machine m({.nodes = 4, .workers = 2, .topology = rt::Topology::Ring});
  m.start_trace();
  // node 0 -> node 2 is 2 hops on a 4-ring.
  m.post(0, [&m] { m.post(2, [] {}); });
  m.wait_idle();
  auto log = m.drain_trace();
  ASSERT_EQ(log.tracks.size(), 4u);

  auto sends = of_kind(log.tracks[0], TraceEventKind::MsgSend);
  auto recvs = of_kind(log.tracks[2], TraceEventKind::MsgRecv);
  ASSERT_EQ(sends.size(), 1u);
  ASSERT_EQ(recvs.size(), 1u);
  EXPECT_NE(sends[0].id, 0u);
  EXPECT_EQ(sends[0].id, recvs[0].id);   // the matched pair
  EXPECT_EQ(sends[0].peer, 2u);          // send names its destination
  EXPECT_EQ(recvs[0].peer, 0u);          // receive names its source
  EXPECT_EQ(sends[0].hops, 2u);
  EXPECT_EQ(recvs[0].hops, 2u);
  EXPECT_GE(recvs[0].ts_ns, sends[0].ts_ns);
  // Local posts produce no message events.
  EXPECT_TRUE(of_kind(log.tracks[0], TraceEventKind::MsgRecv).empty());
}

TEST(MachineTrace, OverflowDropsOldestAndReportsCounter) {
  rt::Machine m({.nodes = 1, .workers = 1, .trace_capacity = 8});
  m.start_trace();
  for (int i = 0; i < 50; ++i) m.post(0, [] {});
  m.wait_idle();
  auto log = m.drain_trace();
  const auto& t = log.tracks[0];
  EXPECT_EQ(t.events.size(), 8u);
  // 50 tasks * 2 events, capacity 8 -> 92 drops.
  EXPECT_EQ(t.dropped, 92u);
  // The retained window is the newest events: it ends with a TaskEnd.
  EXPECT_EQ(t.events.back().kind, TraceEventKind::TaskEnd);

  // Both exporters surface the dropped count.
  std::ostringstream text;
  rt::write_text_summary(log, text);
  EXPECT_NE(text.str().find("dropped=92"), std::string::npos);
  std::ostringstream chrome;
  rt::write_chrome_trace(log, chrome);
  EXPECT_NE(chrome.str().find("\"dropped_events\":92"), std::string::npos);
}

TEST(MachineTrace, SpansAndEvalsLandOnTheRunningNodeTrack) {
  rt::Machine m({.nodes = 2, .workers = 2});
  m.start_trace();
  m.post(1, [] {
    rt::EvalScope scope;
    TRACE_SPAN("test.span");
  });
  m.wait_idle();
  auto log = m.drain_trace();
  const auto& t1 = log.tracks[1];
  ASSERT_EQ(of_kind(t1, TraceEventKind::SpanBegin).size(), 1u);
  EXPECT_EQ(std::string(of_kind(t1, TraceEventKind::SpanBegin)[0].name),
            "test.span");
  EXPECT_EQ(of_kind(t1, TraceEventKind::SpanEnd).size(), 1u);
  EXPECT_EQ(of_kind(t1, TraceEventKind::EvalBegin).size(), 1u);
  EXPECT_EQ(of_kind(t1, TraceEventKind::EvalEnd).size(), 1u);
  // Nothing leaked onto the idle node's track.
  EXPECT_TRUE(of_kind(log.tracks[0], TraceEventKind::SpanBegin).empty());
}

TEST(MachineTrace, SpanOutsideMachineIsANoOp) {
  // Unbound thread: must not crash, must record nothing anywhere.
  TRACE_SPAN("off.machine");
  rt::EvalScope scope;
  SUCCEED();
}

// ---- the paper's observable -----------------------------------------------

long traced_add(const char&, const long& a, const long& b) {
  for (int i = 0; i < 2000; ++i) asm volatile("");
  return a + b;
}

TEST(MachineTrace, TreeReduce2BoundsEvalConcurrencyPerNode) {
  auto tree = motif::balanced_tree<long, char>(
      256, [](std::size_t) { return 1L; }, '+');
  rt::Machine m({.nodes = 4, .workers = 4, .seed = 7});
  m.start_trace();
  long v = motif::tree_reduce2<long, char>(m, tree, traced_add);
  EXPECT_EQ(v, 256);
  auto log = m.drain_trace();
  ASSERT_EQ(log.tracks.size(), 4u);
  bool combined = false;
  for (const auto& t : log.tracks) {
    // Section 3.5: at each processor only a single node evaluation is
    // active at any given time — visible directly on the timeline.
    EXPECT_LE(rt::max_concurrent(t, TraceEventKind::EvalBegin,
                                 TraceEventKind::EvalEnd),
              1u)
        << "track " << t.name;
    for (const auto& e : of_kind(t, TraceEventKind::SpanBegin)) {
      if (std::string(e.name) == "tree_reduce2.combine") combined = true;
    }
  }
  EXPECT_TRUE(combined) << "motif spans missing from the trace";
}

TEST(MachineTrace, TreeReduce1EmitsItsEvalSpans) {
  auto tree = motif::balanced_tree<long, char>(
      64, [](std::size_t) { return 1L; }, '+');
  rt::Machine m({.nodes = 4, .workers = 2, .seed = 7});
  m.start_trace();
  long v = motif::tree_reduce1<long, char>(m, tree, traced_add);
  EXPECT_EQ(v, 64);
  auto log = m.drain_trace();
  std::size_t evals = 0;
  for (const auto& t : log.tracks) {
    for (const auto& e : of_kind(t, TraceEventKind::SpanBegin)) {
      if (std::string(e.name) == "tree_reduce1.eval") ++evals;
    }
  }
  EXPECT_EQ(evals, 63u);  // one per interior node
}

// ---- Chrome-trace export ---------------------------------------------------
//
// A minimal JSON reader — enough to prove the export parses and to walk
// the traceEvents array. Throws on malformed input.

struct Json {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj } kind = Kind::Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& k) const { return obj.at(k); }
  bool has(const std::string& k) const { return obj.count(k) != 0; }
};

struct JsonParser {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  char peek() {
    ws();
    if (i >= s.size()) throw std::runtime_error("eof");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected ") + c + " at " +
                               std::to_string(i));
    }
    ++i;
  }
  Json parse() {
    const char c = peek();
    Json j;
    if (c == '{') {
      expect('{');
      j.kind = Json::Kind::Obj;
      if (peek() == '}') {
        expect('}');
        return j;
      }
      for (;;) {
        Json key = parse();
        expect(':');
        j.obj[key.str] = parse();
        if (peek() == ',') {
          expect(',');
        } else {
          expect('}');
          return j;
        }
      }
    }
    if (c == '[') {
      expect('[');
      j.kind = Json::Kind::Arr;
      if (peek() == ']') {
        expect(']');
        return j;
      }
      for (;;) {
        j.arr.push_back(parse());
        if (peek() == ',') {
          expect(',');
        } else {
          expect(']');
          return j;
        }
      }
    }
    if (c == '"') {
      ++i;
      j.kind = Json::Kind::Str;
      while (s.at(i) != '"') {
        if (s[i] == '\\') {
          ++i;
          switch (s.at(i)) {
            case 'u':
              i += 4;
              j.str += '?';
              break;
            case 'n':
              j.str += '\n';
              break;
            case 't':
              j.str += '\t';
              break;
            default:
              j.str += s[i];
          }
          ++i;
        } else {
          j.str += s[i++];
        }
      }
      ++i;
      return j;
    }
    if (c == 't' || c == 'f') {
      j.kind = Json::Kind::Bool;
      j.b = c == 't';
      i += j.b ? 4 : 5;
      return j;
    }
    if (c == 'n') {
      i += 4;
      return j;
    }
    std::size_t end = i;
    while (end < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[end])) ||
            s[end] == '-' || s[end] == '+' || s[end] == '.' ||
            s[end] == 'e' || s[end] == 'E')) {
      ++end;
    }
    j.kind = Json::Kind::Num;
    j.num = std::stod(s.substr(i, end - i));
    i = end;
    return j;
  }
};

TEST(ChromeTrace, ParsesWithOneTrackPerNodeAndFlowPairs) {
  auto tree = motif::balanced_tree<long, char>(
      128, [](std::size_t) { return 1L; }, '+');
  rt::Machine m({.nodes = 3, .workers = 2, .seed = 11});
  m.start_trace();
  (void)motif::tree_reduce2<long, char>(m, tree, traced_add);
  auto log = m.drain_trace();

  std::ostringstream os;
  rt::write_chrome_trace(log, os);
  const std::string text = os.str();

  JsonParser p{text};
  Json root = p.parse();
  p.ws();
  EXPECT_EQ(p.i, text.size()) << "trailing garbage after JSON document";

  ASSERT_EQ(root.kind, Json::Kind::Obj);
  ASSERT_TRUE(root.has("traceEvents"));
  const Json& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::Arr);
  ASSERT_FALSE(events.arr.empty());

  // Exactly one thread_name metadata record per node, with distinct tids
  // 0..nodes-1 — "one track per virtual node".
  std::set<double> named_tids;
  std::map<double, std::size_t> sends, recvs;
  for (const Json& e : events.arr) {
    ASSERT_EQ(e.kind, Json::Kind::Obj);
    const std::string ph = e.at("ph").str;
    if (ph == "M" && e.at("name").str == "thread_name") {
      EXPECT_TRUE(named_tids.insert(e.at("tid").num).second);
      EXPECT_EQ(e.at("args").at("name").str.rfind("node ", 0), 0u);
    } else if (ph == "s") {
      ++sends[e.at("id").num];
    } else if (ph == "f") {
      ++recvs[e.at("id").num];
    } else if (ph == "B" || ph == "E") {
      EXPECT_TRUE(e.has("ts"));
      EXPECT_GE(e.at("tid").num, 0.0);
      EXPECT_LT(e.at("tid").num, 3.0);
    }
  }
  EXPECT_EQ(named_tids.size(), 3u);
  // Every send flows to exactly one receive with the same id (nothing
  // dropped at this capacity).
  ASSERT_FALSE(sends.empty());
  for (const auto& [id, n] : sends) {
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(recvs[id], 1u) << "unmatched flow id " << id;
  }
}

#endif  // MOTIF_TRACING

// ---- standalone Tracer (pipeline-style use) --------------------------------

TEST(Tracer, StandaloneTracksAndRestart) {
  rt::Tracer tracer({.track_capacity = 16});
  const auto a = tracer.add_track("alpha");
  const auto b = tracer.add_track("beta");
  EXPECT_EQ(tracer.track_count(), 2u);

  tracer.emit(a, TraceEventKind::SpanBegin, "ignored.before.start");
  tracer.start();
  tracer.emit(a, TraceEventKind::SpanBegin, "work");
  tracer.emit(b, TraceEventKind::SpanBegin, "other");
  tracer.emit(a, TraceEventKind::SpanEnd, "work");

  auto log = tracer.drain();
  ASSERT_EQ(log.tracks.size(), 2u);
  EXPECT_EQ(log.tracks[0].name, "alpha");
  EXPECT_EQ(log.tracks[0].events.size(), 2u);
  EXPECT_EQ(log.tracks[1].events.size(), 1u);
  EXPECT_EQ(log.total_events(), 3u);

  // start() after drain() records a fresh run on the same tracks.
  tracer.start();
  tracer.emit(b, TraceEventKind::SpanBegin, "again");
  auto log2 = tracer.drain();
  EXPECT_EQ(log2.tracks[0].events.size(), 0u);
  EXPECT_EQ(log2.tracks[1].events.size(), 1u);
}

TEST(TextSummary, ReportsPerTrackHistogram) {
  rt::Tracer tracer({.track_capacity = 32});
  const auto a = tracer.add_track("node 0");
  tracer.start();
  tracer.emit(a, TraceEventKind::TaskBegin);
  tracer.emit(a, TraceEventKind::EvalBegin);
  tracer.emit(a, TraceEventKind::SpanBegin, "motif.step");
  tracer.emit(a, TraceEventKind::SpanEnd, "motif.step");
  tracer.emit(a, TraceEventKind::EvalEnd);
  tracer.emit(a, TraceEventKind::MsgSend, nullptr, 1, 1, 2);
  tracer.emit(a, TraceEventKind::TaskEnd, nullptr, 42);
  std::ostringstream os;
  rt::write_text_summary(tracer.drain(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("node 0: events=7"), std::string::npos);
  EXPECT_NE(out.find("tasks=1"), std::string::npos);
  EXPECT_NE(out.find("work=42"), std::string::npos);
  EXPECT_NE(out.find("sent=1"), std::string::npos);
  EXPECT_NE(out.find("hops=2"), std::string::npos);
  EXPECT_NE(out.find("max_concurrent_evals=1"), std::string::npos);
  EXPECT_NE(out.find("span motif.step: 1"), std::string::npos);
}

TEST(MaxConcurrent, ToleratesTruncatedLogs) {
  rt::TraceTrack t;
  rt::TraceEvent end;
  end.kind = TraceEventKind::EvalEnd;
  rt::TraceEvent begin;
  begin.kind = TraceEventKind::EvalBegin;
  // An end whose begin fell off the ring, then two nested begins.
  t.events = {end, begin, begin, end, end};
  EXPECT_EQ(rt::max_concurrent(t, TraceEventKind::EvalBegin,
                               TraceEventKind::EvalEnd),
            2u);
}

}  // namespace
