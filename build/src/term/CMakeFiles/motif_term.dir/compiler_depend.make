# Empty compiler generated dependencies file for motif_term.
# This may be replaced when dependencies are built.
