// The shared builtin/guard signature tables: the single source of truth
// for which names the interpreter executes natively, with the argument
// modes the static analyzer (src/analysis) needs to reason about
// producers and consumers. interp.cpp dispatches off this table (a goal
// not listed here is a user process), and motiflint reads the mode
// strings to classify every variable occurrence.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace motif::interp {

/// One builtin process signature. `modes` has one character per argument:
///
///   'i'  input: the builtin suspends until this argument is bound (or
///        walks its spine, binding nothing) — a top-level variable here
///        is a consumer that must have a producer elsewhere;
///   'x'  arithmetic expression: every variable inside must become bound;
///   'o'  output: delivered by unification — variables inside are written;
///   'd'  data: read as a value, never awaited and never bound (message
///        payloads, printed terms) — variables inside escape into data.
struct BuiltinSig {
  std::string_view name;
  std::size_t arity;
  std::string_view modes;  // one char per argument
  std::string_view summary;
};

/// All builtin signatures, in documentation order.
const std::vector<BuiltinSig>& builtin_signatures();

/// Lookup by name/arity; nullptr if not a builtin.
const BuiltinSig* find_builtin(std::string_view name, std::size_t arity);

/// Comparison tests usable in guards and (as assertions) in bodies:
/// < > =< >= =:= =\= on numbers, == \== structurally.
bool is_comparison(std::string_view name, std::size_t arity);

/// Type tests usable in guards: integer/float/number/string/atom/list/
/// tuple/compound/data, all arity 1.
bool is_type_test(std::string_view name, std::size_t arity);

/// Any goal the guard evaluator accepts: true, otherwise, comparisons,
/// type tests.
bool is_guard_test(std::string_view name, std::size_t arity);

}  // namespace motif::interp
