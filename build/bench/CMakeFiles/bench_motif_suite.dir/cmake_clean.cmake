file(REMOVE_RECURSE
  "CMakeFiles/bench_motif_suite.dir/bench_motif_suite.cpp.o"
  "CMakeFiles/bench_motif_suite.dir/bench_motif_suite.cpp.o.d"
  "bench_motif_suite"
  "bench_motif_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motif_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
