#include "transform/motif.hpp"

#include <set>

namespace motif::transform {

using term::Clause;
using term::Program;
using term::Term;

Transform identity_transform() {
  return [](const Program& a) { return a; };
}

Motif compose(const Motif& m2, const Motif& m1) {
  // T = λA. T2(M1(A)); L = L2.
  Transform t = [m2, m1](const Program& a) { return m2.transformed(m1.apply(a)); };
  return Motif(m2.name() + " o " + m1.name(), std::move(t), m2.library());
}

Motif compose_all(std::vector<Motif> outer_to_inner) {
  if (outer_to_inner.empty()) {
    return Motif("identity", identity_transform(), Program{});
  }
  Motif acc = outer_to_inner.back();
  for (auto it = outer_to_inner.rbegin() + 1; it != outer_to_inner.rend();
       ++it) {
    acc = compose(*it, acc);
  }
  return acc;
}

namespace {
void collect_names(const Term& t, std::set<std::string>& names) {
  for (const Term& v : t.variables()) names.insert(v.var_name());
}
}  // namespace

std::string fresh_var_name(const Clause& c, const std::string& base) {
  FreshNamer namer(c);
  return namer.fresh(base).var_name();
}

FreshNamer::FreshNamer(const Clause& c) {
  collect_names(c.head, used_);
  for (const auto& g : c.guard) collect_names(g, used_);
  for (const auto& g : c.body) collect_names(g, used_);
}

Term FreshNamer::fresh(const std::string& base) {
  if (used_.insert(base).second) return Term::var(base);
  for (int i = 1;; ++i) {
    std::string cand = base + std::to_string(i);
    if (used_.insert(cand).second) return Term::var(cand);
  }
}

}  // namespace motif::transform
