# Empty compiler generated dependencies file for msa_pipeline.
# This may be replaced when dependencies are built.
