// Builtins: the motif primitives of Section 3 (rand_num, distribute,
// length, ports/merge, make_tuple, arg) plus utility builtins.
#include <gtest/gtest.h>

#include "interp/interp.hpp"
#include "term/parser.hpp"

namespace in = motif::interp;
using in::Interp;
using in::InterpOptions;
using motif::term::parse_term;
using motif::term::Program;
using motif::term::Term;

namespace {
InterpOptions small() {
  InterpOptions o;
  o.nodes = 2;
  o.workers = 2;
  return o;
}
}  // namespace

TEST(Builtins, LengthOfListAndTuple) {
  Interp i(Program::parse(
      "go(A,B) :- length([x,y,z],A), length({p,q},B)."),
      small());
  auto [g, r] = i.run_query("go(A,B)");
  EXPECT_EQ(g.arg(0).int_value(), 3);
  EXPECT_EQ(g.arg(1).int_value(), 2);
}

TEST(Builtins, LengthSuspendsOnUnboundSpine) {
  Interp i(Program::parse(
      "go(N) :- mk(L), length(L,N).\n"
      "mk(L) :- L := [a,b]."),
      small());
  EXPECT_EQ(i.run_query("go(N)").first.arg(0).int_value(), 2);
}

TEST(Builtins, LengthImproperListIsError) {
  Interp i(Program::parse("go(N) :- length([a|b],N)."), small());
  EXPECT_THROW(i.run(parse_term("go(N)")), in::InterpError);
}

TEST(Builtins, RandNumInRange) {
  Interp i(Program::parse(
      "go([]).\n"
      "go([V|Vs]) :- rand_num(5,V), go(Vs)."),
      small());
  auto [g, r] = i.run_query("go([A,B,C,D,E,F,G,H])");
  auto values = g.arg(0).proper_list();
  ASSERT_TRUE(values.has_value());
  for (const auto& v : *values) {
    EXPECT_GE(v.int_value(), 1);
    EXPECT_LE(v.int_value(), 5);
  }
}

TEST(Builtins, RandNumOneIsAlwaysOne) {
  Interp i(Program::parse("go(V) :- rand_num(1,V)."), small());
  EXPECT_EQ(i.run_query("go(V)").first.arg(0).int_value(), 1);
}

TEST(Builtins, RandNumBadBound) {
  Interp i(Program::parse("go(V) :- rand_num(0,V)."), small());
  EXPECT_THROW(i.run(parse_term("go(V)")), in::InterpError);
}

TEST(Builtins, MakeTupleFromCountAndList) {
  Interp i(Program::parse(
      "go(T,U) :- make_tuple(3,T), make_tuple([a,b],U)."),
      small());
  auto [g, r] = i.run_query("go(T,U)");
  EXPECT_TRUE(g.arg(0).is_tuple());
  EXPECT_EQ(g.arg(0).arity(), 3u);
  EXPECT_TRUE(g.arg(1) == parse_term("{a,b}"));
}

TEST(Builtins, ArgExtractsTupleElement) {
  Interp i(Program::parse("go(A) :- arg(2,{x,y,z},A)."), small());
  EXPECT_EQ(i.run_query("go(A)").first.arg(0).functor(), "y");
}

TEST(Builtins, ArgOutOfRangeIsError) {
  Interp i(Program::parse("go(A) :- arg(4,{x},A)."), small());
  EXPECT_THROW(i.run(parse_term("go(A)")), in::InterpError);
}

TEST(Builtins, PortsDeliverMessagesToStream) {
  // make_ports gives ports and their message streams; distribute appends.
  Interp i(Program::parse(
      "go(In1,In2) :- make_ports(2,Ports,[I1,I2]), In1 := I1, In2 := I2, "
      "make_tuple(Ports,DT), distribute(1,hello,DT), "
      "distribute(2,world,DT), distribute(1,again,DT)."),
      small());
  auto [g, r] = i.run_query("go(In1,In2)");
  // Streams stay open (no close), so walk the bound prefix.
  Term s1 = g.arg(0).deref();
  ASSERT_TRUE(s1.is_cons());
  EXPECT_EQ(s1.head().functor(), "hello");
  Term s1b = s1.tail().deref();
  ASSERT_TRUE(s1b.is_cons());
  EXPECT_EQ(s1b.head().functor(), "again");
  EXPECT_TRUE(s1b.tail().deref().is_var());
  Term s2 = g.arg(1).deref();
  ASSERT_TRUE(s2.is_cons());
  EXPECT_EQ(s2.head().functor(), "world");
}

TEST(Builtins, ConsumerSuspendsOnPortStreamThenWakes) {
  Interp i(Program::parse(
      "go(R) :- make_ports(1,[P],[In]), make_tuple([P],DT), "
      "consume(In,R), distribute(1,payload,DT).\n"
      "consume([M|_],R) :- R := M."),
      small());
  EXPECT_EQ(i.run_query("go(R)").first.arg(0).functor(), "payload");
}

TEST(Builtins, SendAllBroadcasts) {
  Interp i(Program::parse(
      "go(A,B) :- make_ports(2,Ports,[I1,I2]), make_tuple(Ports,DT), "
      "send_all(halt,DT), first(I1,A), first(I2,B).\n"
      "first([M|_],R) :- R := M."),
      small());
  auto [g, r] = i.run_query("go(A,B)");
  EXPECT_EQ(g.arg(0).functor(), "halt");
  EXPECT_EQ(g.arg(1).functor(), "halt");
}

TEST(Builtins, DistributeIndexOutOfRange) {
  Interp i(Program::parse(
      "go :- make_ports(1,Ports,_), make_tuple(Ports,DT), "
      "distribute(2,x,DT)."),
      small());
  EXPECT_THROW(i.run(parse_term("go")), in::InterpError);
}

TEST(Builtins, NodesTotalReportsMachineSize) {
  InterpOptions o;
  o.nodes = 6;
  o.workers = 2;
  Interp i(Program::parse("go(N) :- nodes_total(N)."), o);
  EXPECT_EQ(i.run_query("go(N)").first.arg(0).int_value(), 6);
}

TEST(Builtins, WorkAccumulatesVirtualCost) {
  Interp i(Program::parse("go :- work(100), work(50)."), small());
  auto r = i.run(parse_term("go"));
  EXPECT_EQ(r.load.total_work, 150u);
}

TEST(Builtins, MessagesThroughPortCarryUnboundVariables) {
  // The reply-variable pattern: a message contains an unbound variable
  // that the receiver binds — how reduce(T,V) messages return values.
  Interp i(Program::parse(
      "go(R) :- make_ports(1,[P],[In]), make_tuple([P],DT), "
      "serve(In), distribute(1,req(R),DT).\n"
      "serve([req(V)|_]) :- V := answered."),
      small());
  EXPECT_EQ(i.run_query("go(R)").first.arg(0).functor(), "answered");
}
