#include "align/msa.hpp"

#include <stdexcept>

#include "motifs/tree_reduce.hpp"

namespace motif::align {

namespace {

using PTree = Tree<ProfilePtr, char>;

/// Turns the int-leaf guide tree into a profile-leaf reduction tree.
PTree::Ptr to_profile_tree(const Tree<int, char>::Ptr& guide,
                           const std::vector<std::string>& seqs) {
  if (guide->is_leaf()) {
    const int taxon = guide->value();
    if (taxon < 0 || static_cast<std::size_t>(taxon) >= seqs.size()) {
      throw std::out_of_range("guide tree taxon outside sequence family");
    }
    return PTree::leaf(std::make_shared<const Profile>(
        seqs[static_cast<std::size_t>(taxon)]));
  }
  return PTree::node(guide->tag(), to_profile_tree(guide->left(), seqs),
                     to_profile_tree(guide->right(), seqs));
}

}  // namespace

MsaResult progressive_msa(rt::Machine& m,
                          const std::vector<std::string>& seqs,
                          const Tree<int, char>::Ptr& guide,
                          MsaSchedule schedule,
                          const ProfileAlignParams& params) {
  if (seqs.empty()) throw std::invalid_argument("no sequences");
  auto tree = to_profile_tree(guide, seqs);
  auto eval = [params](const char&, const ProfilePtr& a,
                       const ProfilePtr& b) -> ProfilePtr {
    return std::make_shared<const Profile>(align_profiles(*a, *b, params));
  };
  ProfilePtr out;
  switch (schedule) {
    case MsaSchedule::Sequential:
      out = reduce_sequential<ProfilePtr, char>(tree, eval);
      break;
    case MsaSchedule::TreeReduce1:
      out = tree_reduce1<ProfilePtr, char>(m, tree, eval);
      break;
    case MsaSchedule::TreeReduce2:
      out = tree_reduce2<ProfilePtr, char>(m, tree, eval);
      break;
  }
  MsaResult r{*out, 0.0};
  r.sum_of_pairs_score = sum_of_pairs(r.profile, params.pairwise);
  return r;
}

MsaResult progressive_msa_auto(rt::Machine& m,
                               const std::vector<std::string>& seqs,
                               MsaSchedule schedule,
                               const ProfileAlignParams& params) {
  if (seqs.size() == 1) {
    Profile p(seqs[0]);
    double s = sum_of_pairs(p, params.pairwise);
    return {std::move(p), s};
  }
  auto guide = upgma(distance_matrix(seqs));
  return progressive_msa(m, seqs, guide, schedule, params);
}

SyntheticFamily synthetic_family(std::size_t taxa, std::size_t root_length,
                                 std::uint64_t seed) {
  rt::Rng rng(seed);
  auto phylo = yule_tree(taxa, rng);
  SyntheticFamily fam;
  fam.sequences = evolve_family(phylo, root_length, rng);
  fam.guide = guide_from_phylo(phylo);
  return fam;
}

}  // namespace motif::align
