// The paper's Figure 5/6 pipeline, live: start from a user program that
// is ONLY the node-evaluation function, apply the composed motif
//     Tree-Reduce-1 = Server o Rand o Tree1
// stage by stage, print each program (the "archives of expertise" stay
// readable at every stage), and execute the final program on the
// concurrent-logic interpreter over a simulated 4-processor machine.
//
// Build & run:   ./build/examples/strand_motifs
#include <cstdio>
#include <string>

#include "interp/interp.hpp"
#include "transform/motif.hpp"
#include "transform/rand.hpp"
#include "transform/server.hpp"
#include "transform/tree.hpp"

namespace tf = motif::transform;
namespace in = motif::interp;
using motif::term::Program;

int main() {
  // The application: just eval/4 (Figure 2, part A).
  Program user = Program::parse(R"(
    eval('+',L,R,Value) :- Value is L + R.
    eval('*',L,R,Value) :- Value is L * R.
  )");

  std::puts("==== user program (node evaluation only) ====");
  std::fputs(user.to_source().c_str(), stdout);

  Program s1 = tf::tree1_motif().apply(user);
  std::puts("\n==== after Tree1 (library: 5-line divide & conquer) ====");
  std::fputs(s1.to_source().c_str(), stdout);

  Program s2 = tf::rand_motif().apply(s1);
  std::puts("\n==== after Rand (@random -> nodes/rand_num/send; server/1) ====");
  std::fputs(s2.to_source().c_str(), stdout);

  Program s3 = tf::server_motif().transformed(s2);
  std::puts("\n==== after Server transform (DT threaded; send->distribute) ====");
  std::fputs(s3.to_source().c_str(), stdout);

  // The executable program = transformed application + server library +
  // the optional terminating driver (run/2).
  Program full = tf::tree_reduce1_motif().apply(user);

  std::puts("\n==== executing create(4, run(Tree,Value)) ====");
  in::InterpOptions opts;
  opts.nodes = 4;
  opts.workers = 2;
  in::Interp interp(full, opts);
  const std::string tree =
      "tree('*',tree('*',leaf(3),leaf(2)),tree('+',leaf(3),leaf(1)))";
  auto [goal, stats] = interp.run_query("create(4, run(" + tree + ",Value))");
  std::printf("Value = %lld   (reductions=%llu, suspensions=%llu, "
              "remote msgs=%llu)\n",
              static_cast<long long>(goal.arg(1).arg(1).int_value()),
              static_cast<unsigned long long>(stats.reductions),
              static_cast<unsigned long long>(stats.suspensions),
              static_cast<unsigned long long>(stats.load.remote_msgs));

  // And the memory-bounded variant, same user program, same interface:
  Program full2 = tf::tree_reduce2_full_motif().apply(user);
  in::Interp interp2(full2, opts);
  auto [goal2, stats2] =
      interp2.run_query("create(4, start(" + tree + ",Value))");
  std::printf("Tree-Reduce-2: Value = %lld (reductions=%llu)\n",
              static_cast<long long>(goal2.arg(1).arg(1).int_value()),
              static_cast<unsigned long long>(stats2.reductions));
  return goal.arg(1).arg(1).int_value() == 24 &&
                 goal2.arg(1).arg(1).int_value() == 24
             ? 0
             : 1;
}
