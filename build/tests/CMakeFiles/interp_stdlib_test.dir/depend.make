# Empty dependencies file for interp_stdlib_test.
# This may be replaced when dependencies are built.
