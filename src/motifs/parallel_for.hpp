// Data-parallel loop utility over the machine's processors: blocks of the
// index range become tasks on distinct nodes. The workhorse behind the
// grid and graph motifs, exposed for applications.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>

#include "runtime/machine.hpp"
#include "runtime/svar.hpp"

namespace motif {

/// Applies body(i) for i in [begin, end), partitioned into one contiguous
/// block per processor (at most `end - begin` blocks). Blocks the calling
/// thread until every index is done. `body` must be safe to run on
/// distinct indices concurrently.
template <class Body>
void parallel_for(rt::Machine& m, std::size_t begin, std::size_t end,
                  Body body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::uint32_t blocks = static_cast<std::uint32_t>(
      std::min<std::size_t>(m.node_count(), n));
  auto missing = std::make_shared<std::atomic<std::uint32_t>>(blocks);
  rt::SVar<bool> done;
  auto shared_body = std::make_shared<Body>(std::move(body));
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const std::size_t i0 = begin + b * n / blocks;
    const std::size_t i1 = begin + (b + 1) * n / blocks;
    m.post(static_cast<rt::NodeId>(b), [shared_body, i0, i1, missing, done] {
      for (std::size_t i = i0; i < i1; ++i) (*shared_body)(i);
      if (missing->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        rt::SVar<bool> d = done;
        d.bind(true);
      }
    });
  }
  m.wait_idle();  // rethrows task exceptions; the barrier is complete
  done.get();
}

/// Parallel reduction of body(i) over [begin, end) with a commutative,
/// associative combiner and identity element.
template <class R, class Body, class Combine>
R parallel_reduce(rt::Machine& m, std::size_t begin, std::size_t end,
                  R identity, Body body, Combine combine) {
  if (begin >= end) return identity;
  const std::size_t n = end - begin;
  const std::uint32_t blocks = static_cast<std::uint32_t>(
      std::min<std::size_t>(m.node_count(), n));
  auto partials = std::make_shared<std::vector<R>>(blocks, identity);
  auto missing = std::make_shared<std::atomic<std::uint32_t>>(blocks);
  rt::SVar<bool> done;
  auto ctx = std::make_shared<std::pair<Body, Combine>>(std::move(body),
                                                        std::move(combine));
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const std::size_t i0 = begin + b * n / blocks;
    const std::size_t i1 = begin + (b + 1) * n / blocks;
    m.post(static_cast<rt::NodeId>(b),
           [ctx, partials, i0, i1, b, identity, missing, done] {
             R acc = identity;
             for (std::size_t i = i0; i < i1; ++i) {
               acc = ctx->second(std::move(acc), ctx->first(i));
             }
             (*partials)[b] = std::move(acc);
             if (missing->fetch_sub(1, std::memory_order_acq_rel) == 1) {
               rt::SVar<bool> d = done;
               d.bind(true);
             }
           });
  }
  m.wait_idle();  // rethrows task exceptions; the barrier is complete
  done.get();
  R acc = identity;
  for (auto& p : *partials) acc = combine(std::move(acc), std::move(p));
  return acc;
}

}  // namespace motif
