// Alignment profiles and the profile–profile "align-node" function: the
// node evaluation operator of the multiple-sequence-alignment tree
// reduction (paper Section 3). A profile summarises an alignment as
// per-column symbol frequencies (A,C,G,U,gap); aligning two profiles is a
// Needleman–Wunsch dynamic program over expected column-pair scores.
//
// Profiles register their footprint with rt::live_bytes() (TrackedBytes),
// which is how experiment E2 observes the "large intermediate data
// structures" that motivate Tree-Reduce-2.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "align/nw.hpp"
#include "runtime/metrics.hpp"

namespace motif::align {

/// One alignment column: counts for A,C,G,U and gap.
using Column = std::array<float, 5>;

class Profile {
 public:
  Profile() = default;

  /// Single-sequence profile.
  explicit Profile(const std::string& seq);

  std::size_t length() const { return cols_.size(); }
  std::size_t depth() const { return depth_; }  // sequences folded in
  const Column& column(std::size_t i) const { return cols_[i]; }

  /// Consensus string (most frequent symbol per column, gaps included).
  std::string consensus() const;

  /// Average per-column entropy (alignment quality diagnostic; conserved
  /// columns have low entropy).
  double mean_entropy() const;

  /// Bytes of column data (the tracked footprint).
  std::size_t footprint() const { return cols_.size() * sizeof(Column); }

  /// Internal: used by align_profiles to assemble results.
  static Profile assemble(std::vector<Column> cols, std::size_t depth);

 private:
  std::vector<Column> cols_;
  std::size_t depth_ = 0;
  rt::TrackedBytes tracked_;
};

using ProfilePtr = std::shared_ptr<const Profile>;

struct ProfileAlignParams {
  NWParams pairwise{};  // match/mismatch/gap scores between symbols
};

/// The align-node function: globally aligns two profiles, producing the
/// merged profile of depth a.depth()+b.depth(). Cost is
/// O(a.length()*b.length()) — quadratic, so node costs in a guide tree
/// are non-uniform and grow toward the root, exactly the behaviour the
/// paper's dynamic motifs target.
Profile align_profiles(const Profile& a, const Profile& b,
                       const ProfileAlignParams& params = {});

/// Expected pairwise score of two columns under the NW scoring scheme.
double column_score(const Column& a, const Column& b, const NWParams& p);

/// Sum-of-pairs score of a finished profile (higher is better), the
/// standard MSA quality measure restricted to column statistics.
double sum_of_pairs(const Profile& p, const NWParams& params = {});

}  // namespace motif::align
