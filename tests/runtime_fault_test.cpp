// Fault injection and classified outcomes (runtime/fault.hpp): the
// deterministic FaultPlan lottery, replayability, dead-node semantics,
// wait_idle_for classification, abandon_pending / shutdown lifecycle,
// and the post_when copy-path regression.
#include "runtime/fault.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/metrics.hpp"
#include "runtime/svar.hpp"
#include "runtime/trace.hpp"

namespace rt = motif::rt;
using namespace std::chrono_literals;

namespace {

/// A deterministic cross-node cascade: node 0 seeds one message per peer;
/// every delivery re-posts to the next node until `depth` hops are spent.
/// All posts after the seed are node-to-node, so the fault lottery
/// applies; with workers=1 per-node task order is deterministic and a
/// plan replays bit-for-bit.
void cascade(rt::Machine& m, std::atomic<std::uint64_t>& delivered,
             int depth) {
  const std::uint32_t n = m.node_count();
  m.post(0, [&m, &delivered, n, depth] {
    for (std::uint32_t peer = 1; peer < n; ++peer) {
      // Recursive hop: runs on `peer`, forwards to (peer+1)%n.
      struct Hop {
        static void go(rt::Machine& mm, std::atomic<std::uint64_t>& d,
                       std::uint32_t at, int left) {
          d.fetch_add(1, std::memory_order_relaxed);
          if (left == 0) return;
          const std::uint32_t next = (at + 1) % mm.node_count();
          mm.post(next, [&mm, &d, next, left] {
            go(mm, d, next, left - 1);
          });
        }
      };
      m.post(peer, [&m, &delivered, peer, depth] {
        Hop::go(m, delivered, peer, depth);
      });
    }
  });
}

/// Fault events (kind, name, peer, ordinal) from a drained trace,
/// timestamps excluded — the replayable part.
std::vector<std::string> fault_events(const rt::TraceLog& log) {
  std::vector<std::string> out;
  for (std::size_t t = 0; t < log.tracks.size(); ++t) {
    for (const auto& e : log.tracks[t].events) {
      if (e.kind != rt::TraceEventKind::Fault) continue;
      out.push_back(log.tracks[t].name + ":" + e.name + ":peer=" +
                    std::to_string(e.peer) + ":ord=" + std::to_string(e.id));
    }
  }
  return out;
}

}  // namespace

TEST(FaultPlan, DecisionsArePure) {
  rt::FaultPlan p = rt::FaultPlan::chaos(1234);
  for (std::uint64_t nth = 1; nth <= 200; ++nth) {
    for (rt::NodeId from = 0; from < 4; ++from) {
      EXPECT_EQ(p.post_fault(from, nth), p.post_fault(from, nth));
    }
  }
  // A different seed gives a different decision stream somewhere.
  rt::FaultPlan q = p;
  q.seed ^= 0x9E3779B97F4A7C15ull;
  bool differs = false;
  for (std::uint64_t nth = 1; nth <= 500 && !differs; ++nth) {
    differs = p.post_fault(0, nth) != q.post_fault(0, nth);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ReseededChangesSeedOnly) {
  rt::FaultPlan p = rt::FaultPlan::chaos(7);
  p.kills.push_back({2, 10});
  rt::FaultPlan r = p.reseeded(3);
  EXPECT_NE(r.seed, p.seed);
  EXPECT_EQ(r.drop, p.drop);
  ASSERT_EQ(r.kills.size(), 1u);
  EXPECT_EQ(r.kills[0].node, 2u);
  // Deterministic: same attempt, same derived seed.
  EXPECT_EQ(p.reseeded(3).seed, r.seed);
  EXPECT_NE(p.reseeded(4).seed, r.seed);
}

TEST(Fault, BitReplaySameSeedSamePlanSameRun) {
  // Two machines, identical config (1 worker => deterministic per-node
  // task order): identical fault totals AND identical injected-fault
  // trace events, field for field (timestamps excluded).
  auto run = [](std::uint64_t seed, rt::FaultTotals& totals,
                std::vector<std::string>& events, std::uint64_t& count) {
    rt::FaultPlan plan = rt::FaultPlan::chaos(seed);
    plan.drop = 0.15;  // high enough to fire on a short run
    plan.delay = 0.15;
    plan.duplicate = 0.15;
    rt::Machine m({.nodes = 4, .workers = 1, .faults = plan});
    m.start_trace();
    std::atomic<std::uint64_t> delivered{0};
    cascade(m, delivered, 40);
    m.wait_idle();
    m.stop_trace();
    totals = m.fault_totals();
    events = fault_events(m.drain_trace());
    count = delivered.load();
  };
  rt::FaultTotals t1, t2;
  std::vector<std::string> e1, e2;
  std::uint64_t c1 = 0, c2 = 0;
  run(42, t1, e1, c1);
  run(42, t2, e2, c2);
  EXPECT_GT(t1.total(), 0u) << "plan never fired; raise depth/probs";
  EXPECT_EQ(t1.drops, t2.drops);
  EXPECT_EQ(t1.duplicates, t2.duplicates);
  EXPECT_EQ(t1.delays, t2.delays);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(e1, e2);

  // And a different seed genuinely reroutes the run. The event-level
  // comparison needs tracing compiled in: with MOTIF_TRACING=OFF both
  // sides drain to empty and the inequality is vacuously false.
#if MOTIF_TRACING
  rt::FaultTotals t3;
  std::vector<std::string> e3;
  std::uint64_t c3 = 0;
  run(43, t3, e3, c3);
  EXPECT_NE(e1, e3);
#endif
}

TEST(Fault, DropLosesTheMessage) {
  rt::FaultPlan plan;
  plan.drop = 1.0;
  rt::Machine m({.nodes = 2, .workers = 2, .faults = plan});
  std::atomic<int> arrived{0};
  // External posts are not cross-node sends — only the node-to-node hop
  // is subject to the lottery.
  m.post(0, [&m, &arrived] {
    m.post(1, [&arrived] { arrived.fetch_add(1); });
  });
  m.wait_idle();
  EXPECT_EQ(arrived.load(), 0);
  EXPECT_EQ(m.fault_totals().drops, 1u);
}

TEST(Fault, DuplicateDeliversTwice) {
  rt::FaultPlan plan;
  plan.duplicate = 1.0;
  rt::Machine m({.nodes = 2, .workers = 2, .faults = plan});
  std::atomic<int> arrived{0};
  m.post(0, [&m, &arrived] {
    m.post(1, [&arrived] { arrived.fetch_add(1); });
  });
  m.wait_idle();
  EXPECT_EQ(arrived.load(), 2);
  EXPECT_EQ(m.fault_totals().duplicates, 1u);
}

TEST(Fault, DelayStillDelivers) {
  rt::FaultPlan plan;
  plan.delay = 1.0;
  rt::Machine m({.nodes = 2, .workers = 2, .faults = plan});
  std::atomic<int> arrived{0};
  m.post(0, [&m, &arrived] {
    for (int i = 0; i < 8; ++i) {
      m.post(1, [&arrived] { arrived.fetch_add(1); });
    }
  });
  m.wait_idle();
  EXPECT_EQ(arrived.load(), 8);  // delayed, never lost
  EXPECT_EQ(m.fault_totals().delays, 8u);
}

TEST(Fault, KillStopsTheNodeAndShedsItsMail) {
  rt::FaultPlan plan;
  plan.kills.push_back({1, 1});  // node 1 dies after its first task
  rt::Machine m({.nodes = 2, .workers = 2, .faults = plan});
  std::atomic<int> ran{0};
  m.post(1, [&ran] { ran.fetch_add(1); });
  m.wait_idle();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_FALSE(m.node_alive(1));
  EXPECT_EQ(m.lost_nodes(), std::vector<rt::NodeId>{1});
  EXPECT_EQ(m.fault_totals().kills, 1u);

  // Mail to the dead node is discarded (dead-drop), and the machine
  // still quiesces instead of hanging.
  m.post(1, [&ran] { ran.fetch_add(1); });
  rt::RunOutcome o = m.wait_idle_for(5s);
  EXPECT_EQ(o.status, rt::RunStatus::Completed);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_GE(m.fault_totals().dead_drops, 1u);
  ASSERT_EQ(o.lost_nodes.size(), 1u);

  // Revive: the node serves again; the exact-count kill cannot re-fire
  // (its cumulative task count is already past).
  m.revive(1);
  EXPECT_TRUE(m.node_alive(1));
  m.post(1, [&ran] { ran.fetch_add(1); });
  m.wait_idle();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(m.fault_totals().kills, 1u);
}

TEST(Fault, ThrowInjectsClassifiedTaskFailure) {
  rt::FaultPlan plan;
  plan.throws.push_back({0, 2});  // node 0's second task throws instead
  rt::Machine m({.nodes = 2, .workers = 2, .faults = plan});
  std::atomic<int> ran{0};
  m.post(0, [&ran] { ran.fetch_add(1); });
  m.post(0, [&ran] { ran.fetch_add(1); });
  m.post(0, [&ran] { ran.fetch_add(1); });
  rt::RunOutcome o = m.wait_idle_for(5s);
  EXPECT_EQ(o.status, rt::RunStatus::TaskFailed);
  EXPECT_NE(o.error_message.find("injected fault"), std::string::npos);
  EXPECT_EQ(ran.load(), 2);  // task 2 replaced by the throw
  EXPECT_EQ(m.fault_totals().throws, 1u);
  ASSERT_TRUE(o.error);
  EXPECT_THROW(std::rethrow_exception(o.error), rt::InjectedFault);
}

TEST(Fault, WaitIdleForClassifiesDeadline) {
  rt::Machine m({.nodes = 1, .workers = 1});
  m.post(0, [] { std::this_thread::sleep_for(200ms); });
  rt::RunOutcome o = m.wait_idle_for(1ms);
  EXPECT_EQ(o.status, rt::RunStatus::DeadlineExceeded);
  m.wait_idle();  // drain before destruction checks
  EXPECT_TRUE(m.wait_idle_for(1s).ok());
}

TEST(Fault, BlockedOnReportsNamedUnboundSvars) {
  rt::SVar<int> answer;
  answer.set_name("fault_test.answer");
  auto names = rt::unbound_svar_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "fault_test.answer"),
            names.end());
  answer.bind(7);
  names = rt::unbound_svar_names();
  EXPECT_EQ(std::find(names.begin(), names.end(), "fault_test.answer"),
            names.end());
}

TEST(Fault, AbandonPendingDiscardsQueuedWork) {
  rt::Machine m({.nodes = 2, .workers = 1});
  std::atomic<int> ran{0};
  m.post(0, [&m, &ran] {
    std::this_thread::sleep_for(50ms);
    for (int i = 0; i < 100; ++i) {
      m.post(1, [&ran] { ran.fetch_add(1); });
    }
  });
  m.abandon_pending();
  const int after_abandon = ran.load();
  // Machine is reusable afterwards.
  m.post(0, [&ran] { ran.fetch_add(1000); });
  m.wait_idle();
  EXPECT_EQ(ran.load(), after_abandon + 1000);
}

TEST(Fault, AbandonPendingClearsPendingError) {
  rt::Machine m({.nodes = 1, .workers = 1});
  m.post(0, [] { throw std::runtime_error("abandoned"); });
  m.abandon_pending();
  EXPECT_NO_THROW(m.wait_idle());
}

TEST(Fault, PostAfterShutdownIsDiscardedAndCounted) {
  rt::Machine m({.nodes = 2, .workers = 2});
  std::atomic<int> ran{0};
  m.post(0, [&ran] { ran.fetch_add(1); });
  m.shutdown();
  EXPECT_EQ(ran.load(), 1);
  const std::uint64_t before = m.discarded_posts();
  m.post(0, [&ran] { ran.fetch_add(1); });
  m.post(1, [&ran] { ran.fetch_add(1); });
  EXPECT_EQ(m.discarded_posts(), before + 2);
  EXPECT_EQ(ran.load(), 1);
  m.shutdown();  // idempotent
}

TEST(Fault, DroppedTaskErrorIsCountedAtDestruction) {
  const std::uint64_t before = rt::dropped_task_errors().load();
  {
    rt::Machine m({.nodes = 1, .workers = 1});
    m.post(0, [] { throw std::runtime_error("uncollected"); });
    // No wait_idle: the destructor must log the error, not swallow it.
  }
  EXPECT_EQ(rt::dropped_task_errors().load(), before + 1);
}

TEST(Fault, ConcurrentWaitIdleDeliversErrorToExactlyOne) {
  rt::Machine m({.nodes = 1, .workers = 1});
  m.post(0, [] {
    std::this_thread::sleep_for(20ms);
    throw std::runtime_error("one of you gets this");
  });
  std::atomic<int> caught{0};
  auto waiter = [&m, &caught] {
    try {
      m.wait_idle();
    } catch (const std::runtime_error&) {
      caught.fetch_add(1);
    }
  };
  std::thread a(waiter), b(waiter);
  a.join();
  b.join();
  EXPECT_EQ(caught.load(), 1);
}

namespace {

/// Copy/move audit payload for the post_when regression.
struct Counted {
  static std::atomic<int> copies;
  Counted() = default;
  Counted(const Counted&) { copies.fetch_add(1); }
  Counted& operator=(const Counted&) {
    copies.fetch_add(1);
    return *this;
  }
  Counted(Counted&&) noexcept = default;
  Counted& operator=(Counted&&) noexcept = default;
};
std::atomic<int> Counted::copies{0};

}  // namespace

TEST(Fault, PostWhenMoveSkipsTheSecondCopy) {
  rt::Machine m({.nodes = 2, .workers = 2});

  // Copy path: one copy into the posted task + one copy into the
  // by-value consumer.
  {
    rt::SVar<Counted> v;
    Counted::copies.store(0);
    rt::SVar<bool> done;
    m.post_when(v, 1, [&done](Counted c) {
      (void)c;
      done.bind(true);
    });
    m.post(0, [v]() mutable { v.bind(Counted{}); });
    m.wait_idle();
    EXPECT_TRUE(done.bound());
    EXPECT_EQ(Counted::copies.load(), 2);
  }

  // Move path: the value still crosses nodes by value (one copy into the
  // task) but is then moved into the consumer.
  {
    rt::SVar<Counted> v;
    Counted::copies.store(0);
    rt::SVar<bool> done;
    m.post_when_move(v, 1, [&done](Counted c) {
      (void)c;
      done.bind(true);
    });
    m.post(0, [v]() mutable { v.bind(Counted{}); });
    m.wait_idle();
    EXPECT_TRUE(done.bound());
    EXPECT_EQ(Counted::copies.load(), 1);
  }
}

TEST(Fault, SetFaultPlanSwapsPlansBetweenRuns) {
  rt::Machine m({.nodes = 2, .workers = 2});
  std::atomic<int> arrived{0};
  auto hop = [&m, &arrived] {
    m.post(0, [&m, &arrived] {
      m.post(1, [&arrived] { arrived.fetch_add(1); });
    });
    m.wait_idle();
  };
  hop();
  EXPECT_EQ(arrived.load(), 1);  // no plan: nothing dropped
  rt::FaultPlan all_drop;
  all_drop.drop = 1.0;
  m.set_fault_plan(all_drop);
  hop();
  EXPECT_EQ(arrived.load(), 1);  // dropped
  m.set_fault_plan(rt::FaultPlan{});
  hop();
  EXPECT_EQ(arrived.load(), 2);  // healthy again
}

TEST(Fault, RunOutcomeToStringMentionsStatusAndFaults) {
  rt::RunOutcome o;
  o.status = rt::RunStatus::NodeLost;
  o.lost_nodes = {2};
  o.faults.kills = 1;
  o.blocked_on = "tree_reduce2.result";
  const std::string s = o.to_string();
  EXPECT_NE(s.find("node-lost"), std::string::npos);
  EXPECT_NE(s.find("tree_reduce2.result"), std::string::npos);
}
