// motifsh — an exploratory shell for the motif system.
//
// The paper's closing argument (Section 4) is that motifs "encourage
// programmers to experiment with the use of alternative motifs in a
// single application" — an exploratory programming style. This shell is
// that loop: load an application, apply motifs by name, inspect the
// transformed program at any stage, and run queries on the simulated
// multicomputer.
//
//   $ ./build/tools/motifsh
//   motif> :load my_eval.str          load clauses from a file
//   motif> :apply tree1               link the Tree1 library
//   motif> :apply rand                rewrite @random, generate server/1
//   motif> :apply server              thread DT, link the server library
//   motif> :list                      show the current program
//   motif> :nodes 8                   set the machine size
//   motif> :run create(8, run(tree('+',leaf(1),leaf(2)),V))
//   motif> :profile                   reductions by definition (last run)
//   motif> :stats                     scheduler counters (last run)
//   motif> :trace on                  record timelines for later runs
//   motif> :trace dump [file]         text summary, or Chrome JSON to file
//
// Invoke with `--trace FILE` to write a Chrome-trace JSON (load it in
// chrome://tracing or Perfetto) after every traced :run.
//
// Fault injection (`--fault-seed N`, or the :faults command) runs every
// subsequent :run under a deterministic FaultPlan — dropped, duplicated
// and delayed cross-node messages, node kills, injected task throws — so
// a motif's behaviour under partial failure is explorable from the shell.
//
// Reads commands from stdin (scriptable: `motifsh < script`), so it also
// serves as an end-to-end smoke test target.
//
// Distributed mode (DESIGN.md §11):
//   * `--loopback N` hosts an N-rank cluster inside this one process over
//     the deterministic loopback transport — every frame still passes
//     through the wire codec, so :netrun measures real message counts.
//   * `--rank R --peers host:port,host:port,...` joins a TCP cluster as
//     rank R (peers[r] is rank r's listen address). Rank 0 gets the
//     shell; every other rank serves until rank 0's :quit broadcasts
//     Shutdown. tools/net_launch.sh scripts the 2-process version.
//   * `:netrun treereduce2 DEPTH SEED` runs the distributed Tree-Reduce-2
//     across the cluster and prints the value, the sequential oracle and
//     the net counters; `:stats` adds a net: line while a cluster is up.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "motifs/dist_tree_reduce.hpp"
#include "net/cluster.hpp"
#include "net/transport.hpp"
#include "runtime/fault.hpp"
#include "runtime/trace.hpp"

#include "analysis/lint.hpp"
#include "interp/interp.hpp"
#include "interp/stdlib.hpp"
#include "term/program.hpp"
#include "term/writer.hpp"
#include "transform/motif.hpp"
#include "transform/rand.hpp"
#include "transform/sched.hpp"
#include "transform/server.hpp"
#include "transform/terminate.hpp"
#include "transform/tree.hpp"

namespace tf = motif::transform;
namespace in = motif::interp;
using motif::term::ProcKey;
using motif::term::Program;

namespace {

/// The shell's cluster, when one was requested on the command line.
/// cs[0] is always the local (driving) rank; under --loopback the vector
/// holds every rank, all living in this process. Member order matters:
/// clusters are destroyed before the transports they use and before the
/// motifs whose handlers they hold — ~Cluster abandons any still-queued
/// handler tasks, so nothing can run against a dead DistTreeReduce2.
struct NetState {
  std::optional<motif::net::LoopbackHub> hub;            // --loopback
  std::unique_ptr<motif::net::Transport> tcp;            // --rank/--peers
  std::vector<std::unique_ptr<motif::DistTreeReduce2>> trs;
  std::vector<std::unique_ptr<motif::net::Cluster>> cs;

  bool active() const { return !cs.empty(); }
  motif::net::Cluster& self() { return *cs.front(); }
};

struct Shell {
  NetState net;
  Program program;
  std::uint32_t nodes = 4;
  in::RunResult last;
  bool had_run = false;
  bool trace_enabled = false;
  std::string trace_file;  // --trace FILE: Chrome JSON after each :run
  motif::rt::TraceLog last_trace;
  bool had_trace = false;
  motif::rt::FaultPlan faults;  // disabled unless :faults / --fault-seed

  std::optional<tf::Motif> motif_by_name(const std::string& name,
                                         const std::string& arg) {
    if (name == "rand") return tf::rand_motif(parse_keys(arg));
    if (name == "server") return tf::server_motif();
    if (name == "tree1") return tf::tree1_motif();
    if (name == "tree1both") return tf::tree1_both_motif();
    if (name == "treereduce2") return tf::tree_reduce2_motif();
    if (name == "sched") return tf::sched_motif(parse_keys(arg));
    if (name == "terminate") {
      auto keys = parse_keys(arg);
      if (keys.size() != 1) {
        std::cout << "terminate needs one entry, e.g. "
                     ":apply terminate reduce/2\n";
        return std::nullopt;
      }
      return tf::terminate_motif(keys[0]);
    }
    std::cout << "unknown motif '" << name
              << "' (rand server tree1 tree1both treereduce2 sched "
                 "terminate)\n";
    return std::nullopt;
  }

  static std::vector<ProcKey> parse_keys(const std::string& s) {
    std::vector<ProcKey> keys;
    std::istringstream is(s);
    std::string item;
    while (is >> item) {
      const auto slash = item.find('/');
      if (slash == std::string::npos) continue;
      keys.push_back(ProcKey{item.substr(0, slash),
                             std::stoul(item.substr(slash + 1))});
    }
    return keys;
  }

  void write_trace_file(const std::string& path) {
    std::ofstream f(path);
    if (!f) {
      std::cout << "cannot write " << path << "\n";
      return;
    }
    motif::rt::write_chrome_trace(last_trace, f);
    std::cout << "trace: wrote " << last_trace.total_events()
              << " events to " << path << "\n";
  }

  void run_goal(const std::string& goal) {
    try {
      in::InterpOptions opts;
      opts.nodes = nodes;
      opts.workers = 2;
      opts.faults = faults;
      in::Interp interp(program, opts);
      if (trace_enabled) interp.machine().start_trace();
      auto [g, r] = interp.run_query(goal);
      if (trace_enabled) {
        last_trace = interp.machine().drain_trace();
        had_trace = true;
        if (!trace_file.empty()) write_trace_file(trace_file);
      }
      last = r;
      had_run = true;
      std::cout << "goal: " << motif::term::format_term(g) << "\n";
      std::cout << "reductions=" << r.reductions
                << " suspensions=" << r.suspensions
                << " remote_msgs=" << r.load.remote_msgs;
      if (r.deadlocked()) {
        std::cout << "  DEADLOCK (" << r.still_suspended << " stuck)";
        for (const auto& sg : r.stuck_goals) {
          std::cout << "\n  stuck: " << sg;
        }
      }
      std::cout << "\n";
      if (faults.enabled()) {
        const auto t = interp.machine().fault_totals();
        std::cout << "faults: drops=" << t.drops << " dead_drops="
                  << t.dead_drops << " dups=" << t.duplicates
                  << " delays=" << t.delays << " kills=" << t.kills
                  << " throws=" << t.throws << "\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }

  void print_net_stats() {
    const auto s = net.self().net_stats();
    std::cout << "net: tx_frames=" << s.tx_frames
              << " rx_frames=" << s.rx_frames << " tx_bytes=" << s.tx_bytes
              << " rx_bytes=" << s.rx_bytes << " ctl_frames=" << s.ctl_frames
              << " drops=" << s.drops << " dups=" << s.dups
              << " delays=" << s.delays << "\n";
  }

  void show_faults() const {
    if (!faults.enabled()) {
      std::cout << "faults: off\n";
      return;
    }
    std::cout << "faults: seed=" << faults.seed << " drop=" << faults.drop
              << " dup=" << faults.duplicate << " delay=" << faults.delay;
    for (const auto& k : faults.kills) {
      std::cout << " kill(" << k.node << "@" << k.after_tasks << ")";
    }
    for (const auto& t : faults.throws) {
      std::cout << " throw(" << t.node << "@" << t.on_task << ")";
    }
    std::cout << "\n";
  }

  bool handle(const std::string& line) {
    if (line.empty()) return true;
    if (line[0] != ':') {
      // Bare input: treat as clauses to add.
      try {
        program = program.linked_with(Program::parse(line));
        std::cout << "ok (" << program.clauses().size() << " clauses)\n";
      } catch (const std::exception& e) {
        std::cout << "parse error: " << e.what() << "\n";
      }
      return true;
    }
    std::istringstream is(line.substr(1));
    std::string cmd;
    is >> cmd;
    std::string rest;
    std::getline(is, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

    if (cmd == "quit" || cmd == "q") return false;
    if (cmd == "load") {
      std::ifstream f(rest);
      if (!f) {
        std::cout << "cannot open " << rest << "\n";
        return true;
      }
      std::stringstream buf;
      buf << f.rdbuf();
      try {
        program = program.linked_with(Program::parse(buf.str()));
        std::cout << "loaded " << rest << " ("
                  << program.clauses().size() << " clauses total)\n";
      } catch (const std::exception& e) {
        std::cout << "parse error: " << e.what() << "\n";
      }
      return true;
    }
    if (cmd == "stdlib") {
      program = program.linked_with(in::stdlib());
      std::cout << "stdlib linked (" << program.clauses().size()
                << " clauses total)\n";
      return true;
    }
    if (cmd == "apply") {
      std::istringstream rs(rest);
      std::string name;
      rs >> name;
      std::string arg;
      std::getline(rs, arg);
      if (auto motif = motif_by_name(name, arg)) {
        program = motif->apply(program);
        std::cout << "applied " << motif->name() << " -> "
                  << program.clauses().size() << " clauses\n";
      }
      return true;
    }
    if (cmd == "list") {
      std::cout << program.to_source();
      return true;
    }
    if (cmd == "clear") {
      program = Program{};
      std::cout << "cleared\n";
      return true;
    }
    if (cmd == "nodes") {
      nodes = static_cast<std::uint32_t>(std::stoul(rest));
      std::cout << "machine: " << nodes << " processors\n";
      return true;
    }
    if (cmd == "run") {
      run_goal(rest);
      return true;
    }
    if (cmd == "trace") {
      std::istringstream rs(rest);
      std::string sub;
      rs >> sub;
      if (!motif::rt::Machine::trace_compiled) {
        std::cout << "tracing unavailable (built with MOTIF_TRACING=OFF)\n";
        return true;
      }
      if (sub == "on") {
        trace_enabled = true;
        std::cout << "tracing on (timelines recorded per :run)\n";
      } else if (sub == "off") {
        trace_enabled = false;
        std::cout << "tracing off\n";
      } else if (sub == "dump") {
        if (!had_trace) {
          std::cout << "no trace yet (:trace on, then :run)\n";
          return true;
        }
        std::string file;
        rs >> file;
        if (!file.empty()) {
          write_trace_file(file);
        } else {
          motif::rt::write_text_summary(last_trace, std::cout);
        }
      } else {
        std::cout << ":trace on | off | dump [file]\n";
      }
      return true;
    }
    if (cmd == "lint") {
      motif::analysis::Options opts;
      opts.entries = parse_keys(rest);  // optional: :lint main/2 ...
      const auto report = motif::analysis::analyze(program, opts);
      std::cout << report.to_string();
      if (report.clean()) {
        std::cout << "lint: clean (" << program.clauses().size()
                  << " clauses)\n";
      } else {
        std::cout << "lint: " << report.errors() << " error(s), "
                  << report.warnings() << " warning(s)\n";
      }
      return true;
    }
    if (cmd == "faults") {
      std::istringstream rs(rest);
      std::string sub;
      rs >> sub;
      try {
        if (sub.empty() || sub == "show") {
          show_faults();
        } else if (sub == "off") {
          faults = motif::rt::FaultPlan{};
          std::cout << "faults: off\n";
        } else if (sub == "chaos") {
          std::string seed;
          rs >> seed;
          faults = motif::rt::FaultPlan::chaos(
              seed.empty() ? faults.seed : std::stoull(seed));
          show_faults();
        } else if (sub == "seed") {
          std::string seed;
          rs >> seed;
          faults.seed = std::stoull(seed);
          show_faults();
        } else if (sub == "drop" || sub == "dup" || sub == "delay") {
          std::string p;
          rs >> p;
          (sub == "drop" ? faults.drop
                         : sub == "dup" ? faults.duplicate : faults.delay) =
              std::stod(p);
          show_faults();
        } else if (sub == "kill" || sub == "throw") {
          std::string node, when;
          rs >> node >> when;
          const auto n = static_cast<std::uint32_t>(std::stoul(node));
          const auto k = when.empty() ? 1 : std::stoull(when);
          if (sub == "kill") {
            faults.kills.push_back({n, k});
          } else {
            faults.throws.push_back({n, k});
          }
          show_faults();
        } else {
          std::cout << ":faults [show] | off | chaos [seed] | seed N | "
                       "drop P | dup P | delay P | kill NODE [AFTER] | "
                       "throw NODE [TASK]\n";
        }
      } catch (const std::exception&) {
        std::cout << "bad :faults argument (numbers expected)\n";
      }
      return true;
    }
    if (cmd == "netrun") {
      if (!net.active()) {
        std::cout << "netrun: no cluster (start with --loopback N or "
                     "--rank R --peers ...)\n";
        return true;
      }
      std::istringstream rs(rest);
      std::string what;
      std::uint32_t depth = 6;
      std::uint64_t seed = 42;
      rs >> what >> depth >> seed;
      if (what != "treereduce2") {
        std::cout << ":netrun treereduce2 [DEPTH] [SEED]\n";
        return true;
      }
      try {
        const auto r =
            net.trs.front()->run(depth, seed, std::chrono::seconds(60));
        std::cout << "netrun treereduce2 depth=" << depth << " seed=" << seed
                  << ": value=" << r.value << " expected=" << r.expected
                  << " (" << r.outcome.to_string() << ")\n";
        std::cout << "result match: " << (r.ok ? "yes" : "no") << "\n";
        print_net_stats();
      } catch (const std::exception& e) {
        std::cout << "netrun error: " << e.what() << "\n";
      }
      return true;
    }
    if (cmd == "stats") {
      if (net.active()) print_net_stats();
      if (!had_run) {
        if (!net.active()) std::cout << "stats: no run yet (use :run)\n";
        return true;
      }
      const auto& l = last.load;
      std::cout << "sched: steals=" << l.sched.steals
                << " parks=" << l.sched.parks
                << " mailbox_fast_hits=" << l.sched.mailbox_fast_hits
                << " injects=" << l.sched.injects << "\n";
      std::cout << "load:  tasks=" << l.total_tasks
                << " remote_msgs=" << l.remote_msgs
                << " local_msgs=" << l.local_msgs
                << " imbalance=" << l.imbalance << "\n";
      return true;
    }
    if (cmd == "profile") {
      if (!had_run) {
        std::cout << "no run yet\n";
        return true;
      }
      for (const auto& [def, n] : last.by_definition) {
        std::cout << "  " << def << ": " << n << "\n";
      }
      return true;
    }
    if (cmd == "help" || cmd == "h") {
      std::cout << ":load FILE | :stdlib | :apply MOTIF [keys] | :list | "
                   ":lint [entry/k ...] | :clear | :nodes N | :run GOAL | "
                   ":netrun treereduce2 [DEPTH] [SEED] | "
                   ":profile | :stats | :trace on|off|dump [file] | "
                   ":faults [chaos|off|...] | :quit\n"
                   "bare lines are parsed as clauses and added\n";
      return true;
    }
    std::cout << "unknown command :" << cmd << " (try :help)\n";
    return true;
  }
};

}  // namespace

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  std::uint32_t rank = 0;
  bool rank_set = false;
  std::string peers_arg;
  std::uint32_t loopback = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      shell.trace_file = argv[++i];
      shell.trace_enabled = true;
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      try {
        shell.faults = motif::rt::FaultPlan::chaos(std::stoull(argv[++i]));
      } catch (const std::exception&) {
        std::cerr << "motifsh: --fault-seed expects a number\n";
        return 2;
      }
    } else if (arg == "--rank" && i + 1 < argc) {
      rank = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      rank_set = true;
    } else if (arg == "--peers" && i + 1 < argc) {
      peers_arg = argv[++i];
    } else if (arg == "--loopback" && i + 1 < argc) {
      loopback = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: motifsh [--trace FILE] [--fault-seed N] "
                   "[--loopback N | --rank R --peers h:p,h:p,...]  "
                   "(commands on stdin)\n";
      return 2;
    }
  }
  if ((rank_set || !peers_arg.empty()) && loopback > 0) {
    std::cerr << "motifsh: --loopback and --rank/--peers are exclusive\n";
    return 2;
  }

  try {
    if (rank_set || !peers_arg.empty()) {
      const auto peers = split_commas(peers_arg);
      if (peers.size() < 2 || rank >= peers.size()) {
        std::cerr << "motifsh: --peers needs >= 2 host:port entries and "
                     "--rank must index one of them\n";
        return 2;
      }
      shell.net.tcp = motif::net::make_tcp_transport(rank, peers);
      motif::net::ClusterConfig cfg;
      shell.net.cs.push_back(
          std::make_unique<motif::net::Cluster>(*shell.net.tcp, cfg));
      shell.net.trs.push_back(
          std::make_unique<motif::DistTreeReduce2>(shell.net.self()));
      shell.net.self().start();
      std::cout << "cluster: rank " << rank << "/" << peers.size()
                << " up (" << shell.net.self().global_nodes()
                << " global nodes)\n";
      if (rank != 0) {
        // Followers have no shell: everything they do arrives as
        // messages. serve() returns when rank 0 broadcasts Shutdown.
        shell.net.self().serve();
        std::cout << "rank " << rank << ": shutdown received\n";
        return 0;
      }
    } else if (loopback > 0) {
      shell.net.hub.emplace(loopback);
      for (std::uint32_t r = 0; r < loopback; ++r) {
        motif::net::ClusterConfig cfg;
        shell.net.cs.push_back(std::make_unique<motif::net::Cluster>(
            shell.net.hub->endpoint(r), cfg));
      }
      for (auto& c : shell.net.cs) {
        shell.net.trs.push_back(
            std::make_unique<motif::DistTreeReduce2>(*c));
      }
      // Followers first: their Join frames deliver inline into rank 0's
      // already-set receiver, so rank 0's start() finds them all joined.
      for (std::uint32_t r = 1; r < loopback; ++r) shell.net.cs[r]->start();
      shell.net.self().start();
      std::cout << "cluster: " << loopback << " loopback ranks up ("
                << shell.net.self().global_nodes() << " global nodes)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "motifsh: cluster startup failed: " << e.what() << "\n";
    return 1;
  }

  const bool tty = false;  // prompt is harmless when scripted too
  (void)tty;
  std::string line;
  std::cout << "motifsh — :help for commands\n";
  while (std::cout << "motif> " << std::flush,
         std::getline(std::cin, line)) {
    if (!shell.handle(line)) break;
  }
  if (shell.net.active()) shell.net.self().shutdown();
  std::cout << "\n";
  return 0;
}
