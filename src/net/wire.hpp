// Wire format for the distributed machine (DESIGN.md §11).
//
// The paper's headline guarantee for Tree-Reduce-2 — "at most one
// inter-processor communication per node's pair of offspring values" — is
// only testable when an inter-processor message has a real cost. This
// module defines that cost: a versioned, length-prefixed frame format with
// a compact binary codec for Terms and runtime control messages, shared by
// every transport (in-process loopback and TCP alike), so a "message" is
// the same sequence of bytes whether it crosses a socket or a function
// call.
//
// Framing:   [u32 length][u8 version][u8 type][type-specific payload]
//   * length counts everything after the length word; frames larger than
//     kMaxFrameBytes are rejected as corrupt.
//   * all integers are little-endian, written and read byte by byte — the
//     codec is endian-safe regardless of host byte order.
//   * an unknown version or type, a payload that does not parse, or
//     trailing bytes after the payload are decode errors (WireError), so
//     corruption cannot be silently half-read.
//
// Term codec: tagged, recursive, with three properties the tests assert:
//   * round-trip exact — decode(encode(t)) is alpha-equal to t, including
//     variable *sharing* (occurrences of one cell encode as references to
//     one definition index) and variable names;
//   * bounded recursion — nesting beyond kMaxTermDepth is rejected on both
//     encode and decode, and list spines are encoded iteratively so a long
//     list costs O(1) depth, not O(n);
//   * allocation-bounded decode — every count field (string length, arity,
//     list length) is validated against the bytes actually remaining, so a
//     corrupted length cannot trigger a huge allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "term/term.hpp"

namespace motif::net {

/// Any framing or codec violation: truncation, bad version, unknown tag,
/// depth overflow, count overflow, trailing bytes.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint8_t kWireVersion = 1;
/// Upper bound on one frame's post-length-word size; larger lengths are
/// treated as corruption, not as a request for a 4 GiB buffer.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;
/// Maximum Term nesting accepted by encode_term/decode_term.
inline constexpr std::uint32_t kMaxTermDepth = 200;

// ---- primitive little-endian encoder/decoder -------------------------------

class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  // IEEE-754 bits, little-endian (wire.cpp)
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::vector<std::uint8_t>& data() { return buf_; }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Decoder {
 public:
  Decoder(const std::uint8_t* p, std::size_t n) : p_(p), end_(p + n) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

  std::uint8_t u8() {
    need(1);
    return *p_++;
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(p_[0] | (p_[1] << 8));
    p_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();  // wire.cpp
  std::string str() {
    const std::uint32_t n = u32();
    if (n > remaining()) throw WireError("truncated string");
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) throw WireError("truncated frame payload");
  }
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// ---- Term codec ------------------------------------------------------------

/// Appends the binary encoding of `t` (dereferenced) to `e`. Preserves
/// variable identity: every occurrence of one unbound cell encodes as a
/// reference to the same definition index. Throws WireError when nesting
/// exceeds kMaxTermDepth (list spines count as one level).
void encode_term(Encoder& e, const term::Term& t);

/// Decodes one Term. Decoded variables are fresh cells: the result is
/// alpha-equal to (not cell-identical with) the encoded term, with the
/// original sharing structure. Throws WireError on any malformation.
term::Term decode_term(Decoder& d);

/// Convenience: encode_term into a fresh byte vector.
std::vector<std::uint8_t> term_bytes(const term::Term& t);
/// Convenience: decode exactly one term from `[p, p+n)`; trailing bytes
/// are a WireError.
term::Term term_from_bytes(const std::uint8_t* p, std::size_t n);

// ---- frames ----------------------------------------------------------------

enum class FrameType : std::uint8_t {
  Hello = 1,    ///< first frame on a TCP connection: version + sender rank
  Join = 2,     ///< rank -> rank 0: transport up, ready to start
  Start = 3,    ///< rank 0 -> all: every rank joined, run
  Post = 4,     ///< data: deliver `payload` to `handler` on `dst_node`
  Probe = 5,    ///< rank 0 -> rank: termination probe for `round`
  ProbeReply = 6,  ///< rank -> rank 0: idle flag + tx/rx frame counts
  Release = 7,  ///< rank 0 -> all: global quiescence confirmed
  Shutdown = 8, ///< rank 0 -> all: tear the cluster down
};

/// One decoded wire frame. A plain struct rather than a variant: only the
/// fields implied by `type` are meaningful (the codec writes and reads
/// exactly those), everything else stays default.
struct Frame {
  FrameType type = FrameType::Post;
  std::uint32_t src_rank = 0;  ///< sender rank (all frame types)

  // Post
  std::uint64_t dst_node = 0;  ///< global NodeId of the destination
  std::uint16_t handler = 0;   ///< cluster handler registry index
  std::uint64_t trace_id = 0;  ///< nonzero: flow id linking MsgSend/MsgRecv
  term::Term payload;          ///< argument term (default: nil)

  // Probe / ProbeReply / Release
  std::uint64_t round = 0;
  std::uint64_t tx = 0;   ///< ProbeReply: post frames sent by this rank
  std::uint64_t rx = 0;   ///< ProbeReply: post frames received by this rank
  bool idle = false;      ///< ProbeReply: local machine quiescent
};

/// Encodes `f` as one length-prefixed frame (header + payload).
std::vector<std::uint8_t> encode_frame(const Frame& f);

/// Attempts to decode one frame from the front of `[p, p+n)`.
///   * complete frame  -> the Frame; *consumed = its full wire size
///   * incomplete      -> nullopt; *consumed = 0 (read more bytes)
///   * corrupt         -> WireError (bad version/type/length/payload)
std::optional<Frame> decode_frame(const std::uint8_t* p, std::size_t n,
                                  std::size_t* consumed);

}  // namespace motif::net
