// Experiment E11 (extension; DESIGN.md §5): interconnect sensitivity.
// Strand ran on "hypercubes, mesh machines, transputer surfaces"
// (Section 2.1), and Cole's skeleton analyses — cited as prior work —
// priced skeletons on a 2-D grid. This bench prices the two
// tree-reduction motifs' message traffic under four interconnects:
// network load = total hop count of all inter-processor messages.
//
// Expected shape: Tree-Reduce-2's labelling (fewer remote messages) beats
// Tree-Reduce-1 on every topology, and the gap widens on low-bisection
// networks (ring > mesh > hypercube > complete), where each remote
// message costs its routing distance.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "motifs/tree.hpp"
#include "motifs/tree_reduce.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

using IntTree = m::Tree<long, char>;

long add(const char&, const long& a, const long& b) { return a + b; }

IntTree::Ptr make_tree(std::size_t leaves) {
  rt::Rng rng(909);
  return m::random_tree<long, char>(
      rng, leaves, [](rt::Rng& r) { return long(r.below(10)); },
      [](rt::Rng&) { return '+'; });
}

rt::Topology topo_of(int code) {
  switch (code) {
    case 0:
      return rt::Topology::Complete;
    case 1:
      return rt::Topology::Hypercube;
    case 2:
      return rt::Topology::Mesh2D;
    default:
      return rt::Topology::Ring;
  }
}

const char* topo_name(int code) {
  switch (code) {
    case 0:
      return "complete";
    case 1:
      return "hypercube";
    case 2:
      return "mesh";
    default:
      return "ring";
  }
}

template <class F>
void run_case(benchmark::State& state, F reduce) {
  const auto procs = static_cast<std::uint32_t>(state.range(0));
  const int topo = static_cast<int>(state.range(1));
  auto tree = make_tree(4096);
  std::uint64_t hops = 0, remote = 0;
  for (auto _ : state) {
    rt::Machine mach({.nodes = procs, .workers = 2, .batch = 64, .seed = 5,
                      .topology = topo_of(topo)});
    benchmark::DoNotOptimize(reduce(mach, tree));
    auto s = mach.load_summary();
    hops = s.total_hops;
    remote = s.remote_msgs;
  }
  state.SetLabel(topo_name(topo));
  state.counters["total_hops"] = static_cast<double>(hops);
  state.counters["remote_msgs"] = static_cast<double>(remote);
  state.counters["hops_per_msg"] =
      remote ? static_cast<double>(hops) / static_cast<double>(remote) : 0;
}

void BM_TR1_Network(benchmark::State& state) {
  run_case(state, [](rt::Machine& mach, const IntTree::Ptr& t) {
    return m::tree_reduce1<long, char>(mach, t, add);
  });
  MOTIF_BENCH_REPORT(state);
}

void BM_TR2_Network(benchmark::State& state) {
  run_case(state, [](rt::Machine& mach, const IntTree::Ptr& t) {
    return m::tree_reduce2<long, char>(mach, t, add);
  });
  MOTIF_BENCH_REPORT(state);
}

void args(benchmark::internal::Benchmark* b) {
  for (int procs : {16, 64}) {
    for (int topo : {0, 1, 2, 3}) {
      b->Args({procs, topo});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_TR1_Network)->Apply(args);
BENCHMARK(BM_TR2_Network)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
