file(REMOVE_RECURSE
  "CMakeFiles/bench_hll_overhead.dir/bench_hll_overhead.cpp.o"
  "CMakeFiles/bench_hll_overhead.dir/bench_hll_overhead.cpp.o.d"
  "bench_hll_overhead"
  "bench_hll_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hll_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
