# Empty dependencies file for runtime_stream_test.
# This may be replaced when dependencies are built.
