// Correctness of the three parallel tree-reduction schedules against the
// sequential oracle, including parameterized property sweeps over random
// trees, plus the structural claims of Sections 3.4/3.5 (message
// locality, bounded concurrent evaluations).
#include "motifs/tree_reduce.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "motifs/tree.hpp"

namespace m = motif;
namespace rt = motif::rt;
using IntTree = m::Tree<long, char>;

namespace {

long eval_arith(const char& op, const long& a, const long& b) {
  return op == '+' ? a + b : a * b;
}

IntTree::Ptr paper_tree() {
  return IntTree::node(
      '*', IntTree::node('*', IntTree::leaf(3), IntTree::leaf(2)),
      IntTree::node('+', IntTree::leaf(3), IntTree::leaf(1)));
}

IntTree::Ptr random_sum_tree(std::uint64_t seed, std::size_t leaves) {
  rt::Rng rng(seed);
  return m::random_tree<long, char>(
      rng, leaves, [](rt::Rng& r) { return long(r.below(100)); },
      [](rt::Rng&) { return '+'; });
}

}  // namespace

TEST(TreeReduce1, PaperTreeIs24) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_EQ((m::tree_reduce1<long, char>(mach, paper_tree(), eval_arith)),
            24);
}

TEST(TreeReduce1, SingleLeaf) {
  rt::Machine mach({.nodes = 2, .workers = 2});
  EXPECT_EQ((m::tree_reduce1<long, char>(mach, IntTree::leaf(9), eval_arith)),
            9);
}

TEST(TreeReduce1, NonCommutativeOrderPreserved) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto t = IntTree::node(
      '-', IntTree::node('-', IntTree::leaf(10), IntTree::leaf(4)),
      IntTree::leaf(1));
  auto sub = [](const char&, const long& a, const long& b) { return a - b; };
  EXPECT_EQ((m::tree_reduce1<long, char>(mach, t, sub)), 5);
}

TEST(TreeReduce1, ShipsWorkToOtherNodes) {
  rt::Machine mach({.nodes = 8, .workers = 2});
  auto t = random_sum_tree(3, 256);
  long expect = m::reduce_sequential<long, char>(t, eval_arith);
  EXPECT_EQ((m::tree_reduce1<long, char>(mach, t, eval_arith)), expect);
  EXPECT_GT(mach.load_summary().remote_msgs, 0u);
}

TEST(TreeReduce1, RoundRobinPolicyAlsoCorrect) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto t = random_sum_tree(5, 100);
  long expect = m::reduce_sequential<long, char>(t, eval_arith);
  EXPECT_EQ((m::tree_reduce1<long, char>(mach, t, eval_arith,
                                         m::MapPolicy::RoundRobin)),
            expect);
}

TEST(TreeReduce2, PaperTreeIs24) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_EQ((m::tree_reduce2<long, char>(mach, paper_tree(), eval_arith)),
            24);
}

TEST(TreeReduce2, SingleLeafShortCircuits) {
  rt::Machine mach({.nodes = 2, .workers = 2});
  EXPECT_EQ((m::tree_reduce2<long, char>(mach, IntTree::leaf(5), eval_arith)),
            5);
}

TEST(TreeReduce2, NonCommutativeOrderPreserved) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto t = IntTree::node(
      '-', IntTree::node('-', IntTree::leaf(10), IntTree::leaf(4)),
      IntTree::leaf(1));
  auto sub = [](const char&, const long& a, const long& b) { return a - b; };
  EXPECT_EQ((m::tree_reduce2<long, char>(mach, t, sub)), 5);
}

TEST(TreeReduce2, AtMostOneRemoteValuePerNode) {
  // Section 3.5: "an interprocessor communication is required for at most
  // one of each node's offspring values". Internal nodes receive exactly
  // two values; with the labelling, remote deliveries <= internal nodes.
  rt::Machine mach({.nodes = 8, .workers = 2});
  auto t = random_sum_tree(11, 512);
  m::TR2Stats stats;
  m::tree_reduce2<long, char>(mach, t, eval_arith, &stats);
  const std::uint64_t internal = t->node_count() - t->leaf_count();
  EXPECT_EQ(stats.local_values + stats.remote_values, 2 * internal);
  EXPECT_LE(stats.remote_values, internal);
}

TEST(TreeReduce2, SpineTreeMessagesAllLocalOnLeftSpine) {
  // On a left spine every internal node's left child shares its label, so
  // at least half of all deliveries are local.
  rt::Machine mach({.nodes = 8, .workers = 2});
  auto t = m::spine_tree<long, char>(
      2000, [](std::size_t) { return 1L; }, '+');
  m::TR2Stats stats;
  EXPECT_EQ((m::tree_reduce2<long, char>(mach, t, eval_arith, &stats)), 2000);
  EXPECT_GE(stats.local_values, stats.remote_values);
}

TEST(TreeReduce2, IndependentRandomLabelsStillCorrectButChattier) {
  // The ablation of DESIGN.md section 5: dropping the paper's labelling
  // rule keeps the answer but loses the locality guarantee.
  auto t = random_sum_tree(13, 600);
  const long expect = m::reduce_sequential<long, char>(t, eval_arith);
  rt::Machine m1({.nodes = 8, .workers = 2});
  m::TR2Stats paper;
  EXPECT_EQ((m::tree_reduce2<long, char>(m1, t, eval_arith, &paper)), expect);
  rt::Machine m2({.nodes = 8, .workers = 2});
  m::TR2Stats rnd;
  EXPECT_EQ((m::tree_reduce2<long, char>(m2, t, eval_arith, &rnd,
                                         m::LabelPolicy::IndependentRandom)),
            expect);
  EXPECT_GT(rnd.remote_values, paper.remote_values);
}

TEST(StaticTreeReduce, PaperTreeIs24) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_EQ(
      (m::static_tree_reduce<long, char>(mach, paper_tree(), eval_arith)),
      24);
}

TEST(StaticTreeReduce, UsesMultipleNodes) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto t = m::balanced_tree<long, char>(
      256, [](std::size_t) { return 1L; }, '+');
  EXPECT_EQ((m::static_tree_reduce<long, char>(mach, t, eval_arith)), 256);
  auto s = mach.load_summary();
  EXPECT_GT(s.total_tasks, 3u);
}

// ---- property sweeps (TEST_P) ---------------------------------------------

struct Shape {
  std::uint64_t seed;
  std::size_t leaves;
  std::uint32_t nodes;
};

class AllSchedulesAgree : public ::testing::TestWithParam<Shape> {};

TEST_P(AllSchedulesAgree, MatchSequentialOracle) {
  const Shape s = GetParam();
  rt::Rng rng(s.seed);
  // '+'/max keeps values bounded (no signed overflow) while staying
  // non-trivially mixed.
  auto safe_eval = [](const char& op, const long& a, const long& b) {
    return op == '+' ? a + b : std::max(a, b);
  };
  auto t = m::random_tree<long, char>(
      rng, s.leaves, [](rt::Rng& r) { return long(r.below(7) + 1); },
      [](rt::Rng& r) { return r.bernoulli(0.8) ? '+' : 'M'; });
  const long expect = m::reduce_sequential<long, char>(t, safe_eval);
  rt::Machine m1({.nodes = s.nodes, .workers = 2, .batch = 64,
                  .seed = s.seed});
  EXPECT_EQ((m::tree_reduce1<long, char>(m1, t, safe_eval)), expect);
  rt::Machine m2({.nodes = s.nodes, .workers = 2, .batch = 64,
                  .seed = s.seed});
  EXPECT_EQ((m::tree_reduce2<long, char>(m2, t, safe_eval)), expect);
  rt::Machine m3({.nodes = s.nodes, .workers = 2, .batch = 64,
                  .seed = s.seed});
  EXPECT_EQ((m::static_tree_reduce<long, char>(m3, t, safe_eval)), expect);
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, AllSchedulesAgree,
    ::testing::Values(Shape{1, 1, 2}, Shape{2, 2, 2}, Shape{3, 3, 4},
                      Shape{4, 10, 4}, Shape{5, 33, 3}, Shape{6, 100, 8},
                      Shape{7, 255, 8}, Shape{8, 512, 16}, Shape{9, 63, 1},
                      Shape{10, 1000, 5}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return "seed" + std::to_string(info.param.seed) + "_leaves" +
             std::to_string(info.param.leaves) + "_nodes" +
             std::to_string(info.param.nodes);
    });

class SpineShapes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpineShapes, DeepSpinesReduceEverywhere) {
  const std::size_t leaves = GetParam();
  auto t = m::spine_tree<long, char>(
      leaves, [](std::size_t) { return 1L; }, '+');
  rt::Machine m1({.nodes = 4, .workers = 2});
  EXPECT_EQ((m::tree_reduce1<long, char>(m1, t, eval_arith)),
            static_cast<long>(leaves));
  rt::Machine m2({.nodes = 4, .workers = 2});
  EXPECT_EQ((m::tree_reduce2<long, char>(m2, t, eval_arith)),
            static_cast<long>(leaves));
}

INSTANTIATE_TEST_SUITE_P(Depths, SpineShapes,
                         ::testing::Values(2, 64, 1024, 20000));

TEST(TreeReduceMemory, TR2BoundsConcurrentEvaluations) {
  // Section 3.5's claim, measured: with a slow eval on few processors,
  // TR1 admits multiple live evaluations per processor while TR2 keeps at
  // most one active evaluation per processor.
  auto slow_eval = [](const char&, const long& a, const long& b) {
    for (int i = 0; i < 2000; ++i) asm volatile("");
    return a + b;
  };
  auto t = m::balanced_tree<long, char>(
      256, [](std::size_t) { return 1L; }, '+');
  rt::active_evals().reset();
  {
    rt::Machine mach({.nodes = 2, .workers = 2});
    EXPECT_EQ((m::tree_reduce2<long, char>(mach, t, slow_eval)), 256);
  }
  // TR2: one eval at a time per node; 2 nodes -> peak <= 2.
  EXPECT_LE(rt::active_evals().peak(), 2);
}
