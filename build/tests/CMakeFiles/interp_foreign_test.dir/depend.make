# Empty dependencies file for interp_foreign_test.
# This may be replaced when dependencies are built.
