// The simulated multicomputer that motifs run on.
//
// A Machine owns N virtual *nodes* — the "processors" of the paper — and W
// OS worker threads that execute them. Each node is a sequential executor:
// its tasks run in FIFO order, one at a time, while distinct nodes run
// concurrently. This is exactly Strand's model (one reduction engine per
// processor, many lightweight processes), and it is what Tree-Reduce-2
// relies on when it requires that "at each processor, computation is
// sequenced so that only a single node evaluation is active at any given
// time" (Section 3.5).
//
// N may exceed W: nodes are virtual processors multiplexed over the worker
// pool, so experiments can sweep |Nodes| on a laptop. A post from node a to
// node b != a is counted as a remote (inter-processor) message.
//
// Tasks must not block on data: they synchronise through SVar / Stream
// continuations, re-posting work when values arrive (CP.4, CP.42).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/metrics.hpp"
#include "runtime/rng.hpp"
#include "runtime/svar.hpp"
#include "runtime/trace.hpp"

namespace motif::rt {

using NodeId = std::uint32_t;
using Task = std::function<void()>;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Interconnect shape of the simulated multicomputer. The paper's Strand
/// ran "on shared-memory computers, hypercubes, mesh machines, transputer
/// surfaces"; the topology determines how many hops a remote message
/// travels (counted in the per-node metrics — messages are still
/// delivered directly; only the accounting differs).
enum class Topology {
  Complete,   ///< fully connected: every remote message is 1 hop
  Ring,       ///< nodes on a cycle; distance = ring distance
  Mesh2D,     ///< near-square grid; distance = Manhattan
  Hypercube,  ///< distance = Hamming distance of node ids
};

struct MachineConfig {
  std::uint32_t nodes = 4;    ///< number of virtual processors
  std::uint32_t workers = 0;  ///< OS threads; 0 = min(nodes, hw concurrency)
  std::uint32_t batch = 64;   ///< max tasks drained from a node per visit
  std::uint64_t seed = 0x5EEDF00Dull;
  Topology topology = Topology::Complete;
  std::size_t trace_capacity = 8192;  ///< trace events retained per node
};

class Machine {
 public:
  explicit Machine(MachineConfig cfg = {});

  /// Waits for quiescence, then stops and joins the workers.
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  std::uint32_t node_count() const { return static_cast<std::uint32_t>(nodes_.size()); }
  std::uint32_t worker_count() const { return static_cast<std::uint32_t>(workers_.size()); }

  /// Schedules `t` on node `n` (FIFO, sequential per node).
  void post(NodeId n, Task t);

  /// Schedules on the calling task's node; falls back to node 0 when
  /// called from outside the machine.
  void post_local(Task t);

  /// Node executing the current task, or kNoNode outside the machine.
  static NodeId current_node();

  /// A uniformly random node id, drawn from the current node's RNG when on
  /// a machine thread (deterministic per node), else from a seeded
  /// external RNG guarded by a mutex.
  NodeId random_node();

  /// Per-node deterministic generator. Only the node's own tasks should
  /// draw from it.
  Rng& rng(NodeId n) { return nodes_[n]->rng; }

  /// Convenience: post `f(value)` to node `n` once `v` is bound.
  template <class T, class F>
  void post_when(SVar<T> v, NodeId n, F f) {
    v.when_bound([this, n, f = std::move(f)](const T& value) mutable {
      // Copy the value into the task: data moves between nodes by value
      // (CP.31), as on a real multicomputer.
      post(n, [f = std::move(f), value]() mutable { f(value); });
    });
  }

  /// Blocks until no task is pending or running, then rethrows the first
  /// exception any task threw (if any).
  void wait_idle();

  const NodeCounters& counters(NodeId n) const { return nodes_[n]->counters; }
  LoadSummary load_summary() const;
  void reset_counters();

  /// Records `units` of virtual work against the current node (node 0 when
  /// called externally). Experiments use per-node work totals to compute a
  /// virtual makespan that is independent of host core count.
  void add_work(std::uint64_t units) {
    const NodeId n = current_node() == kNoNode ? 0 : current_node();
    nodes_[n]->counters.work.fetch_add(units, std::memory_order_relaxed);
  }

  /// Maximum queue depth observed across nodes (scheduling pressure probe).
  std::uint64_t peak_queue_depth() const {
    return peak_queue_.load(std::memory_order_relaxed);
  }

  Topology topology() const { return topology_; }

  /// True when the runtime was built with MOTIF_TRACING=1; when false the
  /// trace methods below are no-ops and TRACE_SPAN compiles away.
  static constexpr bool trace_compiled = MOTIF_TRACING != 0;

  /// Begins recording trace events (one timeline per virtual node). Call
  /// while the machine is idle; clears any previously recorded events.
  /// No-op when tracing is compiled out or already started.
  void start_trace();

  /// Stops recording; already-recorded events remain until drain_trace().
  void stop_trace();

  /// True while events are being recorded.
  bool tracing() const;

  /// Stops the trace and returns every node's timeline (oldest event
  /// first, plus per-node dropped-event counts). Call while idle. The
  /// machine can be traced again afterwards with start_trace().
  TraceLog drain_trace();

  /// Message distance between two nodes under the configured topology
  /// (0 for a == b; 1 for any remote pair on Complete).
  std::uint32_t hop_distance(NodeId a, NodeId b) const;

 private:
  /// Queue entry: the task plus (when tracing is compiled in) the message
  /// identity that lets the tracer pair a remote send with its delivery.
  struct QueuedTask {
    Task fn;
#if MOTIF_TRACING
    std::uint64_t trace_msg = 0;  // nonzero: traced remote message id
    NodeId from = kNoNode;
    std::uint32_t hops = 0;
#endif
  };

  struct Node {
    std::mutex m;
    std::deque<QueuedTask> q;
    bool scheduled = false;  // present in the ready list or being drained
    Rng rng;
    NodeCounters counters;
    explicit Node(std::uint64_t seed) : rng(seed) {}
  };

  void enqueue_ready(NodeId n);
  void worker_loop();
  void run_node(NodeId n);

  std::vector<std::unique_ptr<Node>> nodes_;
  std::uint32_t batch_;

  std::mutex ready_m_;
  std::condition_variable ready_cv_;
  std::deque<NodeId> ready_;
  bool stopping_ = false;

  std::atomic<std::uint64_t> pending_{0};
  std::mutex idle_m_;
  std::condition_variable idle_cv_;

  std::mutex error_m_;
  std::exception_ptr first_error_;

  std::mutex ext_rng_m_;
  Rng ext_rng_;

  Topology topology_;
  std::uint32_t mesh_cols_ = 1;

  std::atomic<std::uint64_t> peak_queue_{0};

#if MOTIF_TRACING
  // Created in the constructor (immutable pointer: workers may read it
  // without synchronisation); recording is toggled by start/stop_trace.
  std::unique_ptr<Tracer> tracer_;
#endif

  std::vector<std::thread> workers_;
};

}  // namespace motif::rt
