# Empty dependencies file for align_profile_test.
# This may be replaced when dependencies are built.
