// Invariant tests for the lock-free scheduling core (DESIGN.md §10).
//
// The rebuilt core (Vyukov mailboxes + Chase-Lev deques + eventcount)
// must preserve the old mutex core's observable contract exactly:
//   - per-node FIFO delivery (per producer),
//   - at most one task of a node active at any instant,
//   - replayable fault ordinals under a fixed seed,
//   - wait_idle / shutdown / peak-queue semantics.
// These are property-style stress tests: N posts ≫ W workers, many
// producers, run under TSAN via the `machine` ctest label.

#include "runtime/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string_view>
#include <thread>
#include <vector>

#include "runtime/svar.hpp"

namespace rt = motif::rt;

namespace {

// --- per-node FIFO + single activation under load --------------------------

TEST(SchedCore, FifoAndSingleActivationUnderManyProducers) {
  constexpr std::uint32_t kNodes = 8;
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 4000;  // N ≫ W

  rt::Machine m({.nodes = kNodes, .workers = 4});

  // One slot per (node, producer): the producer's last sequence number
  // observed by that node. FIFO per producer means it only ever
  // increments by exactly one.
  struct Slot {
    std::atomic<std::uint64_t> last{0};
  };
  std::vector<Slot> slots(kNodes * kProducers);
  std::vector<std::atomic<int>> active(kNodes);   // single-activation probe
  std::atomic<std::uint64_t> fifo_violations{0};
  std::atomic<std::uint64_t> overlap_violations{0};
  std::atomic<std::uint64_t> executed{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t seq = 1; seq <= kPerProducer; ++seq) {
        const auto node = static_cast<rt::NodeId>(seq % kNodes);
        m.post(node, [&, p, node, seq] {
          if (active[node].fetch_add(1, std::memory_order_acq_rel) != 0) {
            overlap_violations.fetch_add(1, std::memory_order_relaxed);
          }
          auto& last = slots[node * kProducers + p].last;
          const std::uint64_t prev =
              last.load(std::memory_order_relaxed);
          // This producer posts seq = node, node+kNodes, ... to `node`,
          // so FIFO per producer means prev is the previous seq in that
          // arithmetic progression (or 0 for the first).
          if (prev != 0 && prev + kNodes != seq) {
            fifo_violations.fetch_add(1, std::memory_order_relaxed);
          }
          if (prev == 0 && seq >= kNodes && seq != node + kNodes &&
              seq != node) {
            fifo_violations.fetch_add(1, std::memory_order_relaxed);
          }
          last.store(seq, std::memory_order_relaxed);
          executed.fetch_add(1, std::memory_order_relaxed);
          active[node].fetch_sub(1, std::memory_order_acq_rel);
        });
      }
    });
  }
  for (auto& t : producers) t.join();
  m.wait_idle();

  EXPECT_EQ(fifo_violations.load(), 0u);
  EXPECT_EQ(overlap_violations.load(), 0u);
  EXPECT_EQ(executed.load(), kPerProducer * kProducers);

  // The machine's own accounting agrees with ground truth.
  std::uint64_t counted = 0;
  for (rt::NodeId n = 0; n < kNodes; ++n) {
    counted += m.counters(n).tasks.load(std::memory_order_relaxed);
  }
  EXPECT_EQ(counted, kPerProducer * kProducers);
}

TEST(SchedCore, FifoHoldsAcrossWorkerHandoffChains) {
  // A hot post-run-post chain between two nodes exercises the release
  // protocol, the direct-handoff slot, and re-arm continue; the per-node
  // order must still be exactly the post order.
  rt::Machine m({.nodes = 2, .workers = 4});
  constexpr int kHops = 20000;
  std::atomic<int> hops{0};
  std::atomic<int> order_violations{0};
  rt::SVar<bool> done;
  struct Hop {
    rt::Machine* m;
    std::atomic<int>* hops;
    std::atomic<int>* bad;
    rt::SVar<bool>* done;
    int expect;
    void operator()() {
      const int h = hops->fetch_add(1, std::memory_order_acq_rel);
      if (h != expect) bad->fetch_add(1, std::memory_order_relaxed);
      if (h + 1 >= kHops) {
        done->bind(true);
        return;
      }
      m->post(static_cast<rt::NodeId>((h + 1) & 1),
              Hop{m, hops, bad, done, h + 1});
    }
  };
  m.post(0, Hop{&m, &hops, &order_violations, &done, 0});
  m.wait_idle();
  EXPECT_TRUE(done.get());
  EXPECT_EQ(order_violations.load(), 0);
  EXPECT_EQ(hops.load(), kHops);
}

// --- fault-seed replay ------------------------------------------------------

// Deterministic fault scenario: ping-pong pairs where a single token
// bounces A→B→A…, so each sender's cross-post ordinals are a pure
// function of the chain — independent of worker interleaving. drop,
// delay, throw and kill are all safe here; `duplicate` is NOT (a dup
// forks the chain into two concurrently-running halves, making later
// ordinals schedule-dependent), so dups get their own one-directional
// test below.
rt::FaultTotals run_pingpong(std::uint64_t seed) {
  rt::FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.05;
  plan.delay = 0.10;
  plan.throws.push_back({1, 7});
  plan.kills.push_back({3, 40});
  rt::Machine m({.nodes = 4, .workers = 4, .seed = 77, .faults = plan});

  struct Bounce {
    rt::Machine* m;
    rt::NodeId self, peer;
    int remaining;
    void operator()() const {
      if (remaining <= 0) return;
      m->post(peer, Bounce{m, peer, self, remaining - 1});
    }
  };
  // Two independent pairs: 0↔1 and 2↔3.
  m.post(0, Bounce{&m, 0, 1, 200});
  m.post(2, Bounce{&m, 2, 3, 200});
  m.wait_idle_for(std::chrono::seconds(60));
  return m.fault_totals();
}

TEST(SchedCore, FaultSeedReplayIsBitIdentical) {
  const auto a = run_pingpong(0xFEEDBEEF);
  const auto b = run_pingpong(0xFEEDBEEF);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.dead_drops, b.dead_drops);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.kills, b.kills);
  EXPECT_EQ(a.throws, b.throws);
  EXPECT_GT(a.total(), 0u);  // the scenario actually injected something
  // The lottery is genuinely seed-driven: over 1000 ordinals, two seeds
  // must disagree somewhere (checked on the pure function, where the
  // result does not depend on how early a fault ends the ping-pong).
  rt::FaultPlan p1, p2;
  p1.drop = p2.drop = 0.05;
  p1.seed = 0xFEEDBEEF;
  p2.seed = 0xABAD1DEA;
  bool differs = false;
  for (std::uint64_t nth = 1; nth <= 1000 && !differs; ++nth) {
    differs = p1.post_fault(0, nth) != p2.post_fault(0, nth);
  }
  EXPECT_TRUE(differs);
}

TEST(SchedCore, DuplicateOrdinalsReplayOnOneDirectionalChain) {
  // A→B only, driven by a single sequential chain on A, B never posts:
  // A's ordinals are 1..N regardless of scheduling, so the dup lottery
  // replays exactly.
  auto run = [](std::uint64_t seed) {
    rt::FaultPlan plan;
    plan.seed = seed;
    plan.duplicate = 0.10;
    rt::Machine m({.nodes = 2, .workers = 4, .faults = plan});
    struct Send {
      rt::Machine* m;
      int remaining;
      void operator()() const {
        m->post(1, [] {});
        if (remaining > 1) m->post(0, Send{m, remaining - 1});
      }
    };
    m.post(0, Send{&m, 300});
    m.wait_idle();
    return m.fault_totals().duplicates;
  };
  const auto a = run(42);
  EXPECT_EQ(a, run(42));
  EXPECT_GT(a, 0u);
}

// --- shutdown ---------------------------------------------------------------

TEST(SchedCore, ConcurrentShutdownIsIdempotent) {
  for (int round = 0; round < 20; ++round) {
    rt::Machine m({.nodes = 4, .workers = 4});
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i) {
      m.post(static_cast<rt::NodeId>(i % 4), [&] {
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    std::vector<std::thread> killers;
    for (int i = 0; i < 4; ++i) {
      killers.emplace_back([&] { m.shutdown(); });
    }
    for (auto& t : killers) t.join();
    // shutdown drains before stopping: nothing already accepted is lost.
    EXPECT_EQ(ran.load(), 200);
    // Post-shutdown posts are discarded, not enqueued, and counted.
    m.post(0, [&] { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 200);
    EXPECT_GE(m.discarded_posts(), 1u);
    m.shutdown();  // explicit second call: still a no-op
  }
}

// --- instrumentation --------------------------------------------------------

TEST(SchedCore, PeakQueueDepthIsOptIn) {
  {
    rt::Machine m({.nodes = 2, .workers = 2});  // probe off (default)
    for (int i = 0; i < 500; ++i) m.post(0, [] {});
    m.wait_idle();
    EXPECT_EQ(m.peak_queue_depth(), 0u);  // stays zero: no probe cost paid
  }
  {
    rt::Machine m(
        {.nodes = 2, .workers = 2, .probe_queue_depth = true});
    for (int i = 0; i < 500; ++i) m.post(0, [] {});
    m.wait_idle();
    EXPECT_GT(m.peak_queue_depth(), 0u);
  }
}

TEST(SchedCore, SchedStatsCountFastPathHits) {
  rt::Machine m({.nodes = 2, .workers = 2});
  // A burst at one node from outside: nearly every post after the first
  // finds the node already scheduled — the mailbox fast path.
  std::atomic<int> ran{0};
  for (int i = 0; i < 2000; ++i) {
    m.post(0, [&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  m.wait_idle();
  EXPECT_EQ(ran.load(), 2000);
  const auto s = m.sched_stats();
  EXPECT_GT(s.mailbox_fast_hits, 0u);
  m.reset_counters();
  EXPECT_EQ(m.sched_stats().mailbox_fast_hits, 0u);
}

#if MOTIF_TRACING
TEST(SchedCore, TraceSchedCounterEventsOnWorkerTracks) {
  rt::Machine m({.nodes = 4,
                 .workers = 2,
                 .trace_sched_counters = true});
  m.start_trace();
  // Worker-side cross-posts to one hot node: after the first delivery,
  // node 0 is almost always already scheduled, so the posting WORKERS
  // rack up mailbox fast-path hits (the counter the trace samples).
  std::atomic<int> ran{0};
  for (int i = 0; i < 400; ++i) {
    m.post(static_cast<rt::NodeId>(1 + i % 3), [&] {
      m.post(0, [&] { ran.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  m.wait_idle();
  m.stop_trace();
  const auto log = m.drain_trace();
  // 4 node tracks + 2 worker tracks.
  ASSERT_EQ(log.tracks.size(), 6u);
  std::size_t counter_events = 0;
  bool saw_fast_hits = false;
  for (std::size_t t = 4; t < log.tracks.size(); ++t) {
    for (const auto& e : log.tracks[t].events) {
      if (e.kind == rt::TraceEventKind::Counter) {
        ++counter_events;
        if (std::string_view(e.name) == "mailbox_fast_hits") {
          saw_fast_hits = true;
        }
      }
    }
  }
  EXPECT_EQ(ran.load(), 400);
  EXPECT_GT(counter_events, 0u);
  EXPECT_TRUE(saw_fast_hits);
}
#endif

}  // namespace
