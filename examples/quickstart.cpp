// Quickstart: reduce the paper's arithmetic expression tree — the example
// of Section 3.1, (3*2)*(3+1) = 24 — with each tree-reduction motif.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "motifs/motifs.hpp"

using IntTree = motif::Tree<long, char>;

namespace {
long eval(const char& op, const long& a, const long& b) {
  return op == '+' ? a + b : a * b;
}
}  // namespace

int main() {
  // The expression tree of Section 3.1.
  auto tree = IntTree::node(
      '*', IntTree::node('*', IntTree::leaf(3), IntTree::leaf(2)),
      IntTree::node('+', IntTree::leaf(3), IntTree::leaf(1)));

  // A simulated 4-processor machine.
  motif::rt::Machine machine({.nodes = 4, .workers = 2});

  const long seq = motif::reduce_sequential<long, char>(tree, eval);
  std::printf("sequential oracle        : %ld\n", seq);

  const long tr1 = motif::tree_reduce1<long, char>(machine, tree, eval);
  std::printf("Tree-Reduce-1 (random)   : %ld\n", tr1);

  const long tr2 = motif::tree_reduce2<long, char>(machine, tree, eval);
  std::printf("Tree-Reduce-2 (labelled) : %ld\n", tr2);

  const long st = motif::static_tree_reduce<long, char>(machine, tree, eval);
  std::printf("static partition         : %ld\n", st);

  // A bigger reduction: sum of 1..100000 over a balanced tree, with the
  // load summary showing work shipped across the virtual processors.
  auto big = motif::balanced_tree<long, char>(
      100000, [](std::size_t i) { return static_cast<long>(i + 1); }, '+');
  machine.reset_counters();
  const long sum = motif::tree_reduce1<long, char>(machine, big, eval);
  auto load = machine.load_summary();
  std::printf("sum 1..100000            : %ld (expected %ld)\n", sum,
              100000L * 100001 / 2);
  std::printf("tasks=%llu remote_msgs=%llu imbalance=%.2f\n",
              static_cast<unsigned long long>(load.total_tasks),
              static_cast<unsigned long long>(load.remote_msgs),
              load.imbalance);
  return (seq == 24 && tr1 == 24 && tr2 == 24 && st == 24) ? 0 : 1;
}
