# Empty dependencies file for runtime_termination_test.
# This may be replaced when dependencies are built.
