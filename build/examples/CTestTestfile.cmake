# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_strand_motifs "/root/repo/build/examples/strand_motifs")
set_tests_properties(example_strand_motifs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nqueens "/root/repo/build/examples/nqueens_search" "7")
set_tests_properties(example_nqueens PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_grid "/root/repo/build/examples/heat_grid" "17" "33")
set_tests_properties(example_heat_grid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_task_farm "/root/repo/build/examples/task_farm" "4")
set_tests_properties(example_task_farm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_msa_pipeline "/root/repo/build/examples/msa_pipeline" "12" "120")
set_tests_properties(example_msa_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
