file(REMOVE_RECURSE
  "CMakeFiles/motifs_pipeline_for_test.dir/motifs_pipeline_for_test.cpp.o"
  "CMakeFiles/motifs_pipeline_for_test.dir/motifs_pipeline_for_test.cpp.o.d"
  "motifs_pipeline_for_test"
  "motifs_pipeline_for_test.pdb"
  "motifs_pipeline_for_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifs_pipeline_for_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
