#include "term/term.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace t = motif::term;
using t::Term;

TEST(Term, DefaultIsNil) {
  Term x;
  EXPECT_TRUE(x.is_nil());
}

TEST(Term, AtomBasics) {
  Term a = Term::atom("foo");
  EXPECT_TRUE(a.is_atom());
  EXPECT_EQ(a.functor(), "foo");
  EXPECT_EQ(a.arity(), 0u);
  EXPECT_TRUE(a.ground());
}

TEST(Term, Numbers) {
  Term i = Term::integer(-7);
  Term f = Term::real(2.5);
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(f.is_float());
  EXPECT_TRUE(i.is_number());
  EXPECT_EQ(i.int_value(), -7);
  EXPECT_DOUBLE_EQ(f.float_value(), 2.5);
  EXPECT_DOUBLE_EQ(i.as_double(), -7.0);
  EXPECT_THROW(f.int_value(), std::logic_error);
}

TEST(Term, Strings) {
  Term s = Term::str("hello");
  EXPECT_TRUE(s.is_str());
  EXPECT_EQ(s.str_value(), "hello");
}

TEST(Term, CompoundAccess) {
  Term c = Term::compound("f", {Term::integer(1), Term::atom("a")});
  EXPECT_TRUE(c.is_compound());
  EXPECT_EQ(c.functor(), "f");
  EXPECT_EQ(c.arity(), 2u);
  EXPECT_EQ(c.arg(0).int_value(), 1);
  EXPECT_EQ(c.arg(1).functor(), "a");
  EXPECT_THROW(c.arg(2), std::out_of_range);
}

TEST(Term, CompoundWithNoArgsIsAtom) {
  Term c = Term::compound("f", {});
  EXPECT_TRUE(c.is_atom());
}

TEST(Term, ListsAndProperList) {
  Term l = Term::list({Term::integer(1), Term::integer(2), Term::integer(3)});
  EXPECT_TRUE(l.is_cons());
  auto xs = l.proper_list();
  ASSERT_TRUE(xs.has_value());
  ASSERT_EQ(xs->size(), 3u);
  EXPECT_EQ((*xs)[0].int_value(), 1);
  EXPECT_EQ((*xs)[2].int_value(), 3);
}

TEST(Term, ImproperListDetected) {
  Term v = Term::var("T");
  Term l = Term::list({Term::integer(1)}, v);
  EXPECT_FALSE(l.proper_list().has_value());
}

TEST(Term, TupleBasics) {
  Term tp = Term::tuple({Term::atom("a"), Term::integer(2)});
  EXPECT_TRUE(tp.is_tuple());
  EXPECT_EQ(tp.arity(), 2u);
  EXPECT_FALSE(tp.is_cons());
}

TEST(Term, VarBindAndDeref) {
  Term v = Term::var("X");
  EXPECT_TRUE(v.is_var());
  EXPECT_FALSE(v.bound());
  v.bind(Term::integer(5));
  EXPECT_TRUE(v.bound());
  EXPECT_EQ(v.deref().int_value(), 5);
  EXPECT_EQ(v.int_value(), 5);  // accessors deref
}

TEST(Term, DoubleBindThrows) {
  Term v = Term::var("X");
  v.bind(Term::integer(1));
  EXPECT_THROW(v.bind(Term::integer(2)), t::BindError);
}

TEST(Term, BindNonVarThrows) {
  Term a = Term::atom("a");
  EXPECT_THROW(a.bind(Term::integer(1)), t::BindError);
}

TEST(Term, VarVarAliasing) {
  Term x = Term::var("X"), y = Term::var("Y");
  x.bind(y);
  EXPECT_FALSE(x.bound());  // still a variable after deref
  y.bind(Term::atom("done"));
  EXPECT_TRUE(x.bound());
  EXPECT_EQ(x.functor(), "done");
}

TEST(Term, SelfAliasIsNoop) {
  Term x = Term::var("X"), y = Term::var("Y");
  x.bind(y);
  y.bind(x);  // X and Y alias; binding Y to X's representative is a no-op
  EXPECT_FALSE(x.bound());
  x.bind(Term::integer(3));
  EXPECT_EQ(y.int_value(), 3);
}

TEST(Term, LongAliasChainDerefs) {
  Term first = Term::var("V0");
  Term cur = first;
  for (int i = 1; i < 100; ++i) {
    Term next = Term::var("V" + std::to_string(i));
    cur.bind(next);
    cur = next;
  }
  cur.bind(Term::integer(42));
  EXPECT_EQ(first.int_value(), 42);
}

TEST(Term, WhenBoundFires) {
  Term v = Term::var("X");
  int fired = 0;
  v.when_bound([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  v.bind(Term::atom("go"));
  EXPECT_EQ(fired, 1);
  v.when_bound([&] { ++fired; });  // already bound: inline
  EXPECT_EQ(fired, 2);
}

TEST(Term, WhenBoundOnNonVarFiresInline) {
  Term a = Term::atom("a");
  int fired = 0;
  a.when_bound([&] { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(Term, EqualsStructural) {
  Term a = Term::compound("f", {Term::integer(1), Term::atom("x")});
  Term b = Term::compound("f", {Term::integer(1), Term::atom("x")});
  EXPECT_TRUE(a == b);
  Term c = Term::compound("f", {Term::integer(2), Term::atom("x")});
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == Term::atom("f"));
}

TEST(Term, EqualsSeesThroughBindings) {
  Term v = Term::var("X");
  Term a = Term::compound("f", {v});
  v.bind(Term::integer(9));
  EXPECT_TRUE(a == Term::compound("f", {Term::integer(9)}));
}

TEST(Term, UnboundVarsEqualOnlySameCell) {
  Term x = Term::var("X"), y = Term::var("X");
  EXPECT_TRUE(x == x);
  EXPECT_FALSE(x == y);
}

TEST(Term, GroundAndVariables) {
  Term x = Term::var("X"), y = Term::var("Y");
  Term c = Term::compound("f", {x, Term::tuple({y, x})});
  EXPECT_FALSE(c.ground());
  auto vars = c.variables();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_TRUE(vars[0].same_node(x.deref()));
  EXPECT_TRUE(vars[1].same_node(y.deref()));
  x.bind(Term::integer(1));
  y.bind(Term::integer(2));
  EXPECT_TRUE(c.ground());
  EXPECT_TRUE(c.variables().empty());
}

TEST(Term, ToStringShapes) {
  EXPECT_EQ(Term::atom("foo").to_string(), "foo");
  EXPECT_EQ(Term::atom("Foo").to_string(), "'Foo'");
  EXPECT_EQ(Term::atom("hello world").to_string(), "'hello world'");
  EXPECT_EQ(Term::atom("+").to_string(), "+");
  EXPECT_EQ(Term::integer(42).to_string(), "42");
  EXPECT_EQ(Term::real(1.5).to_string(), "1.5");
  EXPECT_EQ(Term::str("hi").to_string(), "\"hi\"");
  EXPECT_EQ(Term::nil().to_string(), "[]");
  EXPECT_EQ(
      Term::list({Term::integer(1), Term::integer(2)}).to_string(), "[1,2]");
  Term v = Term::var("Tail");
  EXPECT_EQ(Term::list({Term::integer(1)}, v).to_string(), "[1|Tail]");
  EXPECT_EQ(Term::tuple({Term::atom("a"), Term::atom("b")}).to_string(),
            "{a,b}");
  EXPECT_EQ(
      Term::compound("f", {Term::atom("a"), Term::var("X")}).to_string(),
      "f(a,X)");
}

TEST(Term, FloatToStringReparsesAsFloat) {
  EXPECT_EQ(Term::real(2.0).to_string(), "2.0");
}

TEST(Term, ConcurrentWhenBoundAndBind) {
  for (int round = 0; round < 20; ++round) {
    Term v = Term::var("X");
    std::atomic<int> fired{0};
    std::thread waiter([&] {
      for (int i = 0; i < 50; ++i) {
        v.when_bound([&] { fired.fetch_add(1); });
      }
    });
    std::thread binder([&] { v.bind(Term::integer(1)); });
    waiter.join();
    binder.join();
    EXPECT_EQ(fired.load(), 50);
  }
}
