// Unit tests for the motiflint analyzer (src/analysis): one seeded
// negative per diagnostic class, the precision polarity (escapes are
// possible producers but never definite writers), span/rule attribution,
// and the mode-inference fixpoint itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/lint.hpp"
#include "term/program.hpp"

namespace an = motif::analysis;
using an::Code;
using an::Severity;
using motif::term::ProcKey;
using motif::term::Program;

namespace {

an::Report lint(const std::string& src, an::Options opts = {}) {
  return an::analyze(Program::parse(src), opts);
}

std::size_t count_code(const an::Report& r, Code c) {
  return static_cast<std::size_t>(
      std::count_if(r.diagnostics.begin(), r.diagnostics.end(),
                    [&](const an::Diagnostic& d) { return d.code == c; }));
}

const an::Diagnostic* find_code(const an::Report& r, Code c) {
  for (const auto& d : r.diagnostics) {
    if (d.code == c) return &d;
  }
  return nullptr;
}

}  // namespace

TEST(Lint, CleanProducerConsumerIsClean) {
  auto r = lint(
      "go(N) :- producer(N,Xs), consumer(Xs).\n"
      "producer(0,Xs) :- Xs := [].\n"
      "producer(N,Xs) :- N > 0 |"
      " Xs := [N|Xs1], N1 is N - 1, producer(N1,Xs1).\n"
      "consumer([]).\n"
      "consumer([X|Xs]) :- data(X) | consumer(Xs).\n");
  EXPECT_TRUE(r.clean()) << r.to_string();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.errors(), 0u);
  EXPECT_EQ(r.warnings(), 0u);
}

TEST(Lint, MultipleDefiniteWriters) {
  auto r = lint("twice(X) :- X := 1, X := 2.\n");
  const auto* d = find_code(r, Code::MultipleWriters);
  ASSERT_NE(d, nullptr) << r.to_string();
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->definition, (ProcKey{"twice", 1}));
  EXPECT_NE(d->message.find("X"), std::string::npos);
  EXPECT_FALSE(r.ok());
}

TEST(Lint, DefiniteWriterPlusCalleeWriter) {
  auto r = lint(
      "p(X) :- X := 1, q(X).\n"
      "q(Y) :- Y := 2.\n");
  EXPECT_EQ(count_code(r, Code::MultipleWriters), 1u) << r.to_string();
}

TEST(Lint, TwoCalleeWritersAreNotFlagged) {
  // Deliberate imprecision: threaded-state positions (e.g. the solution
  // cell in tree_reduce2) look like several callee writers of which at
  // most one fires. Flag only combinations with a definite local writer.
  auto r = lint(
      "p(V) :- q(V), q(V).\n"
      "q(X) :- X := 1.\n");
  EXPECT_EQ(count_code(r, Code::MultipleWriters), 0u) << r.to_string();
}

TEST(Lint, AliasRhsIsEscapeNotWrite) {
  // X1 := Y and X2 := Y both read Y (the RHS is data, not an arithmetic
  // expression); this must not count as two writers of Y.
  auto r = lint("p(X1,X2,Y) :- X1 := Y, X2 := Y.\n");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Lint, NoProducerForConsumedVariable) {
  // length/2 needs its first argument bound; nothing can ever bind Xs.
  auto r = lint(
      "hang(N) :- length(Xs,M), N := M, sink(Xs).\n"
      "sink(_).\n");
  const auto* d = find_code(r, Code::NoProducer);
  ASSERT_NE(d, nullptr) << r.to_string();
  EXPECT_NE(d->message.find("Xs"), std::string::npos);
}

TEST(Lint, EscapedVariableCountsAsProducible) {
  // Xs escapes into make(Xs) whose definition binds it: no ML002.
  auto r = lint(
      "go(N) :- make(Xs), length(Xs,N).\n"
      "make(Xs) :- Xs := [a,b].\n");
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Lint, GuardVariableNotInHead) {
  // Guards run before the body: a body binding cannot wake this guard.
  auto r = lint(
      "guardy(X) :- Y > 0 | use(X,Y).\n"
      "use(_,_).\n");
  const auto* d = find_code(r, Code::GuardUnbindable);
  ASSERT_NE(d, nullptr) << r.to_string();
  EXPECT_NE(d->message.find("Y"), std::string::npos);
}

TEST(Lint, UnknownProcess) {
  auto r = lint("caller :- missing(1).\n");
  const auto* d = find_code(r, Code::UnknownProcess);
  ASSERT_NE(d, nullptr) << r.to_string();
  EXPECT_NE(d->message.find("missing/1"), std::string::npos);
}

TEST(Lint, AssumeDefinedSuppressesUnknownProcess) {
  an::Options opts;
  opts.assume_defined.push_back({"missing", 1});
  auto r = lint("caller :- missing(1).\n", opts);
  EXPECT_EQ(count_code(r, Code::UnknownProcess), 0u) << r.to_string();
}

TEST(Lint, ArityMismatch) {
  auto r = lint(
      "wrong :- use(1,2).\n"
      "use(_).\n");
  const auto* d = find_code(r, Code::ArityMismatch);
  ASSERT_NE(d, nullptr) << r.to_string();
  EXPECT_EQ(count_code(r, Code::UnknownProcess), 0u);
}

TEST(Lint, BuiltinRedefined) {
  auto r = lint("length(X,Y) :- Y := X.\n");
  EXPECT_NE(find_code(r, Code::BuiltinRedefined), nullptr) << r.to_string();
}

TEST(Lint, UnreachableRuleSubsumedByEarlier) {
  auto r = lint(
      "dup(a).\n"
      "dup(X) :- use(X).\n"
      "dup(b) :- use(b).\n"
      "use(_).\n");
  const auto* d = find_code(r, Code::UnreachableRule);
  ASSERT_NE(d, nullptr) << r.to_string();
  EXPECT_EQ(d->definition, (ProcKey{"dup", 1}));
  EXPECT_EQ(d->rule_index, 2u);
  EXPECT_EQ(d->clause_index, 2u);
}

TEST(Lint, GuardedEarlierRuleDoesNotSubsume) {
  // Rule 1 can fail its guard at run time, so rule 2 stays reachable.
  auto r = lint(
      "p(X) :- X > 0 | use(X).\n"
      "p(X) :- use(X).\n"
      "use(_).\n");
  EXPECT_EQ(count_code(r, Code::UnreachableRule), 0u) << r.to_string();
}

TEST(Lint, RepeatedHeadVariableDoesNotSubsume) {
  // take(X,X) only matches equal arguments; take(X,Y) is still reachable.
  auto r = lint(
      "take(X,X) :- use(X).\n"
      "take(X,Y) :- use(X), use(Y).\n"
      "use(_).\n");
  EXPECT_EQ(count_code(r, Code::UnreachableRule), 0u) << r.to_string();
}

TEST(Lint, UnreachableProcessWithEntries) {
  an::Options opts;
  opts.entries.push_back({"main", 0});
  auto r = lint(
      "main :- p.\n"
      "p.\n"
      "orphan :- p.\n",
      opts);
  const auto* d = find_code(r, Code::UnreachableProcess);
  ASSERT_NE(d, nullptr) << r.to_string();
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->definition, (ProcKey{"orphan", 0}));
  EXPECT_TRUE(r.ok());  // warnings only
}

TEST(Lint, ReachabilitySkippedWithoutEntries) {
  auto r = lint(
      "main :- p.\n"
      "p.\n"
      "orphan :- p.\n");
  EXPECT_EQ(count_code(r, Code::UnreachableProcess), 0u) << r.to_string();
}

TEST(Lint, UndefinedEntryIsAnError) {
  an::Options opts;
  opts.entries.push_back({"main", 2});
  auto r = lint("p.\n", opts);
  EXPECT_NE(find_code(r, Code::UnknownProcess), nullptr) << r.to_string();
}

TEST(Lint, OtherwiseMustLeadTheGuard) {
  auto r = lint(
      "p(X) :- X > 0, otherwise | use(X).\n"
      "use(_).\n");
  const auto* d = find_code(r, Code::OtherwisePosition);
  ASSERT_NE(d, nullptr) << r.to_string();
  EXPECT_EQ(d->severity, Severity::Warning);
}

TEST(Lint, SingletonVariableWarning) {
  auto r = lint("lonely(X).\n");
  const auto* d = find_code(r, Code::SingletonVariable);
  ASSERT_NE(d, nullptr) << r.to_string();
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_NE(d->message.find("X"), std::string::npos);
}

TEST(Lint, UnderscorePrefixSuppressesSingleton) {
  auto r = lint("lonely(_X).\n");
  EXPECT_EQ(count_code(r, Code::SingletonVariable), 0u) << r.to_string();
}

TEST(Lint, SingletonsOptionDisablesWarning) {
  an::Options opts;
  opts.singletons = false;
  auto r = lint("lonely(X).\n", opts);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Lint, BadPlacementAtomTarget) {
  auto r = lint(
      "placed :- use(1)@foo.\n"
      "use(_).\n");
  EXPECT_NE(find_code(r, Code::BadPlacement), nullptr) << r.to_string();
}

TEST(Lint, GoodPlacementForms) {
  auto r = lint(
      "p(N,X) :- use(1)@N, use(2)@random, use(3)@task,"
      " use(4)@2, use(5)@(N mod 4), sink(X,N).\n"
      "use(_).\n"
      "sink(_,_).\n");
  EXPECT_EQ(count_code(r, Code::BadPlacement), 0u) << r.to_string();
}

TEST(Lint, PlacementNestedInArgument) {
  auto r = lint(
      "p :- use(q@1).\n"
      "use(_).\n"
      "q.\n");
  EXPECT_NE(find_code(r, Code::BadPlacement), nullptr) << r.to_string();
}

TEST(Lint, UnknownGuardTest) {
  auto r = lint(
      "p(X) :- frob(X) | use(X).\n"
      "use(_).\n");
  EXPECT_NE(find_code(r, Code::UnknownGuard), nullptr) << r.to_string();
}

TEST(Lint, SpanPointsAtTheClause) {
  auto r = an::analyze(Program::parse(
      "ok(X) :- X := 1.\n"
      "twice(X) :- X := 1, X := 2.\n"));
  const auto* d = find_code(r, Code::MultipleWriters);
  ASSERT_NE(d, nullptr) << r.to_string();
  ASSERT_TRUE(d->span.valid());
  EXPECT_EQ(d->span.line, 2);
  EXPECT_EQ(d->span.col, 1);
  EXPECT_GE(d->span.end_line, 2);
}

TEST(Lint, DiagnosticToStringFormat) {
  auto r = lint("twice(X) :- X := 1, X := 2.\n");
  const auto* d = find_code(r, Code::MultipleWriters);
  ASSERT_NE(d, nullptr);
  const std::string s = d->to_string();
  EXPECT_NE(s.find("ML001"), std::string::npos) << s;
  EXPECT_NE(s.find("error"), std::string::npos) << s;
  EXPECT_NE(s.find("twice/1"), std::string::npos) << s;
}

TEST(Lint, CodeIdsAndSlugsAreStable) {
  EXPECT_STREQ(an::code_id(Code::MultipleWriters), "ML001");
  EXPECT_STREQ(an::code_id(Code::NoProducer), "ML002");
  EXPECT_STREQ(an::code_id(Code::UnknownProcess), "ML010");
  EXPECT_STREQ(an::code_id(Code::UnreachableRule), "ML020");
  EXPECT_STREQ(an::code_id(Code::SingletonVariable), "ML031");
  EXPECT_STREQ(an::code_id(Code::BadPlacement), "ML040");
  EXPECT_STREQ(an::code_slug(Code::MultipleWriters), "multiple-writers");
  EXPECT_STREQ(an::code_slug(Code::NoProducer), "no-producer");
}

TEST(Lint, ReportOrderFollowsTheProgram) {
  auto r = lint(
      "twice(X) :- X := 1, X := 2.\n"
      "caller :- missing(1).\n");
  ASSERT_GE(r.diagnostics.size(), 2u);
  for (std::size_t i = 1; i < r.diagnostics.size(); ++i) {
    EXPECT_LE(r.diagnostics[i - 1].clause_index,
              r.diagnostics[i].clause_index);
  }
}

TEST(InferModes, DirectAndTransitiveWrites) {
  auto table = an::infer_modes(Program::parse(
      "p(X,Y) :- X := 1, q(Y).\n"
      "q(Z) :- Z := 2.\n"));
  const auto& p = table.at({"p", 2});
  ASSERT_EQ(p.writes.size(), 2u);
  EXPECT_TRUE(p.writes[0]);
  EXPECT_TRUE(p.writes[1]);  // via q/1
  EXPECT_TRUE(p.may_bind[0]);
  EXPECT_TRUE(p.may_bind[1]);
}

TEST(InferModes, NeedsFromHeadPatternAndGuard) {
  auto table = an::infer_modes(Program::parse(
      "f(leaf(N),V) :- V := N.\n"
      "g(X,Y) :- X > 0 | Y := X.\n"));
  const auto& f = table.at({"f", 2});
  EXPECT_TRUE(f.needs[0]);   // head pattern leaf(N)
  EXPECT_FALSE(f.needs[1]);
  const auto& g = table.at({"g", 2});
  EXPECT_TRUE(g.needs[0]);   // guard consumes X
  EXPECT_TRUE(g.writes[1]);
}

TEST(InferModes, EscapeIsMayBindButNotWrite) {
  auto table = an::infer_modes(Program::parse(
      "wrap(X,Y) :- Y := box(X).\n"));
  const auto& w = table.at({"wrap", 2});
  EXPECT_FALSE(w.writes[0]);
  EXPECT_TRUE(w.may_bind[0]);  // escapes into the box
  EXPECT_TRUE(w.writes[1]);
}

// --- ML060 unsupervised-remote-post (opt-in) -------------------------------

TEST(Lint, Ml060FlagsBareRemotePost) {
  an::Options opts;
  opts.supervision = true;
  opts.singletons = false;
  const auto r = lint(
      "main(T,V) :- reduce(T,V)@random.\n"
      "reduce(_,_).\n",
      opts);
  ASSERT_EQ(count_code(r, Code::UnsupervisedRemotePost), 1u);
  const auto* d = find_code(r, Code::UnsupervisedRemotePost);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->definition.to_string(), "main/2");
  EXPECT_TRUE(r.ok());  // a warning, not an error
}

TEST(Lint, Ml060AcceptsSupervisedAndTimeoutWrappers) {
  an::Options opts;
  opts.supervision = true;
  opts.singletons = false;
  const auto r = lint(
      "safe(T,V) :- supervised(reduce(T,V)@random).\n"
      "bounded(T,V) :- timeout(reduce(T,V)@2, 100).\n"
      "reduce(_,_).\n",
      opts);
  EXPECT_EQ(count_code(r, Code::UnsupervisedRemotePost), 0u);
  // The wrapper legalises the inner placement: no ML040 either.
  EXPECT_EQ(count_code(r, Code::BadPlacement), 0u);
  EXPECT_TRUE(r.clean());
}

TEST(Lint, Ml060OffByDefault) {
  an::Options opts;
  opts.singletons = false;
  const auto r = lint(
      "main(T,V) :- reduce(T,V)@random.\n"
      "reduce(_,_).\n",
      opts);
  EXPECT_EQ(count_code(r, Code::UnsupervisedRemotePost), 0u);
  EXPECT_TRUE(r.clean());
}

TEST(Lint, Ml060LocalGoalsAreNotFlagged) {
  an::Options opts;
  opts.supervision = true;
  opts.singletons = false;
  const auto r = lint(
      "main(V) :- helper(V).\n"
      "helper(V) :- V := 1.\n",
      opts);
  EXPECT_EQ(count_code(r, Code::UnsupervisedRemotePost), 0u);
}

TEST(Lint, Ml060CodeAndSlugAreStable) {
  EXPECT_STREQ(an::code_id(Code::UnsupervisedRemotePost), "ML060");
  EXPECT_STREQ(an::code_slug(Code::UnsupervisedRemotePost),
               "unsupervised-remote-post");
}
