file(REMOVE_RECURSE
  "CMakeFiles/term_program_test.dir/term_program_test.cpp.o"
  "CMakeFiles/term_program_test.dir/term_program_test.cpp.o.d"
  "term_program_test"
  "term_program_test.pdb"
  "term_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
