#include "term/subst.hpp"

namespace motif::term {

bool match(const Term& pattern, const Term& value, Bindings& b) {
  Term p = pattern.deref();
  Term v = value.deref();
  if (p.is_var()) {
    auto it = b.find(p);
    if (it != b.end()) return it->second.equals(v) || it->second.same_node(v);
    b.emplace(p, v);
    return true;
  }
  if (v.is_var()) return false;  // value vars only match pattern vars
  if (p.tag() != v.tag()) return false;
  switch (p.tag()) {
    case Tag::Atom:
      return p.functor() == v.functor();
    case Tag::Int:
      return p.int_value() == v.int_value();
    case Tag::Float:
      return p.float_value() == v.float_value();
    case Tag::Str:
      return p.str_value() == v.str_value();
    case Tag::Compound: {
      if (p.functor() != v.functor() || p.arity() != v.arity()) return false;
      for (std::size_t i = 0; i < p.arity(); ++i) {
        if (!match(p.arg(i), v.arg(i), b)) return false;
      }
      return true;
    }
    case Tag::Var:
      return false;  // unreachable
  }
  return false;
}

Term substitute(const Term& t, const Bindings& b) {
  Term d = t.deref();
  if (d.is_var()) {
    auto it = b.find(d);
    if (it == b.end()) return d;
    // Replacements may themselves contain mapped variables (e.g. built
    // incrementally); substitute through once.
    return it->second.same_node(d) ? d : substitute(it->second, b);
  }
  if (!d.is_compound()) return d;
  bool changed = false;
  std::vector<Term> args;
  args.reserve(d.arity());
  for (const auto& a : d.args()) {
    Term na = substitute(a, b);
    changed |= !na.same_node(a);
    args.push_back(std::move(na));
  }
  if (!changed) return d;
  return Term::compound(d.functor(), std::move(args));
}

Term rename_fresh(const Term& t, Bindings& mapping) {
  Term d = t.deref();
  if (d.is_var()) {
    auto it = mapping.find(d);
    if (it != mapping.end()) return it->second;
    Term fresh = Term::var(d.var_name());
    mapping.emplace(d, fresh);
    return fresh;
  }
  if (!d.is_compound()) return d;
  std::vector<Term> args;
  args.reserve(d.arity());
  for (const auto& a : d.args()) args.push_back(rename_fresh(a, mapping));
  return Term::compound(d.functor(), std::move(args));
}

Term rewrite(const Term& t,
             const std::function<std::optional<Term>(const Term&)>& f) {
  Term d = t.deref();
  Term candidate = d;
  if (d.is_compound()) {
    bool changed = false;
    std::vector<Term> args;
    args.reserve(d.arity());
    for (const auto& a : d.args()) {
      Term na = rewrite(a, f);
      changed |= !na.same_node(a);
      args.push_back(std::move(na));
    }
    if (changed) candidate = Term::compound(d.functor(), std::move(args));
  }
  if (auto r = f(candidate)) return *r;
  return candidate;
}

bool contains(const Term& t, const std::function<bool(const Term&)>& pred) {
  Term d = t.deref();
  if (pred(d)) return true;
  if (!d.is_compound()) return false;
  for (const auto& a : d.args()) {
    if (contains(a, pred)) return true;
  }
  return false;
}

bool alpha_equal(const Term& a, const Term& b, Bindings& va, Bindings& vb) {
  Term x = a.deref(), y = b.deref();
  if (x.is_var() || y.is_var()) {
    if (!x.is_var() || !y.is_var()) return false;
    auto ia = va.find(x);
    auto ib = vb.find(y);
    if (ia == va.end() && ib == vb.end()) {
      va.emplace(x, y);
      vb.emplace(y, x);
      return true;
    }
    if (ia == va.end() || ib == vb.end()) return false;
    return ia->second.same_node(y) && ib->second.same_node(x);
  }
  if (x.tag() != y.tag()) return false;
  switch (x.tag()) {
    case Tag::Atom:
      return x.functor() == y.functor();
    case Tag::Int:
      return x.int_value() == y.int_value();
    case Tag::Float:
      return x.float_value() == y.float_value();
    case Tag::Str:
      return x.str_value() == y.str_value();
    case Tag::Compound: {
      if (x.functor() != y.functor() || x.arity() != y.arity()) return false;
      for (std::size_t i = 0; i < x.arity(); ++i) {
        if (!alpha_equal(x.arg(i), y.arg(i), va, vb)) return false;
      }
      return true;
    }
    case Tag::Var:
      return false;  // unreachable
  }
  return false;
}

bool alpha_equal(const Term& a, const Term& b) {
  Bindings va, vb;
  return alpha_equal(a, b, va, vb);
}

}  // namespace motif::term
