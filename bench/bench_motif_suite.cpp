// Experiment E8 (DESIGN.md §4): the future-work motif areas of Section 4
// — "search, sorting, grid problems, divide and conquer, and various
// graph theory problems" — each behaving as a motif should: one scaling
// series per area over the simulated machine.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <cmath>
#include <numeric>

#include "align/nw.hpp"
#include "align/sequence.hpp"
#include "motifs/motifs.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

// ---- search: n-queens -------------------------------------------------------

struct Queens {
  int n;
  std::vector<int> cols;
  bool ok(int c) const {
    const int r = static_cast<int>(cols.size());
    for (int i = 0; i < r; ++i) {
      if (cols[i] == c || std::abs(cols[i] - c) == r - i) return false;
    }
    return true;
  }
};

std::vector<Queens> expand(const Queens& q) {
  std::vector<Queens> out;
  if (static_cast<int>(q.cols.size()) == q.n) return out;
  for (int c = 0; c < q.n; ++c) {
    if (q.ok(c)) {
      Queens next = q;
      next.cols.push_back(c);
      out.push_back(std::move(next));
    }
  }
  return out;
}

void BM_SearchQueens(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t count = 0;
  for (auto _ : state) {
    rt::Machine mach({.nodes = 8, .workers = 2, .seed = 31});
    count = m::count_solutions<Queens>(
        mach, Queens{n, {}}, expand,
        [n](const Queens& q) { return static_cast<int>(q.cols.size()) == n; },
        3);
    benchmark::DoNotOptimize(count);
  }
  state.counters["solutions"] = static_cast<double>(count);
  MOTIF_BENCH_REPORT(state);
}

// ---- sorting ---------------------------------------------------------------

void BM_SortMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rt::Rng rng(41);
  std::vector<int> data(n);
  for (auto& x : data) x = static_cast<int>(rng.below(1u << 30));
  for (auto _ : state) {
    rt::Machine mach({.nodes = 8, .workers = 2});
    auto out = m::parallel_merge_sort(mach, data, 4096);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  MOTIF_BENCH_REPORT(state);
}

void BM_SortSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rt::Rng rng(43);
  std::vector<int> data(n);
  for (auto& x : data) x = static_cast<int>(rng.below(1u << 30));
  for (auto _ : state) {
    rt::Machine mach({.nodes = 8, .workers = 2});
    auto out = m::parallel_sample_sort(mach, data);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  MOTIF_BENCH_REPORT(state);
}

// ---- grid ------------------------------------------------------------------

void BM_GridJacobi(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    rt::Machine mach({.nodes = 8, .workers = 2});
    m::Grid2D g(side, side, 0.0);
    for (std::size_t c = 0; c < side; ++c) g.at(0, c) = 100.0;
    m::JacobiOptions opts;
    opts.max_iters = 200;
    opts.tolerance = 0.0;
    auto res = m::jacobi_solve(mach, g, opts);
    benchmark::DoNotOptimize(res.residual);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(side * side * 200));
  MOTIF_BENCH_REPORT(state);
}

// ---- divide and conquer -------------------------------------------------------

void BM_DnCFib(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::Machine mach({.nodes = 8, .workers = 2, .seed = 47});
    auto fib = m::divide_and_conquer<int, long>(
        mach, n, [](const int& k) { return k < 2; },
        [](int k) { return static_cast<long>(k); },
        [](const int& k) { return std::vector<int>{k - 1, k - 2}; },
        [](const int&, std::vector<long> rs) { return rs[0] + rs[1]; });
    benchmark::DoNotOptimize(fib);
  }
  MOTIF_BENCH_REPORT(state);
}

// ---- graph -----------------------------------------------------------------

void BM_GraphBfs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rt::Rng rng(53);
  auto g = m::Graph::random_gnp(n, 8.0 / static_cast<double>(n), rng);
  for (auto _ : state) {
    rt::Machine mach({.nodes = 8, .workers = 2});
    auto d = m::parallel_bfs(mach, g, 0);
    benchmark::DoNotOptimize(d);
  }
  state.counters["edges"] = static_cast<double>(g.edge_count());
  MOTIF_BENCH_REPORT(state);
}

// ---- scan ------------------------------------------------------------------

void BM_ScanPrefixSum(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rt::Rng rng(59);
  std::vector<std::uint64_t> base(n);
  for (auto& x : base) x = rng.below(1000);
  for (auto _ : state) {
    rt::Machine mach({.nodes = 8, .workers = 2});
    auto v = base;
    m::parallel_inclusive_scan(
        mach, v, [](std::uint64_t a, std::uint64_t b) { return a + b; });
    benchmark::DoNotOptimize(v.back());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  MOTIF_BENCH_REPORT(state);
}

// ---- wavefront (the case-study kernel as a grid client) ---------------------

void BM_WavefrontNW(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  rt::Rng rng(61);
  auto a = motif::align::random_sequence(rng, len);
  auto b = motif::align::evolve(a, 4.0, {}, rng);
  for (auto _ : state) {
    rt::Machine mach({.nodes = 8, .workers = 2});
    benchmark::DoNotOptimize(motif::align::nw_score_wavefront(mach, a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(len * len));
  MOTIF_BENCH_REPORT(state);
}

}  // namespace

BENCHMARK(BM_SearchQueens)->Arg(8)->Arg(9)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SortMerge)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_SortSample)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_GridJacobi)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_DnCFib)->Arg(16)->Arg(20)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_GraphBfs)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_ScanPrefixSum)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_WavefrontNW)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
