file(REMOVE_RECURSE
  "CMakeFiles/motifs_server_test.dir/motifs_server_test.cpp.o"
  "CMakeFiles/motifs_server_test.dir/motifs_server_test.cpp.o.d"
  "motifs_server_test"
  "motifs_server_test.pdb"
  "motifs_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifs_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
