// Property fuzzing of the term layer: randomly generated terms and
// clauses survive format -> parse -> format round trips (alpha-equal), the
// binary wire codec round-trips the same corpus and rejects (never
// crashes on) truncated or bit-flipped bytes, and the transformation
// pipeline never produces unparseable output.
#include <gtest/gtest.h>

#include <string>

#include "net/wire.hpp"
#include "runtime/rng.hpp"
#include "term/parser.hpp"
#include "term/program.hpp"
#include "term/subst.hpp"
#include "term/writer.hpp"
#include "transform/motif.hpp"
#include "transform/rand.hpp"
#include "transform/server.hpp"
#include "transform/terminate.hpp"

namespace t = motif::term;
namespace rt = motif::rt;
namespace tf = motif::transform;
using t::Term;

namespace {

/// Random term generator covering every Tag and printer edge case
/// (quoted atoms, negative numbers, improper lists, nested tuples).
Term random_term(rt::Rng& rng, int depth, std::vector<Term>& vars) {
  const int kind = static_cast<int>(rng.below(depth <= 0 ? 6 : 9));
  switch (kind) {
    case 0:
      return Term::integer(rng.range(-1000, 1000));
    case 1:
      return Term::real(static_cast<double>(rng.range(-50, 50)) + 0.5);
    case 2: {
      static const char* kAtoms[] = {"a",  "foo", "Bar atom", "+",
                                     "[]", "don't", "x1_y"};
      return Term::atom(kAtoms[rng.below(7)]);
    }
    case 3:
      return Term::str(rng.bernoulli(0.5) ? "plain" : "q\"uo\\te");
    case 4: {
      // Reuse a variable sometimes (sharing), else make a fresh one.
      if (!vars.empty() && rng.bernoulli(0.5)) {
        return vars[rng.below(vars.size())];
      }
      Term v = Term::var("V" + std::to_string(vars.size()));
      vars.push_back(v);
      return v;
    }
    case 5:
      return Term::nil();
    case 6: {  // list, possibly improper
      std::vector<Term> items;
      const std::size_t n = 1 + rng.below(3);
      for (std::size_t i = 0; i < n; ++i) {
        items.push_back(random_term(rng, depth - 1, vars));
      }
      Term tail = Term::nil();
      if (rng.bernoulli(0.3)) {
        Term v = Term::var("T" + std::to_string(vars.size()));
        vars.push_back(v);
        tail = v;
      }
      return Term::list(std::move(items), tail);
    }
    case 7: {  // tuple
      std::vector<Term> items;
      const std::size_t n = rng.below(4);
      for (std::size_t i = 0; i < n; ++i) {
        items.push_back(random_term(rng, depth - 1, vars));
      }
      return Term::tuple(std::move(items));
    }
    default: {  // compound
      static const char* kFun[] = {"f", "tree", "leaf", "node2"};
      std::vector<Term> args;
      const std::size_t n = 1 + rng.below(3);
      for (std::size_t i = 0; i < n; ++i) {
        args.push_back(random_term(rng, depth - 1, vars));
      }
      return Term::compound(kFun[rng.below(4)], std::move(args));
    }
  }
}

}  // namespace

class TermFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TermFuzz, FormatParseRoundTrip) {
  rt::Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    std::vector<Term> vars;
    Term x = random_term(rng, 4, vars);
    const std::string s = t::format_term(x);
    Term y = t::parse_term(s);
    EXPECT_TRUE(t::alpha_equal(x, y))
        << "seed=" << GetParam() << " round=" << round << "\n  " << s
        << "\n  vs " << t::format_term(y);
  }
}

TEST_P(TermFuzz, ClauseRoundTrip) {
  rt::Rng rng(GetParam() ^ 0xC1A05Eull);
  for (int round = 0; round < 100; ++round) {
    std::vector<Term> vars;
    // Head must be a plain compound.
    std::vector<Term> hargs;
    const std::size_t n = 1 + rng.below(3);
    for (std::size_t i = 0; i < n; ++i) {
      hargs.push_back(random_term(rng, 2, vars));
    }
    t::Clause c;
    c.head = Term::compound("p", std::move(hargs));
    const std::size_t goals = 1 + rng.below(3);
    for (std::size_t i = 0; i < goals; ++i) {
      std::vector<Term> gargs{random_term(rng, 2, vars)};
      c.body.push_back(Term::compound("g" + std::to_string(i), gargs));
    }
    const std::string s = t::format_clause(c);
    auto parsed = t::parse_clauses(s);
    ASSERT_EQ(parsed.size(), 1u) << s;
    EXPECT_TRUE(t::alpha_equal_clause(c, parsed[0])) << s;
  }
}

TEST_P(TermFuzz, WireEncodeDecodeRoundTrip) {
  namespace net = motif::net;
  rt::Rng rng(GetParam() ^ 0x3173ull);
  for (int round = 0; round < 200; ++round) {
    std::vector<Term> vars;
    Term x = random_term(rng, 4, vars);
    const auto b = net::term_bytes(x);
    Term y = net::term_from_bytes(b.data(), b.size());
    EXPECT_TRUE(t::alpha_equal(x, y))
        << "seed=" << GetParam() << " round=" << round << "\n  "
        << t::format_term(x) << "\n  vs " << t::format_term(y);
  }
}

TEST_P(TermFuzz, WireTruncationAlwaysRejected) {
  namespace net = motif::net;
  rt::Rng rng(GetParam() ^ 0x7249ull);
  for (int round = 0; round < 50; ++round) {
    std::vector<Term> vars;
    const auto b = net::term_bytes(random_term(rng, 4, vars));
    // Every strict prefix must throw WireError — a short buffer can never
    // silently decode to some other term or read out of bounds.
    for (std::size_t cut = 0; cut < b.size(); ++cut) {
      EXPECT_THROW(net::term_from_bytes(b.data(), cut), net::WireError)
          << "seed=" << GetParam() << " round=" << round << " cut=" << cut;
    }
  }
}

TEST_P(TermFuzz, WireCorruptionNeverCrashes) {
  namespace net = motif::net;
  rt::Rng rng(GetParam() ^ 0xF11Bull);
  for (int round = 0; round < 100; ++round) {
    std::vector<Term> vars;
    auto b = net::term_bytes(random_term(rng, 4, vars));
    // Flip one random byte: the decoder must either produce some term or
    // throw WireError — nothing else (no hang, no huge allocation, no UB;
    // count fields are validated against the bytes actually remaining).
    const std::size_t at = rng.below(b.size());
    b[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      (void)net::term_from_bytes(b.data(), b.size());
    } catch (const net::WireError&) {
      // rejected: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PipelineFuzz, TransformOutputsAlwaysReparse) {
  // Random small applications through Server ∘ Rand ∘ Terminate: output
  // must re-parse and stay alpha-equivalent.
  rt::Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    std::string src;
    const int defs = 1 + static_cast<int>(rng.below(4));
    for (int d = 0; d < defs; ++d) {
      const std::string name = "p" + std::to_string(d);
      src += name + "(0).\n";
      src += name + "(N) :- N > 0 | N1 is N - 1, ";
      if (rng.bernoulli(0.5)) {
        src += "p" + std::to_string(rng.below(defs)) + "(N1)@random.\n";
      } else {
        src += name + "(N1).\n";
      }
    }
    t::Program a = t::Program::parse(src);
    t::Program out =
        tf::compose_all({tf::server_motif(), tf::rand_motif(),
                         tf::terminate_motif({"p0", 1})})
            .apply(a);
    t::Program back = t::Program::parse(out.to_source());
    EXPECT_TRUE(back.alpha_equivalent(out)) << out.to_source();
  }
}
