file(REMOVE_RECURSE
  "CMakeFiles/interp_figures_test.dir/interp_figures_test.cpp.o"
  "CMakeFiles/interp_figures_test.dir/interp_figures_test.cpp.o.d"
  "interp_figures_test"
  "interp_figures_test.pdb"
  "interp_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
