// The Rand motif (Section 3.3): supports the @random process-placement
// pragma. Defined by an EMPTY library and a transformation that
//
//  1. replaces each call "P@random" with the sequence
//         nodes(N), rand_num(N,O), send(O,P)
//     (a message representing the process P goes to a randomly selected
//     server), and
//  2. augments the program with a server/1 definition containing one rule
//     per @random-annotated process type (plus any caller-supplied entry
//     message types, i.e. "the process used to initiate execution of the
//     application"), and a rule for the halt message:
//         server([p(V1,...,Vn)|In]) :- p(V1,...,Vn), server(In).
//         server([halt|_]).
//
// The output is in the form required by the Server motif; the composition
// Random = Server ∘ Rand yields an executable program (Figure 5).
//
// As the paper notes, Rand provides no termination detection: after the
// application's result is produced, the servers remain waiting for
// messages. terminating_driver() (below) is the optional extension it
// sketches — a driver that waits for a result variable and then halts.
#pragma once

#include <vector>

#include "term/program.hpp"
#include "transform/motif.hpp"

namespace motif::transform {

/// Builds the Rand motif. `entry_message_types` lists process types that
/// may arrive as initial messages (beyond the @random-annotated types,
/// which are discovered automatically).
Motif rand_motif(std::vector<term::ProcKey> entry_message_types = {});

/// Keys of all @random-annotated goals in `a`, in first-occurrence order.
std::vector<term::ProcKey> annotated_random_types(const term::Program& a);

/// The optional termination-detection driver: run(EntryGoal-with-Result)
/// is inconvenient to generate generically, so this returns the two-clause
/// program
///     <name>(T,V) :- <entry>(T,V), <name>_wait(V).
///     <name>_wait(V) :- data(V) | halt.
/// for a 2-argument entry whose second argument is the result.
term::Program terminating_driver(const std::string& name,
                                 const std::string& entry);

}  // namespace motif::transform
