#include "motifs/tree.hpp"

#include <gtest/gtest.h>

namespace m = motif;
using IntTree = m::Tree<long, char>;

namespace {
long eval_arith(const char& op, const long& a, const long& b) {
  return op == '+' ? a + b : a * b;
}

IntTree::Ptr paper_tree() {
  // (3*2) * (3+1) = 24.
  return IntTree::node(
      '*', IntTree::node('*', IntTree::leaf(3), IntTree::leaf(2)),
      IntTree::node('+', IntTree::leaf(3), IntTree::leaf(1)));
}
}  // namespace

TEST(Tree, LeafBasics) {
  auto l = IntTree::leaf(7);
  EXPECT_TRUE(l->is_leaf());
  EXPECT_EQ(l->value(), 7);
  EXPECT_EQ(l->leaf_count(), 1u);
  EXPECT_EQ(l->node_count(), 1u);
  EXPECT_EQ(l->height(), 0u);
}

TEST(Tree, NodeCounts) {
  auto t = paper_tree();
  EXPECT_FALSE(t->is_leaf());
  EXPECT_EQ(t->tag(), '*');
  EXPECT_EQ(t->leaf_count(), 4u);
  EXPECT_EQ(t->node_count(), 7u);
  EXPECT_EQ(t->height(), 2u);
}

TEST(Tree, SequentialReducePaperValue) {
  EXPECT_EQ((m::reduce_sequential<long, char>(paper_tree(), eval_arith)), 24);
}

TEST(Tree, SequentialReduceRespectsOrder) {
  // Non-commutative eval: subtraction; ((10-4)-1) = 5, not ((1-4)-10).
  auto t = IntTree::node(
      '-', IntTree::node('-', IntTree::leaf(10), IntTree::leaf(4)),
      IntTree::leaf(1));
  auto sub = [](const char&, const long& a, const long& b) { return a - b; };
  EXPECT_EQ((m::reduce_sequential<long, char>(t, sub)), 5);
}

TEST(Tree, BalancedTreeShape) {
  auto t = m::balanced_tree<long, char>(
      64, [](std::size_t i) { return static_cast<long>(i); }, '+');
  EXPECT_EQ(t->leaf_count(), 64u);
  EXPECT_EQ(t->height(), 6u);
  EXPECT_EQ((m::reduce_sequential<long, char>(t, eval_arith)), 64 * 63 / 2);
}

TEST(Tree, SpineTreeShapeAndDeepDestruction) {
  auto t = m::spine_tree<long, char>(
      100000, [](std::size_t) { return 1L; }, '+');
  EXPECT_EQ(t->leaf_count(), 100000u);
  EXPECT_EQ(t->height(), 99999u);
  EXPECT_EQ((m::reduce_sequential<long, char>(t, eval_arith)), 100000);
  t.reset();  // must not overflow the stack
}

TEST(Tree, RandomTreeHasRequestedLeaves) {
  motif::rt::Rng rng(42);
  for (std::size_t n : {1u, 2u, 17u, 256u}) {
    auto t = m::random_tree<long, char>(
        rng, n, [](motif::rt::Rng& r) { return long(r.below(10)); },
        [](motif::rt::Rng& r) { return r.bernoulli(0.5) ? '+' : '*'; });
    EXPECT_EQ(t->leaf_count(), n);
    if (n > 1) {
      EXPECT_EQ(t->node_count(), 2 * n - 1);
    }
  }
}

TEST(Tree, RandomTreeDeterministicPerSeed) {
  auto build = [](std::uint64_t seed) {
    motif::rt::Rng rng(seed);
    auto t = m::random_tree<long, char>(
        rng, 64, [](motif::rt::Rng& r) { return long(r.below(5) + 1); },
        [](motif::rt::Rng&) { return '+'; });
    return m::reduce_sequential<long, char>(t, eval_arith);
  };
  EXPECT_EQ(build(7), build(7));
}

TEST(Tree, WalkVisitsEveryNode) {
  auto t = paper_tree();
  int leaves = 0, internals = 0;
  t->walk([&](const IntTree& n) { (n.is_leaf() ? leaves : internals)++; });
  EXPECT_EQ(leaves, 4);
  EXPECT_EQ(internals, 3);
}
