// Figure F1 (DESIGN.md §4): the producer/consumer program of Figure 1 —
// message rate of the synchronously-coupled pair, in three realisations:
//   * the verbatim high-level program on the interpreter
//   * Strand-style streams (stream.hpp) between two OS threads
//   * the native channel pipeline motif (capacity 1 = the sync ack)
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <optional>
#include <thread>

#include "interp/interp.hpp"
#include "motifs/pipeline.hpp"
#include "runtime/stream.hpp"

namespace in = motif::interp;
namespace rt = motif::rt;

namespace {

void BM_InterpFigure1(benchmark::State& state) {
  const auto n = static_cast<long>(state.range(0));
  auto program = motif::term::Program::parse(R"(
    go(N) :- producer(N,Xs,sync), consumer(Xs).
    producer(N,Xs,sync) :- N > 0 |
        Xs := [X|Xs1], N1 is N - 1, producer(N1,Xs1,X).
    producer(0,Xs,_) :- Xs := [].
    consumer([X|Xs]) :- X := sync, consumer(Xs).
    consumer([]).
  )");
  for (auto _ : state) {
    in::InterpOptions opts;
    opts.nodes = 2;
    opts.workers = 2;
    in::Interp interp(program, opts);
    auto [goal, r] = interp.run_query("go(" + std::to_string(n) + ")");
    if (r.deadlocked()) state.SkipWithError("deadlock");
    benchmark::DoNotOptimize(r.reductions);
  }
  state.SetItemsProcessed(state.iterations() * n);
  MOTIF_BENCH_REPORT(state);
}

void BM_StreamProducerConsumer(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    rt::Stream<int> head;
    std::thread producer([head, n]() mutable {
      rt::Stream<int> t = head;
      for (int i = 0; i < n; ++i) t = t.push(i);
      t.close();
    });
    long sum = 0;
    rt::Stream<int> cur = head;
    while (auto nx = cur.next_blocking()) {
      sum += nx->first;
      cur = nx->second;
    }
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
  MOTIF_BENCH_REPORT(state);
}

void BM_ChannelPipeline(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    motif::Pipeline<int> p(1);  // capacity 1: the Figure 1 sync coupling
    int next = 0;
    long sum = 0;
    p.source([&]() -> std::optional<int> {
       if (next >= n) return std::nullopt;
       return next++;
     }).sink([&](int v) { sum += v; });
    p.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
  MOTIF_BENCH_REPORT(state);
}

}  // namespace

BENCHMARK(BM_InterpFigure1)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)->MinTime(0.02);
BENCHMARK(BM_StreamProducerConsumer)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond)->MinTime(0.02);
BENCHMARK(BM_ChannelPipeline)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMillisecond)->MinTime(0.02);

BENCHMARK_MAIN();
