#include "align/sequence.hpp"

#include <algorithm>

namespace motif::align {

int symbol_index(char c) {
  switch (c) {
    case 'A':
      return 0;
    case 'C':
      return 1;
    case 'G':
      return 2;
    case 'U':
      return 3;
    case kGap:
      return 4;
    default:
      return -1;
  }
}

bool valid_rna(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    int i = symbol_index(c);
    return i >= 0 && i < kAlphabetSize;
  });
}

std::string random_sequence(rt::Rng& rng, std::size_t n) {
  std::string s(n, 'A');
  for (auto& c : s) c = kAlphabet[rng.below(kAlphabetSize)];
  return s;
}

std::string evolve(const std::string& parent, double t,
                   const MutationModel& model, rt::Rng& rng) {
  const double p_sub = std::min(0.75, model.substitution_rate * t);
  const double p_ins = std::min(0.25, model.insertion_rate * t);
  const double p_del = std::min(0.25, model.deletion_rate * t);
  std::string out;
  out.reserve(parent.size() + 8);
  for (char c : parent) {
    if (rng.bernoulli(p_del)) {
      const std::size_t run = 1 + rng.below(model.max_indel);
      // Deleting a run means skipping this and the next run-1 sites; we
      // approximate by dropping just this site `run` times probability-
      // weighted — simplest is dropping this one site.
      (void)run;
      continue;
    }
    if (rng.bernoulli(p_sub)) {
      char n;
      do {
        n = kAlphabet[rng.below(kAlphabetSize)];
      } while (n == c);
      out.push_back(n);
    } else {
      out.push_back(c);
    }
    if (rng.bernoulli(p_ins)) {
      const std::size_t run = 1 + rng.below(model.max_indel);
      for (std::size_t k = 0; k < run; ++k) {
        out.push_back(kAlphabet[rng.below(kAlphabetSize)]);
      }
    }
  }
  if (out.empty()) out.push_back(kAlphabet[rng.below(kAlphabetSize)]);
  return out;
}

double identity(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  std::size_t same = 0;
  for (std::size_t i = 0; i < n; ++i) same += (a[i] == b[i]);
  return static_cast<double>(same) / static_cast<double>(n);
}

}  // namespace motif::align
