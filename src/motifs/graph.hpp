// Graph-problem motif (paper Section 4: "various graph theory problems").
//
// Graph is a CSR adjacency structure with generators; parallel_bfs is a
// level-synchronous breadth-first search: each level's frontier is split
// across processors, discovered vertices are claimed with an atomic CAS
// on their distance, and a join barrier advances the level. The user
// gets distances; connected_components iterates BFS from unvisited
// vertices.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/rng.hpp"

namespace motif {

class Graph {
 public:
  /// Builds from an edge list over vertices 0..n-1 (undirected if
  /// `undirected`, the default).
  static Graph from_edges(std::size_t n,
                          const std::vector<std::pair<std::uint32_t,
                                                      std::uint32_t>>& edges,
                          bool undirected = true);

  /// G(n, p) Erdős–Rényi random graph (undirected, no self loops).
  static Graph random_gnp(std::size_t n, double p, rt::Rng& rng);

  /// Ring of n vertices plus `extra` random chords (connected by design).
  static Graph ring_with_chords(std::size_t n, std::size_t extra,
                                rt::Rng& rng);

  std::size_t vertex_count() const { return offsets_.size() - 1; }
  std::size_t edge_count() const { return targets_.size(); }

  /// Neighbours of v as a span-like pair of iterators.
  const std::uint32_t* neighbors_begin(std::uint32_t v) const {
    return targets_.data() + offsets_[v];
  }
  const std::uint32_t* neighbors_end(std::uint32_t v) const {
    return targets_.data() + offsets_[v + 1];
  }
  std::size_t degree(std::uint32_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

 private:
  std::vector<std::size_t> offsets_;   // n+1
  std::vector<std::uint32_t> targets_;
};

inline constexpr std::int32_t kUnreached = -1;

/// Sequential BFS oracle.
std::vector<std::int32_t> bfs_sequential(const Graph& g, std::uint32_t src);

/// Level-synchronous parallel BFS over the machine's processors.
std::vector<std::int32_t> parallel_bfs(rt::Machine& m, const Graph& g,
                                       std::uint32_t src);

/// Component id per vertex (smallest-reachable-source order), built from
/// repeated parallel BFS.
std::vector<std::uint32_t> connected_components(rt::Machine& m,
                                                const Graph& g);

}  // namespace motif
