// The scheduler motif of Section 2.2 and reference [6]: "a scheduler
// motif concerned with dynamically allocating tasks to idle processors.
// It is easy to define a library program which creates a set of worker
// processes and distributes data structures representing tasks to idle
// workers. However, it would be inconvenient if programmers had to embed
// explicit calls to this scheduler ... these functions can be
// incorporated automatically by an application-independent
// transformation. The programmer only needs to supply pragma specifying
// tasks."
//
// The pragma is @task:    heavy(X,R)@task
// The transformation
//   1. replaces each call P@task with send(1, task(P)) — the task's data
//      structure travels to the manager (server 1);
//   2. generates a dispatcher rule per task type,
//          run_task(p(V1,...,Vn)) :- p(V1,...,Vn).
//      so the worker's invocation is a real call (and the Server
//      transformation can thread DT through task types that themselves
//      spawn tasks — nested @task works);
//   3. links the manager/worker library: the manager (server 1) keeps a
//      task list and an idle-worker list; workers announce themselves
//      with ready(W) and receive run(P) messages.
//
// Composition: Scheduler = Server ∘ Sched. Entry: the initial message of
// create(N, task(Goal)) is itself a task, dispatched to the first idle
// worker. Tasks synchronise through shared variables (Strand's dataflow
// is the "data dependencies" mechanism); a worker reports ready upon
// INITIATING its task, so long-running tasks overlap with new
// assignments — initiation-throttled load balancing, as in the Random
// motif's servers.
#pragma once

#include <vector>

#include "term/program.hpp"
#include "transform/motif.hpp"

namespace motif::transform {

/// Builds the Sched motif. `entry_task_types` lists task types that only
/// appear in initial messages (beyond the @task-annotated types, which
/// are discovered automatically).
Motif sched_motif(std::vector<term::ProcKey> entry_task_types = {});

/// Keys of all @task-annotated goals in `a`, in first-occurrence order.
std::vector<term::ProcKey> annotated_task_types(const term::Program& a);

/// The manager/worker library program on its own (for inspection/tests).
term::Program sched_library();

}  // namespace motif::transform
