#include "term/parser.hpp"

#include <cctype>
#include <map>
#include <optional>

#include "term/ops.hpp"

namespace motif::term {

namespace {

enum class Tok {
  Atom,     // foo, 'quoted', symbolic atom used as operator
  Var,      // Foo, _foo, _
  Int,
  Float,
  Str,
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Bar,       // |  (commit bar at clause level, tail separator in lists)
  ClauseEnd, // .
  Neck,      // :-
  End,
};

struct Token {
  Tok kind;
  std::string text;
  std::int64_t ival = 0;
  double fval = 0.0;
  int line = 1;
  int col = 1;
  /// For Atom tokens: immediately followed by '(' with no space, so it
  /// opens a compound (standard "functional notation" rule).
  bool opens_call = false;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Token next() {
    skip_ws();
    Token t;
    t.line = line_;
    t.col = col_;
    if (eof()) {
      t.kind = Tok::End;
      return t;
    }
    char c = peek();
    if (c == '(') return punct(Tok::LParen);
    if (c == ')') return punct(Tok::RParen);
    if (c == '[') return punct(Tok::LBracket);
    if (c == ']') return punct(Tok::RBracket);
    if (c == '{') return punct(Tok::LBrace);
    if (c == '}') return punct(Tok::RBrace);
    if (c == ',') return punct(Tok::Comma);
    if (c == '|') return punct(Tok::Bar);
    if (std::isdigit(static_cast<unsigned char>(c))) return number();
    if (c == '_' || std::isupper(static_cast<unsigned char>(c))) return var();
    if (std::isalpha(static_cast<unsigned char>(c))) return name_atom();
    if (c == '\'') return quoted_atom();
    if (c == '"') return string_lit();
    return symbolic();
  }

 private:
  bool eof() const { return pos_ >= src_.size(); }
  char peek(std::size_t k = 0) const {
    return pos_ + k < src_.size() ? src_[pos_ + k] : '\0';
  }
  char advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    for (;;) {
      while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) {
        advance();
      }
      if (!eof() && peek() == '%') {
        while (!eof() && peek() != '\n') advance();
        continue;
      }
      break;
    }
  }

  Token punct(Tok kind) {
    Token t;
    t.line = line_;
    t.col = col_;
    t.kind = kind;
    t.text = std::string(1, advance());
    return t;
  }

  Token number() {
    Token t;
    t.line = line_;
    t.col = col_;
    std::string digits;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      digits += advance();
    }
    // A '.' starts a fraction only if followed by a digit; otherwise it is
    // the clause terminator.
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      digits += advance();
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        digits += advance();
      }
      if (peek() == 'e' || peek() == 'E') {
        digits += advance();
        if (peek() == '+' || peek() == '-') digits += advance();
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
          digits += advance();
        }
      }
      t.kind = Tok::Float;
      t.fval = std::stod(digits);
    } else {
      t.kind = Tok::Int;
      t.ival = std::stoll(digits);
    }
    t.text = digits;
    return t;
  }

  Token var() {
    Token t;
    t.line = line_;
    t.col = col_;
    t.kind = Tok::Var;
    while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_')) {
      t.text += advance();
    }
    return t;
  }

  Token name_atom() {
    Token t;
    t.line = line_;
    t.col = col_;
    t.kind = Tok::Atom;
    while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_')) {
      t.text += advance();
    }
    t.opens_call = (peek() == '(');
    return t;
  }

  Token quoted_atom() {
    Token t;
    t.line = line_;
    t.col = col_;
    t.kind = Tok::Atom;
    advance();  // opening '
    for (;;) {
      if (eof()) throw ParseError("unterminated quoted atom", t.line, t.col);
      char c = advance();
      if (c == '\\' && !eof()) {
        t.text += advance();
        continue;
      }
      if (c == '\'') break;
      t.text += c;
    }
    t.opens_call = (peek() == '(');
    return t;
  }

  Token string_lit() {
    Token t;
    t.line = line_;
    t.col = col_;
    t.kind = Tok::Str;
    advance();  // opening "
    for (;;) {
      if (eof()) throw ParseError("unterminated string", t.line, t.col);
      char c = advance();
      if (c == '\\' && !eof()) {
        char e = advance();
        switch (e) {
          case 'n':
            t.text += '\n';
            break;
          case 't':
            t.text += '\t';
            break;
          default:
            t.text += e;
        }
        continue;
      }
      if (c == '"') break;
      t.text += c;
    }
    return t;
  }

  Token symbolic() {
    static const std::string kSym = "+-*/\\^<>=~:.?@#&$";
    Token t;
    t.line = line_;
    t.col = col_;
    if (kSym.find(peek()) == std::string::npos) {
      throw ParseError(std::string("unexpected character '") + peek() + "'",
                       line_, col_);
    }
    while (!eof() && kSym.find(peek()) != std::string::npos) {
      t.text += advance();
    }
    if (t.text == ":-") {
      t.kind = Tok::Neck;
    } else if (t.text == ".") {
      t.kind = Tok::ClauseEnd;
    } else {
      t.kind = Tok::Atom;
      t.opens_call = (peek() == '(');
    }
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) { shift(); }

  std::vector<Clause> clauses() {
    std::vector<Clause> out;
    while (cur_.kind != Tok::End) {
      out.push_back(clause());
    }
    return out;
  }

  Term single_term() {
    Term t = expr(kMaxPrec);
    expect(Tok::End, "end of input");
    return t;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError(msg + " (got '" + cur_.text + "')", cur_.line, cur_.col);
  }

  void shift() { cur_ = lex_.next(); }

  void expect(Tok k, const char* what) {
    if (cur_.kind != k) fail(std::string("expected ") + what);
    if (k != Tok::End) shift();
  }

  Clause clause() {
    vars_.clear();
    Clause c;
    c.span.line = cur_.line;
    c.span.col = cur_.col;
    c.head = expr(kMaxPrec);
    if (!(c.head.is_atom() || c.head.is_compound()) || c.head.is_cons() ||
        c.head.is_tuple()) {
      fail("clause head must be an atom or compound");
    }
    if (cur_.kind == Tok::Neck) {
      shift();
      std::vector<Term> first = goals();
      if (cur_.kind == Tok::Bar) {
        shift();
        c.guard = std::move(first);
        c.body = goals();
      } else {
        c.body = std::move(first);
      }
    }
    c.span.end_line = cur_.line;
    c.span.end_col = cur_.col + 1;  // past the terminating '.'
    expect(Tok::ClauseEnd, "'.'");
    return c;
  }

  std::vector<Term> goals() {
    std::vector<Term> gs;
    gs.push_back(expr(kMaxPrec));
    while (cur_.kind == Tok::Comma) {
      shift();
      gs.push_back(expr(kMaxPrec));
    }
    return gs;
  }

  // Precedence-climbing expression parser over binary_op().
  Term expr(int max_prec) {
    Term left = primary(max_prec);
    for (;;) {
      if (cur_.kind != Tok::Atom) return left;
      auto op = binary_op(cur_.text);
      if (!op || op->prec > max_prec) return left;
      std::string name = cur_.text;
      shift();
      Term right = expr(op->prec - 1);
      left = Term::compound(name, {left, right});
      if (op->type == OpType::xfx) {
        // xfx does not associate: nothing at or above this level may
        // follow (A := B := C is a syntax error).
        max_prec = op->prec - 1;
      }
    }
  }

  Term primary(int max_prec) {
    switch (cur_.kind) {
      case Tok::Int: {
        Term t = Term::integer(cur_.ival);
        shift();
        return t;
      }
      case Tok::Float: {
        Term t = Term::real(cur_.fval);
        shift();
        return t;
      }
      case Tok::Str: {
        Term t = Term::str(cur_.text);
        shift();
        return t;
      }
      case Tok::Var: {
        Term t = lookup_var(cur_.text);
        shift();
        return t;
      }
      case Tok::LParen: {
        shift();
        Term t = expr(kMaxPrec);
        expect(Tok::RParen, "')'");
        return t;
      }
      case Tok::LBracket:
        return list_term();
      case Tok::LBrace:
        return tuple_term();
      case Tok::Atom: {
        std::string name = cur_.text;
        bool call = cur_.opens_call;
        // Unary minus on a following number or primary.
        if (name == "-" && !call) {
          shift();
          if (cur_.kind == Tok::Int) {
            Term t = Term::integer(-cur_.ival);
            shift();
            return t;
          }
          if (cur_.kind == Tok::Float) {
            Term t = Term::real(-cur_.fval);
            shift();
            return t;
          }
          Term operand = primary(max_prec);
          return Term::compound("-", {Term::integer(0), operand});
        }
        shift();
        if (call && cur_.kind == Tok::LParen) {
          shift();
          std::vector<Term> args;
          if (cur_.kind != Tok::RParen) {
            args.push_back(expr(kMaxPrec));
            while (cur_.kind == Tok::Comma) {
              shift();
              args.push_back(expr(kMaxPrec));
            }
          }
          expect(Tok::RParen, "')'");
          return Term::compound(std::move(name), std::move(args));
        }
        return Term::atom(std::move(name));
      }
      default:
        fail("expected a term");
    }
  }

  Term list_term() {
    expect(Tok::LBracket, "'['");
    if (cur_.kind == Tok::RBracket) {
      shift();
      return Term::nil();
    }
    std::vector<Term> items;
    items.push_back(expr(kMaxPrec));
    while (cur_.kind == Tok::Comma) {
      shift();
      items.push_back(expr(kMaxPrec));
    }
    Term tail = Term::nil();
    if (cur_.kind == Tok::Bar) {
      shift();
      tail = expr(kMaxPrec);
    }
    expect(Tok::RBracket, "']'");
    return Term::list(std::move(items), std::move(tail));
  }

  Term tuple_term() {
    expect(Tok::LBrace, "'{'");
    std::vector<Term> items;
    if (cur_.kind != Tok::RBrace) {
      items.push_back(expr(kMaxPrec));
      while (cur_.kind == Tok::Comma) {
        shift();
        items.push_back(expr(kMaxPrec));
      }
    }
    expect(Tok::RBrace, "'}'");
    return Term::tuple(std::move(items));
  }

  Term lookup_var(const std::string& name) {
    if (name == "_") return Term::var("_");
    auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    Term v = Term::var(name);
    vars_.emplace(name, v);
    return v;
  }

  Lexer lex_;
  Token cur_;
  std::map<std::string, Term> vars_;
};

}  // namespace

std::vector<Clause> parse_clauses(std::string_view src) {
  return Parser(src).clauses();
}

Term parse_term(std::string_view src) { return Parser(src).single_term(); }

}  // namespace motif::term
