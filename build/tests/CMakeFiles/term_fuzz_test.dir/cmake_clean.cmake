file(REMOVE_RECURSE
  "CMakeFiles/term_fuzz_test.dir/term_fuzz_test.cpp.o"
  "CMakeFiles/term_fuzz_test.dir/term_fuzz_test.cpp.o.d"
  "term_fuzz_test"
  "term_fuzz_test.pdb"
  "term_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
