// Sorting, grid and graph motifs (the paper's Section 4 motif areas).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "motifs/graph.hpp"
#include "motifs/grid.hpp"
#include "motifs/sort.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {
std::vector<int> random_ints(std::uint64_t seed, std::size_t n) {
  rt::Rng rng(seed);
  std::vector<int> v(n);
  for (auto& x : v) x = static_cast<int>(rng.below(1000000));
  return v;
}
}  // namespace

// ---- sort -------------------------------------------------------------------

class SortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSizes, MergeSortMatchesStdSort) {
  auto data = random_ints(GetParam(), GetParam());
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto got = m::parallel_merge_sort(mach, data, 64);
  EXPECT_EQ(got, expect);
}

TEST_P(SortSizes, SampleSortMatchesStdSort) {
  auto data = random_ints(GetParam() + 1, GetParam());
  auto expect = data;
  std::sort(expect.begin(), expect.end());
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto got = m::parallel_sample_sort(mach, data);
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0, 1, 2, 17, 100, 1000, 20000));

TEST(Sort, AlreadySortedAndReversed) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  std::vector<int> asc(5000);
  std::iota(asc.begin(), asc.end(), 0);
  EXPECT_EQ(m::parallel_merge_sort(mach, asc, 128), asc);
  std::vector<int> desc(asc.rbegin(), asc.rend());
  EXPECT_EQ(m::parallel_merge_sort(mach, desc, 128), asc);
}

TEST(Sort, DuplicatesPreserved) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  std::vector<int> v(3000, 7);
  v[100] = 3;
  v[2000] = 9;
  auto got = m::parallel_sample_sort(mach, v);
  EXPECT_EQ(got.front(), 3);
  EXPECT_EQ(got.back(), 9);
  EXPECT_EQ(std::count(got.begin(), got.end(), 7), 2998);
}

TEST(Sort, CustomComparator) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto data = random_ints(5, 4000);
  auto got = m::parallel_merge_sort(mach, data, 64, std::greater<int>());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end(), std::greater<int>()));
}

// ---- grid -------------------------------------------------------------------

TEST(Grid, SequentialSweepOracleSmall) {
  m::Grid2D g(3, 3, 0.0);
  g.at(0, 1) = 4.0;  // boundary heat
  m::Grid2D out = g;
  double delta = m::jacobi_sweep_seq(g, out);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(delta, 1.0);
}

TEST(Grid, ParallelMatchesSequentialSweepBySweep) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  m::Grid2D g(20, 16, 0.0);
  for (std::size_t c = 0; c < 16; ++c) g.at(0, c) = 100.0;
  m::Grid2D ref = g;

  // Run 25 sweeps both ways.
  m::Grid2D tmp = ref;
  for (int k = 0; k < 25; ++k) {
    m::jacobi_sweep_seq(ref, tmp);
    std::swap(ref, tmp);
  }
  m::JacobiOptions opts;
  opts.max_iters = 25;
  opts.tolerance = 0.0;  // force exactly max_iters sweeps
  m::jacobi_solve(mach, g, opts);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      EXPECT_NEAR(g.at(r, c), ref.at(r, c), 1e-12) << r << "," << c;
    }
  }
}

TEST(Grid, ConvergesToLinearProfile) {
  // 1-D-like strip: top row 1, bottom row 0 -> linear gradient.
  rt::Machine mach({.nodes = 4, .workers = 2});
  m::Grid2D g(17, 64, 0.0);
  for (std::size_t c = 0; c < 64; ++c) g.at(0, c) = 1.0;
  m::JacobiOptions opts;
  opts.max_iters = 20000;
  opts.tolerance = 1e-10;
  auto res = m::jacobi_solve(mach, g, opts);
  EXPECT_TRUE(res.converged);
  // Interior forms a roughly linear profile in r (columns far from the
  // lateral boundary, which is held at 0, dip; check the middle column
  // decreases monotonically).
  for (std::size_t r = 1; r < 16; ++r) {
    EXPECT_LT(g.at(r, 32), g.at(r - 1, 32));
  }
}

TEST(Grid, TinyGridTrivial) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  m::Grid2D g(2, 2, 5.0);
  auto res = m::jacobi_solve(mach, g);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
}

TEST(Grid, MoreBlocksThanRowsIsSafe) {
  rt::Machine mach({.nodes = 16, .workers = 2});
  m::Grid2D g(4, 8, 0.0);  // 2 interior rows, 16 nodes
  for (std::size_t c = 0; c < 8; ++c) g.at(0, c) = 8.0;
  m::JacobiOptions opts;
  opts.max_iters = 100;
  auto res = m::jacobi_solve(mach, g, opts);
  EXPECT_TRUE(res.converged);
}

// ---- graph ------------------------------------------------------------------

TEST(Graph, FromEdgesDegreesAndNeighbors) {
  auto g = m::Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 8u);  // undirected: both directions
  EXPECT_EQ(g.degree(0), 2u);
  std::vector<std::uint32_t> n0(g.neighbors_begin(0), g.neighbors_end(0));
  std::sort(n0.begin(), n0.end());
  EXPECT_EQ(n0, (std::vector<std::uint32_t>{1, 3}));
}

TEST(Graph, BfsSequentialOnPath) {
  auto g = m::Graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto d = m::bfs_sequential(g, 0);
  EXPECT_EQ(d, (std::vector<std::int32_t>{0, 1, 2, 3, 4}));
}

TEST(Graph, ParallelBfsMatchesSequentialOnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    rt::Rng rng(seed);
    auto g = m::Graph::random_gnp(400, 0.01, rng);
    rt::Machine mach({.nodes = 8, .workers = 2});
    auto seq = m::bfs_sequential(g, 0);
    auto par = m::parallel_bfs(mach, g, 0);
    EXPECT_EQ(par, seq) << "seed " << seed;
  }
}

TEST(Graph, ParallelBfsOnRing) {
  rt::Rng rng(7);
  auto g = m::Graph::ring_with_chords(64, 0, rng);
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto d = m::parallel_bfs(mach, g, 0);
  EXPECT_EQ(d[32], 32);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[63], 1);
}

TEST(Graph, DisconnectedVerticesUnreached) {
  auto g = m::Graph::from_edges(5, {{0, 1}});
  rt::Machine mach({.nodes = 2, .workers = 1});
  auto d = m::parallel_bfs(mach, g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], m::kUnreached);
  EXPECT_EQ(d[4], m::kUnreached);
}

TEST(Graph, ConnectedComponents) {
  auto g = m::Graph::from_edges(
      7, {{0, 1}, {1, 2}, {3, 4}, {5, 6}});
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto comp = m::connected_components(mach, g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_EQ(comp[5], comp[6]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[5]);
  EXPECT_NE(comp[0], comp[5]);
}

TEST(Graph, GnpEdgeCountRoughlyExpected) {
  rt::Rng rng(11);
  auto g = m::Graph::random_gnp(1000, 0.01, rng);
  const double expect = 0.01 * 1000 * 999 / 2;
  EXPECT_NEAR(static_cast<double>(g.edge_count()) / 2, expect,
              expect * 0.15);
}
