file(REMOVE_RECURSE
  "CMakeFiles/bench_compose.dir/bench_compose.cpp.o"
  "CMakeFiles/bench_compose.dir/bench_compose.cpp.o.d"
  "bench_compose"
  "bench_compose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
