# Empty compiler generated dependencies file for motifs_pipeline_for_test.
# This may be replaced when dependencies are built.
