#include "interp/builtins.hpp"

namespace motif::interp {

const std::vector<BuiltinSig>& builtin_signatures() {
  static const std::vector<BuiltinSig> kTable = {
      {":=", 2, "od", "assign: unify lhs with rhs (arith rhs evaluated)"},
      {"=", 2, "od", "alias of :="},
      {"is", 2, "ox", "arithmetic assignment"},
      {"<", 2, "xx", "numeric less-than (assertion in bodies)"},
      {">", 2, "xx", "numeric greater-than"},
      {"=<", 2, "xx", "numeric at-most"},
      {">=", 2, "xx", "numeric at-least"},
      {"=:=", 2, "xx", "numeric equality"},
      {"=\\=", 2, "xx", "numeric inequality"},
      {"==", 2, "ii", "structural equality"},
      {"\\==", 2, "ii", "structural inequality"},
      {"length", 2, "io", "list length"},
      {"rand_num", 2, "xo", "uniform integer in 1..N (per-node RNG)"},
      {"make_ports", 3, "xoo", "N merge ports + merged stream"},
      {"distribute", 3, "xdi", "send message to server J via the DT tuple"},
      {"send_all", 2, "di", "broadcast message to every port in the tuple"},
      {"make_tuple", 2, "io", "list -> tuple"},
      {"arg", 3, "xio", "J-th element of a tuple"},
      {"nodes_total", 1, "o", "machine size"},
      {"current_node", 1, "o", "executing node, 1-based"},
      {"write", 1, "d", "print a term"},
      {"writeln", 1, "d", "print a term + newline"},
      {"work", 1, "x", "burn N units of synthetic low-level computation"},
      {"true", 0, "", "no-op"},
  };
  return kTable;
}

const BuiltinSig* find_builtin(std::string_view name, std::size_t arity) {
  for (const auto& sig : builtin_signatures()) {
    if (sig.name == name && sig.arity == arity) return &sig;
  }
  return nullptr;
}

bool is_comparison(std::string_view name, std::size_t arity) {
  if (arity != 2) return false;
  return name == "<" || name == ">" || name == "=<" || name == ">=" ||
         name == "==" || name == "=\\=" || name == "\\==" || name == "=:=";
}

bool is_type_test(std::string_view name, std::size_t arity) {
  if (arity != 1) return false;
  return name == "integer" || name == "float" || name == "number" ||
         name == "string" || name == "atom" || name == "list" ||
         name == "tuple" || name == "compound" || name == "data";
}

bool is_guard_test(std::string_view name, std::size_t arity) {
  if (arity == 0 && (name == "true" || name == "otherwise")) return true;
  return is_comparison(name, arity) || is_type_test(name, arity);
}

}  // namespace motif::interp
