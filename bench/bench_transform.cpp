// Experiment E6 (DESIGN.md §4): motif reuse is cheap — "The first
// [tree-reduction motif] is implemented with five lines of code, and the
// second with a page of library code", and the transformations are
// applied automatically (Section 3.6), so they must be fast even on large
// applications.
//
// Series: application size (the eval table is replicated k times with
// distinct operator names) x the full Server o Rand o Tree1 pipeline.
// Reported: clauses in, clauses out, wall time per clause.
//
// Also reports the "incremental cost" accounting of Section 3.6: motif
// client code (what the user writes) vs generated code.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <string>

#include "transform/motif.hpp"
#include "transform/rand.hpp"
#include "transform/server.hpp"
#include "transform/tree.hpp"

namespace tf = motif::transform;
using motif::term::Program;

namespace {

Program synthetic_app(int k) {
  std::string src;
  for (int i = 0; i < k; ++i) {
    const std::string op = "op" + std::to_string(i);
    src += "eval(" + op + ",L,R,V) :- V is L + R.\n";
    src += "helper_" + std::to_string(i) + "(X,Y) :- Y is X * 2.\n";
  }
  src += "eval('+',L,R,V) :- V is L + R.\n";
  return Program::parse(src);
}

void BM_FullMotifPipeline(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Program app = synthetic_app(k);
  auto motif = tf::tree_reduce1_motif();
  std::size_t out_clauses = 0;
  for (auto _ : state) {
    Program out = motif.apply(app);
    out_clauses = out.clauses().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["clauses_in"] = static_cast<double>(app.clauses().size());
  state.counters["clauses_out"] = static_cast<double>(out_clauses);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(app.clauses().size()));
  MOTIF_BENCH_REPORT(state);
}

void BM_ParsePrintRoundTrip(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Program app = synthetic_app(k);
  const std::string src = app.to_source();
  for (auto _ : state) {
    Program p = Program::parse(src);
    std::string s = p.to_source();
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(src.size()));
  MOTIF_BENCH_REPORT(state);
}

void BM_CallGraphAnalysis(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Program app = tf::rand_motif().apply(
      tf::tree1_motif().apply(synthetic_app(k)));
  for (auto _ : state) {
    auto s = tf::needs_dt(app);
    benchmark::DoNotOptimize(s);
  }
  MOTIF_BENCH_REPORT(state);
}

void BM_IncrementalCostAccounting(benchmark::State& state) {
  // Section 3.6: user code vs motif-provided code for Tree-Reduce-1 and
  // Tree-Reduce-2 — the user writes only eval/4 (2 clauses here).
  Program user = Program::parse(
      "eval('+',L,R,V) :- V is L + R.\neval('*',L,R,V) :- V is L * R.\n");
  for (auto _ : state) {
    Program tr1 = tf::tree_reduce1_motif().apply(user);
    Program tr2 = tf::tree_reduce2_full_motif().apply(user);
    benchmark::DoNotOptimize(tr1);
    state.counters["user_clauses"] =
        static_cast<double>(user.clauses().size());
    state.counters["tr1_total_clauses"] =
        static_cast<double>(tr1.clauses().size());
    state.counters["tr2_total_clauses"] =
        static_cast<double>(tr2.clauses().size());
  }
  MOTIF_BENCH_REPORT(state);
}

}  // namespace

BENCHMARK(BM_FullMotifPipeline)->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond)->MinTime(0.02);
BENCHMARK(BM_ParsePrintRoundTrip)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond)->MinTime(0.02);
BENCHMARK(BM_CallGraphAnalysis)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond)->MinTime(0.02);
BENCHMARK(BM_IncrementalCostAccounting)->Unit(benchmark::kMillisecond)
    ->MinTime(0.02);

BENCHMARK_MAIN();
