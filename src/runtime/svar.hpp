// Single-assignment variables: the synchronisation primitive of the Strand
// execution model that the paper's motifs are built on (Section 2.1).
//
// An SVar<T> starts unbound. It can be bound exactly once; a second bind is
// a run-time error, mirroring Strand's "attempts to assign to a variable
// that has a value are signaled as run-time errors". Consumers either block
// (outside the machine) or register a continuation with when_bound (inside
// the machine — worker threads must never block on data, CP.42/CP.4).
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runtime/taskfn.hpp"

namespace motif::rt {

namespace svar_detail {

/// Process-wide registry of named, still-unbound SVar cells. The runtime's
/// deadline classifier (Machine::wait_idle_for) reads it to report *which*
/// dataflow variable a stalled run is waiting on — the Machine-level
/// counterpart of the interpreter's "(waiting on X)" deadlock diagnostic.
struct NameRegistry {
  std::mutex m;
  std::map<std::string, std::size_t> pending;  // name -> unbound cell count

  static NameRegistry& instance() {
    static NameRegistry r;
    return r;
  }
  void add(const std::string& name) {
    std::lock_guard lock(m);
    ++pending[name];
  }
  void remove(const std::string& name) {
    std::lock_guard lock(m);
    auto it = pending.find(name);
    if (it != pending.end() && --it->second == 0) pending.erase(it);
  }
};

}  // namespace svar_detail

/// Names of every named SVar that is still unbound, sorted. Diagnostics
/// only: the set is sampled without stopping writers.
inline std::vector<std::string> unbound_svar_names() {
  auto& reg = svar_detail::NameRegistry::instance();
  std::vector<std::string> out;
  std::lock_guard lock(reg.m);
  out.reserve(reg.pending.size());
  for (const auto& [name, n] : reg.pending) {
    if (n > 0) out.push_back(name);
  }
  return out;
}

/// Thrown when a single-assignment variable is bound twice.
class SingleAssignmentViolation : public std::logic_error {
 public:
  SingleAssignmentViolation()
      : std::logic_error("single-assignment variable bound twice") {}
};

/// A write-once, read-many dataflow variable. Copies share the same cell
/// (handle semantics), so an SVar can be captured by both a producer and
/// any number of consumers.
template <class T>
class SVar {
 public:
  SVar() : s_(std::make_shared<State>()) {}

  /// Binds the variable. Runs (and releases) all registered continuations
  /// on the calling thread. Throws SingleAssignmentViolation if bound.
  /// (const: an SVar handle is freely shareable — the cell carries its
  /// own synchronisation, so binding through a captured-by-value copy in
  /// a const lambda is fine.)
  void bind(T value) const {
    std::vector<SmallFn<void(const T&)>> waiters;
    {
      std::lock_guard lock(s_->m);
      if (s_->value.has_value()) throw SingleAssignmentViolation();
      s_->value.emplace(std::move(value));
      waiters.swap(s_->waiters);
      s_->deregister_name();
    }
    s_->cv.notify_all();
    for (auto& w : waiters) w(*s_->value);
  }

  /// Binds unless already bound; returns whether this call bound it.
  bool try_bind(T value) const {
    std::vector<SmallFn<void(const T&)>> waiters;
    {
      std::lock_guard lock(s_->m);
      if (s_->value.has_value()) return false;
      s_->value.emplace(std::move(value));
      waiters.swap(s_->waiters);
      s_->deregister_name();
    }
    s_->cv.notify_all();
    for (auto& w : waiters) w(*s_->value);
    return true;
  }

  /// Names this variable for stall diagnostics: while it stays unbound,
  /// the name appears in unbound_svar_names() and thus in
  /// RunOutcome::blocked_on. Renaming an unbound variable replaces the
  /// registration; naming a bound one is a no-op. Returns *this.
  const SVar& set_name(std::string name) const {
    std::lock_guard lock(s_->m);
    if (s_->value.has_value()) return *this;
    s_->deregister_name();
    s_->name = std::move(name);
    if (!s_->name.empty()) {
      svar_detail::NameRegistry::instance().add(s_->name);
    }
    return *this;
  }

  bool bound() const {
    std::lock_guard lock(s_->m);
    return s_->value.has_value();
  }

  /// Blocking read; for use from threads outside the Machine (e.g. main or
  /// a test). The reference stays valid for the life of the cell: the value
  /// is immutable once bound.
  const T& get() const {
    std::unique_lock lock(s_->m);
    s_->cv.wait(lock, [&] { return s_->value.has_value(); });
    return *s_->value;
  }

  /// Non-blocking read.
  std::optional<T> peek() const {
    std::lock_guard lock(s_->m);
    return s_->value;
  }

  /// Registers `f(const T&)` to run when the variable is bound. If it is
  /// already bound, `f` runs inline on this thread. Continuations should be
  /// cheap — typically a Machine::post of the real work.
  template <class F>
  void when_bound(F f) const {
    {
      std::unique_lock lock(s_->m);
      if (!s_->value.has_value()) {
        s_->waiters.emplace_back(std::move(f));
        return;
      }
    }
    f(*s_->value);
  }

  /// Identity of the underlying cell; two SVars alias iff they compare equal.
  bool same_cell(const SVar& o) const { return s_ == o.s_; }

 private:
  struct State {
    mutable std::mutex m;
    std::optional<T> value;
    std::condition_variable cv;
    /// Move-only continuations (taskfn.hpp): a waiter runs exactly once,
    /// and the common one — post_when's bound closure — is ~40 bytes,
    /// past std::function's small-buffer limit but inside SmallFn's.
    std::vector<SmallFn<void(const T&)>> waiters;
    std::string name;  // nonempty while registered in the name registry

    /// Caller holds `m` (or is the last owner, in ~State).
    void deregister_name() {
      if (!name.empty()) {
        svar_detail::NameRegistry::instance().remove(name);
        name.clear();
      }
    }
    ~State() { deregister_name(); }
  };
  std::shared_ptr<State> s_;
};

/// Runs `f` once both `a` and `b` are bound. Values are passed by const
/// reference; `f` runs on whichever thread supplies the last binding (or
/// inline if both are already bound).
template <class A, class B, class F>
void when_both(SVar<A> a, SVar<B> b, F f) {
  SVar<A> keep = a;  // the inner continuation keeps a's cell alive
  a.when_bound(
      [keep, b = std::move(b), f = std::move(f)](const A& av) mutable {
        // `av` points into keep's cell; a bound value is immutable and the
        // captured handle keeps it alive until f has run.
        const A* ap = &av;
        b.when_bound([keep, ap, f = std::move(f)](const B& bv) { f(*ap, bv); });
      });
}

}  // namespace motif::rt
