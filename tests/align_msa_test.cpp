// Phylogeny generation, guide trees, and the end-to-end progressive MSA
// under every schedule — the paper's case-study application.
#include <gtest/gtest.h>

#include "align/align.hpp"
#include "motifs/tree_reduce.hpp"

namespace al = motif::align;
namespace rt = motif::rt;
using motif::Tree;

TEST(Phylo, YuleTreeHasRequestedTaxa) {
  rt::Rng rng(1);
  for (std::size_t taxa : {1u, 2u, 7u, 32u}) {
    auto t = al::yule_tree(taxa, rng);
    EXPECT_EQ(t->leaf_count(), taxa);
  }
}

TEST(Phylo, TaxaNumberedLeftToRight) {
  rt::Rng rng(2);
  auto t = al::yule_tree(8, rng);
  std::vector<int> order;
  std::function<void(const al::Phylo::Ptr&)> walk =
      [&](const al::Phylo::Ptr& n) {
        if (n->is_leaf()) {
          order.push_back(n->taxon);
          return;
        }
        walk(n->left);
        walk(n->right);
      };
  walk(t);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(Phylo, EvolveFamilyProducesOneSequencePerTaxon) {
  rt::Rng rng(3);
  auto t = al::yule_tree(12, rng);
  auto fam = al::evolve_family(t, 150, rng);
  ASSERT_EQ(fam.size(), 12u);
  for (const auto& s : fam) {
    EXPECT_FALSE(s.empty());
    EXPECT_TRUE(al::valid_rna(s));
  }
}

TEST(Phylo, GuideFromPhyloPreservesShape) {
  rt::Rng rng(4);
  auto t = al::yule_tree(10, rng);
  auto g = al::guide_from_phylo(t);
  EXPECT_EQ(g->leaf_count(), 10u);
}

TEST(Upgma, PairsCloseItemsFirst) {
  // Distances: {0,1} close, {2,3} close, groups far apart.
  std::vector<std::vector<double>> d = {
      {0.0, 0.1, 0.9, 0.9},
      {0.1, 0.0, 0.9, 0.9},
      {0.9, 0.9, 0.0, 0.1},
      {0.9, 0.9, 0.1, 0.0},
  };
  auto g = al::upgma(d);
  ASSERT_EQ(g->leaf_count(), 4u);
  // Root splits {0,1} from {2,3}.
  auto leaves_of = [](const Tree<int, char>::Ptr& t) {
    std::vector<int> out;
    t->walk([&](const Tree<int, char>& n) {
      if (n.is_leaf()) out.push_back(n.value());
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  auto l = leaves_of(g->left());
  auto r = leaves_of(g->right());
  if (l[0] > r[0]) std::swap(l, r);
  EXPECT_EQ(l, (std::vector<int>{0, 1}));
  EXPECT_EQ(r, (std::vector<int>{2, 3}));
}

TEST(Upgma, SingleItem) {
  auto g = al::upgma({{0.0}});
  ASSERT_TRUE(g);
  EXPECT_TRUE(g->is_leaf());
}

TEST(Upgma, DistanceMatrixSymmetricZeroDiagonal) {
  rt::Rng rng(5);
  std::vector<std::string> seqs;
  for (int i = 0; i < 5; ++i) seqs.push_back(al::random_sequence(rng, 80));
  auto d = al::distance_matrix(seqs);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(d[i][i], 0.0);
    for (int j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(d[i][j], d[j][i]);
  }
}

TEST(Msa, AllSchedulesProduceIdenticalAlignment) {
  auto fam = al::synthetic_family(10, 120, 42);
  rt::Machine m1({.nodes = 4, .workers = 2});
  auto seq =
      al::progressive_msa(m1, fam.sequences, fam.guide,
                          al::MsaSchedule::Sequential);
  rt::Machine m2({.nodes = 4, .workers = 2});
  auto tr1 =
      al::progressive_msa(m2, fam.sequences, fam.guide,
                          al::MsaSchedule::TreeReduce1);
  rt::Machine m3({.nodes = 4, .workers = 2});
  auto tr2 =
      al::progressive_msa(m3, fam.sequences, fam.guide,
                          al::MsaSchedule::TreeReduce2);
  EXPECT_EQ(seq.profile.length(), tr1.profile.length());
  EXPECT_EQ(seq.profile.length(), tr2.profile.length());
  EXPECT_DOUBLE_EQ(seq.sum_of_pairs_score, tr1.sum_of_pairs_score);
  EXPECT_DOUBLE_EQ(seq.sum_of_pairs_score, tr2.sum_of_pairs_score);
  EXPECT_EQ(seq.profile.consensus(), tr1.profile.consensus());
  EXPECT_EQ(seq.profile.consensus(), tr2.profile.consensus());
}

TEST(Msa, ProfileDepthEqualsFamilySize) {
  auto fam = al::synthetic_family(16, 100, 7);
  rt::Machine m({.nodes = 4, .workers = 2});
  auto r = al::progressive_msa(m, fam.sequences, fam.guide);
  EXPECT_EQ(r.profile.depth(), 16u);
  // Alignment at least as long as the longest input.
  std::size_t longest = 0;
  for (const auto& s : fam.sequences) longest = std::max(longest, s.size());
  EXPECT_GE(r.profile.length(), longest);
}

TEST(Msa, RelatedFamilyAlignsBetterThanRandom) {
  auto fam = al::synthetic_family(8, 150, 9);
  rt::Machine m({.nodes = 4, .workers = 2});
  auto related = al::progressive_msa_auto(m, fam.sequences);

  rt::Rng rng(10);
  std::vector<std::string> random_seqs;
  for (int i = 0; i < 8; ++i) {
    random_seqs.push_back(al::random_sequence(rng, 150));
  }
  rt::Machine m2({.nodes = 4, .workers = 2});
  auto unrelated = al::progressive_msa_auto(m2, random_seqs);
  // Normalise by alignment size (pairs * columns scale).
  const double rel = related.sum_of_pairs_score /
                     static_cast<double>(related.profile.length());
  const double unrel = unrelated.sum_of_pairs_score /
                       static_cast<double>(unrelated.profile.length());
  EXPECT_GT(rel, unrel);
}

TEST(Msa, UpgmaGuideGroupsRelatives) {
  // Two diverged subfamilies; the UPGMA guide tree's root must separate
  // them (this is what makes progressive alignment work).
  rt::Rng rng(20);
  auto rootseq = al::random_sequence(rng, 200);
  auto fam_a = al::evolve(rootseq, 30.0, {}, rng);
  auto fam_b = al::evolve(rootseq, 30.0, {}, rng);
  std::vector<std::string> seqs;
  for (int i = 0; i < 3; ++i) seqs.push_back(al::evolve(fam_a, 1.0, {}, rng));
  for (int i = 0; i < 3; ++i) seqs.push_back(al::evolve(fam_b, 1.0, {}, rng));
  auto guide = al::upgma(al::distance_matrix(seqs));
  std::vector<int> left;
  guide->left()->walk([&](const Tree<int, char>& n) {
    if (n.is_leaf()) left.push_back(n.value());
  });
  std::sort(left.begin(), left.end());
  const bool splits = (left == std::vector<int>{0, 1, 2}) ||
                      (left == std::vector<int>{3, 4, 5});
  EXPECT_TRUE(splits);
}

TEST(Msa, SingleSequenceFamilyIsItself) {
  rt::Machine m({.nodes = 2, .workers = 1});
  auto r = al::progressive_msa_auto(m, {"ACGUACG"});
  EXPECT_EQ(r.profile.consensus(), "ACGUACG");
  EXPECT_EQ(r.profile.depth(), 1u);
}

TEST(Msa, EmptyFamilyThrows) {
  rt::Machine m({.nodes = 2, .workers = 1});
  EXPECT_THROW(
      al::progressive_msa(m, {}, Tree<int, char>::leaf(0)),
      std::invalid_argument);
}

TEST(Msa, GuideTaxonOutOfRangeThrows) {
  rt::Machine m({.nodes = 2, .workers = 1});
  EXPECT_THROW(al::progressive_msa(m, {"ACG"}, Tree<int, char>::leaf(5)),
               std::out_of_range);
}
