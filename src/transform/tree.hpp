// The tree-reduction motifs of Sections 3.4 and 3.5.
//
// Tree1 (Section 3.4): identity transformation + the five-line
// divide-and-conquer reduction library. Composition gives
//     Tree-Reduce-1 = Server ∘ Rand ∘ Tree1.
// The user supplies eval/4 (the node evaluation function) and receives a
// reduce/2 motif; each reduction ships one subtree to a random server.
//
// TreeReduce2 (Section 3.5): a motif whose library implements the
// label-based algorithm: every node is assigned a processor label (parent
// = left child's label; sibling leaves share a label, so at most one of a
// node's two offspring values crosses processors), leaf values are sent to
// their parents' processors, values meet in a pending list, and each
// processor evaluates at most one node at a time. Includes the
// termination-detection code the paper's Tree-Reduce transformation adds:
// when the root value is known, halt is broadcast. Composition gives
//     Tree-Reduce-2 = Server ∘ TreeReduce2.
//
// Entry protocols (initial message for create/2):
//   Tree-Reduce-1:  reduce(TreeTerm, Result)       [no termination]
//                   run(TreeTerm, Result)          [with termination]
//   Tree-Reduce-2:  start(TreeTerm, Result)
// Tree terms: tree(Op,Left,Right) | leaf(Value); eval(Op,LV,RV,V) is the
// user-supplied node function.
#pragma once

#include "term/program.hpp"
#include "transform/motif.hpp"

namespace motif::transform {

/// The five-line divide-and-conquer library (identity transformation).
Motif tree1_motif();

/// Reuse through modification (Section 1: users "define variants of
/// existing motifs that provide modified functionality"): the Tree1
/// library with BOTH subtrees shipped to random processors instead of
/// one. Same interface; different schedule (more messages, the spawning
/// processor only coordinates).
Motif tree1_both_motif();

/// Server ∘ Rand ∘ Tree1Both with the run/2 terminating driver.
Motif tree_reduce1_both_motif();

/// Server ∘ Rand ∘ Tree1, with entry message types reduce/2 and run/2
/// (run/2 adds the termination-detection driver the paper sketches).
Motif tree_reduce1_motif();

/// The label-based motif: library implementing Section 3.5 (pre-Server
/// form: uses send/nodes/halt and defines server/1).
Motif tree_reduce2_motif();

/// Server ∘ TreeReduce2.
Motif tree_reduce2_full_motif();

}  // namespace motif::transform
