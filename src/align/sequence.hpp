// RNA sequences and a simple evolutionary mutation model.
//
// The paper's motivating application (Section 3) is the "generation of
// alignments of multiple sequences of RNA from different but related
// organisms". The real data and align-node code were proprietary and
// incomplete ("still being implemented"); this module provides the
// synthetic equivalent: families of related sequences produced by
// evolving a root sequence down a phylogenetic tree with substitutions
// and indels — which gives the tree-reduction workload the paper's two
// relevant properties: non-uniform node costs and large intermediates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/rng.hpp"

namespace motif::align {

/// RNA alphabet; '-' is the gap symbol used by alignments.
inline constexpr char kAlphabet[] = {'A', 'C', 'G', 'U'};
inline constexpr int kAlphabetSize = 4;
inline constexpr char kGap = '-';

/// 0..3 for ACGU, 4 for gap; -1 otherwise.
int symbol_index(char c);

/// True if every character is one of ACGU.
bool valid_rna(const std::string& s);

/// Uniform random sequence of length n.
std::string random_sequence(rt::Rng& rng, std::size_t n);

struct MutationModel {
  double substitution_rate = 0.03;  // per site per unit branch length
  double insertion_rate = 0.002;
  double deletion_rate = 0.002;
  std::size_t max_indel = 3;
};

/// Evolves `parent` along a branch of length `t`: each site mutates with
/// probability ~rate*t; indels insert/delete short runs.
std::string evolve(const std::string& parent, double t,
                   const MutationModel& model, rt::Rng& rng);

/// Hamming-style identity fraction of the aligned prefix (diagnostic).
double identity(const std::string& a, const std::string& b);

}  // namespace motif::align
