# Empty dependencies file for bench_transform.
# This may be replaced when dependencies are built.
