file(REMOVE_RECURSE
  "CMakeFiles/transform_sched_test.dir/transform_sched_test.cpp.o"
  "CMakeFiles/transform_sched_test.dir/transform_sched_test.cpp.o.d"
  "transform_sched_test"
  "transform_sched_test.pdb"
  "transform_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
