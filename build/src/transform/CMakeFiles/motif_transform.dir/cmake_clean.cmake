file(REMOVE_RECURSE
  "CMakeFiles/motif_transform.dir/motif.cpp.o"
  "CMakeFiles/motif_transform.dir/motif.cpp.o.d"
  "CMakeFiles/motif_transform.dir/rand.cpp.o"
  "CMakeFiles/motif_transform.dir/rand.cpp.o.d"
  "CMakeFiles/motif_transform.dir/sched.cpp.o"
  "CMakeFiles/motif_transform.dir/sched.cpp.o.d"
  "CMakeFiles/motif_transform.dir/server.cpp.o"
  "CMakeFiles/motif_transform.dir/server.cpp.o.d"
  "CMakeFiles/motif_transform.dir/terminate.cpp.o"
  "CMakeFiles/motif_transform.dir/terminate.cpp.o.d"
  "CMakeFiles/motif_transform.dir/tree.cpp.o"
  "CMakeFiles/motif_transform.dir/tree.cpp.o.d"
  "libmotif_transform.a"
  "libmotif_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
