# Empty dependencies file for align_msa_test.
# This may be replaced when dependencies are built.
