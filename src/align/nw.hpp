// Needleman–Wunsch global alignment: the low-level computational kernel
// (the "multilingual approach" of Section 2.1 — computationally intensive
// components in low-level code).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "runtime/machine.hpp"

namespace motif::align {

struct NWParams {
  std::int32_t match = 2;
  std::int32_t mismatch = -1;
  std::int32_t gap = -2;
};

struct NWResult {
  std::int32_t score = 0;
  std::string aligned_a;  // with '-' gap characters
  std::string aligned_b;
};

/// Global pairwise alignment with linear gap penalty.
NWResult needleman_wunsch(const std::string& a, const std::string& b,
                          const NWParams& params = {});

/// Score only (no traceback; O(min) memory).
std::int32_t nw_score(const std::string& a, const std::string& b,
                      const NWParams& params = {});

/// Parallel NW score via the wavefront motif (anti-diagonal tiles of the
/// DP matrix run concurrently). Identical result to nw_score; this is
/// the case-study kernel expressed as a grid-problem motif client.
std::int32_t nw_score_wavefront(rt::Machine& m, const std::string& a,
                                const std::string& b,
                                const NWParams& params = {});

/// Distance in [0,1] from a k-mer frequency profile comparison — the
/// cheap guide-tree distance (the full NW distance is quadratic and only
/// needed for small inputs).
double kmer_distance(const std::string& a, const std::string& b, int k = 3);

}  // namespace motif::align
