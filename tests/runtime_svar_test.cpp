#include "runtime/svar.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace rt = motif::rt;

TEST(SVar, StartsUnbound) {
  rt::SVar<int> v;
  EXPECT_FALSE(v.bound());
  EXPECT_FALSE(v.peek().has_value());
}

TEST(SVar, BindThenGet) {
  rt::SVar<int> v;
  v.bind(42);
  EXPECT_TRUE(v.bound());
  EXPECT_EQ(v.get(), 42);
  EXPECT_EQ(v.peek().value(), 42);
}

TEST(SVar, DoubleBindThrows) {
  rt::SVar<int> v;
  v.bind(1);
  EXPECT_THROW(v.bind(2), rt::SingleAssignmentViolation);
}

TEST(SVar, TryBindReportsOutcome) {
  rt::SVar<std::string> v;
  EXPECT_TRUE(v.try_bind("a"));
  EXPECT_FALSE(v.try_bind("b"));
  EXPECT_EQ(v.get(), "a");
}

TEST(SVar, CopiesShareTheCell) {
  rt::SVar<int> a;
  rt::SVar<int> b = a;
  a.bind(7);
  EXPECT_TRUE(b.bound());
  EXPECT_EQ(b.get(), 7);
  EXPECT_TRUE(a.same_cell(b));
  rt::SVar<int> c;
  EXPECT_FALSE(a.same_cell(c));
}

TEST(SVar, WhenBoundAfterBindRunsInline) {
  rt::SVar<int> v;
  v.bind(5);
  int seen = 0;
  v.when_bound([&](const int& x) { seen = x; });
  EXPECT_EQ(seen, 5);
}

TEST(SVar, WhenBoundBeforeBindRunsOnBind) {
  rt::SVar<int> v;
  int seen = 0;
  v.when_bound([&](const int& x) { seen = x; });
  EXPECT_EQ(seen, 0);
  v.bind(9);
  EXPECT_EQ(seen, 9);
}

TEST(SVar, ManyWaitersAllFire) {
  rt::SVar<int> v;
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    v.when_bound([&](const int&) { count.fetch_add(1); });
  }
  v.bind(1);
  EXPECT_EQ(count.load(), 100);
}

TEST(SVar, BlockingGetAcrossThreads) {
  rt::SVar<int> v;
  std::thread producer([v]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    v.bind(123);
  });
  EXPECT_EQ(v.get(), 123);
  producer.join();
}

TEST(SVar, ConcurrentBindersExactlyOneWins) {
  for (int round = 0; round < 20; ++round) {
    rt::SVar<int> v;
    std::atomic<int> wins{0};
    std::vector<std::thread> ts;
    for (int i = 0; i < 8; ++i) {
      ts.emplace_back([&, i, v]() mutable { wins += v.try_bind(i) ? 1 : 0; });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(wins.load(), 1);
    EXPECT_TRUE(v.bound());
  }
}

TEST(SVar, WhenBothBothOrders) {
  {
    rt::SVar<int> a, b;
    int sum = 0;
    rt::when_both(a, b, [&](const int& x, const int& y) { sum = x + y; });
    a.bind(1);
    EXPECT_EQ(sum, 0);
    b.bind(2);
    EXPECT_EQ(sum, 3);
  }
  {
    rt::SVar<int> a, b;
    int sum = 0;
    b.bind(20);
    a.bind(10);
    rt::when_both(a, b, [&](const int& x, const int& y) { sum = x + y; });
    EXPECT_EQ(sum, 30);
  }
}

TEST(SVar, WhenBothKeepsFirstValueAlive) {
  rt::SVar<std::string> b;
  std::string got;
  {
    rt::SVar<std::string> a;
    a.bind(std::string(1000, 'x'));
    rt::when_both(a, b,
                  [&](const std::string& x, const std::string& y) {
                    got = x + y;
                  });
    // `a` handle goes out of scope here; the continuation must keep the
    // cell alive.
  }
  b.bind("tail");
  EXPECT_EQ(got.size(), 1004u);
  EXPECT_EQ(got.substr(1000), "tail");
}

TEST(SVar, MoveOnlyValueTypeWorksViaCopyableWrapper) {
  rt::SVar<std::shared_ptr<int>> v;
  v.bind(std::make_shared<int>(77));
  EXPECT_EQ(*v.get(), 77);
}
