// Wavefront motif: dynamic-programming recurrences on a 2-D grid where
// cell (i,j) depends on (i-1,j), (i,j-1) and (i-1,j-1) — the classic
// "grid problem" shape of the paper's Section 4, and exactly the
// dependence structure of the case study's own low-level kernel (the
// Needleman–Wunsch alignment matrix; see align/nw_wavefront).
//
// The grid is tiled; a tile becomes runnable when its upper and left
// neighbour tiles complete; runnable tiles are posted to processors by
// row affinity, so anti-diagonals of tiles execute in parallel.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/svar.hpp"

namespace motif {

/// Non-blocking wavefront: launches the tile graph and returns a
/// completion variable (named "wavefront.done") that binds once every
/// tile has run. The supervised form in motifs/supervise.hpp wraps this;
/// body exceptions surface through wait_idle / wait_idle_for.
template <class Body>
rt::SVar<bool> wavefront_async(rt::Machine& m, std::size_t rows,
                               std::size_t cols, Body body,
                               std::size_t tile = 64) {
  if (rows == 0 || cols == 0) {
    rt::SVar<bool> done;
    done.bind(true);
    return done;
  }
  if (tile == 0) tile = 1;
  const std::size_t tr = (rows + tile - 1) / tile;
  const std::size_t tc = (cols + tile - 1) / tile;

  struct State {
    rt::Machine& m;
    std::size_t rows, cols, tile, tr, tc;
    std::shared_ptr<Body> body;
    std::vector<std::atomic<int>> deps;  // per tile
    std::atomic<std::size_t> remaining;
    rt::SVar<bool> done;

    State(rt::Machine& mm, std::size_t r, std::size_t c, std::size_t t,
          std::size_t ntr, std::size_t ntc, Body b)
        : m(mm), rows(r), cols(c), tile(t), tr(ntr), tc(ntc),
          body(std::make_shared<Body>(std::move(b))), deps(ntr * ntc),
          remaining(ntr * ntc) {
      for (std::size_t i = 0; i < ntr; ++i) {
        for (std::size_t j = 0; j < ntc; ++j) {
          deps[i * ntc + j] = (i > 0 ? 1 : 0) + (j > 0 ? 1 : 0);
        }
      }
    }

    void run_tile(std::shared_ptr<State> self, std::size_t bi,
                  std::size_t bj) {
      const std::size_t i0 = bi * tile, i1 = std::min(rows, i0 + tile);
      const std::size_t j0 = bj * tile, j1 = std::min(cols, j0 + tile);
      {
        TRACE_SPAN("wavefront.tile");
        for (std::size_t i = i0; i < i1; ++i) {
          for (std::size_t j = j0; j < j1; ++j) {
            (*body)(i, j);
          }
        }
      }
      if (bi + 1 < tr) release(self, bi + 1, bj);
      if (bj + 1 < tc) release(self, bi, bj + 1);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done.bind(true);
      }
    }

    void release(std::shared_ptr<State> self, std::size_t bi,
                 std::size_t bj) {
      if (deps[bi * tc + bj].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Row affinity: a tile row stays on one processor, so the left-
        // neighbour dependency is usually local and only the downward
        // edge crosses processors.
        m.post(static_cast<rt::NodeId>(bi % m.node_count()),
               [self, bi, bj] { self->run_tile(self, bi, bj); });
      }
    }
  };

  auto st = std::make_shared<State>(m, rows, cols, tile, tr, tc,
                                    std::move(body));
  st->done.set_name("wavefront.done");
  m.post(0, [st] { st->run_tile(st, 0, 0); });
  return st->done;
}

/// Runs body(i, j) for every (i, j) in [0, rows) x [0, cols), respecting
/// wavefront dependencies: body(i,j) runs after body(i-1,j) and
/// body(i,j-1). Within a tile, cells run in row-major order. Blocks the
/// calling thread; body exceptions propagate.
template <class Body>
void wavefront(rt::Machine& m, std::size_t rows, std::size_t cols,
               Body body, std::size_t tile = 64) {
  auto done = wavefront_async(m, rows, cols, std::move(body), tile);
  m.wait_idle();  // rethrows body exceptions; all tiles done after this
  done.get();
}

}  // namespace motif
