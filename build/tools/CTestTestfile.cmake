# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(motifsh_pipeline "/usr/bin/cmake" "-DSHELL=/root/repo/build/tools/motifsh" "-DSCRIPT=/root/repo/tools/smoke_script.txt" "-P" "/root/repo/tools/run_smoke.cmake")
set_tests_properties(motifsh_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
