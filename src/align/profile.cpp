#include "align/profile.hpp"

#include <algorithm>
#include <cmath>

#include "align/sequence.hpp"

namespace motif::align {

Profile::Profile(const std::string& seq) {
  cols_.reserve(seq.size());
  for (char c : seq) {
    Column col{};
    const int ix = symbol_index(c);
    col[static_cast<std::size_t>(ix < 0 ? 4 : ix)] = 1.0f;
    cols_.push_back(col);
  }
  depth_ = 1;
  tracked_.resize(footprint());
}

Profile Profile::assemble(std::vector<Column> cols, std::size_t depth) {
  Profile p;
  p.cols_ = std::move(cols);
  p.depth_ = depth;
  p.tracked_.resize(p.footprint());
  return p;
}

std::string Profile::consensus() const {
  std::string out;
  out.reserve(cols_.size());
  for (const auto& col : cols_) {
    const std::size_t best =
        static_cast<std::size_t>(std::max_element(col.begin(), col.end()) -
                                 col.begin());
    out.push_back(best == 4 ? kGap : kAlphabet[best]);
  }
  return out;
}

double Profile::mean_entropy() const {
  if (cols_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& col : cols_) {
    double n = 0.0;
    for (float f : col) n += f;
    if (n <= 0.0) continue;
    double h = 0.0;
    for (float f : col) {
      if (f > 0.0f) {
        const double q = f / n;
        h -= q * std::log2(q);
      }
    }
    total += h;
  }
  return total / static_cast<double>(cols_.size());
}

double column_score(const Column& a, const Column& b, const NWParams& p) {
  double na = 0.0, nb = 0.0;
  for (float f : a) na += f;
  for (float f : b) nb += f;
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (a[i] <= 0.0f || b[j] <= 0.0f) continue;
      double unit;
      if (i == 4 || j == 4) {
        unit = (i == j) ? 0.0 : p.gap;  // gap-gap is neutral
      } else {
        unit = (i == j) ? p.match : p.mismatch;
      }
      s += static_cast<double>(a[i]) * static_cast<double>(b[j]) * unit;
    }
  }
  return s / (na * nb);
}

namespace {
Column gap_column(float weight) {
  Column c{};
  c[4] = weight;
  return c;
}

Column merge_columns(const Column& a, const Column& b) {
  Column out{};
  for (std::size_t i = 0; i < 5; ++i) out[i] = a[i] + b[i];
  return out;
}
}  // namespace

Profile align_profiles(const Profile& a, const Profile& b,
                       const ProfileAlignParams& params) {
  const std::size_t n = a.length(), m = b.length();
  const NWParams& p = params.pairwise;
  const double gp = p.gap;

  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(m + 1));
  for (std::size_t i = 0; i <= n; ++i) dp[i][0] = static_cast<double>(i) * gp;
  for (std::size_t j = 0; j <= m; ++j) dp[0][j] = static_cast<double>(j) * gp;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const double diag =
          dp[i - 1][j - 1] + column_score(a.column(i - 1), b.column(j - 1), p);
      dp[i][j] = std::max({diag, dp[i - 1][j] + gp, dp[i][j - 1] + gp});
    }
  }
  // Traceback, assembling merged columns.
  std::vector<Column> cols;
  cols.reserve(std::max(n, m));
  std::size_t i = n, j = m;
  const float da = static_cast<float>(a.depth());
  const float db = static_cast<float>(b.depth());
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        dp[i][j] == dp[i - 1][j - 1] +
                        column_score(a.column(i - 1), b.column(j - 1), p)) {
      cols.push_back(merge_columns(a.column(i - 1), b.column(j - 1)));
      --i;
      --j;
    } else if (i > 0 && dp[i][j] == dp[i - 1][j] + gp) {
      cols.push_back(merge_columns(a.column(i - 1), gap_column(db)));
      --i;
    } else {
      cols.push_back(merge_columns(gap_column(da), b.column(j - 1)));
      --j;
    }
  }
  std::reverse(cols.begin(), cols.end());
  return Profile::assemble(std::move(cols), a.depth() + b.depth());
}

double sum_of_pairs(const Profile& p, const NWParams& params) {
  double s = 0.0;
  for (std::size_t i = 0; i < p.length(); ++i) {
    const Column& col = p.column(i);
    // Pairs within the column: match pairs of identical symbols,
    // mismatch pairs of different non-gap symbols, gap pairs.
    for (std::size_t x = 0; x < 5; ++x) {
      for (std::size_t y = x; y < 5; ++y) {
        double pairs;
        if (x == y) {
          pairs = static_cast<double>(col[x]) * (col[x] - 1.0) / 2.0;
        } else {
          pairs = static_cast<double>(col[x]) * col[y];
        }
        if (pairs <= 0.0) continue;
        double unit;
        if (x == 4 && y == 4) {
          unit = 0.0;
        } else if (x == 4 || y == 4) {
          unit = params.gap;
        } else {
          unit = (x == y) ? params.match : params.mismatch;
        }
        s += pairs * unit;
      }
    }
  }
  return s;
}

}  // namespace motif::align
