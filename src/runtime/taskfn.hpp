// Small-buffer, move-only callables for the scheduling hot path.
//
// rt::Task used to be std::function<void()>, whose libstdc++ small-buffer
// limit (16 bytes) is smaller than almost every real continuation the
// motifs post — a bound combine closure is typically a machine pointer, an
// SVar handle and a payload, 32-56 bytes — so each post() paid a heap
// allocation and each dispatch a heap free. SmallFn stores callables up to
// `Inline` bytes (64 by default, sized for those continuations) directly in
// the object, falling back to the heap only for oversized captures.
// (bench_sched_core static_asserts that its reference continuation — two
// words plus a 40-byte payload — stays inline; 48 was not enough for it.)
//
// Move-only on purpose: a posted task is executed exactly once, so nothing
// legitimate copies one. The fault injector's duplicate delivery — the one
// place the old runtime copied a Task — shares a single callable between
// the two deliveries instead (see Machine::post).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace motif::rt {

template <class Sig, std::size_t Inline = 64>
class SmallFn;

template <class R, class... Args, std::size_t Inline>
class SmallFn<R(Args...), Inline> {
  static_assert(Inline >= sizeof(void*), "buffer must hold the heap pointer");

 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any callable invocable as R(Args...). Callables that fit the
  /// inline buffer (and are nothrow-move-constructible, so relocation
  /// cannot fail mid-move) are stored in place; others on the heap.
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      vt_ = &kInlineVt<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*{new D(std::forward<F>(f))};
      vt_ = &kHeapVt<D>;
    }
  }

  SmallFn(SmallFn&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(storage_, o.storage_);
      o.vt_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(storage_, o.storage_);
        o.vt_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  R operator()(Args... args) {
    return vt_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// True when a callable of type D would live in the inline buffer.
  template <class D>
  static constexpr bool stores_inline() {
    return fits_inline<std::decay_t<D>>();
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= Inline && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <class D>
  static D* in_place(void* s) noexcept {
    return std::launder(reinterpret_cast<D*>(s));
  }
  template <class D>
  static D* heap_ptr(void* s) noexcept {
    return *std::launder(reinterpret_cast<D**>(s));
  }

  template <class D>
  static constexpr VTable kInlineVt = {
      [](void* s, Args&&... a) -> R {
        return (*in_place<D>(s))(std::forward<Args>(a)...);
      },
      [](void* dst, void* src) noexcept {
        D* p = in_place<D>(src);
        ::new (dst) D(std::move(*p));
        p->~D();
      },
      [](void* s) noexcept { in_place<D>(s)->~D(); },
  };

  template <class D>
  static constexpr VTable kHeapVt = {
      [](void* s, Args&&... a) -> R {
        return (*heap_ptr<D>(s))(std::forward<Args>(a)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*{heap_ptr<D>(src)};  // pointer relocation: a copy
      },
      [](void* s) noexcept { delete heap_ptr<D>(s); },
  };

  alignas(std::max_align_t) unsigned char storage_[Inline];
  const VTable* vt_ = nullptr;
};

/// The runtime's task type: a one-shot void() continuation. 64 bytes of
/// inline storage covers the common posted closure (callable + SVar handle
/// + small payload + machine pointer) without heap traffic.
using TaskFn = SmallFn<void()>;

}  // namespace motif::rt
