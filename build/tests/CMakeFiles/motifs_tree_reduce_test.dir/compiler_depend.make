# Empty compiler generated dependencies file for motifs_tree_reduce_test.
# This may be replaced when dependencies are built.
