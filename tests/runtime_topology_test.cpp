// Interconnect topologies: hop-distance math and message-hop accounting.
#include <gtest/gtest.h>

#include "runtime/machine.hpp"

namespace rt = motif::rt;
using rt::Machine;
using rt::Topology;

TEST(Topology, CompleteIsAlwaysOneHop) {
  Machine m({.nodes = 8, .workers = 1, .batch = 64, .seed = 1,
             .topology = Topology::Complete});
  for (rt::NodeId a = 0; a < 8; ++a) {
    for (rt::NodeId b = 0; b < 8; ++b) {
      EXPECT_EQ(m.hop_distance(a, b), a == b ? 0u : 1u);
    }
  }
}

TEST(Topology, RingDistanceWrapsAround) {
  Machine m({.nodes = 8, .workers = 1, .batch = 64, .seed = 1,
             .topology = Topology::Ring});
  EXPECT_EQ(m.hop_distance(0, 1), 1u);
  EXPECT_EQ(m.hop_distance(0, 4), 4u);
  EXPECT_EQ(m.hop_distance(0, 7), 1u);  // shorter the other way
  EXPECT_EQ(m.hop_distance(2, 6), 4u);
  EXPECT_EQ(m.hop_distance(6, 2), 4u);
  EXPECT_EQ(m.hop_distance(3, 3), 0u);
}

TEST(Topology, MeshManhattanDistance) {
  // 16 nodes -> 4x4 grid, row-major.
  Machine m({.nodes = 16, .workers = 1, .batch = 64, .seed = 1,
             .topology = Topology::Mesh2D});
  EXPECT_EQ(m.hop_distance(0, 1), 1u);    // (0,0)->(0,1)
  EXPECT_EQ(m.hop_distance(0, 4), 1u);    // (0,0)->(1,0)
  EXPECT_EQ(m.hop_distance(0, 5), 2u);    // (0,0)->(1,1)
  EXPECT_EQ(m.hop_distance(0, 15), 6u);   // (0,0)->(3,3)
  EXPECT_EQ(m.hop_distance(3, 12), 6u);   // (0,3)->(3,0)
}

TEST(Topology, MeshHandlesNonSquareCounts) {
  // 6 nodes -> 3 columns (ceil(sqrt(6))=3): grid rows 0..1.
  Machine m({.nodes = 6, .workers = 1, .batch = 64, .seed = 1,
             .topology = Topology::Mesh2D});
  EXPECT_EQ(m.hop_distance(0, 5), 3u);  // (0,0)->(1,2)
  EXPECT_EQ(m.hop_distance(2, 3), 3u);  // (0,2)->(1,0)
}

TEST(Topology, HypercubeHammingDistance) {
  Machine m({.nodes = 16, .workers = 1, .batch = 64, .seed = 1,
             .topology = Topology::Hypercube});
  EXPECT_EQ(m.hop_distance(0, 1), 1u);
  EXPECT_EQ(m.hop_distance(0, 3), 2u);
  EXPECT_EQ(m.hop_distance(0, 15), 4u);
  EXPECT_EQ(m.hop_distance(5, 10), 4u);  // 0101 vs 1010
  EXPECT_EQ(m.hop_distance(7, 7), 0u);
}

TEST(Topology, SymmetryAndTriangleInequality) {
  for (Topology t : {Topology::Complete, Topology::Ring, Topology::Mesh2D,
                     Topology::Hypercube}) {
    Machine m({.nodes = 16, .workers = 1, .batch = 64, .seed = 1,
               .topology = t});
    for (rt::NodeId a = 0; a < 16; ++a) {
      for (rt::NodeId b = 0; b < 16; ++b) {
        EXPECT_EQ(m.hop_distance(a, b), m.hop_distance(b, a));
        for (rt::NodeId c = 0; c < 16; ++c) {
          EXPECT_LE(m.hop_distance(a, c),
                    m.hop_distance(a, b) + m.hop_distance(b, c));
        }
      }
    }
  }
}

TEST(Topology, HopsAccumulateInCounters) {
  Machine m({.nodes = 8, .workers = 1, .batch = 64, .seed = 1,
             .topology = Topology::Ring});
  m.post(0, [&m] {
    m.post(4, [] {});  // 4 hops on the ring
    m.post(1, [] {});  // 1 hop
    m.post(0, [] {});  // local: no hops
  });
  m.wait_idle();
  EXPECT_EQ(m.counters(0).hops.load(), 5u);
  auto s = m.load_summary();
  EXPECT_EQ(s.total_hops, 5u);
  EXPECT_EQ(s.remote_msgs, 2u);
  EXPECT_DOUBLE_EQ(s.hops_per_remote, 2.5);
}

TEST(Topology, CompleteHopsEqualRemoteMessages) {
  Machine m({.nodes = 4, .workers = 2});
  m.post(0, [&m] {
    for (int i = 0; i < 10; ++i) m.post((i % 3) + 1, [] {});
  });
  m.wait_idle();
  auto s = m.load_summary();
  EXPECT_EQ(s.total_hops, s.remote_msgs);
}

TEST(Topology, DefaultIsComplete) {
  Machine m({.nodes = 4, .workers = 1});
  EXPECT_EQ(m.topology(), Topology::Complete);
}
