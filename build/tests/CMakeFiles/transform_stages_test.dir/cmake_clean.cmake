file(REMOVE_RECURSE
  "CMakeFiles/transform_stages_test.dir/transform_stages_test.cpp.o"
  "CMakeFiles/transform_stages_test.dir/transform_stages_test.cpp.o.d"
  "transform_stages_test"
  "transform_stages_test.pdb"
  "transform_stages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_stages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
