// The two tree-reduction motifs of the paper's case study, as native C++
// skeletons over the simulated multicomputer, plus the static-partition
// baseline the paper mentions ("A static partition of the tree is
// probably ideal in the simple arithmetic example", Section 3.1).
//
// tree_reduce1 — Section 3.4 (Tree-Reduce-1 = Server ∘ Rand ∘ Tree1):
//   divide and conquer; at each node one subtree is shipped to a
//   randomly selected processor, the other is evaluated locally; the
//   node value is computed (on the node's home processor) when both
//   subtree values are available. Many evaluations can be live on one
//   processor simultaneously.
//
// tree_reduce2 — Section 3.5 (Tree-Reduce-2 = Server ∘ Tree-Reduce):
//   every tree node is labelled with a processor (parent = left child's
//   label; sibling leaves share a label, so at most ONE of each node's
//   two offspring values crosses processors); leaf values are sent to
//   their parents' processors; values meet in a per-processor pending
//   table; each processor evaluates one node at a time (processors are
//   sequential executors), bounding the number of live intermediate
//   values.
//
// static_tree_reduce — the baseline: the top of the tree is cut at a
//   fixed depth and each resulting subtree is reduced sequentially on a
//   deterministically assigned processor; the cap is combined as values
//   arrive. No dynamic balancing.
//
// All three return the same value as reduce_sequential (tested as a
// property over random trees) and differ only in schedule, messages and
// memory — exactly the comparison the paper draws.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "motifs/tree.hpp"
#include "runtime/machine.hpp"
#include "runtime/metrics.hpp"
#include "runtime/svar.hpp"

namespace motif {

/// Victim-selection policy for tree_reduce1 (ablation: DESIGN.md §5).
enum class MapPolicy { Random, RoundRobin };

/// Labelling policy for tree_reduce2 (ablation: DESIGN.md §5). Paper =
/// Section 3.5's rule (parent = left child's label, sibling leaves
/// share); IndependentRandom drops both constraints, so every value
/// message has a 1-1/P chance of crossing processors.
enum class LabelPolicy { Paper, IndependentRandom };

namespace detail {

template <class V, class Tag, class Eval>
struct TR1 : std::enable_shared_from_this<TR1<V, Tag, Eval>> {
  rt::Machine& m;
  Eval eval;
  MapPolicy policy;
  std::atomic<std::uint32_t> rr{0};

  TR1(rt::Machine& mm, Eval e, MapPolicy p)
      : m(mm), eval(std::move(e)), policy(p) {}

  rt::NodeId pick() {
    if (policy == MapPolicy::RoundRobin) {
      return rr.fetch_add(1, std::memory_order_relaxed) % m.node_count();
    }
    return m.random_node();
  }

  void reduce(const typename Tree<V, Tag>::Ptr& t, rt::SVar<V> out) {
    if (t->is_leaf()) {
      out.bind(t->value());
      return;
    }
    rt::SVar<V> lv, rv;
    // Ship the right subtree to another processor (the paper's
    // "reduce(R,RV)@random"); keep the left at home. Continuations hold
    // the engine via shared_ptr: with the *_async entry point there is
    // no caller frame pinning it until quiescence.
    auto self = this->shared_from_this();
    m.post(pick(), [self, r = t->right(), rv] { self->reduce(r, rv); });
    const rt::NodeId home = rt::Machine::current_node() == rt::kNoNode
                                ? 0
                                : rt::Machine::current_node();
    // Left subtree continues on this node, as its own process.
    m.post(home, [self, l = t->left(), lv] { self->reduce(l, lv); });
    rt::when_both(lv, rv,
                  [self, home, tag = t->tag(), out](const V& l, const V& r) {
                    // The evaluation is INITIATED here — in the paper,
                    // "each reduce message received by a server causes the
                    // initiation of an independent computation" — so the
                    // active-evaluation scope opens now, even though the
                    // task may queue behind others on the home node. This
                    // is exactly the pile-up Tree-Reduce-2 eliminates.
                    auto scope = std::make_shared<rt::EvalScope>();
                    self->m.post(home, [self, tag, l, r, out, scope] {
                      TRACE_SPAN("tree_reduce1.eval");
                      out.bind(self->eval(tag, l, r));
                    });
                  });
  }
};

}  // namespace detail

/// Tree-Reduce-1, non-blocking: launches the reduction and returns the
/// result variable (named "tree_reduce1.result" for stall diagnostics)
/// without waiting. This is the form supervision wraps — the supervisor,
/// not the motif, owns the deadline (motifs/supervise.hpp).
template <class V, class Tag, class Eval>
rt::SVar<V> tree_reduce1_async(rt::Machine& m,
                               const typename Tree<V, Tag>::Ptr& tree,
                               Eval eval,
                               MapPolicy policy = MapPolicy::Random) {
  auto engine = std::make_shared<detail::TR1<V, Tag, Eval>>(
      m, std::move(eval), policy);
  rt::SVar<V> out;
  out.set_name("tree_reduce1.result");
  m.post(m.random_node(), [engine, tree, out] { engine->reduce(tree, out); });
  return out;
}

/// Tree-Reduce-1. Blocks the calling (external) thread until the value is
/// available. Eval: V(const Tag&, const V&, const V&).
template <class V, class Tag, class Eval>
V tree_reduce1(rt::Machine& m, const typename Tree<V, Tag>::Ptr& tree,
               Eval eval, MapPolicy policy = MapPolicy::Random) {
  auto out = tree_reduce1_async<V, Tag>(m, tree, std::move(eval), policy);
  // Quiesce first: wait_idle rethrows any exception a task (e.g. the
  // user's eval) threw; only then is the result guaranteed bound.
  m.wait_idle();
  return out.get();
}

namespace detail {

/// Preprocessing output for tree_reduce2: the labelled node table.
template <class V, class Tag>
struct TR2Plan {
  struct Entry {
    Tag tag{};
    std::int64_t parent = -1;   // -1 marks the root
    rt::NodeId parent_label = 0;
    bool is_right = false;      // side of this node within its parent
    rt::NodeId label = 0;
  };
  struct LeafMsg {
    std::int64_t parent;        // id of the parent entry
    rt::NodeId parent_label;
    bool is_right;
    rt::NodeId label;           // the leaf's own label (locality accounting)
    V value;
  };
  std::vector<Entry> entries;   // index = node id
  std::vector<LeafMsg> leaves;
};

/// Labels the tree (Section 3.5): ids in prefix order; the root's label
/// is random; a left child inherits its parent's label (so the parent's
/// label equals its left child's, as the paper specifies bottom-up); the
/// right child shares the label if both children are leaves (sibling
/// rule) and draws a fresh random label otherwise.
template <class V, class Tag>
TR2Plan<V, Tag> tr2_label(const typename Tree<V, Tag>::Ptr& root,
                          std::uint32_t processors, rt::Rng& rng,
                          LabelPolicy policy = LabelPolicy::Paper) {
  TR2Plan<V, Tag> plan;
  using Ptr = typename Tree<V, Tag>::Ptr;
  struct Item {
    Ptr t;
    rt::NodeId label;
    std::int64_t parent;
    rt::NodeId parent_label;
    bool is_right;
  };
  std::vector<Item> stack;
  stack.push_back({root, static_cast<rt::NodeId>(rng.below(processors)), -1,
                   0, false});
  while (!stack.empty()) {
    Item it = std::move(stack.back());
    stack.pop_back();
    if (it.t->is_leaf()) {
      plan.leaves.push_back(
          {it.parent, it.parent_label, it.is_right, it.label,
           it.t->value()});
      continue;
    }
    const auto id = static_cast<std::int64_t>(plan.entries.size());
    plan.entries.push_back(
        {it.t->tag(), it.parent, it.parent_label, it.is_right, it.label});
    const bool both_leaves =
        it.t->left()->is_leaf() && it.t->right()->is_leaf();
    rt::NodeId left_label = it.label;
    rt::NodeId right_label =
        both_leaves ? it.label
                    : static_cast<rt::NodeId>(rng.below(processors));
    if (policy == LabelPolicy::IndependentRandom) {
      left_label = static_cast<rt::NodeId>(rng.below(processors));
      right_label = static_cast<rt::NodeId>(rng.below(processors));
    }
    // Push right first so the left subtree gets the next (prefix) ids —
    // purely cosmetic; correctness only needs parent ids to precede use.
    stack.push_back({it.t->right(), right_label, id, it.label, true});
    stack.push_back({it.t->left(), left_label, id, it.label, false});
  }
  return plan;
}

}  // namespace detail

/// Observability hook for tree_reduce2 (experiment E3): number of value
/// messages that crossed processors vs stayed local in the last call.
struct TR2Stats {
  std::uint64_t local_values = 0;
  std::uint64_t remote_values = 0;
};

namespace detail {

/// The running state of one tree_reduce2 invocation: per-processor
/// pending tables touched only by that node's (sequential) tasks — no
/// locks needed.
template <class V, class Tag, class Eval>
struct TR2State : std::enable_shared_from_this<TR2State<V, Tag, Eval>> {
  using Plan = TR2Plan<V, Tag>;
  struct Partial {
    bool have_left = false, have_right = false;
    V left{}, right{};
  };

  rt::Machine& m;
  std::shared_ptr<Plan> plan;
  Eval eval;
  std::vector<std::unordered_map<std::int64_t, Partial>> pending;
  rt::SVar<V> result;
  std::atomic<std::uint64_t> local{0}, remote{0};
  TR2State(rt::Machine& mm, std::shared_ptr<Plan> p, Eval e)
      : m(mm), plan(std::move(p)), eval(std::move(e)),
        pending(mm.node_count()) {}

  void deliver(std::int64_t node_id, rt::NodeId to, bool is_right, V v) {
    const rt::NodeId from = rt::Machine::current_node();
    if (from != rt::kNoNode) {
      (from == to ? local : remote).fetch_add(1, std::memory_order_relaxed);
    }
    // shared_ptr capture: the async entry point returns before the run
    // finishes, so in-flight messages are what keep the state alive.
    auto self = this->shared_from_this();
    m.post(to, [self, node_id, is_right, v = std::move(v)]() mutable {
      self->arrive(node_id, is_right, std::move(v));
    });
  }

  void arrive(std::int64_t node_id, bool is_right, V v) {
    const rt::NodeId here = rt::Machine::current_node();
    Partial& p = pending[here][node_id];
    (is_right ? p.right : p.left) = std::move(v);
    (is_right ? p.have_right : p.have_left) = true;
    if (!(p.have_left && p.have_right)) return;
    Partial ready = std::move(p);
    pending[here].erase(node_id);
    const auto& e = plan->entries[static_cast<std::size_t>(node_id)];
    V value;
    {
      rt::EvalScope scope;  // exactly one evaluation active per node
      TRACE_SPAN("tree_reduce2.combine");
      value = eval(e.tag, ready.left, ready.right);
    }
    if (e.parent < 0) {
      result.bind(std::move(value));
      return;
    }
    deliver(e.parent, e.parent_label, e.is_right, std::move(value));
  }
};

/// Labels the tree and launches the leaf distribution; returns the state
/// (whose `result` variable, named "tree_reduce2.result", binds when the
/// root value is computed). Non-blocking.
template <class V, class Tag, class Eval>
std::shared_ptr<TR2State<V, Tag, Eval>> tr2_start(
    rt::Machine& m, const typename Tree<V, Tag>::Ptr& tree, Eval eval,
    LabelPolicy policy) {
  auto plan = std::make_shared<TR2Plan<V, Tag>>(
      tr2_label<V, Tag>(tree, m.node_count(), m.rng(0), policy));
  auto st = std::make_shared<TR2State<V, Tag, Eval>>(m, std::move(plan),
                                                     std::move(eval));
  st->result.set_name("tree_reduce2.result");
  // Initial distribution: each leaf value travels from the leaf's own
  // processor (its label) to its parent's processor. Left leaves and
  // sibling-rule right leaves are local by construction.
  for (const auto& leaf : st->plan->leaves) {
    (leaf.label == leaf.parent_label ? st->local : st->remote)
        .fetch_add(1, std::memory_order_relaxed);
    // Copy: messages move data by value between processors (CP.31).
    m.post(leaf.parent_label,
           [st, id = leaf.parent, right = leaf.is_right, v = leaf.value] {
             st->arrive(id, right, v);
           });
  }
  return st;
}

}  // namespace detail

/// Tree-Reduce-2, non-blocking: launches the reduction and returns the
/// result variable (named "tree_reduce2.result"). The supervised form in
/// motifs/supervise.hpp wraps this.
template <class V, class Tag, class Eval>
rt::SVar<V> tree_reduce2_async(rt::Machine& m,
                               const typename Tree<V, Tag>::Ptr& tree,
                               Eval eval,
                               LabelPolicy policy = LabelPolicy::Paper) {
  if (tree->is_leaf()) {
    rt::SVar<V> out;
    out.bind(tree->value());
    return out;
  }
  return detail::tr2_start<V, Tag>(m, tree, std::move(eval), policy)->result;
}

/// Tree-Reduce-2. Blocks the calling thread until the value is available.
template <class V, class Tag, class Eval>
V tree_reduce2(rt::Machine& m, const typename Tree<V, Tag>::Ptr& tree,
               Eval eval, TR2Stats* stats = nullptr,
               LabelPolicy policy = LabelPolicy::Paper) {
  if (tree->is_leaf()) return tree->value();
  auto st = detail::tr2_start<V, Tag>(m, tree, std::move(eval), policy);
  m.wait_idle();  // rethrows task exceptions; result is bound after this
  const V& v = st->result.get();
  if (stats != nullptr) {
    stats->local_values = st->local.load(std::memory_order_relaxed);
    stats->remote_values = st->remote.load(std::memory_order_relaxed);
  }
  return v;
}

/// Static-partition baseline: cut the tree at `cut_depth` (default:
/// log2(processors)+1), reduce each piece sequentially on a processor
/// assigned round-robin, combine the cap as values arrive.
template <class V, class Tag, class Eval>
V static_tree_reduce(rt::Machine& m, const typename Tree<V, Tag>::Ptr& tree,
                     Eval eval, std::uint32_t cut_depth = 0) {
  if (cut_depth == 0) {
    std::uint32_t p = m.node_count();
    while (p > 1) {
      ++cut_depth;
      p /= 2;
    }
    ++cut_depth;
  }
  struct Engine {
    rt::Machine& m;
    Eval eval;
    std::atomic<std::uint32_t> next{0};

    Engine(rt::Machine& mm, Eval e) : m(mm), eval(std::move(e)) {}
    void go(const typename Tree<V, Tag>::Ptr& t, std::uint32_t depth,
            rt::SVar<V> out) {
      if (t->is_leaf() || depth == 0) {
        const rt::NodeId target =
            next.fetch_add(1, std::memory_order_relaxed) % m.node_count();
        m.post(target, [this, t, out] {
          TRACE_SPAN("static_tree_reduce.partition");
          out.bind(reduce_sequential<V, Tag>(t, eval));
        });
        return;
      }
      rt::SVar<V> lv, rv;
      go(t->left(), depth - 1, lv);
      go(t->right(), depth - 1, rv);
      rt::when_both(lv, rv, [this, tag = t->tag(), out](const V& l,
                                                        const V& r) {
        rt::EvalScope scope;
        TRACE_SPAN("static_tree_reduce.combine");
        out.bind(eval(tag, l, r));
      });
    }
  };
  auto engine = std::make_shared<Engine>(m, std::move(eval));
  rt::SVar<V> out;
  engine->go(tree, cut_depth, out);
  m.wait_idle();  // rethrows task exceptions; result is bound after this
  return out.get();
}

}  // namespace motif
