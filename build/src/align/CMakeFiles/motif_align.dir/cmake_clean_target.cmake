file(REMOVE_RECURSE
  "libmotif_align.a"
)
