#include "motifs/graph.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <memory>

#include "runtime/svar.hpp"

namespace motif {

Graph Graph::from_edges(
    std::size_t n,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    bool undirected) {
  Graph g;
  std::vector<std::size_t> degree(n, 0);
  for (const auto& [a, b] : edges) {
    ++degree[a];
    if (undirected) ++degree[b];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  }
  g.targets_.resize(g.offsets_[n]);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    g.targets_[cursor[a]++] = b;
    if (undirected) g.targets_[cursor[b]++] = a;
  }
  return g;
}

Graph Graph::random_gnp(std::size_t n, double p, rt::Rng& rng) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  // Geometric skipping: expected O(n^2 p) work.
  if (n >= 2 && p > 0.0) {
    double log1mp = std::log(1.0 - std::min(p, 0.999999999999));
    std::int64_t v = 1, w = -1;
    while (static_cast<std::size_t>(v) < n) {
      double u;
      do {
        u = rng.uniform();
      } while (u == 0.0);
      w += 1 + static_cast<std::int64_t>(std::floor(std::log(u) / log1mp));
      while (w >= v && static_cast<std::size_t>(v) < n) {
        w -= v;
        ++v;
      }
      if (static_cast<std::size_t>(v) < n) {
        edges.emplace_back(static_cast<std::uint32_t>(v),
                           static_cast<std::uint32_t>(w));
      }
    }
  }
  return from_edges(n, edges, true);
}

Graph Graph::ring_with_chords(std::size_t n, std::size_t extra,
                              rt::Rng& rng) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::size_t v = 0; v < n; ++v) {
    edges.emplace_back(static_cast<std::uint32_t>(v),
                       static_cast<std::uint32_t>((v + 1) % n));
  }
  for (std::size_t k = 0; k < extra; ++k) {
    auto a = static_cast<std::uint32_t>(rng.below(n));
    auto b = static_cast<std::uint32_t>(rng.below(n));
    if (a != b) edges.emplace_back(a, b);
  }
  return from_edges(n, edges, true);
}

std::vector<std::int32_t> bfs_sequential(const Graph& g, std::uint32_t src) {
  std::vector<std::int32_t> dist(g.vertex_count(), kUnreached);
  std::deque<std::uint32_t> q;
  dist[src] = 0;
  q.push_back(src);
  while (!q.empty()) {
    const std::uint32_t v = q.front();
    q.pop_front();
    for (const std::uint32_t* it = g.neighbors_begin(v);
         it != g.neighbors_end(v); ++it) {
      if (dist[*it] == kUnreached) {
        dist[*it] = dist[v] + 1;
        q.push_back(*it);
      }
    }
  }
  return dist;
}

std::vector<std::int32_t> parallel_bfs(rt::Machine& m, const Graph& g,
                                       std::uint32_t src) {
  const std::size_t n = g.vertex_count();
  std::vector<std::atomic<std::int32_t>> dist(n);
  for (auto& d : dist) d.store(kUnreached, std::memory_order_relaxed);
  dist[src].store(0, std::memory_order_relaxed);

  std::vector<std::uint32_t> frontier{src};
  std::int32_t level = 0;
  const std::uint32_t p = m.node_count();

  while (!frontier.empty()) {
    const std::uint32_t blocks = static_cast<std::uint32_t>(
        std::min<std::size_t>(p, frontier.size()));
    auto nexts =
        std::make_shared<std::vector<std::vector<std::uint32_t>>>(blocks);
    auto missing = std::make_shared<std::atomic<std::uint32_t>>(blocks);
    rt::SVar<bool> level_done;
    for (std::uint32_t b = 0; b < blocks; ++b) {
      const std::size_t i0 = b * frontier.size() / blocks;
      const std::size_t i1 = (b + 1) * frontier.size() / blocks;
      m.post(static_cast<rt::NodeId>(b), [&g, &dist, &frontier, i0, i1, b,
                                          level, nexts, missing,
                                          level_done]() mutable {
        std::vector<std::uint32_t> local;
        for (std::size_t i = i0; i < i1; ++i) {
          const std::uint32_t v = frontier[i];
          for (const std::uint32_t* it = g.neighbors_begin(v);
               it != g.neighbors_end(v); ++it) {
            std::int32_t expect = kUnreached;
            if (dist[*it].compare_exchange_strong(
                    expect, level + 1, std::memory_order_relaxed)) {
              local.push_back(*it);
            }
          }
        }
        (*nexts)[b] = std::move(local);
        if (missing->fetch_sub(1, std::memory_order_acq_rel) == 1) {
          level_done.bind(true);
        }
      });
    }
    m.wait_idle();  // barrier; rethrows task errors
    level_done.get();
    std::vector<std::uint32_t> next;
    for (auto& blk : *nexts) {
      next.insert(next.end(), blk.begin(), blk.end());
    }
    frontier = std::move(next);
    ++level;
  }

  std::vector<std::int32_t> out(n);
  for (std::size_t v = 0; v < n; ++v) {
    out[v] = dist[v].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint32_t> connected_components(rt::Machine& m,
                                                const Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<std::uint32_t> comp(n, static_cast<std::uint32_t>(-1));
  std::uint32_t next_id = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (comp[v] != static_cast<std::uint32_t>(-1)) continue;
    auto dist = parallel_bfs(m, g, v);
    for (std::uint32_t u = 0; u < n; ++u) {
      if (dist[u] != kUnreached) comp[u] = next_id;
    }
    ++next_id;
  }
  return comp;
}

}  // namespace motif
