#include "motifs/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <variant>

namespace m = motif;
namespace rt = motif::rt;

TEST(ServerNetwork, SingleMessageHandled) {
  rt::Machine mach({.nodes = 2, .workers = 2});
  std::atomic<int> seen{0};
  m::ServerNetwork<int> net(mach, 2, [&](auto& ctx, int v) {
    seen = v;
    ctx.halt();
  });
  net.start(1, 42);
  EXPECT_TRUE(net.wait());
  EXPECT_EQ(seen.load(), 42);
  EXPECT_EQ(net.messages_handled(), 1u);
}

TEST(ServerNetwork, TokenRingVisitsAllServers) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  std::atomic<int> hops{0};
  m::ServerNetwork<int> net(mach, 4, [&](auto& ctx, int remaining) {
    hops.fetch_add(1);
    if (remaining == 0) {
      ctx.halt();
      return;
    }
    ctx.send(ctx.self() % ctx.nodes() + 1, remaining - 1);
  });
  net.start(1, 11);
  EXPECT_TRUE(net.wait());
  EXPECT_EQ(hops.load(), 12);
}

TEST(ServerNetwork, SelfReportsCorrectServer) {
  rt::Machine mach({.nodes = 3, .workers = 2});
  std::atomic<std::uint32_t> where{0};
  m::ServerNetwork<int> net(mach, 3, [&](auto& ctx, int) {
    where = ctx.self();
    ctx.halt();
  });
  net.start(3, 0);
  net.wait();
  EXPECT_EQ(where.load(), 3u);
}

TEST(ServerNetwork, NodesReportsCount) {
  rt::Machine mach({.nodes = 8, .workers = 2});
  std::atomic<std::uint32_t> n{0};
  m::ServerNetwork<int> net(mach, 5, [&](auto& ctx, int) {
    n = ctx.nodes();
    ctx.halt();
  });
  net.start(2, 0);
  net.wait();
  EXPECT_EQ(n.load(), 5u);
}

TEST(ServerNetwork, MessagesToSelfAreLegal) {
  rt::Machine mach({.nodes = 2, .workers = 2});
  std::atomic<int> count{0};
  m::ServerNetwork<int> net(mach, 2, [&](auto& ctx, int k) {
    count.fetch_add(1);
    if (k > 0) {
      ctx.send(ctx.self(), k - 1);
    } else {
      ctx.halt();
    }
  });
  net.start(2, 5);
  net.wait();
  EXPECT_EQ(count.load(), 6);
}

TEST(ServerNetwork, HaltDropsPendingMessages) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  std::atomic<int> handled{0};
  m::ServerNetwork<int> net(mach, 2, [&](auto& ctx, int v) {
    handled.fetch_add(1);
    if (v == 0) {
      // Flood the other server, then halt: the flood must be dropped.
      for (int i = 0; i < 100; ++i) ctx.send(2, 1000 + i);
      ctx.halt();
    }
  });
  net.start(1, 0);
  EXPECT_TRUE(net.wait());
  EXPECT_EQ(handled.load(), 1);
}

TEST(ServerNetwork, FanOutFanIn) {
  // Server 1 scatters work; others reply; server 1 halts after all ACKs.
  struct Msg {
    int kind;  // 0 = work, 1 = ack
    int payload;
  };
  rt::Machine mach({.nodes = 4, .workers = 2});
  std::atomic<int> acks{0};
  std::atomic<long> sum{0};
  m::ServerNetwork<Msg> net(mach, 4, [&](auto& ctx, Msg msg) {
    if (msg.kind == 0 && ctx.self() == 1) {
      for (std::uint32_t s = 2; s <= ctx.nodes(); ++s) {
        ctx.send(s, Msg{0, static_cast<int>(s) * 10});
      }
      return;
    }
    if (msg.kind == 0) {
      ctx.send(1, Msg{1, msg.payload * 2});
      return;
    }
    sum.fetch_add(msg.payload);
    if (acks.fetch_add(1) + 1 == 3) ctx.halt();
  });
  net.start(1, Msg{0, 0});
  EXPECT_TRUE(net.wait());
  EXPECT_EQ(sum.load(), (20 + 30 + 40) * 2);
}

TEST(ServerNetwork, InvalidTargetsThrow) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  m::ServerNetwork<int> net(mach, 2, [](auto&, int) {});
  EXPECT_THROW(net.start(0, 1), std::out_of_range);
  EXPECT_THROW(net.start(3, 1), std::out_of_range);
  EXPECT_THROW((m::ServerNetwork<int>(mach, 5, [](auto&, int) {})),
               std::invalid_argument);
}

TEST(ServerNetwork, WaitWithoutHaltReturnsFalse) {
  rt::Machine mach({.nodes = 2, .workers = 1});
  std::atomic<int> seen{0};
  m::ServerNetwork<int> net(mach, 2, [&](auto&, int v) { seen = v; });
  net.start(1, 7);
  EXPECT_FALSE(net.wait());  // drained but never halted
  EXPECT_EQ(seen.load(), 7);
}

TEST(ServerNetwork, PerServerHandlingIsSequential) {
  rt::Machine mach({.nodes = 2, .workers = 4});
  std::atomic<int> concurrent{0};
  std::atomic<bool> overlap{false};
  m::ServerNetwork<int> net(mach, 1, [&](auto&, int) {
    if (concurrent.fetch_add(1) != 0) overlap = true;
    for (int i = 0; i < 100; ++i) asm volatile("");
    concurrent.fetch_sub(1);
  });
  for (int i = 0; i < 200; ++i) net.start(1, i);
  net.wait();
  EXPECT_FALSE(overlap.load());
}
