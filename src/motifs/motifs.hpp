// Umbrella header: the native algorithmic-motif library (the public API).
//
// A motif is a reusable parallel program structure completed by
// application-specific routines (paper Section 1). This library offers:
//   tree.hpp / tree_reduce.hpp — binary trees; Tree-Reduce-1 (random
//       mapping), Tree-Reduce-2 (labelled, memory-bounded), static
//       partition baseline, sequential oracle
//   server.hpp        — fully connected server network (send/nodes/halt)
//   scheduler.hpp     — manager/worker DAG scheduler, flat or hierarchical
//   dnc.hpp           — generic divide and conquer with random mapping
//   search.hpp        — or-parallel search: count / first / branch&bound
//   sort.hpp          — merge sort (composed from D&C) and sample sort
//   grid.hpp          — 2-D grid relaxation (Jacobi)
//   graph.hpp         — CSR graphs, level-synchronous BFS, components
//   pipeline.hpp      — Figure 1 producer/consumer chain on channels
//   parallel_for.hpp  — block-partitioned loops and reductions
//   scan.hpp          — parallel prefix (inclusive/exclusive)
//   wavefront.hpp     — tiled anti-diagonal DP grids
//
// All motifs execute on runtime/machine.hpp's simulated multicomputer;
// the Strand-level counterparts (transform/ + interp/) produce the same
// structures from high-level programs.
#pragma once

#include "motifs/dnc.hpp"
#include "motifs/graph.hpp"
#include "motifs/grid.hpp"
#include "motifs/parallel_for.hpp"
#include "motifs/pipeline.hpp"
#include "motifs/scheduler.hpp"
#include "motifs/search.hpp"
#include "motifs/scan.hpp"
#include "motifs/server.hpp"
#include "motifs/sort.hpp"
#include "motifs/supervise.hpp"
#include "motifs/tree.hpp"
#include "motifs/tree_reduce.hpp"
#include "motifs/wavefront.hpp"
