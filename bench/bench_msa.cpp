// Experiment E10 (DESIGN.md §4): the case study end-to-end — multiple
// sequence alignment of synthetic RNA families by guide-tree reduction
// (Section 3), Tree-Reduce-1 vs Tree-Reduce-2.
//
// Series: family size x root sequence length. Reported: wall time, peak
// tracked bytes (profiles + DP intermediates live at once), peak
// initiated evaluations, and alignment quality (sum-of-pairs per column,
// identical across schedules — the motifs change the schedule, never the
// answer).
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "align/align.hpp"
#include "runtime/metrics.hpp"

namespace al = motif::align;
namespace rt = motif::rt;

namespace {

void run_case(benchmark::State& state, al::MsaSchedule sched) {
  const auto taxa = static_cast<std::size_t>(state.range(0));
  const auto len = static_cast<std::size_t>(state.range(1));
  auto fam = al::synthetic_family(taxa, len, 77);
  double score = 0;
  std::int64_t peak = 0, evals = 0;
  std::size_t columns = 0;
  for (auto _ : state) {
    rt::live_bytes().reset();
    rt::active_evals().reset();
    rt::Machine mach({.nodes = 8, .workers = 2, .seed = 7});
    auto r = al::progressive_msa(mach, fam.sequences, fam.guide, sched);
    benchmark::DoNotOptimize(r.profile.length());
    score = r.sum_of_pairs_score;
    columns = r.profile.length();
    peak = rt::live_bytes().peak();
    evals = rt::active_evals().peak();
  }
  state.counters["peak_MiB"] = static_cast<double>(peak) / (1 << 20);
  state.counters["peak_evals"] = static_cast<double>(evals);
  state.counters["sp_per_col"] = score / static_cast<double>(columns);
  state.counters["columns"] = static_cast<double>(columns);
}

void BM_MSA_Sequential(benchmark::State& state) {
  run_case(state, al::MsaSchedule::Sequential);
  MOTIF_BENCH_REPORT(state);
}
void BM_MSA_TreeReduce1(benchmark::State& state) {
  run_case(state, al::MsaSchedule::TreeReduce1);
  MOTIF_BENCH_REPORT(state);
}
void BM_MSA_TreeReduce2(benchmark::State& state) {
  run_case(state, al::MsaSchedule::TreeReduce2);
  MOTIF_BENCH_REPORT(state);
}

void args(benchmark::internal::Benchmark* b) {
  b->Args({16, 100})
      ->Args({64, 100})
      ->Args({256, 100})
      ->Args({32, 400})
      ->Args({64, 800})
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

BENCHMARK(BM_MSA_Sequential)->Apply(args);
BENCHMARK(BM_MSA_TreeReduce1)->Apply(args);
BENCHMARK(BM_MSA_TreeReduce2)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
