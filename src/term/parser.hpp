// Reader for the Strand-like guarded-rule language of the paper:
//
//   H :- G1, ..., Gm | B1, ..., Bn.    % guard before the commit bar
//   H :- B1, ..., Bn.                  % empty guard
//   H.                                 % empty guard and body
//
// Terms: atoms, 'quoted atoms', Variables, _ (anonymous), integers,
// floats, "strings", [lists|Tails], {tuples}, compounds, and infix
// operators (ops.hpp) including `@` placement annotations such as
// reduce(R,RV)@random or server_init(N,I,O)@J.
//
// Comments run from % to end of line.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "term/term.hpp"

namespace motif::term {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, int line, int col)
      : std::runtime_error("parse error at " + std::to_string(line) + ":" +
                           std::to_string(col) + ": " + msg),
        line(line),
        col(col) {}
  int line;
  int col;
};

/// Source location of a clause: [line:col, end_line:end_col], 1-based.
/// Clauses synthesized by transformations have no span (valid() == false).
struct SourceSpan {
  int line = 0;
  int col = 0;
  int end_line = 0;
  int end_col = 0;
  bool valid() const { return line > 0; }
  std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

/// One guarded rule. (Named Clause here; Program in program.hpp aggregates
/// clauses into process definitions.)
struct Clause {
  Term head;
  std::vector<Term> guard;
  std::vector<Term> body;
  SourceSpan span;  // where the clause came from, if parsed
};

/// Parses a whole source text into clauses, in order.
std::vector<Clause> parse_clauses(std::string_view src);

/// Parses a single term (no trailing '.'). Variables with the same name
/// share a cell within this call.
Term parse_term(std::string_view src);

}  // namespace motif::term
