#include "term/program.hpp"

#include <gtest/gtest.h>

namespace t = motif::term;
using t::ProcKey;
using t::Program;

namespace {
const char* kTreeSrc = R"(
  eval('+',L,R,Value) :- Value is L + R.
  eval('*',L,R,Value) :- Value is L * R.
  reduce(tree(V,L,R),Value) :- reduce(R,RV)@random, reduce(L,LV),
      eval(V,LV,RV,Value).
  reduce(leaf(L),Value) :- Value := L.
)";
}

TEST(Program, ParseAndDefined) {
  Program p = Program::parse(kTreeSrc);
  EXPECT_EQ(p.clauses().size(), 4u);
  auto defs = p.defined();
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_EQ(defs[0], (ProcKey{"eval", 4}));
  EXPECT_EQ(defs[1], (ProcKey{"reduce", 2}));
  EXPECT_TRUE(p.defines({"reduce", 2}));
  EXPECT_FALSE(p.defines({"reduce", 3}));
}

TEST(Program, RulesForKeepsOrder) {
  Program p = Program::parse(kTreeSrc);
  auto rules = p.rules_for({"reduce", 2});
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].head.arg(0).functor(), "tree");
  EXPECT_EQ(rules[1].head.arg(0).functor(), "leaf");
}

TEST(Program, GoalKeyStripsPlacement) {
  Program p = Program::parse(kTreeSrc);
  const auto rules = p.rules_for({"reduce", 2});
  const auto& body = rules[0].body;
  EXPECT_EQ(t::goal_key(body[0]), (ProcKey{"reduce", 2}));
  auto view = t::strip_placement(body[0]);
  EXPECT_TRUE(view.annotated);
  EXPECT_EQ(view.placement.functor(), "random");
  auto plain = t::strip_placement(body[1]);
  EXPECT_FALSE(plain.annotated);
}

TEST(Program, CallGraph) {
  Program p = Program::parse(kTreeSrc);
  auto g = p.call_graph();
  const auto& reduce_calls = g.at({"reduce", 2});
  EXPECT_TRUE(reduce_calls.count({"reduce", 2}));
  EXPECT_TRUE(reduce_calls.count({"eval", 4}));
  EXPECT_TRUE(reduce_calls.count({":=", 2}));
  const auto& eval_calls = g.at({"eval", 4});
  EXPECT_TRUE(eval_calls.count({"is", 2}));
}

TEST(Program, CallersOfDirectAndTransitive) {
  Program p = Program::parse(R"(
    top(X) :- mid(X).
    mid(X) :- leafp(X).
    leafp(X) :- send(1,X).
    other(X) :- unrelated(X).
  )");
  auto need = p.callers_of(
      [](const ProcKey& k) { return k.name == "send" && k.arity == 2; });
  EXPECT_TRUE(need.count({"leafp", 1}));
  EXPECT_TRUE(need.count({"mid", 1}));
  EXPECT_TRUE(need.count({"top", 1}));
  EXPECT_FALSE(need.count({"other", 1}));
}

TEST(Program, CallersOfHandlesRecursion) {
  Program p = Program::parse(R"(
    loop(X) :- loop(X).
    user(X) :- loop(X), nodes(N), use(N).
  )");
  auto need = p.callers_of(
      [](const ProcKey& k) { return k.name == "nodes" && k.arity == 1; });
  EXPECT_TRUE(need.count({"user", 1}));
  EXPECT_FALSE(need.count({"loop", 1}));
}

TEST(Program, LinkedWithAppends) {
  Program app = Program::parse("main :- helper(1).");
  Program lib = Program::parse("helper(X) :- work(X).");
  Program out = app.linked_with(lib);
  EXPECT_EQ(out.clauses().size(), 2u);
  EXPECT_TRUE(out.defines({"main", 0}));
  EXPECT_TRUE(out.defines({"helper", 1}));
  // Originals untouched (value semantics).
  EXPECT_EQ(app.clauses().size(), 1u);
}

TEST(Program, AlphaEquivalentPrograms) {
  Program a = Program::parse("p(X) :- q(X,Y), r(Y).");
  Program b = Program::parse("p(A) :- q(A,B), r(B).");
  Program c = Program::parse("p(A) :- q(A,B), r(A).");
  EXPECT_TRUE(a.alpha_equivalent(b));
  EXPECT_FALSE(a.alpha_equivalent(c));
  EXPECT_FALSE(a.alpha_equivalent(Program::parse("p(X) :- q(X,Y).")));
}

TEST(Program, ToSourceRoundTrips) {
  Program p = Program::parse(kTreeSrc);
  Program q = Program::parse(p.to_source());
  EXPECT_TRUE(p.alpha_equivalent(q));
}

TEST(Program, MetacallVariableGoalIgnoredInGraph) {
  Program p = Program::parse("apply(G) :- G.");
  auto g = p.call_graph();
  EXPECT_TRUE(g.at({"apply", 1}).empty());
}

TEST(ProcKey, Ordering) {
  ProcKey a{"a", 1}, b{"a", 2}, c{"b", 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.to_string(), "a/1");
}
