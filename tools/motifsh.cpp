// motifsh — an exploratory shell for the motif system.
//
// The paper's closing argument (Section 4) is that motifs "encourage
// programmers to experiment with the use of alternative motifs in a
// single application" — an exploratory programming style. This shell is
// that loop: load an application, apply motifs by name, inspect the
// transformed program at any stage, and run queries on the simulated
// multicomputer.
//
//   $ ./build/tools/motifsh
//   motif> :load my_eval.str          load clauses from a file
//   motif> :apply tree1               link the Tree1 library
//   motif> :apply rand                rewrite @random, generate server/1
//   motif> :apply server              thread DT, link the server library
//   motif> :list                      show the current program
//   motif> :nodes 8                   set the machine size
//   motif> :run create(8, run(tree('+',leaf(1),leaf(2)),V))
//   motif> :profile                   reductions by definition (last run)
//   motif> :stats                     scheduler counters (last run)
//   motif> :trace on                  record timelines for later runs
//   motif> :trace dump [file]         text summary, or Chrome JSON to file
//
// Invoke with `--trace FILE` to write a Chrome-trace JSON (load it in
// chrome://tracing or Perfetto) after every traced :run.
//
// Fault injection (`--fault-seed N`, or the :faults command) runs every
// subsequent :run under a deterministic FaultPlan — dropped, duplicated
// and delayed cross-node messages, node kills, injected task throws — so
// a motif's behaviour under partial failure is explorable from the shell.
//
// Reads commands from stdin (scriptable: `motifsh < script`), so it also
// serves as an end-to-end smoke test target.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "runtime/fault.hpp"
#include "runtime/trace.hpp"

#include "analysis/lint.hpp"
#include "interp/interp.hpp"
#include "interp/stdlib.hpp"
#include "term/program.hpp"
#include "term/writer.hpp"
#include "transform/motif.hpp"
#include "transform/rand.hpp"
#include "transform/sched.hpp"
#include "transform/server.hpp"
#include "transform/terminate.hpp"
#include "transform/tree.hpp"

namespace tf = motif::transform;
namespace in = motif::interp;
using motif::term::ProcKey;
using motif::term::Program;

namespace {

struct Shell {
  Program program;
  std::uint32_t nodes = 4;
  in::RunResult last;
  bool had_run = false;
  bool trace_enabled = false;
  std::string trace_file;  // --trace FILE: Chrome JSON after each :run
  motif::rt::TraceLog last_trace;
  bool had_trace = false;
  motif::rt::FaultPlan faults;  // disabled unless :faults / --fault-seed

  std::optional<tf::Motif> motif_by_name(const std::string& name,
                                         const std::string& arg) {
    if (name == "rand") return tf::rand_motif(parse_keys(arg));
    if (name == "server") return tf::server_motif();
    if (name == "tree1") return tf::tree1_motif();
    if (name == "tree1both") return tf::tree1_both_motif();
    if (name == "treereduce2") return tf::tree_reduce2_motif();
    if (name == "sched") return tf::sched_motif(parse_keys(arg));
    if (name == "terminate") {
      auto keys = parse_keys(arg);
      if (keys.size() != 1) {
        std::cout << "terminate needs one entry, e.g. "
                     ":apply terminate reduce/2\n";
        return std::nullopt;
      }
      return tf::terminate_motif(keys[0]);
    }
    std::cout << "unknown motif '" << name
              << "' (rand server tree1 tree1both treereduce2 sched "
                 "terminate)\n";
    return std::nullopt;
  }

  static std::vector<ProcKey> parse_keys(const std::string& s) {
    std::vector<ProcKey> keys;
    std::istringstream is(s);
    std::string item;
    while (is >> item) {
      const auto slash = item.find('/');
      if (slash == std::string::npos) continue;
      keys.push_back(ProcKey{item.substr(0, slash),
                             std::stoul(item.substr(slash + 1))});
    }
    return keys;
  }

  void write_trace_file(const std::string& path) {
    std::ofstream f(path);
    if (!f) {
      std::cout << "cannot write " << path << "\n";
      return;
    }
    motif::rt::write_chrome_trace(last_trace, f);
    std::cout << "trace: wrote " << last_trace.total_events()
              << " events to " << path << "\n";
  }

  void run_goal(const std::string& goal) {
    try {
      in::InterpOptions opts;
      opts.nodes = nodes;
      opts.workers = 2;
      opts.faults = faults;
      in::Interp interp(program, opts);
      if (trace_enabled) interp.machine().start_trace();
      auto [g, r] = interp.run_query(goal);
      if (trace_enabled) {
        last_trace = interp.machine().drain_trace();
        had_trace = true;
        if (!trace_file.empty()) write_trace_file(trace_file);
      }
      last = r;
      had_run = true;
      std::cout << "goal: " << motif::term::format_term(g) << "\n";
      std::cout << "reductions=" << r.reductions
                << " suspensions=" << r.suspensions
                << " remote_msgs=" << r.load.remote_msgs;
      if (r.deadlocked()) {
        std::cout << "  DEADLOCK (" << r.still_suspended << " stuck)";
        for (const auto& sg : r.stuck_goals) {
          std::cout << "\n  stuck: " << sg;
        }
      }
      std::cout << "\n";
      if (faults.enabled()) {
        const auto t = interp.machine().fault_totals();
        std::cout << "faults: drops=" << t.drops << " dead_drops="
                  << t.dead_drops << " dups=" << t.duplicates
                  << " delays=" << t.delays << " kills=" << t.kills
                  << " throws=" << t.throws << "\n";
      }
    } catch (const std::exception& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }

  void show_faults() const {
    if (!faults.enabled()) {
      std::cout << "faults: off\n";
      return;
    }
    std::cout << "faults: seed=" << faults.seed << " drop=" << faults.drop
              << " dup=" << faults.duplicate << " delay=" << faults.delay;
    for (const auto& k : faults.kills) {
      std::cout << " kill(" << k.node << "@" << k.after_tasks << ")";
    }
    for (const auto& t : faults.throws) {
      std::cout << " throw(" << t.node << "@" << t.on_task << ")";
    }
    std::cout << "\n";
  }

  bool handle(const std::string& line) {
    if (line.empty()) return true;
    if (line[0] != ':') {
      // Bare input: treat as clauses to add.
      try {
        program = program.linked_with(Program::parse(line));
        std::cout << "ok (" << program.clauses().size() << " clauses)\n";
      } catch (const std::exception& e) {
        std::cout << "parse error: " << e.what() << "\n";
      }
      return true;
    }
    std::istringstream is(line.substr(1));
    std::string cmd;
    is >> cmd;
    std::string rest;
    std::getline(is, rest);
    while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

    if (cmd == "quit" || cmd == "q") return false;
    if (cmd == "load") {
      std::ifstream f(rest);
      if (!f) {
        std::cout << "cannot open " << rest << "\n";
        return true;
      }
      std::stringstream buf;
      buf << f.rdbuf();
      try {
        program = program.linked_with(Program::parse(buf.str()));
        std::cout << "loaded " << rest << " ("
                  << program.clauses().size() << " clauses total)\n";
      } catch (const std::exception& e) {
        std::cout << "parse error: " << e.what() << "\n";
      }
      return true;
    }
    if (cmd == "stdlib") {
      program = program.linked_with(in::stdlib());
      std::cout << "stdlib linked (" << program.clauses().size()
                << " clauses total)\n";
      return true;
    }
    if (cmd == "apply") {
      std::istringstream rs(rest);
      std::string name;
      rs >> name;
      std::string arg;
      std::getline(rs, arg);
      if (auto motif = motif_by_name(name, arg)) {
        program = motif->apply(program);
        std::cout << "applied " << motif->name() << " -> "
                  << program.clauses().size() << " clauses\n";
      }
      return true;
    }
    if (cmd == "list") {
      std::cout << program.to_source();
      return true;
    }
    if (cmd == "clear") {
      program = Program{};
      std::cout << "cleared\n";
      return true;
    }
    if (cmd == "nodes") {
      nodes = static_cast<std::uint32_t>(std::stoul(rest));
      std::cout << "machine: " << nodes << " processors\n";
      return true;
    }
    if (cmd == "run") {
      run_goal(rest);
      return true;
    }
    if (cmd == "trace") {
      std::istringstream rs(rest);
      std::string sub;
      rs >> sub;
      if (!motif::rt::Machine::trace_compiled) {
        std::cout << "tracing unavailable (built with MOTIF_TRACING=OFF)\n";
        return true;
      }
      if (sub == "on") {
        trace_enabled = true;
        std::cout << "tracing on (timelines recorded per :run)\n";
      } else if (sub == "off") {
        trace_enabled = false;
        std::cout << "tracing off\n";
      } else if (sub == "dump") {
        if (!had_trace) {
          std::cout << "no trace yet (:trace on, then :run)\n";
          return true;
        }
        std::string file;
        rs >> file;
        if (!file.empty()) {
          write_trace_file(file);
        } else {
          motif::rt::write_text_summary(last_trace, std::cout);
        }
      } else {
        std::cout << ":trace on | off | dump [file]\n";
      }
      return true;
    }
    if (cmd == "lint") {
      motif::analysis::Options opts;
      opts.entries = parse_keys(rest);  // optional: :lint main/2 ...
      const auto report = motif::analysis::analyze(program, opts);
      std::cout << report.to_string();
      if (report.clean()) {
        std::cout << "lint: clean (" << program.clauses().size()
                  << " clauses)\n";
      } else {
        std::cout << "lint: " << report.errors() << " error(s), "
                  << report.warnings() << " warning(s)\n";
      }
      return true;
    }
    if (cmd == "faults") {
      std::istringstream rs(rest);
      std::string sub;
      rs >> sub;
      try {
        if (sub.empty() || sub == "show") {
          show_faults();
        } else if (sub == "off") {
          faults = motif::rt::FaultPlan{};
          std::cout << "faults: off\n";
        } else if (sub == "chaos") {
          std::string seed;
          rs >> seed;
          faults = motif::rt::FaultPlan::chaos(
              seed.empty() ? faults.seed : std::stoull(seed));
          show_faults();
        } else if (sub == "seed") {
          std::string seed;
          rs >> seed;
          faults.seed = std::stoull(seed);
          show_faults();
        } else if (sub == "drop" || sub == "dup" || sub == "delay") {
          std::string p;
          rs >> p;
          (sub == "drop" ? faults.drop
                         : sub == "dup" ? faults.duplicate : faults.delay) =
              std::stod(p);
          show_faults();
        } else if (sub == "kill" || sub == "throw") {
          std::string node, when;
          rs >> node >> when;
          const auto n = static_cast<std::uint32_t>(std::stoul(node));
          const auto k = when.empty() ? 1 : std::stoull(when);
          if (sub == "kill") {
            faults.kills.push_back({n, k});
          } else {
            faults.throws.push_back({n, k});
          }
          show_faults();
        } else {
          std::cout << ":faults [show] | off | chaos [seed] | seed N | "
                       "drop P | dup P | delay P | kill NODE [AFTER] | "
                       "throw NODE [TASK]\n";
        }
      } catch (const std::exception&) {
        std::cout << "bad :faults argument (numbers expected)\n";
      }
      return true;
    }
    if (cmd == "stats") {
      if (!had_run) {
        std::cout << "stats: no run yet (use :run)\n";
        return true;
      }
      const auto& l = last.load;
      std::cout << "sched: steals=" << l.sched.steals
                << " parks=" << l.sched.parks
                << " mailbox_fast_hits=" << l.sched.mailbox_fast_hits
                << " injects=" << l.sched.injects << "\n";
      std::cout << "load:  tasks=" << l.total_tasks
                << " remote_msgs=" << l.remote_msgs
                << " local_msgs=" << l.local_msgs
                << " imbalance=" << l.imbalance << "\n";
      return true;
    }
    if (cmd == "profile") {
      if (!had_run) {
        std::cout << "no run yet\n";
        return true;
      }
      for (const auto& [def, n] : last.by_definition) {
        std::cout << "  " << def << ": " << n << "\n";
      }
      return true;
    }
    if (cmd == "help" || cmd == "h") {
      std::cout << ":load FILE | :stdlib | :apply MOTIF [keys] | :list | "
                   ":lint [entry/k ...] | :clear | :nodes N | :run GOAL | "
                   ":profile | :stats | :trace on|off|dump [file] | "
                   ":faults [chaos|off|...] | :quit\n"
                   "bare lines are parsed as clauses and added\n";
      return true;
    }
    std::cout << "unknown command :" << cmd << " (try :help)\n";
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      shell.trace_file = argv[++i];
      shell.trace_enabled = true;
    } else if (arg == "--fault-seed" && i + 1 < argc) {
      try {
        shell.faults = motif::rt::FaultPlan::chaos(std::stoull(argv[++i]));
      } catch (const std::exception&) {
        std::cerr << "motifsh: --fault-seed expects a number\n";
        return 2;
      }
    } else {
      std::cerr << "usage: motifsh [--trace FILE] [--fault-seed N]  "
                   "(commands on stdin)\n";
      return 2;
    }
  }
  const bool tty = false;  // prompt is harmless when scripted too
  (void)tty;
  std::string line;
  std::cout << "motifsh — :help for commands\n";
  while (std::cout << "motif> " << std::flush,
         std::getline(std::cin, line)) {
    if (!shell.handle(line)) break;
  }
  std::cout << "\n";
  return 0;
}
