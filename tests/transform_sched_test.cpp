// The Sched motif (Section 2.2 / reference [6]): the @task pragma, the
// generated dispatcher, and the full Scheduler = Server ∘ Sched pipeline
// executing on the interpreter.
#include <gtest/gtest.h>

#include "interp/interp.hpp"
#include "lint_helpers.hpp"
#include "transform/motif.hpp"
#include "transform/sched.hpp"
#include "transform/server.hpp"

namespace tf = motif::transform;
namespace in = motif::interp;
namespace t = motif::term;
using t::ProcKey;
using t::Program;

namespace {

// Squares computed as scheduler tasks; results meet in a shared list;
// completion is detected by dataflow and halts the network.
const char* kSquares = R"(
  main(N, Rs) :- spawn_tasks(N, Rs), watch(Rs).
  spawn_tasks(0, Rs) :- Rs := [].
  spawn_tasks(N, Rs) :- N > 0 |
      Rs := [R|Rs1],
      square(N, R)@task,
      N1 is N - 1,
      spawn_tasks(N1, Rs1).
  square(N, R) :- R is N * N.
  watch([]) :- halt.
  watch([R|Rs]) :- data(R) | watch(Rs).
)";

in::InterpOptions nodes(std::uint32_t n) {
  in::InterpOptions o;
  o.nodes = n;
  o.workers = 2;
  return o;
}

}  // namespace

TEST(SchedTransform, RewritesTaskPragma) {
  Program a = Program::parse("p(X) :- q(X)@task.\nq(_).");
  Program out = tf::sched_motif().transformed(a);
  const auto& g = out.clauses()[0].body[0];
  EXPECT_EQ(g.functor(), "send");
  EXPECT_EQ(g.arg(0).int_value(), 1);
  EXPECT_EQ(g.arg(1).functor(), "task");
  EXPECT_EQ(g.arg(1).arg(0).functor(), "q");
}

TEST(SchedTransform, GeneratesDispatcherPerTaskType) {
  Program a = Program::parse(
      "p :- q(1)@task, r(1,2)@task, q(3)@task.\nq(_).\nr(_,_).");
  Program out = tf::sched_motif().transformed(a);
  auto rules = out.rules_for({"run_task", 1});
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].head.arg(0).functor(), "q");
  EXPECT_EQ(rules[1].head.arg(0).functor(), "r");
  // Dispatcher is a real call (Server transform can thread DT).
  EXPECT_EQ(rules[0].body[0].functor(), "q");
}

TEST(SchedTransform, EntryTypesGetDispatchers) {
  Program a = Program::parse("q(_).");
  Program out = tf::sched_motif({ProcKey{"q", 1}}).transformed(a);
  EXPECT_EQ(out.rules_for({"run_task", 1}).size(), 1u);
}

TEST(SchedTransform, AnnotatedTaskTypesDiscovery) {
  Program a = Program::parse(
      "p :- q(1)@task, s(2)@random, q(2)@task.\nq(_).\ns(_).");
  auto keys = tf::annotated_task_types(a);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (ProcKey{"q", 1}));
}

TEST(SchedTransform, LibraryDefinesManagerAndWorker) {
  Program lib = tf::sched_library();
  EXPECT_TRUE(lib.defines({"server", 1}));
  EXPECT_TRUE(lib.defines({"manager", 3}));
  EXPECT_TRUE(lib.defines({"worker", 1}));
  EXPECT_TRUE(lib.defines({"assign", 5}));
  EXPECT_TRUE(lib.defines({"feed", 5}));
}

TEST(SchedRun, SquaresComputedByWorkers) {
  Program full =
      tf::compose(tf::server_motif(),
                  tf::sched_motif({ProcKey{"main", 2}}))
          .apply(Program::parse(kSquares));
  EXPECT_TRUE(WellModed(full));
  in::Interp interp(full, nodes(4));
  auto [goal, r] = interp.run_query("create(4, task(main(10, Rs)))");
  EXPECT_FALSE(r.deadlocked())
      << (r.stuck_goals.empty() ? "-" : r.stuck_goals[0]);
  auto rs = goal.arg(1).arg(0).arg(1).proper_list();
  ASSERT_TRUE(rs.has_value());
  ASSERT_EQ(rs->size(), 10u);
  // spawn_tasks builds the list from N down to 1.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*rs)[static_cast<std::size_t>(i)].int_value(),
              static_cast<std::int64_t>((10 - i) * (10 - i)));
  }
}

TEST(SchedRun, TasksSpreadAcrossWorkers) {
  Program full =
      tf::compose(tf::server_motif(),
                  tf::sched_motif({ProcKey{"main", 2}}))
          .apply(Program::parse(kSquares));
  in::Interp interp(full, nodes(5));
  auto [goal, r] = interp.run_query("create(5, task(main(40, Rs)))");
  EXPECT_FALSE(r.deadlocked());
  // Worker nodes (2..5 -> machine nodes 1..4) all executed tasks.
  std::uint32_t busy = 0;
  for (motif::rt::NodeId n = 1; n < 5; ++n) {
    busy += interp.machine().counters(n).tasks.load() > 0 ? 1 : 0;
  }
  EXPECT_EQ(busy, 4u);
}

TEST(SchedRun, NestedTaskSpawning) {
  // A task type that spawns further tasks: the dispatcher rules let the
  // Server transform thread DT through the task types themselves.
  const char* kNested = R"(
    main(Out) :- fanout(3, Out), finish(Out).
    fanout(0, Out) :- Out := done.
    fanout(N, Out) :- N > 0 | N1 is N - 1, fanout(N1, Out)@task.
    finish(Out) :- data(Out) | halt.
  )";
  Program full =
      tf::compose(tf::server_motif(),
                  tf::sched_motif({ProcKey{"main", 1}}))
          .apply(Program::parse(kNested));
  EXPECT_TRUE(WellModed(full));
  in::Interp interp(full, nodes(3));
  auto [goal, r] = interp.run_query("create(3, task(main(Out)))");
  EXPECT_FALSE(r.deadlocked())
      << (r.stuck_goals.empty() ? "-" : r.stuck_goals[0]);
  EXPECT_EQ(goal.arg(1).arg(0).arg(0).functor(), "done");
}

TEST(SchedRun, SingleWorkerStillCompletes) {
  Program full =
      tf::compose(tf::server_motif(),
                  tf::sched_motif({ProcKey{"main", 2}}))
          .apply(Program::parse(kSquares));
  in::Interp interp(full, nodes(2));  // manager + 1 worker
  auto [goal, r] = interp.run_query("create(2, task(main(6, Rs)))");
  EXPECT_FALSE(r.deadlocked());
  auto rs = goal.arg(1).arg(0).arg(1).proper_list();
  ASSERT_TRUE(rs.has_value());
  EXPECT_EQ(rs->size(), 6u);
}
