// The lint sweep: every program this repository ships — the stdlib, the
// paper figures (figure_programs.hpp, also embedded by
// examples/strand_motifs.cpp), and every transform-library output
// M(A) = T(A) ∪ L exercised by the transform suites — must produce ZERO
// motiflint diagnostics, warnings included. A regression here means a
// library or transformation started emitting ill-moded code.
#include <gtest/gtest.h>

#include <string>

#include "figure_programs.hpp"
#include "interp/stdlib.hpp"
#include "lint_helpers.hpp"
#include "term/program.hpp"
#include "transform/motif.hpp"
#include "transform/rand.hpp"
#include "transform/sched.hpp"
#include "transform/server.hpp"
#include "transform/terminate.hpp"
#include "transform/tree.hpp"

namespace an = motif::analysis;
namespace tf = motif::transform;
using motif::term::ProcKey;
using motif::term::Program;

namespace {

// The Figure 2 part A user program: the whole "application" of the
// Figure 5/6 pipelines (and of examples/strand_motifs.cpp).
Program user_eval() { return Program::parse(motif_figures::kEval); }

}  // namespace

TEST(LintSweep, Stdlib) {
  EXPECT_TRUE(WellModed(motif::interp::stdlib()));
}

TEST(LintSweep, Figure1ProducerConsumer) {
  EXPECT_TRUE(WellModed(Program::parse(motif_figures::kFigure1)));
}

TEST(LintSweep, EvalAlone) { EXPECT_TRUE(WellModed(user_eval())); }

TEST(LintSweep, AbstractReduceWithEval) {
  EXPECT_TRUE(WellModed(Program::parse(
      std::string(motif_figures::kEval) + motif_figures::kAbstractReduce)));
}

TEST(LintSweep, Figure2ShapeServerNetwork) {
  EXPECT_TRUE(WellModed(Program::parse(motif_figures::kFigure2Shape)));
}

TEST(LintSweep, Figure1LintsCleanUnderEntryCheck) {
  // With the query root declared, the reachability pass must also agree
  // that every figure definition is live.
  an::Options opts;
  opts.entries.push_back({"go", 1});
  const auto report =
      an::analyze(Program::parse(motif_figures::kFigure1), opts);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(LintSweep, ServerRandTree1Pipeline) {
  EXPECT_TRUE(WellModed(
      tf::compose_all({tf::server_motif(), tf::rand_motif(),
                       tf::tree1_motif()})
          .apply(user_eval())));
}

TEST(LintSweep, TreeReduce1) {
  EXPECT_TRUE(WellModed(tf::tree_reduce1_motif().apply(user_eval())));
}

TEST(LintSweep, TreeReduce1Both) {
  EXPECT_TRUE(WellModed(tf::tree_reduce1_both_motif().apply(user_eval())));
}

TEST(LintSweep, TreeReduce2Full) {
  EXPECT_TRUE(WellModed(tf::tree_reduce2_full_motif().apply(user_eval())));
}

TEST(LintSweep, TreeReduce1Terminating) {
  EXPECT_TRUE(
      WellModed(tf::tree_reduce1_terminating_motif().apply(user_eval())));
}

TEST(LintSweep, ServerEchoApplication) {
  const char* kApp = R"(
    server([token(0,Done)|_]) :- Done := done, halt.
    server([token(K,Done)|In]) :- K > 0 |
        nodes(N), pick_next(K, N, Next),
        K1 is K - 1,
        send(Next, token(K1,Done)),
        server(In).
    server([halt|_]).
    pick_next(K, N, Next) :- Next is (K mod N) + 1.
  )";
  EXPECT_TRUE(WellModed(tf::server_motif().apply(Program::parse(kApp))));
}

TEST(LintSweep, ServerNodesCountApplication) {
  const char* kApp = R"(
    server([count(C)|_]) :- nodes(C), halt.
    server([halt|_]).
  )";
  EXPECT_TRUE(WellModed(tf::server_motif().apply(Program::parse(kApp))));
}

TEST(LintSweep, SchedSquaresPipeline) {
  const char* kSquares = R"(
    main(N, Rs) :- spawn_tasks(N, Rs), watch(Rs).
    spawn_tasks(0, Rs) :- Rs := [].
    spawn_tasks(N, Rs) :- N > 0 |
        Rs := [R|Rs1],
        square(N, R)@task,
        N1 is N - 1,
        spawn_tasks(N1, Rs1).
    square(N, R) :- R is N * N.
    watch([]) :- halt.
    watch([R|Rs]) :- data(R) | watch(Rs).
  )";
  EXPECT_TRUE(WellModed(
      tf::compose(tf::server_motif(), tf::sched_motif({ProcKey{"main", 2}}))
          .apply(Program::parse(kSquares))));
}

TEST(LintSweep, SchedNestedPipeline) {
  const char* kNested = R"(
    main(Out) :- fanout(3, Out), finish(Out).
    fanout(0, Out) :- Out := done.
    fanout(N, Out) :- N > 0 | N1 is N - 1, fanout(N1, Out)@task.
    finish(Out) :- data(Out) | halt.
  )";
  EXPECT_TRUE(WellModed(
      tf::compose(tf::server_motif(), tf::sched_motif({ProcKey{"main", 1}}))
          .apply(Program::parse(kNested))));
}

TEST(LintSweep, TerminateSprayPipeline) {
  const char* kApp = R"(
    spray(0).
    spray(N) :- N > 0 |
        N1 is N - 1,
        spray(N1)@random,
        spray(N1)@random.
  )";
  EXPECT_TRUE(WellModed(
      tf::compose_all({tf::server_motif(),
                       tf::rand_motif({ProcKey{"spray_tw", 1}}),
                       tf::terminate_motif({"spray", 1})})
          .apply(Program::parse(kApp))));
}
