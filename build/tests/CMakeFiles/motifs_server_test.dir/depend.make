# Empty dependencies file for motifs_server_test.
# This may be replaced when dependencies are built.
