// The Server motif (Section 3.2): "provides the programmer with a fully
// connected set of named servers, each capable of initiating computations
// upon receipt of messages from other servers."
//
// Transformation (the paper's four steps):
//  1. Add a new argument (DT: the tuple of output streams to every server)
//     to every process definition that calls send/2, nodes/1 or halt/0,
//     and to those definitions' ancestors in the call graph — and to every
//     call site of such a definition.
//  2. Replace send(Node,Msg)   with distribute(Node,Msg,DT).
//  3. Replace nodes(N)         with length(DT,N).
//  4. Replace halt             with a broadcast of halt to every stream
//     (our primitive send_all(halt,DT)).
//
// Library: create(N,Msg) builds the network — N ports (one merged input
// stream per server, the `merge` primitive), the DT tuple of ports, one
// server process per virtual node (placed with @J, the low-level Strand
// placement feature of Figure 3) — and delivers the initial message Msg
// to server 1.
//
// The transformed program must define server/1 (which becomes server/2);
// Rand and Tree-Reduce generate it.
#pragma once

#include "term/program.hpp"
#include "transform/motif.hpp"

namespace motif::transform {

Motif server_motif();

/// The server library program on its own (create/2 etc.), for inspection
/// and the F3 tests.
term::Program server_library();

/// The set of definitions the Server transformation extends with DT
/// (exposed for tests): callers of send/2, nodes/1 or halt/0, direct or
/// transitive.
std::set<term::ProcKey> needs_dt(const term::Program& a);

}  // namespace motif::transform
