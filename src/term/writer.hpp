// Writer: renders terms and clauses back to the surface syntax the parser
// accepts, with infix operators, so transformation outputs are readable —
// the point of the paper's "archives of expertise" argument is that motif
// code stays legible at every stage (compare its Figure 5).
//
// Round-trip property (tested): parse(format(X)) is structurally equal to X.
#pragma once

#include <string>
#include <vector>

#include "term/parser.hpp"
#include "term/term.hpp"

namespace motif::term {

/// Operator-aware term rendering.
std::string format_term(const Term& t);

/// "head :- guard | body." / "head :- body." / "head." rendering.
std::string format_clause(const Clause& c);

/// Whole listing, one clause per line, blank line between process
/// definitions (consecutive clauses with different head name/arity).
std::string format_clauses(const std::vector<Clause>& cs);

}  // namespace motif::term
