file(REMOVE_RECURSE
  "CMakeFiles/motifs_dnc_search_test.dir/motifs_dnc_search_test.cpp.o"
  "CMakeFiles/motifs_dnc_search_test.dir/motifs_dnc_search_test.cpp.o.d"
  "motifs_dnc_search_test"
  "motifs_dnc_search_test.pdb"
  "motifs_dnc_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifs_dnc_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
