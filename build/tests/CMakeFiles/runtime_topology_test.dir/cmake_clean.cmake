file(REMOVE_RECURSE
  "CMakeFiles/runtime_topology_test.dir/runtime_topology_test.cpp.o"
  "CMakeFiles/runtime_topology_test.dir/runtime_topology_test.cpp.o.d"
  "runtime_topology_test"
  "runtime_topology_test.pdb"
  "runtime_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
