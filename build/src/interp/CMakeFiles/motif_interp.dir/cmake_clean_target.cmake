file(REMOVE_RECURSE
  "libmotif_interp.a"
)
