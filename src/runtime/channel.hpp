// A pragmatic multi-producer multi-consumer queue with close semantics.
//
// Streams (stream.hpp) are the faithful Strand communication structure;
// Channel<T> is the conventional alternative used by native motifs whose
// stages run on dedicated OS threads (e.g. the pipeline motif), where a
// blocking pop is appropriate. Machine tasks must never block on a
// Channel — they use SVar/Stream continuations instead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace motif::rt {

template <class T>
class Channel {
 public:
  /// capacity == 0 means unbounded; otherwise push blocks while full.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while the channel is full. Returns false if the channel was
  /// closed (the item is dropped).
  bool push(T value) {
    std::unique_lock lock(m_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || q_.size() < capacity_;
    });
    if (closed_) return false;
    q_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; fails when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(m_);
      if (closed_ || (capacity_ != 0 && q_.size() >= capacity_)) return false;
      q_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the channel is closed and
  /// drained; nullopt signals end-of-channel.
  std::optional<T> pop() {
    std::unique_lock lock(m_);
    not_empty_.wait(lock, [&] { return closed_ || !q_.empty(); });
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  std::optional<T> try_pop() {
    std::unique_lock lock(m_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return v;
  }

  /// After close, pushes fail and pops drain the remaining items then
  /// return nullopt. Idempotent.
  void close() {
    {
      std::lock_guard lock(m_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(m_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(m_);
    return q_.size();
  }

 private:
  mutable std::mutex m_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace motif::rt
