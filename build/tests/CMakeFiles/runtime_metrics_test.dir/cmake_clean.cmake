file(REMOVE_RECURSE
  "CMakeFiles/runtime_metrics_test.dir/runtime_metrics_test.cpp.o"
  "CMakeFiles/runtime_metrics_test.dir/runtime_metrics_test.cpp.o.d"
  "runtime_metrics_test"
  "runtime_metrics_test.pdb"
  "runtime_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
