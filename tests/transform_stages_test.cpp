// Golden reproduction of Figure 5: "The Three Stages of Tree-Reduce-1".
// Each stage's output must be alpha-equivalent to the paper's listing.
#include <gtest/gtest.h>

#include "term/program.hpp"
#include "transform/motif.hpp"
#include "transform/rand.hpp"
#include "transform/server.hpp"
#include "transform/tree.hpp"

namespace tf = motif::transform;
namespace t = motif::term;
using t::Program;

namespace {

// The user's application: just the node evaluation function (Figure 2
// part A).
const char* kUserEval = R"(
  eval('+',L,R,Value) :- Value is L + R.
  eval('*',L,R,Value) :- Value is L * R.
)";

// Figure 5, first section: output of the Tree1 motif.
const char* kStage1 = R"(
  eval('+',L,R,Value) :- Value is L + R.
  eval('*',L,R,Value) :- Value is L * R.

  reduce(tree(V,L,R),Value) :-
      reduce(R,RV)@random,
      reduce(L,LV),
      eval(V,LV,RV,Value).
  reduce(leaf(L),Value) :- Value := L.
)";

// Figure 5, second section: output of the Rand motif.
const char* kStage2 = R"(
  eval('+',L,R,Value) :- Value is L + R.
  eval('*',L,R,Value) :- Value is L * R.

  reduce(tree(V,L,R),Value) :-
      nodes(N), rand_num(N,O), send(O,reduce(R,RV)),
      reduce(L,LV),
      eval(V,LV,RV,Value).
  reduce(leaf(L),Value) :- Value := L.

  server([reduce(T,V)|In]) :- reduce(T,V), server(In).
  server([halt|_]).
)";

// Figure 5, third section: output of the Server motif (before the
// library is linked).
const char* kStage3 = R"(
  eval('+',L,R,Value) :- Value is L + R.
  eval('*',L,R,Value) :- Value is L * R.

  reduce(tree(V,L,R),Value,DT) :-
      length(DT,N), rand_num(N,O), distribute(O,reduce(R,RV),DT),
      reduce(L,LV,DT),
      eval(V,LV,RV,Value).
  reduce(leaf(L),Value,_) :- Value := L.

  server([reduce(T,V)|In],DT) :- reduce(T,V,DT), server(In,DT).
  server([halt|_],_).
)";

}  // namespace

TEST(Figure5, Stage1Tree1) {
  Program out = tf::tree1_motif().apply(Program::parse(kUserEval));
  EXPECT_TRUE(out.alpha_equivalent(Program::parse(kStage1)))
      << out.to_source();
}

TEST(Figure5, Stage2Rand) {
  Program s1 = tf::tree1_motif().apply(Program::parse(kUserEval));
  Program out = tf::rand_motif().apply(s1);
  EXPECT_TRUE(out.alpha_equivalent(Program::parse(kStage2)))
      << out.to_source();
}

TEST(Figure5, Stage3ServerTransform) {
  Program s2 = tf::rand_motif().apply(
      tf::tree1_motif().apply(Program::parse(kUserEval)));
  // Compare the transformed application only (the linked library is
  // checked separately).
  Program out = tf::server_motif().transformed(s2);
  EXPECT_TRUE(out.alpha_equivalent(Program::parse(kStage3)))
      << out.to_source();
}

TEST(Figure5, FullCompositionLinksServerLibrary) {
  Program out =
      tf::compose_all({tf::server_motif(), tf::rand_motif(),
                       tf::tree1_motif()})
          .apply(Program::parse(kUserEval));
  EXPECT_TRUE(out.defines({"create", 2}));
  EXPECT_TRUE(out.defines({"boot", 2}));
  EXPECT_TRUE(out.defines({"server", 2}));
  EXPECT_FALSE(out.defines({"server", 1}));
  // eval is untouched by every stage.
  auto evals = out.rules_for({"eval", 4});
  EXPECT_EQ(evals.size(), 2u);
}

TEST(Figure5, StagesAreReparseable) {
  // The printed output of every stage parses back to an equivalent
  // program (the "archives of expertise" must stay legible AND valid).
  Program s1 = tf::tree1_motif().apply(Program::parse(kUserEval));
  Program s2 = tf::rand_motif().apply(s1);
  Program s3 = tf::server_motif().transformed(s2);
  for (const Program* p : {&s1, &s2, &s3}) {
    Program back = Program::parse(p->to_source());
    EXPECT_TRUE(back.alpha_equivalent(*p)) << p->to_source();
  }
}

TEST(Rand, AnnotatedTypesDiscovered) {
  Program a = Program::parse(
      "p(X) :- q(X)@random, r(X)@random, s(X)@4, q(X).\n"
      "q(_).\nr(_).\ns(_).");
  auto keys = tf::annotated_random_types(a);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], (t::ProcKey{"q", 1}));
  EXPECT_EQ(keys[1], (t::ProcKey{"r", 1}));
}

TEST(Rand, NoAnnotationsNoServerDef) {
  Program a = Program::parse("p(X) :- q(X).\nq(_).");
  Program out = tf::rand_motif().apply(a);
  EXPECT_TRUE(out.alpha_equivalent(a));
}

TEST(Rand, EntryTypesGetServerRules) {
  Program a = Program::parse("p(X) :- q(X)@random.\nq(_).");
  Program out = tf::rand_motif({t::ProcKey{"p", 1}}).apply(a);
  auto rules = out.rules_for({"server", 1});
  // q/1 (annotated), p/1 (entry), halt.
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_TRUE(rules[0].head.arg(0).head().functor() == "q");
  EXPECT_TRUE(rules[1].head.arg(0).head().functor() == "p");
  EXPECT_TRUE(rules[2].head.arg(0).head().functor() == "halt");
}

TEST(Rand, TwoAnnotationsInOneClauseGetDistinctVars) {
  Program a = Program::parse("p :- q@random, r@random.\nq.\nr.");
  Program out = tf::rand_motif().apply(a);
  const auto& body = out.clauses()[0].body;
  ASSERT_EQ(body.size(), 6u);
  // nodes(N), rand_num(N,O), send(O,q), nodes(N1), rand_num(N1,O1), send(O1,r)
  EXPECT_FALSE(body[0].arg(0).same_node(body[3].arg(0)));
  EXPECT_FALSE(body[1].arg(1).same_node(body[4].arg(1)));
  // Re-parse must preserve distinctness (names differ).
  Program back = Program::parse(out.to_source());
  const auto& body2 = back.clauses()[0].body;
  EXPECT_FALSE(body2[0].arg(0).same_node(body2[3].arg(0)));
}

TEST(Server, NeedsDtClosure) {
  Program a = Program::parse(
      "top(X) :- mid(X).\n"
      "mid(X) :- nodes(N), use(X,N).\n"
      "use(_,_).\n"
      "pure(X) :- use(X,1).");
  auto s = tf::needs_dt(a);
  EXPECT_TRUE(s.count({"mid", 1}));
  EXPECT_TRUE(s.count({"top", 1}));
  EXPECT_FALSE(s.count({"use", 2}));
  EXPECT_FALSE(s.count({"pure", 1}));
}

TEST(Server, HaltRewrittenToBroadcast) {
  Program a = Program::parse("stop :- halt.");
  Program out = tf::server_motif().transformed(a);
  ASSERT_EQ(out.clauses()[0].body.size(), 1u);
  const auto& g = out.clauses()[0].body[0];
  EXPECT_EQ(g.functor(), "send_all");
  EXPECT_EQ(g.arg(0).functor(), "halt");
  // Head gained the DT argument.
  EXPECT_EQ(out.clauses()[0].head.arity(), 1u);
}

TEST(Server, AnnotatedCallKeepsPlacement) {
  Program a = Program::parse(
      "go :- worker(1)@3.\n"
      "worker(X) :- send(X, hello).");
  Program out = tf::server_motif().transformed(a);
  const auto& g = out.clauses()[0].body[0];
  EXPECT_EQ(g.functor(), "@");
  EXPECT_EQ(g.arg(0).functor(), "worker");
  EXPECT_EQ(g.arg(0).arity(), 2u);  // DT appended inside the annotation
  EXPECT_EQ(g.arg(1).int_value(), 3);
}

TEST(Server, DTNameAvoidsUserVariables) {
  Program a = Program::parse("p(DT) :- send(1,DT).");
  Program out = tf::server_motif().transformed(a);
  const auto& head = out.clauses()[0].head;
  ASSERT_EQ(head.arity(), 2u);
  EXPECT_EQ(head.arg(1).var_name(), "DT1");
  // Re-parse keeps the two variables distinct.
  Program back = Program::parse(out.to_source());
  const auto& h2 = back.clauses()[0].head;
  EXPECT_FALSE(h2.arg(0).same_node(h2.arg(1)));
}

TEST(Server, LibraryDefinesCreateBootStartServers) {
  Program lib = tf::server_library();
  EXPECT_TRUE(lib.defines({"create", 2}));
  EXPECT_TRUE(lib.defines({"start_servers", 4}));
  EXPECT_TRUE(lib.defines({"boot", 2}));
}

TEST(Driver, TerminatingDriverShape) {
  Program d = tf::terminating_driver("go", "reduce");
  EXPECT_TRUE(d.alpha_equivalent(Program::parse(
      "go(T,V) :- reduce(T,V), go_wait(V).\n"
      "go_wait(V) :- data(V) | halt.")));
}
