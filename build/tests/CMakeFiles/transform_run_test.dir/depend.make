# Empty dependencies file for transform_run_test.
# This may be replaced when dependencies are built.
