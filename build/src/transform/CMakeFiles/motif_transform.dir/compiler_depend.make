# Empty compiler generated dependencies file for motif_transform.
# This may be replaced when dependencies are built.
