file(REMOVE_RECURSE
  "CMakeFiles/term_parser_test.dir/term_parser_test.cpp.o"
  "CMakeFiles/term_parser_test.dir/term_parser_test.cpp.o.d"
  "term_parser_test"
  "term_parser_test.pdb"
  "term_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
