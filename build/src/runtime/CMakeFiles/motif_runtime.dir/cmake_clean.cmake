file(REMOVE_RECURSE
  "CMakeFiles/motif_runtime.dir/machine.cpp.o"
  "CMakeFiles/motif_runtime.dir/machine.cpp.o.d"
  "CMakeFiles/motif_runtime.dir/metrics.cpp.o"
  "CMakeFiles/motif_runtime.dir/metrics.cpp.o.d"
  "CMakeFiles/motif_runtime.dir/rng.cpp.o"
  "CMakeFiles/motif_runtime.dir/rng.cpp.o.d"
  "libmotif_runtime.a"
  "libmotif_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
