# Empty compiler generated dependencies file for motif_motifs.
# This may be replaced when dependencies are built.
