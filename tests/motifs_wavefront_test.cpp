// Wavefront motif: dependency correctness, tiling edge cases, and the
// Needleman-Wunsch kernel expressed as a wavefront client.
#include "motifs/wavefront.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "align/nw.hpp"
#include "align/sequence.hpp"

namespace m = motif;
namespace rt = motif::rt;
namespace al = motif::align;

TEST(Wavefront, ComputesPascalTriangle) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  constexpr std::size_t N = 20;
  std::vector<std::uint64_t> grid(N * N, 0);
  m::wavefront(mach, N, N, [&](std::size_t i, std::size_t j) {
    if (i == 0 || j == 0) {
      grid[i * N + j] = 1;
    } else {
      grid[i * N + j] = grid[(i - 1) * N + j] + grid[i * N + (j - 1)];
    }
  });
  // grid[i][j] = C(i+j, i).
  EXPECT_EQ(grid[1 * N + 1], 2u);
  EXPECT_EQ(grid[2 * N + 2], 6u);
  EXPECT_EQ(grid[3 * N + 3], 20u);
  EXPECT_EQ(grid[5 * N + 5], 252u);
}

TEST(Wavefront, EveryCellExactlyOnce) {
  rt::Machine mach({.nodes = 8, .workers = 2});
  constexpr std::size_t R = 37, C = 53;  // deliberately non-tile-aligned
  std::vector<std::atomic<int>> hits(R * C);
  m::wavefront(
      mach, R, C,
      [&](std::size_t i, std::size_t j) { hits[i * C + j].fetch_add(1); },
      /*tile=*/8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Wavefront, DependenciesRespected) {
  rt::Machine mach({.nodes = 8, .workers = 2});
  constexpr std::size_t N = 24;
  std::vector<std::atomic<int>> doneflag(N * N);
  std::atomic<bool> violated{false};
  m::wavefront(
      mach, N, N,
      [&](std::size_t i, std::size_t j) {
        if (i > 0 && doneflag[(i - 1) * N + j].load() == 0) violated = true;
        if (j > 0 && doneflag[i * N + (j - 1)].load() == 0) violated = true;
        doneflag[i * N + j].store(1);
      },
      /*tile=*/4);
  EXPECT_FALSE(violated.load());
}

TEST(Wavefront, DegenerateShapes) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  int count = 0;
  m::wavefront(mach, 1, 1, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
  count = 0;
  m::wavefront(mach, 1, 100,
               [&](std::size_t, std::size_t) { ++count; }, 16);
  EXPECT_EQ(count, 100);
  count = 0;
  m::wavefront(mach, 100, 1,
               [&](std::size_t, std::size_t) { ++count; }, 16);
  EXPECT_EQ(count, 100);
  m::wavefront(mach, 0, 50, [&](std::size_t, std::size_t) { FAIL(); });
}

TEST(Wavefront, BodyExceptionPropagates) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_THROW(m::wavefront(mach, 16, 16,
                            [&](std::size_t i, std::size_t j) {
                              if (i == 7 && j == 9) {
                                throw std::runtime_error("dp");
                              }
                            },
                            4),
               std::runtime_error);
}

TEST(WavefrontNW, MatchesSequentialScore) {
  rt::Machine mach({.nodes = 8, .workers = 2});
  rt::Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    auto a = al::random_sequence(rng, 60 + rng.below(120));
    auto b = al::evolve(a, 5.0, {}, rng);
    EXPECT_EQ(al::nw_score_wavefront(mach, a, b), al::nw_score(a, b))
        << round;
  }
}

TEST(WavefrontNW, EmptySequences) {
  rt::Machine mach({.nodes = 2, .workers = 2});
  EXPECT_EQ(al::nw_score_wavefront(mach, "", "ACG"), -6);
  EXPECT_EQ(al::nw_score_wavefront(mach, "ACG", ""), -6);
  EXPECT_EQ(al::nw_score_wavefront(mach, "", ""), 0);
}

TEST(WavefrontNW, IdenticalLongSequences) {
  rt::Machine mach({.nodes = 8, .workers = 2});
  rt::Rng rng(5);
  auto a = al::random_sequence(rng, 500);
  EXPECT_EQ(al::nw_score_wavefront(mach, a, a),
            static_cast<std::int32_t>(a.size()) * 2);
}
