#include "term/ops.hpp"

#include <unordered_map>

namespace motif::term {

std::optional<OpInfo> binary_op(const std::string& name) {
  static const std::unordered_map<std::string, OpInfo> kOps = {
      {":=", {700, OpType::xfx}}, {"is", {700, OpType::xfx}},
      {"=", {700, OpType::xfx}},  {"==", {700, OpType::xfx}},
      {"=\\=", {700, OpType::xfx}}, {"\\==", {700, OpType::xfx}},
      {"=:=", {700, OpType::xfx}}, {"<", {700, OpType::xfx}},
      {">", {700, OpType::xfx}},  {"=<", {700, OpType::xfx}},
      {">=", {700, OpType::xfx}}, {"+", {500, OpType::yfx}},
      {"-", {500, OpType::yfx}},  {"*", {400, OpType::yfx}},
      {"/", {400, OpType::yfx}},  {"//", {400, OpType::yfx}},
      {"mod", {400, OpType::yfx}}, {"@", {150, OpType::xfx}},
  };
  auto it = kOps.find(name);
  if (it == kOps.end()) return std::nullopt;
  return it->second;
}

}  // namespace motif::term
