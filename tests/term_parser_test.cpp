#include "term/parser.hpp"

#include <gtest/gtest.h>

#include "term/term.hpp"

namespace t = motif::term;
using t::parse_clauses;
using t::parse_term;
using t::Term;

TEST(ParseTerm, Atoms) {
  EXPECT_EQ(parse_term("foo").functor(), "foo");
  EXPECT_EQ(parse_term("'hello world'").functor(), "hello world");
  EXPECT_EQ(parse_term("'Upper'").functor(), "Upper");
}

TEST(ParseTerm, Numbers) {
  EXPECT_EQ(parse_term("42").int_value(), 42);
  EXPECT_EQ(parse_term("-42").int_value(), -42);
  EXPECT_DOUBLE_EQ(parse_term("3.14").float_value(), 3.14);
  EXPECT_DOUBLE_EQ(parse_term("-2.5").float_value(), -2.5);
  EXPECT_DOUBLE_EQ(parse_term("1.5e3").float_value(), 1500.0);
}

TEST(ParseTerm, Strings) {
  EXPECT_EQ(parse_term("\"abc\"").str_value(), "abc");
  EXPECT_EQ(parse_term("\"a\\\"b\"").str_value(), "a\"b");
  EXPECT_EQ(parse_term("\"a\\nb\"").str_value(), "a\nb");
}

TEST(ParseTerm, Variables) {
  Term v = parse_term("Xs1");
  EXPECT_TRUE(v.is_var());
  EXPECT_EQ(v.var_name(), "Xs1");
}

TEST(ParseTerm, SharedVariablesShareCells) {
  Term p = parse_term("f(X,g(X),Y)");
  EXPECT_TRUE(p.arg(0).same_node(p.arg(1).arg(0)));
  EXPECT_FALSE(p.arg(0).same_node(p.arg(2)));
}

TEST(ParseTerm, AnonymousVarsAreDistinct) {
  Term p = parse_term("f(_,_)");
  EXPECT_FALSE(p.arg(0).same_node(p.arg(1)));
}

TEST(ParseTerm, Lists) {
  Term l = parse_term("[1,2,3]");
  auto xs = l.proper_list();
  ASSERT_TRUE(xs);
  EXPECT_EQ(xs->size(), 3u);
  Term lt = parse_term("[H|T]");
  EXPECT_TRUE(lt.is_cons());
  EXPECT_TRUE(lt.arg(0).is_var());
  EXPECT_TRUE(lt.arg(1).is_var());
  EXPECT_TRUE(parse_term("[]").is_nil());
  Term two = parse_term("[a,b|T]");
  EXPECT_EQ(two.arg(0).functor(), "a");
  EXPECT_EQ(two.arg(1).arg(0).functor(), "b");
  EXPECT_TRUE(two.arg(1).arg(1).is_var());
}

TEST(ParseTerm, Tuples) {
  Term tp = parse_term("{a,1,X}");
  EXPECT_TRUE(tp.is_tuple());
  EXPECT_EQ(tp.arity(), 3u);
  EXPECT_TRUE(parse_term("{}").is_tuple());
  EXPECT_EQ(parse_term("{}").arity(), 0u);
}

TEST(ParseTerm, Compounds) {
  Term c = parse_term("tree(V,L,R)");
  EXPECT_EQ(c.functor(), "tree");
  EXPECT_EQ(c.arity(), 3u);
  Term nested = parse_term("f(g(h(1)),[a])");
  EXPECT_EQ(nested.arg(0).arg(0).arg(0).int_value(), 1);
}

TEST(ParseTerm, Operators) {
  Term a = parse_term("X := Y + 1");
  EXPECT_EQ(a.functor(), ":=");
  EXPECT_EQ(a.arg(1).functor(), "+");
  Term cmp = parse_term("N > 0");
  EXPECT_EQ(cmp.functor(), ">");
  Term prec = parse_term("1 + 2 * 3");
  EXPECT_EQ(prec.functor(), "+");
  EXPECT_EQ(prec.arg(1).functor(), "*");
  Term assoc = parse_term("1 - 2 - 3");
  // yfx: (1-2)-3
  EXPECT_EQ(assoc.arg(0).functor(), "-");
  EXPECT_EQ(assoc.arg(1).int_value(), 3);
  Term parens = parse_term("(1 + 2) * 3");
  EXPECT_EQ(parens.functor(), "*");
}

TEST(ParseTerm, IsAndMod) {
  Term a = parse_term("N1 is N mod 2");
  EXPECT_EQ(a.functor(), "is");
  EXPECT_EQ(a.arg(1).functor(), "mod");
}

TEST(ParseTerm, PlacementAnnotation) {
  Term g = parse_term("reduce(R,RV)@random");
  EXPECT_EQ(g.functor(), "@");
  EXPECT_EQ(g.arg(0).functor(), "reduce");
  EXPECT_EQ(g.arg(1).functor(), "random");
  Term j = parse_term("server_init(N,I,O)@J");
  EXPECT_TRUE(j.arg(1).is_var());
}

TEST(ParseTerm, XfxDoesNotChain) {
  EXPECT_THROW(parse_term("A := B := C"), t::ParseError);
}

TEST(ParseClauses, Facts) {
  auto cs = parse_clauses("p(1). p(2).\nq.");
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs[0].head.functor(), "p");
  EXPECT_TRUE(cs[0].guard.empty());
  EXPECT_TRUE(cs[0].body.empty());
  EXPECT_EQ(cs[2].head.functor(), "q");
}

TEST(ParseClauses, BodyOnly) {
  auto cs = parse_clauses("go(N) :- producer(N,Xs,sync), consumer(Xs).");
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_TRUE(cs[0].guard.empty());
  ASSERT_EQ(cs[0].body.size(), 2u);
  EXPECT_EQ(cs[0].body[0].functor(), "producer");
  // Xs is shared between the two body goals.
  EXPECT_TRUE(cs[0].body[0].arg(1).same_node(cs[0].body[1].arg(0)));
}

TEST(ParseClauses, GuardAndCommit) {
  auto cs = parse_clauses(
      "producer(N,Xs,Sync) :- N > 0 | "
      "Xs := [X|Xs1], N1 is N - 1, producer(N1,Xs1,X).");
  ASSERT_EQ(cs.size(), 1u);
  ASSERT_EQ(cs[0].guard.size(), 1u);
  EXPECT_EQ(cs[0].guard[0].functor(), ">");
  ASSERT_EQ(cs[0].body.size(), 3u);
  EXPECT_EQ(cs[0].body[0].functor(), ":=");
}

TEST(ParseClauses, MultiGoalGuard) {
  auto cs = parse_clauses("p(X,Y) :- X > 0, Y > 0 | q(X), r(Y).");
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].guard.size(), 2u);
  EXPECT_EQ(cs[0].body.size(), 2u);
}

TEST(ParseClauses, BarInListIsNotCommit) {
  auto cs = parse_clauses("consumer([X|Xs]) :- X := sync, consumer(Xs).");
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_TRUE(cs[0].guard.empty());
  EXPECT_TRUE(cs[0].head.arg(0).is_cons());
}

TEST(ParseClauses, CommentsIgnored) {
  auto cs = parse_clauses(
      "% leading comment\n"
      "p(1). % trailing\n"
      "% whole line\n"
      "p(2).\n");
  EXPECT_EQ(cs.size(), 2u);
}

TEST(ParseClauses, VariablesScopedPerClause) {
  auto cs = parse_clauses("p(X) :- q(X). r(X) :- s(X).");
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_FALSE(cs[0].head.arg(0).same_node(cs[1].head.arg(0)));
}

TEST(ParseClauses, PaperFigure1Parses) {
  // The producer/consumer program of Figure 1 (notation normalised).
  const char* src = R"(
    go(N) :- producer(N,Xs,sync), consumer(Xs).
    producer(N,Xs,_) :- N > 0 |
        Xs := [X|Xs1], N1 is N - 1, producer(N1,Xs1,X).
    producer(0,Xs,_) :- Xs := [].
    consumer([X|Xs]) :- X := sync, consumer(Xs).
    consumer([]).
  )";
  auto cs = parse_clauses(src);
  ASSERT_EQ(cs.size(), 5u);
  EXPECT_EQ(cs[1].guard.size(), 1u);
  EXPECT_EQ(cs[4].head.functor(), "consumer");
  EXPECT_TRUE(cs[4].head.arg(0).is_nil());
}

TEST(ParseClauses, PaperTreeReduceParses) {
  // The four-line abstract tree reduction of Section 3.1.
  const char* src = R"(
    reduce(tree(V,L,R),Value) :-
        reduce(R,RV)@random, reduce(L,LV), eval(V,LV,RV,Value).
    reduce(leaf(L),Value) :- Value := L.
  )";
  auto cs = parse_clauses(src);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].body[0].functor(), "@");
  EXPECT_EQ(cs[1].body[0].functor(), ":=");
}

TEST(ParseClauses, Errors) {
  EXPECT_THROW(parse_clauses("p(1)"), t::ParseError);     // missing '.'
  EXPECT_THROW(parse_clauses("p(."), t::ParseError);      // bad term
  EXPECT_THROW(parse_clauses("[1] :- q."), t::ParseError);  // list head
  EXPECT_THROW(parse_clauses("p :- q("), t::ParseError);  // unterminated
  EXPECT_THROW(parse_term("'abc"), t::ParseError);        // unterminated atom
  EXPECT_THROW(parse_term("\"abc"), t::ParseError);       // unterminated str
}

TEST(ParseClauses, ErrorPositionsReported) {
  try {
    parse_clauses("p(1).\nq(¤).");
    FAIL() << "expected ParseError";
  } catch (const t::ParseError& e) {
    EXPECT_EQ(e.line, 2);
  }
}
