// Experiment E4 (DESIGN.md §4): "A static partition of the tree is
// probably ideal in the simple arithmetic example. In contrast, our
// biology application requires a more dynamic algorithm, as the time
// required at each node is non-uniform and cannot easily be predicted"
// (Section 3.1).
//
// Workload: balanced trees whose node evaluation costs are either uniform
// or unpredictable — heavy-tailed (Pareto alpha=1.2) AND spatially
// clustered in one hot quarter of the tree, like a clade of long
// sequences in the alignment application. Schedules: static partition,
// Tree-Reduce-1, Tree-Reduce-2, and the demand-driven manager/worker
// scheduler. Reported: virtual makespan (max per-processor work) and
// virtual speedup (total work / makespan) — the host-core-independent
// shape measure.
//
// Expected shape: with uniform costs the static partition is competitive
// (the paper: "probably ideal"); with heavy-tailed costs the
// demand-driven manager/worker scheduler wins because no static
// assignment predicts the hot nodes. Tree-Reduce-1's random mapping sits
// between the two: finer-grained than the static partition but not
// load-aware.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "motifs/scheduler.hpp"
#include "motifs/tree.hpp"
#include "motifs/tree_reduce.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

/// Burns real CPU proportional to the virtual cost: demand-driven
/// scheduling only reacts to load it can observe, so virtual cost must be
/// mirrored in wall time.
void spin_units(std::uint64_t units) {
  for (std::uint64_t i = 0; i < units * 32; ++i) asm volatile("");
}

// Leaf value carries a per-node evaluation cost drawn ahead of time (the
// unpredictability is that the *scheduler* does not see the costs).
struct Task {
  long sum = 0;
  std::uint64_t cost = 0;  // cost of the evaluation that produced it
};

using TTree = m::Tree<Task, std::uint64_t>;  // tag = cost of this node

TTree::Ptr cost_tree(std::size_t leaves, bool heavy_tailed,
                     std::uint64_t seed) {
  rt::Rng rng(seed);
  // Unpredictable = heavy-tailed AND clustered: nodes entirely inside the
  // first quarter of the leaf range are "hot" (a clade of expensive
  // evaluations no static assignment anticipates).
  const std::size_t hot_end = leaves / 4;
  auto cost = [&](std::size_t /*lo*/, std::size_t hi) -> std::uint64_t {
    if (!heavy_tailed) return 10;
    const bool hot = hi <= hot_end;
    const double base = rng.pareto(10.0, 1.2);
    return static_cast<std::uint64_t>(hot ? 20.0 * base : base);
  };
  std::function<TTree::Ptr(std::size_t, std::size_t)> build =
      [&](std::size_t lo, std::size_t n) -> TTree::Ptr {
    if (n == 1) return TTree::leaf(Task{1, 0});
    const std::size_t lhs = n / 2;
    return TTree::node(cost(lo, lo + n), build(lo, lhs),
                       build(lo + lhs, n - lhs));
  };
  return build(0, leaves);
}

template <class F>
void run_case(benchmark::State& state, F reduce, bool heavy) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const auto procs = static_cast<std::uint32_t>(state.range(1));
  auto tree = cost_tree(leaves, heavy, 2024);
  double makespan = 0, vspeedup = 0;
  for (auto _ : state) {
    rt::Machine mach({.nodes = procs, .workers = 2, .seed = 3});
    auto eval = [&mach](const std::uint64_t& cost, const Task& a,
                        const Task& b) {
      spin_units(cost);
      mach.add_work(cost);
      return Task{a.sum + b.sum, cost};
    };
    Task out = reduce(mach, tree, eval);
    benchmark::DoNotOptimize(out);
    if (out.sum != static_cast<long>(leaves)) {
      state.SkipWithError("wrong sum");
    }
    auto s = mach.load_summary();
    makespan = static_cast<double>(s.makespan);
    vspeedup = s.virtual_speedup;
  }
  state.counters["virt_makespan"] = makespan;
  state.counters["virt_speedup"] = vspeedup;
}

using Eval = std::function<Task(const std::uint64_t&, const Task&,
                                const Task&)>;

void BM_Static_Uniform(benchmark::State& state) {
  run_case(state,
           [](rt::Machine& mach, const TTree::Ptr& t, auto eval) {
             return m::static_tree_reduce<Task, std::uint64_t>(mach, t, eval);
           },
           false);
  MOTIF_BENCH_REPORT(state);
}
void BM_Static_HeavyTail(benchmark::State& state) {
  run_case(state,
           [](rt::Machine& mach, const TTree::Ptr& t, auto eval) {
             return m::static_tree_reduce<Task, std::uint64_t>(mach, t, eval);
           },
           true);
  MOTIF_BENCH_REPORT(state);
}
void BM_TR1_Uniform(benchmark::State& state) {
  run_case(state,
           [](rt::Machine& mach, const TTree::Ptr& t, auto eval) {
             return m::tree_reduce1<Task, std::uint64_t>(mach, t, eval);
           },
           false);
  MOTIF_BENCH_REPORT(state);
}
void BM_TR1_HeavyTail(benchmark::State& state) {
  run_case(state,
           [](rt::Machine& mach, const TTree::Ptr& t, auto eval) {
             return m::tree_reduce1<Task, std::uint64_t>(mach, t, eval);
           },
           true);
  MOTIF_BENCH_REPORT(state);
}
void BM_TR2_Uniform(benchmark::State& state) {
  run_case(state,
           [](rt::Machine& mach, const TTree::Ptr& t, auto eval) {
             return m::tree_reduce2<Task, std::uint64_t>(mach, t, eval);
           },
           false);
  MOTIF_BENCH_REPORT(state);
}
void BM_TR2_HeavyTail(benchmark::State& state) {
  run_case(state,
           [](rt::Machine& mach, const TTree::Ptr& t, auto eval) {
             return m::tree_reduce2<Task, std::uint64_t>(mach, t, eval);
           },
           true);
  MOTIF_BENCH_REPORT(state);
}

// The demand-driven schedule: the tree as a dependency DAG fed to the
// manager/worker scheduler motif — idle workers pull work, so hot nodes
// are balanced reactively. (Machine gets P workers + 1 manager node; the
// manager does no tree work, so virtual speedup is still work/makespan
// over the P workers.)
void run_manager_worker(benchmark::State& state, bool heavy) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const auto procs = static_cast<std::uint32_t>(state.range(1));
  auto tree = cost_tree(leaves, heavy, 2024);
  double makespan = 0, vspeedup = 0;
  for (auto _ : state) {
    rt::Machine mach({.nodes = procs + 1, .workers = 2, .seed = 3});
    m::Scheduler sched(mach, {.workers = procs});
    // Post-order DAG construction: a node's task depends on its children.
    std::function<m::SchedTaskId(const TTree::Ptr&)> build =
        [&](const TTree::Ptr& t) -> m::SchedTaskId {
      if (t->is_leaf()) {
        return sched.submit([] {});
      }
      auto l = build(t->left());
      auto r = build(t->right());
      const std::uint64_t cost = t->tag();
      return sched.submit(
          [&mach, cost] {
            spin_units(cost);
            mach.add_work(cost);
          },
          {l, r});
    };
    build(tree);
    sched.run();
    auto s = mach.load_summary();
    makespan = static_cast<double>(s.makespan);
    vspeedup = s.virtual_speedup;
  }
  state.counters["virt_makespan"] = makespan;
  state.counters["virt_speedup"] = vspeedup;
}

void BM_ManagerWorker_Uniform(benchmark::State& state) {
  run_manager_worker(state, false);
  MOTIF_BENCH_REPORT(state);
}
void BM_ManagerWorker_HeavyTail(benchmark::State& state) {
  run_manager_worker(state, true);
  MOTIF_BENCH_REPORT(state);
}

void args(benchmark::internal::Benchmark* b) {
  for (int leaves : {1024, 8192}) {
    for (int procs : {4, 8, 16}) {
      b->Args({leaves, procs});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_Static_Uniform)->Apply(args);
BENCHMARK(BM_Static_HeavyTail)->Apply(args);
BENCHMARK(BM_TR1_Uniform)->Apply(args);
BENCHMARK(BM_TR1_HeavyTail)->Apply(args);
BENCHMARK(BM_TR2_Uniform)->Apply(args);
BENCHMARK(BM_TR2_HeavyTail)->Apply(args);
BENCHMARK(BM_ManagerWorker_Uniform)->Apply(args);
BENCHMARK(BM_ManagerWorker_HeavyTail)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
