// The motif algebra of Section 2.2.
//
// "The implementation of a motif comprises both a source-to-source
// transformation and a library program. Hence, we often denote a motif by
// a pair {T, L} ... the application of M to A yields a new program
// A' = M(A) = T(A) ∪ L."
//
// Composition: M = M2 ∘ M1, with M(A) = M2(M1(A)) = T2(T1(A) ∪ L1) ∪ L2.
// Note that the composed motif is itself a {T, L} pair with
// T = λA. T2(T1(A) ∪ L1) and L = L2 — composition is closed, which is what
// lets users build Tree-Reduce-1 = Server ∘ Rand ∘ Tree1 (Section 3.4).
#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "term/program.hpp"

namespace motif::transform {

using Transform = std::function<term::Program(const term::Program&)>;

class Motif {
 public:
  Motif(std::string name, Transform t, term::Program library)
      : name_(std::move(name)),
        transform_(std::move(t)),
        library_(std::move(library)) {}

  const std::string& name() const { return name_; }
  const term::Program& library() const { return library_; }

  /// T(A): the transformed application, before linking.
  term::Program transformed(const term::Program& a) const {
    return transform_(a);
  }

  /// M(A) = T(A) ∪ L.
  term::Program apply(const term::Program& a) const {
    return transformed(a).linked_with(library_);
  }

 private:
  std::string name_;
  Transform transform_;
  term::Program library_;
};

/// The identity transformation (used by library-only motifs like Tree1).
Transform identity_transform();

/// M2 ∘ M1.
Motif compose(const Motif& m2, const Motif& m1);

/// M_n ∘ ... ∘ M_1 (rightmost applied first, matching the paper's
/// Server ∘ Rand ∘ Tree1 notation).
Motif compose_all(std::vector<Motif> outer_to_inner);

/// A variable name not used anywhere in `c`, preferring `base`, then
/// base1, base2, ... Keeps transformation output readable AND
/// re-parseable (two distinct cells printed with the same name would
/// merge on re-parse).
std::string fresh_var_name(const term::Clause& c, const std::string& base);

/// Stateful fresh-name supply for a clause being rewritten: every name it
/// hands out is recorded so repeated requests for the same base stay
/// distinct (two @random goals in one body need N/O and N1/O1).
class FreshNamer {
 public:
  explicit FreshNamer(const term::Clause& c);
  term::Term fresh(const std::string& base);

 private:
  std::set<std::string> used_;
};

}  // namespace motif::transform
