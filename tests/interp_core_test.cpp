// Core reduction semantics of the interpreter: matching, guards,
// suspension, commit, placement, failure, deadlock detection.
#include "interp/interp.hpp"

#include <gtest/gtest.h>

#include "term/parser.hpp"

namespace in = motif::interp;
using in::Interp;
using in::InterpOptions;
using motif::term::parse_term;
using motif::term::Program;
using motif::term::Term;

namespace {
InterpOptions small() {
  InterpOptions o;
  o.nodes = 2;
  o.workers = 2;
  return o;
}
}  // namespace

TEST(Interp, FactReduces) {
  Interp i(Program::parse("p(1)."), small());
  auto [goal, r] = i.run_query("p(1)");
  EXPECT_EQ(r.reductions, 1u);
  EXPECT_FALSE(r.deadlocked());
}

TEST(Interp, AssignBindsCallerVariable) {
  Interp i(Program::parse("p(X) :- X := done."), small());
  auto [goal, r] = i.run_query("p(Out)");
  EXPECT_EQ(goal.arg(0).functor(), "done");
}

TEST(Interp, ArithmeticAssign) {
  Interp i(Program::parse("p(N,X) :- X is N * 2 + 1."), small());
  auto [goal, r] = i.run_query("p(20,Out)");
  EXPECT_EQ(goal.arg(1).int_value(), 41);
}

TEST(Interp, ColonEqualsDispatchesArithVsData) {
  Interp i(Program::parse(
      "p(N,A,B,C) :- A := N - 1, B := [N|T], T := [], C := sync."),
      small());
  auto [goal, r] = i.run_query("p(5,A,B,C)");
  EXPECT_EQ(goal.arg(1).int_value(), 4);
  auto lst = goal.arg(2).proper_list();
  ASSERT_TRUE(lst);
  EXPECT_EQ((*lst)[0].int_value(), 5);
  EXPECT_EQ(goal.arg(3).functor(), "sync");
}

TEST(Interp, RuleSelectionByStructure) {
  Interp i(Program::parse(
      "classify(leaf(_),R) :- R := is_leaf.\n"
      "classify(tree(_,_,_),R) :- R := is_tree."),
      small());
  auto [g1, r1] = i.run_query("classify(leaf(7),R)");
  EXPECT_EQ(g1.arg(1).functor(), "is_leaf");
  auto [g2, r2] = i.run_query("classify(tree(a,b,c),R)");
  EXPECT_EQ(g2.arg(1).functor(), "is_tree");
}

TEST(Interp, GuardSelectsRule) {
  Interp i(Program::parse(
      "sign(N,S) :- N > 0 | S := pos.\n"
      "sign(N,S) :- N < 0 | S := neg.\n"
      "sign(0,S) :- S := zero."),
      small());
  EXPECT_EQ(i.run_query("sign(5,S)").first.arg(1).functor(), "pos");
  EXPECT_EQ(i.run_query("sign(-5,S)").first.arg(1).functor(), "neg");
  EXPECT_EQ(i.run_query("sign(0,S)").first.arg(1).functor(), "zero");
}

TEST(Interp, NoRuleAppliesIsError) {
  Interp i(Program::parse("p(1)."), small());
  EXPECT_THROW(i.run(parse_term("p(2)")), in::InterpError);
}

TEST(Interp, UndefinedProcessIsError) {
  Interp i(Program::parse("p(1)."), small());
  EXPECT_THROW(i.run(parse_term("q(1)")), in::InterpError);
}

TEST(Interp, DoubleAssignIsError) {
  Interp i(Program::parse("p(X) :- X := a, X := b."), small());
  EXPECT_THROW(i.run(parse_term("p(Y)")), in::InterpError);
}

TEST(Interp, AssignSameValueTolerated) {
  Interp i(Program::parse("p(X) :- X := a, X := a."), small());
  EXPECT_NO_THROW(i.run(parse_term("p(Y)")));
}

TEST(Interp, HeadMatchingSuspendsOnUnboundInput) {
  // q binds X only after p has been tried; p must suspend then resume.
  Interp i(Program::parse(
      "go(R) :- p(X,R), q(X).\n"
      "p(1,R) :- R := got_one.\n"
      "q(X) :- X := 1."),
      small());
  auto [goal, r] = i.run_query("go(R)");
  EXPECT_EQ(goal.arg(0).functor(), "got_one");
  EXPECT_FALSE(r.deadlocked());
}

TEST(Interp, GuardSuspendsUntilBound) {
  // `supply` is posted to the node queue while `check` tail-executes
  // first, so check reliably sees N unbound and suspends.
  Interp i(Program::parse(
      "go(R) :- supply(N), check(N,R).\n"
      "check(N,R) :- N > 10 | R := big.\n"
      "check(N,R) :- N =< 10 | R := small.\n"
      "supply(N) :- N := 42."),
      small());
  auto [goal, r] = i.run_query("go(R)");
  EXPECT_EQ(goal.arg(0).functor(), "big");
  EXPECT_GE(r.suspensions, 1u);
}

TEST(Interp, DeadlockDetected) {
  Interp i(Program::parse("p(X) :- X > 0 | q.\nq."), small());
  auto r = i.run(parse_term("p(Y)"));
  EXPECT_TRUE(r.deadlocked());
  EXPECT_EQ(r.still_suspended, 1u);
  ASSERT_FALSE(r.stuck_goals.empty());
  EXPECT_NE(r.stuck_goals[0].find("p("), std::string::npos);
  // The report names the dataflow variable the goal is blocked on.
  EXPECT_NE(r.stuck_goals[0].find("(waiting on "), std::string::npos)
      << r.stuck_goals[0];
}

TEST(Interp, OtherwiseCommitsWhenEarlierRulesFail) {
  Interp i(Program::parse(
      "p(1,R) :- R := one.\n"
      "p(_,R) :- otherwise | R := other."),
      small());
  EXPECT_EQ(i.run_query("p(1,R)").first.arg(1).functor(), "one");
  EXPECT_EQ(i.run_query("p(9,R)").first.arg(1).functor(), "other");
}

TEST(Interp, OtherwiseBlockedBySuspendedEarlierRule) {
  // With X unbound, rule 1 suspends, so otherwise must NOT commit; the
  // process deadlocks (nothing ever binds X).
  Interp i(Program::parse(
      "p(1,R) :- R := one.\n"
      "p(_,R) :- otherwise | R := other."),
      small());
  auto [goal, r] = i.run_query("p(X,R)");
  EXPECT_TRUE(r.deadlocked());
  EXPECT_FALSE(goal.arg(1).bound());
}

TEST(Interp, BodySpawnsRunConcurrently) {
  // Two producers feed one adder; completion requires real dataflow.
  Interp i(Program::parse(
      "go(R) :- make(3,A), make(4,B), add(A,B,R).\n"
      "make(N,X) :- X := N * 10.\n"
      "add(A,B,R) :- R is A + B."),
      small());
  EXPECT_EQ(i.run_query("go(R)").first.arg(0).int_value(), 70);
}

TEST(Interp, RecursionWithTailLoop) {
  Interp i(Program::parse(
      "count(0,Acc,R) :- R := Acc.\n"
      "count(N,Acc,R) :- N > 0 | Acc1 is Acc + 1, N1 is N - 1, "
      "count(N1,Acc1,R)."),
      small());
  auto [goal, r] = i.run_query("count(10000,0,R)");
  EXPECT_EQ(goal.arg(2).int_value(), 10000);
}

TEST(Interp, MetacallReducesBoundGoal) {
  Interp i(Program::parse(
      "apply(G) :- G.\n"
      "go(R) :- mk(G,R), apply(G).\n"
      "mk(G,R) :- G := hit(R).\n"
      "hit(R) :- R := yes."),
      small());
  EXPECT_EQ(i.run_query("go(R)").first.arg(0).functor(), "yes");
}

TEST(Interp, PlacementOnNumberedNode) {
  InterpOptions o;
  o.nodes = 4;
  o.workers = 2;
  Interp i(Program::parse(
      "go(A,B) :- where(A)@3, where(B)@1.\n"
      "where(N) :- current_node(N)."),
      o);
  auto [goal, r] = i.run_query("go(A,B)");
  EXPECT_EQ(goal.arg(0).int_value(), 3);
  EXPECT_EQ(goal.arg(1).int_value(), 1);
}

TEST(Interp, PlacementRandomStaysInRange) {
  InterpOptions o;
  o.nodes = 8;
  o.workers = 2;
  Interp i(Program::parse(
      "go([]) .\n"
      "go([V|Vs]) :- where(V)@random, go(Vs).\n"
      "where(N) :- current_node(N)."),
      o);
  auto [goal, r] = i.run_query("go([A,B,C,D,E,F,G,H,I,J])");
  auto vs = goal.arg(0).proper_list();
  for (const auto& v : *vs) {
    EXPECT_GE(v.int_value(), 1);
    EXPECT_LE(v.int_value(), 8);
  }
}

TEST(Interp, PlacementOutOfRangeIsError) {
  Interp i(Program::parse("go :- p@9.\np."), small());
  EXPECT_THROW(i.run(parse_term("go")), in::InterpError);
}

TEST(Interp, PlacementComputedFromExpression) {
  InterpOptions o;
  o.nodes = 4;
  o.workers = 2;
  Interp i(Program::parse(
      "go(V) :- pick(J), where(V)@J.\n"
      "pick(J) :- J := 1 + 1.\n"
      "where(N) :- current_node(N)."),
      o);
  EXPECT_EQ(i.run_query("go(V)").first.arg(0).int_value(), 2);
}

TEST(Interp, RepeatedHeadVariableRequiresEquality) {
  Interp i(Program::parse(
      "same(X,X,R) :- R := yes.\n"
      "same(_,_,R) :- otherwise | R := no."),
      small());
  EXPECT_EQ(i.run_query("same(3,3,R)").first.arg(2).functor(), "yes");
  EXPECT_EQ(i.run_query("same(3,4,R)").first.arg(2).functor(), "no");
}

TEST(Interp, StringAndTupleMatching) {
  Interp i(Program::parse(
      "p(\"key\",R) :- R := matched_string.\n"
      "p({A,B},R) :- R := {B,A}."),
      small());
  EXPECT_EQ(i.run_query("p(\"key\",R)").first.arg(1).functor(),
            "matched_string");
  auto [g, r] = i.run_query("p({1,2},R)");
  EXPECT_TRUE(g.arg(1) == parse_term("{2,1}"));
}

TEST(Interp, WriteGoesToSink) {
  Interp i(Program::parse("go :- writeln(hello), write(42)."), small());
  std::string seen;
  std::mutex m;
  i.set_output([&](const std::string& s) {
    std::lock_guard l(m);
    seen += s;
  });
  i.run(parse_term("go"));
  EXPECT_NE(seen.find("hello\n"), std::string::npos);
  EXPECT_NE(seen.find("42"), std::string::npos);
}

TEST(Interp, BodyComparisonActsAsAssertion) {
  Interp i(Program::parse("ok :- 1 < 2.\nbad :- 2 < 1."), small());
  EXPECT_NO_THROW(i.run(parse_term("ok")));
  EXPECT_THROW(i.run(parse_term("bad")), in::InterpError);
}

TEST(Interp, PerDefinitionReductionProfile) {
  Interp i(Program::parse(
      "go(N) :- loop(N).\n"
      "loop(0).\n"
      "loop(N) :- N > 0 | N1 is N - 1, loop(N1)."),
      small());
  auto r = i.run(parse_term("go(50)"));
  ASSERT_FALSE(r.by_definition.empty());
  // loop/1 dominates: 51 commits vs go/1's single commit.
  EXPECT_EQ(r.by_definition[0].first, "loop/1");
  EXPECT_EQ(r.by_definition[0].second, 51u);
  bool saw_go = false;
  for (const auto& [name, n] : r.by_definition) {
    if (name == "go/1") {
      saw_go = true;
      EXPECT_EQ(n, 1u);
    }
  }
  EXPECT_TRUE(saw_go);
}

TEST(Interp, LoadSummaryCountsRemoteMessages) {
  InterpOptions o;
  o.nodes = 4;
  o.workers = 1;
  Interp i(Program::parse(
      "go :- p@2, p@3, p@4.\n"
      "p."),
      o);
  auto r = i.run(parse_term("go"));
  EXPECT_GE(r.load.remote_msgs, 3u);
}
