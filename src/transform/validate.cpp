#include "transform/validate.hpp"

#include <stdexcept>

namespace motif::transform {

analysis::Report validate(const term::Program& program,
                          const analysis::Options& options) {
  return analysis::analyze(program, options);
}

void validate_or_throw(const term::Program& program,
                       const analysis::Options& options) {
  analysis::Report report = validate(program, options);
  if (!report.ok()) {
    throw std::runtime_error("transform output fails validation:\n" +
                             report.to_string());
  }
}

}  // namespace motif::transform
