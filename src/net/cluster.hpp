// Cluster: one logical machine spanning several processes (DESIGN.md §11).
//
// The global NodeId space [0, ranks * nodes_per_rank) is sharded
// contiguously: rank r owns nodes [r*per, (r+1)*per) and runs a local
// rt::Machine with `per` virtual nodes. A post() to a node this rank owns
// goes straight to the local machine; a post to any other node becomes a
// Post frame through the Transport — which is exactly the paper's
// inter-processor message, now with a measurable wire cost (net_tx /
// net_rx / bytes counters on the owning Machine).
//
// Handlers: remote code is addressed by a small registry index, not by
// shipping closures. Every rank must register the same handlers in the
// same order before start() — the index is the wire-level name.
//
// Lifecycle (rank 0 coordinates):
//   * start()      — followers bring the transport up and send Join;
//                    rank 0 waits for all Joins, then broadcasts Start.
//                    Follower start() does NOT block on Start, so an
//                    all-in-one-thread loopback cluster can start its
//                    followers first and rank 0 last.
//   * wait_idle_for — distributed termination detection, rank-0 driven:
//                    probe rounds collect (idle, tx, rx) from every rank;
//                    the run is done when all ranks are idle and the
//                    global sent == received frame counts are *stable
//                    across two consecutive rounds* (no message can be in
//                    flight — the classic four-counter argument, same
//                    family as the Link algebra in runtime/termination.hpp).
//                    On success rank 0 broadcasts Release.
//   * serve()      — follower main loop: block until Shutdown arrives.
//   * shutdown()   — rank 0 broadcasts Shutdown, then stops the transport.
//
// Fault seam: ClusterConfig::net_faults applies the FaultPlan lottery to
// outbound remote posts *before* they reach the transport — a dropped
// frame is never counted as sent, so termination detection stays exact
// under chaos; delayed frames park in a per-rank queue flushed before the
// next probe reply (delay reorders, it cannot wedge).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "runtime/machine.hpp"

namespace motif::net {

/// Node id in the cluster-wide space [0, ranks * nodes_per_rank).
using GlobalNode = std::uint32_t;

/// Remote-invokable entry point. Runs as a task on the destination node's
/// machine (sequential per node, like any other task). The payload is the
/// decoded wire term — fresh cells, nothing shared with the sender.
using Handler = std::function<void(const term::Term&)>;

struct ClusterConfig {
  std::uint32_t nodes_per_rank = 4;
  /// Local machine config; `nodes` is overridden with nodes_per_rank.
  rt::MachineConfig machine{};
  /// Fault lottery applied to outbound remote posts (transport seam).
  rt::FaultPlan net_faults{};
  /// Pause between termination-probe rounds on rank 0.
  std::chrono::milliseconds probe_interval{2};
  /// How long rank 0's start() waits for every rank to Join.
  std::chrono::seconds join_timeout{30};
};

class Cluster {
 public:
  /// Sets the transport receiver immediately (so frames sent by peers
  /// that start earlier are never dropped) but does not start it.
  Cluster(Transport& transport, ClusterConfig cfg);

  /// Stops the transport (no Shutdown broadcast — that is shutdown()),
  /// discards any still-queued handler tasks instead of running them
  /// (they reference handlers_ and whatever the handlers capture), and
  /// shuts the local machine down before members destruct.
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::uint32_t rank() const { return transport_.rank(); }
  std::uint32_t ranks() const { return transport_.ranks(); }
  std::uint32_t nodes_per_rank() const { return per_; }
  GlobalNode global_nodes() const { return ranks() * per_; }
  std::uint32_t owner(GlobalNode g) const { return g / per_; }
  rt::NodeId local_of(GlobalNode g) const { return g % per_; }

  rt::Machine& machine() { return *machine_; }
  const rt::Machine& machine() const { return *machine_; }

  /// Registers a remote-invokable handler; returns its wire index. Must
  /// be called before start(), identically on every rank.
  std::uint16_t register_handler(std::string name, Handler h);

  /// Brings the cluster up (see lifecycle note above). Throws if a rank
  /// fails to join within join_timeout.
  void start();

  /// Runs `handler(payload)` as a task on global node `dst` — locally or
  /// across the wire. Callable from machine tasks and external threads.
  void post(GlobalNode dst, std::uint16_t handler, term::Term payload);

  /// Distributed wait_idle (rank 0) / wait-for-Release (followers).
  /// Returns the local machine's classification once the cluster is
  /// globally quiescent, or DeadlineExceeded/NodeLost on timeout.
  rt::RunOutcome wait_idle_for(std::chrono::nanoseconds deadline);

  /// Follower main loop: blocks until Shutdown arrives, then stops the
  /// transport. Returns immediately on rank 0.
  void serve();

  /// Rank 0: broadcast Shutdown, then stop the transport. Followers just
  /// stop the transport. Idempotent.
  void shutdown();

  /// Network counters of the local rank (also in machine().sched_stats()).
  rt::NetStats net_stats() const { return machine_->net_counters().snapshot(); }

 private:
  void on_frame(Frame&& f, std::size_t wire_bytes);
  void deliver_post(Frame&& f);
  /// Ships a data frame (counts tx_frames/tx_bytes), then flushes any
  /// delayed frames parked for that rank behind it.
  void send_data(std::uint32_t to, Frame& f);
  void send_ctl(std::uint32_t to, const Frame& f);
  /// Sends every delayed frame whose destination is `to` (or all ranks
  /// when to == kAllRanks); called before probes so delays cannot wedge
  /// termination detection.
  void flush_delayed(std::uint32_t to);
  bool delayed_empty() const;
  rt::RunOutcome wait_idle_rank0(std::chrono::nanoseconds deadline);
  rt::RunOutcome wait_idle_follower(std::chrono::nanoseconds deadline);
  rt::RunOutcome deadline_outcome();

  static constexpr std::uint32_t kAllRanks = static_cast<std::uint32_t>(-1);

  Transport& transport_;
  ClusterConfig cfg_;
  std::uint32_t per_;
  std::vector<std::pair<std::string, Handler>> handlers_;
  /// Declared after handlers_ on purpose: queued tasks reference
  /// handlers_ entries, so the machine (destroyed first, in reverse
  /// declaration order) must be gone before the registry is.
  std::unique_ptr<rt::Machine> machine_;
  bool started_ = false;

  // Fault seam (outbound remote posts).
  std::atomic<std::uint64_t> send_ordinal_{0};
  mutable std::mutex delayed_m_;
  std::vector<std::pair<std::uint32_t, Frame>> delayed_;

  std::atomic<std::uint64_t> trace_seq_{0};

  // Control-plane state, guarded by state_m_.
  mutable std::mutex state_m_;
  std::condition_variable state_cv_;
  std::set<std::uint32_t> joined_;      // rank 0: ranks that sent Join
  bool start_seen_ = false;             // follower: Start arrived
  std::uint64_t release_round_ = 0;     // follower: latest Release round
  bool shutdown_seen_ = false;
  std::uint64_t reply_round_ = 0;       // rank 0: round being collected
  std::map<std::uint32_t, Frame> replies_;  // rank 0: ProbeReply per rank
  bool shutdown_done_ = false;
};

}  // namespace motif::net
