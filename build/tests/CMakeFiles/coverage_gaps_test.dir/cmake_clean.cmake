file(REMOVE_RECURSE
  "CMakeFiles/coverage_gaps_test.dir/coverage_gaps_test.cpp.o"
  "CMakeFiles/coverage_gaps_test.dir/coverage_gaps_test.cpp.o.d"
  "coverage_gaps_test"
  "coverage_gaps_test.pdb"
  "coverage_gaps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_gaps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
