#include "transform/rand.hpp"

#include <algorithm>

namespace motif::transform {

using term::Clause;
using term::GoalView;
using term::ProcKey;
using term::Program;
using term::Term;

namespace {

bool is_random_annotated(const Term& goal) {
  GoalView v = term::strip_placement(goal);
  return v.annotated && v.placement.deref().is_atom() &&
         v.placement.deref().functor() == "random";
}

Clause rewrite_clause(const Clause& c) {
  Clause out;
  out.head = c.head;
  out.guard = c.guard;
  FreshNamer namer(c);
  for (const Term& goal : c.body) {
    if (!is_random_annotated(goal)) {
      out.body.push_back(goal);
      continue;
    }
    Term p = term::strip_placement(goal).goal;
    Term n = namer.fresh("N");
    Term o = namer.fresh("O");
    out.body.push_back(Term::compound("nodes", {n}));
    out.body.push_back(Term::compound("rand_num", {n, o}));
    out.body.push_back(Term::compound("send", {o, p}));
  }
  return out;
}

Clause server_rule_for(const ProcKey& k) {
  // server([p(V1,...,Vn)|In]) :- p(V1,...,Vn), server(In).
  std::vector<Term> vars;
  vars.reserve(k.arity);
  for (std::size_t i = 0; i < k.arity; ++i) {
    vars.push_back(Term::var("V" + std::to_string(i + 1)));
  }
  Term call = Term::compound(k.name, vars);
  Term in = Term::var("In");
  Clause c;
  c.head = Term::compound("server", {Term::cons(call, in)});
  c.body = {call, Term::compound("server", {in})};
  return c;
}

Clause server_halt_rule() {
  // server([halt|_]).
  Clause c;
  c.head = Term::compound(
      "server", {Term::cons(Term::atom("halt"), Term::var("_"))});
  return c;
}

}  // namespace

std::vector<ProcKey> annotated_random_types(const Program& a) {
  std::vector<ProcKey> keys;
  for (const Clause& c : a.clauses()) {
    for (const Term& goal : c.body) {
      if (!is_random_annotated(goal)) continue;
      ProcKey k = term::goal_key(goal);
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
  }
  return keys;
}

Motif rand_motif(std::vector<ProcKey> entry_message_types) {
  Transform t = [entries = std::move(entry_message_types)](const Program& a) {
    Program out;
    for (const Clause& c : a.clauses()) out.add(rewrite_clause(c));
    std::vector<ProcKey> keys = annotated_random_types(a);
    for (const ProcKey& e : entries) {
      if (std::find(keys.begin(), keys.end(), e) == keys.end()) {
        keys.push_back(e);
      }
    }
    for (const ProcKey& k : keys) out.add(server_rule_for(k));
    if (!keys.empty()) out.add(server_halt_rule());
    return out;
  };
  return Motif("Rand", std::move(t), Program{});
}

term::Program terminating_driver(const std::string& name,
                                 const std::string& entry) {
  return Program::parse(name + "(T,V) :- " + entry + "(T,V), " + name +
                        "_wait(V).\n" + name +
                        "_wait(V) :- data(V) | halt.\n");
}

}  // namespace motif::transform
