file(REMOVE_RECURSE
  "CMakeFiles/motifsh.dir/motifsh.cpp.o"
  "CMakeFiles/motifsh.dir/motifsh.cpp.o.d"
  "motifsh"
  "motifsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
