# Empty dependencies file for bench_msa.
# This may be replaced when dependencies are built.
