#include "runtime/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace motif::rt {

namespace {
thread_local NodeId tl_current_node = kNoNode;
}  // namespace

Machine::Machine(MachineConfig cfg)
    : batch_(std::max<std::uint32_t>(1, cfg.batch)),
      ext_rng_(cfg.seed ^ 0xE27ull),
      topology_(cfg.topology) {
  const std::uint32_t n = std::max<std::uint32_t>(1, cfg.nodes);
  // Mesh: the most-square factorisation r x c with r*c >= n.
  mesh_cols_ = 1;
  while (mesh_cols_ * mesh_cols_ < n) ++mesh_cols_;
  nodes_.reserve(n);
  std::uint64_t s = cfg.seed;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(splitmix64(s)));
  }
  faults_ = cfg.faults;
  faults_enabled_.store(faults_.enabled(), std::memory_order_release);
#if MOTIF_TRACING
  tracer_ = std::make_unique<Tracer>(
      TracerOptions{std::max<std::size_t>(2, cfg.trace_capacity)});
  for (std::uint32_t i = 0; i < n; ++i) {
    tracer_->add_track("node " + std::to_string(i));
  }
#endif
  std::uint32_t w = cfg.workers;
  if (w == 0) {
    const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    w = std::min(n, hw);
  }
  workers_.reserve(w);
  for (std::uint32_t i = 0; i < w; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Machine::~Machine() { shutdown(); }

void Machine::shutdown() {
  if (shutdown_done_) return;
  shutdown_done_ = true;
  // Drain outstanding work first so no posted task is silently dropped.
  {
    std::unique_lock lock(idle_m_);
    idle_cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  // A task error no wait_idle ever collected must not vanish: count it
  // and say so, since nobody is left to rethrow it to.
  std::exception_ptr e;
  {
    std::lock_guard el(error_m_);
    e = first_error_;
    first_error_ = nullptr;
  }
  if (e) {
    dropped_task_errors().fetch_add(1, std::memory_order_relaxed);
    std::string what = "unknown exception";
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      what = ex.what();
    } catch (...) {
    }
    std::fprintf(stderr,
                 "[motif] task error dropped at Machine shutdown: %s\n",
                 what.c_str());
  }
  accepting_.store(false, std::memory_order_release);
  {
    std::lock_guard lock(ready_m_);
    stopping_ = true;
  }
  ready_cv_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
}

NodeId Machine::current_node() { return tl_current_node; }

void Machine::start_trace() {
#if MOTIF_TRACING
  if (!tracer_->active()) tracer_->start();
#endif
}

void Machine::stop_trace() {
#if MOTIF_TRACING
  tracer_->stop();
#endif
}

bool Machine::tracing() const {
#if MOTIF_TRACING
  return tracer_->active();
#else
  return false;
#endif
}

TraceLog Machine::drain_trace() {
#if MOTIF_TRACING
  return tracer_->drain();
#else
  return {};
#endif
}

void Machine::post(NodeId n, Task t) {
  if (!accepting_.load(std::memory_order_acquire) ||
      discarding_.load(std::memory_order_acquire)) {
    // After shutdown() (or while abandon_pending drains) posting is safe
    // but inert: the task is discarded and counted, never enqueued onto
    // stopped workers.
    discarded_posts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const NodeId from = tl_current_node;
  if (nodes_[n]->dead.load(std::memory_order_acquire)) {
    // A crashed processor loses its mail silently — the defining hazard
    // the supervision layer exists to classify.
    fault_counts_.dead_drops.fetch_add(1, std::memory_order_relaxed);
    if (from != kNoNode) emit_fault(from, "dead-drop", 0, n);
    return;
  }
  // The fault lottery applies to cross-node posts only; the ordinal is a
  // per-sender count so the (seed, sender, ordinal) stream is replayable.
  PostFault pf = PostFault::None;
  std::uint64_t ordinal = 0;
  if (from != kNoNode && from != n &&
      faults_enabled_.load(std::memory_order_acquire)) {
    ordinal = nodes_[from]->xposts.fetch_add(1, std::memory_order_relaxed) + 1;
    pf = faults_.post_fault(from, ordinal);
  }
  if (pf == PostFault::Drop) {
    fault_counts_.drops.fetch_add(1, std::memory_order_relaxed);
    emit_fault(from, "drop", ordinal, n);
    return;
  }
  QueuedTask qt{std::move(t)};
  if (pf == PostFault::Delay) {
    qt.delay = 1;  // one bounce: re-queued behind later arrivals
    fault_counts_.delays.fetch_add(1, std::memory_order_relaxed);
    emit_fault(from, "delay", ordinal, n);
  }
  if (from == kNoNode) {
    // external producer; not an inter-processor message
  } else if (from == n) {
    nodes_[from]->counters.posts_local.fetch_add(1, std::memory_order_relaxed);
  } else {
    const std::uint32_t hops = hop_distance(from, n);
    nodes_[from]->counters.posts_remote.fetch_add(1, std::memory_order_relaxed);
    nodes_[from]->counters.hops.fetch_add(hops, std::memory_order_relaxed);
    nodes_[n]->counters.recv_remote.fetch_add(1, std::memory_order_relaxed);
#if MOTIF_TRACING
    if (tracer_->active()) {
      // The calling thread is running node `from`, i.e. it is that
      // track's (single) writer right now.
      qt.trace_msg = tracer_->next_msg_id();
      qt.from = from;
      qt.hops = hops;
      tracer_->emit(from, TraceEventKind::MsgSend, nullptr, qt.trace_msg, n,
                    hops);
    }
#endif
  }
  const bool dup = pf == PostFault::Duplicate;
  if (dup) {
    fault_counts_.duplicates.fetch_add(1, std::memory_order_relaxed);
    emit_fault(from, "dup", ordinal, n);
  }
  pending_.fetch_add(dup ? 2 : 1, std::memory_order_relaxed);
  bool need_schedule = false;
  {
    std::lock_guard lock(nodes_[n]->m);
    if (dup) nodes_[n]->q.push_back(qt);  // second delivery of the same msg
    nodes_[n]->q.push_back(std::move(qt));
    const auto depth = static_cast<std::uint64_t>(nodes_[n]->q.size());
    std::uint64_t peak = peak_queue_.load(std::memory_order_relaxed);
    while (depth > peak && !peak_queue_.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
    if (!nodes_[n]->scheduled) {
      nodes_[n]->scheduled = true;
      need_schedule = true;
    }
  }
  if (need_schedule) enqueue_ready(n);
}

void Machine::post_local(Task t) {
  const NodeId n = tl_current_node == kNoNode ? 0 : tl_current_node;
  post(n, std::move(t));
}

NodeId Machine::random_node() {
  const NodeId cur = tl_current_node;
  if (cur != kNoNode) {
    return static_cast<NodeId>(nodes_[cur]->rng.below(nodes_.size()));
  }
  std::lock_guard lock(ext_rng_m_);
  return static_cast<NodeId>(ext_rng_.below(nodes_.size()));
}

void Machine::enqueue_ready(NodeId n) {
  {
    std::lock_guard lock(ready_m_);
    ready_.push_back(n);
  }
  ready_cv_.notify_one();
}

void Machine::worker_loop() {
  for (;;) {
    NodeId n;
    {
      std::unique_lock lock(ready_m_);
      ready_cv_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping and drained
      n = ready_.front();
      ready_.pop_front();
    }
    run_node(n);
  }
}

void Machine::run_node(NodeId n) {
  Node& node = *nodes_[n];
  if (node.dead.load(std::memory_order_acquire)) {
    // Mail that raced past the dead-check in post(): shed it here so
    // pending_ still drains and the machine quiesces instead of hanging.
    note_pending_sub(shed_queue(node, /*as_dead_drops=*/true));
    return;
  }
  tl_current_node = n;
#if MOTIF_TRACING
  // Bind this thread to the node's trace track so EvalScope and
  // TRACE_SPAN emissions inside tasks land on the right timeline. The
  // ready-list handoff serialises successive writers of one track.
  ThreadTrackGuard trace_guard(tracer_.get(), n);
#endif
  std::uint32_t executed = 0;
  bool died = false;
  for (;;) {
    QueuedTask t;
    {
      std::lock_guard lock(node.m);
      if (node.q.empty()) {
        node.scheduled = false;
        break;
      }
      if (executed >= batch_) {
        // Yield the worker but keep the node scheduled; requeue it so
        // other ready nodes get a turn (fairness across virtual nodes).
        break;
      }
      t = std::move(node.q.front());
      node.q.pop_front();
    }
    if (t.delay > 0) {
      // Fault-injected delay: bounce the task to the back of the queue
      // so anything that arrived since overtakes it. No counters — the
      // task has not run.
      --t.delay;
      {
        std::lock_guard lock(node.m);
        node.q.push_back(std::move(t));
      }
      ++executed;
      continue;
    }
    ++executed;
    const std::uint64_t task_no =
        node.counters.tasks.fetch_add(1, std::memory_order_relaxed) + 1;
#if MOTIF_TRACING
    const bool traced = tracer_->active();
    std::uint64_t work_before = 0;
    if (traced) {
      tracer_->emit(n, TraceEventKind::TaskBegin);
      if (t.trace_msg != 0) {
        tracer_->emit(n, TraceEventKind::MsgRecv, nullptr, t.trace_msg,
                      t.from, t.hops);
      }
      work_before = node.counters.work.load(std::memory_order_relaxed);
    }
#endif
    try {
      if (faults_enabled_.load(std::memory_order_acquire) &&
          throw_due(n, task_no)) {
        fault_counts_.throws.fetch_add(1, std::memory_order_relaxed);
        emit_fault(n, "throw", task_no, n);
        // The task body never runs: the "process" died before producing
        // its outputs.
        throw InjectedFault("injected fault: node " + std::to_string(n) +
                            " task " + std::to_string(task_no));
      }
      t.fn();
    } catch (...) {
      std::lock_guard lock(error_m_);
      if (!first_error_) first_error_ = std::current_exception();
    }
#if MOTIF_TRACING
    if (traced) {
      const std::uint64_t work_after =
          node.counters.work.load(std::memory_order_relaxed);
      tracer_->emit(n, TraceEventKind::TaskEnd, nullptr,
                    work_after - work_before);
    }
#endif
    if (faults_enabled_.load(std::memory_order_acquire) &&
        kill_due(n, task_no)) {
      node.dead.store(true, std::memory_order_release);
      fault_counts_.kills.fetch_add(1, std::memory_order_relaxed);
      emit_fault(n, "kill", task_no, n);
      // The dead node's remaining mail is lost with it.
      note_pending_sub(shed_queue(node, /*as_dead_drops=*/true));
      died = true;
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard lock(idle_m_);
      idle_cv_.notify_all();
    }
    if (died) break;
  }
  tl_current_node = kNoNode;
  if (executed >= batch_) {
    // Re-arm: the node still holds work (or raced with a post; the
    // scheduled flag stays true so it is in the ready list exactly once).
    bool requeue = false;
    {
      std::lock_guard lock(node.m);
      if (!node.q.empty()) {
        requeue = true;
      } else {
        node.scheduled = false;
      }
    }
    if (requeue) enqueue_ready(n);
  }
}

void Machine::wait_idle() {
  std::unique_lock lock(idle_m_);
  idle_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
  lock.unlock();
  std::lock_guard el(error_m_);
  if (first_error_) {
    auto e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

RunOutcome Machine::wait_idle_for(std::chrono::nanoseconds deadline) {
  bool idle;
  {
    std::unique_lock lock(idle_m_);
    idle = idle_cv_.wait_for(lock, deadline, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  RunOutcome out;
  out.faults = fault_totals();
  out.lost_nodes = lost_nodes();
  if (!idle) {
    out.status = out.lost_nodes.empty() ? RunStatus::DeadlineExceeded
                                        : RunStatus::NodeLost;
    for (const auto& name : unbound_svar_names()) {
      if (!out.blocked_on.empty()) out.blocked_on += ", ";
      out.blocked_on += name;
    }
    return out;
  }
  std::lock_guard el(error_m_);
  if (first_error_) {
    out.status = RunStatus::TaskFailed;
    out.error = first_error_;
    first_error_ = nullptr;
    try {
      std::rethrow_exception(out.error);
    } catch (const std::exception& e) {
      out.error_message = e.what();
    } catch (...) {
      out.error_message = "unknown exception";
    }
  } else {
    out.status = RunStatus::Completed;
  }
  return out;
}

void Machine::abandon_pending() {
  discarding_.store(true, std::memory_order_release);
  std::uint64_t removed = 0;
  for (auto& node : nodes_) {
    removed += shed_queue(*node, /*as_dead_drops=*/false);
  }
  note_pending_sub(removed);
  // In-flight tasks finish (their onward posts are discarded above);
  // only then is the machine really quiet for the next attempt.
  {
    std::unique_lock lock(idle_m_);
    idle_cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard el(error_m_);
    first_error_ = nullptr;  // the abandoned attempt's error dies with it
  }
  discarding_.store(false, std::memory_order_release);
}

void Machine::set_fault_plan(FaultPlan plan, bool revive_dead) {
  faults_enabled_.store(false, std::memory_order_release);
  faults_ = std::move(plan);
  if (revive_dead) {
    for (auto& node : nodes_) {
      node->dead.store(false, std::memory_order_release);
    }
  }
  faults_enabled_.store(faults_.enabled(), std::memory_order_release);
}

void Machine::revive(NodeId n) {
  nodes_[n]->dead.store(false, std::memory_order_release);
}

std::vector<NodeId> Machine::lost_nodes() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->dead.load(std::memory_order_acquire)) out.push_back(i);
  }
  return out;
}

FaultTotals Machine::fault_totals() const {
  FaultTotals t;
  t.drops = fault_counts_.drops.load(std::memory_order_relaxed);
  t.dead_drops = fault_counts_.dead_drops.load(std::memory_order_relaxed);
  t.duplicates = fault_counts_.duplicates.load(std::memory_order_relaxed);
  t.delays = fault_counts_.delays.load(std::memory_order_relaxed);
  t.kills = fault_counts_.kills.load(std::memory_order_relaxed);
  t.throws = fault_counts_.throws.load(std::memory_order_relaxed);
  return t;
}

std::uint64_t Machine::shed_queue(Node& node, bool as_dead_drops) {
  std::uint64_t shed = 0;
  {
    std::lock_guard lock(node.m);
    shed = static_cast<std::uint64_t>(node.q.size());
    node.q.clear();
    node.scheduled = false;
  }
  if (shed != 0) {
    auto& counter =
        as_dead_drops ? fault_counts_.dead_drops : discarded_posts_;
    counter.fetch_add(shed, std::memory_order_relaxed);
  }
  return shed;
}

void Machine::note_pending_sub(std::uint64_t k) {
  if (k == 0) return;
  if (pending_.fetch_sub(k, std::memory_order_acq_rel) == k) {
    std::lock_guard lock(idle_m_);
    idle_cv_.notify_all();
  }
}

void Machine::emit_fault(NodeId track, const char* kind,
                         std::uint64_t ordinal, NodeId peer) {
#if MOTIF_TRACING
  if (track != kNoNode && tracer_->active()) {
    tracer_->emit(track, TraceEventKind::Fault, kind, ordinal, peer, 0);
  }
#else
  (void)track;
  (void)kind;
  (void)ordinal;
  (void)peer;
#endif
}

bool Machine::kill_due(NodeId n, std::uint64_t task_no) const {
  for (const auto& k : faults_.kills) {
    if (k.node == n && k.after_tasks == task_no) return true;
  }
  return false;
}

bool Machine::throw_due(NodeId n, std::uint64_t task_no) const {
  for (const auto& t : faults_.throws) {
    if (t.node == n && t.on_task == task_no) return true;
  }
  return false;
}

LoadSummary Machine::load_summary() const {
  // NodeCounters are not copyable (atomics); summarise in place.
  std::vector<NodeCounters> view(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    view[i].tasks = nodes_[i]->counters.tasks.load(std::memory_order_relaxed);
    view[i].posts_local =
        nodes_[i]->counters.posts_local.load(std::memory_order_relaxed);
    view[i].posts_remote =
        nodes_[i]->counters.posts_remote.load(std::memory_order_relaxed);
    view[i].recv_remote =
        nodes_[i]->counters.recv_remote.load(std::memory_order_relaxed);
    view[i].work = nodes_[i]->counters.work.load(std::memory_order_relaxed);
    view[i].hops = nodes_[i]->counters.hops.load(std::memory_order_relaxed);
  }
  return summarize(view);
}

std::uint32_t Machine::hop_distance(NodeId a, NodeId b) const {
  if (a == b) return 0;
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  switch (topology_) {
    case Topology::Complete:
      return 1;
    case Topology::Ring: {
      const std::uint32_t d = a > b ? a - b : b - a;
      return std::min(d, n - d);
    }
    case Topology::Mesh2D: {
      const std::uint32_t ar = a / mesh_cols_, ac = a % mesh_cols_;
      const std::uint32_t br = b / mesh_cols_, bc = b % mesh_cols_;
      return (ar > br ? ar - br : br - ar) + (ac > bc ? ac - bc : bc - ac);
    }
    case Topology::Hypercube:
      return static_cast<std::uint32_t>(__builtin_popcount(a ^ b));
  }
  return 1;
}

void Machine::reset_counters() {
  for (auto& n : nodes_) n->counters.reset();
  peak_queue_.store(0, std::memory_order_relaxed);
}

}  // namespace motif::rt
