file(REMOVE_RECURSE
  "CMakeFiles/align_msa_test.dir/align_msa_test.cpp.o"
  "CMakeFiles/align_msa_test.dir/align_msa_test.cpp.o.d"
  "align_msa_test"
  "align_msa_test.pdb"
  "align_msa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_msa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
