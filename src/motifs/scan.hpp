// Parallel prefix (scan) motif — the classic building block for the
// "sorting, grid problems ... and various graph theory" areas of the
// paper's Section 4, built by composition from parallel_for: per-block
// local scans, a small sequential scan of block totals, then a parallel
// offset fix-up.
#pragma once

#include <vector>

#include "motifs/parallel_for.hpp"
#include "runtime/machine.hpp"

namespace motif {

/// In-place inclusive scan: data[i] = op(data[0], ..., data[i]).
/// `op` must be associative.
template <class T, class Op>
void parallel_inclusive_scan(rt::Machine& m, std::vector<T>& data, Op op) {
  const std::size_t n = data.size();
  if (n < 2) return;
  const std::uint32_t blocks = static_cast<std::uint32_t>(
      std::min<std::size_t>(m.node_count(), n));
  if (blocks < 2) {
    for (std::size_t i = 1; i < n; ++i) data[i] = op(data[i - 1], data[i]);
    return;
  }
  std::vector<T> totals(blocks);
  // Phase 1: local scans.
  parallel_for(m, 0, blocks, [&](std::size_t b) {
    const std::size_t i0 = b * n / blocks;
    const std::size_t i1 = (b + 1) * n / blocks;
    for (std::size_t i = i0 + 1; i < i1; ++i) {
      data[i] = op(data[i - 1], data[i]);
    }
    totals[b] = data[i1 - 1];
  });
  // Phase 2: exclusive scan of block totals (tiny, sequential).
  std::vector<T> offsets(blocks);
  offsets[0] = totals[0];
  for (std::size_t b = 1; b < blocks; ++b) {
    offsets[b] = op(offsets[b - 1], totals[b]);
  }
  // Phase 3: fix-up.
  parallel_for(m, 1, blocks, [&](std::size_t b) {
    const std::size_t i0 = b * n / blocks;
    const std::size_t i1 = (b + 1) * n / blocks;
    for (std::size_t i = i0; i < i1; ++i) {
      data[i] = op(offsets[b - 1], data[i]);
    }
  });
}

/// Exclusive scan with an identity: out[i] = fold of data[0..i).
template <class T, class Op>
std::vector<T> parallel_exclusive_scan(rt::Machine& m, std::vector<T> data,
                                       T identity, Op op) {
  parallel_inclusive_scan(m, data, op);
  std::vector<T> out(data.size());
  if (out.empty()) return out;
  out[0] = identity;
  for (std::size_t i = 1; i < data.size(); ++i) out[i] = data[i - 1];
  return out;
}

}  // namespace motif
