// The paper's case study end-to-end: multiple sequence alignment of a
// synthetic RNA family by guide-tree reduction (Section 3).
//
//   1. Generate a Yule phylogeny and evolve a root sequence down it.
//   2. Rebuild a guide tree with UPGMA over k-mer distances (as real
//      progressive aligners do), and also keep the true tree.
//   3. Reduce the guide tree with the align-node operator under both
//      tree-reduction motifs; report alignment quality and the peak
//      memory difference that motivates Tree-Reduce-2 (Section 3.5).
//
// Build & run:   ./build/examples/msa_pipeline [taxa] [root_length]
#include <cstdio>
#include <cstdlib>

#include "align/align.hpp"
#include "runtime/metrics.hpp"

namespace al = motif::align;
namespace rt = motif::rt;

int main(int argc, char** argv) {
  const std::size_t taxa = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 24;
  const std::size_t len = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;

  auto fam = al::synthetic_family(taxa, len, /*seed=*/2026);
  std::printf("family: %zu RNA sequences, root length %zu\n",
              fam.sequences.size(), len);

  rt::Machine machine({.nodes = 8, .workers = 2});

  // True-tree pipeline under both motifs, watching peak live bytes.
  rt::live_bytes().reset();
  auto tr1 = al::progressive_msa(machine, fam.sequences, fam.guide,
                                 al::MsaSchedule::TreeReduce1);
  const auto peak1 = rt::live_bytes().peak();

  rt::live_bytes().reset();
  auto tr2 = al::progressive_msa(machine, fam.sequences, fam.guide,
                                 al::MsaSchedule::TreeReduce2);
  const auto peak2 = rt::live_bytes().peak();

  std::printf("Tree-Reduce-1: columns=%zu sp-score=%.1f peak=%lld bytes\n",
              tr1.profile.length(), tr1.sum_of_pairs_score,
              static_cast<long long>(peak1));
  std::printf("Tree-Reduce-2: columns=%zu sp-score=%.1f peak=%lld bytes\n",
              tr2.profile.length(), tr2.sum_of_pairs_score,
              static_cast<long long>(peak2));

  // Realistic pipeline: guide tree recovered from the data itself.
  auto rebuilt = al::progressive_msa_auto(machine, fam.sequences);
  std::printf("UPGMA guide : columns=%zu sp-score=%.1f\n",
              rebuilt.profile.length(), rebuilt.sum_of_pairs_score);
  std::printf("consensus   : %.60s%s\n", rebuilt.profile.consensus().c_str(),
              rebuilt.profile.length() > 60 ? "..." : "");
  std::printf("mean column entropy: %.3f bits\n",
              rebuilt.profile.mean_entropy());
  return 0;
}
