# Empty compiler generated dependencies file for bench_motif_suite.
# This may be replaced when dependencies are built.
