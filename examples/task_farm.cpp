// The scheduler motif end to end (paper Section 2.2 / reference [6]): a
// task farm in the high-level language. The user writes ordinary code
// with @task pragmas; the Sched transformation + manager/worker library
// + Server motif turn it into a running parallel program; prime-counting
// tasks are dealt to idle workers.
//
// Build & run:   ./build/examples/task_farm [ranges]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "interp/interp.hpp"
#include "transform/motif.hpp"
#include "transform/sched.hpp"
#include "transform/server.hpp"

namespace tf = motif::transform;
namespace in = motif::interp;
using motif::term::ProcKey;
using motif::term::Program;

int main(int argc, char** argv) {
  const int ranges = argc > 1 ? std::atoi(argv[1]) : 12;

  // Count primes in [Lo, Lo+99] per task; sum the per-range counts.
  const char* kApp = R"(
    main(N, Counts) :- spawn_ranges(N, Counts), watch(Counts).
    spawn_ranges(0, Cs) :- Cs := [].
    spawn_ranges(N, Cs) :- N > 0 |
        Cs := [C|Cs1],
        Lo is N * 100,
        count_primes(Lo, C)@task,
        N1 is N - 1,
        spawn_ranges(N1, Cs1).

    count_primes(Lo, C) :- Hi is Lo + 99, count_loop(Lo, Hi, 0, C).
    count_loop(K, Hi, Acc, C) :- K > Hi | C := Acc.
    count_loop(K, Hi, Acc, C) :- K =< Hi |
        is_prime(K, P),
        bump(P, Acc, Acc1),
        K1 is K + 1,
        count_loop(K1, Hi, Acc1, C).

    bump(yes, Acc, Acc1) :- Acc1 is Acc + 1.
    bump(no, Acc, Acc1) :- Acc1 := Acc.

    is_prime(K, P) :- K < 2 | P := no.
    is_prime(2, P) :- P := yes.
    is_prime(K, P) :- K > 2 | trial(K, 2, P).
    trial(K, D, P) :- D * D > K | P := yes.
    trial(K, D, P) :- D * D =< K, K mod D =:= 0 | P := no.
    trial(K, D, P) :- D * D =< K, K mod D =\= 0 |
        D1 is D + 1, trial(K, D1, P).

    watch([]) :- halt.
    watch([C|Cs]) :- data(C) | watch(Cs).
  )";

  Program full = tf::compose(tf::server_motif(),
                             tf::sched_motif({ProcKey{"main", 2}}))
                     .apply(Program::parse(kApp));

  in::InterpOptions opts;
  opts.nodes = 5;  // manager + 4 workers
  opts.workers = 2;
  in::Interp interp(full, opts);
  auto [goal, stats] = interp.run_query(
      "create(5, task(main(" + std::to_string(ranges) + ", Counts)))");

  auto counts = goal.arg(1).arg(0).arg(1).proper_list();
  if (!counts) {
    std::puts("scheduler did not complete");
    return 1;
  }
  long total = 0;
  std::printf("primes per 100-range (high to low): ");
  for (const auto& c : *counts) {
    std::printf("%lld ", static_cast<long long>(c.int_value()));
    total += c.int_value();
  }
  std::printf("\ntotal primes in [100, %d00): %ld\n", ranges + 1, total);
  std::printf("reductions=%llu  remote msgs=%llu\n",
              static_cast<unsigned long long>(stats.reductions),
              static_cast<unsigned long long>(stats.load.remote_msgs));
  // Worker utilisation.
  for (motif::rt::NodeId n = 1; n < 5; ++n) {
    std::printf("worker %u handled %llu machine tasks\n", n + 1,
                static_cast<unsigned long long>(
                    interp.machine().counters(n).tasks.load()));
  }
  return stats.deadlocked() ? 1 : 0;
}
