#include "motifs/scan.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace m = motif;
namespace rt = motif::rt;

TEST(Scan, InclusiveSmall) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  std::vector<long> v{1, 2, 3, 4, 5};
  m::parallel_inclusive_scan(mach, v, [](long a, long b) { return a + b; });
  EXPECT_EQ(v, (std::vector<long>{1, 3, 6, 10, 15}));
}

TEST(Scan, EmptyAndSingleton) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  std::vector<long> e;
  m::parallel_inclusive_scan(mach, e, [](long a, long b) { return a + b; });
  EXPECT_TRUE(e.empty());
  std::vector<long> s{7};
  m::parallel_inclusive_scan(mach, s, [](long a, long b) { return a + b; });
  EXPECT_EQ(s, (std::vector<long>{7}));
}

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, MatchesStdPartialSum) {
  rt::Rng rng(GetParam());
  std::vector<long> v(GetParam());
  for (auto& x : v) x = static_cast<long>(rng.below(1000));
  std::vector<long> expect(v.size());
  std::partial_sum(v.begin(), v.end(), expect.begin());
  rt::Machine mach({.nodes = 8, .workers = 2});
  m::parallel_inclusive_scan(mach, v, [](long a, long b) { return a + b; });
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(2, 3, 7, 8, 9, 100, 1000, 65536));

TEST(Scan, MaxScan) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  std::vector<int> v{3, 1, 4, 1, 5, 9, 2, 6};
  m::parallel_inclusive_scan(mach, v,
                             [](int a, int b) { return std::max(a, b); });
  EXPECT_EQ(v, (std::vector<int>{3, 3, 4, 4, 5, 9, 9, 9}));
}

TEST(Scan, ExclusiveWithIdentity) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto out = m::parallel_exclusive_scan<long>(
      mach, {1, 2, 3, 4}, 0, [](long a, long b) { return a + b; });
  EXPECT_EQ(out, (std::vector<long>{0, 1, 3, 6}));
}

TEST(Scan, FewerElementsThanNodes) {
  rt::Machine mach({.nodes = 16, .workers = 2});
  std::vector<long> v{5, 6, 7};
  m::parallel_inclusive_scan(mach, v, [](long a, long b) { return a + b; });
  EXPECT_EQ(v, (std::vector<long>{5, 11, 18}));
}
