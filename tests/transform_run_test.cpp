// End-to-end: the composed motifs produce programs that EXECUTE on the
// interpreter — the final stage of Figure 5/6 "is a program that can be
// executed on a parallel computer."
#include <gtest/gtest.h>

#include <functional>

#include "interp/interp.hpp"
#include "lint_helpers.hpp"
#include "term/parser.hpp"
#include "transform/motif.hpp"
#include "transform/rand.hpp"
#include "transform/server.hpp"
#include "transform/tree.hpp"

namespace tf = motif::transform;
namespace in = motif::interp;
namespace t = motif::term;
using in::Interp;
using in::InterpOptions;
using t::Program;

namespace {

const char* kUserEval = R"(
  eval('+',L,R,Value) :- Value is L + R.
  eval('*',L,R,Value) :- Value is L * R.
)";

InterpOptions nodes(std::uint32_t n) {
  InterpOptions o;
  o.nodes = n;
  o.workers = 2;
  return o;
}

std::string paper_tree() {
  // (3*2) * (3+1) = 24, the paper's example value.
  return "tree('*',tree('*',leaf(3),leaf(2)),tree('+',leaf(3),leaf(1)))";
}

std::string sum_tree(int n) {
  // Balanced sum tree with n leaves of 1 (value n).
  std::function<std::string(int)> build = [&](int k) -> std::string {
    if (k == 1) return "leaf(1)";
    return "tree('+'," + build(k / 2) + "," + build(k - k / 2) + ")";
  };
  return build(n);
}

}  // namespace

TEST(TreeReduce1Run, PaperTreeWithoutTermination) {
  // Initial message reduce(T,V): the paper's base Random motif provides
  // no termination detection — the result is produced and the servers
  // remain waiting for messages.
  Program p = tf::compose_all({tf::server_motif(), tf::rand_motif(),
                               tf::tree1_motif()})
                  .apply(Program::parse(kUserEval));
  EXPECT_TRUE(WellModed(p));
  Interp i(p, nodes(2));
  auto [goal, r] =
      i.run_query("create(2, reduce(" + paper_tree() + ",Value))");
  EXPECT_EQ(goal.arg(1).arg(1).int_value(), 24);
  // The two servers are still suspended on their input streams.
  EXPECT_EQ(r.still_suspended, 2u);
}

TEST(TreeReduce1Run, PaperTreeWithTerminatingDriver) {
  Program p = tf::tree_reduce1_motif().apply(Program::parse(kUserEval));
  EXPECT_TRUE(WellModed(p));
  Interp i(p, nodes(2));
  auto [goal, r] = i.run_query("create(2, run(" + paper_tree() + ",Value))");
  EXPECT_EQ(goal.arg(1).arg(1).int_value(), 24);
  EXPECT_FALSE(r.deadlocked())
      << (r.stuck_goals.empty() ? "-" : r.stuck_goals[0]);
}

TEST(TreeReduce1Run, LargeTreeManyServers) {
  Program p = tf::tree_reduce1_motif().apply(Program::parse(kUserEval));
  Interp i(p, nodes(8));
  auto [goal, r] =
      i.run_query("create(8, run(" + sum_tree(128) + ",Value))");
  EXPECT_EQ(goal.arg(1).arg(1).int_value(), 128);
  EXPECT_FALSE(r.deadlocked());
  // Random mapping actually ships subtrees to other servers.
  EXPECT_GT(r.load.remote_msgs, 0u);
}

TEST(TreeReduce2Run, PaperTree) {
  Program p = tf::tree_reduce2_full_motif().apply(Program::parse(kUserEval));
  EXPECT_TRUE(WellModed(p));
  Interp i(p, nodes(4));
  auto [goal, r] =
      i.run_query("create(4, start(" + paper_tree() + ",Value))");
  EXPECT_EQ(goal.arg(1).arg(1).int_value(), 24)
      << (r.stuck_goals.empty() ? "-" : r.stuck_goals[0]);
  EXPECT_FALSE(r.deadlocked());
}

TEST(TreeReduce2Run, SingleLeafTree) {
  Program p = tf::tree_reduce2_full_motif().apply(Program::parse(kUserEval));
  Interp i(p, nodes(2));
  auto [goal, r] = i.run_query("create(2, start(leaf(7),Value))");
  EXPECT_EQ(goal.arg(1).arg(1).int_value(), 7);
  EXPECT_FALSE(r.deadlocked());
}

TEST(TreeReduce2Run, LargerTreesAcrossSizes) {
  Program p = tf::tree_reduce2_full_motif().apply(Program::parse(kUserEval));
  for (int leaves : {2, 3, 8, 33, 64}) {
    Interp i(p, nodes(4));
    auto [goal, r] =
        i.run_query("create(4, start(" + sum_tree(leaves) + ",Value))");
    EXPECT_EQ(goal.arg(1).arg(1).int_value(), leaves) << leaves;
    EXPECT_FALSE(r.deadlocked()) << leaves;
  }
}

TEST(TreeReduce2Run, DeterministicForSeed) {
  Program p = tf::tree_reduce2_full_motif().apply(Program::parse(kUserEval));
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    InterpOptions o = nodes(4);
    o.seed = seed;
    Interp i(p, o);
    auto [goal, r] =
        i.run_query("create(4, start(" + sum_tree(16) + ",Value))");
    EXPECT_EQ(goal.arg(1).arg(1).int_value(), 16) << seed;
  }
}

TEST(TreeReduce2Run, BothMotifsSameInterfaceSameResult) {
  // Section 3.6: "These provide the same interface to the user ...
  // However, the two motifs implement different parallel algorithms."
  Program p1 = tf::tree_reduce1_motif().apply(Program::parse(kUserEval));
  Program p2 = tf::tree_reduce2_full_motif().apply(Program::parse(kUserEval));
  Interp i1(p1, nodes(4));
  Interp i2(p2, nodes(4));
  auto r1 = i1.run_query("create(4, run(" + sum_tree(32) + ",V))");
  auto r2 = i2.run_query("create(4, start(" + sum_tree(32) + ",V))");
  EXPECT_EQ(r1.first.arg(1).arg(1).int_value(),
            r2.first.arg(1).arg(1).int_value());
}

TEST(TreeReduce1BothRun, ModifiedMotifSameInterfaceMoreShipping) {
  // Reuse through modification (Section 1): the Tree1Both variant ships
  // BOTH subtrees; same user program, same entry, same answer — but more
  // remote messages than the original.
  Program user = Program::parse(kUserEval);
  Program orig = tf::tree_reduce1_motif().apply(user);
  Program both = tf::tree_reduce1_both_motif().apply(user);
  EXPECT_TRUE(WellModed(orig));
  EXPECT_TRUE(WellModed(both));

  Interp i1(orig, nodes(4));
  auto [g1, r1] = i1.run_query("create(4, run(" + sum_tree(64) + ",V))");
  Interp i2(both, nodes(4));
  auto [g2, r2] = i2.run_query("create(4, run(" + sum_tree(64) + ",V))");

  EXPECT_EQ(g1.arg(1).arg(1).int_value(), 64);
  EXPECT_EQ(g2.arg(1).arg(1).int_value(), 64);
  EXPECT_FALSE(r1.deadlocked());
  EXPECT_FALSE(r2.deadlocked());
  // Both-shipping posts roughly twice the reduce messages.
  EXPECT_GT(r2.load.remote_msgs, r1.load.remote_msgs);
}

TEST(ServerMotifRun, EchoServerApplication) {
  // A direct Server-motif client (no Rand): a ping application that
  // passes a token around the ring of servers and then halts.
  const char* kApp = R"(
    server([token(0,Done)|_]) :- Done := done, halt.
    server([token(K,Done)|In]) :- K > 0 |
        nodes(N), pick_next(K, N, Next),
        K1 is K - 1,
        send(Next, token(K1,Done)),
        server(In).
    server([halt|_]).
    pick_next(K, N, Next) :- Next is (K mod N) + 1.
  )";
  Program p = tf::server_motif().apply(Program::parse(kApp));
  EXPECT_TRUE(WellModed(p));
  Interp i(p, nodes(3));
  auto [goal, r] = i.run_query("create(3, token(10,Done))");
  EXPECT_EQ(goal.arg(1).arg(1).functor(), "done");
  EXPECT_FALSE(r.deadlocked());
  EXPECT_GE(r.load.remote_msgs, 5u);
}

TEST(ServerMotifRun, NodesReportsServerCount) {
  const char* kApp = R"(
    server([count(C)|_]) :- nodes(C), halt.
    server([halt|_]).
  )";
  Program p = tf::server_motif().apply(Program::parse(kApp));
  EXPECT_TRUE(WellModed(p));
  Interp i(p, nodes(5));
  auto [goal, r] = i.run_query("create(5, count(C))");
  EXPECT_EQ(goal.arg(1).arg(0).int_value(), 5);
  EXPECT_FALSE(r.deadlocked());
}
