file(REMOVE_RECURSE
  "CMakeFiles/align_nw_test.dir/align_nw_test.cpp.o"
  "CMakeFiles/align_nw_test.dir/align_nw_test.cpp.o.d"
  "align_nw_test"
  "align_nw_test.pdb"
  "align_nw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_nw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
