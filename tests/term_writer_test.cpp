#include "term/writer.hpp"

#include <gtest/gtest.h>

#include "term/parser.hpp"
#include "term/program.hpp"
#include "term/subst.hpp"

namespace t = motif::term;
using t::format_clause;
using t::format_term;
using t::parse_clauses;
using t::parse_term;
using t::Term;

TEST(Writer, InfixOperators) {
  EXPECT_EQ(format_term(parse_term("X := Y + 1")), "X := Y + 1");
  EXPECT_EQ(format_term(parse_term("N > 0")), "N > 0");
  EXPECT_EQ(format_term(parse_term("N1 is N - 1")), "N1 is N - 1");
}

TEST(Writer, PrecedenceParenthesization) {
  EXPECT_EQ(format_term(parse_term("(1 + 2) * 3")), "(1 + 2) * 3");
  EXPECT_EQ(format_term(parse_term("1 + 2 * 3")), "1 + 2 * 3");
  EXPECT_EQ(format_term(parse_term("1 - (2 - 3)")), "1 - (2 - 3)");
  EXPECT_EQ(format_term(parse_term("1 - 2 - 3")), "1 - 2 - 3");
}

TEST(Writer, PlacementTight) {
  EXPECT_EQ(format_term(parse_term("reduce(R,RV)@random")),
            "reduce(R,RV)@random");
  EXPECT_EQ(format_term(parse_term("server_init(N,I,O)@J")),
            "server_init(N,I,O)@J");
}

TEST(Writer, ListsTuplesStrings) {
  EXPECT_EQ(format_term(parse_term("[1,2|T]")), "[1,2|T]");
  EXPECT_EQ(format_term(parse_term("{a,B}")), "{a,B}");
  EXPECT_EQ(format_term(parse_term("\"hi\"")), "\"hi\"");
}

TEST(Writer, ClauseForms) {
  auto cs = parse_clauses("p(1).");
  EXPECT_EQ(format_clause(cs[0]), "p(1).");
  cs = parse_clauses("p(X) :- q(X), r(X).");
  EXPECT_EQ(format_clause(cs[0]), "p(X) :- q(X), r(X).");
  cs = parse_clauses("p(X) :- X > 0 | q(X).");
  EXPECT_EQ(format_clause(cs[0]), "p(X) :- X > 0 | q(X).");
}

// The round-trip property: parse(format(C)) is alpha-equivalent to C.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ParseFormatParse) {
  auto cs1 = parse_clauses(GetParam());
  std::string rendered = t::format_clauses(cs1);
  auto cs2 = parse_clauses(rendered);
  ASSERT_EQ(cs1.size(), cs2.size()) << rendered;
  for (std::size_t i = 0; i < cs1.size(); ++i) {
    EXPECT_TRUE(t::alpha_equal_clause(cs1[i], cs2[i]))
        << "clause " << i << " in:\n" << rendered;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperPrograms, RoundTrip,
    ::testing::Values(
        // Figure 1
        "go(N) :- producer(N,Xs,sync), consumer(Xs).\n"
        "producer(N,Xs,_) :- N > 0 | Xs := [X|Xs1], N1 is N - 1, "
        "producer(N1,Xs1,X).\n"
        "producer(0,Xs,_) :- Xs := [].\n"
        "consumer([X|Xs]) :- X := sync, consumer(Xs).\n"
        "consumer([]).",
        // Section 3.1 abstract tree reduction
        "reduce(tree(V,L,R),Value) :- reduce(R,RV)@random, reduce(L,LV), "
        "eval(V,LV,RV,Value).\n"
        "reduce(leaf(L),Value) :- Value := L.",
        // eval rules (Figure 2 part A)
        "eval('+',L,R,Value) :- Value is L + R.\n"
        "eval('*',L,R,Value) :- Value is L * R.",
        // Server-transformed reduce (Figure 5 bottom)
        "reduce(tree(V,L,R),Value,DT) :- length(DT,N), rand_num(N,O), "
        "distribute(O,reduce(R,RV),DT), reduce(L,LV,DT), "
        "eval(V,LV,RV,Value).\n"
        "reduce(leaf(L),Value,_) :- Value := L.",
        // server rules
        "server([reduce(T,V)|In],DT) :- reduce(T,V,DT), server(In,DT).\n"
        "server([halt|_],_).",
        // assorted shapes
        "p([]).\n"
        "p([{K,V}|Rest]) :- q(K), r(V), p(Rest).",
        "f(X) :- X > 1, X < 10 | g(X).",
        "m(A,B) :- A =< B | mn(A,B).\n"
        "m(A,B) :- A > B | mn(B,A).",
        "w(S) :- t(\"text\", 3.5, S).",
        "deep(X) :- a(b(c(d([1,[2,[3|T]]],{X,-4})))).") );

TEST(Writer, DefinitionsSeparatedByBlankLine) {
  auto cs = parse_clauses("p(1). p(2). q(3).");
  std::string s = t::format_clauses(cs);
  EXPECT_NE(s.find("p(2).\n\nq(3)."), std::string::npos);
}
