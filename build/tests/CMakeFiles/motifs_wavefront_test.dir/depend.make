# Empty dependencies file for motifs_wavefront_test.
# This may be replaced when dependencies are built.
