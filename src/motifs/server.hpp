// The Server motif as a native C++ skeleton (paper Section 3.2): "a fully
// connected set of named servers, each capable of initiating computations
// upon receipt of messages from other servers. These computations can in
// turn generate further messages."
//
// Each server is one virtual node of the Machine; a message is a task
// posted to that node (the node queue is the merged input stream), so
// per-server message handling is sequential, exactly like the Strand
// server process. The user supplies a handler invoked per message with a
// Context offering send / nodes / halt — the same operations the Server
// transformation rewrites.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "runtime/fault.hpp"
#include "runtime/machine.hpp"

namespace motif {

template <class Msg>
class ServerNetwork {
 private:
  struct State;

 public:
  class Context;
  /// Handler runs on the destination server's node, one message at a time.
  using Handler = std::function<void(Context&, Msg)>;

  /// Servers are numbered 1..n (the paper's convention); they occupy
  /// machine nodes 0..n-1. Requires n <= m.node_count().
  ServerNetwork(rt::Machine& m, std::uint32_t n, Handler handler)
      : state_(std::make_shared<State>(m, n, std::move(handler))) {
    if (n == 0 || n > m.node_count()) {
      throw std::invalid_argument("server count outside 1..nodes");
    }
  }

  class Context {
   public:
    /// Sends a message to server `to` (1-based). Messages to self are
    /// legal and stay local.
    void send(std::uint32_t to, Msg msg) { state_->send(to, std::move(msg)); }
    /// The number of servers in operation (the nodes/1 primitive).
    std::uint32_t nodes() const { return state_->count; }
    /// This server's own number, 1-based.
    std::uint32_t self() const { return rt::Machine::current_node() + 1; }
    /// Requests that every server stop: pending messages are drained but
    /// no longer handled (the halt primitive).
    void halt() { state_->halted.store(true, std::memory_order_release); }
    /// Deterministic per-server random stream.
    rt::Rng& rng() { return state_->m.rng(rt::Machine::current_node()); }

   private:
    friend class ServerNetwork;
    friend struct ServerNetwork::State;
    explicit Context(std::shared_ptr<State> s) : state_(std::move(s)) {}
    std::shared_ptr<State> state_;
  };

  /// Delivers the initial message (the Msg argument of create(N,Msg)).
  void start(std::uint32_t to, Msg initial) {
    state_->send(to, std::move(initial));
  }

  /// Blocks until every delivered message has been handled (or dropped
  /// after halt). Returns true if the network halted explicitly.
  bool wait() {
    state_->m.wait_idle();
    return state_->halted.load(std::memory_order_acquire);
  }

  /// Deadline-bounded wait: returns the machine's classified RunOutcome
  /// instead of hanging on a crashed server (see runtime/fault.hpp).
  rt::RunOutcome wait_for(std::chrono::nanoseconds deadline) {
    return state_->m.wait_idle_for(deadline);
  }

  /// Opt-in crash recovery: from now on every send is journalled and
  /// checked off when its handler runs. Requires Msg to be copyable.
  /// Call before start().
  void enable_journal() {
    state_->journal.store(true, std::memory_order_release);
  }

  /// Revives crashed servers and re-delivers every journalled message
  /// whose handler never ran — the mailbox a dead node discarded, or a
  /// fault-dropped post. Call while the machine is quiescent (after
  /// wait()/wait_for()); returns the number of messages replayed. A
  /// message may be handled more than once only if the fault plan
  /// duplicates it — replay itself re-sends each lost message once.
  std::size_t recover_lost() {
    for (rt::NodeId n : state_->m.lost_nodes()) state_->m.revive(n);
    return state_->replay_undelivered();
  }

  std::uint64_t messages_handled() const {
    return state_->handled.load(std::memory_order_relaxed);
  }

 private:
  struct State : std::enable_shared_from_this<State> {
    rt::Machine& m;
    std::uint32_t count;
    Handler handler;
    std::atomic<bool> halted{false};
    std::atomic<std::uint64_t> handled{0};

    /// Journal of sends (enable_journal): an entry is checked off when
    /// its handler starts, so whatever is left unchecked at quiescence is
    /// exactly the undelivered mail recover_lost() replays.
    struct JournalEntry {
      std::uint32_t to;
      Msg msg;
      bool done = false;
    };
    std::atomic<bool> journal{false};
    std::mutex journal_m;
    std::deque<JournalEntry> entries;

    State(rt::Machine& mm, std::uint32_t n, Handler h)
        : m(mm), count(n), handler(std::move(h)) {}

    void send(std::uint32_t to, Msg msg) {
      if (to < 1 || to > count) {
        throw std::out_of_range("server id outside 1..nodes");
      }
      std::int64_t idx = -1;
      if (journal.load(std::memory_order_acquire)) {
        std::lock_guard lock(journal_m);
        idx = static_cast<std::int64_t>(entries.size());
        entries.push_back(JournalEntry{to, msg, false});
      }
      deliver(to, std::move(msg), idx);
    }

    void deliver(std::uint32_t to, Msg msg, std::int64_t idx) {
      auto self = this->shared_from_this();
      m.post(static_cast<rt::NodeId>(to - 1),
             [self, msg = std::move(msg), idx]() mutable {
               if (self->halted.load(std::memory_order_acquire)) return;
               if (idx >= 0) {
                 std::lock_guard lock(self->journal_m);
                 self->entries[static_cast<std::size_t>(idx)].done = true;
               }
               self->handled.fetch_add(1, std::memory_order_relaxed);
               TRACE_SPAN("server.handle");
               Context ctx(self);
               self->handler(ctx, std::move(msg));
             });
    }

    std::size_t replay_undelivered() {
      struct Redo {
        std::uint32_t to;
        Msg msg;
        std::int64_t idx;
      };
      std::vector<Redo> redo;
      {
        std::lock_guard lock(journal_m);
        for (std::size_t i = 0; i < entries.size(); ++i) {
          if (!entries[i].done) {
            redo.push_back(Redo{entries[i].to, entries[i].msg,
                                static_cast<std::int64_t>(i)});
          }
        }
      }
      for (auto& r : redo) deliver(r.to, std::move(r.msg), r.idx);
      return redo.size();
    }
  };

  std::shared_ptr<State> state_;
};

}  // namespace motif
