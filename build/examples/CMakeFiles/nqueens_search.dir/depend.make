# Empty dependencies file for nqueens_search.
# This may be replaced when dependencies are built.
