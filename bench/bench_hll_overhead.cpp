// Experiment E5 (DESIGN.md §4): the multilingual-approach claim — "it is
// rare that significant time is spent executing its [motif coordination]
// routines" when the computationally intensive components are low-level
// (Section 2.1).
//
// Workload: reduce a fixed balanced tree where every leaf performs `grain`
// units of low-level work (a hash-spin builtin / C++ loop). Coordination
// paths compared at identical total leaf work:
//   * native  — C++ Tree-Reduce-1 over the Machine
//   * interp  — the SAME algorithm written in the high-level language and
//               run by the concurrent-logic interpreter (reduce/eval with
//               @random, executing work(grain) at the leaves)
// Reported: wall time and the interp/native ratio as grain grows.
//
// Expected shape: at tiny grain the high-level coordination dominates
// (large ratio); as grain grows the ratio falls toward 1 — the paper's
// justification for implementing motifs in a high-level language.
//
// This bench doubles as the tracer's zero-overhead check: built with
// -DMOTIF_TRACING=OFF its native path contains no tracer hooks at all
// (compare BM_NativeTreeReduce against a MOTIF_TRACING=ON build with
// tracing inactive — the JSONL lines carry the numbers).
#include <benchmark/benchmark.h>

#include <functional>
#include <string>

#include "bench_report.hpp"
#include "interp/interp.hpp"
#include "motifs/tree.hpp"
#include "motifs/tree_reduce.hpp"

namespace m = motif;
namespace rt = motif::rt;
namespace in = motif::interp;

namespace {

constexpr std::size_t kLeaves = 128;

std::uint64_t spin(std::uint64_t units) {
  volatile std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t i = 0; i < units; ++i) {
    h = (h ^ i) * 0x100000001b3ull;
  }
  return h;
}

void BM_NativeTreeReduce(benchmark::State& state) {
  const auto grain = static_cast<std::uint64_t>(state.range(0));
  auto tree = m::balanced_tree<long, char>(
      kLeaves, [](std::size_t) { return 1L; }, '+');
  for (auto _ : state) {
    rt::Machine mach({.nodes = 4, .workers = 2, .seed = 1});
    auto eval = [grain](const char&, const long& a, const long& b) {
      spin(grain);
      return a + b;
    };
    long v = m::tree_reduce1<long, char>(mach, tree, eval);
    benchmark::DoNotOptimize(v);
    if (v != static_cast<long>(kLeaves)) state.SkipWithError("bad sum");
  }
  state.counters["grain"] = static_cast<double>(grain);
  state.counters["tracing_compiled"] =
      rt::Machine::trace_compiled ? 1.0 : 0.0;
  motif::bench::report_case(state, "bench_hll_overhead", "native");
}

std::string interp_tree(std::size_t leaves) {
  std::function<std::string(std::size_t)> build =
      [&](std::size_t n) -> std::string {
    if (n == 1) return "leaf(1)";
    return "tree('+'," + build(n / 2) + "," + build(n - n / 2) + ")";
  };
  return build(leaves);
}

void BM_InterpTreeReduce(benchmark::State& state) {
  const auto grain = static_cast<std::uint64_t>(state.range(0));
  // The high-level program: eval spins via the work/1 builtin (the
  // low-level component), coordination is pure Strand-style code.
  const std::string src =
      "eval('+',L,R,Value) :- work(" + std::to_string(grain) +
      "), Value is L + R.\n"
      "reduce(tree(V,L,R),Value) :- reduce(R,RV)@random, reduce(L,LV), "
      "eval(V,LV,RV,Value).\n"
      "reduce(leaf(L),Value) :- work(" + std::to_string(grain) +
      "), Value := L.\n";
  const std::string goal_src = "reduce(" + interp_tree(kLeaves) + ",V)";
  auto program = motif::term::Program::parse(src);
  for (auto _ : state) {
    in::InterpOptions opts;
    opts.nodes = 4;
    opts.workers = 2;
    in::Interp interp(program, opts);
    auto [goal, r] = interp.run_query(goal_src);
    if (goal.arg(1).int_value() != static_cast<long>(kLeaves)) {
      state.SkipWithError("bad sum");
    }
    benchmark::DoNotOptimize(r.reductions);
  }
  state.counters["grain"] = static_cast<double>(grain);
  motif::bench::report_case(state, "bench_hll_overhead", "interp");
}

void args(benchmark::internal::Benchmark* b) {
  // grain = spin units per leaf/eval: ~ns each, so 1e2..1e6 spans "pure
  // coordination" to "computation dominates".
  for (long grain : {0L, 100L, 1000L, 10000L, 100000L, 1000000L}) {
    b->Args({grain});
  }
  b->Unit(benchmark::kMillisecond)->MinTime(0.02);
}

BENCHMARK(BM_NativeTreeReduce)->Apply(args);
BENCHMARK(BM_InterpTreeReduce)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
