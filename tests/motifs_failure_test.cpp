// Failure injection: user-supplied code that throws must surface as an
// exception from the motif's blocking call — never a hang, never a
// silently wrong result. (DESIGN.md: failure-injection coverage.)
#include <gtest/gtest.h>

#include <stdexcept>

#include "motifs/motifs.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

using IntTree = m::Tree<long, char>;

IntTree::Ptr small_tree() {
  return m::balanced_tree<long, char>(
      32, [](std::size_t) { return 1L; }, '+');
}

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("boom") {}
};

long throwing_eval(const char&, const long& a, const long& b) {
  if (a + b >= 8) throw Boom();
  return a + b;
}

}  // namespace

TEST(FailureInjection, TreeReduce1PropagatesEvalException) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_THROW(
      (m::tree_reduce1<long, char>(mach, small_tree(), throwing_eval)),
      Boom);
}

TEST(FailureInjection, TreeReduce2PropagatesEvalException) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_THROW(
      (m::tree_reduce2<long, char>(mach, small_tree(), throwing_eval)),
      Boom);
}

TEST(FailureInjection, StaticTreeReducePropagatesEvalException) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_THROW(
      (m::static_tree_reduce<long, char>(mach, small_tree(), throwing_eval)),
      Boom);
}

TEST(FailureInjection, MachineUsableAfterMotifFailure) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_THROW(
      (m::tree_reduce1<long, char>(mach, small_tree(), throwing_eval)),
      Boom);
  // The machine delivered the error once and keeps working.
  auto ok = [](const char&, const long& a, const long& b) { return a + b; };
  EXPECT_EQ((m::tree_reduce1<long, char>(mach, small_tree(), ok)), 32);
}

TEST(FailureInjection, SchedulerPropagatesTaskException) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  m::Scheduler s(mach);
  s.submit([] {});
  s.submit([] { throw Boom(); });
  s.submit([] {});
  EXPECT_THROW(s.run(), Boom);
}

TEST(FailureInjection, ParallelForPropagatesBodyException) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_THROW(m::parallel_for(mach, 0, 100,
                               [](std::size_t i) {
                                 if (i == 57) throw Boom();
                               }),
               Boom);
}

TEST(FailureInjection, ParallelReducePropagatesBodyException) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_THROW(m::parallel_reduce<long>(
                   mach, 0, 100, 0L,
                   [](std::size_t i) -> long {
                     if (i == 3) throw Boom();
                     return 1;
                   },
                   [](long a, long b) { return a + b; }),
               Boom);
}

TEST(FailureInjection, DivideAndConquerPropagates) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_THROW((m::divide_and_conquer<int, int>(
                   mach, 10, [](const int& n) { return n < 2; },
                   [](int n) -> int {
                     if (n == 1) throw Boom();
                     return n;
                   },
                   [](const int& n) {
                     return std::vector<int>{n - 1, n - 2};
                   },
                   [](const int&, std::vector<int> rs) {
                     return rs[0] + rs[1];
                   })),
               Boom);
}

TEST(FailureInjection, SearchPropagatesExpandException) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  EXPECT_THROW(m::count_solutions<int>(
                   mach, 0,
                   [](const int& s) -> std::vector<int> {
                     if (s == 3) throw Boom();
                     if (s >= 5) return {};
                     return {s + 1, s + 2};
                   },
                   [](const int&) { return false; }, 2),
               Boom);
}

TEST(FailureInjection, SampleSortPropagatesComparatorException) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  rt::Rng rng(1);
  std::vector<int> data(5000);
  for (auto& x : data) x = static_cast<int>(rng.below(1000));
  int countdown = 4000;
  auto bad_cmp = [&countdown](int a, int b) {
    if (--countdown == 0) throw Boom();
    return a < b;
  };
  EXPECT_THROW(m::parallel_sample_sort(mach, data, bad_cmp), Boom);
}

TEST(FailureInjection, ServerHandlerExceptionSurfacesOnWait) {
  rt::Machine mach({.nodes = 2, .workers = 2});
  m::ServerNetwork<int> net(mach, 2, [](auto&, int v) {
    if (v == 3) throw Boom();
  });
  net.start(1, 3);
  EXPECT_THROW(net.wait(), Boom);
}
