# Empty dependencies file for coverage_gaps_test.
# This may be replaced when dependencies are built.
