file(REMOVE_RECURSE
  "CMakeFiles/motif_motifs.dir/graph.cpp.o"
  "CMakeFiles/motif_motifs.dir/graph.cpp.o.d"
  "CMakeFiles/motif_motifs.dir/grid.cpp.o"
  "CMakeFiles/motif_motifs.dir/grid.cpp.o.d"
  "libmotif_motifs.a"
  "libmotif_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
