#include "interp/arith.hpp"

#include <gtest/gtest.h>

#include "term/parser.hpp"

namespace in = motif::interp;
using in::eval_arith;
using in::eval_comparison;
using in::Number;
using in::Suspended;
using in::Truth;
using motif::term::parse_term;
using motif::term::Term;

namespace {
std::int64_t as_int(const in::ArithResult& r) {
  return std::get<std::int64_t>(std::get<Number>(r));
}
double as_double(const in::ArithResult& r) {
  return std::get<double>(std::get<Number>(r));
}
bool suspended(const in::ArithResult& r) {
  return std::holds_alternative<Suspended>(r);
}
}  // namespace

TEST(Arith, Literals) {
  EXPECT_EQ(as_int(eval_arith(Term::integer(5))), 5);
  EXPECT_DOUBLE_EQ(as_double(eval_arith(Term::real(2.5))), 2.5);
}

TEST(Arith, IntegerOps) {
  EXPECT_EQ(as_int(eval_arith(parse_term("1 + 2 * 3"))), 7);
  EXPECT_EQ(as_int(eval_arith(parse_term("10 - 4"))), 6);
  EXPECT_EQ(as_int(eval_arith(parse_term("7 / 2"))), 3);
  EXPECT_EQ(as_int(eval_arith(parse_term("7 // 2"))), 3);
  EXPECT_EQ(as_int(eval_arith(parse_term("7 mod 3"))), 1);
  EXPECT_EQ(as_int(eval_arith(parse_term("-7 mod 3"))), 2);  // math mod
  EXPECT_EQ(as_int(eval_arith(parse_term("min(3,5)"))), 3);
  EXPECT_EQ(as_int(eval_arith(parse_term("max(3,5)"))), 5);
  EXPECT_EQ(as_int(eval_arith(parse_term("abs(-9)"))), 9);
}

TEST(Arith, MixedPromotesToFloat) {
  EXPECT_DOUBLE_EQ(as_double(eval_arith(parse_term("1 + 2.5"))), 3.5);
  EXPECT_DOUBLE_EQ(as_double(eval_arith(parse_term("5 / 2.0"))), 2.5);
}

TEST(Arith, Errors) {
  EXPECT_THROW(eval_arith(parse_term("1 / 0")), in::ArithError);
  EXPECT_THROW(eval_arith(parse_term("1 mod 0")), in::ArithError);
  EXPECT_THROW(eval_arith(parse_term("1 + foo")), in::ArithError);
  EXPECT_THROW(eval_arith(parse_term("1.5 mod 2")), in::ArithError);
  EXPECT_THROW(eval_arith(parse_term("[1,2]")), in::ArithError);
}

TEST(Arith, SuspendsOnUnbound) {
  Term e = parse_term("X + 1");
  auto r = eval_arith(e);
  ASSERT_TRUE(suspended(r));
  EXPECT_TRUE(std::get<Suspended>(r).var.same_node(e.arg(0)));
  e.arg(0).bind(Term::integer(4));
  EXPECT_EQ(as_int(eval_arith(e)), 5);
}

TEST(Arith, SuspendsOnLeftmostUnbound) {
  Term e = parse_term("X + Y");
  auto r = eval_arith(e);
  ASSERT_TRUE(suspended(r));
  EXPECT_TRUE(std::get<Suspended>(r).var.same_node(e.arg(0)));
}

TEST(Arith, LooksArithmetic) {
  EXPECT_TRUE(in::looks_arithmetic(parse_term("1 + 2")));
  EXPECT_TRUE(in::looks_arithmetic(parse_term("3")));
  EXPECT_TRUE(in::looks_arithmetic(parse_term("N - 1")));
  EXPECT_FALSE(in::looks_arithmetic(parse_term("X")));
  EXPECT_FALSE(in::looks_arithmetic(parse_term("[X|Xs]")));
  EXPECT_FALSE(in::looks_arithmetic(parse_term("{1,2}")));
  EXPECT_FALSE(in::looks_arithmetic(parse_term("foo(1)")));
  EXPECT_FALSE(in::looks_arithmetic(parse_term("sync")));
}

TEST(Compare, Numeric) {
  EXPECT_EQ(eval_comparison("<", Term::integer(1), Term::integer(2)).truth,
            Truth::Yes);
  EXPECT_EQ(eval_comparison(">", Term::integer(1), Term::integer(2)).truth,
            Truth::No);
  EXPECT_EQ(eval_comparison("=<", Term::integer(2), Term::integer(2)).truth,
            Truth::Yes);
  EXPECT_EQ(eval_comparison(">=", Term::integer(2), Term::integer(3)).truth,
            Truth::No);
  EXPECT_EQ(eval_comparison("=:=", Term::integer(2), Term::real(2.0)).truth,
            Truth::Yes);
}

TEST(Compare, EvaluatesExpressions) {
  EXPECT_EQ(
      eval_comparison("<", parse_term("1 + 1"), parse_term("3 * 1")).truth,
      Truth::Yes);
}

TEST(Compare, SuspendsOnUnbound) {
  Term x = Term::var("X");
  auto r = eval_comparison(">", x, Term::integer(0));
  EXPECT_EQ(r.truth, Truth::Suspend);
  EXPECT_TRUE(r.suspend_var.same_node(x));
}

TEST(Compare, StructuralEquality) {
  EXPECT_EQ(
      eval_comparison("==", parse_term("f(1,[a])"), parse_term("f(1,[a])"))
          .truth,
      Truth::Yes);
  EXPECT_EQ(
      eval_comparison("==", parse_term("f(1)"), parse_term("f(2)")).truth,
      Truth::No);
  EXPECT_EQ(
      eval_comparison("\\==", parse_term("a"), parse_term("b")).truth,
      Truth::Yes);
  // =\= is ARITHMETIC not-equal (companion of =:=).
  EXPECT_EQ(eval_comparison("=\\=", parse_term("2 + 2"),
                            parse_term("5")).truth,
            Truth::Yes);
  EXPECT_EQ(eval_comparison("=\\=", parse_term("2 + 2"),
                            parse_term("4")).truth,
            Truth::No);
  EXPECT_THROW(eval_comparison("=\\=", parse_term("a"), parse_term("b")),
               in::ArithError);
}

TEST(Compare, StructuralSuspendsOnVars) {
  Term a = parse_term("f(X)");
  auto r = eval_comparison("==", a, parse_term("f(1)"));
  EXPECT_EQ(r.truth, Truth::Suspend);
  // Same unbound var on both sides is decidable.
  Term x = Term::var("X");
  EXPECT_EQ(eval_comparison("==", x, x).truth, Truth::Yes);
}

TEST(Compare, NumbersCompareStructurallyByValueAndType) {
  EXPECT_EQ(eval_comparison("==", Term::integer(2), Term::real(2.0)).truth,
            Truth::No);
  EXPECT_EQ(eval_comparison("==", Term::integer(2), Term::integer(2)).truth,
            Truth::Yes);
}

TEST(TypeTests, Basics) {
  auto yes = [](std::optional<in::GuardResult> r) {
    return r && r->truth == Truth::Yes;
  };
  auto no = [](std::optional<in::GuardResult> r) {
    return r && r->truth == Truth::No;
  };
  EXPECT_TRUE(yes(in::eval_type_test("integer", Term::integer(1))));
  EXPECT_TRUE(no(in::eval_type_test("integer", Term::real(1.0))));
  EXPECT_TRUE(yes(in::eval_type_test("number", Term::real(1.0))));
  EXPECT_TRUE(yes(in::eval_type_test("atom", Term::atom("a"))));
  EXPECT_TRUE(yes(in::eval_type_test("list", parse_term("[1]"))));
  EXPECT_TRUE(yes(in::eval_type_test("list", parse_term("[]"))));
  EXPECT_TRUE(no(in::eval_type_test("list", parse_term("{1}"))));
  EXPECT_TRUE(yes(in::eval_type_test("tuple", parse_term("{1,2}"))));
  EXPECT_TRUE(yes(in::eval_type_test("string", Term::str("s"))));
  EXPECT_TRUE(yes(in::eval_type_test("compound", parse_term("f(1)"))));
  EXPECT_FALSE(in::eval_type_test("no_such_test", Term::integer(1)));
}

TEST(TypeTests, SuspendOnVar) {
  Term x = Term::var("X");
  auto r = in::eval_type_test("integer", x);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->truth, Truth::Suspend);
  auto d = in::eval_type_test("data", x);
  EXPECT_EQ(d->truth, Truth::Suspend);
  x.bind(Term::atom("now"));
  EXPECT_EQ(in::eval_type_test("data", x)->truth, Truth::Yes);
}
