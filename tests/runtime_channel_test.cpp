#include "runtime/channel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace rt = motif::rt;

TEST(Channel, PushPopFifo) {
  rt::Channel<int> ch;
  ch.push(1);
  ch.push(2);
  ch.push(3);
  EXPECT_EQ(ch.pop().value(), 1);
  EXPECT_EQ(ch.pop().value(), 2);
  EXPECT_EQ(ch.pop().value(), 3);
}

TEST(Channel, TryPopEmpty) {
  rt::Channel<int> ch;
  EXPECT_FALSE(ch.try_pop().has_value());
}

TEST(Channel, CloseDrainsThenEnds) {
  rt::Channel<int> ch;
  ch.push(7);
  ch.close();
  EXPECT_FALSE(ch.push(8));
  EXPECT_EQ(ch.pop().value(), 7);
  EXPECT_FALSE(ch.pop().has_value());
  EXPECT_FALSE(ch.pop().has_value());  // stays ended
}

TEST(Channel, CloseIsIdempotent) {
  rt::Channel<int> ch;
  ch.close();
  ch.close();
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, BoundedTryPushFull) {
  rt::Channel<int> ch(2);
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_FALSE(ch.try_push(3));
  ch.pop();
  EXPECT_TRUE(ch.try_push(3));
}

TEST(Channel, BoundedPushBlocksUntilSpace) {
  rt::Channel<int> ch(1);
  ch.push(1);
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    ch.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(ch.pop().value(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(ch.pop().value(), 2);
}

TEST(Channel, PopBlocksUntilPush) {
  rt::Channel<int> ch;
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.push(99);
  });
  EXPECT_EQ(ch.pop().value(), 99);
  t.join();
}

TEST(Channel, CloseWakesBlockedPoppers) {
  rt::Channel<int> ch;
  std::atomic<int> ended{0};
  std::vector<std::thread> ts;
  for (int i = 0; i < 4; ++i) {
    ts.emplace_back([&] {
      if (!ch.pop().has_value()) ended.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  for (auto& t : ts) t.join();
  EXPECT_EQ(ended.load(), 4);
}

TEST(Channel, CloseWakesBlockedPushers) {
  rt::Channel<int> ch(1);
  ch.push(1);
  std::atomic<int> failed{0};
  std::thread t([&] {
    if (!ch.push(2)) failed.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  t.join();
  EXPECT_EQ(failed.load(), 1);
}

TEST(Channel, MpmcAllItemsDeliveredOnce) {
  constexpr int kProducers = 4, kConsumers = 4, kEach = 5000;
  rt::Channel<int> ch(64);
  std::vector<std::thread> ps, cs;
  std::mutex got_m;
  std::multiset<int> got;
  for (int c = 0; c < kConsumers; ++c) {
    cs.emplace_back([&] {
      while (auto v = ch.pop()) {
        std::lock_guard l(got_m);
        got.insert(*v);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    ps.emplace_back([&, p] {
      for (int i = 0; i < kEach; ++i) ch.push(p * kEach + i);
    });
  }
  for (auto& t : ps) t.join();
  ch.close();
  for (auto& t : cs) t.join();
  ASSERT_EQ(got.size(), size_t(kProducers * kEach));
  std::set<int> uniq(got.begin(), got.end());
  EXPECT_EQ(uniq.size(), got.size());
}
