#include "transform/terminate.hpp"

#include <set>

#include "transform/rand.hpp"
#include "transform/server.hpp"
#include "transform/tree.hpp"

namespace motif::transform {

using term::Clause;
using term::GoalView;
using term::ProcKey;
using term::Program;
using term::Term;

namespace {

bool is_assign(const Term& g) {
  return g.is_compound() && g.arity() == 2 &&
         (g.functor() == ":=" || g.functor() == "=");
}

bool is_arith_assign(const Term& g) {
  return g.is_compound() && g.arity() == 2 && g.functor() == "is";
}

Term with_circuit(const Term& call, const Term& l, const Term& r) {
  std::vector<Term> args;
  if (call.is_compound()) args = call.args();
  args.push_back(l);
  args.push_back(r);
  return Term::compound(call.functor(), std::move(args));
}

}  // namespace

term::Program terminate_library() {
  // The circuit carries the `closed` token left to right: a segment
  // forwards the token (R := L) only when it has completed (and, for the
  // wrapped assignments, only when the assigned value exists). When the
  // token reaches the entry wrapper's R, everything has terminated.
  static const char* kSrc = R"(
    tw_assign(X, E, L, R) :- X := E, tw_done(X, L, R).
    tw_is(X, E, L, R) :- X is E, tw_done(X, L, R).
    tw_done(X, L, R) :- data(X), data(L) | R := L.
    tw_short(L, R) :- data(L) | R := L.
    tw_watch(R) :- data(R) | halt.
  )";
  return Program::parse(kSrc);
}

Motif terminate_motif(ProcKey entry) {
  Transform t = [entry](const Program& a) {
    // The set of definitions to thread: everything defined in A.
    std::set<ProcKey> defined;
    for (const auto& k : a.defined()) defined.insert(k);

    Program out;
    for (const Clause& c : a.clauses()) {
      Clause nc;
      FreshNamer namer(c);
      Term cl = namer.fresh("Cl");
      Term cr = namer.fresh("Cr");
      nc.head = with_circuit(c.head, cl, cr);
      nc.guard = c.guard;

      // First pass: which goals are threaded?
      std::vector<bool> threaded(c.body.size(), false);
      std::size_t n_threaded = 0;
      for (std::size_t i = 0; i < c.body.size(); ++i) {
        Term g = term::strip_placement(c.body[i]).goal.deref();
        if (g.is_var()) continue;  // metacall: treated as instantaneous
        if (is_assign(g) || is_arith_assign(g) ||
            defined.count(term::goal_key(g)) > 0) {
          threaded[i] = true;
          ++n_threaded;
        }
      }

      if (n_threaded == 0) {
        nc.body = c.body;
        nc.body.push_back(Term::compound("tw_short", {cl, cr}));
        out.add(std::move(nc));
        continue;
      }

      Term left = cl;
      std::size_t seen = 0;
      for (std::size_t i = 0; i < c.body.size(); ++i) {
        if (!threaded[i]) {
          nc.body.push_back(c.body[i]);
          continue;
        }
        ++seen;
        Term right = (seen == n_threaded) ? cr : namer.fresh("Cm");
        GoalView v = term::strip_placement(c.body[i]);
        Term g = v.goal.deref();
        Term rewritten;
        if (is_assign(g)) {
          rewritten =
              Term::compound("tw_assign", {g.arg(0), g.arg(1), left, right});
        } else if (is_arith_assign(g)) {
          rewritten =
              Term::compound("tw_is", {g.arg(0), g.arg(1), left, right});
        } else {
          rewritten = with_circuit(g, left, right);
        }
        if (v.annotated) {
          rewritten = Term::compound("@", {rewritten, v.placement});
        }
        nc.body.push_back(std::move(rewritten));
        left = right;
      }
      out.add(std::move(nc));
    }

    // Terminating entry wrapper:
    //   <entry>_tw(V1..Vn) :- <entry>(V1..Vn, closed, R), tw_watch(R).
    std::vector<Term> vars;
    for (std::size_t i = 0; i < entry.arity; ++i) {
      vars.push_back(Term::var("V" + std::to_string(i + 1)));
    }
    Term r = Term::var("R");
    std::vector<Term> inner_args = vars;
    inner_args.push_back(Term::atom("closed"));
    inner_args.push_back(r);
    Clause wrapper;
    wrapper.head = Term::compound(entry.name + "_tw", vars);
    wrapper.body = {Term::compound(entry.name, std::move(inner_args)),
                    Term::compound("tw_watch", {r})};
    out.add(std::move(wrapper));
    return out;
  };
  return Motif("Terminate", std::move(t), terminate_library());
}

Motif tree_reduce1_terminating_motif() {
  return compose_all({server_motif(),
                      rand_motif({ProcKey{"reduce_tw", 2}}),
                      terminate_motif(ProcKey{"reduce", 2}),
                      tree1_motif()});
}

}  // namespace motif::transform
