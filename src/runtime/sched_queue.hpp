// Lock-free building blocks of the Machine scheduling core (DESIGN.md §10):
//
//   MpscQueue  — Vyukov-style intrusive multi-producer single-consumer
//                queue; one per virtual node ("the mailbox"). Producers
//                pay one atomic exchange + one release store per post.
//   WorkDeque  — Chase-Lev work-stealing deque of node activations; one
//                per worker. The owner pushes/pops LIFO (hot continuation
//                chains stay in cache), thieves steal FIFO.
//   EventCount — epoch/waiter-count parking lot backing the adaptive
//                spin → yield → park idling policy, replacing the old
//                broadcast condvar on every post.
//
// Memory-order note: the wakeup-critical edges below are store-buffering
// (Dekker) patterns — "producer publishes work then checks for sleepers;
// consumer announces sleep then rechecks work" — where BOTH sides reading
// stale values loses a wakeup. Each such edge uses seq_cst on all four
// accesses (the RMWs are already locked instructions on x86, and seq_cst
// loads are plain loads there, so this costs nothing on the fast path).
// We deliberately use seq_cst *operations* rather than the textbook
// std::atomic_thread_fence formulations: TSAN does not model fences, and
// every `machine`-labelled suite runs under the tsan preset.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace motif::rt {

/// Compiler/CPU hint for short spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Intrusive hook embedded in every mailbox entry.
struct MpscLink {
  std::atomic<MpscLink*> next{nullptr};
};

/// Vyukov intrusive MPSC queue. push() is wait-free for producers; try_pop
/// is single-consumer and tri-state:
///
///   kItem  — *out holds the oldest entry (now owned by the caller).
///   kEmpty — the queue was observably empty (back_ == &stub_): a
///            linearizable verdict producers cannot fake.
///   kRetry — a producer is mid-push (between its back_ exchange and its
///            prev->next store); the entry is instants away. Spin.
///
/// maybe_nonempty() is a producer-visible probe with one caveat: it can
/// report *false negatives* while the consumer's own stub re-insertion is
/// in flight, so it is only meaningful AFTER a kEmpty verdict (at which
/// point the chain is exactly [stub] and any later push flips it). The
/// Machine's node-release protocol relies on precisely that window and
/// nothing else; never use it to decide "no work" mid-drain.
class MpscQueue {
 public:
  enum class Pop { kItem, kEmpty, kRetry };

  MpscQueue() noexcept : back_(&stub_), front_(&stub_) {}
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Multi-producer. seq_cst exchange: pairs with the consumer's release
  /// protocol (store Idle; load back_) so a push concurrent with a release
  /// is seen by at least one side.
  void push(MpscLink* n) noexcept {
    n->next.store(nullptr, std::memory_order_relaxed);
    MpscLink* prev = back_.exchange(n, std::memory_order_seq_cst);
    prev->next.store(n, std::memory_order_release);
  }

  /// Single-consumer.
  Pop try_pop(MpscLink** out) noexcept {
    MpscLink* front = front_;
    MpscLink* next = front->next.load(std::memory_order_acquire);
    if (front == &stub_) {
      if (next == nullptr) {
        return back_.load(std::memory_order_seq_cst) == &stub_ ? Pop::kEmpty
                                                               : Pop::kRetry;
      }
      front_ = next;
      front = next;
      next = front->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      front_ = next;
      *out = front;
      return Pop::kItem;
    }
    // `front` looks like the last entry. Confirm, then re-insert the stub
    // behind it so the chain stays intact while we detach `front`.
    if (front != back_.load(std::memory_order_seq_cst)) {
      return Pop::kRetry;  // a producer appended but has not linked yet
    }
    // No producer can hold a dangling prev == &stub_ reference here: the
    // previous stub epoch's (single) successor link was consumed when
    // front_ advanced past the stub, and the next epoch starts only with
    // the exchange below.
    stub_.next.store(nullptr, std::memory_order_relaxed);
    MpscLink* prev = back_.exchange(&stub_, std::memory_order_seq_cst);
    prev->next.store(&stub_, std::memory_order_release);
    next = front->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      front_ = next;
      *out = front;
      return Pop::kItem;
    }
    return Pop::kRetry;  // raced with a producer between confirm and swap
  }

  /// See the class comment: trustworthy only after a kEmpty verdict.
  bool maybe_nonempty() const noexcept {
    return back_.load(std::memory_order_seq_cst) != &stub_;
  }

 private:
  std::atomic<MpscLink*> back_;  // producers exchange; newest entry
  MpscLink* front_;              // consumer-owned; oldest entry
  MpscLink stub_;
};

/// Chase-Lev work-stealing deque of 32-bit ids (node activations). The
/// owner pushes and pops at the bottom (LIFO); thieves steal at the top
/// (FIFO). Returns kNone when empty or when a steal race aborts.
///
/// The buffer grows by doubling; retired buffers are kept until
/// destruction because a thief may still be reading a stale buffer
/// pointer — its top_ CAS then fails harmlessly, and logical indices are
/// position-stable across the copy, so even a stale read that *wins* the
/// CAS read the right value.
class WorkDeque {
 public:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  explicit WorkDeque(std::size_t capacity = 64) {
    bufs_.push_back(std::make_unique<Buf>(round_up(capacity)));
    buf_.store(bufs_.back().get(), std::memory_order_relaxed);
  }
  WorkDeque(const WorkDeque&) = delete;
  WorkDeque& operator=(const WorkDeque&) = delete;

  /// Owner only.
  void push(std::uint32_t x) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buf* a = buf_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->mask)) a = grow(a, t, b);
    a->slots[b & static_cast<std::int64_t>(a->mask)].store(
        x, std::memory_order_relaxed);
    // seq_cst publish: pairs with a parking thief's maybe_nonempty probe.
    // (exchange, not store: one locked instruction on x86 instead of a
    // store + full fence.)
    bottom_.exchange(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only.
  std::uint32_t pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buf* a = buf_.load(std::memory_order_relaxed);
    bottom_.exchange(b, std::memory_order_seq_cst);  // see push()
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // empty: restore
      bottom_.store(b + 1, std::memory_order_relaxed);
      return kNone;
    }
    std::uint32_t x =
        a->slots[b & static_cast<std::int64_t>(a->mask)].load(
            std::memory_order_relaxed);
    if (t == b) {
      // Last entry: race the thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        x = kNone;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return x;
  }

  /// Any thread. One attempt; aborts (kNone) on a lost race.
  std::uint32_t steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return kNone;
    Buf* a = buf_.load(std::memory_order_acquire);
    const std::uint32_t x =
        a->slots[t & static_cast<std::int64_t>(a->mask)].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return kNone;
    }
    return x;
  }

  /// Sleep-gate probe (any thread); pairs with push()'s seq_cst publish.
  bool maybe_nonempty() const {
    return bottom_.load(std::memory_order_seq_cst) >
           top_.load(std::memory_order_seq_cst);
  }

 private:
  struct Buf {
    explicit Buf(std::size_t cap)
        : mask(cap - 1), slots(new std::atomic<std::uint32_t>[cap]) {}
    std::size_t mask;
    std::unique_ptr<std::atomic<std::uint32_t>[]> slots;
  };

  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  Buf* grow(Buf* a, std::int64_t t, std::int64_t b) {
    bufs_.push_back(std::make_unique<Buf>((a->mask + 1) * 2));
    Buf* n = bufs_.back().get();
    for (std::int64_t i = t; i < b; ++i) {
      n->slots[i & static_cast<std::int64_t>(n->mask)].store(
          a->slots[i & static_cast<std::int64_t>(a->mask)].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    buf_.store(n, std::memory_order_release);
    return n;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buf*> buf_{nullptr};
  std::vector<std::unique_ptr<Buf>> bufs_;  // owner-only; current + retired
};

/// Eventcount: lets idle workers sleep without a lost-wakeup window and
/// lets producers skip the kernel entirely when nobody sleeps (one seq_cst
/// load on the post path — versus the old notify_one on every post).
///
/// Waiter:   prepare_wait() → recheck work → commit_wait(key) or
///           cancel_wait().
/// Notifier: publish work (seq_cst) → notify_if_waiting().
class EventCount {
 public:
  std::uint64_t prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  void cancel_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  void commit_wait(std::uint64_t key) {
    {
      std::unique_lock lock(m_);
      cv_.wait(lock, [&] {
        return epoch_.load(std::memory_order_relaxed) != key;
      });
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }

  /// Fast path: no sleepers, no kernel. The epoch bump under the mutex
  /// closes the race with a waiter between its epoch read and its sleep.
  /// Wakes ONE sleeper: each published item carries its own notify, so a
  /// broadcast would just stampede W-1 workers into finding nothing
  /// (ruinous when the host is oversubscribed).
  void notify_if_waiting() {
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    {
      std::lock_guard lock(m_);
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  /// Unconditional broadcast (shutdown): wakes everyone.
  void notify_all() {
    {
      std::lock_guard lock(m_);
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
  }

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::mutex m_;
  std::condition_variable cv_;
};

}  // namespace motif::rt
