file(REMOVE_RECURSE
  "CMakeFiles/motif_align.dir/msa.cpp.o"
  "CMakeFiles/motif_align.dir/msa.cpp.o.d"
  "CMakeFiles/motif_align.dir/nw.cpp.o"
  "CMakeFiles/motif_align.dir/nw.cpp.o.d"
  "CMakeFiles/motif_align.dir/phylo.cpp.o"
  "CMakeFiles/motif_align.dir/phylo.cpp.o.d"
  "CMakeFiles/motif_align.dir/profile.cpp.o"
  "CMakeFiles/motif_align.dir/profile.cpp.o.d"
  "CMakeFiles/motif_align.dir/sequence.cpp.o"
  "CMakeFiles/motif_align.dir/sequence.cpp.o.d"
  "libmotif_align.a"
  "libmotif_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
