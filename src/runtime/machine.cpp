#include "runtime/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace motif::rt {

namespace {
thread_local NodeId tl_current_node = kNoNode;
}  // namespace

/// Mailbox entry: intrusive link first (so a link pointer converts back to
/// its MailNode), then the task and its fault/trace metadata. Entries are
/// recycled through per-worker free lists — in steady state a post on the
/// hot path allocates nothing.
struct Machine::MailNode {
  MpscLink link;
  TaskFn fn;
  std::uint32_t delay = 0;  // fault-injected bounces left before running
  /// Sender node. Lets the drainer do the receive-side accounting
  /// (single-writer store) instead of a multi-producer RMW at post time.
  NodeId from = kNoNode;
#if MOTIF_TRACING
  std::uint64_t trace_msg = 0;  // nonzero: traced remote message id
  std::uint32_t hops = 0;
#endif
  MailNode* free_next = nullptr;

  static MailNode* from_link(MpscLink* lk) {
    // `link` is the first member, so the addresses coincide.
    return reinterpret_cast<MailNode*>(lk);
  }
};

struct Machine::Worker {
  /// Free-list bound: big enough to absorb a full batch of productions,
  /// small enough that an idle machine is not sitting on memory.
  static constexpr std::uint32_t kMaxFree = 256;
  /// Pending-credit lease block (see post()): credits bought from
  /// pending_ in bulk, spent locally one post at a time.
  static constexpr std::uint32_t kPendingLease = 64;

  Machine* machine;
  std::uint32_t index;
  WorkDeque deque;
  Rng rng;  // victim selection for stealing; determinism not required
  MailNode* free_head = nullptr;
  std::uint32_t free_count = 0;
  /// Unspent pre-paid pending_ credits. Nonzero only inside run_node();
  /// every drain-exit path returns the remainder, so an idle worker never
  /// holds pending_ above zero.
  std::uint32_t pending_lease = 0;
  /// Direct-handoff slot: the node this worker will run next, bypassing
  /// the deque (saves two locked RMWs and a wake per activation on serial
  /// continuation chains). Owner-only; invisible to thieves and
  /// work_available(). That is safe because the owner consumes the slot
  /// on its very next loop iteration — it can never park over it — and
  /// an occupied slot keeps pending_ nonzero, so shutdown()'s quiescence
  /// wait cannot pass it by either.
  std::uint32_t handoff = WorkDeque::kNone;
  /// Consecutive handoff activations; bounded by kHandoffCap so a hot
  /// chain periodically yields to deque/global work.
  std::uint32_t handoff_streak = 0;
  static constexpr std::uint32_t kHandoffCap = 16;

  // Substrate counters: relaxed atomics so sched_stats()/load_summary()
  // can snapshot them while the machine runs.
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> fast_hits{0};
#if MOTIF_TRACING
  // Last values emitted as trace counters (worker-thread private).
  std::uint64_t last_steals = 0;
  std::uint64_t last_parks = 0;
  std::uint64_t last_hits = 0;
#endif

  Worker(Machine* m, std::uint32_t i, std::uint64_t seed)
      : machine(m), index(i), rng(seed) {}
  ~Worker() {
    MailNode* p = free_head;  // worker_loop normally drained this already
    while (p != nullptr) {
      MailNode* nx = p->free_next;
      delete p;
      p = nx;
    }
  }
};

thread_local Machine::Worker* Machine::tl_worker_ = nullptr;

Machine::Machine(MachineConfig cfg)
    : batch_(std::max<std::uint32_t>(1, cfg.batch)),
      probe_queue_depth_(cfg.probe_queue_depth),
      ext_rng_(cfg.seed ^ 0xE27ull),
      topology_(cfg.topology) {
  const std::uint32_t n = std::max<std::uint32_t>(1, cfg.nodes);
  // Mesh: the most-square factorisation r x c with r*c >= n.
  mesh_cols_ = 1;
  while (mesh_cols_ * mesh_cols_ < n) ++mesh_cols_;
  nodes_.reserve(n);
  std::uint64_t s = cfg.seed;
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(splitmix64(s)));
  }
  faults_ = cfg.faults;
  faults_enabled_.store(faults_.enabled(), std::memory_order_release);
  std::uint32_t w = cfg.workers;
  if (w == 0) {
    const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    w = std::min(n, hw);
  }
#if MOTIF_TRACING
  tracer_ = std::make_unique<Tracer>(
      TracerOptions{std::max<std::size_t>(2, cfg.trace_capacity)});
  for (std::uint32_t i = 0; i < n; ++i) {
    tracer_->add_track("node " + std::to_string(i));
  }
  if (cfg.trace_sched_counters) {
    // Worker tracks follow the node tracks; consumers that only know
    // about node tracks are unaffected unless they opt in.
    worker_track_base_ = n;
    for (std::uint32_t i = 0; i < w; ++i) {
      tracer_->add_track("worker " + std::to_string(i));
    }
  }
#endif
  worker_data_.reserve(w);
  for (std::uint32_t i = 0; i < w; ++i) {
    worker_data_.push_back(std::make_unique<Worker>(this, i, splitmix64(s)));
  }
  workers_.reserve(w);
  for (std::uint32_t i = 0; i < w; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Machine::~Machine() { shutdown(); }

void Machine::shutdown() {
  // once_flag: a concurrent shutdown() + destructor (or two racing
  // shutdowns) performs the sequence exactly once, and every caller
  // blocks until it has completed.
  std::call_once(shutdown_once_, [this] { do_shutdown(); });
}

void Machine::do_shutdown() {
  // Drain outstanding work first so no posted task is silently dropped.
  {
    std::unique_lock lock(idle_m_);
    idle_cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  // A task error no wait_idle ever collected must not vanish: count it
  // and say so, since nobody is left to rethrow it to.
  std::exception_ptr e;
  {
    std::lock_guard el(error_m_);
    e = first_error_;
    first_error_ = nullptr;
  }
  if (e) {
    dropped_task_errors().fetch_add(1, std::memory_order_relaxed);
    std::string what = "unknown exception";
    try {
      std::rethrow_exception(e);
    } catch (const std::exception& ex) {
      what = ex.what();
    } catch (...) {
    }
    std::fprintf(stderr,
                 "[motif] task error dropped at Machine shutdown: %s\n",
                 what.c_str());
  }
  accepting_.store(false, std::memory_order_release);
  stopping_.store(true, std::memory_order_seq_cst);
  ec_.notify_all();
  for (auto& t : workers_) t.join();
  workers_.clear();
}

NodeId Machine::current_node() { return tl_current_node; }

void Machine::start_trace() {
#if MOTIF_TRACING
  if (!tracer_->active()) tracer_->start();
#endif
}

void Machine::stop_trace() {
#if MOTIF_TRACING
  tracer_->stop();
#endif
}

bool Machine::tracing() const {
#if MOTIF_TRACING
  return tracer_->active();
#else
  return false;
#endif
}

TraceLog Machine::drain_trace() {
#if MOTIF_TRACING
  return tracer_->drain();
#else
  return {};
#endif
}

void Machine::post(NodeId n, Task t) {
  if (!accepting_.load(std::memory_order_acquire) ||
      discarding_.load(std::memory_order_acquire)) {
    // After shutdown() (or while abandon_pending drains) posting is safe
    // but inert: the task is discarded and counted, never enqueued onto
    // stopped workers.
    discarded_posts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const NodeId from = tl_current_node;
  Node& dst = *nodes_[n];
  if (dst.dead.load(std::memory_order_acquire)) {
    // A crashed processor loses its mail silently — the defining hazard
    // the supervision layer exists to classify.
    fault_counts_.dead_drops.fetch_add(1, std::memory_order_relaxed);
    if (from != kNoNode) emit_fault(from, "dead-drop", 0, n);
    return;
  }
  // The fault lottery applies to cross-node posts only; the ordinal is a
  // per-sender count so the (seed, sender, ordinal) stream is replayable.
  PostFault pf = PostFault::None;
  std::uint64_t ordinal = 0;
  if (from != kNoNode && from != n &&
      faults_enabled_.load(std::memory_order_acquire)) {
    // Sender-side state is single-writer — only node `from`'s drainer
    // executes this, and activation handoff orders successive drainers —
    // so a plain load+store avoids the locked RMW.
    Node& src = *nodes_[from];
    ordinal = src.xposts.load(std::memory_order_relaxed) + 1;
    src.xposts.store(ordinal, std::memory_order_relaxed);
    pf = faults_.post_fault(from, ordinal);
  }
  if (pf == PostFault::Drop) {
    fault_counts_.drops.fetch_add(1, std::memory_order_relaxed);
    emit_fault(from, "drop", ordinal, n);
    return;
  }
  std::uint32_t delay = 0;
  if (pf == PostFault::Delay) {
    delay = 1;  // one bounce: re-queued behind later arrivals
    fault_counts_.delays.fetch_add(1, std::memory_order_relaxed);
    emit_fault(from, "delay", ordinal, n);
  }
#if MOTIF_TRACING
  std::uint64_t trace_msg = 0;
  std::uint32_t msg_hops = 0;
#endif
  if (from == kNoNode) {
    // external producer; not an inter-processor message
  } else if (from == n) {
    Node& src = *nodes_[from];  // single-writer, see above
    src.counters.posts_local.store(
        src.counters.posts_local.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
  } else {
    const std::uint32_t hops = hop_distance(from, n);
    Node& src = *nodes_[from];  // single-writer, see above
    src.counters.posts_remote.store(
        src.counters.posts_remote.load(std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    src.counters.hops.store(
        src.counters.hops.load(std::memory_order_relaxed) + hops,
        std::memory_order_relaxed);
    // recv_remote is counted by the receiving drainer (single-writer),
    // not here — the receive side has many concurrent posters.
#if MOTIF_TRACING
    if (tracer_->active()) {
      // The calling thread is running node `from`, i.e. it is that
      // track's (single) writer right now.
      trace_msg = tracer_->next_msg_id();
      msg_hops = hops;
      tracer_->emit(from, TraceEventKind::MsgSend, nullptr, trace_msg, n,
                    hops);
    }
#endif
  }
  const bool dup = pf == PostFault::Duplicate;
  if (dup) {
    fault_counts_.duplicates.fetch_add(1, std::memory_order_relaxed);
    emit_fault(from, "dup", ordinal, n);
  }
  Worker* w = tl_worker_;
  if (w != nullptr && w->machine != this) w = nullptr;
  // The pending credit must be GLOBAL before the push: the instant the
  // entry is visible another worker can run it and apply its drop in that
  // worker's drain-exit flush — a credit still sitting in a producer-side
  // buffer would let pending_ touch zero mid-computation. (Drops are the
  // safe side to defer; credits are not.) Workers therefore PRE-PAY a
  // lease of kPendingLease credits in one RMW and spend it locally:
  // pending_ transiently over-states outstanding work — harmless, idle
  // waiters can only wake late — and the drain-exit flush returns the
  // unspent remainder.
  const std::uint32_t need = dup ? 2u : 1u;
  if (w != nullptr) {
    if (w->pending_lease < need) {
      pending_.fetch_add(Worker::kPendingLease, std::memory_order_relaxed);
      w->pending_lease += Worker::kPendingLease;
    }
    w->pending_lease -= need;
  } else {
    pending_.fetch_add(need, std::memory_order_relaxed);
  }
  const auto fill = [&](MailNode* m, TaskFn f) {
    m->fn = std::move(f);
    m->delay = delay;
    m->from = from;
#if MOTIF_TRACING
    m->trace_msg = trace_msg;
    m->hops = msg_hops;
#endif
  };
  if (dup) {
    // TaskFn is move-only (tasks run exactly once); the two deliveries of
    // a duplicated message share the callable instead of copying it.
    auto shared = std::make_shared<TaskFn>(std::move(t));
    MailNode* m1 = alloc_mail(w);
    fill(m1, TaskFn([shared] { (*shared)(); }));
    MailNode* m2 = alloc_mail(w);
    fill(m2, TaskFn([shared] { (*shared)(); }));
    dst.mail.push(&m1->link);
    dst.mail.push(&m2->link);
  } else {
    MailNode* m1 = alloc_mail(w);
    fill(m1, std::move(t));
    dst.mail.push(&m1->link);
  }
  if (probe_queue_depth_) {
    const auto depth = static_cast<std::uint64_t>(
        dst.depth.fetch_add(dup ? 2 : 1, std::memory_order_relaxed) +
        (dup ? 2 : 1));
    std::uint64_t peak = peak_queue_.load(std::memory_order_relaxed);
    while (depth > peak && !peak_queue_.compare_exchange_weak(
                               peak, depth, std::memory_order_relaxed)) {
    }
  }
  // Activation. Fast path first: a seq_cst LOAD that sees kScheduled is
  // proof enough — the push above is itself a seq_cst RMW, so in the
  // single total order it precedes this load, which precedes the
  // drainer's Idle store, which precedes the drainer's mailbox re-probe:
  // the release protocol is guaranteed to see our entry and re-arm. (A
  // *relaxed* load here would NOT be: without the RMW-load/store-load
  // ordering the classic store-buffering interleaving loses the wakeup.)
  // On x86 the load is a plain MOV, so the already-scheduled case — the
  // common one under load — costs no locked instruction at all.
  if (dst.state.load(std::memory_order_seq_cst) == kScheduled) {
    if (w != nullptr) {
      // Single-writer (this worker's own counter): no RMW on the fast path.
      w->fast_hits.store(w->fast_hits.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
    } else {
      ext_fast_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // Slow path: the node looked idle; the seq_cst exchange decides the
  // race against the release protocol (and other producers) — exactly
  // one side schedules the node, at most one activation in flight.
  const std::uint8_t prev =
      dst.state.exchange(kScheduled, std::memory_order_seq_cst);
  if (prev == kIdle) {
    activate(w, n);
  } else if (w != nullptr) {
    w->fast_hits.store(w->fast_hits.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  } else {
    ext_fast_hits_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Machine::post_local(Task t) {
  const NodeId n = tl_current_node == kNoNode ? 0 : tl_current_node;
  post(n, std::move(t));
}

NodeId Machine::random_node() {
  const NodeId cur = tl_current_node;
  if (cur != kNoNode) {
    return static_cast<NodeId>(nodes_[cur]->rng.below(nodes_.size()));
  }
  std::lock_guard lock(ext_rng_m_);
  return static_cast<NodeId>(ext_rng_.below(nodes_.size()));
}

Machine::MailNode* Machine::alloc_mail(Worker* w) {
  if (w != nullptr && w->free_head != nullptr) {
    MailNode* m = w->free_head;
    w->free_head = m->free_next;
    --w->free_count;
    return m;
  }
  return new MailNode;
}

void Machine::free_mail(Worker* w, MailNode* m) {
  m->fn.reset();
  if (w != nullptr && w->free_count < Worker::kMaxFree) {
    m->free_next = w->free_head;
    w->free_head = m;
    ++w->free_count;
    return;
  }
  delete m;
}

void Machine::activate(Worker* w, NodeId n) {
  if (w != nullptr) {
    if (w->handoff == kNoNode) {
      // Direct handoff: the continuation this worker just produced is
      // the hottest work in its cache and the worker is guaranteed to
      // look for work again momentarily — run it next without touching
      // the deque. A serial chain (each task posts exactly one
      // successor) cannot be parallelised anyway; when our deque ALSO
      // holds stealable surplus, still ping a thief so that surplus
      // gets picked up promptly.
      w->handoff = n;
      if (w->deque.maybe_nonempty()) ec_.notify_if_waiting();
      return;
    }
    // Slot taken (fan-out > 1): LIFO push — the newest continuation is
    // hottest; thieves take the other (FIFO) end.
    w->deque.push(n);
    ec_.notify_if_waiting();
  } else {
    inject_push(n);
    ec_.notify_if_waiting();
  }
}

void Machine::inject_push(NodeId n) {
  std::lock_guard lock(inject_m_);
  inject_.push_back(n);
  inject_size_.fetch_add(1, std::memory_order_seq_cst);
  injects_.fetch_add(1, std::memory_order_relaxed);
}

NodeId Machine::inject_pop() {
  if (inject_size_.load(std::memory_order_relaxed) == 0) return kNoNode;
  std::lock_guard lock(inject_m_);
  if (inject_.empty()) return kNoNode;
  const NodeId n = inject_.front();
  inject_.pop_front();
  inject_size_.fetch_sub(1, std::memory_order_relaxed);
  return n;
}

NodeId Machine::try_steal(Worker& w) {
  const auto nw = static_cast<std::uint32_t>(worker_data_.size());
  if (nw <= 1) return kNoNode;
  for (std::uint32_t round = 0; round < 2; ++round) {
    const auto start = static_cast<std::uint32_t>(w.rng.below(nw));
    for (std::uint32_t i = 0; i < nw; ++i) {
      const std::uint32_t victim = (start + i) % nw;
      if (victim == w.index) continue;
      const std::uint32_t got = worker_data_[victim]->deque.steal();
      if (got != WorkDeque::kNone) {
        // Single-writer: only this worker's thread writes its counter.
        w.steals.store(w.steals.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
        return got;
      }
    }
  }
  return kNoNode;
}

bool Machine::work_available() const {
  if (inject_size_.load(std::memory_order_seq_cst) != 0) return true;
  for (const auto& wd : worker_data_) {
    if (wd->deque.maybe_nonempty()) return true;
  }
  return false;
}

void Machine::idle_wait(Worker& w) {
  // Adaptive idling: spin briefly (arrivals are usually imminent under
  // load), yield the core every few rounds, then park on the eventcount.
  for (int spin = 0; spin < 64; ++spin) {
    if (stopping_.load(std::memory_order_acquire) || work_available()) return;
    if ((spin & 7) == 7) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
  const std::uint64_t key = ec_.prepare_wait();
  if (stopping_.load(std::memory_order_acquire) || work_available()) {
    ec_.cancel_wait();
    return;
  }
  w.parks.store(w.parks.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  ec_.commit_wait(key);
}

void Machine::worker_loop(std::uint32_t index) {
  Worker& w = *worker_data_[index];
  tl_worker_ = &w;
  std::uint64_t tick = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    NodeId n = kNoNode;
    // Fairness valve: periodically service the global FIFO and then the
    // *oldest* entry of our own deque (self-steal from the thief end),
    // even while the local LIFO chain is hot. Without this, a hot
    // post-run-post cycle between two nodes can starve sibling
    // activations sitting under it for the whole run — stealing alone
    // does not bound that on an oversubscribed host.
    if (++tick % kInjectPollTicks == 0) {
      n = inject_pop();
      if (n == kNoNode) n = w.deque.steal();
    }
    if (n == kNoNode && w.handoff != kNoNode) {
      if (++w.handoff_streak <= Worker::kHandoffCap) {
        n = w.handoff;
        w.handoff = kNoNode;
      } else {
        // Streak cap: demote the chain into the deque and take the fair
        // path below, giving deque/global work a turn and thieves a
        // window.
        w.handoff_streak = 0;
        w.deque.push(w.handoff);
        w.handoff = kNoNode;
        ec_.notify_if_waiting();
      }
    }
    if (n == kNoNode) {
      w.handoff_streak = 0;
      n = w.deque.pop();
    }
    if (n == kNoNode) n = inject_pop();
    if (n == kNoNode) n = try_steal(w);
    if (n == kNoNode) {
      idle_wait(w);
    } else {
      run_node(n, &w);
    }
#if MOTIF_TRACING
    if (worker_track_base_ != 0) emit_sched_counters(w);
#endif
  }
  // Unreachable in a correct run (see the handoff field comment), but if
  // the invariant were ever broken, surfacing the activation beats
  // stranding its mail.
  if (w.handoff != kNoNode) {
    inject_push(w.handoff);
    w.handoff = kNoNode;
  }
  // Return the free list before the thread goes away.
  MailNode* p = w.free_head;
  while (p != nullptr) {
    MailNode* nx = p->free_next;
    delete p;
    p = nx;
  }
  w.free_head = nullptr;
  w.free_count = 0;
  tl_worker_ = nullptr;
}

void Machine::run_node(NodeId n, Worker* w) {
  Node& node = *nodes_[n];
  // We hold the node's (single) activation: state stays kScheduled until
  // the release protocol below observes an empty mailbox.
  // Settles a shed's pending_ debt plus any credit lease (see post())
  // picked up along the way — e.g. by a task destructor that posts.
  const auto shed_settle = [&](std::uint64_t shed) {
    if (w != nullptr) {
      shed += w->pending_lease;
      w->pending_lease = 0;
    }
    if (shed != 0) note_pending_sub(shed);
  };
  if (node.dead.load(std::memory_order_acquire)) {
    // Mail that raced past the dead-check in post(): shed it here so
    // pending_ still drains and the machine quiesces instead of hanging.
    shed_settle(shed_and_release(node, /*as_dead_drops=*/true));
    return;
  }
  if (discarding_.load(std::memory_order_acquire)) {
    shed_settle(shed_and_release(node, /*as_dead_drops=*/false));
    return;
  }
  tl_current_node = n;
#if MOTIF_TRACING
  // Bind this thread to the node's trace track so EvalScope and
  // TRACE_SPAN emissions inside tasks land on the right timeline. The
  // activation handoff serialises successive writers of one track.
  ThreadTrackGuard trace_guard(tracer_.get(), n);
#endif
  std::uint32_t executed = 0;
  std::uint32_t spins = 0;
  std::uint64_t completed = 0;  // executed tasks; pending_ is credited once
  // Drain-local counter accumulators. They MUST be flushed before the
  // release protocol publishes Idle: the moment another worker can win
  // the activation it may start a drain and read counters.tasks — a
  // flush after that point would be a lost update (and would corrupt
  // the fault lottery's task ordinals). The exit flush below only
  // covers break paths that do not publish Idle themselves.
  std::uint64_t task_base =
      node.counters.tasks.load(std::memory_order_relaxed);
  std::uint64_t tasks_run = 0;
  std::uint64_t recv_rem = 0;
  const auto flush_counters = [&] {
    if (tasks_run != 0) {
      task_base += tasks_run;
      tasks_run = 0;
      node.counters.tasks.store(task_base, std::memory_order_relaxed);
    }
    if (recv_rem != 0) {
      node.counters.recv_remote.store(
          node.counters.recv_remote.load(std::memory_order_relaxed) +
              recv_rem,
          std::memory_order_relaxed);
      recv_rem = 0;
    }
  };
  bool died = false;
  for (;;) {
    MpscLink* lk = nullptr;
    const MpscQueue::Pop r = node.mail.try_pop(&lk);
    if (r == MpscQueue::Pop::kRetry) {
      // A producer sits between its back_ exchange and its link store;
      // the entry is instants away unless it lost its timeslice.
      if (++spins > 64) {
        std::this_thread::yield();
      } else {
        cpu_relax();
      }
      continue;
    }
    spins = 0;
    if (r == MpscQueue::Pop::kEmpty) {
      // Release protocol: publish Idle, then re-probe the mailbox. A
      // producer that pushed before seeing Idle is caught by the probe
      // (seq_cst pairing in sched_queue.hpp); one that saw Idle
      // schedules the activation itself. The CAS decides the race when
      // both notice. NOTE: this is the only place maybe_nonempty() may
      // be consulted — after a kEmpty verdict it cannot false-negative.
      // (exchange, not store: a seq_cst RMW is one locked instruction on
      // x86 where a seq_cst store costs a trailing full fence.)
      flush_counters();
      node.state.exchange(kIdle, std::memory_order_seq_cst);
      if (node.mail.maybe_nonempty()) {
        std::uint8_t expected = kIdle;
        if (node.state.compare_exchange_strong(expected, kScheduled,
                                               std::memory_order_seq_cst)) {
          // Mail raced our empty verdict and we won the activation back:
          // keep draining in place rather than round-tripping the
          // activation through the deque (two seq_cst fences). `executed`
          // keeps counting, so the batch_ fairness bound still holds.
          continue;
        }
      }
      break;
    }
    MailNode* m = MailNode::from_link(lk);
    if (m->delay > 0) {
      // Fault-injected delay: bounce the task to the back of the queue
      // so anything that arrived since overtakes it. No counters — the
      // task has not run.
      --m->delay;
      node.mail.push(&m->link);
      ++executed;
      if (executed >= batch_) {
        flush_counters();  // see below: inject_push hands off the drain
        inject_push(n);
        ec_.notify_if_waiting();
        break;
      }
      continue;
    }
    TaskFn fn = std::move(m->fn);
    const NodeId msg_from = m->from;
#if MOTIF_TRACING
    const std::uint64_t msg = m->trace_msg;
    const std::uint32_t msg_hops = m->hops;
#endif
    // Recycle the entry before running the task: the task's own posts
    // (the common continuation pattern) reuse it while it is cache-hot.
    free_mail(w, m);
    if (probe_queue_depth_) node.depth.fetch_sub(1, std::memory_order_relaxed);
    ++executed;
    // Single-writer counters (we hold the activation): accumulated in
    // locals and stored once at drain exit. task_no stays exact — it is
    // the fault lottery's replay ordinal.
    const std::uint64_t task_no = task_base + ++tasks_run;
    if (msg_from != kNoNode && msg_from != n) ++recv_rem;
#if MOTIF_TRACING
    const bool traced = tracer_->active();
    std::uint64_t work_before = 0;
    if (traced) {
      tracer_->emit(n, TraceEventKind::TaskBegin);
      if (msg != 0) {
        tracer_->emit(n, TraceEventKind::MsgRecv, nullptr, msg, msg_from,
                      msg_hops);
      }
      work_before = node.counters.work.load(std::memory_order_relaxed);
    }
#endif
    const bool faults_on = faults_enabled_.load(std::memory_order_acquire);
    try {
      if (faults_on && throw_due(n, task_no)) {
        fault_counts_.throws.fetch_add(1, std::memory_order_relaxed);
        emit_fault(n, "throw", task_no, n);
        // The task body never runs: the "process" died before producing
        // its outputs.
        throw InjectedFault("injected fault: node " + std::to_string(n) +
                            " task " + std::to_string(task_no));
      }
      fn();
    } catch (...) {
      std::lock_guard lock(error_m_);
      if (!first_error_) first_error_ = std::current_exception();
    }
#if MOTIF_TRACING
    if (traced) {
      const std::uint64_t work_after =
          node.counters.work.load(std::memory_order_relaxed);
      tracer_->emit(n, TraceEventKind::TaskEnd, nullptr,
                    work_after - work_before);
    }
#endif
    if (faults_on && kill_due(n, task_no)) {
      node.dead.store(true, std::memory_order_release);
      fault_counts_.kills.fetch_add(1, std::memory_order_relaxed);
      emit_fault(n, "kill", task_no, n);
      died = true;
    }
    ++completed;
    if (died) {
      // The dead node's remaining mail is lost with it.
      completed += shed_and_release(node, /*as_dead_drops=*/true);
      break;
    }
    if (discarding_.load(std::memory_order_acquire)) {
      completed += shed_and_release(node, /*as_dead_drops=*/false);
      break;
    }
    if (executed >= batch_) {
      // Batch exhausted: keep the activation (state stays Scheduled) but
      // route it through the global FIFO so other ready nodes get a turn
      // — re-pushing onto our own LIFO deque would starve them. Flush
      // first: the moment the id is in the inject queue another worker
      // may pop it and begin a drain that reads counters.tasks.
      flush_counters();
      inject_push(n);
      ec_.notify_if_waiting();
      break;
    }
  }
  // Covers the died/discarding breaks (no-op on the other paths, which
  // flushed before handing off). Safe even though shed_and_release has
  // published Idle: dead/discarding re-activations return before ever
  // touching these counters.
  flush_counters();
  // One pending_ decrement per drain instead of one per task, settling
  // the completed/shed count AND returning the unspent credit lease (see
  // post()). Deferring the SUBTRACT side is always safe: until the flush,
  // pending_ merely over-states the outstanding work, so idle-waiters can
  // only wake late, never early.
  std::uint64_t settle = completed;
  if (w != nullptr) {
    settle += w->pending_lease;
    w->pending_lease = 0;
  }
  if (settle != 0) note_pending_sub(settle);
  tl_current_node = kNoNode;
}

std::uint64_t Machine::shed_mailbox(Node& node, bool as_dead_drops) {
  Worker* w = tl_worker_;
  if (w != nullptr && w->machine != this) w = nullptr;
  std::uint64_t shed = 0;
  std::uint32_t spins = 0;
  for (;;) {
    MpscLink* lk = nullptr;
    const MpscQueue::Pop r = node.mail.try_pop(&lk);
    if (r == MpscQueue::Pop::kEmpty) break;
    if (r == MpscQueue::Pop::kRetry) {
      if (++spins > 64) {
        std::this_thread::yield();
      } else {
        cpu_relax();
      }
      continue;
    }
    spins = 0;
    free_mail(w, MailNode::from_link(lk));
    ++shed;
  }
  if (shed != 0) {
    if (probe_queue_depth_) {
      node.depth.fetch_sub(static_cast<std::uint32_t>(shed),
                           std::memory_order_relaxed);
    }
    auto& counter =
        as_dead_drops ? fault_counts_.dead_drops : discarded_posts_;
    counter.fetch_add(shed, std::memory_order_relaxed);
  }
  return shed;
}

std::uint64_t Machine::shed_and_release(Node& node, bool as_dead_drops) {
  // Caller holds the activation. Shed, release, and re-claim if mail
  // raced in behind the shed — otherwise that mail would strand (its
  // producer saw Scheduled and did not activate). Returns the number of
  // tasks shed; the CALLER settles the pending_ accounting (workers fold
  // it into their drain-exit batch decrement).
  std::uint64_t shed = 0;
  for (;;) {
    shed += shed_mailbox(node, as_dead_drops);
    node.state.store(kIdle, std::memory_order_seq_cst);
    if (!node.mail.maybe_nonempty()) return shed;
    std::uint8_t expected = kIdle;
    if (!node.state.compare_exchange_strong(expected, kScheduled,
                                            std::memory_order_seq_cst)) {
      return shed;  // a producer claimed it; the next drainer sheds
    }
  }
}

void Machine::wait_idle() {
  std::unique_lock lock(idle_m_);
  idle_cv_.wait(lock, [&] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
  lock.unlock();
  std::lock_guard el(error_m_);
  if (first_error_) {
    auto e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

RunOutcome Machine::wait_idle_for(std::chrono::nanoseconds deadline) {
  bool idle;
  {
    std::unique_lock lock(idle_m_);
    idle = idle_cv_.wait_for(lock, deadline, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  RunOutcome out;
  out.faults = fault_totals();
  out.lost_nodes = lost_nodes();
  if (!idle) {
    out.status = out.lost_nodes.empty() ? RunStatus::DeadlineExceeded
                                        : RunStatus::NodeLost;
    for (const auto& name : unbound_svar_names()) {
      if (!out.blocked_on.empty()) out.blocked_on += ", ";
      out.blocked_on += name;
    }
    return out;
  }
  std::lock_guard el(error_m_);
  if (first_error_) {
    out.status = RunStatus::TaskFailed;
    out.error = first_error_;
    first_error_ = nullptr;
    try {
      std::rethrow_exception(out.error);
    } catch (const std::exception& e) {
      out.error_message = e.what();
    } catch (...) {
      out.error_message = "unknown exception";
    }
  } else {
    out.status = RunStatus::Completed;
  }
  return out;
}

void Machine::abandon_pending() {
  discarding_.store(true, std::memory_order_seq_cst);
  // Claim every Idle node's (nonexistent) activation via CAS and shed its
  // mailbox ourselves; Scheduled nodes have an activation in flight, and
  // whichever worker dispatches it sheds on seeing discarding_.
  for (auto& np : nodes_) {
    Node& node = *np;
    std::uint8_t expected = kIdle;
    if (node.state.compare_exchange_strong(expected, kScheduled,
                                           std::memory_order_seq_cst)) {
      // External thread: settle the shed credits directly. Worst case a
      // shed item's credit is still in some worker's unflushed delta, in
      // which case pending_ transiently wraps — nonzero, so waiters stay
      // conservatively blocked until that drain's flush nets it out.
      note_pending_sub(shed_and_release(node, /*as_dead_drops=*/false));
    }
  }
  // In-flight tasks finish (their onward posts are discarded above);
  // only then is the machine really quiet for the next attempt.
  {
    std::unique_lock lock(idle_m_);
    idle_cv_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard el(error_m_);
    first_error_ = nullptr;  // the abandoned attempt's error dies with it
  }
  discarding_.store(false, std::memory_order_seq_cst);
}

void Machine::set_fault_plan(FaultPlan plan, bool revive_dead) {
  faults_enabled_.store(false, std::memory_order_release);
  faults_ = std::move(plan);
  if (revive_dead) {
    for (auto& node : nodes_) {
      node->dead.store(false, std::memory_order_release);
    }
  }
  faults_enabled_.store(faults_.enabled(), std::memory_order_release);
}

void Machine::revive(NodeId n) {
  nodes_[n]->dead.store(false, std::memory_order_release);
}

std::vector<NodeId> Machine::lost_nodes() const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->dead.load(std::memory_order_acquire)) out.push_back(i);
  }
  return out;
}

FaultTotals Machine::fault_totals() const {
  FaultTotals t;
  t.drops = fault_counts_.drops.load(std::memory_order_relaxed);
  t.dead_drops = fault_counts_.dead_drops.load(std::memory_order_relaxed);
  t.duplicates = fault_counts_.duplicates.load(std::memory_order_relaxed);
  t.delays = fault_counts_.delays.load(std::memory_order_relaxed);
  t.kills = fault_counts_.kills.load(std::memory_order_relaxed);
  t.throws = fault_counts_.throws.load(std::memory_order_relaxed);
  return t;
}

void Machine::note_pending_sub(std::uint64_t k) {
  if (k == 0) return;
  if (pending_.fetch_sub(k, std::memory_order_acq_rel) == k) {
    std::lock_guard lock(idle_m_);
    idle_cv_.notify_all();
  }
}


void Machine::emit_fault(NodeId track, const char* kind,
                         std::uint64_t ordinal, NodeId peer) {
#if MOTIF_TRACING
  if (track != kNoNode && tracer_->active()) {
    tracer_->emit(track, TraceEventKind::Fault, kind, ordinal, peer, 0);
  }
#else
  (void)track;
  (void)kind;
  (void)ordinal;
  (void)peer;
#endif
}

void Machine::emit_sched_counters(Worker& w) {
#if MOTIF_TRACING
  if (worker_track_base_ == 0 || !tracer_->active()) return;
  const std::uint32_t track = worker_track_base_ + w.index;
  const std::uint64_t steals = w.steals.load(std::memory_order_relaxed);
  if (steals != w.last_steals) {
    tracer_->emit(track, TraceEventKind::Counter, "steals", steals);
    w.last_steals = steals;
  }
  const std::uint64_t parks = w.parks.load(std::memory_order_relaxed);
  if (parks != w.last_parks) {
    tracer_->emit(track, TraceEventKind::Counter, "parks", parks);
    w.last_parks = parks;
  }
  const std::uint64_t hits = w.fast_hits.load(std::memory_order_relaxed);
  if (hits != w.last_hits) {
    tracer_->emit(track, TraceEventKind::Counter, "mailbox_fast_hits", hits);
    w.last_hits = hits;
  }
#else
  (void)w;
#endif
}

bool Machine::kill_due(NodeId n, std::uint64_t task_no) const {
  for (const auto& k : faults_.kills) {
    if (k.node == n && k.after_tasks == task_no) return true;
  }
  return false;
}

bool Machine::throw_due(NodeId n, std::uint64_t task_no) const {
  for (const auto& t : faults_.throws) {
    if (t.node == n && t.on_task == task_no) return true;
  }
  return false;
}

LoadSummary Machine::load_summary() const {
  // NodeCounters are not copyable (atomics); summarise in place.
  std::vector<NodeCounters> view(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    view[i].tasks = nodes_[i]->counters.tasks.load(std::memory_order_relaxed);
    view[i].posts_local =
        nodes_[i]->counters.posts_local.load(std::memory_order_relaxed);
    view[i].posts_remote =
        nodes_[i]->counters.posts_remote.load(std::memory_order_relaxed);
    view[i].recv_remote =
        nodes_[i]->counters.recv_remote.load(std::memory_order_relaxed);
    view[i].work = nodes_[i]->counters.work.load(std::memory_order_relaxed);
    view[i].hops = nodes_[i]->counters.hops.load(std::memory_order_relaxed);
  }
  LoadSummary s = summarize(view);
  s.sched = sched_stats();
  return s;
}

SchedStats Machine::sched_stats() const {
  SchedStats s;
  for (const auto& w : worker_data_) {
    s.steals += w->steals.load(std::memory_order_relaxed);
    s.parks += w->parks.load(std::memory_order_relaxed);
    s.mailbox_fast_hits += w->fast_hits.load(std::memory_order_relaxed);
  }
  s.mailbox_fast_hits += ext_fast_hits_.load(std::memory_order_relaxed);
  s.injects = injects_.load(std::memory_order_relaxed);
  s.net = net_counters_.snapshot();
  return s;
}

std::uint32_t Machine::hop_distance(NodeId a, NodeId b) const {
  if (a == b) return 0;
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  switch (topology_) {
    case Topology::Complete:
      return 1;
    case Topology::Ring: {
      const std::uint32_t d = a > b ? a - b : b - a;
      return std::min(d, n - d);
    }
    case Topology::Mesh2D: {
      const std::uint32_t ar = a / mesh_cols_, ac = a % mesh_cols_;
      const std::uint32_t br = b / mesh_cols_, bc = b % mesh_cols_;
      return (ar > br ? ar - br : br - ar) + (ac > bc ? ac - bc : bc - ac);
    }
    case Topology::Hypercube:
      return static_cast<std::uint32_t>(__builtin_popcount(a ^ b));
  }
  return 1;
}

void Machine::reset_counters() {
  for (auto& n : nodes_) n->counters.reset();
  peak_queue_.store(0, std::memory_order_relaxed);
  for (auto& w : worker_data_) {
    w->steals.store(0, std::memory_order_relaxed);
    w->parks.store(0, std::memory_order_relaxed);
    w->fast_hits.store(0, std::memory_order_relaxed);
  }
  ext_fast_hits_.store(0, std::memory_order_relaxed);
  injects_.store(0, std::memory_order_relaxed);
  net_counters_.reset();
}

}  // namespace motif::rt
