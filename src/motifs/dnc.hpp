// Generic divide-and-conquer motif — one of the areas the paper's
// conclusion lists for motif development ("Areas in which motifs seem
// appropriate include search, sorting, grid problems, divide and conquer,
// and various graph theory problems").
//
// The skeleton generalises Tree-Reduce-1: a problem is split, subproblems
// are shipped to randomly selected processors (the Random motif), and
// results are combined where the split happened. The user supplies:
//   is_base(P)            — stop splitting?
//   base(P)      -> R     — solve a base case (sequential leaf work)
//   divide(P)    -> [P]   — split into >= 1 subproblems
//   combine(P,[R]) -> R   — merge subresults (ordered as divide returned)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/svar.hpp"

namespace motif {

template <class P, class R, class IsBase, class Base, class Divide,
          class Combine>
class DivideAndConquer {
 public:
  DivideAndConquer(rt::Machine& m, IsBase is_base, Base base, Divide divide,
                   Combine combine)
      : m_(m), is_base_(std::move(is_base)), base_(std::move(base)),
        divide_(std::move(divide)), combine_(std::move(combine)) {}

  /// Solves `problem`, blocking the calling (external) thread.
  R run(P problem) {
    rt::SVar<R> out;
    auto self = this;
    m_.post(m_.random_node(),
            [self, problem = std::move(problem), out]() mutable {
              self->solve(std::move(problem), out);
            });
    m_.wait_idle();  // rethrows task exceptions; result is bound after
    return out.get();
  }

 private:
  struct Join {
    P problem;
    std::vector<R> results;
    std::atomic<std::size_t> missing;
    rt::SVar<R> out;
    rt::NodeId home;
    Join(P p, std::size_t n, rt::SVar<R> o, rt::NodeId h)
        : problem(std::move(p)), results(n), missing(n), out(std::move(o)),
          home(h) {}
  };

  void solve(P problem, rt::SVar<R> out) {
    if (is_base_(problem)) {
      out.bind(base_(std::move(problem)));
      return;
    }
    std::vector<P> parts = divide_(problem);
    const rt::NodeId home = rt::Machine::current_node() == rt::kNoNode
                                ? 0
                                : rt::Machine::current_node();
    auto join = std::make_shared<Join>(std::move(problem), parts.size(),
                                       out, home);
    auto self = this;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      rt::SVar<R> sub;
      // First subproblem continues locally, the rest are shipped to
      // random processors (the @random pragma applied to D&C).
      const rt::NodeId target = i == 0 ? home : m_.random_node();
      m_.post(target, [self, part = std::move(parts[i]), sub]() mutable {
        self->solve(std::move(part), sub);
      });
      sub.when_bound([self, join, i](const R& r) {
        join->results[i] = r;
        if (join->missing.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // All subresults in: combine on the node that split.
          self->m_.post(join->home, [self, join] {
            rt::EvalScope scope;
            join->out.bind(
                self->combine_(join->problem, std::move(join->results)));
          });
        }
      });
    }
  }

  rt::Machine& m_;
  IsBase is_base_;
  Base base_;
  Divide divide_;
  Combine combine_;
};

/// Deduction helper.
template <class P, class R, class IsBase, class Base, class Divide,
          class Combine>
R divide_and_conquer(rt::Machine& m, P problem, IsBase is_base, Base base,
                     Divide divide, Combine combine) {
  DivideAndConquer<P, R, IsBase, Base, Divide, Combine> dnc(
      m, std::move(is_base), std::move(base), std::move(divide),
      std::move(combine));
  return dnc.run(std::move(problem));
}

}  // namespace motif
