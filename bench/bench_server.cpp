// Experiment E9 (DESIGN.md §4): the Server motif and termination
// machinery scale — message throughput over the fully-connected network
// (Figure 3/4), halt propagation cost, and the short-circuit termination
// detector's overhead (Section 3.3).
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <atomic>

#include "motifs/server.hpp"
#include "runtime/termination.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

void BM_ServerThroughput(benchmark::State& state) {
  // Each received message triggers `fan` new messages until a hop budget
  // is spent: a message flood across all servers.
  const auto servers = static_cast<std::uint32_t>(state.range(0));
  constexpr int kHops = 20000;
  std::uint64_t handled = 0;
  for (auto _ : state) {
    rt::Machine mach({.nodes = servers, .workers = 2, .seed = 61});
    std::atomic<int> budget{kHops};
    m::ServerNetwork<int> net(mach, servers, [&](auto& ctx, int) {
      const int left = budget.fetch_sub(1) - 1;
      if (left <= 0) {
        if (left == 0) ctx.halt();
        return;
      }
      ctx.send(static_cast<std::uint32_t>(ctx.rng().below(ctx.nodes())) + 1,
               0);
    });
    net.start(1, 0);
    net.wait();
    handled = net.messages_handled();
  }
  state.SetItemsProcessed(state.iterations() * handled);
  state.counters["servers"] = static_cast<double>(servers);
  MOTIF_BENCH_REPORT(state);
}

void BM_HaltLatency(benchmark::State& state) {
  // Time from first message to fully-halted network, with all servers
  // busy self-messaging.
  const auto servers = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    rt::Machine mach({.nodes = servers, .workers = 2, .seed = 67});
    m::ServerNetwork<int> net(mach, servers, [&](auto& ctx, int k) {
      if (ctx.self() == 1 && k == 0) {
        ctx.halt();
        return;
      }
      ctx.send(ctx.self(), k - 1);
    });
    for (std::uint32_t s = 2; s <= servers; ++s) {
      net.start(s, 1 << 20);  // effectively endless until halt
    }
    net.start(1, 0);
    net.wait();
  }
  MOTIF_BENCH_REPORT(state);
}

void BM_ShortCircuitForkClose(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    rt::ShortCircuit sc;
    auto root = sc.root();
    std::vector<rt::ShortCircuit::Link> links;
    links.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) links.push_back(root.fork());
    root.close();
    for (auto& l : links) l.close();
    benchmark::DoNotOptimize(sc.done());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
  MOTIF_BENCH_REPORT(state);
}

}  // namespace

BENCHMARK(BM_ServerThroughput)->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_HaltLatency)->Arg(4)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_ShortCircuitForkClose)->Arg(1000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond)->MinTime(0.02);

BENCHMARK_MAIN();
