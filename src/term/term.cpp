#include "term/term.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace motif::term {

namespace detail {

struct Node {
  Tag tag;

  // Atom/Compound: functor; Var: source name; Str: contents.
  std::string text;
  std::vector<Term> args;
  std::int64_t i = 0;
  double f = 0.0;

  // Var-only state: single-assignment binding with waiter callbacks.
  // The mutex lives with the data it guards (CP.50).
  std::mutex var_m;
  std::optional<Term> binding;
  std::vector<std::function<void()>> waiters;
};

}  // namespace detail

using detail::Node;
using detail::NodePtr;

namespace {
const std::string kNilName = "[]";
const std::string kConsName = ".";
const std::string kTupleName = "{}";

NodePtr make(Tag t) {
  auto n = std::make_shared<Node>();
  n->tag = t;
  return n;
}
}  // namespace

Term::Term() : n_(nullptr) { *this = nil(); }

Term Term::var(std::string name) {
  auto n = make(Tag::Var);
  n->text = std::move(name);
  return Term(std::move(n));
}

Term Term::atom(std::string name) {
  auto n = make(Tag::Atom);
  n->text = std::move(name);
  return Term(std::move(n));
}

Term Term::integer(std::int64_t v) {
  auto n = make(Tag::Int);
  n->i = v;
  return Term(std::move(n));
}

Term Term::real(double v) {
  auto n = make(Tag::Float);
  n->f = v;
  return Term(std::move(n));
}

Term Term::str(std::string v) {
  auto n = make(Tag::Str);
  n->text = std::move(v);
  return Term(std::move(n));
}

Term Term::compound(std::string functor, std::vector<Term> args) {
  if (args.empty()) return atom(std::move(functor));
  auto n = make(Tag::Compound);
  n->text = std::move(functor);
  n->args = std::move(args);
  return Term(std::move(n));
}

Term Term::tuple(std::vector<Term> args) {
  auto n = make(Tag::Compound);
  n->text = kTupleName;
  n->args = std::move(args);
  return Term(std::move(n));
}

Term Term::nil() { return atom(kNilName); }

Term Term::cons(Term head, Term tail) {
  return compound(kConsName, {std::move(head), std::move(tail)});
}

Term Term::list(std::vector<Term> items, Term tail) {
  Term out = std::move(tail);
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    out = cons(*it, out);
  }
  return out;
}

Term Term::deref() const {
  Term cur = *this;
  for (;;) {
    if (cur.n_->tag != Tag::Var) return cur;
    std::lock_guard lock(cur.n_->var_m);
    if (!cur.n_->binding.has_value()) return cur;
    Term next = *cur.n_->binding;
    // Unlock before following (lock_guard scope ends with the iteration).
    cur = next;
  }
}

Tag Term::tag() const { return deref().n_->tag; }

bool Term::is_nil() const {
  Term d = deref();
  return d.n_->tag == Tag::Atom && d.n_->text == kNilName;
}

bool Term::is_cons() const {
  Term d = deref();
  return d.n_->tag == Tag::Compound && d.n_->text == kConsName &&
         d.n_->args.size() == 2;
}

bool Term::is_tuple() const {
  Term d = deref();
  return d.n_->tag == Tag::Compound && d.n_->text == kTupleName;
}

const std::string& Term::functor() const {
  Term d = deref();
  if (d.n_->tag != Tag::Atom && d.n_->tag != Tag::Compound) {
    throw std::logic_error("functor() on non-atom/compound: " + to_string());
  }
  return d.n_->text;
}

std::size_t Term::arity() const {
  Term d = deref();
  if (d.n_->tag == Tag::Atom) return 0;
  if (d.n_->tag == Tag::Compound) return d.n_->args.size();
  throw std::logic_error("arity() on non-atom/compound: " + to_string());
}

const std::vector<Term>& Term::args() const {
  static const std::vector<Term> kEmpty;
  Term d = deref();
  if (d.n_->tag == Tag::Atom) return kEmpty;
  if (d.n_->tag != Tag::Compound) {
    throw std::logic_error("args() on non-compound: " + to_string());
  }
  // Safe: the node is immutable and shared; the caller's Term keeps a
  // reference to a node on the same structure.
  return d.n_->args;
}

Term Term::arg(std::size_t i) const {
  const auto& a = args();
  if (i >= a.size()) throw std::out_of_range("term arg index");
  return a[i];
}

std::int64_t Term::int_value() const {
  Term d = deref();
  if (d.n_->tag != Tag::Int) throw std::logic_error("not an integer: " + to_string());
  return d.n_->i;
}

double Term::float_value() const {
  Term d = deref();
  if (d.n_->tag != Tag::Float) throw std::logic_error("not a float: " + to_string());
  return d.n_->f;
}

double Term::as_double() const {
  Term d = deref();
  if (d.n_->tag == Tag::Int) return static_cast<double>(d.n_->i);
  if (d.n_->tag == Tag::Float) return d.n_->f;
  throw std::logic_error("not a number: " + to_string());
}

const std::string& Term::str_value() const {
  Term d = deref();
  if (d.n_->tag != Tag::Str) throw std::logic_error("not a string: " + to_string());
  return d.n_->text;
}

const std::string& Term::var_name() const {
  Term d = deref();
  if (d.n_->tag != Tag::Var) throw std::logic_error("not a variable: " + to_string());
  return d.n_->text;
}

std::optional<std::vector<Term>> Term::proper_list() const {
  std::vector<Term> out;
  Term cur = deref();
  while (cur.is_cons()) {
    out.push_back(cur.arg(0));
    cur = cur.arg(1).deref();
  }
  if (!cur.is_nil()) return std::nullopt;
  return out;
}

void Term::bind(Term value) const {
  Term self = deref();
  if (self.n_->tag != Tag::Var) {
    throw BindError("bind target already has a value: " + self.to_string());
  }
  Term v = value.deref();
  if (v.n_ == self.n_) {
    // X := X is a no-op alias; Strand treats it as already satisfied.
    return;
  }
  std::vector<std::function<void()>> waiters;
  {
    std::lock_guard lock(self.n_->var_m);
    if (self.n_->binding.has_value()) {
      throw BindError("variable " + self.n_->text + " bound twice");
    }
    self.n_->binding.emplace(std::move(v));
    waiters.swap(self.n_->waiters);
  }
  for (auto& w : waiters) w();
}

void Term::when_bound(std::function<void()> f) const {
  Term self = deref();
  if (self.n_->tag != Tag::Var) {
    f();
    return;
  }
  {
    std::lock_guard lock(self.n_->var_m);
    if (!self.n_->binding.has_value()) {
      self.n_->waiters.emplace_back(std::move(f));
      return;
    }
  }
  f();
}

bool Term::equals(const Term& other) const {
  Term a = deref(), b = other.deref();
  if (a.n_ == b.n_) return true;
  if (a.n_->tag != b.n_->tag) return false;
  switch (a.n_->tag) {
    case Tag::Var:
      return false;  // distinct unbound vars
    case Tag::Atom:
      return a.n_->text == b.n_->text;
    case Tag::Int:
      return a.n_->i == b.n_->i;
    case Tag::Float:
      return a.n_->f == b.n_->f;
    case Tag::Str:
      return a.n_->text == b.n_->text;
    case Tag::Compound: {
      if (a.n_->text != b.n_->text || a.n_->args.size() != b.n_->args.size())
        return false;
      for (std::size_t i = 0; i < a.n_->args.size(); ++i) {
        if (!a.n_->args[i].equals(b.n_->args[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool Term::ground() const {
  Term d = deref();
  switch (d.n_->tag) {
    case Tag::Var:
      return false;
    case Tag::Compound:
      return std::all_of(d.n_->args.begin(), d.n_->args.end(),
                         [](const Term& t) { return t.ground(); });
    default:
      return true;
  }
}

namespace {
void collect_vars(const Term& t, std::vector<Term>& out,
                  std::unordered_set<const void*>& seen) {
  Term d = t.deref();
  if (d.is_var()) {
    const void* key = static_cast<const void*>(&d.var_name());
    // var_name() returns a reference into the node; its address identifies
    // the node without exposing internals.
    if (seen.insert(key).second) out.push_back(d);
    return;
  }
  if (d.is_compound()) {
    for (const auto& a : d.args()) collect_vars(a, out, seen);
  }
}
}  // namespace

std::vector<Term> Term::variables() const {
  std::vector<Term> out;
  std::unordered_set<const void*> seen;
  collect_vars(*this, out, seen);
  return out;
}

namespace {

bool atom_needs_quotes(const std::string& s) {
  if (s.empty()) return true;
  if (s == kNilName || s == kTupleName) return false;
  static const std::string kSymbolic = "+-*/\\^<>=~:.?@#&$";
  const bool sym0 = kSymbolic.find(s[0]) != std::string::npos;
  if (sym0) {
    return !std::all_of(s.begin(), s.end(), [&](char c) {
      return kSymbolic.find(c) != std::string::npos;
    });
  }
  if (!(s[0] >= 'a' && s[0] <= 'z')) return true;
  return !std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  });
}

void print(const Term& t, std::ostream& os) {
  Term d = t.deref();
  switch (d.tag()) {
    case Tag::Var:
      os << d.var_name();
      return;
    case Tag::Int:
      os << d.int_value();
      return;
    case Tag::Float: {
      std::ostringstream tmp;
      tmp << d.float_value();
      std::string s = tmp.str();
      // Keep floats re-readable as floats.
      if (s.find_first_of(".eE") == std::string::npos) s += ".0";
      os << s;
      return;
    }
    case Tag::Str:
      os << '"';
      for (char c : d.str_value()) {
        if (c == '"' || c == '\\') os << '\\';
        os << c;
      }
      os << '"';
      return;
    case Tag::Atom: {
      const std::string& name = d.functor();
      if (atom_needs_quotes(name)) {
        os << '\'';
        for (char c : name) {
          if (c == '\'' || c == '\\') os << '\\';
          os << c;
        }
        os << '\'';
      } else {
        os << name;
      }
      return;
    }
    case Tag::Compound: {
      if (d.is_cons()) {
        os << '[';
        print(d.arg(0), os);
        Term cur = d.arg(1).deref();
        while (cur.is_cons()) {
          os << ',';
          print(cur.arg(0), os);
          cur = cur.arg(1).deref();
        }
        if (!cur.is_nil()) {
          os << '|';
          print(cur, os);
        }
        os << ']';
        return;
      }
      if (d.is_tuple()) {
        os << '{';
        for (std::size_t i = 0; i < d.arity(); ++i) {
          if (i) os << ',';
          print(d.arg(i), os);
        }
        os << '}';
        return;
      }
      Term functor_as_atom = Term::atom(d.functor());
      print(functor_as_atom, os);
      os << '(';
      for (std::size_t i = 0; i < d.arity(); ++i) {
        if (i) os << ',';
        print(d.arg(i), os);
      }
      os << ')';
      return;
    }
  }
}

}  // namespace

std::string Term::to_string() const {
  std::ostringstream os;
  print(*this, os);
  return os.str();
}

}  // namespace motif::term
