// Deterministic pseudo-random number generation for the motif runtime.
//
// Each virtual node of a Machine owns one Rng, seeded from the machine seed
// and the node id, so runs are reproducible for a fixed (seed, node count)
// regardless of how many OS worker threads execute the node pool.
//
// The generator is xoshiro256** (public-domain algorithm by Blackman and
// Vigna), seeded through splitmix64 as its authors recommend.
#pragma once

#include <cstdint>

namespace motif::rt {

/// splitmix64 step: returns the next value of the sequence and advances `x`.
std::uint64_t splitmix64(std::uint64_t& x);

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, n), n > 0. Uses Lemire's multiply-shift method
  /// with rejection, so the result is exactly uniform.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda);

  /// Pareto (heavy-tailed) sample with scale xm > 0 and shape alpha > 0.
  /// Used to model the paper's "time required at each node is non-uniform
  /// and cannot easily be predicted" workloads.
  double pareto(double xm, double alpha);

  /// True with probability p.
  bool bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace motif::rt
