// The grid motif (paper Sections 1 and 4; cf. the DIME mesh system): a
// 2-D heat-diffusion plate solved by Jacobi relaxation, with the motif
// owning decomposition, synchronisation and convergence.
//
// Build & run:   ./build/examples/heat_grid [rows] [cols]
#include <cstdio>
#include <cstdlib>

#include "motifs/grid.hpp"

namespace m = motif;
namespace rt = motif::rt;

int main(int argc, char** argv) {
  const std::size_t rows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 33;
  const std::size_t cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 65;

  rt::Machine machine({.nodes = 8, .workers = 2});
  m::Grid2D plate(rows, cols, 0.0);
  // Hot top edge, cold elsewhere.
  for (std::size_t c = 0; c < cols; ++c) plate.at(0, c) = 100.0;

  m::JacobiOptions opts;
  opts.max_iters = 50000;
  opts.tolerance = 1e-8;
  auto res = m::jacobi_solve(machine, plate, opts);

  std::printf("Jacobi: %s after %zu sweeps (residual %.2e)\n",
              res.converged ? "converged" : "NOT converged", res.iterations,
              res.residual);

  // ASCII isotherm rendering of the steady state.
  const char* shades = " .:-=+*#%@";
  for (std::size_t r = 0; r < rows; r += rows / 16 + 1) {
    for (std::size_t c = 0; c < cols; c += 2) {
      const int level =
          static_cast<int>(plate.at(r, c) / 100.0 * 9.0 + 0.5);
      std::putchar(shades[level < 0 ? 0 : (level > 9 ? 9 : level)]);
    }
    std::putchar('\n');
  }
  return res.converged ? 0 : 1;
}
