#include "interp/arith.hpp"

#include <algorithm>
#include <cmath>

namespace motif::interp {

using term::Term;

namespace {

bool is_evaluable_functor(const std::string& f, std::size_t arity) {
  if (arity == 2) {
    return f == "+" || f == "-" || f == "*" || f == "/" || f == "//" ||
           f == "mod" || f == "min" || f == "max";
  }
  if (arity == 1) return f == "abs" || f == "-";
  return false;
}

Number apply2(const std::string& op, const Number& a, const Number& b) {
  const bool both_int = std::holds_alternative<std::int64_t>(a) &&
                        std::holds_alternative<std::int64_t>(b);
  auto as_d = [](const Number& n) {
    return std::holds_alternative<std::int64_t>(n)
               ? static_cast<double>(std::get<std::int64_t>(n))
               : std::get<double>(n);
  };
  if (both_int) {
    const std::int64_t x = std::get<std::int64_t>(a);
    const std::int64_t y = std::get<std::int64_t>(b);
    if (op == "+") return x + y;
    if (op == "-") return x - y;
    if (op == "*") return x * y;
    if (op == "/" || op == "//") {
      if (y == 0) throw ArithError("division by zero");
      return x / y;
    }
    if (op == "mod") {
      if (y == 0) throw ArithError("mod by zero");
      return ((x % y) + y) % y;  // mathematical mod
    }
    if (op == "min") return std::min(x, y);
    if (op == "max") return std::max(x, y);
  } else {
    const double x = as_d(a), y = as_d(b);
    if (op == "+") return x + y;
    if (op == "-") return x - y;
    if (op == "*") return x * y;
    if (op == "/") {
      if (y == 0.0) throw ArithError("division by zero");
      return x / y;
    }
    if (op == "//") {
      if (y == 0.0) throw ArithError("division by zero");
      return std::trunc(x / y);
    }
    if (op == "mod") throw ArithError("mod needs integers");
    if (op == "min") return std::min(x, y);
    if (op == "max") return std::max(x, y);
  }
  throw ArithError("unknown arithmetic operator: " + op);
}

}  // namespace

bool looks_arithmetic(const Term& t) {
  Term d = t.deref();
  // A bare variable is NOT treated as arithmetic: `X := Y` aliases.
  if (d.is_var()) return false;
  if (d.is_number()) return true;
  if (d.is_compound() && !d.is_cons() && !d.is_tuple()) {
    return is_evaluable_functor(d.functor(), d.arity());
  }
  return false;
}

ArithResult eval_arith(const Term& t) {
  Term d = t.deref();
  if (d.is_var()) return Suspended{d};
  if (d.is_int()) return Number{d.int_value()};
  if (d.is_float()) return Number{d.float_value()};
  if (d.is_compound() && is_evaluable_functor(d.functor(), d.arity())) {
    if (d.arity() == 1) {
      auto a = eval_arith(d.arg(0));
      if (std::holds_alternative<Suspended>(a)) return a;
      const Number& n = std::get<Number>(a);
      if (d.functor() == "abs") {
        if (std::holds_alternative<std::int64_t>(n)) {
          return Number{std::abs(std::get<std::int64_t>(n))};
        }
        return Number{std::fabs(std::get<double>(n))};
      }
      // unary minus
      if (std::holds_alternative<std::int64_t>(n)) {
        return Number{-std::get<std::int64_t>(n)};
      }
      return Number{-std::get<double>(n)};
    }
    auto a = eval_arith(d.arg(0));
    if (std::holds_alternative<Suspended>(a)) return a;
    auto b = eval_arith(d.arg(1));
    if (std::holds_alternative<Suspended>(b)) return b;
    return apply2(d.functor(), std::get<Number>(a), std::get<Number>(b));
  }
  throw ArithError("not an arithmetic expression: " + d.to_string());
}

Term number_to_term(const Number& n) {
  if (std::holds_alternative<std::int64_t>(n)) {
    return Term::integer(std::get<std::int64_t>(n));
  }
  return Term::real(std::get<double>(n));
}

bool number_less(const Number& a, const Number& b) {
  auto as_d = [](const Number& n) {
    return std::holds_alternative<std::int64_t>(n)
               ? static_cast<double>(std::get<std::int64_t>(n))
               : std::get<double>(n);
  };
  if (std::holds_alternative<std::int64_t>(a) &&
      std::holds_alternative<std::int64_t>(b)) {
    return std::get<std::int64_t>(a) < std::get<std::int64_t>(b);
  }
  return as_d(a) < as_d(b);
}

bool number_equal(const Number& a, const Number& b) {
  return !number_less(a, b) && !number_less(b, a);
}

namespace {

/// Structural ==/=\= that suspends on the first unbound variable pair
/// preventing a decision.
GuardResult struct_equal(const Term& a, const Term& b) {
  Term x = a.deref(), y = b.deref();
  if (x.is_var() && y.is_var() && x.same_node(y)) return {Truth::Yes, {}};
  if (x.is_var()) return {Truth::Suspend, x};
  if (y.is_var()) return {Truth::Suspend, y};
  if (x.is_number() && y.is_number()) {
    bool eq = x.is_int() == y.is_int() &&
              (x.is_int() ? x.int_value() == y.int_value()
                          : x.float_value() == y.float_value());
    return {eq ? Truth::Yes : Truth::No, {}};
  }
  if (x.tag() != y.tag()) return {Truth::No, {}};
  switch (x.tag()) {
    case term::Tag::Atom:
      return {x.functor() == y.functor() ? Truth::Yes : Truth::No, {}};
    case term::Tag::Str:
      return {x.str_value() == y.str_value() ? Truth::Yes : Truth::No, {}};
    case term::Tag::Compound: {
      if (x.functor() != y.functor() || x.arity() != y.arity()) {
        return {Truth::No, {}};
      }
      for (std::size_t i = 0; i < x.arity(); ++i) {
        auto r = struct_equal(x.arg(i), y.arg(i));
        if (r.truth != Truth::Yes) return r;
      }
      return {Truth::Yes, {}};
    }
    default:
      return {Truth::No, {}};
  }
}

}  // namespace

GuardResult eval_comparison(const std::string& op, const Term& lhs,
                            const Term& rhs) {
  if (op == "==" || op == "\\==") {
    // Structural comparison with suspension (Strand's ==).
    auto r = struct_equal(lhs, rhs);
    if (r.truth == Truth::Suspend) return r;
    const bool want_equal = (op == "==");
    const bool eq = (r.truth == Truth::Yes);
    return {eq == want_equal ? Truth::Yes : Truth::No, {}};
  }
  auto a = eval_arith(lhs);
  if (std::holds_alternative<Suspended>(a)) {
    return {Truth::Suspend, std::get<Suspended>(a).var};
  }
  auto b = eval_arith(rhs);
  if (std::holds_alternative<Suspended>(b)) {
    return {Truth::Suspend, std::get<Suspended>(b).var};
  }
  const Number& x = std::get<Number>(a);
  const Number& y = std::get<Number>(b);
  bool r;
  if (op == "<") {
    r = number_less(x, y);
  } else if (op == ">") {
    r = number_less(y, x);
  } else if (op == "=<") {
    r = !number_less(y, x);
  } else if (op == ">=") {
    r = !number_less(x, y);
  } else if (op == "=:=") {
    r = number_equal(x, y);
  } else if (op == "=\\=") {
    r = !number_equal(x, y);
  } else {
    throw ArithError("unknown comparison: " + op);
  }
  return {r ? Truth::Yes : Truth::No, {}};
}

std::optional<GuardResult> eval_type_test(const std::string& name,
                                          const Term& arg) {
  Term d = arg.deref();
  auto need_data = [&](auto pred) -> GuardResult {
    if (d.is_var()) return {Truth::Suspend, d};
    return {pred() ? Truth::Yes : Truth::No, {}};
  };
  if (name == "integer") return need_data([&] { return d.is_int(); });
  if (name == "float") return need_data([&] { return d.is_float(); });
  if (name == "number") return need_data([&] { return d.is_number(); });
  if (name == "string") return need_data([&] { return d.is_str(); });
  if (name == "atom") return need_data([&] { return d.is_atom(); });
  if (name == "list") return need_data([&] { return d.is_list_cell(); });
  if (name == "tuple") return need_data([&] { return d.is_tuple(); });
  if (name == "compound") return need_data([&] { return d.is_compound(); });
  if (name == "data") return need_data([] { return true; });
  return std::nullopt;
}

}  // namespace motif::interp
