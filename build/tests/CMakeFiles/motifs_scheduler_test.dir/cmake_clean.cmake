file(REMOVE_RECURSE
  "CMakeFiles/motifs_scheduler_test.dir/motifs_scheduler_test.cpp.o"
  "CMakeFiles/motifs_scheduler_test.dir/motifs_scheduler_test.cpp.o.d"
  "motifs_scheduler_test"
  "motifs_scheduler_test.pdb"
  "motifs_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifs_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
