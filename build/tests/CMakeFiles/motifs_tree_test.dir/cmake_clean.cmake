file(REMOVE_RECURSE
  "CMakeFiles/motifs_tree_test.dir/motifs_tree_test.cpp.o"
  "CMakeFiles/motifs_tree_test.dir/motifs_tree_test.cpp.o.d"
  "motifs_tree_test"
  "motifs_tree_test.pdb"
  "motifs_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifs_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
