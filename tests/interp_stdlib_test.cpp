// The high-level standard library, including the concurrent quicksort,
// plus interpreter stress tests (deep cross-node recursion, port storms,
// suspension floods).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "interp/interp.hpp"
#include "interp/stdlib.hpp"
#include "term/parser.hpp"

namespace in = motif::interp;
using in::Interp;
using in::InterpOptions;
using motif::term::parse_term;
using motif::term::Program;
using motif::term::Term;

namespace {
InterpOptions small() {
  InterpOptions o;
  o.nodes = 2;
  o.workers = 2;
  return o;
}

Interp lib_interp(const std::string& extra = "") {
  return Interp(Program::parse(extra).linked_with(in::stdlib()), small());
}

std::string int_list(const std::vector<int>& xs) {
  std::string s = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(xs[i]);
  }
  return s + "]";
}
}  // namespace

TEST(Stdlib, Append) {
  auto i = lib_interp();
  auto [g, r] = i.run_query("append([1,2],[3,4],Z)");
  EXPECT_TRUE(g.arg(2) == parse_term("[1,2,3,4]"));
}

TEST(Stdlib, AppendEmptyCases) {
  auto i = lib_interp();
  EXPECT_TRUE(i.run_query("append([],[a],Z)").first.arg(2) ==
              parse_term("[a]"));
  EXPECT_TRUE(i.run_query("append([a],[],Z)").first.arg(2) ==
              parse_term("[a]"));
  EXPECT_TRUE(i.run_query("append([],[],Z)").first.arg(2).is_nil());
}

TEST(Stdlib, AppendStreamsIncrementally) {
  // append with an unbound first list produces output as input arrives.
  auto i = lib_interp(
      "go(Z) :- append(Xs, [end], Z), feed(Xs).\n"
      "feed(Xs) :- Xs := [1|Xs1], Xs1 := [2|Xs2], Xs2 := [].");
  auto [g, r] = i.run_query("go(Z)");
  EXPECT_TRUE(g.arg(0) == parse_term("[1,2,end]"));
}

TEST(Stdlib, Reverse) {
  auto i = lib_interp();
  EXPECT_TRUE(i.run_query("reverse([1,2,3],Z)").first.arg(1) ==
              parse_term("[3,2,1]"));
  EXPECT_TRUE(i.run_query("reverse([],Z)").first.arg(1).is_nil());
}

TEST(Stdlib, LenSumMax) {
  auto i = lib_interp();
  EXPECT_EQ(i.run_query("len([a,b,c],N)").first.arg(1).int_value(), 3);
  EXPECT_EQ(i.run_query("sum_list([1,2,3,4],S)").first.arg(1).int_value(),
            10);
  EXPECT_EQ(i.run_query("max_list([3,9,2,9,1],M)").first.arg(1).int_value(),
            9);
  EXPECT_EQ(i.run_query("max_list([7],M)").first.arg(1).int_value(), 7);
}

TEST(Stdlib, NthAndLast) {
  auto i = lib_interp();
  EXPECT_EQ(i.run_query("nth(2,[a,b,c],Y)").first.arg(2).functor(), "b");
  EXPECT_EQ(i.run_query("nth(1,[a,b],Y)").first.arg(2).functor(), "a");
  EXPECT_EQ(i.run_query("last([x,y,z],Y)").first.arg(1).functor(), "z");
  EXPECT_EQ(i.run_query("last([solo],Y)").first.arg(1).functor(), "solo");
}

TEST(Stdlib, QsortSmall) {
  auto i = lib_interp();
  EXPECT_TRUE(i.run_query("qsort([3,1,2],S)").first.arg(1) ==
              parse_term("[1,2,3]"));
  EXPECT_TRUE(i.run_query("qsort([],S)").first.arg(1).is_nil());
  EXPECT_TRUE(i.run_query("qsort([5],S)").first.arg(1) ==
              parse_term("[5]"));
  EXPECT_TRUE(i.run_query("qsort([2,2,1,2],S)").first.arg(1) ==
              parse_term("[1,2,2,2]"));
}

TEST(Stdlib, QsortRandomListsMatchStdSort) {
  motif::rt::Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    std::vector<int> xs(40);
    for (auto& x : xs) x = static_cast<int>(rng.below(100));
    auto sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    auto i = lib_interp();
    auto [g, r] = i.run_query("qsort(" + int_list(xs) + ",S)");
    EXPECT_TRUE(g.arg(1) == parse_term(int_list(sorted)))
        << "round " << round;
  }
}

TEST(Stdlib, QsortDescendingWorstCase) {
  std::vector<int> xs(60);
  for (int k = 0; k < 60; ++k) xs[static_cast<std::size_t>(k)] = 60 - k;
  std::vector<int> sorted(60);
  for (int k = 0; k < 60; ++k) sorted[static_cast<std::size_t>(k)] = k + 1;
  auto i = lib_interp();
  auto [g, r] = i.run_query("qsort(" + int_list(xs) + ",S)");
  EXPECT_TRUE(g.arg(1) == parse_term(int_list(sorted)));
}

// ---- stress -----------------------------------------------------------------

TEST(InterpStress, DeepCrossNodeRecursion) {
  InterpOptions o;
  o.nodes = 8;
  o.workers = 2;
  Interp i(Program::parse(
      "bounce(0, R) :- R := done.\n"
      "bounce(N, R) :- N > 0 | N1 is N - 1, bounce(N1, R)@random."),
      o);
  auto [g, r] = i.run_query("bounce(20000, R)");
  EXPECT_EQ(g.arg(1).functor(), "done");
  EXPECT_GT(r.load.remote_msgs, 10000u);
}

TEST(InterpStress, WideFanout) {
  Interp i(Program::parse(
      "fan(0, L) :- L := [].\n"
      "fan(N, L) :- N > 0 | L := [X|L1], leafwork(X)@random, "
      "N1 is N - 1, fan(N1, L1).\n"
      "leafwork(X) :- X := ok."),
      {.nodes = 8, .workers = 2, .seed = 1, .tail_budget = 64});
  auto [g, r] = i.run_query("fan(5000, L)");
  auto xs = g.arg(1).proper_list();
  ASSERT_TRUE(xs.has_value());
  EXPECT_EQ(xs->size(), 5000u);
  EXPECT_FALSE(r.deadlocked());
}

TEST(InterpStress, SuspensionFlood) {
  // 2000 consumers suspend on one variable; a single producer wakes all.
  Interp i(Program::parse(
      "go(N, V) :- spawn_waiters(N, V, Ls), release(V), check(Ls).\n"
      "spawn_waiters(0, _, Ls) :- Ls := [].\n"
      "spawn_waiters(N, V, Ls) :- N > 0 | Ls := [L|Ls1], waiter(V, L), "
      "N1 is N - 1, spawn_waiters(N1, V, Ls1).\n"
      "waiter(V, L) :- data(V) | L := woke.\n"
      "release(V) :- V := go_signal.\n"
      "check([]).\n"
      "check([L|Ls]) :- data(L) | check(Ls)."),
      small());
  auto [g, r] = i.run_query("go(2000, V)");
  EXPECT_FALSE(r.deadlocked());
}

TEST(InterpStress, PortMessageStorm) {
  // Many producers hammer one port; the consumer must see every message.
  Interp i(Program::parse(
      "go(N, Total) :- make_ports(1, [P], [In]), make_tuple([P], DT), "
      "spawn_senders(N, DT), count(In, N, 0, Total).\n"
      "spawn_senders(0, _).\n"
      "spawn_senders(N, DT) :- N > 0 | "
      "send_one(DT)@random, N1 is N - 1, spawn_senders(N1, DT).\n"
      "send_one(DT) :- distribute(1, ping, DT).\n"
      "count(_, 0, Acc, Total) :- Total := Acc.\n"
      "count([ping|In], N, Acc, Total) :- N > 0 | "
      "N1 is N - 1, Acc1 is Acc + 1, count(In, N1, Acc1, Total)."),
      {.nodes = 8, .workers = 2, .seed = 3, .tail_budget = 64});
  auto [g, r] = i.run_query("go(3000, Total)");
  EXPECT_EQ(g.arg(1).int_value(), 3000);
  EXPECT_FALSE(r.deadlocked());
}

TEST(InterpStress, ManySmallQueriesOnOneInterp) {
  auto i = lib_interp();
  for (int k = 0; k < 200; ++k) {
    auto [g, r] = i.run_query("sum_list([" + std::to_string(k) + "," +
                              std::to_string(k) + "],S)");
    EXPECT_EQ(g.arg(1).int_value(), 2 * k);
  }
}
