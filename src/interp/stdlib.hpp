// A small standard library for the high-level language — the paper's
// point that motif/library code in a readable concurrent language forms
// "archives of expertise that can be consulted, modified, and extended"
// (Section 1). Committed-choice list utilities plus a concurrent
// quicksort (the "sorting" motif area of Section 4, expressed at the
// language level: both partitions sort in parallel by dataflow).
#pragma once

#include "term/program.hpp"

namespace motif::interp {

/// append/3, reverse/2, len/2, sum_list/2, max_list/2, nth/3, last/2,
/// qsort/2 (and its helpers part/4). Link with user programs via
/// Program::linked_with.
term::Program stdlib();

}  // namespace motif::interp
