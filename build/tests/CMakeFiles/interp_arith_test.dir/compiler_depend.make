# Empty compiler generated dependencies file for interp_arith_test.
# This may be replaced when dependencies are built.
