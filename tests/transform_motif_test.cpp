// The motif algebra: M(A) = T(A) ∪ L and composition
// (M2 ∘ M1)(A) = T2(T1(A) ∪ L1) ∪ L2 (paper Section 2.2).
#include "transform/motif.hpp"

#include <gtest/gtest.h>

#include "term/subst.hpp"

namespace tf = motif::transform;
namespace t = motif::term;
using t::Program;

namespace {
// A toy transformation: renames process p/1 to q/1 (heads and calls).
tf::Transform rename_p_to_q() {
  return [](const Program& a) {
    Program out;
    for (auto c : a.clauses()) {
      auto fix = [](const t::Term& x) -> std::optional<t::Term> {
        if (x.is_compound() && x.functor() == "p" && x.arity() == 1) {
          return t::Term::compound("q", {x.arg(0)});
        }
        return std::nullopt;
      };
      c.head = t::rewrite(c.head, fix);
      for (auto& g : c.body) g = t::rewrite(g, fix);
      out.add(c);
    }
    return out;
  };
}
}  // namespace

TEST(Motif, ApplyIsTransformThenLink) {
  tf::Motif m("M", rename_p_to_q(), Program::parse("lib(1)."));
  Program a = Program::parse("main :- p(1).\np(X) :- done(X).");
  Program out = m.apply(a);
  EXPECT_TRUE(out.defines({"q", 1}));
  EXPECT_FALSE(out.defines({"p", 1}));
  EXPECT_TRUE(out.defines({"lib", 1}));
  // Library is appended after the transformed application.
  EXPECT_EQ(out.clauses().back().head.functor(), "lib");
}

TEST(Motif, IdentityMotifJustLinks) {
  tf::Motif m("L", tf::identity_transform(), Program::parse("extra."));
  Program a = Program::parse("main.");
  Program out = m.apply(a);
  EXPECT_EQ(out.clauses().size(), 2u);
  EXPECT_TRUE(out.alpha_equivalent(Program::parse("main.\nextra.")));
}

TEST(Motif, ComposeMatchesManualPipeline) {
  tf::Motif m1("M1", rename_p_to_q(), Program::parse("p(9)."));
  tf::Motif m2("M2", rename_p_to_q(), Program::parse("lib2."));
  Program a = Program::parse("main :- p(0).");
  // Manual: T2(T1(A) ∪ L1) ∪ L2.
  Program manual = m2.apply(m1.apply(a));
  Program composed = tf::compose(m2, m1).apply(a);
  EXPECT_TRUE(composed.alpha_equivalent(manual));
  // The library clause p(9) from M1 is itself transformed by T2 -> q(9):
  EXPECT_TRUE(composed.defines({"q", 1}));
  EXPECT_FALSE(composed.defines({"p", 1}));
}

TEST(Motif, ComposeAllRightmostFirst) {
  // compose_all({M2, M1}) must equal M2 ∘ M1.
  tf::Motif m1("M1", tf::identity_transform(), Program::parse("one."));
  tf::Motif m2("M2", tf::identity_transform(), Program::parse("two."));
  Program a = Program::parse("zero.");
  Program out = tf::compose_all({m2, m1}).apply(a);
  // Order: A, L1, L2.
  ASSERT_EQ(out.clauses().size(), 3u);
  EXPECT_EQ(out.clauses()[0].head.functor(), "zero");
  EXPECT_EQ(out.clauses()[1].head.functor(), "one");
  EXPECT_EQ(out.clauses()[2].head.functor(), "two");
}

TEST(Motif, ComposeAllEmptyIsIdentity) {
  Program a = Program::parse("x.");
  EXPECT_TRUE(tf::compose_all({}).apply(a).alpha_equivalent(a));
}

TEST(Motif, ComposedNameMentionsBoth) {
  tf::Motif m1("Inner", tf::identity_transform(), Program{});
  tf::Motif m2("Outer", tf::identity_transform(), Program{});
  EXPECT_EQ(tf::compose(m2, m1).name(), "Outer o Inner");
}

TEST(FreshVarName, AvoidsClauseVariables) {
  auto cs = t::parse_clauses("p(DT,N) :- q(DT1,N).");
  EXPECT_EQ(tf::fresh_var_name(cs[0], "DT"), "DT2");
  EXPECT_EQ(tf::fresh_var_name(cs[0], "N"), "N1");
  EXPECT_EQ(tf::fresh_var_name(cs[0], "X"), "X");
}

TEST(FreshNamer, SequentialRequestsStayDistinct) {
  auto cs = t::parse_clauses("p(X) :- q(X).");
  tf::FreshNamer namer(cs[0]);
  auto a = namer.fresh("N");
  auto b = namer.fresh("N");
  auto c = namer.fresh("N");
  EXPECT_EQ(a.var_name(), "N");
  EXPECT_EQ(b.var_name(), "N1");
  EXPECT_EQ(c.var_name(), "N2");
  EXPECT_FALSE(a.same_node(b));
}
