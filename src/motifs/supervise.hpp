// Supervision: retry-with-backoff around any motif invocation, turning
// the runtime's classified RunOutcomes (runtime/fault.hpp) into a policy.
//
// The paper presents motifs as "archives of expertise" — but expertise a
// user can adopt must include behaviour under partial failure, or the
// first lost message silently hangs the caller forever. A Supervised run
// launches the motif NON-blocking (the *_async variants return the result
// variable instead of waiting), bounds the wait with
// Machine::wait_idle_for, and on anything other than Completed:
//
//   1. abandons whatever the failed attempt left queued,
//   2. revives killed nodes and reseeds the fault plan (a probabilistic
//      fault need not recur; an exact-count kill cannot re-fire),
//   3. backs off (doubling) and starts a fresh attempt — fresh SVars,
//      fresh messages, so the "at most one communication per offspring
//      pair" invariant of Tree-Reduce-2 holds per attempt, not across
//      attempts (DESIGN.md §9).
//
// When attempts are exhausted the caller's `on_degrade` fallback may
// still produce a value (e.g. a cached or approximate result); otherwise
// the SupervisedResult reports the last classified outcome.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <utility>

#include "motifs/tree_reduce.hpp"
#include "runtime/fault.hpp"
#include "runtime/machine.hpp"
#include "runtime/svar.hpp"

namespace motif {

struct SuperviseOptions {
  std::uint32_t max_attempts = 3;
  /// Per-attempt deadline for wait_idle_for.
  std::chrono::nanoseconds deadline = std::chrono::milliseconds(2000);
  /// Sleep before the 2nd attempt; doubles each further attempt. Zero =
  /// immediate retry (the default: simulated faults need no cool-down).
  std::chrono::nanoseconds backoff = std::chrono::nanoseconds(0);
  /// Bring killed nodes back before each retry (and after exhaustion, so
  /// the machine is handed back usable).
  bool revive_lost_nodes = true;
  /// Re-derive the fault plan's seed per attempt (FaultPlan::reseeded) so
  /// probabilistic drop/dup/delay decisions differ across attempts.
  bool reseed_faults = true;
  /// Also retry when a task threw (injected or user error). When false a
  /// TaskFailed outcome ends the loop immediately.
  bool retry_on_task_failure = true;
};

/// Final verdict of a supervised run. `value` is set on success or when
/// on_degrade supplied a fallback (then `degraded` is true); `last` is
/// the classified outcome of the final attempt.
template <class T>
struct SupervisedResult {
  std::optional<T> value;
  std::uint32_t attempts = 0;
  rt::RunOutcome last;
  bool degraded = false;

  bool ok() const { return value.has_value(); }
};

/// Supervises one motif invocation on `m`.
///
/// Start: rt::SVar<T>(rt::Machine&, std::uint32_t attempt) — must LAUNCH
/// the work without blocking (use tree_reduce1_async / tree_reduce2_async
/// / wavefront_async or a hand-rolled post) and return the variable the
/// result will bind. Each call must create fresh SVars: an abandoned
/// attempt may still bind its own variables while being drained.
///
/// Classification refinement: a machine that quiesced cleanly but never
/// bound the result (a dropped or dead-dropped message ate a value) is
/// reported as Stalled — or NodeLost when nodes died — rather than the
/// Completed that wait_idle_for alone can see.
template <class T, class Start>
SupervisedResult<T> supervised(
    rt::Machine& m, Start start, SuperviseOptions opts = {},
    std::function<std::optional<T>(const rt::RunOutcome&)> on_degrade = {}) {
  SupervisedResult<T> res;
  const rt::FaultPlan base = m.fault_plan();
  const std::uint32_t max_attempts = std::max<std::uint32_t>(1, opts.max_attempts);
  auto backoff = opts.backoff;
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    res.attempts = attempt;
    if (attempt > 1) {
      m.abandon_pending();
      if (opts.reseed_faults && base.enabled()) {
        m.set_fault_plan(base.reseeded(attempt), opts.revive_lost_nodes);
      } else if (opts.revive_lost_nodes) {
        m.set_fault_plan(base, /*revive_dead=*/true);
      }
      if (backoff.count() > 0) {
        std::this_thread::sleep_for(backoff);
        backoff *= 2;
      }
    }
    rt::SVar<T> out = start(m, attempt);
    rt::RunOutcome o = m.wait_idle_for(opts.deadline);
    if (o.status == rt::RunStatus::Completed && !out.bound()) {
      // Quiesced without the answer: somewhere a message died.
      o.status = o.lost_nodes.empty() ? rt::RunStatus::Stalled
                                      : rt::RunStatus::NodeLost;
      for (const auto& name : rt::unbound_svar_names()) {
        if (!o.blocked_on.empty()) o.blocked_on += ", ";
        o.blocked_on += name;
      }
    }
    res.last = std::move(o);
    if (res.last.status == rt::RunStatus::Completed) {
      res.value = out.get();
      return res;
    }
    if (res.last.status == rt::RunStatus::TaskFailed &&
        !opts.retry_on_task_failure) {
      break;
    }
  }
  // Exhausted: hand the machine back quiet and (optionally) whole.
  m.abandon_pending();
  if (opts.revive_lost_nodes) m.set_fault_plan(base, /*revive_dead=*/true);
  if (on_degrade) {
    res.value = on_degrade(res.last);
    res.degraded = res.value.has_value();
  }
  return res;
}

/// Supervised Tree-Reduce-1: correct value despite node loss, message
/// loss, or injected task failure — within the retry budget.
template <class V, class Tag, class Eval>
SupervisedResult<V> supervised_tree_reduce1(
    rt::Machine& m, const typename Tree<V, Tag>::Ptr& tree, Eval eval,
    SuperviseOptions opts = {}, MapPolicy policy = MapPolicy::Random) {
  return supervised<V>(
      m,
      [&tree, &eval, policy](rt::Machine& mm, std::uint32_t) {
        return tree_reduce1_async<V, Tag>(mm, tree, eval, policy);
      },
      opts);
}

/// Supervised Tree-Reduce-2.
template <class V, class Tag, class Eval>
SupervisedResult<V> supervised_tree_reduce2(
    rt::Machine& m, const typename Tree<V, Tag>::Ptr& tree, Eval eval,
    SuperviseOptions opts = {}, LabelPolicy policy = LabelPolicy::Paper) {
  return supervised<V>(
      m,
      [&tree, &eval, policy](rt::Machine& mm, std::uint32_t) {
        return tree_reduce2_async<V, Tag>(mm, tree, eval, policy);
      },
      opts);
}

}  // namespace motif
