file(REMOVE_RECURSE
  "CMakeFiles/runtime_stream_test.dir/runtime_stream_test.cpp.o"
  "CMakeFiles/runtime_stream_test.dir/runtime_stream_test.cpp.o.d"
  "runtime_stream_test"
  "runtime_stream_test.pdb"
  "runtime_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
