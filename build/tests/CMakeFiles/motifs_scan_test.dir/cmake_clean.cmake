file(REMOVE_RECURSE
  "CMakeFiles/motifs_scan_test.dir/motifs_scan_test.cpp.o"
  "CMakeFiles/motifs_scan_test.dir/motifs_scan_test.cpp.o.d"
  "motifs_scan_test"
  "motifs_scan_test.pdb"
  "motifs_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifs_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
