// motiflint — a static analyzer for motif programs (term::Program).
//
// The paper's premise is that motifs are readable archives of expertise
// whose correctness hinges on Strand's single-assignment discipline and
// dataflow synchronisation. Those are source-level properties: a variable
// with two definite writers will raise a bind error at run time on some
// schedule; a variable that is consumed but has no possible producer is a
// guaranteed suspension (deadlock); a call to an undefined process fails
// on first reduction. This analyzer checks them before a program — and in
// particular a composed transformation output M(A) = T(A) ∪ L — ever
// runs.
//
// The core is a mode-inference fixpoint (infer_modes): for every defined
// process and argument position it computes whether some rule may WRITE
// the position (bind a caller's variable), may NEED it bound (head
// pattern, guard test, arithmetic), or may let it ESCAPE into a data
// structure whose eventual consumer is unknown. Variable occurrences in
// each clause are then classified against these modes and the builtin
// signature table (interp/builtins.hpp), and the checks read off the
// classification. Escapes deliberately count as "possibly produced" and
// never as "definitely written": the analysis over-approximates
// producibility (so no-producer diagnostics are real deadlocks) and
// under-approximates writers (so multiple-writer diagnostics are real
// races), at the cost of missing some violations — the right polarity for
// a linter.
//
// Exposed three ways: the motiflint CLI (tools/motiflint.cpp), the :lint
// command in motifsh, and transform::validate() which the transform test
// suites run on every T(A) ∪ L output.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "term/parser.hpp"
#include "term/program.hpp"

namespace motif::analysis {

enum class Severity { Warning, Error };

/// Stable diagnostic codes; the catalogue lives in LANGUAGE.md.
enum class Code {
  MultipleWriters,     // ML001: >1 potential writer (single-assignment)
  NoProducer,          // ML002: consumed, but nothing can ever bind it
  GuardUnbindable,     // ML003: guard waits on a non-head variable
  UnknownProcess,      // ML010: call to an undefined process
  ArityMismatch,       // ML011: name exists at a different arity
  BuiltinRedefined,    // ML012: rule head collides with a builtin
  UnreachableRule,     // ML020: subsumed by an earlier rule's head+guard
  UnreachableProcess,  // ML021: not reachable from any --entry
  OtherwisePosition,   // ML030: otherwise not alone/first in the guard
  SingletonVariable,   // ML031: named variable used exactly once
  BadPlacement,        // ML040: @ outside body position / bad node expr
  UnknownGuard,        // ML050: guard is not a recognised test
  NonProcessGoal,      // ML051: body goal is not callable (list, number..)
  UnsupervisedRemotePost,  // ML060: remote post with no supervision wrapper
};

const char* code_id(Code c);     // "ML001"
const char* code_slug(Code c);   // "multiple-writers"

struct Diagnostic {
  Code code = Code::UnknownProcess;
  Severity severity = Severity::Error;
  term::ProcKey definition;   // the definition whose rule is at fault
  std::size_t clause_index = 0;  // index into Program::clauses()
  std::size_t rule_index = 0;    // 0-based rule number within definition
  term::SourceSpan span;         // invalid for synthesized clauses
  std::string message;

  /// "2:1: error: ML001 multiple-writers: ... [p/2 rule 1]"
  std::string to_string() const;
};

struct Options {
  /// Roots for the reachability check (ML021). Empty = skip the check.
  std::vector<term::ProcKey> entries;
  /// Processes assumed defined elsewhere (e.g. supplied by a later link
  /// stage): calls to them are neither unknown nor mode-checked.
  std::vector<term::ProcKey> assume_defined;
  /// Emit ML031 singleton warnings.
  bool singletons = true;
  /// Emit ML060: a body goal posted with a placement annotation (`G@N`,
  /// `G@random`, ...) and no supervision/timeout wrapper around it. A
  /// remote post can be dropped or its node lost (runtime/fault.hpp), so
  /// library rules should run such goals under `supervised(G)` or
  /// `timeout(G, Budget)` — both scanned transparently when this check is
  /// on. Off by default: only code adopting the supervision discipline of
  /// DESIGN.md §9 should opt in.
  bool supervision = false;
};

struct Report {
  std::vector<Diagnostic> diagnostics;

  std::size_t errors() const;
  std::size_t warnings() const;
  bool ok() const { return errors() == 0; }      // may still have warnings
  bool clean() const { return diagnostics.empty(); }
  std::string to_string() const;                 // one line per diagnostic
};

/// Inferred modes of one defined process, per argument position.
struct ProcModes {
  std::vector<bool> writes;    // some rule definitely binds this position
  std::vector<bool> may_bind;  // writes, or escapes where it could be bound
  std::vector<bool> needs;     // some rule requires it bound to progress
};
using ModeTable = std::map<term::ProcKey, ProcModes>;

/// The mode-inference fixpoint on its own (exposed for tests and tools).
ModeTable infer_modes(const term::Program& program, const Options& = {});

/// Runs every check and returns the full report, program order.
Report analyze(const term::Program& program, const Options& = {});

}  // namespace motif::analysis
