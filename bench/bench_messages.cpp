// Experiment E3 (DESIGN.md §4): the Tree-Reduce-2 labelling guarantees
// that "an interprocessor communication is required for at most one of
// each node's offspring values" (Section 3.5).
//
// Series: random trees x processors {2..64}; reported per schedule:
//   remote_frac      — fraction of value deliveries crossing processors
//   remote_per_node  — remote deliveries per internal node (TR2 bound: 1)
// Schedules: TR2 with the paper labelling, TR2 with independent random
// labels (ablation), and TR1's machine-level remote messages for scale.
//
// Expected shape: paper labelling keeps remote_per_node <= 1 at every P;
// the ablation approaches 2*(1-1/P).
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "motifs/tree.hpp"
#include "motifs/tree_reduce.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

using IntTree = m::Tree<long, char>;

IntTree::Ptr make_tree(std::size_t leaves) {
  rt::Rng rng(4321);
  return m::random_tree<long, char>(
      rng, leaves, [](rt::Rng& r) { return long(r.below(10)); },
      [](rt::Rng&) { return '+'; });
}

long add(const char&, const long& a, const long& b) { return a + b; }

void run_tr2(benchmark::State& state, m::LabelPolicy policy) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const auto procs = static_cast<std::uint32_t>(state.range(1));
  auto tree = make_tree(leaves);
  const double internal = static_cast<double>(leaves - 1);
  m::TR2Stats stats;
  for (auto _ : state) {
    rt::Machine mach({.nodes = procs, .workers = 2, .seed = 5});
    benchmark::DoNotOptimize(
        m::tree_reduce2<long, char>(mach, tree, add, &stats, policy));
  }
  const double total =
      static_cast<double>(stats.local_values + stats.remote_values);
  state.counters["remote_frac"] =
      total > 0 ? static_cast<double>(stats.remote_values) / total : 0.0;
  state.counters["remote_per_node"] =
      static_cast<double>(stats.remote_values) / internal;
}

void BM_TR2_PaperLabels(benchmark::State& state) {
  run_tr2(state, m::LabelPolicy::Paper);
  MOTIF_BENCH_REPORT(state);
}

void BM_TR2_RandomLabels(benchmark::State& state) {
  run_tr2(state, m::LabelPolicy::IndependentRandom);
  MOTIF_BENCH_REPORT(state);
}

void BM_TR1_RemoteMessages(benchmark::State& state) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const auto procs = static_cast<std::uint32_t>(state.range(1));
  auto tree = make_tree(leaves);
  std::uint64_t remote = 0, total = 0;
  for (auto _ : state) {
    rt::Machine mach({.nodes = procs, .workers = 2, .seed = 5});
    benchmark::DoNotOptimize(m::tree_reduce1<long, char>(mach, tree, add));
    auto s = mach.load_summary();
    remote = s.remote_msgs;
    total = s.remote_msgs + s.local_msgs;
  }
  state.counters["remote_frac"] =
      total > 0 ? static_cast<double>(remote) / static_cast<double>(total)
                : 0.0;
  state.counters["remote_per_node"] =
      static_cast<double>(remote) / static_cast<double>(leaves - 1);
  MOTIF_BENCH_REPORT(state);
}

void args(benchmark::internal::Benchmark* b) {
  for (int leaves : {1024, 8192}) {
    for (int procs : {2, 4, 8, 16, 32, 64}) {
      b->Args({leaves, procs});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_TR2_PaperLabels)->Apply(args);
BENCHMARK(BM_TR2_RandomLabels)->Apply(args);
BENCHMARK(BM_TR1_RemoteMessages)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
