#include <gtest/gtest.h>

#include "align/profile.hpp"
#include "align/sequence.hpp"

namespace al = motif::align;
namespace rt = motif::rt;

TEST(Profile, FromSequence) {
  al::Profile p("ACGU");
  EXPECT_EQ(p.length(), 4u);
  EXPECT_EQ(p.depth(), 1u);
  EXPECT_FLOAT_EQ(p.column(0)[0], 1.0f);  // A
  EXPECT_FLOAT_EQ(p.column(1)[1], 1.0f);  // C
  EXPECT_FLOAT_EQ(p.column(2)[2], 1.0f);  // G
  EXPECT_FLOAT_EQ(p.column(3)[3], 1.0f);  // U
  EXPECT_EQ(p.consensus(), "ACGU");
}

TEST(Profile, SingleSequenceEntropyIsZero) {
  al::Profile p("ACGUACGU");
  EXPECT_DOUBLE_EQ(p.mean_entropy(), 0.0);
}

TEST(Profile, TracksLiveBytes) {
  rt::live_bytes().reset();
  {
    al::Profile p(std::string(1000, 'A'));
    EXPECT_GE(rt::live_bytes().current(),
              static_cast<std::int64_t>(1000 * sizeof(al::Column)));
  }
  EXPECT_EQ(rt::live_bytes().current(), 0);
}

TEST(ProfileAlign, IdenticalSequencesNoGaps) {
  al::Profile a("ACGUACGU"), b("ACGUACGU");
  auto merged = al::align_profiles(a, b);
  EXPECT_EQ(merged.length(), 8u);
  EXPECT_EQ(merged.depth(), 2u);
  EXPECT_EQ(merged.consensus(), "ACGUACGU");
  EXPECT_DOUBLE_EQ(merged.mean_entropy(), 0.0);
}

TEST(ProfileAlign, GapInsertedForDeletion) {
  al::Profile a("ACGU"), b("AGU");
  auto merged = al::align_profiles(a, b);
  EXPECT_EQ(merged.length(), 4u);
  // Column 1 holds C from a and a gap from b.
  EXPECT_FLOAT_EQ(merged.column(1)[1], 1.0f);
  EXPECT_FLOAT_EQ(merged.column(1)[4], 1.0f);
}

TEST(ProfileAlign, MatchesPairwiseNWForSingletons) {
  // Profile-profile alignment of two single-sequence profiles must place
  // gaps like plain NW (same DP, same scores).
  rt::Rng rng(11);
  for (int round = 0; round < 6; ++round) {
    auto sa = al::random_sequence(rng, 20 + rng.below(20));
    auto sb = al::evolve(sa, 4.0, {}, rng);
    auto nw = al::needleman_wunsch(sa, sb);
    auto merged = al::align_profiles(al::Profile(sa), al::Profile(sb));
    EXPECT_EQ(merged.length(), nw.aligned_a.size());
  }
}

TEST(ProfileAlign, DepthAccumulates) {
  al::Profile a("ACGU"), b("ACGU"), c("ACGU");
  auto ab = al::align_profiles(a, b);
  auto abc = al::align_profiles(ab, c);
  EXPECT_EQ(abc.depth(), 3u);
  // Column mass equals depth at every column.
  for (std::size_t i = 0; i < abc.length(); ++i) {
    float mass = 0;
    for (float f : abc.column(i)) mass += f;
    EXPECT_FLOAT_EQ(mass, 3.0f);
  }
}

TEST(ColumnScore, MatchBeatsMismatchBeatsGap) {
  al::NWParams p;
  al::Column a{1, 0, 0, 0, 0};  // A
  al::Column c{0, 1, 0, 0, 0};  // C
  al::Column g{0, 0, 0, 0, 1};  // gap
  EXPECT_GT(al::column_score(a, a, p), al::column_score(a, c, p));
  EXPECT_GT(al::column_score(a, c, p), al::column_score(a, g, p));
  EXPECT_DOUBLE_EQ(al::column_score(g, g, p), 0.0);
}

TEST(SumOfPairs, PerfectColumnsScoreHigher) {
  al::Profile a1("AAAA"), a2("AAAA");
  auto aligned = al::align_profiles(a1, a2);
  al::Profile b1("AAAA"), b2("CCCC");
  auto mixed = al::align_profiles(b1, b2);
  EXPECT_GT(al::sum_of_pairs(aligned), al::sum_of_pairs(mixed));
}

TEST(SumOfPairs, SingleSequenceIsZero) {
  al::Profile p("ACGU");
  EXPECT_DOUBLE_EQ(al::sum_of_pairs(p), 0.0);
}
