// Pipeline motif: the producer/consumer structure of the paper's
// Figure 1, generalised to a chain of stages connected by bounded
// channels. The bound plays the role of the sync acknowledgement: with
// capacity 1 the producer cannot run ahead of the consumer, exactly the
// synchronous coupling of Figure 1.
//
// Stages run on dedicated OS threads (they block on channels, which
// Machine tasks must never do) — the conventional-threads counterpart to
// the stream-based interpreter version tested in interp_figures_test.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/channel.hpp"
#include "runtime/trace.hpp"

namespace motif {

template <class T>
class Pipeline {
 public:
  /// Produces items until it returns nullopt.
  using Source = std::function<std::optional<T>()>;
  /// Transforms one item (1-in/1-out stage).
  using Stage = std::function<T(T)>;
  /// Consumes items.
  using Sink = std::function<void(T)>;

  explicit Pipeline(std::size_t channel_capacity = 1)
      : capacity_(channel_capacity) {}

  Pipeline& source(Source s) {
    source_ = std::move(s);
    return *this;
  }
  Pipeline& stage(Stage s) {
    stages_.push_back(std::move(s));
    return *this;
  }
  Pipeline& sink(Sink s) {
    sink_ = std::move(s);
    return *this;
  }

  /// Attaches a tracer: run() registers one track per stage thread
  /// ("pipe.source", "pipe.stage1", ..., "pipe.sink") and emits a span
  /// per item, so stage occupancy and the capacity-1 lockstep coupling
  /// are visible on a timeline. The tracer must outlive run(); pass
  /// nullptr to detach. The caller starts/stops/drains it.
  Pipeline& trace_into(rt::Tracer* t) {
    tracer_ = t;
    return *this;
  }

  /// Runs to completion (source exhausted, all items through the sink).
  /// Returns the number of items processed. A throwing source, stage or
  /// sink does NOT terminate the process: the failing thread closes its
  /// channels so the rest of the chain unwinds, and run() rethrows the
  /// first exception after every stage thread has joined.
  std::size_t run() {
    if (!source_ || !sink_) {
      throw std::logic_error("pipeline needs a source and a sink");
    }
    const std::size_t n_channels = stages_.size() + 1;
    std::vector<std::unique_ptr<rt::Channel<T>>> chans;
    chans.reserve(n_channels);
    for (std::size_t i = 0; i < n_channels; ++i) {
      chans.push_back(std::make_unique<rt::Channel<T>>(capacity_));
    }
    std::size_t count = 0;
    std::mutex err_m;
    std::exception_ptr first_err;
    auto capture = [&err_m, &first_err] {
      std::lock_guard lock(err_m);
      if (!first_err) first_err = std::current_exception();
    };
    // Each stage thread is the single writer of its own trace track.
    std::vector<std::uint32_t> tracks;
    if (tracer_ != nullptr) {
      tracks.push_back(tracer_->add_track("pipe.source"));
      for (std::size_t s = 0; s < stages_.size(); ++s) {
        tracks.push_back(
            tracer_->add_track("pipe.stage" + std::to_string(s + 1)));
      }
      tracks.push_back(tracer_->add_track("pipe.sink"));
    }
    std::vector<std::thread> threads;
    threads.emplace_back([this, &chans, &tracks, &capture] {
      rt::ThreadTrackGuard guard(tracer_, tracer_ ? tracks.front() : 0);
      try {
        for (;;) {
          std::optional<T> item;
          {
            TRACE_SPAN("pipe.produce");
            item = source_();
          }
          if (!item || !chans.front()->push(std::move(*item))) break;
        }
      } catch (...) {
        capture();
      }
      chans.front()->close();
    });
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      threads.emplace_back([this, s, &chans, &tracks, &capture] {
        rt::ThreadTrackGuard guard(tracer_, tracer_ ? tracks[s + 1] : 0);
        auto& in = *chans[s];
        auto& out = *chans[s + 1];
        try {
          while (auto item = in.pop()) {
            std::optional<T> produced;
            {
              TRACE_SPAN("pipe.stage");
              produced.emplace(stages_[s](std::move(*item)));
            }
            if (!out.push(std::move(*produced))) break;
          }
        } catch (...) {
          capture();
          in.close();  // unblock and stop the upstream producer
        }
        out.close();
      });
    }
    threads.emplace_back([this, &chans, &count, &tracks, &capture] {
      rt::ThreadTrackGuard guard(tracer_, tracer_ ? tracks.back() : 0);
      auto& in = *chans.back();
      try {
        while (auto item = in.pop()) {
          TRACE_SPAN("pipe.consume");
          sink_(std::move(*item));
          ++count;
        }
      } catch (...) {
        capture();
        in.close();
      }
    });
    for (auto& t : threads) t.join();
    if (first_err) std::rethrow_exception(first_err);
    return count;
  }

 private:
  std::size_t capacity_;
  Source source_;
  std::vector<Stage> stages_;
  Sink sink_;
  rt::Tracer* tracer_ = nullptr;
};

}  // namespace motif
