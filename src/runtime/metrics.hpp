// Instrumentation counters and gauges used by the experiment harness.
//
// The experiments in EXPERIMENTS.md are about *shape* — load balance,
// message counts, peak live memory — so the runtime counts, per virtual
// node: tasks executed, local vs remote posts (a post from node a to node
// b != a models an inter-processor message on the simulated multicomputer),
// and exposes a process-wide live-bytes gauge that tracked containers
// report into (used to compare Tree-Reduce-1 vs Tree-Reduce-2 memory).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/trace.hpp"

namespace motif::rt {

/// A current/peak gauge with relaxed atomics; peak is maintained with a
/// CAS-max loop. add() may be called from any thread.
class Gauge {
 public:
  void add(std::int64_t delta) {
    std::int64_t now = cur_.fetch_add(delta, std::memory_order_relaxed) + delta;
    std::int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  std::int64_t current() const { return cur_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset() {
    cur_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> cur_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Process-wide gauge of "live tracked bytes": the intermediate data
/// structures of node evaluations (alignment profiles, synthetic payloads).
Gauge& live_bytes();

/// Process-wide gauge of concurrently active node evaluations.
Gauge& active_evals();

/// Process-wide count of task exceptions that were dropped because no one
/// was left to observe them — e.g. Machine::shutdown() (or ~Machine)
/// draining a failed run whose error was never collected by wait_idle.
/// Tests read this to assert that a failing task cannot vanish silently.
std::atomic<std::uint64_t>& dropped_task_errors();

/// RAII registration of `bytes` against live_bytes() — attach one to each
/// large intermediate to make peak memory measurable.
class TrackedBytes {
 public:
  TrackedBytes() = default;
  explicit TrackedBytes(std::size_t bytes) : bytes_(bytes) {
    live_bytes().add(static_cast<std::int64_t>(bytes_));
  }
  TrackedBytes(const TrackedBytes& o) : TrackedBytes(o.bytes_) {}
  TrackedBytes(TrackedBytes&& o) noexcept : bytes_(o.bytes_) { o.bytes_ = 0; }
  TrackedBytes& operator=(TrackedBytes o) noexcept {
    std::swap(bytes_, o.bytes_);
    return *this;
  }
  ~TrackedBytes() {
    if (bytes_ != 0) live_bytes().add(-static_cast<std::int64_t>(bytes_));
  }
  std::size_t bytes() const { return bytes_; }

  /// Re-registers with a new size (e.g. after a container grows).
  void resize(std::size_t bytes) {
    live_bytes().add(static_cast<std::int64_t>(bytes) -
                     static_cast<std::int64_t>(bytes_));
    bytes_ = bytes;
  }

 private:
  std::size_t bytes_ = 0;
};

/// Working-set bytes attributed to each node evaluation from initiation
/// to completion (experiment knob; default 0). Models the paper's "each
/// invocation of the node evaluation function can create large
/// intermediate data structures" (Section 3.5): an initiated evaluation
/// owns its intermediates until it finishes.
std::atomic<std::size_t>& eval_working_bytes();

/// RAII marker for one active node evaluation (peak concurrency probe);
/// also charges eval_working_bytes() against live_bytes() for its
/// lifetime.
class EvalScope {
 public:
  EvalScope()
      : bytes_(eval_working_bytes().load(std::memory_order_relaxed)) {
    active_evals().add(1);
    if (bytes_ != 0) live_bytes().add(static_cast<std::int64_t>(bytes_));
    trace_eval_begin();  // timeline view of the concurrency gauge
  }
  ~EvalScope() {
    trace_eval_end();
    active_evals().add(-1);
    if (bytes_ != 0) live_bytes().add(-static_cast<std::int64_t>(bytes_));
  }
  EvalScope(const EvalScope&) = delete;
  EvalScope& operator=(const EvalScope&) = delete;

 private:
  std::size_t bytes_;
};

/// Per-node counters, padded to avoid false sharing between nodes.
struct alignas(64) NodeCounters {
  std::atomic<std::uint64_t> tasks{0};        // tasks executed on this node
  std::atomic<std::uint64_t> posts_local{0};  // posts from this node to itself
  std::atomic<std::uint64_t> posts_remote{0}; // posts from this node elsewhere
  std::atomic<std::uint64_t> recv_remote{0};  // tasks received from elsewhere
  std::atomic<std::uint64_t> work{0};         // virtual cost units executed
  std::atomic<std::uint64_t> hops{0};         // topology hops of sent msgs

  void reset() {
    tasks = 0;
    posts_local = 0;
    posts_remote = 0;
    recv_remote = 0;
    work = 0;
    hops = 0;
  }
};

/// Network-layer counters (src/net cluster): what crossed the process
/// boundary. tx_frames/rx_frames count *data* (Post) frames only — they
/// double as the sent/received totals the distributed termination detector
/// compares, so control traffic (probes, joins) is kept separate in
/// ctl_frames. Bytes count everything on the wire.
struct NetStats {
  std::uint64_t tx_frames = 0;  ///< Post frames shipped to other ranks
  std::uint64_t rx_frames = 0;  ///< Post frames received from other ranks
  std::uint64_t tx_bytes = 0;   ///< wire bytes sent (all frame types)
  std::uint64_t rx_bytes = 0;   ///< wire bytes received (all frame types)
  std::uint64_t ctl_frames = 0; ///< non-Post frames sent (handshake/probes)
  std::uint64_t drops = 0;      ///< remote posts dropped by the fault seam
  std::uint64_t dups = 0;       ///< remote posts duplicated by the seam
  std::uint64_t delays = 0;     ///< remote posts delayed by the seam
};

/// Atomic backing for NetStats, owned by the Machine so `:stats` and
/// sched_stats() see network behaviour next to scheduler behaviour. The
/// cluster layer is the only writer; zero when no cluster is attached.
struct NetCounters {
  std::atomic<std::uint64_t> tx_frames{0};
  std::atomic<std::uint64_t> rx_frames{0};
  std::atomic<std::uint64_t> tx_bytes{0};
  std::atomic<std::uint64_t> rx_bytes{0};
  std::atomic<std::uint64_t> ctl_frames{0};
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> dups{0};
  std::atomic<std::uint64_t> delays{0};

  NetStats snapshot() const {
    NetStats s;
    s.tx_frames = tx_frames.load(std::memory_order_relaxed);
    s.rx_frames = rx_frames.load(std::memory_order_relaxed);
    s.tx_bytes = tx_bytes.load(std::memory_order_relaxed);
    s.rx_bytes = rx_bytes.load(std::memory_order_relaxed);
    s.ctl_frames = ctl_frames.load(std::memory_order_relaxed);
    s.drops = drops.load(std::memory_order_relaxed);
    s.dups = dups.load(std::memory_order_relaxed);
    s.delays = delays.load(std::memory_order_relaxed);
    return s;
  }
  void reset() {
    tx_frames = 0;
    rx_frames = 0;
    tx_bytes = 0;
    rx_bytes = 0;
    ctl_frames = 0;
    drops = 0;
    dups = 0;
    delays = 0;
  }
};

/// Scheduler-substrate counters (Machine::sched_stats): how the lock-free
/// core behaved, independent of what the motif computed. All monotonic
/// until reset_counters().
struct SchedStats {
  std::uint64_t steals = 0;  ///< activations taken from another worker
  std::uint64_t parks = 0;   ///< times a worker slept on the eventcount
  /// Posts that found the target node already scheduled: one mailbox
  /// append, zero scheduler interaction — the fast path.
  std::uint64_t mailbox_fast_hits = 0;
  std::uint64_t injects = 0;  ///< activations routed via the global FIFO
  /// Network counters when this machine is one rank of a cluster
  /// (src/net/cluster.hpp); all-zero otherwise.
  NetStats net{};
};

/// Aggregate view over a machine's node counters.
///
/// `makespan` is the virtual-time completion bound: the maximum over nodes
/// of the cost units they executed. With `total_work / makespan` giving the
/// *virtual speedup*, experiments measure parallel shape honestly even on a
/// host with few physical cores.
struct LoadSummary {
  std::uint64_t total_tasks = 0;
  std::uint64_t max_tasks = 0;
  std::uint64_t min_tasks = 0;
  double mean_tasks = 0.0;
  double imbalance = 0.0;  // max / mean; 1.0 is perfect balance
  std::uint64_t remote_msgs = 0;
  std::uint64_t local_msgs = 0;
  std::uint64_t total_work = 0;
  std::uint64_t total_hops = 0;    // network load under the topology
  double hops_per_remote = 0.0;    // mean message distance
  std::uint64_t makespan = 0;      // max per-node work
  double work_imbalance = 0.0;     // makespan / mean work
  double virtual_speedup = 0.0;    // total_work / makespan
  /// Filled by Machine::load_summary() (zero when summarize() is called
  /// directly on a counter vector — the substrate is not in the counters).
  SchedStats sched{};
};

LoadSummary summarize(const std::vector<NodeCounters>& counters);

}  // namespace motif::rt
