file(REMOVE_RECURSE
  "libmotif_motifs.a"
)
