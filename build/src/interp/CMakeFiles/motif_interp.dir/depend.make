# Empty dependencies file for motif_interp.
# This may be replaced when dependencies are built.
