// The concurrent-logic interpreter: executes programs in the paper's
// high-level language on the simulated multicomputer (runtime/Machine).
//
// Execution model (Section 2.1): "The state of a computation is
// represented by a pool of lightweight processes. Execution proceeds by
// repeatedly selecting and attempting to reduce processes in this pool."
// Each process is a goal term scheduled as a Machine task on some virtual
// node. Reduction tries the rules of the goal's definition in order:
//
//   * head matching is input-only (one-way): a non-variable head position
//     against an unbound caller variable SUSPENDS the rule, never binds
//     the caller;
//   * guards are tests (comparisons, type tests) that may also suspend;
//   * on commit the body goals become new processes — all but the last
//     are posted to the current node, the last is tail-executed;
//   * if no rule succeeds but some suspended, the process suspends on the
//     blocking variable and retries when it is bound;
//   * if every rule fails, the process fails (a run-time error, as in
//     Strand).
//
// Placement annotations: Goal@random posts the process to a random node,
// Goal@E (E an integer expression, 1-based as in the paper) to node E.
//
// Builtins: see builtin list in interp.cpp; they include the motif
// primitives of Section 3 — rand_num/2, distribute/3, length/2, merge via
// ports (make_ports/3, send_all/2).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/machine.hpp"
#include "term/program.hpp"
#include "term/term.hpp"

namespace motif::interp {

/// A process failed (no rule applies), a builtin was misused, or an
/// assignment violated single-assignment.
class InterpError : public std::runtime_error {
 public:
  explicit InterpError(const std::string& what) : std::runtime_error(what) {}
};

struct InterpOptions {
  std::uint32_t nodes = 4;
  std::uint32_t workers = 0;  // 0 = min(nodes, hardware)
  std::uint64_t seed = 0xC0FFEEull;
  /// Max tail-call iterations inside one Machine task before re-posting
  /// (keeps virtual nodes fair without extra task overhead per reduction).
  std::uint32_t tail_budget = 64;
  /// Deterministic fault schedule forwarded to the Machine (default:
  /// none). Dropped posts lose processes; the run still quiesces and the
  /// deadlock reporter classifies what went unbound (motifsh :faults).
  rt::FaultPlan faults{};
};

struct RunResult {
  std::uint64_t reductions = 0;       // successful rule commits
  std::uint64_t suspensions = 0;      // times a process suspended
  std::uint64_t still_suspended = 0;  // processes stuck at quiescence
  std::vector<std::string> stuck_goals;  // diagnostics (up to 16)
  /// Reductions per process definition ("name/arity"), most active
  /// first — the profile of where high-level coordination time goes.
  std::vector<std::pair<std::string, std::uint64_t>> by_definition;
  rt::LoadSummary load;

  /// Quiescence with suspended processes = no process can ever run again
  /// (their variables have no remaining producer): deadlock.
  bool deadlocked() const { return still_suspended > 0; }
};

/// A foreign (low-level) procedure: the paper's multilingual approach —
/// "low level, computationally-intensive components of applications are
/// implemented in low level languages. The high level language is used
/// primarily to construct parallel programs from these sequential
/// components" (Section 2.1).
///
/// `args` are the goal's arguments with the first `inputs` already
/// guaranteed bound (the interpreter suspends the goal until they are).
/// Deliver outputs through `unify(pattern, value)`; return false to
/// signal failure (raised as InterpError).
struct ForeignCall {
  const std::vector<term::Term>& args;
  const std::function<bool(const term::Term&, const term::Term&)>& unify;
};
using ForeignFn = std::function<bool(const ForeignCall&)>;

class Interp {
 public:
  Interp(term::Program program, InterpOptions options = {});
  ~Interp();

  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  /// Registers a foreign procedure name/arity. The first `inputs`
  /// arguments are dataflow inputs (the goal suspends until they are
  /// bound); remaining arguments are typically outputs. Must be called
  /// before run(). Foreign names shadow neither builtins nor program
  /// definitions — registering a name that collides throws.
  void register_foreign(const std::string& name, std::size_t arity,
                        std::size_t inputs, ForeignFn fn);

  /// Spawns `goal` as a process on node 0 and runs to quiescence.
  /// Variables in `goal` are bound in place; inspect them afterwards.
  RunResult run(const term::Term& goal);

  /// Convenience: parses `goal_src` (e.g. "go(4)"), runs it, and returns
  /// the goal term so callers can inspect bound variables by position.
  std::pair<term::Term, RunResult> run_query(const std::string& goal_src);

  /// Output sink for the write/1, writeln/1 builtins (default: stdout).
  void set_output(std::function<void(const std::string&)> sink);

  rt::Machine& machine() { return *machine_; }
  const term::Program& program() const { return program_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  term::Program program_;
  std::unique_ptr<rt::Machine> machine_;
};

}  // namespace motif::interp
