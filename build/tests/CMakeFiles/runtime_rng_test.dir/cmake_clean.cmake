file(REMOVE_RECURSE
  "CMakeFiles/runtime_rng_test.dir/runtime_rng_test.cpp.o"
  "CMakeFiles/runtime_rng_test.dir/runtime_rng_test.cpp.o.d"
  "runtime_rng_test"
  "runtime_rng_test.pdb"
  "runtime_rng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
