// Arithmetic and comparison evaluation over terms, with dataflow
// suspension: an expression containing an unbound variable does not fail —
// it reports the variable so the interpreter can suspend the process until
// the variable is bound (the synchronisation mechanism of Section 2.1:
// "the availability of data serves as the synchronization mechanism").
#pragma once

#include <cstdint>
#include <stdexcept>
#include <variant>

#include "term/term.hpp"

namespace motif::interp {

/// Raised for type errors (e.g. `1 + foo`), division by zero, unknown
/// evaluable functors.
class ArithError : public std::runtime_error {
 public:
  explicit ArithError(const std::string& what) : std::runtime_error(what) {}
};

/// Result of evaluating an expression: a number, or the unbound variable
/// the evaluation is waiting on.
struct Suspended {
  term::Term var;
};
using Number = std::variant<std::int64_t, double>;
using ArithResult = std::variant<Number, Suspended>;

/// Evaluates `t` as an arithmetic expression. Supported: integers, floats,
/// binary + - * / // mod min max, unary abs. `/` is integer division when
/// both operands are integers, real otherwise; `//` always truncates.
ArithResult eval_arith(const term::Term& t);

/// True if `t` is the root of an arithmetic expression (a number or an
/// evaluable functor; a bare variable is NOT arithmetic — `X := Y`
/// aliases). Used by `:=` to decide between arithmetic evaluation and
/// data assignment.
bool looks_arithmetic(const term::Term& t);

/// Tri-state outcome of a guard test.
enum class Truth { Yes, No, Suspend };

struct GuardResult {
  Truth truth;
  term::Term suspend_var;  // meaningful iff truth == Suspend
};

/// Evaluates a comparison guard: < > =< >= == =\= =:= over numbers,
/// == / =\= also over ground non-numeric terms (structural equality).
GuardResult eval_comparison(const std::string& op, const term::Term& lhs,
                            const term::Term& rhs);

/// Type-test guards: integer/1 number/1 float/1 string/1 list/1 tuple/1
/// atom/1 compound/1 data/1 (data suspends until its argument is bound).
/// Returns nullopt if `name` is not a type test.
std::optional<GuardResult> eval_type_test(const std::string& name,
                                          const term::Term& arg);

/// Number helpers.
term::Term number_to_term(const Number& n);
bool number_less(const Number& a, const Number& b);
bool number_equal(const Number& a, const Number& b);

}  // namespace motif::interp
