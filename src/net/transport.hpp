// Transport abstraction: how encoded frames move between ranks.
//
// The cluster layer (cluster.hpp) speaks only this interface, so the same
// distributed machine runs over two implementations:
//   * LoopbackHub — all ranks in one process; send() encodes the frame,
//     decodes it back, and delivers it inline on the caller's thread.
//     Deterministic (no I/O threads, no reordering), which is what the
//     net-labelled tests and chaos runs need — and because every frame
//     still passes through the full wire codec, loopback tests exercise
//     the same bytes TCP would carry.
//   * TCP (tcp_transport.cpp) — one process per rank, nonblocking sockets,
//     a dedicated I/O thread per peer, write coalescing, and backpressure
//     via a bounded outbound queue.
//
// Contract shared by both:
//   * set_receiver() before start(); the receiver may be invoked
//     concurrently from multiple threads and must not call back into
//     send() for the same peer while holding locks the sender needs.
//   * send() is thread-safe, may block for backpressure (TCP) and returns
//     the encoded wire size of the frame in bytes.
//   * stop() is idempotent and joins any I/O threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace motif::net {

/// Delivered for every decoded frame: the frame plus its size on the wire
/// (length prefix included), so receivers can keep byte counters without
/// re-encoding.
using RecvFn = std::function<void(Frame&&, std::size_t wire_bytes)>;

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::uint32_t rank() const = 0;
  virtual std::uint32_t ranks() const = 0;

  /// Must be called before start(). The callback may run on any thread.
  virtual void set_receiver(RecvFn fn) = 0;

  /// Brings the transport up (TCP: listen + connect all peers + Hello
  /// exchange). Throws on failure. Loopback start is a no-op.
  virtual void start() = 0;

  /// Encodes and ships `f` to rank `to`. Returns the wire size in bytes.
  /// Throws WireError on encode failure, std::runtime_error if the peer is
  /// unreachable or the transport is stopped.
  virtual std::size_t send(std::uint32_t to, const Frame& f) = 0;

  /// Tears down connections and joins I/O threads. Idempotent; frames
  /// arriving after stop() are discarded.
  virtual void stop() = 0;
};

// ---- loopback --------------------------------------------------------------

/// Shared switchboard for an all-in-one-process cluster: one hub, one
/// endpoint per rank. Construct the hub, hand endpoint(r) to rank r's
/// Cluster. The hub must outlive its endpoints' use.
class LoopbackHub {
 public:
  explicit LoopbackHub(std::uint32_t ranks);
  ~LoopbackHub();

  std::uint32_t ranks() const { return static_cast<std::uint32_t>(eps_.size()); }

  /// The transport for rank `r`. Owned by the hub; valid for its lifetime.
  Transport& endpoint(std::uint32_t r);

 private:
  struct Endpoint;
  std::vector<std::unique_ptr<Endpoint>> eps_;
};

// ---- TCP -------------------------------------------------------------------

/// `peers[r]` is rank r's "host:port" listen address; `peers.size()` is the
/// cluster size. The transport listens on peers[rank]'s port, dials every
/// lower rank (with retries, so start order doesn't matter), and accepts
/// connections from higher ranks.
std::unique_ptr<Transport> make_tcp_transport(std::uint32_t rank,
                                              std::vector<std::string> peers);

/// Test helper: binds `n` ephemeral localhost ports, records them, closes
/// the sockets, and returns the port numbers. Racy by nature (another
/// process could grab a port before the test rebinds it) but fine for CI.
std::vector<std::uint16_t> pick_free_ports(std::size_t n);

}  // namespace motif::net
