# Empty compiler generated dependencies file for motifs_sort_grid_graph_test.
# This may be replaced when dependencies are built.
