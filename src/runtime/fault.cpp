#include "runtime/fault.hpp"

#include "runtime/rng.hpp"

namespace motif::rt {

namespace {

/// One uniform double in [0,1) from a (seed, sender, ordinal) triple.
/// Mixed through splitmix64 twice so neighbouring ordinals decorrelate.
double decision_uniform(std::uint64_t seed, NodeId from, std::uint64_t nth) {
  std::uint64_t x = seed ^ (0x9E3779B97F4A7C15ull * (from + 1));
  (void)splitmix64(x);
  x ^= nth * 0xBF58476D1CE4E5B9ull;
  const std::uint64_t bits = splitmix64(x);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

PostFault FaultPlan::post_fault(NodeId from, std::uint64_t nth) const {
  if (drop <= 0.0 && duplicate <= 0.0 && delay <= 0.0) {
    return PostFault::None;
  }
  const double u = decision_uniform(seed, from, nth);
  if (u < drop) return PostFault::Drop;
  if (u < drop + duplicate) return PostFault::Duplicate;
  if (u < drop + duplicate + delay) return PostFault::Delay;
  return PostFault::None;
}

FaultPlan FaultPlan::reseeded(std::uint64_t attempt) const {
  FaultPlan p = *this;
  std::uint64_t x = seed + 0xA7C15EEDull * (attempt + 1);
  p.seed = splitmix64(x);
  return p;
}

FaultPlan FaultPlan::chaos(std::uint64_t seed) {
  FaultPlan p;
  p.seed = seed;
  p.drop = 0.02;
  p.duplicate = 0.02;
  p.delay = 0.05;
  return p;
}

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::Completed: return "completed";
    case RunStatus::TaskFailed: return "task-failed";
    case RunStatus::Stalled: return "stalled";
    case RunStatus::DeadlineExceeded: return "deadline-exceeded";
    case RunStatus::NodeLost: return "node-lost";
  }
  return "unknown";
}

std::string RunOutcome::to_string() const {
  std::string s = rt::to_string(status);
  if (!lost_nodes.empty()) {
    s += " (lost:";
    for (NodeId n : lost_nodes) s += " " + std::to_string(n);
    s += ")";
  }
  if (faults.total() != 0) {
    s += " [faults: " + std::to_string(faults.total()) + "]";
  }
  if (!error_message.empty()) s += ": " + error_message;
  if (!blocked_on.empty()) s += " (waiting on " + blocked_on + ")";
  return s;
}

}  // namespace motif::rt
