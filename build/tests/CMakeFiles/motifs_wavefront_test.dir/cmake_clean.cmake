file(REMOVE_RECURSE
  "CMakeFiles/motifs_wavefront_test.dir/motifs_wavefront_test.cpp.o"
  "CMakeFiles/motifs_wavefront_test.dir/motifs_wavefront_test.cpp.o.d"
  "motifs_wavefront_test"
  "motifs_wavefront_test.pdb"
  "motifs_wavefront_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifs_wavefront_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
