#include "transform/server.hpp"

namespace motif::transform {

using term::Clause;
using term::GoalView;
using term::ProcKey;
using term::Program;
using term::Term;

namespace {

bool is_primitive(const ProcKey& k) {
  return (k.name == "send" && k.arity == 2) ||
         (k.name == "nodes" && k.arity == 1) ||
         (k.name == "halt" && k.arity == 0);
}

/// Appends `extra` to the argument list of atom/compound `t`.
Term with_extra_arg(const Term& t, const Term& extra) {
  Term d = t.deref();
  std::vector<Term> args;
  if (d.is_compound()) args = d.args();
  args.push_back(extra);
  return Term::compound(d.functor(), std::move(args));
}

}  // namespace

std::set<ProcKey> needs_dt(const Program& a) {
  return a.callers_of(is_primitive);
}

Motif server_motif() {
  Transform t = [](const Program& a) {
    const std::set<ProcKey> dt_defs = needs_dt(a);
    Program out;
    for (const Clause& c : a.clauses()) {
      const ProcKey head_key{c.head.functor(), c.head.arity()};
      const bool head_needs = dt_defs.count(head_key) > 0;
      Clause nc;
      nc.guard = c.guard;
      FreshNamer namer(c);
      // The unique additional variable for this clause.
      Term dt = namer.fresh("DT");
      bool dt_used = false;
      for (const Term& goal : c.body) {
        GoalView v = term::strip_placement(goal);
        Term g = v.goal.deref();
        Term rewritten = g;
        if (g.is_atom() && g.functor() == "halt") {
          rewritten = Term::compound("send_all", {Term::atom("halt"), dt});
          dt_used = true;
        } else if (g.is_compound() && g.functor() == "send" &&
                   g.arity() == 2) {
          rewritten =
              Term::compound("distribute", {g.arg(0), g.arg(1), dt});
          dt_used = true;
        } else if (g.is_compound() && g.functor() == "nodes" &&
                   g.arity() == 1) {
          rewritten = Term::compound("length", {dt, g.arg(0)});
          dt_used = true;
        } else if ((g.is_atom() || g.is_compound()) && !g.is_cons() &&
                   !g.is_tuple() &&
                   dt_defs.count(ProcKey{g.functor(), g.arity()}) > 0) {
          rewritten = with_extra_arg(g, dt);
          dt_used = true;
        }
        if (v.annotated) {
          rewritten = Term::compound("@", {rewritten, v.placement});
        }
        nc.body.push_back(rewritten);
      }
      // Threaded heads take DT; rules whose body never touches it (e.g.
      // the halt rule `server([halt|_],_)`) take an anonymous slot, so
      // the output stays singleton-free.
      nc.head = head_needs
                    ? with_extra_arg(c.head, dt_used ? dt : Term::var("_"))
                    : c.head;
      out.add(std::move(nc));
    }
    return out;
  };
  return Motif("Server", std::move(t), server_library());
}

term::Program server_library() {
  // The network-creation program (our clean equivalent of Figure 3).
  // create(N,Msg): one merged input stream per server via N ports, the
  // fully-connected DT tuple shared by all servers, servers placed on
  // nodes 1..N with the @J placement feature, and the initial message
  // delivered to server 1.
  static const char* kSrc = R"(
    create(N,Msg) :-
        make_ports(N,Ports,Ins),
        make_tuple(Ports,DT),
        start_servers(1,N,Ins,DT),
        distribute(1,Msg,DT).

    start_servers(J,N,[In|Ins],DT) :- J =< N |
        boot(In,DT)@J,
        J1 is J + 1,
        start_servers(J1,N,Ins,DT).
    start_servers(_,_,[],_).

    boot(In,DT) :- server(In,DT).
  )";
  return Program::parse(kSrc);
}

}  // namespace motif::transform
