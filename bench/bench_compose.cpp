// Figures F2/F5/F6 (DESIGN.md §4): the full composition pipeline
// Tree-Reduce-1 = Server o Rand o Tree1, measured end to end — transform
// time, and execution of the produced program on the interpreter for the
// paper's expression tree and larger trees.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <functional>
#include <string>

#include "interp/interp.hpp"
#include "transform/motif.hpp"
#include "transform/tree.hpp"

namespace tf = motif::transform;
namespace in = motif::interp;
using motif::term::Program;

namespace {

const char* kUserEval = R"(
  eval('+',L,R,Value) :- Value is L + R.
  eval('*',L,R,Value) :- Value is L * R.
)";

std::string sum_tree(int leaves) {
  std::function<std::string(int)> build = [&](int k) -> std::string {
    if (k == 1) return "leaf(1)";
    return "tree('+'," + build(k / 2) + "," + build(k - k / 2) + ")";
  };
  return build(leaves);
}

void BM_ComposeTreeReduce1(benchmark::State& state) {
  Program user = Program::parse(kUserEval);
  for (auto _ : state) {
    // Compose AND apply — the full M2(M1(A)) pipeline per iteration.
    Program out = tf::tree_reduce1_motif().apply(user);
    benchmark::DoNotOptimize(out);
  }
  MOTIF_BENCH_REPORT(state);
}

void BM_ComposeTreeReduce2(benchmark::State& state) {
  Program user = Program::parse(kUserEval);
  for (auto _ : state) {
    Program out = tf::tree_reduce2_full_motif().apply(user);
    benchmark::DoNotOptimize(out);
  }
  MOTIF_BENCH_REPORT(state);
}

void run_composed(benchmark::State& state, bool tr2) {
  const int leaves = static_cast<int>(state.range(0));
  Program user = Program::parse(kUserEval);
  Program prog = tr2 ? tf::tree_reduce2_full_motif().apply(user)
                     : tf::tree_reduce1_motif().apply(user);
  const std::string entry = tr2 ? "start" : "run";
  const std::string goal =
      "create(4, " + entry + "(" + sum_tree(leaves) + ",Value))";
  std::uint64_t reductions = 0;
  for (auto _ : state) {
    in::InterpOptions opts;
    opts.nodes = 4;
    opts.workers = 2;
    in::Interp interp(prog, opts);
    auto [g, r] = interp.run_query(goal);
    if (g.arg(1).arg(1).int_value() != leaves) {
      state.SkipWithError("wrong value");
    }
    reductions = r.reductions;
  }
  state.counters["reductions"] = static_cast<double>(reductions);
  state.SetItemsProcessed(state.iterations() * leaves);
}

void BM_RunComposedTR1(benchmark::State& state) {
  run_composed(state, false);
  MOTIF_BENCH_REPORT(state);
}
void BM_RunComposedTR2(benchmark::State& state) { run_composed(state, true); }

}  // namespace

BENCHMARK(BM_ComposeTreeReduce1)->Unit(benchmark::kMicrosecond)
    ->MinTime(0.02);
BENCHMARK(BM_ComposeTreeReduce2)->Unit(benchmark::kMicrosecond)
    ->MinTime(0.02);
BENCHMARK(BM_RunComposedTR1)->Arg(4)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond)->MinTime(0.02);
BENCHMARK(BM_RunComposedTR2)->Arg(4)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond)->MinTime(0.02);

BENCHMARK_MAIN();
