file(REMOVE_RECURSE
  "CMakeFiles/interp_arith_test.dir/interp_arith_test.cpp.o"
  "CMakeFiles/interp_arith_test.dir/interp_arith_test.cpp.o.d"
  "interp_arith_test"
  "interp_arith_test.pdb"
  "interp_arith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_arith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
