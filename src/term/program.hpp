// Programs: ordered collections of clauses grouped into process
// definitions (the paper's p/k notation), with the static analyses the
// transformation engine needs — definition lookup, the call graph, and
// reverse reachability ("the process definitions of these processes'
// ancestors in the call graph", Server transformation step 1).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "term/parser.hpp"
#include "term/term.hpp"

namespace motif::term {

/// Identity of a process definition: name/arity.
struct ProcKey {
  std::string name;
  std::size_t arity = 0;
  auto operator<=>(const ProcKey&) const = default;
  std::string to_string() const {
    return name + "/" + std::to_string(arity);
  }
};

/// Strips a placement annotation: for Goal@Where returns (Goal, Where);
/// otherwise (Goal, nullopt-as-nil marker via `annotated=false`).
struct GoalView {
  Term goal;
  Term placement;   // meaningful iff annotated
  bool annotated = false;
};
GoalView strip_placement(const Term& goal);

/// Key of a call/goal term (after stripping placement).
ProcKey goal_key(const Term& goal);

class Program {
 public:
  Program() = default;
  explicit Program(std::vector<Clause> clauses)
      : clauses_(std::move(clauses)) {}

  /// Parses source text.
  static Program parse(std::string_view src);

  const std::vector<Clause>& clauses() const { return clauses_; }
  std::vector<Clause>& clauses() { return clauses_; }
  bool empty() const { return clauses_.empty(); }

  void add(Clause c) { clauses_.push_back(std::move(c)); }

  /// Links `lib` after this program (the paper's A' = T(A) ∪ L). Clauses
  /// for a process already defined here are appended to that definition's
  /// rule list (definitions merge, as when a library supplies extra rules).
  Program linked_with(const Program& lib) const;

  /// All defined process keys, in first-definition order.
  std::vector<ProcKey> defined() const;

  bool defines(const ProcKey& k) const;

  /// Clauses whose head matches `k`, in program order.
  std::vector<Clause> rules_for(const ProcKey& k) const;

  /// Direct callees of each definition (body goals only; placement
  /// annotations stripped; guards are tests, not spawns).
  std::map<ProcKey, std::set<ProcKey>> call_graph() const;

  /// Definitions from which a call path reaches any key satisfying
  /// `target` — including definitions that call a target directly.
  /// This is the "ancestors in the call graph" set of the Server
  /// transformation.
  std::set<ProcKey> callers_of(
      const std::function<bool(const ProcKey&)>& target) const;

  /// Renders the program back to source (writer.hpp).
  std::string to_source() const;

  /// Structural equality up to variable renaming, clause by clause in
  /// order. The golden tests compare transformation outputs against the
  /// paper's listings with this.
  bool alpha_equivalent(const Program& other) const;

 private:
  std::vector<Clause> clauses_;
};

/// Alpha-equivalence of two clauses (one shared renaming across head,
/// guard and body).
bool alpha_equal_clause(const Clause& a, const Clause& b);

}  // namespace motif::term
