# Empty dependencies file for transform_motif_test.
# This may be replaced when dependencies are built.
