#include "term/subst.hpp"

#include <gtest/gtest.h>

#include "term/parser.hpp"

namespace t = motif::term;
using t::Bindings;
using t::parse_term;
using t::Term;

TEST(Match, AtomToAtom) {
  Bindings b;
  EXPECT_TRUE(t::match(Term::atom("a"), Term::atom("a"), b));
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(t::match(Term::atom("a"), Term::atom("b"), b));
}

TEST(Match, VarBindsSubterm) {
  Term pat = parse_term("send(Node,Msg)");
  Term val = parse_term("send(3,reduce(T,V))");
  Bindings b;
  ASSERT_TRUE(t::match(pat, val, b));
  EXPECT_EQ(b.at(pat.arg(0)).int_value(), 3);
  EXPECT_EQ(b.at(pat.arg(1)).functor(), "reduce");
}

TEST(Match, RepeatedVarMustAgree) {
  Term pat = parse_term("f(X,X)");
  Bindings b1;
  EXPECT_TRUE(t::match(pat, parse_term("f(1,1)"), b1));
  Bindings b2;
  EXPECT_FALSE(t::match(pat, parse_term("f(1,2)"), b2));
}

TEST(Match, ValueVarOnlyMatchesPatternVar) {
  Bindings b;
  EXPECT_FALSE(t::match(Term::atom("a"), Term::var("X"), b));
  Term pat = Term::var("P");
  Term val = Term::var("V");
  Bindings b2;
  EXPECT_TRUE(t::match(pat, val, b2));
  EXPECT_TRUE(b2.at(pat).same_node(val));
}

TEST(Match, StructuresRecursively) {
  Term pat = parse_term("reduce(tree(V,L,R),Val)");
  Term val = parse_term("reduce(tree('+',leaf(1),leaf(2)),Out)");
  Bindings b;
  ASSERT_TRUE(t::match(pat, val, b));
  EXPECT_EQ(b.at(pat.arg(0).arg(0)).functor(), "+");
}

TEST(Match, ArityMismatch) {
  Bindings b;
  EXPECT_FALSE(t::match(parse_term("f(X)"), parse_term("f(1,2)"), b));
  EXPECT_FALSE(t::match(parse_term("f(X)"), parse_term("g(1)"), b));
}

TEST(Match, NumbersAndStrings) {
  Bindings b;
  EXPECT_TRUE(t::match(Term::integer(3), Term::integer(3), b));
  EXPECT_FALSE(t::match(Term::integer(3), Term::real(3.0), b));
  EXPECT_TRUE(t::match(Term::str("s"), Term::str("s"), b));
  EXPECT_FALSE(t::match(Term::str("s"), Term::atom("s"), b));
}

TEST(Substitute, ReplacesMappedVars) {
  Term pat = parse_term("f(X,g(X),Y)");
  Bindings b;
  b.emplace(pat.arg(0), Term::integer(1));
  Term out = t::substitute(pat, b);
  EXPECT_TRUE(out == parse_term("f(1,g(1),Y)").deref() ||
              t::alpha_equal(out, parse_term("f(1,g(1),Y)")));
}

TEST(Substitute, UnmappedVarsStay) {
  Term v = Term::var("Z");
  Bindings b;
  EXPECT_TRUE(t::substitute(v, b).same_node(v));
}

TEST(Substitute, ThroughReplacement) {
  Term x = Term::var("X"), y = Term::var("Y");
  Bindings b;
  b.emplace(x, Term::compound("f", {y}));
  b.emplace(y, Term::integer(2));
  Term out = t::substitute(x, b);
  EXPECT_TRUE(out == parse_term("f(2)"));
}

TEST(RenameFresh, SharesMappingAcrossCalls) {
  Term c = parse_term("p(X,Y)");
  Term d = parse_term("q(Z)");
  Bindings m;
  Term c2 = t::rename_fresh(c, m);
  EXPECT_FALSE(c2.arg(0).same_node(c.arg(0)));
  EXPECT_EQ(c2.arg(0).var_name(), "X");
  // Renaming the same term again reuses the mapping.
  Term c3 = t::rename_fresh(c, m);
  EXPECT_TRUE(c3.arg(0).same_node(c2.arg(0)));
  (void)d;
}

TEST(RenameFresh, PreservesSharing) {
  Term c = parse_term("f(X,X)");
  Bindings m;
  Term c2 = t::rename_fresh(c, m);
  EXPECT_TRUE(c2.arg(0).same_node(c2.arg(1)));
}

TEST(Rewrite, BottomUpReplacement) {
  Term in = parse_term("f(g(1),g(2))");
  Term out = t::rewrite(in, [](const Term& x) -> std::optional<Term> {
    if (x.is_compound() && x.functor() == "g") {
      return Term::compound("h", {x.arg(0)});
    }
    return std::nullopt;
  });
  EXPECT_TRUE(out == parse_term("f(h(1),h(2))"));
}

TEST(Rewrite, ChildrenRewrittenBeforeParent) {
  Term in = parse_term("g(g(1))");
  int calls = 0;
  Term out = t::rewrite(in, [&](const Term& x) -> std::optional<Term> {
    if (x.is_compound() && x.functor() == "g") {
      ++calls;
      return Term::compound("h", {x.arg(0)});
    }
    return std::nullopt;
  });
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(out == parse_term("h(h(1))"));
}

TEST(Contains, FindsSubterm) {
  Term in = parse_term("f(g([1,send(2)]),h)");
  EXPECT_TRUE(t::contains(in, [](const Term& x) {
    return x.is_compound() && x.functor() == "send";
  }));
  EXPECT_FALSE(t::contains(in, [](const Term& x) {
    return x.is_atom() && x.functor() == "absent";
  }));
}

TEST(AlphaEqual, RenamedTermsEqual) {
  EXPECT_TRUE(t::alpha_equal(parse_term("f(X,Y,X)"), parse_term("f(A,B,A)")));
  EXPECT_FALSE(t::alpha_equal(parse_term("f(X,Y,X)"), parse_term("f(A,B,B)")));
  EXPECT_FALSE(t::alpha_equal(parse_term("f(X,X)"), parse_term("f(A,B)")));
  EXPECT_FALSE(t::alpha_equal(parse_term("f(A,B)"), parse_term("f(X,X)")));
}

TEST(AlphaEqual, GroundTermsUseEquality) {
  EXPECT_TRUE(t::alpha_equal(parse_term("f(1,[a,b])"), parse_term("f(1,[a,b])")));
  EXPECT_FALSE(t::alpha_equal(parse_term("f(1)"), parse_term("f(2)")));
}

TEST(AlphaEqual, SharedMappingAcrossSequence) {
  Bindings va, vb;
  Term h1 = parse_term("p(X)");
  Term h2 = parse_term("p(Y)");
  EXPECT_TRUE(t::alpha_equal(h1, h2, va, vb));
  // Now X must keep mapping to Y.
  EXPECT_TRUE(t::alpha_equal(h1.arg(0), h2.arg(0), va, vb));
  Term other = parse_term("q(Z)");
  EXPECT_FALSE(t::alpha_equal(h1.arg(0), other.arg(0), va, vb));
}
