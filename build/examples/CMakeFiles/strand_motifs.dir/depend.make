# Empty dependencies file for strand_motifs.
# This may be replaced when dependencies are built.
