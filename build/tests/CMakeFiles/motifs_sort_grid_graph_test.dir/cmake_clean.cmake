file(REMOVE_RECURSE
  "CMakeFiles/motifs_sort_grid_graph_test.dir/motifs_sort_grid_graph_test.cpp.o"
  "CMakeFiles/motifs_sort_grid_graph_test.dir/motifs_sort_grid_graph_test.cpp.o.d"
  "motifs_sort_grid_graph_test"
  "motifs_sort_grid_graph_test.pdb"
  "motifs_sort_grid_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifs_sort_grid_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
