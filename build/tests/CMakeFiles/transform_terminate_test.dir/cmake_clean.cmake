file(REMOVE_RECURSE
  "CMakeFiles/transform_terminate_test.dir/transform_terminate_test.cpp.o"
  "CMakeFiles/transform_terminate_test.dir/transform_terminate_test.cpp.o.d"
  "transform_terminate_test"
  "transform_terminate_test.pdb"
  "transform_terminate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_terminate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
