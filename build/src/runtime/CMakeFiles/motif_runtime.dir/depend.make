# Empty dependencies file for motif_runtime.
# This may be replaced when dependencies are built.
