# Drives motifsh with smoke_script.txt and checks the Figure 5 pipeline
# computes 24 without deadlock.
execute_process(COMMAND ${SHELL}
                INPUT_FILE ${SCRIPT}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "motifsh exited with ${rc}\n${out}\n${err}")
endif()
string(FIND "${out}" ",24))" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "expected Value=24 in output:\n${out}")
endif()
string(FIND "${out}" "DEADLOCK" dpos)
if(NOT dpos EQUAL -1)
  message(FATAL_ERROR "pipeline deadlocked:\n${out}")
endif()
string(FIND "${out}" "reduce/3" rpos)
if(rpos EQUAL -1)
  message(FATAL_ERROR "profile should show reduce/3 commits:\n${out}")
endif()
