file(REMOVE_RECURSE
  "CMakeFiles/runtime_svar_test.dir/runtime_svar_test.cpp.o"
  "CMakeFiles/runtime_svar_test.dir/runtime_svar_test.cpp.o.d"
  "runtime_svar_test"
  "runtime_svar_test.pdb"
  "runtime_svar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_svar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
