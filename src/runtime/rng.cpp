#include "runtime/rng.hpp"

#include <cmath>

namespace motif::rt {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& w : s_) w = splitmix64(seed);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double lambda) {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

double Rng::pareto(double xm, double alpha) {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

}  // namespace motif::rt
