# Empty compiler generated dependencies file for motifs_failure_test.
# This may be replaced when dependencies are built.
