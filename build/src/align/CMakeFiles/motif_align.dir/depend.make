# Empty dependencies file for motif_align.
# This may be replaced when dependencies are built.
