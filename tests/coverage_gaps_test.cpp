// Focused tests for corners not exercised elsewhere: directed graphs,
// solver non-convergence reporting, uneven scheduler groups, server RNG
// determinism, and lexer edge cases.
#include <gtest/gtest.h>

#include "motifs/motifs.hpp"
#include "term/parser.hpp"
#include "term/writer.hpp"

namespace m = motif;
namespace rt = motif::rt;
namespace t = motif::term;

TEST(GraphDirected, EdgesOnlyOneWay) {
  auto g = m::Graph::from_edges(3, {{0, 1}, {1, 2}}, /*undirected=*/false);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 0u);
  auto d = m::bfs_sequential(g, 2);
  EXPECT_EQ(d[2], 0);
  EXPECT_EQ(d[0], m::kUnreached);  // no back edges
  rt::Machine mach({.nodes = 2, .workers = 2});
  EXPECT_EQ(m::parallel_bfs(mach, g, 2), d);
}

TEST(GridNonConvergence, ReportedHonestly) {
  rt::Machine mach({.nodes = 2, .workers = 2});
  m::Grid2D g(32, 32, 0.0);
  for (std::size_t c = 0; c < 32; ++c) g.at(0, c) = 100.0;
  m::JacobiOptions opts;
  opts.max_iters = 3;  // far too few
  opts.tolerance = 1e-12;
  auto res = m::jacobi_solve(mach, g, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3u);
  EXPECT_GT(res.residual, 1e-12);
}

TEST(SchedulerUnevenGroups, SixWorkersGroupFour) {
  rt::Machine mach({.nodes = 7, .workers = 2});
  m::Scheduler s(mach, {.workers = 6, .levels = 2, .group = 4, .batch = 3});
  std::atomic<int> ran{0};
  for (int i = 0; i < 120; ++i) {
    s.submit([&] { ran.fetch_add(1); });
  }
  s.run();
  EXPECT_EQ(ran.load(), 120);
}

TEST(SchedulerSingleWorkerHierarchy, DegenerateGroup) {
  rt::Machine mach({.nodes = 2, .workers = 2});
  m::Scheduler s(mach, {.workers = 1, .levels = 2, .group = 4, .batch = 2});
  std::atomic<int> ran{0};
  for (int i = 0; i < 17; ++i) s.submit([&] { ran.fetch_add(1); });
  s.run();
  EXPECT_EQ(ran.load(), 17);
}

TEST(ServerRng, DeterministicPerSeed) {
  auto draw = [](std::uint64_t seed) {
    rt::Machine mach(
        {.nodes = 2, .workers = 1, .batch = 64, .seed = seed});
    std::vector<std::uint64_t> vals;
    m::ServerNetwork<int> net(mach, 2, [&](auto& ctx, int k) {
      vals.push_back(ctx.rng().below(1000));
      if (k == 0) {
        ctx.halt();
      } else {
        ctx.send(1, k - 1);
      }
    });
    net.start(1, 5);
    net.wait();
    return vals;
  };
  EXPECT_EQ(draw(3), draw(3));
  EXPECT_NE(draw(3), draw(4));
}

TEST(LexerEdges, NumbersAndEscapes) {
  EXPECT_DOUBLE_EQ(t::parse_term("1.5e-3").float_value(), 0.0015);
  EXPECT_DOUBLE_EQ(t::parse_term("2.5E+2").float_value(), 250.0);
  EXPECT_EQ(t::parse_term("1+2").functor(), "+");  // no spaces
}

TEST(LexerEdges, QuotedAtomEscapes) {
  auto a = t::parse_term(R"('a\'b')");
  EXPECT_EQ(a.functor(), "a'b");
  auto b = t::parse_term(R"('back\\slash')");
  EXPECT_EQ(b.functor(), "back\\slash");
  // Round trip through the writer.
  EXPECT_EQ(t::parse_term(t::format_term(a)).functor(), "a'b");
  EXPECT_EQ(t::parse_term(t::format_term(b)).functor(), "back\\slash");
}

TEST(WriterEdges, EmptyTupleAndNilQuote) {
  EXPECT_EQ(t::format_term(t::parse_term("{}")), "{}");
  EXPECT_EQ(t::format_term(t::parse_term("[]")), "[]");
  // Atom that looks like an operator prints bare and reparses.
  EXPECT_EQ(t::format_term(t::parse_term("'+'")), "+");
  EXPECT_TRUE(t::parse_term("+").is_atom());
}

TEST(TreeReduce2Stats, TotalsOnBalancedTree) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  auto tr = m::balanced_tree<long, char>(
      128, [](std::size_t) { return 1L; }, '+');
  m::TR2Stats stats;
  auto add = [](const char&, const long& a, const long& b) { return a + b; };
  EXPECT_EQ((m::tree_reduce2<long, char>(mach, tr, add, &stats)), 128);
  // 127 internal nodes, two deliveries each.
  EXPECT_EQ(stats.local_values + stats.remote_values, 254u);
}

TEST(PipelineManyStages, EightStageChain) {
  m::Pipeline<long> p(8);
  long next = 0;
  long sum = 0;
  p.source([&]() -> std::optional<long> {
    if (next >= 500) return std::nullopt;
    return next++;
  });
  for (int s = 0; s < 8; ++s) {
    p.stage([](long v) { return v + 1; });
  }
  p.sink([&](long v) { sum += v; });
  EXPECT_EQ(p.run(), 500u);
  EXPECT_EQ(sum, 500L * 499 / 2 + 500 * 8);
}
