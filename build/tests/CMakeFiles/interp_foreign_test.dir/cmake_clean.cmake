file(REMOVE_RECURSE
  "CMakeFiles/interp_foreign_test.dir/interp_foreign_test.cpp.o"
  "CMakeFiles/interp_foreign_test.dir/interp_foreign_test.cpp.o.d"
  "interp_foreign_test"
  "interp_foreign_test.pdb"
  "interp_foreign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_foreign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
