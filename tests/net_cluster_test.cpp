// Cluster-layer tests over the deterministic loopback transport: the
// distributed Tree-Reduce-2 matches the sequential oracle, frame counts
// are deterministic under a fixed seed, message conservation holds at
// quiescence, trace flow ids survive the wire, and a single-rank cluster
// degenerates to the plain Machine.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <vector>

#include "motifs/dist_tree_reduce.hpp"
#include "net/cluster.hpp"
#include "net/transport.hpp"

namespace n = motif::net;
namespace rt = motif::rt;
using namespace std::chrono_literals;

namespace {

constexpr auto kDeadline = 20s;

/// A whole loopback cluster in one object: hub + one Cluster and one
/// DistTreeReduce2 per rank. Followers start first (Join frames are
/// delivered inline to rank 0's already-set receiver), rank 0 last.
struct LoopCluster {
  n::LoopbackHub hub;
  std::vector<std::unique_ptr<n::Cluster>> cs;
  std::vector<std::unique_ptr<motif::DistTreeReduce2>> trs;

  explicit LoopCluster(std::uint32_t ranks, std::uint32_t per,
                       rt::FaultPlan net_faults = {},
                       std::uint32_t workers = 0)
      : hub(ranks) {
    for (std::uint32_t r = 0; r < ranks; ++r) {
      n::ClusterConfig cfg;
      cfg.nodes_per_rank = per;
      cfg.machine.workers = workers;
      cfg.machine.seed = 0x5EEDull + r;
      cfg.net_faults = net_faults;
      cs.push_back(std::make_unique<n::Cluster>(hub.endpoint(r), cfg));
    }
    for (auto& c : cs) {
      trs.push_back(std::make_unique<motif::DistTreeReduce2>(*c));
    }
    for (std::uint32_t r = 1; r < ranks; ++r) cs[r]->start();
    cs[0]->start();
  }

  n::Cluster& rank0() { return *cs[0]; }
};

}  // namespace

TEST(NetCluster, DistTreeReduce2MatchesSequential) {
  LoopCluster lc(2, 2);
  const auto res = lc.trs[0]->run(6, 42, kDeadline);
  EXPECT_TRUE(res.ok) << res.outcome.to_string();
  EXPECT_EQ(res.value, res.expected);
  // A 64-leaf tree labelled over 4 global nodes must cross ranks at
  // least once.
  EXPECT_GT(lc.rank0().net_stats().tx_frames + lc.cs[1]->net_stats().tx_frames,
            0u);
}

TEST(NetCluster, ThreeRanksAndRepeatedRuns) {
  LoopCluster lc(3, 3);
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    const auto res = lc.trs[0]->run(7, seed, kDeadline);
    EXPECT_TRUE(res.ok) << "seed=" << seed << " " << res.outcome.to_string();
    EXPECT_EQ(res.value, res.expected);
  }
}

TEST(NetCluster, SingleLeafTree) {
  LoopCluster lc(2, 2);
  const auto res = lc.trs[0]->run(0, 5, kDeadline);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.value, res.expected);
}

TEST(NetCluster, MessageConservationAtQuiescence) {
  LoopCluster lc(3, 2);
  ASSERT_TRUE(lc.trs[0]->run(8, 13, kDeadline).ok);
  std::uint64_t tx = 0, rx = 0;
  for (auto& c : lc.cs) {
    const auto s = c->net_stats();
    tx += s.tx_frames;
    rx += s.rx_frames;
    EXPECT_GT(s.tx_bytes, 0u);
    EXPECT_GT(s.rx_bytes, 0u);
  }
  EXPECT_EQ(tx, rx);  // nothing in flight after distributed wait_idle
}

TEST(NetCluster, FrameCountsDeterministicUnderFixedSeed) {
  auto run_once = [](std::vector<std::uint64_t>& tx,
                     std::vector<std::uint64_t>& rx) {
    LoopCluster lc(2, 2, {}, /*workers=*/1);
    ASSERT_TRUE(lc.trs[0]->run(6, 2026, kDeadline).ok);
    for (auto& c : lc.cs) {
      const auto s = c->net_stats();
      tx.push_back(s.tx_frames);
      rx.push_back(s.rx_frames);
    }
  };
  std::vector<std::uint64_t> tx1, rx1, tx2, rx2;
  run_once(tx1, rx1);
  run_once(tx2, rx2);
  // The label plan is a pure function of (depth, seed, node count) and
  // Post-frame counters ignore control traffic, so two fresh identical
  // clusters ship exactly the same data frames.
  EXPECT_EQ(tx1, tx2);
  EXPECT_EQ(rx1, rx2);
}

TEST(NetCluster, SchedStatsExposeNetCounters) {
  LoopCluster lc(2, 2);
  ASSERT_TRUE(lc.trs[0]->run(6, 3, kDeadline).ok);
  const auto stats = lc.rank0().machine().sched_stats();
  EXPECT_EQ(stats.net.tx_frames, lc.rank0().net_stats().tx_frames);
  EXPECT_GT(stats.net.ctl_frames, 0u);  // probes/start are control traffic
  lc.rank0().machine().reset_counters();
  EXPECT_EQ(lc.rank0().machine().sched_stats().net.tx_frames, 0u);
}

TEST(NetCluster, SingleRankClusterStaysLocal) {
  n::LoopbackHub hub(1);
  n::ClusterConfig cfg;
  cfg.nodes_per_rank = 4;
  n::Cluster c(hub.endpoint(0), cfg);
  motif::DistTreeReduce2 tr(c);
  c.start();
  const auto res = tr.run(6, 11, kDeadline);
  EXPECT_TRUE(res.ok) << res.outcome.to_string();
  const auto s = c.net_stats();
  EXPECT_EQ(s.tx_frames, 0u);
  EXPECT_EQ(s.rx_frames, 0u);
  EXPECT_EQ(s.ctl_frames, 0u);
}

TEST(NetCluster, MalformedPayloadsAreDroppedNotFatal) {
  using motif::term::Term;
  LoopCluster lc(2, 2);
  // Handler 0 is tr2.arrive, 1 is tr2.result (registration order). Feed
  // both junk a corrupt or version-skewed peer could produce: wrong
  // arity, wrong tags, an out-of-range parent index — locally and across
  // the wire. Every one must be dropped, not crash or corrupt a run.
  const Term junk[] = {
      Term::nil(),
      Term::integer(3),
      Term::tuple({Term::integer(1)}),
      Term::tuple({Term::str("x"), Term::integer(1), Term::integer(1),
                   Term::integer(0), Term::integer(0), Term::integer(1)}),
      // Right shape, but the parent index is far outside any plan. The
      // claimed generation (7) deliberately differs from the one the
      // real run below allocates: a junk frame that *collides* with a
      // live generation while claiming a different (depth, seed) poisons
      // that generation's plan, which ensure_plan detects and turns into
      // dropped frames — a stall-and-retry, not a wrong result.
      Term::tuple({Term::integer(7), Term::integer(3), Term::integer(9),
                   Term::integer(1 << 20), Term::integer(0),
                   Term::integer(5)}),
  };
  for (const auto& t : junk) {
    lc.rank0().post(0, 0, t);  // local arrive
    lc.rank0().post(2, 0, t);  // remote arrive (rank 1 owns node 2)
    lc.rank0().post(0, 1, t);  // local result
    lc.rank0().post(2, 1, t);  // remote result
  }
  const auto res = lc.trs[0]->run(5, 9, kDeadline);
  EXPECT_TRUE(res.ok) << res.outcome.to_string();
}

TEST(NetCluster, MotifDestroyedBeforeClusterIsSafe) {
  // Regression for a teardown use-after-free: handlers capture their
  // state via shared_ptr and ~Cluster abandons still-queued handler
  // tasks, so destroying the motif while its handlers stay registered —
  // and then delivering another frame to them — must not touch freed
  // memory (the ASan/TSan jobs watch this).
  using motif::term::Term;
  LoopCluster lc(2, 2);
  ASSERT_TRUE(lc.trs[0]->run(4, 3, kDeadline).ok);
  lc.trs.clear();
  lc.rank0().post(
      2, 0,
      Term::tuple({Term::integer(99), Term::integer(4), Term::integer(3),
                   Term::integer(0), Term::integer(0), Term::integer(5)}));
  (void)lc.rank0().wait_idle_for(kDeadline);
}

TEST(NetCluster, PostValidatesArguments) {
  LoopCluster lc(2, 2);
  EXPECT_THROW(lc.rank0().post(999, 0, motif::term::Term::nil()),
               std::out_of_range);
  EXPECT_THROW(lc.rank0().post(0, 99, motif::term::Term::nil()),
               std::out_of_range);
}

#if MOTIF_TRACING
TEST(NetCluster, TraceFlowIdsSurviveTheWire) {
  LoopCluster lc(2, 2);
  lc.cs[0]->machine().start_trace();
  lc.cs[1]->machine().start_trace();
  ASSERT_TRUE(lc.trs[0]->run(6, 17, kDeadline).ok);
  const auto log0 = lc.cs[0]->machine().drain_trace();
  const auto log1 = lc.cs[1]->machine().drain_trace();

  std::set<std::uint64_t> sent, received;
  auto collect = [](const rt::TraceLog& log, rt::TraceEventKind kind,
                    std::set<std::uint64_t>& out) {
    for (const auto& track : log.tracks) {
      for (const auto& e : track.events) {
        if (e.kind == kind && e.id != 0) out.insert(e.id);
      }
    }
  };
  collect(log0, rt::TraceEventKind::MsgSend, sent);
  collect(log1, rt::TraceEventKind::MsgSend, sent);
  collect(log0, rt::TraceEventKind::MsgRecv, received);
  collect(log1, rt::TraceEventKind::MsgRecv, received);

  // Cross-rank flow ids: high bits carry (rank+1), so they cannot clash
  // with the machine-local message ids.
  std::set<std::uint64_t> cross_sent, cross_received;
  for (auto id : sent) {
    if (id >> 40) cross_sent.insert(id);
  }
  for (auto id : received) {
    if (id >> 40) cross_received.insert(id);
  }
  ASSERT_FALSE(cross_sent.empty());
  ASSERT_FALSE(cross_received.empty());
  // Every cross-rank send recorded on a machine track is matched by a
  // receive with the same flow id on the destination machine. (The
  // converse need not hold: run()'s initial leaf posts come from the
  // external test thread, which has no trace binding, so only their
  // receive side is recorded.)
  for (auto id : cross_sent) {
    EXPECT_TRUE(cross_received.count(id)) << "unmatched send flow id " << id;
  }
}
#endif
