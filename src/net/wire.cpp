#include "net/wire.hpp"

#include <bit>
#include <unordered_map>
#include <vector>

namespace motif::net {

void Encoder::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
double Decoder::f64() { return std::bit_cast<double>(u64()); }

namespace {

// Term codec tags. VarDef/VarRef preserve sharing: the first occurrence of
// an unbound cell is a VarDef (implicitly numbered in definition order),
// later occurrences are VarRefs to that number. List gets its own tag so a
// spine of n cons cells costs one recursion level, not n.
enum TermTag : std::uint8_t {
  kVarDef = 0x00,
  kVarRef = 0x01,
  kAtom = 0x02,
  kInt = 0x03,
  kFloat = 0x04,
  kStr = 0x05,
  kCompound = 0x06,
  kList = 0x07,
};

using VarIndex =
    std::unordered_map<term::Term, std::uint32_t, term::TermHash, term::TermIdEq>;

void encode_rec(Encoder& e, const term::Term& raw, VarIndex& vars,
                std::uint32_t depth) {
  if (depth > kMaxTermDepth) throw WireError("term too deep to encode");
  const term::Term t = raw.deref();
  switch (t.tag()) {
    case term::Tag::Var: {
      auto [it, fresh] =
          vars.emplace(t, static_cast<std::uint32_t>(vars.size()));
      if (fresh) {
        e.u8(kVarDef);
        e.str(t.var_name());
      } else {
        e.u8(kVarRef);
        e.u32(it->second);
      }
      return;
    }
    case term::Tag::Int:
      e.u8(kInt);
      e.i64(t.int_value());
      return;
    case term::Tag::Float:
      e.u8(kFloat);
      e.f64(t.float_value());
      return;
    case term::Tag::Str:
      e.u8(kStr);
      e.str(t.str_value());
      return;
    case term::Tag::Atom:
      e.u8(kAtom);
      e.str(t.functor());
      return;
    case term::Tag::Compound: {
      if (t.is_cons()) {
        // Walk the spine iteratively; the tail is whatever the spine ends
        // in (nil for proper lists, a variable or other term otherwise).
        std::vector<term::Term> items;
        term::Term cell = t;
        while (cell.is_cons()) {
          items.push_back(cell.head());
          cell = cell.tail().deref();
        }
        e.u8(kList);
        e.u32(static_cast<std::uint32_t>(items.size()));
        for (const term::Term& item : items) {
          encode_rec(e, item, vars, depth + 1);
        }
        encode_rec(e, cell, vars, depth + 1);
        return;
      }
      e.u8(kCompound);
      e.str(t.functor());
      if (t.arity() > 0xFFFF) throw WireError("compound arity too large");
      e.u16(static_cast<std::uint16_t>(t.arity()));
      for (const term::Term& a : t.args()) {
        encode_rec(e, a, vars, depth + 1);
      }
      return;
    }
  }
  throw WireError("unencodable term tag");
}

term::Term decode_rec(Decoder& d, std::vector<term::Term>& vars,
                      std::uint32_t depth) {
  if (depth > kMaxTermDepth) throw WireError("term too deep to decode");
  const std::uint8_t tag = d.u8();
  switch (tag) {
    case kVarDef: {
      term::Term v = term::Term::var(d.str());
      vars.push_back(v);
      return v;
    }
    case kVarRef: {
      const std::uint32_t idx = d.u32();
      if (idx >= vars.size()) throw WireError("variable reference out of range");
      return vars[idx];
    }
    case kAtom:
      return term::Term::atom(d.str());
    case kInt:
      return term::Term::integer(d.i64());
    case kFloat:
      return term::Term::real(d.f64());
    case kStr:
      return term::Term::str(d.str());
    case kCompound: {
      std::string functor = d.str();
      const std::uint16_t arity = d.u16();
      // Each argument takes at least one tag byte — a cheap bound that
      // stops a corrupted arity from reserving a huge vector.
      if (arity > d.remaining()) throw WireError("compound arity exceeds frame");
      std::vector<term::Term> args;
      args.reserve(arity);
      for (std::uint16_t i = 0; i < arity; ++i) {
        args.push_back(decode_rec(d, vars, depth + 1));
      }
      // The empty tuple {} is a zero-arity compound, but compound() with no
      // args normalizes to an atom — route tuples through tuple().
      if (functor == "{}") return term::Term::tuple(std::move(args));
      if (args.empty()) throw WireError("compound with zero arity");
      return term::Term::compound(std::move(functor), std::move(args));
    }
    case kList: {
      const std::uint32_t count = d.u32();
      if (count > d.remaining()) throw WireError("list length exceeds frame");
      std::vector<term::Term> items;
      items.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        items.push_back(decode_rec(d, vars, depth + 1));
      }
      term::Term tail = decode_rec(d, vars, depth + 1);
      return term::Term::list(std::move(items), std::move(tail));
    }
    default:
      throw WireError("unknown term tag");
  }
}

}  // namespace

void encode_term(Encoder& e, const term::Term& t) {
  VarIndex vars;
  encode_rec(e, t, vars, 0);
}

term::Term decode_term(Decoder& d) {
  std::vector<term::Term> vars;
  return decode_rec(d, vars, 0);
}

std::vector<std::uint8_t> term_bytes(const term::Term& t) {
  Encoder e;
  encode_term(e, t);
  return std::move(e.data());
}

term::Term term_from_bytes(const std::uint8_t* p, std::size_t n) {
  Decoder d(p, n);
  term::Term t = decode_term(d);
  if (!d.done()) throw WireError("trailing bytes after term");
  return t;
}

// ---- frames ----------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(const Frame& f) {
  Encoder body;
  body.u8(kWireVersion);
  body.u8(static_cast<std::uint8_t>(f.type));
  body.u32(f.src_rank);
  switch (f.type) {
    case FrameType::Hello:
    case FrameType::Join:
    case FrameType::Start:
    case FrameType::Shutdown:
      break;  // header only
    case FrameType::Post:
      body.u64(f.dst_node);
      body.u16(f.handler);
      body.u64(f.trace_id);
      encode_term(body, f.payload);
      break;
    case FrameType::Probe:
    case FrameType::Release:
      body.u64(f.round);
      break;
    case FrameType::ProbeReply:
      body.u64(f.round);
      body.u64(f.tx);
      body.u64(f.rx);
      body.u8(f.idle ? 1 : 0);
      break;
  }
  if (body.size() > kMaxFrameBytes) throw WireError("frame too large");

  Encoder out;
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.data().insert(out.data().end(), body.data().begin(), body.data().end());
  return std::move(out.data());
}

std::optional<Frame> decode_frame(const std::uint8_t* p, std::size_t n,
                                  std::size_t* consumed) {
  *consumed = 0;
  if (n < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  if (len > kMaxFrameBytes) throw WireError("frame length exceeds limit");
  if (len < 6) throw WireError("frame shorter than header");
  if (n < 4u + len) return std::nullopt;

  Decoder d(p + 4, len);
  const std::uint8_t version = d.u8();
  if (version != kWireVersion) throw WireError("wire version mismatch");
  const std::uint8_t type = d.u8();
  if (type < static_cast<std::uint8_t>(FrameType::Hello) ||
      type > static_cast<std::uint8_t>(FrameType::Shutdown)) {
    throw WireError("unknown frame type");
  }

  Frame f;
  f.type = static_cast<FrameType>(type);
  f.src_rank = d.u32();
  switch (f.type) {
    case FrameType::Hello:
    case FrameType::Join:
    case FrameType::Start:
    case FrameType::Shutdown:
      break;
    case FrameType::Post:
      f.dst_node = d.u64();
      f.handler = d.u16();
      f.trace_id = d.u64();
      f.payload = decode_term(d);
      break;
    case FrameType::Probe:
    case FrameType::Release:
      f.round = d.u64();
      break;
    case FrameType::ProbeReply:
      f.round = d.u64();
      f.tx = d.u64();
      f.rx = d.u64();
      f.idle = d.u8() != 0;
      break;
  }
  if (!d.done()) throw WireError("trailing bytes in frame");
  *consumed = 4u + len;
  return f;
}

}  // namespace motif::net
