#include "runtime/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace rt = motif::rt;

TEST(Stream, PushThenCollect) {
  rt::Stream<int> head;
  auto t = head.push(1);
  t = t.push(2);
  t = t.push(3);
  t.close();
  EXPECT_EQ(head.collect_blocking(), (std::vector<int>{1, 2, 3}));
}

TEST(Stream, EmptyStream) {
  rt::Stream<int> head;
  head.close();
  EXPECT_TRUE(head.is_nil());
  EXPECT_TRUE(head.collect_blocking().empty());
}

TEST(Stream, DoubleInstantiationThrows) {
  rt::Stream<int> head;
  head.push(1);
  EXPECT_THROW(head.push(2), rt::StreamReuse);
  EXPECT_THROW(head.close(), rt::StreamReuse);
}

TEST(Stream, TryNextStates) {
  rt::Stream<int> head;
  bool nil = true;
  EXPECT_FALSE(head.try_next(nil).has_value());
  EXPECT_FALSE(nil);
  auto tail = head.push(5);
  auto nx = head.try_next(nil);
  ASSERT_TRUE(nx.has_value());
  EXPECT_EQ(nx->first, 5);
  EXPECT_TRUE(nx->second.same_cell(tail));
  tail.close();
  EXPECT_FALSE(tail.try_next(nil).has_value());
  EXPECT_TRUE(nil);
}

TEST(Stream, WhenReadyFiresOnPush) {
  rt::Stream<int> head;
  int fired = 0;
  head.when_ready([&] { ++fired; });
  EXPECT_EQ(fired, 0);
  head.push(1);
  EXPECT_EQ(fired, 1);
}

TEST(Stream, WhenReadyInlineIfResolved) {
  rt::Stream<int> head;
  head.close();
  int fired = 0;
  head.when_ready([&] { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(Stream, ProducerConsumerAcrossThreads) {
  // The paper's Figure 1 shape: producer instantiates the list, consumer
  // walks it concurrently.
  rt::Stream<int> head;
  constexpr int kN = 10000;
  std::thread producer([head]() mutable {
    rt::Stream<int> t = head;
    for (int i = 0; i < kN; ++i) t = t.push(i);
    t.close();
  });
  auto got = head.collect_blocking();
  producer.join();
  ASSERT_EQ(got.size(), size_t(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(got[i], i);
}

TEST(StreamWriter, SingleProducerOrder) {
  rt::StreamWriter<int> w;
  for (int i = 0; i < 100; ++i) w.send(i);
  w.close();
  auto got = w.head().collect_blocking();
  ASSERT_EQ(got.size(), 100u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(StreamWriter, MultiProducerInterleavesAllItems) {
  constexpr int kProducers = 8;
  constexpr int kEach = 2000;
  rt::StreamWriter<int> w(kProducers);
  std::vector<std::thread> ts;
  for (int p = 0; p < kProducers; ++p) {
    ts.emplace_back([w, p]() mutable {
      for (int i = 0; i < kEach; ++i) w.send(p * kEach + i);
      w.close();
    });
  }
  auto got = w.head().collect_blocking();
  for (auto& t : ts) t.join();
  ASSERT_EQ(got.size(), size_t(kProducers * kEach));
  std::set<int> uniq(got.begin(), got.end());
  EXPECT_EQ(uniq.size(), got.size());
  // Per-producer order is preserved even though producers interleave.
  std::vector<int> last(kProducers, -1);
  for (int v : got) {
    int p = v / kEach;
    EXPECT_GT(v, last[p]);
    last[p] = v;
  }
}

TEST(StreamWriter, ExtraCloseThrows) {
  rt::StreamWriter<int> w(1);
  w.close();
  EXPECT_THROW(w.close(), rt::StreamReuse);
}

TEST(Merge, EmptyInputsGivesNil) {
  auto out = rt::merge<int>({});
  EXPECT_TRUE(out.is_nil());
}

TEST(Merge, MergesAlreadyMaterializedStreams) {
  std::vector<rt::Stream<int>> ins(3);
  for (int s = 0; s < 3; ++s) {
    auto t = ins[s];
    for (int i = 0; i < 5; ++i) t = t.push(s * 10 + i);
    t.close();
  }
  auto got = rt::merge(ins).collect_blocking();
  ASSERT_EQ(got.size(), 15u);
  std::multiset<int> expect, actual(got.begin(), got.end());
  for (int s = 0; s < 3; ++s)
    for (int i = 0; i < 5; ++i) expect.insert(s * 10 + i);
  EXPECT_EQ(actual, expect);
}

TEST(Merge, LongMaterializedStreamDoesNotOverflowStack) {
  rt::Stream<int> in;
  auto t = in;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) t = t.push(i);
  t.close();
  auto got = rt::merge<int>({in}).collect_blocking();
  EXPECT_EQ(got.size(), size_t(kN));
}

TEST(Merge, ConcurrentProducersAllArrive) {
  constexpr int kStreams = 4;
  constexpr int kEach = 3000;
  std::vector<rt::Stream<int>> ins(kStreams);
  auto out = rt::merge(ins);
  std::vector<std::thread> ts;
  for (int s = 0; s < kStreams; ++s) {
    ts.emplace_back([&ins, s]() mutable {
      auto t = ins[s];
      for (int i = 0; i < kEach; ++i) t = t.push(s * kEach + i);
      t.close();
    });
  }
  auto got = out.collect_blocking();
  for (auto& t : ts) t.join();
  ASSERT_EQ(got.size(), size_t(kStreams * kEach));
  std::set<int> uniq(got.begin(), got.end());
  EXPECT_EQ(uniq.size(), got.size());
}

TEST(Merge, PreservesPerInputOrder) {
  std::vector<rt::Stream<int>> ins(2);
  auto out = rt::merge(ins);
  std::thread a([&] {
    auto t = ins[0];
    for (int i = 0; i < 1000; ++i) t = t.push(i * 2);
    t.close();
  });
  std::thread b([&] {
    auto t = ins[1];
    for (int i = 0; i < 1000; ++i) t = t.push(i * 2 + 1);
    t.close();
  });
  auto got = out.collect_blocking();
  a.join();
  b.join();
  int last_even = -2, last_odd = -1;
  for (int v : got) {
    if (v % 2 == 0) {
      EXPECT_GT(v, last_even);
      last_even = v;
    } else {
      EXPECT_GT(v, last_odd);
      last_odd = v;
    }
  }
}
