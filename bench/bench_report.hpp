// Machine-readable bench output: one JSON object per line (JSONL).
//
// Every bench binary emits, per completed benchmark case, a line of the
// form
//
//   {"bench":"bench_memory","case":"TR2","iterations":1,
//    "peak_MiB":1.25,"procs":4,"trace":"/tmp/t.json"}
//
// to the file named by the MOTIF_BENCH_JSON environment variable
// (appended, so a whole suite accumulates into one JSONL file) or to
// stderr when unset — keeping google-benchmark's human console output on
// stdout untouched. The perf trajectory (BENCH_*.json) and EXPERIMENTS.md
// consume these lines; the schema is documented in EXPERIMENTS.md.
// Iteration-count calibration reruns each emit a line; consumers take the
// last line per (bench, case, parameter counters).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace motif::bench {

/// Builds one JSON object; field insertion order is preserved.
class JsonLine {
 public:
  JsonLine& field(std::string_view key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return raw(key, buf);
  }
  JsonLine& field(std::string_view key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonLine& field(std::string_view key, std::int64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonLine& field(std::string_view key, std::string_view v) {
    std::string quoted = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return raw(key, quoted);
  }

  std::string str() const { return "{" + body_ + "}"; }

  /// Appends the line to $MOTIF_BENCH_JSON, or stderr when unset.
  void emit() const {
    const std::string line = str() + "\n";
    if (const char* path = std::getenv("MOTIF_BENCH_JSON")) {
      if (std::FILE* f = std::fopen(path, "a")) {
        std::fwrite(line.data(), 1, line.size(), f);
        std::fclose(f);
        return;
      }
    }
    std::fwrite(line.data(), 1, line.size(), stderr);
  }

 private:
  JsonLine& raw(std::string_view key, std::string_view value) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_.append(key);
    body_ += "\":";
    body_.append(value);
    return *this;
  }

  std::string body_;
};

/// Emits the standard per-case line: bench + case names, iteration count,
/// every user counter the case recorded, and (when nonempty) the path of
/// a trace file written for this case. Call at the end of a benchmark
/// function, after the counters are set.
inline void report_case(const benchmark::State& state, std::string_view bench,
                        std::string_view case_name,
                        std::string_view trace_path = {}) {
  JsonLine line;
  line.field("bench", bench)
      .field("case", case_name)
      .field("iterations", static_cast<std::uint64_t>(state.iterations()));
  for (const auto& [name, counter] : state.counters) {
    line.field(name, static_cast<double>(counter.value));
  }
  if (!trace_path.empty()) line.field("trace", trace_path);
  line.emit();
}

/// MOTIF_BENCH_REPORT(state): report_case with names derived from the
/// source file ("bench/bench_server.cpp" -> "bench_server") and the
/// enclosing function ("BM_ServerThroughput" -> "ServerThroughput").
inline void report_case_auto(const benchmark::State& state,
                             std::string_view file, std::string_view func,
                             std::string_view trace_path = {}) {
  const auto slash = file.find_last_of("/\\");
  if (slash != std::string_view::npos) file.remove_prefix(slash + 1);
  if (file.size() > 4 && file.substr(file.size() - 4) == ".cpp") {
    file.remove_suffix(4);
  }
  if (func.rfind("BM_", 0) == 0) func.remove_prefix(3);
  report_case(state, file, func, trace_path);
}

}  // namespace motif::bench

#define MOTIF_BENCH_REPORT(state) \
  ::motif::bench::report_case_auto(state, __FILE__, __func__)
