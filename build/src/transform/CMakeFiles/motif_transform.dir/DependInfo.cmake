
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/motif.cpp" "src/transform/CMakeFiles/motif_transform.dir/motif.cpp.o" "gcc" "src/transform/CMakeFiles/motif_transform.dir/motif.cpp.o.d"
  "/root/repo/src/transform/rand.cpp" "src/transform/CMakeFiles/motif_transform.dir/rand.cpp.o" "gcc" "src/transform/CMakeFiles/motif_transform.dir/rand.cpp.o.d"
  "/root/repo/src/transform/sched.cpp" "src/transform/CMakeFiles/motif_transform.dir/sched.cpp.o" "gcc" "src/transform/CMakeFiles/motif_transform.dir/sched.cpp.o.d"
  "/root/repo/src/transform/server.cpp" "src/transform/CMakeFiles/motif_transform.dir/server.cpp.o" "gcc" "src/transform/CMakeFiles/motif_transform.dir/server.cpp.o.d"
  "/root/repo/src/transform/terminate.cpp" "src/transform/CMakeFiles/motif_transform.dir/terminate.cpp.o" "gcc" "src/transform/CMakeFiles/motif_transform.dir/terminate.cpp.o.d"
  "/root/repo/src/transform/tree.cpp" "src/transform/CMakeFiles/motif_transform.dir/tree.cpp.o" "gcc" "src/transform/CMakeFiles/motif_transform.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/term/CMakeFiles/motif_term.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
