// Chaos tier (ctest -L chaos): every motif under a swept FaultPlan must
// terminate with a *classified* RunOutcome — never hang — and the
// supervised wrappers must still produce correct values despite injected
// node loss. Deadlines are generous (CI machines are slow); the CI chaos
// job adds an outer watchdog on top.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "motifs/dist_tree_reduce.hpp"
#include "motifs/motifs.hpp"
#include "net/cluster.hpp"
#include "net/transport.hpp"
#include "runtime/fault.hpp"
#include "runtime/machine.hpp"

namespace m = motif;
namespace rt = motif::rt;
using namespace std::chrono_literals;

namespace {

constexpr auto kDeadline = 10s;

bool classified(rt::RunStatus s) {
  switch (s) {
    case rt::RunStatus::Completed:
    case rt::RunStatus::TaskFailed:
    case rt::RunStatus::Stalled:
    case rt::RunStatus::DeadlineExceeded:
    case rt::RunStatus::NodeLost:
      return true;
  }
  return false;
}

using IntTree = m::Tree<int, int>;

IntTree::Ptr balanced_tree(int depth, int& next) {
  if (depth == 0) return IntTree::leaf(next++);
  auto l = balanced_tree(depth - 1, next);
  auto r = balanced_tree(depth - 1, next);
  return IntTree::node(0, std::move(l), std::move(r));
}

int expected_sum(int leaves) {
  // Leaves hold 1..leaves (next starts at 1).
  return leaves * (leaves + 1) / 2;
}

struct SumEval {
  int operator()(const int&, const int& a, const int& b) const {
    return a + b;
  }
};

}  // namespace

// --- tree reduce -----------------------------------------------------------

TEST(Chaos, TreeReduceSweepAlwaysClassifies) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    rt::FaultPlan plan = rt::FaultPlan::chaos(seed);
    plan.drop = 0.10;
    rt::Machine mach({.nodes = 4, .workers = 2, .faults = plan});
    int next = 1;
    auto tree = balanced_tree(4, next);
    rt::SVar<int> out = m::tree_reduce1_async<int, int>(
        mach, tree, SumEval{}, m::MapPolicy::Random);
    rt::RunOutcome o = mach.wait_idle_for(kDeadline);
    ASSERT_TRUE(classified(o.status)) << "seed " << seed;
    ASSERT_NE(o.status, rt::RunStatus::DeadlineExceeded)
        << "seed " << seed << ": " << o.to_string();
    if (o.status == rt::RunStatus::Completed && out.bound()) {
      EXPECT_EQ(out.get(), expected_sum(16)) << "seed " << seed;
    }
  }
}

TEST(Chaos, SupervisedTreeReduce1SurvivesNodeLoss) {
  rt::FaultPlan plan;
  plan.kills.push_back({2, 1});  // node 2 dies after its first task
  rt::Machine mach({.nodes = 4, .workers = 2, .faults = plan});
  int next = 1;
  auto tree = balanced_tree(4, next);
  m::SuperviseOptions opts;
  opts.deadline = kDeadline;
  auto res = m::supervised_tree_reduce1<int, int>(mach, tree, SumEval{}, opts);
  ASSERT_TRUE(res.ok()) << res.last.to_string();
  EXPECT_EQ(*res.value, expected_sum(16));
  EXPECT_FALSE(res.degraded);
  EXPECT_GE(res.attempts, 1u);
  // The supervisor hands the machine back whole.
  EXPECT_TRUE(mach.lost_nodes().empty());
}

TEST(Chaos, SupervisedTreeReduce2SurvivesNodeLoss) {
  rt::FaultPlan plan;
  plan.kills.push_back({1, 2});
  rt::Machine mach({.nodes = 4, .workers = 2, .faults = plan});
  int next = 1;
  auto tree = balanced_tree(5, next);
  m::SuperviseOptions opts;
  opts.deadline = kDeadline;
  auto res = m::supervised_tree_reduce2<int, int>(mach, tree, SumEval{}, opts);
  ASSERT_TRUE(res.ok()) << res.last.to_string();
  EXPECT_EQ(*res.value, expected_sum(32));
  EXPECT_TRUE(mach.lost_nodes().empty());
}

TEST(Chaos, SupervisedDegradeFallbackWhenAttemptsExhausted) {
  rt::FaultPlan plan;
  plan.drop = 1.0;  // every cross-node message dies: no attempt can finish
  rt::Machine mach({.nodes = 4, .workers = 2, .faults = plan});
  int next = 1;
  auto tree = balanced_tree(3, next);
  m::SuperviseOptions opts;
  opts.max_attempts = 2;
  opts.deadline = 2s;
  auto res = m::supervised<int>(
      mach,
      [&tree](rt::Machine& mm, std::uint32_t) {
        return m::tree_reduce1_async<int, int>(mm, tree, SumEval{},
                                               m::MapPolicy::Random);
      },
      opts,
      [](const rt::RunOutcome& last) -> std::optional<int> {
        EXPECT_FALSE(last.ok());
        return -1;  // cached / approximate fallback
      });
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.degraded);
  EXPECT_EQ(*res.value, -1);
  EXPECT_EQ(res.attempts, 2u);
  EXPECT_NE(res.last.status, rt::RunStatus::Completed);
}

// --- server ----------------------------------------------------------------

TEST(Chaos, ServerJournalRecoversDroppedMessages) {
  // Token-passing ring under message loss: with the journal on, repeated
  // recover_lost() must eventually deliver every hop.
  constexpr std::uint32_t kServers = 4;
  constexpr int kTokens = 8;
  constexpr int kHops = 6;
  rt::FaultPlan plan = rt::FaultPlan::chaos(11);
  plan.drop = 0.25;
  rt::Machine mach({.nodes = kServers, .workers = 2, .faults = plan});
  std::atomic<int> hops_done{0};
  using Msg = std::pair<int, int>;  // token id, hops remaining
  m::ServerNetwork<Msg> net(
      mach, kServers, [&hops_done](auto& ctx, Msg msg) {
        hops_done.fetch_add(1, std::memory_order_relaxed);
        if (msg.second > 0) {
          const std::uint32_t next = ctx.self() % ctx.nodes() + 1;
          ctx.send(next, Msg{msg.first, msg.second - 1});
        }
      });
  net.enable_journal();
  for (int t = 0; t < kTokens; ++t) net.start(1, Msg{t, kHops});
  rt::RunOutcome o = net.wait_for(kDeadline);
  ASSERT_TRUE(classified(o.status));
  // Replay until nothing is left undelivered (each round re-sends from
  // the external thread, which the lottery does not touch, but forwarded
  // hops can be dropped again — hence the loop).
  int rounds = 0;
  while (net.recover_lost() > 0) {
    ASSERT_LT(++rounds, 64) << "journal replay did not converge";
    o = net.wait_for(kDeadline);
    ASSERT_TRUE(classified(o.status));
  }
  // Every hop of every token ran at least once (duplicates allowed: the
  // plan may double-deliver, and replay re-sends lost mail).
  EXPECT_GE(hops_done.load(), kTokens * (kHops + 1));
  EXPECT_GT(mach.fault_totals().drops, 0u) << "plan never fired";
}

TEST(Chaos, ServerSurvivesServerCrash) {
  // Kill one server mid-run: wait_for classifies instead of hanging, and
  // recovery revives the node and replays its discarded mailbox.
  constexpr std::uint32_t kServers = 3;
  rt::FaultPlan plan;
  plan.kills.push_back({1, 2});  // server 2 (node 1) dies
  rt::Machine mach({.nodes = kServers, .workers = 2, .faults = plan});
  std::atomic<int> handled{0};
  m::ServerNetwork<int> net(mach, kServers, [&handled](auto& ctx, int n) {
    handled.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) ctx.send(ctx.self() % ctx.nodes() + 1, n - 1);
  });
  net.enable_journal();
  net.start(2, 12);  // a 13-hop chain through the ring, via the victim
  rt::RunOutcome o = net.wait_for(kDeadline);
  ASSERT_TRUE(classified(o.status));
  int rounds = 0;
  while (net.recover_lost() > 0) {
    ASSERT_LT(++rounds, 64);
    o = net.wait_for(kDeadline);
    ASSERT_TRUE(classified(o.status));
  }
  EXPECT_GE(handled.load(), 13);
  EXPECT_TRUE(mach.lost_nodes().empty());  // recover_lost revived it
}

// --- scheduler -------------------------------------------------------------

TEST(Chaos, SchedulerRunForClassifiesWorkerLoss) {
  // The DAG is shaped so the outcome does not depend on how the machine
  // interleaves workers (32 independent jobs did: which worker node runs
  // how many is a scheduling accident, so a task-count kill spec may
  // never fire). A dependency chain admits exactly one outstanding job
  // at a time, which makes the manager's dispatch rotation — and hence
  // each worker node's task count — fully deterministic:
  //
  //   c0→c1→...→c6: the rotation gives worker node 1 jobs c0, c3, c6,
  //     so the kill {node 1, after 3 tasks} fires right after c6's body
  //     (its completion message is already on the wire — kills strike
  //     after a task, not during).
  //   c6 releases THREE fan jobs at once: the manager hands f7, f8 to
  //     the two parked workers, and — the queue still being non-empty —
  //     answers node 1's own request with f9. Node 1 is dead: f9 is a
  //     dead-drop, and the tail (depending on all three) never releases.
  rt::FaultPlan plan;
  plan.kills.push_back({1, 3});  // worker node 1 dies after its 3rd task
  rt::Machine mach({.nodes = 4, .workers = 2, .faults = plan});
  m::Scheduler sched(mach);
  std::atomic<int> done{0};
  const auto body = [&done] { done.fetch_add(1, std::memory_order_relaxed); };
  std::vector<motif::SchedTaskId> chain;
  chain.push_back(sched.submit(body));
  for (int i = 1; i < 7; ++i) {
    chain.push_back(sched.submit(body, {chain.back()}));
  }
  const auto f7 = sched.submit(body, {chain.back()});
  const auto f8 = sched.submit(body, {chain.back()});
  const auto f9 = sched.submit(body, {chain.back()});  // lost to the kill
  sched.submit(body, {f7, f8, f9});                    // never releases
  auto [outcome, msgs] = sched.run_for(kDeadline);
  ASSERT_TRUE(classified(outcome.status));
  ASSERT_NE(outcome.status, rt::RunStatus::DeadlineExceeded)
      << outcome.to_string();
  // The job dispatched to the dead worker (and the tail gated on it) is
  // lost: the run cannot have completed.
  EXPECT_NE(outcome.status, rt::RunStatus::Completed);
  EXPECT_EQ(outcome.blocked_on, "scheduler.done");
  EXPECT_EQ(outcome.lost_nodes, std::vector<rt::NodeId>{1});
  EXPECT_GT(msgs, 0u);
  EXPECT_EQ(done.load(), 9);  // c0..c6 + f7 + f8; f9 and the tail lost
  EXPECT_GE(mach.fault_totals().kills, 1u);
}

TEST(Chaos, SchedulerRunForCompletesWithoutFaults) {
  rt::Machine mach({.nodes = 4, .workers = 2});
  m::Scheduler sched(mach);
  std::atomic<int> done{0};
  auto a = sched.submit([&done] { done.fetch_add(1); });
  sched.submit([&done] { done.fetch_add(1); }, {a});
  auto [outcome, msgs] = sched.run_for(kDeadline);
  EXPECT_EQ(outcome.status, rt::RunStatus::Completed);
  EXPECT_EQ(done.load(), 2);
  EXPECT_GT(msgs, 0u);
}

// --- pipeline --------------------------------------------------------------

TEST(Chaos, PipelineStageThrowUnwindsAndRethrows) {
  // A throwing stage must not wedge the chain: channels close, every
  // thread joins, and run() rethrows the first error.
  m::Pipeline<int> p(1);
  int produced = 0;
  std::atomic<int> consumed{0};
  p.source([&produced]() -> std::optional<int> {
    return produced < 100 ? std::optional<int>(produced++) : std::nullopt;
  });
  p.stage([](int v) {
    if (v == 3) throw std::runtime_error("stage blew up at 3");
    return v * 2;
  });
  p.sink([&consumed](int) { consumed.fetch_add(1); });
  EXPECT_THROW(p.run(), std::runtime_error);
  EXPECT_LT(consumed.load(), 100);
}

TEST(Chaos, PipelineSinkThrowUnwindsAndRethrows) {
  m::Pipeline<int> p(2);
  int produced = 0;
  p.source([&produced]() -> std::optional<int> {
    return produced < 50 ? std::optional<int>(produced++) : std::nullopt;
  });
  p.sink([](int v) {
    if (v == 5) throw std::logic_error("sink refused item 5");
  });
  EXPECT_THROW(p.run(), std::logic_error);
}

// --- cluster (loopback transport) ------------------------------------------

namespace {

/// Fresh 2-rank loopback cluster with `plan` applied at the net seam.
struct NetChaosRun {
  m::DistTreeReduce2::Result result;
  rt::NetStats totals;  // summed over both ranks
};

NetChaosRun net_chaos_run(const rt::FaultPlan& plan, std::uint64_t seed,
                          std::uint32_t depth = 6) {
  motif::net::LoopbackHub hub(2);
  std::vector<std::unique_ptr<motif::net::Cluster>> cs;
  for (std::uint32_t r = 0; r < 2; ++r) {
    motif::net::ClusterConfig cfg;
    cfg.nodes_per_rank = 2;
    cfg.machine.seed = 0x5EEDull + r;
    cfg.net_faults = plan;
    cs.push_back(std::make_unique<motif::net::Cluster>(hub.endpoint(r), cfg));
  }
  std::vector<std::unique_ptr<m::DistTreeReduce2>> trs;
  for (auto& c : cs) trs.push_back(std::make_unique<m::DistTreeReduce2>(*c));
  cs[1]->start();
  cs[0]->start();
  NetChaosRun out;
  out.result = trs[0]->run(depth, seed, kDeadline);
  for (auto& c : cs) {
    const auto s = c->net_stats();
    out.totals.drops += s.drops;
    out.totals.dups += s.dups;
    out.totals.delays += s.delays;
  }
  return out;
}

}  // namespace

TEST(Chaos, NetDupAndDelayNeverLoseTheResult) {
  // Duplicates and delays reorder or repeat frames but lose none, and the
  // distributed reduce is dup-safe (orphan partials, try_bind root) — so
  // every run must complete with the right value on the first attempt.
  std::uint64_t dups = 0, delays = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    rt::FaultPlan plan;
    plan.seed = seed;
    plan.duplicate = 0.20;
    plan.delay = 0.20;
    const auto r = net_chaos_run(plan, seed);
    ASSERT_TRUE(r.result.ok) << "seed " << seed << ": "
                             << r.result.outcome.to_string();
    EXPECT_EQ(r.result.value, r.result.expected) << "seed " << seed;
    dups += r.totals.dups;
    delays += r.totals.delays;
  }
  EXPECT_GT(dups + delays, 0u) << "lottery never fired across 4 seeds";
}

TEST(Chaos, NetDropsClassifyAsStalled) {
  // Every cross-rank frame lost: the cluster still goes globally idle
  // (drops are never counted as sent, so termination detection converges)
  // and run() refines Completed-but-unbound to Stalled — never a hang,
  // never DeadlineExceeded.
  rt::FaultPlan plan;
  plan.drop = 1.0;
  const auto r = net_chaos_run(plan, 21);
  ASSERT_FALSE(r.result.ok);
  EXPECT_EQ(r.result.outcome.status, rt::RunStatus::Stalled)
      << r.result.outcome.to_string();
  EXPECT_GT(r.totals.drops, 0u);
}

TEST(Chaos, NetDropRetryConverges) {
  // Mild loss plus supervisor-style retry with a reseeded plan: each
  // attempt is classified, and some attempt out of 8 gets a clean run
  // through (deterministic given the fixed seeds).
  rt::FaultPlan plan;
  plan.seed = 77;
  plan.drop = 0.05;
  bool succeeded = false;
  for (std::uint32_t attempt = 0; attempt < 8 && !succeeded; ++attempt) {
    const auto r =
        net_chaos_run(plan.reseeded(attempt), 13 + attempt, /*depth=*/4);
    ASSERT_TRUE(classified(r.result.outcome.status)) << "attempt " << attempt;
    ASSERT_NE(r.result.outcome.status, rt::RunStatus::DeadlineExceeded)
        << "attempt " << attempt << ": " << r.result.outcome.to_string();
    if (r.result.ok) {
      EXPECT_EQ(r.result.value, r.result.expected);
      succeeded = true;
    } else {
      EXPECT_EQ(r.result.outcome.status, rt::RunStatus::Stalled)
          << r.result.outcome.to_string();
      EXPECT_GT(r.totals.drops, 0u) << "stalled without a drop?";
    }
  }
  EXPECT_TRUE(succeeded) << "no attempt out of 8 completed";
}

// --- wavefront -------------------------------------------------------------

TEST(Chaos, WavefrontSweepAlwaysClassifies) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    rt::FaultPlan plan = rt::FaultPlan::chaos(seed);
    plan.drop = 0.05;
    rt::Machine mach({.nodes = 4, .workers = 2, .faults = plan});
    std::atomic<int> cells{0};
    rt::SVar<bool> done = m::wavefront_async(
        mach, 8, 8,
        [&cells](std::size_t, std::size_t) {
          cells.fetch_add(1, std::memory_order_relaxed);
        },
        /*tile=*/2);
    rt::RunOutcome o = mach.wait_idle_for(kDeadline);
    ASSERT_TRUE(classified(o.status)) << "seed " << seed;
    ASSERT_NE(o.status, rt::RunStatus::DeadlineExceeded)
        << "seed " << seed << ": " << o.to_string();
    if (o.status == rt::RunStatus::Completed && done.bound()) {
      EXPECT_EQ(cells.load(), 64) << "seed " << seed;
    } else {
      EXPECT_LT(cells.load(), 64) << "seed " << seed;
    }
  }
}

TEST(Chaos, SupervisedWavefrontSurvivesNodeLoss) {
  rt::FaultPlan plan;
  plan.kills.push_back({3, 1});
  rt::Machine mach({.nodes = 4, .workers = 2, .faults = plan});
  std::atomic<int> cells{0};
  m::SuperviseOptions opts;
  opts.deadline = kDeadline;
  auto res = m::supervised<bool>(
      mach,
      [&cells](rt::Machine& mm, std::uint32_t) {
        return m::wavefront_async(
            mm, 6, 6,
            [&cells](std::size_t, std::size_t) {
              cells.fetch_add(1, std::memory_order_relaxed);
            },
            /*tile=*/2);
      },
      opts);
  ASSERT_TRUE(res.ok()) << res.last.to_string();
  EXPECT_TRUE(*res.value);
  // The final (successful) attempt visits every cell exactly once.
  EXPECT_GE(cells.load(), 36);
}
