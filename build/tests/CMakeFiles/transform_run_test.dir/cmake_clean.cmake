file(REMOVE_RECURSE
  "CMakeFiles/transform_run_test.dir/transform_run_test.cpp.o"
  "CMakeFiles/transform_run_test.dir/transform_run_test.cpp.o.d"
  "transform_run_test"
  "transform_run_test.pdb"
  "transform_run_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
