file(REMOVE_RECURSE
  "CMakeFiles/motifs_failure_test.dir/motifs_failure_test.cpp.o"
  "CMakeFiles/motifs_failure_test.dir/motifs_failure_test.cpp.o.d"
  "motifs_failure_test"
  "motifs_failure_test.pdb"
  "motifs_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motifs_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
