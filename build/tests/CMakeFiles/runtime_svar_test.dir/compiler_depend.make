# Empty compiler generated dependencies file for runtime_svar_test.
# This may be replaced when dependencies are built.
