#include "align/nw.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "align/sequence.hpp"
#include "motifs/wavefront.hpp"

namespace motif::align {

NWResult needleman_wunsch(const std::string& a, const std::string& b,
                          const NWParams& p) {
  const std::size_t n = a.size(), m = b.size();
  // dp[i][j]: best score aligning a[0..i) with b[0..j).
  std::vector<std::vector<std::int32_t>> dp(n + 1,
                                            std::vector<std::int32_t>(m + 1));
  for (std::size_t i = 0; i <= n; ++i) dp[i][0] = static_cast<std::int32_t>(i) * p.gap;
  for (std::size_t j = 0; j <= m; ++j) dp[0][j] = static_cast<std::int32_t>(j) * p.gap;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      const std::int32_t diag =
          dp[i - 1][j - 1] + (a[i - 1] == b[j - 1] ? p.match : p.mismatch);
      const std::int32_t up = dp[i - 1][j] + p.gap;
      const std::int32_t left = dp[i][j - 1] + p.gap;
      dp[i][j] = std::max({diag, up, left});
    }
  }
  NWResult r;
  r.score = dp[n][m];
  // Traceback.
  std::size_t i = n, j = m;
  std::string ra, rb;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 &&
        dp[i][j] == dp[i - 1][j - 1] +
                        (a[i - 1] == b[j - 1] ? p.match : p.mismatch)) {
      ra.push_back(a[i - 1]);
      rb.push_back(b[j - 1]);
      --i;
      --j;
    } else if (i > 0 && dp[i][j] == dp[i - 1][j] + p.gap) {
      ra.push_back(a[i - 1]);
      rb.push_back(kGap);
      --i;
    } else {
      ra.push_back(kGap);
      rb.push_back(b[j - 1]);
      --j;
    }
  }
  std::reverse(ra.begin(), ra.end());
  std::reverse(rb.begin(), rb.end());
  r.aligned_a = std::move(ra);
  r.aligned_b = std::move(rb);
  return r;
}

std::int32_t nw_score(const std::string& a, const std::string& b,
                      const NWParams& p) {
  const std::string& lo = a.size() <= b.size() ? a : b;
  const std::string& hi = a.size() <= b.size() ? b : a;
  std::vector<std::int32_t> prev(lo.size() + 1), cur(lo.size() + 1);
  for (std::size_t j = 0; j <= lo.size(); ++j) {
    prev[j] = static_cast<std::int32_t>(j) * p.gap;
  }
  for (std::size_t i = 1; i <= hi.size(); ++i) {
    cur[0] = static_cast<std::int32_t>(i) * p.gap;
    for (std::size_t j = 1; j <= lo.size(); ++j) {
      const std::int32_t diag =
          prev[j - 1] + (hi[i - 1] == lo[j - 1] ? p.match : p.mismatch);
      cur[j] = std::max({diag, prev[j] + p.gap, cur[j - 1] + p.gap});
    }
    std::swap(prev, cur);
  }
  return prev[lo.size()];
}

std::int32_t nw_score_wavefront(rt::Machine& m, const std::string& a,
                                const std::string& b,
                                const NWParams& params) {
  const std::size_t n = a.size(), mm = b.size();
  if (n == 0 || mm == 0) {
    return static_cast<std::int32_t>(std::max(n, mm)) * params.gap;
  }
  // Full (n+1) x (m+1) matrix; row/column 0 prefilled, the wavefront
  // computes the interior with tile-level parallelism.
  std::vector<std::int32_t> dp((n + 1) * (mm + 1));
  const std::size_t stride = mm + 1;
  for (std::size_t i = 0; i <= n; ++i) {
    dp[i * stride] = static_cast<std::int32_t>(i) * params.gap;
  }
  for (std::size_t j = 0; j <= mm; ++j) {
    dp[j] = static_cast<std::int32_t>(j) * params.gap;
  }
  motif::wavefront(
      m, n, mm,
      [&](std::size_t i0, std::size_t j0) {
        const std::size_t i = i0 + 1, j = j0 + 1;
        const std::int32_t diag =
            dp[(i - 1) * stride + (j - 1)] +
            (a[i - 1] == b[j - 1] ? params.match : params.mismatch);
        const std::int32_t up = dp[(i - 1) * stride + j] + params.gap;
        const std::int32_t left = dp[i * stride + (j - 1)] + params.gap;
        dp[i * stride + j] = std::max({diag, up, left});
      },
      /*tile=*/48);
  return dp[n * stride + mm];
}

double kmer_distance(const std::string& a, const std::string& b, int k) {
  if (a.size() < static_cast<std::size_t>(k) ||
      b.size() < static_cast<std::size_t>(k)) {
    return a == b ? 0.0 : 1.0;
  }
  auto census = [k](const std::string& s) {
    std::unordered_map<std::string, double> c;
    for (std::size_t i = 0; i + k <= s.size(); ++i) {
      c[s.substr(i, k)] += 1.0;
    }
    return c;
  };
  auto ca = census(a), cb = census(b);
  double shared = 0.0;
  for (const auto& [kmer, cnt] : ca) {
    auto it = cb.find(kmer);
    if (it != cb.end()) shared += std::min(cnt, it->second);
  }
  const double denom = static_cast<double>(
      std::min(a.size(), b.size()) - static_cast<std::size_t>(k) + 1);
  return 1.0 - shared / denom;
}

}  // namespace motif::align
