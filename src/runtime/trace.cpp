#include "runtime/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <map>
#include <ostream>
#include <string>

namespace motif::rt {

namespace trace_detail {
ThreadBinding& tl_binding() {
  thread_local ThreadBinding b;
  return b;
}
}  // namespace trace_detail

namespace {

/// Chrome's trace-event timestamps are microseconds; keep sub-us
/// resolution with three decimals.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10)
     << static_cast<char>('0' + ns % 10);
}

void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      default:
        if (c < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[c >> 4] << hex[c & 0xF];
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
}

struct EventWriter {
  std::ostream& os;
  bool first = true;

  void open(const char* name, const char* cat, char ph, std::size_t tid,
            std::uint64_t ts_ns) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":";
    write_json_string(os, name);
    os << ",\"cat\":\"" << cat << "\",\"ph\":\"" << ph
       << "\",\"pid\":0,\"tid\":" << tid << ",\"ts\":";
    write_us(os, ts_ns);
  }
  void close() { os << '}'; }
};

}  // namespace

void write_chrome_trace(const TraceLog& log, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  EventWriter w{os};

  // Track naming + per-track dropped-event metadata.
  if (!w.first) os << ",\n";
  w.first = false;
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"motif machine\"}}";
  for (std::size_t tid = 0; tid < log.tracks.size(); ++tid) {
    const TraceTrack& t = log.tracks[tid];
    os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << tid << ",\"args\":{\"name\":";
    write_json_string(os, t.name.c_str());
    os << ",\"dropped_events\":" << t.dropped << "}}";
  }

  for (std::size_t tid = 0; tid < log.tracks.size(); ++tid) {
    for (const TraceEvent& e : log.tracks[tid].events) {
      switch (e.kind) {
        case TraceEventKind::TaskBegin:
          w.open("task", "task", 'B', tid, e.ts_ns);
          w.close();
          break;
        case TraceEventKind::TaskEnd:
          w.open("task", "task", 'E', tid, e.ts_ns);
          os << ",\"args\":{\"work\":" << e.id << '}';
          w.close();
          break;
        case TraceEventKind::EvalBegin:
          w.open("eval", "eval", 'B', tid, e.ts_ns);
          w.close();
          break;
        case TraceEventKind::EvalEnd:
          w.open("eval", "eval", 'E', tid, e.ts_ns);
          w.close();
          break;
        case TraceEventKind::SpanBegin:
          w.open(e.name, "span", 'B', tid, e.ts_ns);
          w.close();
          break;
        case TraceEventKind::SpanEnd:
          w.open(e.name, "span", 'E', tid, e.ts_ns);
          w.close();
          break;
        case TraceEventKind::MsgSend:
          w.open("msg", "msg", 's', tid, e.ts_ns);
          os << ",\"id\":" << e.id << ",\"args\":{\"to\":" << e.peer
             << ",\"hops\":" << e.hops << '}';
          w.close();
          break;
        case TraceEventKind::MsgRecv:
          w.open("msg", "msg", 'f', tid, e.ts_ns);
          os << ",\"bp\":\"e\",\"id\":" << e.id
             << ",\"args\":{\"from\":" << e.peer << ",\"hops\":" << e.hops
             << '}';
          w.close();
          break;
        case TraceEventKind::Fault:
          // Instant event: an injected fault (drop/dup/delay/kill/throw)
          // pinned to the node that decided it.
          w.open(e.name, "fault", 'i', tid, e.ts_ns);
          os << ",\"s\":\"t\",\"args\":{\"peer\":" << e.peer
             << ",\"ordinal\":" << e.id << '}';
          w.close();
          break;
        case TraceEventKind::Counter:
          // 'C' phase: Chrome/Perfetto render these as a value graph.
          w.open(e.name, "sched", 'C', tid, e.ts_ns);
          os << ",\"args\":{\"value\":" << e.id << '}';
          w.close();
          break;
      }
    }
  }
  os << "\n]}\n";
}

std::uint64_t max_concurrent(const TraceTrack& track, TraceEventKind begin,
                             TraceEventKind end) {
  std::uint64_t depth = 0, peak = 0;
  for (const TraceEvent& e : track.events) {
    if (e.kind == begin) {
      peak = std::max(peak, ++depth);
    } else if (e.kind == end && depth > 0) {
      // depth==0 means the matching begin fell off a full ring.
      --depth;
    }
  }
  return peak;
}

void write_text_summary(const TraceLog& log, std::ostream& os) {
  for (std::size_t tid = 0; tid < log.tracks.size(); ++tid) {
    const TraceTrack& t = log.tracks[tid];
    std::uint64_t tasks = 0, sent = 0, recvd = 0, work = 0, hops = 0;
    std::map<std::string, std::uint64_t> spans;
    std::map<std::string, std::uint64_t> faults;
    std::map<std::string, std::uint64_t> counters;  // last sampled value
    for (const TraceEvent& e : t.events) {
      switch (e.kind) {
        case TraceEventKind::TaskBegin:
          ++tasks;
          break;
        case TraceEventKind::TaskEnd:
          work += e.id;
          break;
        case TraceEventKind::MsgSend:
          ++sent;
          hops += e.hops;
          break;
        case TraceEventKind::MsgRecv:
          ++recvd;
          break;
        case TraceEventKind::SpanBegin:
          ++spans[e.name];
          break;
        case TraceEventKind::Fault:
          ++faults[e.name];
          break;
        case TraceEventKind::Counter:
          counters[e.name] = e.id;  // monotonic: keep the latest sample
          break;
        default:
          break;
      }
    }
    os << t.name << ": events=" << t.events.size()
       << " dropped=" << t.dropped << " tasks=" << tasks << " work=" << work
       << " sent=" << sent << " recv=" << recvd << " hops=" << hops
       << " max_concurrent_evals="
       << max_concurrent(t, TraceEventKind::EvalBegin,
                         TraceEventKind::EvalEnd)
       << "\n";
    for (const auto& [name, n] : spans) {
      os << "  span " << name << ": " << n << "\n";
    }
    for (const auto& [name, n] : faults) {
      os << "  fault " << name << ": " << n << "\n";
    }
    for (const auto& [name, n] : counters) {
      os << "  counter " << name << ": " << n << "\n";
    }
  }
}

}  // namespace motif::rt
