# Empty dependencies file for runtime_metrics_test.
# This may be replaced when dependencies are built.
