# Empty compiler generated dependencies file for interp_core_test.
# This may be replaced when dependencies are built.
