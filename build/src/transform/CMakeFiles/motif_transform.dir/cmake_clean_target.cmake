file(REMOVE_RECURSE
  "libmotif_transform.a"
)
