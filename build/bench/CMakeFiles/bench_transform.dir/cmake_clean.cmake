file(REMOVE_RECURSE
  "CMakeFiles/bench_transform.dir/bench_transform.cpp.o"
  "CMakeFiles/bench_transform.dir/bench_transform.cpp.o.d"
  "bench_transform"
  "bench_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
