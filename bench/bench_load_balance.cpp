// Experiment E1 (DESIGN.md §4): "This random mapping should produce a
// reasonably balanced load if |Nodes| >> |Processors|" (Section 3.1).
//
// Series: tree leaves 2^6..2^16 x processors {2,4,8,16,32}, reporting the
// per-processor work imbalance (max/mean; 1.0 = perfect) of Tree-Reduce-1
// under random victim selection, plus the round-robin ablation.
//
// Expected shape: imbalance -> 1 as leaves/processor grows; small trees on
// many processors are imbalanced.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "motifs/tree.hpp"
#include "motifs/tree_reduce.hpp"

namespace m = motif;
namespace rt = motif::rt;

namespace {

void run_case(benchmark::State& state, m::MapPolicy policy) {
  const auto leaves = static_cast<std::size_t>(state.range(0));
  const auto procs = static_cast<std::uint32_t>(state.range(1));
  rt::Rng tree_rng(1234);
  auto tree = m::random_tree<long, char>(
      tree_rng, leaves, [](rt::Rng& r) { return long(r.below(10)); },
      [](rt::Rng&) { return '+'; });
  double imbalance = 0.0, vspeedup = 0.0;
  std::uint64_t remote = 0;
  for (auto _ : state) {
    rt::Machine mach({.nodes = procs, .workers = 2, .batch = 64, .seed = 77});
    auto eval = [&mach](const char&, const long& a, const long& b) {
      mach.add_work(1);  // one unit per node evaluation
      return a + b;
    };
    benchmark::DoNotOptimize(
        m::tree_reduce1<long, char>(mach, tree, eval, policy));
    auto s = mach.load_summary();
    imbalance = s.work_imbalance;
    vspeedup = s.virtual_speedup;
    remote = s.remote_msgs;
  }
  state.counters["imbalance"] = imbalance;
  state.counters["virt_speedup"] = vspeedup;
  state.counters["remote_msgs"] = static_cast<double>(remote);
  state.counters["leaves_per_proc"] =
      static_cast<double>(leaves) / static_cast<double>(procs);
}

void BM_RandomMapping(benchmark::State& state) {
  run_case(state, m::MapPolicy::Random);
  MOTIF_BENCH_REPORT(state);
}

void BM_RoundRobinMapping(benchmark::State& state) {
  run_case(state, m::MapPolicy::RoundRobin);
  MOTIF_BENCH_REPORT(state);
}

void args(benchmark::internal::Benchmark* b) {
  for (int leaves : {64, 256, 1024, 4096, 16384, 65536}) {
    for (int procs : {2, 4, 8, 16, 32}) {
      b->Args({leaves, procs});
    }
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK(BM_RandomMapping)->Apply(args);
BENCHMARK(BM_RoundRobinMapping)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
