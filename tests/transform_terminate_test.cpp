// The short-circuit termination transformation (Section 3.3's sketched
// extension): structural checks and end-to-end runs where halt fires
// exactly when the application has quiesced.
#include <gtest/gtest.h>

#include <functional>

#include "interp/interp.hpp"
#include "lint_helpers.hpp"
#include "term/parser.hpp"
#include "transform/motif.hpp"
#include "transform/rand.hpp"
#include "transform/server.hpp"
#include "transform/terminate.hpp"

namespace tf = motif::transform;
namespace in = motif::interp;
namespace t = motif::term;
using t::ProcKey;
using t::Program;

namespace {
in::InterpOptions nodes(std::uint32_t n) {
  in::InterpOptions o;
  o.nodes = n;
  o.workers = 2;
  return o;
}

std::string sum_tree(int leaves) {
  std::function<std::string(int)> build = [&](int k) -> std::string {
    if (k == 1) return "leaf(1)";
    return "tree('+'," + build(k / 2) + "," + build(k - k / 2) + ")";
  };
  return build(leaves);
}
}  // namespace

TEST(TerminateTransform, ThreadsCircuitThroughCalls) {
  Program a = Program::parse("p(X) :- q(X), r(X).\nq(_).\nr(_).");
  Program out = tf::terminate_motif({"p", 1}).transformed(a);
  // p/1 -> p/3; its body goals q,r each get a segment.
  auto rules = out.rules_for({"p", 3});
  ASSERT_EQ(rules.size(), 1u);
  const auto& body = rules[0].body;
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(body[0].arity(), 3u);
  EXPECT_EQ(body[1].arity(), 3u);
  // Chaining: q's right segment is r's left; ends tie to the head pair.
  const auto& head = rules[0].head;
  EXPECT_TRUE(body[0].arg(1).same_node(head.arg(1)));   // Cl
  EXPECT_TRUE(body[0].arg(2).same_node(body[1].arg(1)));  // middle
  EXPECT_TRUE(body[1].arg(2).same_node(head.arg(2)));   // Cr
}

TEST(TerminateTransform, EmptyBodyShortsSegment) {
  Program a = Program::parse("p(1).");
  Program out = tf::terminate_motif({"p", 1}).transformed(a);
  auto rules = out.rules_for({"p", 3});
  ASSERT_EQ(rules.size(), 1u);
  ASSERT_EQ(rules[0].body.size(), 1u);
  EXPECT_EQ(rules[0].body[0].functor(), "tw_short");
}

TEST(TerminateTransform, AssignmentsWrappedWithValueJoin) {
  Program a = Program::parse("p(X,Y) :- X := done, Y is 1 + 2.");
  Program out = tf::terminate_motif({"p", 2}).transformed(a);
  auto rules = out.rules_for({"p", 4});
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].body[0].functor(), "tw_assign");
  EXPECT_EQ(rules[0].body[1].functor(), "tw_is");
}

TEST(TerminateTransform, PlacementAnnotationPreserved) {
  Program a = Program::parse("p(X) :- q(X)@random.\nq(_).");
  Program out = tf::terminate_motif({"p", 1}).transformed(a);
  auto rules = out.rules_for({"p", 3});
  const auto& g = rules[0].body[0];
  EXPECT_EQ(g.functor(), "@");
  EXPECT_EQ(g.arg(0).arity(), 3u);  // circuit rides inside the annotation
}

TEST(TerminateTransform, GeneratesEntryWrapper) {
  Program a = Program::parse("p(X,Y) :- Y := X.");
  Program out = tf::terminate_motif({"p", 2}).transformed(a);
  ASSERT_TRUE(out.defines({"p_tw", 2}));
  auto rules = out.rules_for({"p_tw", 2});
  EXPECT_EQ(rules[0].body[0].functor(), "p");
  EXPECT_EQ(rules[0].body[0].arity(), 4u);
  EXPECT_EQ(rules[0].body[0].arg(2).functor(), "closed");
  EXPECT_EQ(rules[0].body[1].functor(), "tw_watch");
}

TEST(TerminateRun, TreeReductionHaltsWithBoundValue) {
  Program user = Program::parse(
      "eval('+',L,R,Value) :- Value is L + R.\n"
      "eval('*',L,R,Value) :- Value is L * R.\n");
  Program full = tf::tree_reduce1_terminating_motif().apply(user);
  EXPECT_TRUE(WellModed(full));
  in::Interp interp(full, nodes(4));
  auto [goal, r] = interp.run_query(
      "create(4, reduce_tw(" + sum_tree(64) + ",Value))");
  // No stuck servers: halt fired; and the value must have been bound
  // BEFORE the circuit closed (tw_is joins on the computed value).
  EXPECT_FALSE(r.deadlocked())
      << (r.stuck_goals.empty() ? "-" : r.stuck_goals[0]);
  EXPECT_EQ(goal.arg(1).arg(1).int_value(), 64);
}

TEST(TerminateRun, PaperTreeValue24) {
  Program user = Program::parse(
      "eval('+',L,R,Value) :- Value is L + R.\n"
      "eval('*',L,R,Value) :- Value is L * R.\n");
  Program full = tf::tree_reduce1_terminating_motif().apply(user);
  in::Interp interp(full, nodes(2));
  auto [goal, r] = interp.run_query(
      "create(2, reduce_tw(tree('*',tree('*',leaf(3),leaf(2)),"
      "tree('+',leaf(3),leaf(1))),Value))");
  EXPECT_EQ(goal.arg(1).arg(1).int_value(), 24);
  EXPECT_FALSE(r.deadlocked());
}

TEST(TerminateRun, SideEffectOnlyApplicationStillTerminates) {
  // No result variable at all: data-driven detection has nothing to wait
  // on, but the circuit still detects global quiescence. The app spawns a
  // tree of processes that just count work.
  const char* kApp = R"(
    spray(0).
    spray(N) :- N > 0 |
        N1 is N - 1,
        spray(N1)@random,
        spray(N1)@random.
  )";
  Program transformed =
      tf::compose_all(
          {tf::server_motif(),
           tf::rand_motif({ProcKey{"spray_tw", 1}}),
           tf::terminate_motif({"spray", 1})})
          .apply(Program::parse(kApp));
  EXPECT_TRUE(WellModed(transformed));
  in::Interp interp(transformed, nodes(4));
  auto [goal, r] = interp.run_query("create(4, spray_tw(6))");
  // All 4 servers received halt and stopped: nothing is suspended.
  EXPECT_FALSE(r.deadlocked())
      << (r.stuck_goals.empty() ? "-" : r.stuck_goals[0]);
  EXPECT_GE(r.reductions, (1u << 6));
}

TEST(TerminateRun, WithoutTerminateSameAppLeavesServersWaiting) {
  // Control: the identical pipeline minus Terminate leaves the servers
  // suspended forever (the paper: Random "does not provide for
  // termination detection").
  const char* kApp = R"(
    spray(0).
    spray(N) :- N > 0 |
        N1 is N - 1,
        spray(N1)@random,
        spray(N1)@random.
  )";
  Program transformed =
      tf::compose_all({tf::server_motif(),
                       tf::rand_motif({ProcKey{"spray", 1}})})
          .apply(Program::parse(kApp));
  in::Interp interp(transformed, nodes(4));
  auto [goal, r] = interp.run_query("create(4, spray(6))");
  EXPECT_EQ(r.still_suspended, 4u);  // the four server loops
}
