file(REMOVE_RECURSE
  "CMakeFiles/align_profile_test.dir/align_profile_test.cpp.o"
  "CMakeFiles/align_profile_test.dir/align_profile_test.cpp.o.d"
  "align_profile_test"
  "align_profile_test.pdb"
  "align_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
