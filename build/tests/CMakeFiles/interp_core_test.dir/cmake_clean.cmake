file(REMOVE_RECURSE
  "CMakeFiles/interp_core_test.dir/interp_core_test.cpp.o"
  "CMakeFiles/interp_core_test.dir/interp_core_test.cpp.o.d"
  "interp_core_test"
  "interp_core_test.pdb"
  "interp_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
