// Pattern matching, substitution and renaming over terms — the toolkit the
// transformation engine (src/transform) is written with, mirroring the
// paper's "transformations as programs that manipulate these terms".
#pragma once

#include <functional>
#include <unordered_map>

#include "term/term.hpp"

namespace motif::term {

/// Variable-cell -> replacement term.
using Bindings = std::unordered_map<Term, Term, TermHash, TermIdEq>;

/// One-way (pattern) match: variables in `pattern` bind consistently to
/// subterms of `value`; variables in `value` only match the same variable
/// cell. On failure `b` may contain partial bindings. Syntactic — does not
/// bind run-time variables.
bool match(const Term& pattern, const Term& value, Bindings& b);

/// Applies `b` to `t`, replacing every mapped variable (recursively through
/// the replacement too). Unmapped variables stay.
Term substitute(const Term& t, const Bindings& b);

/// Structure-preserving copy with every distinct variable replaced by a
/// fresh one; `mapping` accumulates old-var -> new-var so several terms
/// (head + body of a rule) can share the renaming.
Term rename_fresh(const Term& t, Bindings& mapping);

/// Bottom-up rewrite: applies `f` to every subterm (children first); if `f`
/// returns a term, it replaces the subterm.
Term rewrite(const Term& t,
             const std::function<std::optional<Term>(const Term&)>& f);

/// True if some subterm satisfies `pred`.
bool contains(const Term& t, const std::function<bool(const Term&)>& pred);

/// Alpha-equivalence: equal up to a consistent bijective renaming of
/// unbound variables. `va`/`vb` accumulate the two-way mapping so several
/// terms (e.g. the parts of a clause) can share one renaming.
bool alpha_equal(const Term& a, const Term& b, Bindings& va, Bindings& vb);
bool alpha_equal(const Term& a, const Term& b);

}  // namespace motif::term
