#include "analysis/lint.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <set>
#include <unordered_map>

#include "interp/arith.hpp"
#include "interp/builtins.hpp"
#include "term/subst.hpp"
#include "term/writer.hpp"

namespace motif::analysis {

using term::Clause;
using term::ProcKey;
using term::Program;
using term::Term;

const char* code_id(Code c) {
  switch (c) {
    case Code::MultipleWriters: return "ML001";
    case Code::NoProducer: return "ML002";
    case Code::GuardUnbindable: return "ML003";
    case Code::UnknownProcess: return "ML010";
    case Code::ArityMismatch: return "ML011";
    case Code::BuiltinRedefined: return "ML012";
    case Code::UnreachableRule: return "ML020";
    case Code::UnreachableProcess: return "ML021";
    case Code::OtherwisePosition: return "ML030";
    case Code::SingletonVariable: return "ML031";
    case Code::BadPlacement: return "ML040";
    case Code::UnknownGuard: return "ML050";
    case Code::NonProcessGoal: return "ML051";
    case Code::UnsupervisedRemotePost: return "ML060";
  }
  return "ML???";
}

const char* code_slug(Code c) {
  switch (c) {
    case Code::MultipleWriters: return "multiple-writers";
    case Code::NoProducer: return "no-producer";
    case Code::GuardUnbindable: return "guard-unbindable";
    case Code::UnknownProcess: return "unknown-process";
    case Code::ArityMismatch: return "arity-mismatch";
    case Code::BuiltinRedefined: return "builtin-redefined";
    case Code::UnreachableRule: return "unreachable-rule";
    case Code::UnreachableProcess: return "unreachable-process";
    case Code::OtherwisePosition: return "otherwise-position";
    case Code::SingletonVariable: return "singleton-variable";
    case Code::BadPlacement: return "bad-placement";
    case Code::UnknownGuard: return "unknown-guard";
    case Code::NonProcessGoal: return "non-process-goal";
    case Code::UnsupervisedRemotePost: return "unsupervised-remote-post";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string s;
  if (span.valid()) s += span.to_string() + ": ";
  s += severity == Severity::Error ? "error: " : "warning: ";
  s += code_id(code);
  s += " ";
  s += code_slug(code);
  s += ": ";
  s += message;
  s += " [" + definition.to_string() + " rule " +
       std::to_string(rule_index + 1) + "]";
  return s;
}

std::size_t Report::errors() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(), [](const auto& d) {
        return d.severity == Severity::Error;
      }));
}

std::size_t Report::warnings() const {
  return diagnostics.size() - errors();
}

std::string Report::to_string() const {
  std::string s;
  for (const auto& d : diagnostics) {
    s += d.to_string();
    s += '\n';
  }
  return s;
}

namespace {

/// Per-clause statistics of one variable cell, accumulated over every
/// occurrence. The checks read these off after the scan.
struct VarStat {
  std::string name;
  int occurrences = 0;
  int definite_writes = 0;  // LHS of :=/is, inside a builtin 'o' argument
  int call_writes = 0;      // top-level at a callee position that writes
  int escapes = 0;          // into data / messages / unknown callees
  int consumes = 0;         // positions that require the variable bound
  int guard_consumes = 0;   // consumed by a guard test specifically
  bool in_head = false;
};

struct ClauseScan {
  std::unordered_map<Term, VarStat, term::TermHash, term::TermIdEq> vars;
  std::vector<Term> order;  // first-occurrence order, for stable output

  VarStat& at(const Term& v) {
    auto [it, inserted] = vars.try_emplace(v);
    if (inserted) {
      it->second.name = v.var_name();
      order.push_back(v);
    }
    return it->second;
  }
  const VarStat* find(const Term& v) const {
    auto it = vars.find(v);
    return it == vars.end() ? nullptr : &it->second;
  }
};

/// How one occurrence of a variable is classified.
enum class Occ { Head, Write, Escape, Consume, GuardConsume, Neutral };

void record(ClauseScan& cs, const Term& v, Occ occ) {
  VarStat& s = cs.at(v);
  s.occurrences++;
  switch (occ) {
    case Occ::Head: s.in_head = true; break;
    case Occ::Write: s.definite_writes++; break;
    case Occ::Escape: s.escapes++; break;
    case Occ::Consume: s.consumes++; break;
    case Occ::GuardConsume:
      s.guard_consumes++;
      s.consumes++;
      break;
    case Occ::Neutral: break;
  }
}

void each_var(const Term& t, const std::function<void(const Term&)>& fn) {
  Term d = t.deref();
  if (d.is_var()) {
    fn(d);
    return;
  }
  if (d.is_compound()) {
    for (const auto& a : d.args()) each_var(a, fn);
  }
}

void record_all(ClauseScan& cs, const Term& t, Occ occ) {
  each_var(t, [&](const Term& v) { record(cs, v, occ); });
}

bool is_placement(const Term& t) {
  Term d = t.deref();
  return d.is_compound() && !d.is_cons() && !d.is_tuple() &&
         d.functor() == "@" && d.arity() == 2;
}

bool is_node_op(const std::string& f, std::size_t n) {
  if (n == 2) {
    return f == "+" || f == "-" || f == "*" || f == "/" || f == "//" ||
           f == "mod" || f == "min" || f == "max";
  }
  return n == 1 && f == "abs";
}

/// True if the guard list is absent or all-`true` (such rules always
/// commit once the head matches — the precondition for subsumption).
bool guard_is_trivial(const std::vector<Term>& guard) {
  for (const auto& g : guard) {
    Term d = g.deref();
    if (!(d.is_atom() && d.functor() == "true")) return false;
  }
  return true;
}

/// Scans clauses, classifying every variable occurrence against the
/// builtin signature table and the (possibly still-evolving) mode table.
/// `sink` receives goal-level diagnostics; it is null during the
/// mode-inference fixpoint.
class Scanner {
 public:
  Scanner(const Program& program, const Options& opts, const ModeTable* modes)
      : modes_(modes), supervision_(opts.supervision) {
    for (const auto& k : program.defined()) {
      defined_.insert(k);
      names_.insert(k.name);
    }
    for (const auto& k : opts.assume_defined) assumed_.insert(k);
    for (const auto& sig : interp::builtin_signatures()) {
      names_.insert(std::string(sig.name));
    }
  }

  std::function<void(Code, Severity, const std::string&)> sink;

  ClauseScan scan(const Clause& c) {
    ClauseScan cs;
    scan_head(cs, c.head);
    scan_guard(cs, c.guard);
    for (const auto& g : c.body) scan_body_goal(cs, g);
    return cs;
  }

 private:
  void diag(Code code, Severity sev, const std::string& msg) {
    if (sink) sink(code, sev, msg);
  }

  /// Flags any placement annotation buried inside a term (heads, guards,
  /// goal arguments): `@` is only meaningful at the top of a body goal.
  void check_no_placement_inside(const Term& t, const char* where) {
    Term d = t.deref();
    if (is_placement(d)) {
      diag(Code::BadPlacement, Severity::Error,
           "placement annotation " + term::format_term(d) + " inside " +
               where + " (@ applies only to top-level body goals)");
      return;
    }
    if (d.is_compound()) {
      for (const auto& a : d.args()) check_no_placement_inside(a, where);
    }
  }

  void scan_head(ClauseScan& cs, const Term& head) {
    Term h = head.deref();
    if (is_placement(h)) {
      diag(Code::BadPlacement, Severity::Error,
           "placement annotation on a clause head (@ applies only to body "
           "goals)");
      record_all(cs, h, Occ::Head);
      return;
    }
    if (interp::find_builtin(h.functor(), h.arity()) != nullptr) {
      diag(Code::BuiltinRedefined, Severity::Error,
           "rule head redefines the builtin " + h.functor() + "/" +
               std::to_string(h.arity()));
    }
    if (h.is_compound()) {
      for (const auto& a : h.args()) check_no_placement_inside(a, "the head");
    }
    record_all(cs, h, Occ::Head);
  }

  void scan_guard(ClauseScan& cs, const std::vector<Term>& guard) {
    bool seen_otherwise = false;
    for (const auto& gt : guard) {
      Term d = gt.deref();
      if (seen_otherwise) {
        diag(Code::OtherwisePosition, Severity::Warning,
             "guard test after otherwise can never influence commitment");
      }
      if (d.is_var()) {
        record(cs, d, Occ::GuardConsume);
        continue;
      }
      if (d.is_atom() && d.functor() == "otherwise") {
        if (&gt != &guard.front()) {
          diag(Code::OtherwisePosition, Severity::Warning,
               "otherwise must be the whole guard (the interpreter only "
               "honours it in first position)");
        }
        seen_otherwise = true;
        continue;
      }
      if (d.is_atom() && d.functor() == "true") continue;
      if (d.is_compound() && !d.is_cons() && !d.is_tuple() &&
          interp::is_comparison(d.functor(), d.arity())) {
        record_all(cs, d.arg(0), Occ::GuardConsume);
        record_all(cs, d.arg(1), Occ::GuardConsume);
        continue;
      }
      if (d.is_compound() && !d.is_cons() && !d.is_tuple() &&
          interp::is_type_test(d.functor(), d.arity())) {
        Term a = d.arg(0).deref();
        if (a.is_var()) {
          record(cs, a, Occ::GuardConsume);
        } else {
          record_all(cs, a, Occ::Neutral);
        }
        continue;
      }
      diag(Code::UnknownGuard, Severity::Error,
           "not a recognised guard test: " + term::format_term(d) +
               " (guards are comparisons, type tests, true, otherwise)");
      record_all(cs, d, Occ::Escape);
    }
  }

  void scan_placement(ClauseScan& cs, const Term& t) {
    Term d = t.deref();
    if (d.is_var()) {
      record(cs, d, Occ::Consume);
      return;
    }
    if (d.is_int()) return;
    if (d.is_atom() && (d.functor() == "random" || d.functor() == "task")) {
      return;  // motif pragmas, consumed by the Rand/Sched transformations
    }
    if (d.is_compound() && !d.is_cons() && !d.is_tuple() &&
        is_node_op(d.functor(), d.arity())) {
      for (const auto& a : d.args()) scan_placement(cs, a);
      return;
    }
    diag(Code::BadPlacement, Severity::Error,
         "placement argument " + term::format_term(d) +
             " is not a node expression (integer arithmetic, random, task)");
    record_all(cs, d, Occ::Escape);
  }

  void scan_assign(ClauseScan& cs, const Term& g, bool strict_arith) {
    Term l = g.arg(0).deref();
    Term r = g.arg(1).deref();
    if (l.is_var()) {
      record(cs, l, Occ::Write);
    } else {
      record_all(cs, l, Occ::Consume);  // degenerates to an equality test
    }
    if (strict_arith || interp::looks_arithmetic(r)) {
      record_all(cs, r, Occ::Consume);
    } else {
      record_all(cs, r, Occ::Escape);  // data assignment: rhs vars live on
    }
  }

  void scan_body_goal(ClauseScan& cs, const Term& goal) {
    auto view = term::strip_placement(goal);
    if (view.annotated) {
      scan_placement(cs, view.placement);
      if (supervision_ && !in_supervised_) {
        diag(Code::UnsupervisedRemotePost, Severity::Warning,
             "goal " + term::format_term(view.goal) +
                 " is posted to another node with no supervision/timeout "
                 "wrapper (wrap it in supervised/1 or timeout/2)");
      }
    }
    Term g = view.goal.deref();
    if (g.is_var()) {
      record(cs, g, Occ::Consume);  // metacall: runs whatever it is bound to
      return;
    }
    if (is_placement(g)) {
      diag(Code::BadPlacement, Severity::Error,
           "nested placement annotation: " + term::format_term(goal));
      record_all(cs, g, Occ::Escape);
      return;
    }
    if (!(g.is_atom() || g.is_compound()) || g.is_cons() || g.is_tuple()) {
      diag(Code::NonProcessGoal, Severity::Error,
           "body goal " + term::format_term(g) + " is not a process call");
      record_all(cs, g, Occ::Escape);
      return;
    }
    const std::string& f = g.functor();
    const std::size_t n = g.arity();
    // Supervision wrappers (only meaningful with the ML060 check on):
    // supervised(G) and timeout(G, Budget) scan G as a body goal — which
    // legalises a placement annotation inside — and mark any remote post
    // under them as covered.
    if (supervision_ &&
        ((f == "supervised" && n == 1) || (f == "timeout" && n == 2))) {
      if (n == 2) record_all(cs, g.arg(1), Occ::Consume);
      const bool saved = in_supervised_;
      in_supervised_ = true;
      scan_body_goal(cs, g.arg(0));
      in_supervised_ = saved;
      return;
    }
    if (g.is_compound()) {
      for (const auto& a : g.args()) check_no_placement_inside(a, "a goal");
    }
    if ((f == ":=" || f == "=") && n == 2) {
      scan_assign(cs, g, /*strict_arith=*/false);
      return;
    }
    if (f == "is" && n == 2) {
      scan_assign(cs, g, /*strict_arith=*/true);
      return;
    }
    if (const auto* sig = interp::find_builtin(f, n)) {
      for (std::size_t i = 0; i < n; ++i) {
        const Term a = g.arg(i).deref();
        switch (sig->modes[i]) {
          case 'i':
            if (a.is_var()) {
              record(cs, a, Occ::Consume);
            } else {
              record_all(cs, a, Occ::Escape);  // spine-read structure
            }
            break;
          case 'x':
            record_all(cs, a, Occ::Consume);
            break;
          case 'o':
            record_all(cs, a, Occ::Write);
            break;
          case 'd':
            record_all(cs, a, Occ::Escape);
            break;
        }
      }
      return;
    }
    scan_user_call(cs, g, ProcKey{f, n});
  }

  void scan_user_call(ClauseScan& cs, const Term& g, const ProcKey& key) {
    if (defined_.count(key) != 0) {
      const ProcModes* pm = nullptr;
      if (modes_ != nullptr) {
        auto it = modes_->find(key);
        if (it != modes_->end()) pm = &it->second;
      }
      for (std::size_t i = 0; i < key.arity; ++i) {
        const Term a = g.arg(i).deref();
        const bool w = pm != nullptr && pm->writes[i];
        const bool bind = pm != nullptr && pm->may_bind[i];
        const bool need = pm != nullptr && pm->needs[i];
        if (!a.is_var()) {
          record_all(cs, a, Occ::Escape);  // vars inside data given away
          continue;
        }
        VarStat& s = cs.at(a);
        s.occurrences++;
        if (w) s.call_writes++;
        if (need) s.consumes++;
        if (!w && bind) s.escapes++;
      }
      return;
    }
    if (assumed_.count(key) != 0) {
      if (g.is_compound()) {
        for (const auto& a : g.args()) record_all(cs, a, Occ::Escape);
      }
      return;
    }
    if (interp::is_guard_test(key.name, key.arity)) {
      diag(Code::UnknownProcess, Severity::Error,
           key.to_string() + " is a guard test, not a process (move it "
                             "before the commit bar)");
    } else if (names_.count(key.name) != 0) {
      diag(Code::ArityMismatch, Severity::Error,
           "no process " + key.to_string() + " (the name exists at a "
                                             "different arity)");
    } else {
      diag(Code::UnknownProcess, Severity::Error,
           "call to undefined process " + key.to_string());
    }
    if (g.is_compound()) {
      for (const auto& a : g.args()) record_all(cs, a, Occ::Escape);
    }
  }

  const ModeTable* modes_;
  bool supervision_ = false;
  bool in_supervised_ = false;  // scanning under a supervision wrapper
  std::set<ProcKey> defined_;
  std::set<ProcKey> assumed_;
  std::set<std::string> names_;  // defined or builtin, any arity
};

int head_occurrences(const Term& head, const Term& v) {
  int n = 0;
  each_var(head, [&](const Term& u) {
    if (u.same_node(v)) ++n;
  });
  return n;
}

/// Subsumption: an earlier always-committing rule whose head matches
/// everything the later head matches makes the later rule unreachable.
bool subsumes(const Clause& earlier, const Clause& later) {
  if (!guard_is_trivial(earlier.guard)) return false;
  term::Bindings renaming;
  Term pattern = term::rename_fresh(earlier.head, renaming);
  term::Bindings b;
  return term::match(pattern, later.head, b);
}

}  // namespace

ModeTable infer_modes(const Program& program, const Options& opts) {
  ModeTable table;
  std::size_t positions = 0;
  for (const auto& c : program.clauses()) {
    Term h = c.head.deref();
    ProcKey key{h.functor(), h.arity()};
    auto [it, inserted] = table.try_emplace(key);
    if (inserted) {
      it->second.writes.assign(key.arity, false);
      it->second.may_bind.assign(key.arity, false);
      it->second.needs.assign(key.arity, false);
      positions += key.arity;
    }
  }
  Scanner scanner(program, opts, &table);

  auto raise = [](std::vector<bool>& bits, std::size_t i, bool v) {
    if (v && !bits[i]) {
      bits[i] = true;
      return true;
    }
    return false;
  };

  // Monotone fixpoint: each pass can only switch bits on, so it converges
  // within (3 * positions + 1) passes; in practice a handful.
  for (std::size_t pass = 0; pass <= 3 * positions + 1; ++pass) {
    bool changed = false;
    for (const auto& c : program.clauses()) {
      Term h = c.head.deref();
      ProcKey key{h.functor(), h.arity()};
      ClauseScan cs = scanner.scan(c);
      ProcModes& pm = table[key];
      for (std::size_t i = 0; i < key.arity; ++i) {
        const Term a = h.arg(i).deref();
        if (!a.is_var()) {
          changed |= raise(pm.needs, i, true);
          continue;
        }
        const VarStat* s = cs.find(a);
        if (s == nullptr) continue;
        const bool writes = s->definite_writes > 0 || s->call_writes > 0;
        changed |= raise(pm.writes, i, writes);
        changed |= raise(pm.may_bind, i, writes || s->escapes > 0);
        changed |= raise(pm.needs, i,
                         s->consumes > 0 || head_occurrences(h, a) > 1);
      }
    }
    if (!changed) break;
  }
  return table;
}

Report analyze(const Program& program, const Options& opts) {
  Report rep;
  const ModeTable modes = infer_modes(program, opts);
  Scanner scanner(program, opts, &modes);

  std::map<ProcKey, std::vector<std::size_t>> rules_of;  // clause indices
  const auto& clauses = program.clauses();
  for (std::size_t ci = 0; ci < clauses.size(); ++ci) {
    const Clause& c = clauses[ci];
    Term h = c.head.deref();
    ProcKey key{h.functor(), h.arity()};
    auto& indices = rules_of[key];
    const std::size_t rule_index = indices.size();
    indices.push_back(ci);

    scanner.sink = [&](Code code, Severity sev, const std::string& msg) {
      rep.diagnostics.push_back(
          {code, sev, key, ci, rule_index, c.span, msg});
    };
    ClauseScan cs = scanner.scan(c);

    for (const auto& v : cs.order) {
      const VarStat& s = *cs.find(v);
      const bool bindable =
          s.definite_writes > 0 || s.call_writes > 0 || s.escapes > 0;
      if (s.definite_writes >= 2 ||
          (s.definite_writes >= 1 && s.call_writes >= 1)) {
        scanner.sink(Code::MultipleWriters, Severity::Error,
                     "variable " + s.name +
                         " has multiple potential writers "
                         "(single-assignment violation)");
      }
      if (s.guard_consumes > 0 && !s.in_head) {
        scanner.sink(Code::GuardUnbindable, Severity::Error,
                     "guard waits on " + s.name +
                         ", which is not a head variable and so can never "
                         "be bound before commitment");
      } else if (s.consumes > 0 && !s.in_head && !bindable) {
        scanner.sink(Code::NoProducer, Severity::Error,
                     "variable " + s.name +
                         " is consumed but has no possible producer "
                         "(guaranteed suspension)");
      }
      if (opts.singletons && s.occurrences == 1 && !s.name.empty() &&
          s.name[0] != '_') {
        scanner.sink(Code::SingletonVariable, Severity::Warning,
                     "singleton variable " + s.name +
                         " (use _ if this is intentional)");
      }
    }
  }
  scanner.sink = nullptr;

  // Unreachable rules: subsumed by an earlier always-committing rule.
  for (const auto& [key, indices] : rules_of) {
    for (std::size_t j = 1; j < indices.size(); ++j) {
      for (std::size_t k = 0; k < j; ++k) {
        if (subsumes(clauses[indices[k]], clauses[indices[j]])) {
          rep.diagnostics.push_back(
              {Code::UnreachableRule, Severity::Error, key, indices[j], j,
               clauses[indices[j]].span,
               "unreachable rule: every goal it matches commits to rule " +
                   std::to_string(k + 1) + " first"});
          break;
        }
      }
    }
  }

  // Reachability from the given entry points.
  if (!opts.entries.empty()) {
    const auto cg = program.call_graph();
    std::set<ProcKey> reached;
    std::deque<ProcKey> work;
    for (const auto& e : opts.entries) {
      if (!program.defines(e)) {
        rep.diagnostics.push_back(
            {Code::UnknownProcess, Severity::Error, e, 0, 0, {},
             "entry process " + e.to_string() + " is not defined"});
        continue;
      }
      if (reached.insert(e).second) work.push_back(e);
    }
    while (!work.empty()) {
      ProcKey k = work.front();
      work.pop_front();
      auto it = cg.find(k);
      if (it == cg.end()) continue;
      for (const auto& callee : it->second) {
        if (program.defines(callee) && reached.insert(callee).second) {
          work.push_back(callee);
        }
      }
    }
    for (const auto& key : program.defined()) {
      if (reached.count(key) != 0) continue;
      const std::size_t ci = rules_of[key].front();
      rep.diagnostics.push_back(
          {Code::UnreachableProcess, Severity::Warning, key, ci, 0,
           clauses[ci].span,
           key.to_string() + " is defined but unreachable from the given "
                             "entries"});
    }
  }

  // Program order: sort by clause index, then by insertion (stable).
  std::stable_sort(rep.diagnostics.begin(), rep.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.clause_index < b.clause_index;
                   });
  return rep;
}

}  // namespace motif::analysis
