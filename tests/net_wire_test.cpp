// Wire-format unit tests: golden little-endian bytes, per-tag round
// trips, variable sharing, framing (incomplete vs corrupt), and the
// recursion-depth bound in both directions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/wire.hpp"
#include "term/subst.hpp"

namespace n = motif::net;
namespace t = motif::term;
using t::Term;

namespace {

std::vector<std::uint8_t> bytes_of(const Term& x) { return n::term_bytes(x); }

Term round_trip(const Term& x) {
  const auto b = bytes_of(x);
  return n::term_from_bytes(b.data(), b.size());
}

}  // namespace

TEST(WirePrimitives, LittleEndianGolden) {
  n::Encoder e;
  e.u8(0xAB);
  e.u16(0x1234);
  e.u32(0xDEADBEEF);
  e.u64(0x0102030405060708ull);
  e.str("hi");
  const std::vector<std::uint8_t> expect = {
      0xAB,                                            // u8
      0x34, 0x12,                                      // u16 LE
      0xEF, 0xBE, 0xAD, 0xDE,                          // u32 LE
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // u64 LE
      0x02, 0x00, 0x00, 0x00, 'h', 'i',                // str = len + bytes
  };
  EXPECT_EQ(e.data(), expect);

  n::Decoder d(e.data().data(), e.size());
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_EQ(d.u16(), 0x1234);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0102030405060708ull);
  EXPECT_EQ(d.str(), "hi");
  EXPECT_TRUE(d.done());
}

TEST(WirePrimitives, SignedAndFloat) {
  n::Encoder e;
  e.i64(-42);
  e.f64(3.25);
  e.f64(-0.0);
  n::Decoder d(e.data().data(), e.size());
  EXPECT_EQ(d.i64(), -42);
  EXPECT_EQ(d.f64(), 3.25);
  const double nz = d.f64();
  EXPECT_EQ(nz, 0.0);
  EXPECT_TRUE(std::signbit(nz));  // bit-exact, not value-approximate
}

TEST(WireTerm, EveryTagRoundTrips) {
  const Term cases[] = {
      Term::integer(0),
      Term::integer(-123456789),
      Term::real(2.5),
      Term::atom("foo"),
      Term::atom("quoted atom"),
      Term::str("hello \"wire\""),
      Term::nil(),
      Term::var("X"),
      Term::compound("f", {Term::integer(1), Term::atom("a")}),
      Term::tuple({Term::integer(1), Term::integer(2), Term::integer(3)}),
      Term::tuple({}),  // {} is a zero-arity compound, not an atom
      Term::list({Term::integer(1), Term::integer(2)}),
  };
  for (const Term& x : cases) {
    const Term y = round_trip(x);
    EXPECT_TRUE(t::alpha_equal(x, y)) << x.to_string() << " vs "
                                      << y.to_string();
  }
}

TEST(WireTerm, VariableSharingSurvives) {
  Term v = Term::var("X");
  Term w = Term::var("Y");
  const Term x = Term::compound("pair", {v, Term::compound("q", {v, w})});
  const Term y = round_trip(x);
  ASSERT_TRUE(t::alpha_equal(x, y));
  // Both occurrences of X decode to the SAME fresh cell.
  const Term y1 = y.arg(0);
  const Term y2 = y.arg(1).arg(0);
  const Term y3 = y.arg(1).arg(1);
  EXPECT_TRUE(y1.same_node(y2));
  EXPECT_FALSE(y1.same_node(y3));
  EXPECT_EQ(y1.var_name(), "X");
  EXPECT_EQ(y3.var_name(), "Y");
}

TEST(WireTerm, BoundVariablesEncodeTheirValue) {
  Term v = Term::var("X");
  v.bind(Term::integer(7));
  const Term y = round_trip(Term::compound("f", {v}));
  EXPECT_TRUE(t::alpha_equal(y, Term::compound("f", {Term::integer(7)})));
}

TEST(WireTerm, ImproperAndLongLists) {
  // Improper list keeps its variable tail.
  Term tail = Term::var("T");
  const Term x = Term::list({Term::integer(1), Term::integer(2)}, tail);
  EXPECT_TRUE(t::alpha_equal(x, round_trip(x)));

  // A list far longer than kMaxTermDepth still round-trips: the spine is
  // encoded iteratively, one depth level total.
  std::vector<Term> items;
  for (int i = 0; i < 10000; ++i) items.push_back(Term::integer(i));
  const Term longlist = Term::list(items);
  const Term y = round_trip(longlist);
  auto back = y.proper_list();
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 10000u);
  EXPECT_EQ((*back)[9999].int_value(), 9999);
}

TEST(WireTerm, DepthBoundOnEncode) {
  Term x = Term::integer(0);
  for (std::uint32_t i = 0; i <= n::kMaxTermDepth; ++i) {
    x = Term::compound("f", {x});
  }
  n::Encoder e;
  EXPECT_THROW(n::encode_term(e, x), n::WireError);
}

TEST(WireTerm, DepthBoundOnDecode) {
  // Hand-build bytes nesting deeper than the bound: kCompound("f",1) * N.
  n::Encoder e;
  for (std::uint32_t i = 0; i <= n::kMaxTermDepth; ++i) {
    e.u8(0x06);  // kCompound
    e.str("f");
    e.u16(1);
  }
  e.u8(0x03);  // kInt
  e.i64(1);
  n::Decoder d(e.data().data(), e.size());
  EXPECT_THROW(n::decode_term(d), n::WireError);
}

TEST(WireTerm, TrailingBytesRejected) {
  auto b = bytes_of(Term::integer(5));
  b.push_back(0x00);
  EXPECT_THROW(n::term_from_bytes(b.data(), b.size()), n::WireError);
}

TEST(WireTerm, CorruptCountsRejectedWithoutHugeAllocation) {
  // kList with a 4-billion count but 1 byte of payload.
  n::Encoder e;
  e.u8(0x07);
  e.u32(0xFFFFFFFFu);
  e.u8(0x03);
  EXPECT_THROW(n::term_from_bytes(e.data().data(), e.size()), n::WireError);

  // VarRef beyond the definition table.
  n::Encoder e2;
  e2.u8(0x01);
  e2.u32(3);
  EXPECT_THROW(n::term_from_bytes(e2.data().data(), e2.size()), n::WireError);
}

TEST(WireFrame, PostRoundTripsAllFields) {
  n::Frame f;
  f.type = n::FrameType::Post;
  f.src_rank = 3;
  f.dst_node = 41;
  f.handler = 7;
  f.trace_id = 0xABCDEF0102ull;
  f.payload = Term::tuple({Term::integer(1), Term::atom("go")});
  const auto b = n::encode_frame(f);

  std::size_t consumed = 0;
  auto g = n::decode_frame(b.data(), b.size(), &consumed);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(consumed, b.size());
  EXPECT_EQ(g->type, n::FrameType::Post);
  EXPECT_EQ(g->src_rank, 3u);
  EXPECT_EQ(g->dst_node, 41u);
  EXPECT_EQ(g->handler, 7u);
  EXPECT_EQ(g->trace_id, 0xABCDEF0102ull);
  EXPECT_TRUE(t::alpha_equal(g->payload, f.payload));
}

TEST(WireFrame, ControlFramesRoundTrip) {
  n::Frame f;
  f.type = n::FrameType::ProbeReply;
  f.src_rank = 2;
  f.round = 9;
  f.tx = 123;
  f.rx = 120;
  f.idle = true;
  const auto b = n::encode_frame(f);
  std::size_t consumed = 0;
  auto g = n::decode_frame(b.data(), b.size(), &consumed);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->round, 9u);
  EXPECT_EQ(g->tx, 123u);
  EXPECT_EQ(g->rx, 120u);
  EXPECT_TRUE(g->idle);
}

TEST(WireFrame, IncompleteIsNotCorrupt) {
  n::Frame f;
  f.type = n::FrameType::Post;
  f.payload = Term::str("a reasonably long payload string");
  const auto b = n::encode_frame(f);
  // Every strict prefix must return nullopt (read more), never throw.
  for (std::size_t cut = 0; cut < b.size(); ++cut) {
    std::size_t consumed = 99;
    auto g = n::decode_frame(b.data(), cut, &consumed);
    EXPECT_FALSE(g.has_value()) << "prefix " << cut;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WireFrame, TwoFramesBackToBack) {
  n::Frame a;
  a.type = n::FrameType::Probe;
  a.round = 1;
  n::Frame b;
  b.type = n::FrameType::Post;
  b.dst_node = 5;
  b.payload = Term::integer(42);
  auto buf = n::encode_frame(a);
  const auto second = n::encode_frame(b);
  buf.insert(buf.end(), second.begin(), second.end());

  std::size_t consumed = 0;
  auto f1 = n::decode_frame(buf.data(), buf.size(), &consumed);
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, n::FrameType::Probe);
  auto f2 = n::decode_frame(buf.data() + consumed, buf.size() - consumed,
                            &consumed);
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, n::FrameType::Post);
  EXPECT_EQ(f2->payload.int_value(), 42);
}

TEST(WireFrame, VersionMismatchRejected) {
  n::Frame f;
  f.type = n::FrameType::Join;
  auto b = n::encode_frame(f);
  b[4] = n::kWireVersion + 1;  // version byte follows the 4-byte length
  std::size_t consumed = 0;
  EXPECT_THROW(n::decode_frame(b.data(), b.size(), &consumed), n::WireError);
}

TEST(WireFrame, UnknownTypeAndBadLengthRejected) {
  n::Frame f;
  f.type = n::FrameType::Join;
  auto b = n::encode_frame(f);
  b[5] = 0x7F;  // type byte
  std::size_t consumed = 0;
  EXPECT_THROW(n::decode_frame(b.data(), b.size(), &consumed), n::WireError);

  // Length word claiming more than kMaxFrameBytes.
  auto c = n::encode_frame(f);
  c[0] = 0xFF;
  c[1] = 0xFF;
  c[2] = 0xFF;
  c[3] = 0xFF;
  EXPECT_THROW(n::decode_frame(c.data(), c.size(), &consumed), n::WireError);
}

TEST(WireFrame, TrailingPayloadBytesRejected) {
  n::Frame f;
  f.type = n::FrameType::Join;
  auto b = n::encode_frame(f);
  // Grow the declared length and append a stray byte: the payload no
  // longer ends where the frame does.
  b.push_back(0xAA);
  const std::uint32_t len = static_cast<std::uint32_t>(b.size() - 4);
  b[0] = static_cast<std::uint8_t>(len);
  b[1] = static_cast<std::uint8_t>(len >> 8);
  b[2] = static_cast<std::uint8_t>(len >> 16);
  b[3] = static_cast<std::uint8_t>(len >> 24);
  std::size_t consumed = 0;
  EXPECT_THROW(n::decode_frame(b.data(), b.size(), &consumed), n::WireError);
}
