file(REMOVE_RECURSE
  "CMakeFiles/motif_interp.dir/arith.cpp.o"
  "CMakeFiles/motif_interp.dir/arith.cpp.o.d"
  "CMakeFiles/motif_interp.dir/interp.cpp.o"
  "CMakeFiles/motif_interp.dir/interp.cpp.o.d"
  "CMakeFiles/motif_interp.dir/stdlib.cpp.o"
  "CMakeFiles/motif_interp.dir/stdlib.cpp.o.d"
  "libmotif_interp.a"
  "libmotif_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
